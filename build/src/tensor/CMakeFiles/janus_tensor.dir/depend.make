# Empty dependencies file for janus_tensor.
# This may be replaced when dependencies are built.
