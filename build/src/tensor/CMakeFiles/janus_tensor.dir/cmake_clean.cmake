file(REMOVE_RECURSE
  "CMakeFiles/janus_tensor.dir/ops_array.cc.o"
  "CMakeFiles/janus_tensor.dir/ops_array.cc.o.d"
  "CMakeFiles/janus_tensor.dir/ops_conv.cc.o"
  "CMakeFiles/janus_tensor.dir/ops_conv.cc.o.d"
  "CMakeFiles/janus_tensor.dir/ops_elementwise.cc.o"
  "CMakeFiles/janus_tensor.dir/ops_elementwise.cc.o.d"
  "CMakeFiles/janus_tensor.dir/ops_linalg.cc.o"
  "CMakeFiles/janus_tensor.dir/ops_linalg.cc.o.d"
  "CMakeFiles/janus_tensor.dir/shape.cc.o"
  "CMakeFiles/janus_tensor.dir/shape.cc.o.d"
  "CMakeFiles/janus_tensor.dir/tensor.cc.o"
  "CMakeFiles/janus_tensor.dir/tensor.cc.o.d"
  "libjanus_tensor.a"
  "libjanus_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/janus_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
