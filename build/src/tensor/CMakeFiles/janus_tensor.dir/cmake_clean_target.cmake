file(REMOVE_RECURSE
  "libjanus_tensor.a"
)
