
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/ops_array.cc" "src/tensor/CMakeFiles/janus_tensor.dir/ops_array.cc.o" "gcc" "src/tensor/CMakeFiles/janus_tensor.dir/ops_array.cc.o.d"
  "/root/repo/src/tensor/ops_conv.cc" "src/tensor/CMakeFiles/janus_tensor.dir/ops_conv.cc.o" "gcc" "src/tensor/CMakeFiles/janus_tensor.dir/ops_conv.cc.o.d"
  "/root/repo/src/tensor/ops_elementwise.cc" "src/tensor/CMakeFiles/janus_tensor.dir/ops_elementwise.cc.o" "gcc" "src/tensor/CMakeFiles/janus_tensor.dir/ops_elementwise.cc.o.d"
  "/root/repo/src/tensor/ops_linalg.cc" "src/tensor/CMakeFiles/janus_tensor.dir/ops_linalg.cc.o" "gcc" "src/tensor/CMakeFiles/janus_tensor.dir/ops_linalg.cc.o.d"
  "/root/repo/src/tensor/shape.cc" "src/tensor/CMakeFiles/janus_tensor.dir/shape.cc.o" "gcc" "src/tensor/CMakeFiles/janus_tensor.dir/shape.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/tensor/CMakeFiles/janus_tensor.dir/tensor.cc.o" "gcc" "src/tensor/CMakeFiles/janus_tensor.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/janus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
