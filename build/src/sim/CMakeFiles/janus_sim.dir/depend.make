# Empty dependencies file for janus_sim.
# This may be replaced when dependencies are built.
