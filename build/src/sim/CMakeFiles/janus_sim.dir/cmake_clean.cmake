file(REMOVE_RECURSE
  "CMakeFiles/janus_sim.dir/cluster.cc.o"
  "CMakeFiles/janus_sim.dir/cluster.cc.o.d"
  "CMakeFiles/janus_sim.dir/event_sim.cc.o"
  "CMakeFiles/janus_sim.dir/event_sim.cc.o.d"
  "libjanus_sim.a"
  "libjanus_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/janus_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
