file(REMOVE_RECURSE
  "libjanus_sim.a"
)
