# Empty compiler generated dependencies file for janus_frontend.
# This may be replaced when dependencies are built.
