file(REMOVE_RECURSE
  "CMakeFiles/janus_frontend.dir/builtins.cc.o"
  "CMakeFiles/janus_frontend.dir/builtins.cc.o.d"
  "CMakeFiles/janus_frontend.dir/eager.cc.o"
  "CMakeFiles/janus_frontend.dir/eager.cc.o.d"
  "CMakeFiles/janus_frontend.dir/interpreter.cc.o"
  "CMakeFiles/janus_frontend.dir/interpreter.cc.o.d"
  "CMakeFiles/janus_frontend.dir/lexer.cc.o"
  "CMakeFiles/janus_frontend.dir/lexer.cc.o.d"
  "CMakeFiles/janus_frontend.dir/parser.cc.o"
  "CMakeFiles/janus_frontend.dir/parser.cc.o.d"
  "CMakeFiles/janus_frontend.dir/value.cc.o"
  "CMakeFiles/janus_frontend.dir/value.cc.o.d"
  "libjanus_frontend.a"
  "libjanus_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/janus_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
