file(REMOVE_RECURSE
  "libjanus_frontend.a"
)
