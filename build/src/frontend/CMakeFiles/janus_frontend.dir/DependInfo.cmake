
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frontend/builtins.cc" "src/frontend/CMakeFiles/janus_frontend.dir/builtins.cc.o" "gcc" "src/frontend/CMakeFiles/janus_frontend.dir/builtins.cc.o.d"
  "/root/repo/src/frontend/eager.cc" "src/frontend/CMakeFiles/janus_frontend.dir/eager.cc.o" "gcc" "src/frontend/CMakeFiles/janus_frontend.dir/eager.cc.o.d"
  "/root/repo/src/frontend/interpreter.cc" "src/frontend/CMakeFiles/janus_frontend.dir/interpreter.cc.o" "gcc" "src/frontend/CMakeFiles/janus_frontend.dir/interpreter.cc.o.d"
  "/root/repo/src/frontend/lexer.cc" "src/frontend/CMakeFiles/janus_frontend.dir/lexer.cc.o" "gcc" "src/frontend/CMakeFiles/janus_frontend.dir/lexer.cc.o.d"
  "/root/repo/src/frontend/parser.cc" "src/frontend/CMakeFiles/janus_frontend.dir/parser.cc.o" "gcc" "src/frontend/CMakeFiles/janus_frontend.dir/parser.cc.o.d"
  "/root/repo/src/frontend/value.cc" "src/frontend/CMakeFiles/janus_frontend.dir/value.cc.o" "gcc" "src/frontend/CMakeFiles/janus_frontend.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autodiff/CMakeFiles/janus_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/janus_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/janus_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/janus_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/janus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
