# Empty dependencies file for janus_opt.
# This may be replaced when dependencies are built.
