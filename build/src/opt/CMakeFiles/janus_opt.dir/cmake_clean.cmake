file(REMOVE_RECURSE
  "CMakeFiles/janus_opt.dir/passes.cc.o"
  "CMakeFiles/janus_opt.dir/passes.cc.o.d"
  "libjanus_opt.a"
  "libjanus_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/janus_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
