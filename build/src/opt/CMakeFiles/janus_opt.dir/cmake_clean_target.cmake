file(REMOVE_RECURSE
  "libjanus_opt.a"
)
