file(REMOVE_RECURSE
  "CMakeFiles/janus_dist.dir/allreduce.cc.o"
  "CMakeFiles/janus_dist.dir/allreduce.cc.o.d"
  "CMakeFiles/janus_dist.dir/trainer.cc.o"
  "CMakeFiles/janus_dist.dir/trainer.cc.o.d"
  "libjanus_dist.a"
  "libjanus_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/janus_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
