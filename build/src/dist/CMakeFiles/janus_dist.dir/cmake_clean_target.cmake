file(REMOVE_RECURSE
  "libjanus_dist.a"
)
