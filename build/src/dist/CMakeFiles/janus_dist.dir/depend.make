# Empty dependencies file for janus_dist.
# This may be replaced when dependencies are built.
