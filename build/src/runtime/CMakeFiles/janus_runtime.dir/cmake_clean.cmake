file(REMOVE_RECURSE
  "CMakeFiles/janus_runtime.dir/executor.cc.o"
  "CMakeFiles/janus_runtime.dir/executor.cc.o.d"
  "CMakeFiles/janus_runtime.dir/kernel.cc.o"
  "CMakeFiles/janus_runtime.dir/kernel.cc.o.d"
  "CMakeFiles/janus_runtime.dir/kernels_array.cc.o"
  "CMakeFiles/janus_runtime.dir/kernels_array.cc.o.d"
  "CMakeFiles/janus_runtime.dir/kernels_functional.cc.o"
  "CMakeFiles/janus_runtime.dir/kernels_functional.cc.o.d"
  "CMakeFiles/janus_runtime.dir/kernels_grad.cc.o"
  "CMakeFiles/janus_runtime.dir/kernels_grad.cc.o.d"
  "CMakeFiles/janus_runtime.dir/kernels_math.cc.o"
  "CMakeFiles/janus_runtime.dir/kernels_math.cc.o.d"
  "CMakeFiles/janus_runtime.dir/kernels_nn.cc.o"
  "CMakeFiles/janus_runtime.dir/kernels_nn.cc.o.d"
  "CMakeFiles/janus_runtime.dir/kernels_state.cc.o"
  "CMakeFiles/janus_runtime.dir/kernels_state.cc.o.d"
  "CMakeFiles/janus_runtime.dir/run_context.cc.o"
  "CMakeFiles/janus_runtime.dir/run_context.cc.o.d"
  "libjanus_runtime.a"
  "libjanus_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/janus_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
