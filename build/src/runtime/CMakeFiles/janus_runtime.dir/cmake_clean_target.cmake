file(REMOVE_RECURSE
  "libjanus_runtime.a"
)
