
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/executor.cc" "src/runtime/CMakeFiles/janus_runtime.dir/executor.cc.o" "gcc" "src/runtime/CMakeFiles/janus_runtime.dir/executor.cc.o.d"
  "/root/repo/src/runtime/kernel.cc" "src/runtime/CMakeFiles/janus_runtime.dir/kernel.cc.o" "gcc" "src/runtime/CMakeFiles/janus_runtime.dir/kernel.cc.o.d"
  "/root/repo/src/runtime/kernels_array.cc" "src/runtime/CMakeFiles/janus_runtime.dir/kernels_array.cc.o" "gcc" "src/runtime/CMakeFiles/janus_runtime.dir/kernels_array.cc.o.d"
  "/root/repo/src/runtime/kernels_functional.cc" "src/runtime/CMakeFiles/janus_runtime.dir/kernels_functional.cc.o" "gcc" "src/runtime/CMakeFiles/janus_runtime.dir/kernels_functional.cc.o.d"
  "/root/repo/src/runtime/kernels_grad.cc" "src/runtime/CMakeFiles/janus_runtime.dir/kernels_grad.cc.o" "gcc" "src/runtime/CMakeFiles/janus_runtime.dir/kernels_grad.cc.o.d"
  "/root/repo/src/runtime/kernels_math.cc" "src/runtime/CMakeFiles/janus_runtime.dir/kernels_math.cc.o" "gcc" "src/runtime/CMakeFiles/janus_runtime.dir/kernels_math.cc.o.d"
  "/root/repo/src/runtime/kernels_nn.cc" "src/runtime/CMakeFiles/janus_runtime.dir/kernels_nn.cc.o" "gcc" "src/runtime/CMakeFiles/janus_runtime.dir/kernels_nn.cc.o.d"
  "/root/repo/src/runtime/kernels_state.cc" "src/runtime/CMakeFiles/janus_runtime.dir/kernels_state.cc.o" "gcc" "src/runtime/CMakeFiles/janus_runtime.dir/kernels_state.cc.o.d"
  "/root/repo/src/runtime/run_context.cc" "src/runtime/CMakeFiles/janus_runtime.dir/run_context.cc.o" "gcc" "src/runtime/CMakeFiles/janus_runtime.dir/run_context.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/janus_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/janus_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/janus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
