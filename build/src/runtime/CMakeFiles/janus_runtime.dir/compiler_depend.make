# Empty compiler generated dependencies file for janus_runtime.
# This may be replaced when dependencies are built.
