file(REMOVE_RECURSE
  "CMakeFiles/janus_core.dir/assumptions.cc.o"
  "CMakeFiles/janus_core.dir/assumptions.cc.o.d"
  "CMakeFiles/janus_core.dir/compiled_graph.cc.o"
  "CMakeFiles/janus_core.dir/compiled_graph.cc.o.d"
  "CMakeFiles/janus_core.dir/engine.cc.o"
  "CMakeFiles/janus_core.dir/engine.cc.o.d"
  "CMakeFiles/janus_core.dir/generator.cc.o"
  "CMakeFiles/janus_core.dir/generator.cc.o.d"
  "CMakeFiles/janus_core.dir/host_state.cc.o"
  "CMakeFiles/janus_core.dir/host_state.cc.o.d"
  "CMakeFiles/janus_core.dir/profiler.cc.o"
  "CMakeFiles/janus_core.dir/profiler.cc.o.d"
  "libjanus_core.a"
  "libjanus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/janus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
