# Empty dependencies file for janus_common.
# This may be replaced when dependencies are built.
