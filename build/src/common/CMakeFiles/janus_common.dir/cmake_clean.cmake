file(REMOVE_RECURSE
  "CMakeFiles/janus_common.dir/error.cc.o"
  "CMakeFiles/janus_common.dir/error.cc.o.d"
  "CMakeFiles/janus_common.dir/logging.cc.o"
  "CMakeFiles/janus_common.dir/logging.cc.o.d"
  "CMakeFiles/janus_common.dir/thread_pool.cc.o"
  "CMakeFiles/janus_common.dir/thread_pool.cc.o.d"
  "libjanus_common.a"
  "libjanus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/janus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
