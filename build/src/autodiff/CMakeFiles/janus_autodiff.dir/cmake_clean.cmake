file(REMOVE_RECURSE
  "CMakeFiles/janus_autodiff.dir/gradients.cc.o"
  "CMakeFiles/janus_autodiff.dir/gradients.cc.o.d"
  "libjanus_autodiff.a"
  "libjanus_autodiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/janus_autodiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
