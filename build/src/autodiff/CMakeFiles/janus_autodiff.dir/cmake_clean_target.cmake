file(REMOVE_RECURSE
  "libjanus_autodiff.a"
)
