# Empty compiler generated dependencies file for janus_autodiff.
# This may be replaced when dependencies are built.
