file(REMOVE_RECURSE
  "libjanus_graph.a"
)
