# Empty dependencies file for janus_graph.
# This may be replaced when dependencies are built.
