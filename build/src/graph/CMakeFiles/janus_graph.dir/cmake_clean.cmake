file(REMOVE_RECURSE
  "CMakeFiles/janus_graph.dir/dot.cc.o"
  "CMakeFiles/janus_graph.dir/dot.cc.o.d"
  "CMakeFiles/janus_graph.dir/graph.cc.o"
  "CMakeFiles/janus_graph.dir/graph.cc.o.d"
  "libjanus_graph.a"
  "libjanus_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/janus_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
