file(REMOVE_RECURSE
  "CMakeFiles/janus_models.dir/cartpole.cc.o"
  "CMakeFiles/janus_models.dir/cartpole.cc.o.d"
  "CMakeFiles/janus_models.dir/datasets.cc.o"
  "CMakeFiles/janus_models.dir/datasets.cc.o.d"
  "CMakeFiles/janus_models.dir/zoo.cc.o"
  "CMakeFiles/janus_models.dir/zoo.cc.o.d"
  "libjanus_models.a"
  "libjanus_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/janus_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
