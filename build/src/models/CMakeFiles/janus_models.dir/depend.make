# Empty dependencies file for janus_models.
# This may be replaced when dependencies are built.
