file(REMOVE_RECURSE
  "libjanus_models.a"
)
