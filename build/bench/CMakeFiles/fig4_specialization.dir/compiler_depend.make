# Empty compiler generated dependencies file for fig4_specialization.
# This may be replaced when dependencies are built.
