file(REMOVE_RECURSE
  "CMakeFiles/fig4_specialization.dir/fig4_specialization.cc.o"
  "CMakeFiles/fig4_specialization.dir/fig4_specialization.cc.o.d"
  "fig4_specialization"
  "fig4_specialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_specialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
