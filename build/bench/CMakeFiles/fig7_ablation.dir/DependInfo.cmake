
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_ablation.cc" "bench/CMakeFiles/fig7_ablation.dir/fig7_ablation.cc.o" "gcc" "bench/CMakeFiles/fig7_ablation.dir/fig7_ablation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/janus_models.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/janus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/janus_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/janus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/janus_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/autodiff/CMakeFiles/janus_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/janus_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/janus_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/janus_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/janus_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/janus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
