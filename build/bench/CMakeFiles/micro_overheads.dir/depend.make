# Empty dependencies file for micro_overheads.
# This may be replaced when dependencies are built.
