file(REMOVE_RECURSE
  "CMakeFiles/core_unit_test.dir/core_unit_test.cc.o"
  "CMakeFiles/core_unit_test.dir/core_unit_test.cc.o.d"
  "core_unit_test"
  "core_unit_test.pdb"
  "core_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
