# Empty dependencies file for janus_test.
# This may be replaced when dependencies are built.
