file(REMOVE_RECURSE
  "CMakeFiles/janus_test.dir/janus_test.cc.o"
  "CMakeFiles/janus_test.dir/janus_test.cc.o.d"
  "janus_test"
  "janus_test.pdb"
  "janus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/janus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
