file(REMOVE_RECURSE
  "CMakeFiles/sim_dist_test.dir/sim_dist_test.cc.o"
  "CMakeFiles/sim_dist_test.dir/sim_dist_test.cc.o.d"
  "sim_dist_test"
  "sim_dist_test.pdb"
  "sim_dist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_dist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
