# Empty dependencies file for sim_dist_test.
# This may be replaced when dependencies are built.
