# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/autodiff_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/janus_test[1]_include.cmake")
include("/root/repo/build/tests/sim_dist_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/core_unit_test[1]_include.cmake")
