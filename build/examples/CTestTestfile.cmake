# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dynamic_features "/root/repo/build/examples/dynamic_features")
set_tests_properties(example_dynamic_features PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_treelstm_sentiment "/root/repo/build/examples/treelstm_sentiment")
set_tests_properties(example_treelstm_sentiment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_distributed_training "/root/repo/build/examples/distributed_training")
set_tests_properties(example_distributed_training PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
