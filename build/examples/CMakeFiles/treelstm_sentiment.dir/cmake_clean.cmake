file(REMOVE_RECURSE
  "CMakeFiles/treelstm_sentiment.dir/treelstm_sentiment.cpp.o"
  "CMakeFiles/treelstm_sentiment.dir/treelstm_sentiment.cpp.o.d"
  "treelstm_sentiment"
  "treelstm_sentiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treelstm_sentiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
