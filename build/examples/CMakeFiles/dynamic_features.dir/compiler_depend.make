# Empty compiler generated dependencies file for dynamic_features.
# This may be replaced when dependencies are built.
