file(REMOVE_RECURSE
  "CMakeFiles/dynamic_features.dir/dynamic_features.cpp.o"
  "CMakeFiles/dynamic_features.dir/dynamic_features.cpp.o.d"
  "dynamic_features"
  "dynamic_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
