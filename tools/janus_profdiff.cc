// Compares two folded-stacks profile dumps (JANUS_PROFILE=<path> or
// RenderFoldedStacks) per source site and fails when any site's share of
// total time regressed past a threshold.
//
//   janus_profdiff [--threshold <pp>] [--top <n>] <before.txt> <after.txt>
//
// Sites are stacks minus the leaf op frame (unit;function;function:line),
// so the diff is stable across fusion/codegen changes that rename ops but
// keep source attribution. Shares are each site's fraction of its own
// dump's total, making dumps of different lengths comparable; the
// threshold is in percentage points of that share.
//
// Exit codes: 0 = no regression past threshold, 1 = regression,
// 2 = usage/IO/parse error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/profile.h"

namespace {

bool ReadFile(const char* path, std::string* out) {
  std::ifstream file(path);
  if (!file) return false;
  std::ostringstream content;
  content << file.rdbuf();
  *out = content.str();
  return true;
}

bool LoadFolded(const char* path, janus::obs::FoldedProfile* out) {
  std::string content;
  if (!ReadFile(path, &content)) {
    std::fprintf(stderr, "janus_profdiff: cannot open '%s'\n", path);
    return false;
  }
  std::string error;
  if (!janus::obs::ParseFoldedProfile(content, out, &error)) {
    std::fprintf(stderr, "janus_profdiff: %s: %s\n", path, error.c_str());
    return false;
  }
  return true;
}

void PrintEntry(const janus::obs::ProfileDiffEntry& entry) {
  std::printf("  %+7.2fpp  %6.2f%% -> %6.2f%%  %10.0fns -> %10.0fns  %s\n",
              entry.delta_pp, entry.before_share * 100.0,
              entry.after_share * 100.0, entry.before_ns, entry.after_ns,
              entry.site.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  double threshold_pp = 5.0;
  int top = 20;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    if (std::strcmp(argv[arg], "--threshold") == 0 && arg + 1 < argc) {
      threshold_pp = std::atof(argv[arg + 1]);
      arg += 2;
    } else if (std::strcmp(argv[arg], "--top") == 0 && arg + 1 < argc) {
      top = std::atoi(argv[arg + 1]);
      arg += 2;
    } else {
      std::fprintf(stderr, "janus_profdiff: unknown option '%s'\n",
                   argv[arg]);
      return 2;
    }
  }
  if (argc - arg != 2) {
    std::fprintf(stderr,
                 "usage: janus_profdiff [--threshold <pp>] [--top <n>] "
                 "<before.txt> <after.txt>\n");
    return 2;
  }

  janus::obs::FoldedProfile before;
  janus::obs::FoldedProfile after;
  if (!LoadFolded(argv[arg], &before) || !LoadFolded(argv[arg + 1], &after)) {
    return 2;
  }

  const janus::obs::ProfileDiffResult diff =
      janus::obs::DiffProfilesBySite(before, after);
  std::printf("before: %zu stacks, %.3fms   after: %zu stacks, %.3fms\n",
              before.stack_ns.size(), before.total_ns / 1e6,
              after.stack_ns.size(), after.total_ns / 1e6);
  std::printf("%zu sites compared, worst regression %+.2fpp "
              "(threshold %.2fpp)\n",
              diff.entries.size(), diff.max_regression_pp, threshold_pp);
  int printed = 0;
  for (const janus::obs::ProfileDiffEntry& entry : diff.entries) {
    if (printed++ >= top) break;
    PrintEntry(entry);
  }

  if (diff.max_regression_pp > threshold_pp) {
    std::fprintf(stderr,
                 "janus_profdiff: FAIL — a site's share of total time grew "
                 "by %.2fpp (> %.2fpp)\n",
                 diff.max_regression_pp, threshold_pp);
    return 1;
  }
  std::printf("janus_profdiff: OK\n");
  return 0;
}
