// Root-cause attribution over a speculation-ledger dump (JANUS_LEDGER=
// <path> JSONL, obs/ledger.h schema). Where the aggregate counters say
// *that* fallbacks and cache churn happened, this answers *why*: per
// conversion unit, the top failing assumptions with their assumed vs
// observed values, the despecialization-ladder transitions with the churn
// that triggered them, and the cache-churn summary.
//
//   janus_explain <ledger.jsonl> [--top N] [--unit <name-or-hex-substr>]
//
// Exit status: 0 on success, 1 on malformed records, 2 on usage/IO
// errors.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/json_check.h"

namespace {

using janus::obs::FlatObject;
using janus::obs::FlatValue;

std::string GetStr(const FlatObject& fields, const char* key) {
  const auto it = fields.find(key);
  return it == fields.end() ? std::string() : it->second.text;
}

std::int64_t GetInt(const FlatObject& fields, const char* key,
                    std::int64_t fallback = -1) {
  const auto it = fields.find(key);
  if (it == fields.end() || it->second.kind != FlatValue::Kind::kNumber) {
    return fallback;
  }
  return std::strtoll(it->second.text.c_str(), nullptr, 10);
}

std::string FormatNs(double ns) {
  char buffer[32];
  if (ns < 10'000.0) {
    std::snprintf(buffer, sizeof(buffer), "%.0f ns", ns);
  } else if (ns < 10'000'000.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1f us", ns / 1e3);
  } else if (ns < 10'000'000'000.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1f ms", ns / 1e6);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f s", ns / 1e9);
  }
  return buffer;
}

// One failing assumption within a unit, aggregated across fallback,
// entry_mismatch, and (by id) assert_failure records.
struct AssumptionAgg {
  std::int64_t count = 0;
  std::string assumed;   // most recent rendering
  std::string observed;  // most recent rendering
  std::map<std::string, std::int64_t> kinds;
};

// Fused-region coverage of the graph runs at one despecialization-ladder
// level. Comparing levels shows when sliding down the ladder (rank-only,
// shapeless graphs) destroys or preserves fusion coverage.
struct LevelFusion {
  std::int64_t runs = 0;
  std::int64_t fused_regions = 0;
  std::int64_t fused_ops = 0;
  std::int64_t ops = 0;
};

struct UnitAgg {
  std::string unit;  // hex identity (join key)
  std::string name;  // qualified name when any record carried one
  std::set<std::string> variants;
  std::map<std::string, std::int64_t> kind_counts;
  std::int64_t graph_runs = 0, graph_ns = 0, graph_ops = 0;
  std::int64_t fused_regions = 0, fused_ops = 0;
  std::map<std::int64_t, LevelFusion> fusion_by_level;  // key: ladder level
  std::int64_t imperative_runs = 0, imperative_ns = 0;
  std::map<std::string, AssumptionAgg> assumptions;
  std::vector<std::string> ladder;       // despecialization transitions
  std::vector<std::string> generations;  // one line per generation
  std::map<std::string, std::int64_t> demote_reasons;

  std::int64_t Count(const char* kind) const {
    const auto it = kind_counts.find(kind);
    return it == kind_counts.end() ? 0 : it->second;
  }
  std::int64_t Disruptions() const {
    return Count("fallback") + Count("entry_mismatch") +
           Count("cache_despecialize");
  }
};

void AddFailure(UnitAgg& unit, const std::string& kind,
                const FlatObject& fields) {
  const std::string id = GetStr(fields, "assumption");
  if (id.empty()) return;
  AssumptionAgg& agg = unit.assumptions[id];
  agg.count += 1;
  agg.kinds[kind] += 1;
  const std::string assumed = GetStr(fields, "assumed");
  const std::string observed = GetStr(fields, "observed");
  if (!assumed.empty()) agg.assumed = assumed;
  if (!observed.empty()) agg.observed = observed;
}

void PrintUnit(const UnitAgg& unit, int top) {
  std::printf("== unit %s (%s)",
              unit.name.empty() ? "<anonymous>" : unit.name.c_str(),
              unit.unit.c_str());
  if (unit.variants.size() > 1) {
    std::printf(" [%zu variants]", unit.variants.size());
  }
  std::printf(" ==\n");

  std::printf("  runs: %lld graph", static_cast<long long>(unit.graph_runs));
  if (unit.graph_runs > 0) {
    std::printf(" (avg %s",
                FormatNs(static_cast<double>(unit.graph_ns) /
                         static_cast<double>(unit.graph_runs))
                    .c_str());
    if (unit.graph_ops > 0) {
      std::printf(", %lld ops total", static_cast<long long>(unit.graph_ops));
    }
    std::printf(")");
  }
  std::printf(", %lld imperative",
              static_cast<long long>(unit.imperative_runs));
  if (unit.imperative_runs > 0) {
    std::printf(" (avg %s)",
                FormatNs(static_cast<double>(unit.imperative_ns) /
                         static_cast<double>(unit.imperative_runs))
                    .c_str());
  }
  std::printf("\n");

  std::printf(
      "  speculation: %lld generations, %lld cache misses, %lld entry "
      "mismatches, %lld fallbacks, %lld refusals\n",
      static_cast<long long>(unit.Count("generation")),
      static_cast<long long>(unit.Count("cache_miss")),
      static_cast<long long>(unit.Count("entry_mismatch")),
      static_cast<long long>(unit.Count("fallback")),
      static_cast<long long>(unit.Count("refusal")));

  if (unit.fused_regions > 0) {
    std::printf("  fusion: %lld regions covering %lld ops",
                static_cast<long long>(unit.fused_regions),
                static_cast<long long>(unit.fused_ops));
    if (unit.graph_ops > 0) {
      std::printf(" (%.0f%% of graph ops)",
                  100.0 * static_cast<double>(unit.fused_ops) /
                      static_cast<double>(unit.graph_ops));
    }
    std::printf("\n");
    // Per-ladder-level coverage only when the unit ran at more than one
    // level: that contrast is what shows despecialization destroying (or
    // runtime re-specialization preserving) fusion.
    if (unit.fusion_by_level.size() > 1) {
      for (const auto& [level, lf] : unit.fusion_by_level) {
        std::printf("    level %lld: %lld runs, %.1f regions/run",
                    static_cast<long long>(level),
                    static_cast<long long>(lf.runs),
                    static_cast<double>(lf.fused_regions) /
                        static_cast<double>(lf.runs));
        if (lf.ops > 0) {
          std::printf(", %.0f%% of ops fused",
                      100.0 * static_cast<double>(lf.fused_ops) /
                          static_cast<double>(lf.ops));
        }
        std::printf("\n");
      }
    }
  } else if (unit.graph_runs > 0) {
    std::printf("  fusion: none\n");
  }

  if (!unit.assumptions.empty()) {
    std::vector<const std::map<std::string, AssumptionAgg>::value_type*>
        ranked;
    for (const auto& pair : unit.assumptions) ranked.push_back(&pair);
    std::sort(ranked.begin(), ranked.end(), [](const auto* a, const auto* b) {
      if (a->second.count != b->second.count) {
        return a->second.count > b->second.count;
      }
      return a->first < b->first;
    });
    std::printf("  top failing assumptions:\n");
    int shown = 0;
    for (const auto* pair : ranked) {
      if (shown++ == top) {
        std::printf("    ... and %zu more\n", ranked.size() - top);
        break;
      }
      const AssumptionAgg& agg = pair->second;
      std::string kinds;
      for (const auto& [kind, count] : agg.kinds) {
        if (!kinds.empty()) kinds += ", ";
        kinds += kind + "=" + std::to_string(count);
      }
      std::printf("    %lldx %s (%s)\n", static_cast<long long>(agg.count),
                  pair->first.c_str(), kinds.c_str());
      if (!agg.assumed.empty()) {
        std::printf("        assumed:  %s\n", agg.assumed.c_str());
      }
      if (!agg.observed.empty()) {
        std::printf("        observed: %s\n", agg.observed.c_str());
      }
    }
  }

  for (const std::string& line : unit.ladder) {
    std::printf("  ladder: %s\n", line.c_str());
  }
  for (const std::string& line : unit.generations) {
    std::printf("  generation: %s\n", line.c_str());
  }

  const std::int64_t inserts = unit.Count("cache_insert");
  const std::int64_t evicts = unit.Count("cache_evict");
  const std::int64_t promotes = unit.Count("cache_promote");
  const std::int64_t demotes = unit.Count("cache_demote");
  if (inserts + evicts + promotes + demotes > 0) {
    std::printf(
        "  cache: %lld inserts, %lld evictions, %lld promotions, %lld "
        "demotions",
        static_cast<long long>(inserts), static_cast<long long>(evicts),
        static_cast<long long>(promotes), static_cast<long long>(demotes));
    if (!unit.demote_reasons.empty()) {
      std::string reasons;
      for (const auto& [reason, count] : unit.demote_reasons) {
        if (!reasons.empty()) reasons += ", ";
        reasons += reason + "=" + std::to_string(count);
      }
      std::printf(" (%s)", reasons.c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  const char* unit_filter = nullptr;
  int top = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--unit") == 0 && i + 1 < argc) {
      unit_filter = argv[++i];
    } else if (path == nullptr && argv[i][0] != '-') {
      path = argv[i];
    } else {
      path = nullptr;
      break;
    }
  }
  if (path == nullptr || top < 1) {
    std::fprintf(stderr,
                 "usage: janus_explain <ledger.jsonl> [--top N] "
                 "[--unit <name-or-hex-substr>]\n");
    return 2;
  }
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "janus_explain: cannot open '%s'\n", path);
    return 2;
  }

  std::map<std::string, UnitAgg> units;
  std::map<std::string, std::int64_t> kind_totals;
  // Kernel-site assert failures carry no unit; key on assumption id.
  std::map<std::string, AssumptionAgg> assert_sites;
  std::map<std::string, std::string> assert_site_nodes;
  std::set<std::string> blacklisted;
  int records = 0;
  int bad_lines = 0;
  int line_number = 0;
  std::string line;
  while (std::getline(file, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::string error;
    FlatObject fields;
    if (!janus::obs::ValidateLedgerLine(line, &fields, &error)) {
      std::fprintf(stderr, "janus_explain: %s:%d: skipping bad record: %s\n",
                   path, line_number, error.c_str());
      ++bad_lines;
      continue;
    }
    ++records;
    const std::string kind = GetStr(fields, "kind");
    ++kind_totals[kind];

    if (kind == "assumption_blacklisted") {
      blacklisted.insert(GetStr(fields, "assumption"));
      continue;
    }
    if (kind == "assert_failure") {
      const std::string id = GetStr(fields, "assumption");
      AssumptionAgg& agg = assert_sites[id];
      agg.count += 1;
      const std::string assumed = GetStr(fields, "assumed");
      const std::string observed = GetStr(fields, "observed");
      if (!assumed.empty()) agg.assumed = assumed;
      if (!observed.empty()) agg.observed = observed;
      const std::string node = GetStr(fields, "detail");
      if (!node.empty()) assert_site_nodes[id] = node;
      continue;
    }

    const std::string unit_id = GetStr(fields, "unit");
    if (unit_id.empty()) continue;  // e.g. cache_epoch_bump
    UnitAgg& unit = units[unit_id];
    unit.unit = unit_id;
    const std::string name = GetStr(fields, "name");
    if (!name.empty()) unit.name = name;
    const std::string variant = GetStr(fields, "variant");
    unit.variants.insert(variant.empty() ? "inference" : variant);
    unit.kind_counts[kind] += 1;

    if (kind == "run") {
      unit.graph_runs += 1;
      unit.graph_ns += std::max<std::int64_t>(GetInt(fields, "execute_ns"), 0);
      unit.graph_ops += std::max<std::int64_t>(GetInt(fields, "ops"), 0);
      const std::int64_t fused_regions = GetInt(fields, "fused_regions");
      const std::int64_t fused_ops = GetInt(fields, "fused_ops");
      if (fused_regions >= 0) unit.fused_regions += fused_regions;
      if (fused_ops >= 0) unit.fused_ops += fused_ops;
      LevelFusion& lf = unit.fusion_by_level[GetInt(fields, "level", -1)];
      lf.runs += 1;
      lf.fused_regions += std::max<std::int64_t>(fused_regions, 0);
      lf.fused_ops += std::max<std::int64_t>(fused_ops, 0);
      lf.ops += std::max<std::int64_t>(GetInt(fields, "ops"), 0);
    } else if (kind == "profile" || kind == "imperative" ||
               kind == "fallback") {
      if (kind == "fallback") AddFailure(unit, kind, fields);
      const std::int64_t ns = GetInt(fields, "execute_ns");
      if (ns >= 0) {
        unit.imperative_runs += 1;
        unit.imperative_ns += ns;
      }
    } else if (kind == "entry_mismatch") {
      AddFailure(unit, kind, fields);
    } else if (kind == "generation") {
      std::string rendered = "level " + std::to_string(GetInt(fields, "level", 0));
      const std::int64_t generate_ns = GetInt(fields, "generate_ns");
      if (generate_ns >= 0) {
        rendered += ", " + FormatNs(static_cast<double>(generate_ns));
      }
      const std::int64_t bytes = GetInt(fields, "bytes");
      if (bytes >= 0) rendered += ", " + std::to_string(bytes) + " bytes";
      const std::string detail = GetStr(fields, "detail");
      if (!detail.empty()) rendered += ", " + detail;
      unit.generations.push_back(std::move(rendered));
    } else if (kind == "cache_despecialize") {
      unit.ladder.push_back("-> level " +
                            std::to_string(GetInt(fields, "level", 0)) + " (" +
                            GetStr(fields, "detail") + ")");
    } else if (kind == "cache_demote") {
      const std::string reason = GetStr(fields, "detail");
      unit.demote_reasons[reason.empty() ? "unknown" : reason] += 1;
    }
  }

  if (records == 0) {
    std::fprintf(stderr, "janus_explain: %s: no valid ledger records\n",
                 path);
    return bad_lines > 0 ? 1 : 2;
  }

  std::printf("== ledger %s: %d records, %zu units ==\n", path, records,
              units.size());
  std::string kinds_line;
  for (const auto& [kind, count] : kind_totals) {
    if (!kinds_line.empty()) kinds_line += ", ";
    kinds_line += kind + "=" + std::to_string(count);
  }
  std::printf("  kinds: %s\n", kinds_line.c_str());
  if (!blacklisted.empty()) {
    std::string ids;
    for (const std::string& id : blacklisted) {
      if (!ids.empty()) ids += ", ";
      ids += id;
    }
    std::printf("  blacklisted assumptions (speculation stopped): %s\n",
                ids.c_str());
  }
  std::printf("\n");

  std::vector<const UnitAgg*> ranked;
  for (const auto& [id, unit] : units) {
    if (unit_filter != nullptr &&
        unit.unit.find(unit_filter) == std::string::npos &&
        unit.name.find(unit_filter) == std::string::npos) {
      continue;
    }
    ranked.push_back(&unit);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const UnitAgg* a, const UnitAgg* b) {
              if (a->Disruptions() != b->Disruptions()) {
                return a->Disruptions() > b->Disruptions();
              }
              return a->unit < b->unit;
            });
  for (const UnitAgg* unit : ranked) PrintUnit(*unit, top);

  if (!assert_sites.empty()) {
    std::printf("== assert sites (kernel-level) ==\n");
    for (const auto& [id, agg] : assert_sites) {
      const auto node = assert_site_nodes.find(id);
      std::printf("  %lldx %s%s%s\n", static_cast<long long>(agg.count),
                  id.c_str(), node != assert_site_nodes.end() ? " at " : "",
                  node != assert_site_nodes.end() ? node->second.c_str()
                                                  : "");
      if (!agg.assumed.empty()) {
        std::printf("      assumed:  %s\n", agg.assumed.c_str());
      }
      if (!agg.observed.empty()) {
        std::printf("      observed: %s\n", agg.observed.c_str());
      }
    }
  }
  return bad_lines > 0 ? 1 : 0;
}
