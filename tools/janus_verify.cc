// janus_verify: offline static verification of every plan the engine builds.
//
// Sweeps the model zoo (all 11 Table-2 workloads) across the
// despecialization ladder (levels 0-3) with fusion on and off, trains each
// session a few steps so the engine generates and caches compiled units,
// then runs verify::VerifyCompiledUnit over every resident unit: captures,
// shape-assumption/ladder consistency, fetches, and full structural
// verification of the main plan and every library-function plan.
//
// Exit status 0 = every plan clean; 1 = violations (printed, and written to
// the --json report if given); 2 = usage error.
//
// Usage:
//   janus_verify [--model NAME] [--steps N] [--json PATH]
//                [--fusion on|off|both] [--max-level L]
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "models/zoo.h"
#include "verify/plan_verifier.h"
#include "verify/unit_verifier.h"

namespace {

struct SweepResult {
  std::string model;
  int level = 0;
  bool fusion = false;
  int units = 0;
  int checks = 0;
  std::vector<janus::verify::Issue> issues;
  std::string error;  // non-verification failure (session threw)
};

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void WriteJsonReport(const std::string& path,
                     const std::vector<SweepResult>& results) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "janus_verify: cannot write %s\n", path.c_str());
    return;
  }
  int total_checks = 0;
  int total_violations = 0;
  for (const SweepResult& r : results) {
    total_checks += r.checks;
    total_violations += static_cast<int>(r.issues.size());
  }
  std::fprintf(f, "{\n  \"total_checks\": %d,\n  \"total_violations\": %d,\n",
               total_checks, total_violations);
  std::fprintf(f, "  \"sweeps\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    std::fprintf(f,
                 "    {\"model\": \"%s\", \"level\": %d, \"fusion\": %s, "
                 "\"units\": %d, \"checks\": %d, \"violations\": %zu",
                 JsonEscape(r.model).c_str(), r.level,
                 r.fusion ? "true" : "false", r.units, r.checks,
                 r.issues.size());
    if (!r.error.empty()) {
      std::fprintf(f, ", \"error\": \"%s\"", JsonEscape(r.error).c_str());
    }
    if (!r.issues.empty()) {
      std::fprintf(f, ", \"issues\": [");
      for (std::size_t j = 0; j < r.issues.size(); ++j) {
        const janus::verify::Issue& issue = r.issues[j];
        std::fprintf(f,
                     "%s{\"invariant\": \"%s\", \"node\": \"%s\", "
                     "\"message\": \"%s\"}",
                     j == 0 ? "" : ", ",
                     JsonEscape(issue.invariant).c_str(),
                     JsonEscape(issue.node).c_str(),
                     JsonEscape(issue.message).c_str());
      }
      std::fprintf(f, "]");
    }
    std::fprintf(f, "}%s\n", i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string only_model;
  std::string json_path;
  std::string fusion_mode = "both";
  int steps = 6;
  int max_level = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "janus_verify: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--model") {
      only_model = next();
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--steps") {
      steps = std::atoi(next());
    } else if (arg == "--max-level") {
      max_level = std::atoi(next());
    } else if (arg == "--fusion") {
      fusion_mode = next();
      if (fusion_mode != "on" && fusion_mode != "off" &&
          fusion_mode != "both") {
        std::fprintf(stderr, "janus_verify: --fusion on|off|both\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: janus_verify [--model NAME] [--steps N] "
                   "[--json PATH] [--fusion on|off|both] [--max-level L]\n");
      return 2;
    }
  }

  // The sweep verifies explicitly (full reports, all units); the in-build
  // hook would instead throw away the first bad plan mid-generation.
  janus::verify::SetVerifyEnabledForTesting(0);

  std::vector<bool> fusion_settings;
  if (fusion_mode != "off") fusion_settings.push_back(true);
  if (fusion_mode != "on") fusion_settings.push_back(false);

  std::vector<SweepResult> results;
  for (const janus::models::ModelSpec& spec : janus::models::ModelZoo()) {
    if (!only_model.empty() && spec.name != only_model) continue;
    for (int level = 0; level <= max_level; ++level) {
      for (const bool fusion : fusion_settings) {
        SweepResult result;
        result.model = spec.name;
        result.level = level;
        result.fusion = fusion;
        try {
          janus::EngineOptions options;
          options.private_cache = true;
          options.enable_fusion = fusion;
          options.force_despecialization_level = level;
          janus::models::ModelSession session(spec, options);
          for (int s = 0; s < steps; ++s) session.Step();
          session.engine().ForEachCompiledUnit(
              [&result, level](const std::string& name,
                               const janus::CompiledGraph& unit) {
                ++result.units;
                janus::verify::Report report =
                    janus::verify::VerifyCompiledUnit(unit);
                // The sweep forced the ladder level; a unit claiming a
                // different one went around CompileHints.
                ++report.checks;
                if (unit.despecialization_level != level) {
                  report.issues.push_back(janus::verify::Issue{
                      "unit.ladder_level", "<unit>",
                      "engine forced level " + std::to_string(level) +
                          " but the unit was generated at level " +
                          std::to_string(unit.despecialization_level)});
                }
                result.checks += report.checks;
                for (janus::verify::Issue& issue : report.issues) {
                  issue.node = name + ":" + issue.node;
                  result.issues.push_back(std::move(issue));
                }
              });
        } catch (const std::exception& e) {
          result.error = e.what();
        }
        std::printf("%-12s level=%d fusion=%-3s units=%d checks=%d %s\n",
                    result.model.c_str(), result.level,
                    result.fusion ? "on" : "off", result.units,
                    result.checks,
                    !result.error.empty()
                        ? ("ERROR: " + result.error).c_str()
                        : (result.issues.empty() ? "OK" : "VIOLATIONS"));
        for (const janus::verify::Issue& issue : result.issues) {
          std::printf("    %s at %s: %s\n", issue.invariant.c_str(),
                      issue.node.c_str(), issue.message.c_str());
        }
        results.push_back(std::move(result));
      }
    }
  }

  int total_units = 0;
  int total_checks = 0;
  int total_violations = 0;
  int errors = 0;
  for (const SweepResult& r : results) {
    total_units += r.units;
    total_checks += r.checks;
    total_violations += static_cast<int>(r.issues.size());
    if (!r.error.empty()) ++errors;
  }
  std::printf(
      "\njanus_verify: %zu sweeps, %d units, %d checks, %d violations, "
      "%d errors\n",
      results.size(), total_units, total_checks, total_violations, errors);
  if (!json_path.empty()) WriteJsonReport(json_path, results);
  return (total_violations > 0 || errors > 0) ? 1 : 0;
}
