// Validates the observability subsystem's emitted text formats. Three
// modes, selected by the first argument:
//
//   trace_validate <trace.json> [required-event-name...]
//     Chrome-trace JSON (JANUS_TRACE / Trace::WriteChromeTrace): full
//     syntax check plus per-event schema (string name/cat/ph). Extra
//     arguments are event names that must appear; CI uses this to assert
//     the decision-loop phases were captured.
//
//   trace_validate --ledger <ledger.jsonl> [required-kind...]
//     Speculation-ledger JSONL (JANUS_LEDGER / Ledger::WriteJsonl): every
//     line must be a valid flat record with seq/ts_ns/kind. Extra
//     arguments are record kinds that must appear (e.g. "run",
//     "generation").
//
//   trace_validate --prom <metrics.txt> [required-family...]
//     Prometheus text exposition 0.0.4 (the /metrics endpoint): per-line
//     syntax check of comments, metric/label names, escapes, and values.
//     Extra arguments are metric families that must appear as samples.
//
//   trace_validate --profile <profile.json> [required-unit...]
//     Source-attributed profile JSON (the /profilez?format=json endpoint):
//     full schema check (units, per-line rollups, top nodes). Extra
//     arguments are unit names that must appear.
//
//   trace_validate --folded <stacks.txt>
//     Folded-stacks dump (JANUS_PROFILE=<path>): every line must be
//     "frame;frame;... <total_ns>" with a non-negative value.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "obs/json_check.h"
#include "obs/profile.h"

namespace {

bool ReadFile(const char* path, std::string* out) {
  std::ifstream file(path);
  if (!file) return false;
  std::ostringstream content;
  content << file.rdbuf();
  *out = content.str();
  return true;
}

int ValidateTrace(const char* path, int argc, char** argv, int first_extra) {
  std::string content;
  if (!ReadFile(path, &content)) {
    std::fprintf(stderr, "trace_validate: cannot open '%s'\n", path);
    return 2;
  }
  std::string error;
  janus::obs::ChromeTraceSummary summary;
  if (!janus::obs::ValidateChromeTrace(content, &error, &summary)) {
    std::fprintf(stderr, "trace_validate: %s: invalid trace: %s\n", path,
                 error.c_str());
    return 1;
  }
  std::printf("%s: %d events, %zu distinct names, %zu categories\n", path,
              summary.num_events, summary.names.size(),
              summary.categories.size());
  if (summary.num_events == 0) {
    std::fprintf(stderr, "trace_validate: trace contains no events\n");
    return 1;
  }
  int missing = 0;
  for (int i = first_extra; i < argc; ++i) {
    if (summary.names.count(argv[i]) == 0u) {
      std::fprintf(stderr,
                   "trace_validate: required event '%s' not present\n",
                   argv[i]);
      ++missing;
    } else {
      std::printf("  found required event '%s'\n", argv[i]);
    }
  }
  return missing == 0 ? 0 : 1;
}

int ValidateLedger(const char* path, int argc, char** argv, int first_extra) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "trace_validate: cannot open '%s'\n", path);
    return 2;
  }
  std::map<std::string, int> kinds;
  int records = 0;
  int line_number = 0;
  std::string line;
  while (std::getline(file, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::string error;
    janus::obs::FlatObject fields;
    if (!janus::obs::ValidateLedgerLine(line, &fields, &error)) {
      std::fprintf(stderr, "trace_validate: %s:%d: invalid record: %s\n",
                   path, line_number, error.c_str());
      return 1;
    }
    ++records;
    ++kinds[fields["kind"].text];
  }
  std::printf("%s: %d records, %zu distinct kinds\n", path, records,
              kinds.size());
  for (const auto& [kind, count] : kinds) {
    std::printf("  %-24s %d\n", kind.c_str(), count);
  }
  if (records == 0) {
    std::fprintf(stderr, "trace_validate: ledger contains no records\n");
    return 1;
  }
  int missing = 0;
  for (int i = first_extra; i < argc; ++i) {
    if (kinds.count(argv[i]) == 0u) {
      std::fprintf(stderr,
                   "trace_validate: required record kind '%s' not present\n",
                   argv[i]);
      ++missing;
    }
  }
  return missing == 0 ? 0 : 1;
}

int ValidatePrometheus(const char* path, int argc, char** argv,
                       int first_extra) {
  std::string content;
  if (!ReadFile(path, &content)) {
    std::fprintf(stderr, "trace_validate: cannot open '%s'\n", path);
    return 2;
  }
  std::string error;
  janus::obs::PrometheusSummary summary;
  if (!janus::obs::ValidatePrometheusText(content, &error, &summary)) {
    std::fprintf(stderr, "trace_validate: %s: invalid exposition: %s\n",
                 path, error.c_str());
    return 1;
  }
  std::printf("%s: %d samples, %zu families declared\n", path,
              summary.num_samples, summary.families.size());
  if (summary.num_samples == 0) {
    std::fprintf(stderr, "trace_validate: exposition contains no samples\n");
    return 1;
  }
  int missing = 0;
  for (int i = first_extra; i < argc; ++i) {
    if (summary.sample_names.count(argv[i]) == 0u &&
        summary.families.count(argv[i]) == 0u) {
      std::fprintf(stderr,
                   "trace_validate: required metric '%s' not present\n",
                   argv[i]);
      ++missing;
    } else {
      std::printf("  found required metric '%s'\n", argv[i]);
    }
  }
  return missing == 0 ? 0 : 1;
}

int ValidateProfile(const char* path, int argc, char** argv,
                    int first_extra) {
  std::string content;
  if (!ReadFile(path, &content)) {
    std::fprintf(stderr, "trace_validate: cannot open '%s'\n", path);
    return 2;
  }
  std::string error;
  janus::obs::ProfileJsonSummary summary;
  if (!janus::obs::ValidateProfileJson(content, &error, &summary)) {
    std::fprintf(stderr, "trace_validate: %s: invalid profile: %s\n", path,
                 error.c_str());
    return 1;
  }
  std::printf("%s: enabled=%s stride=%d, %d units, %d lines, %d nodes\n",
              path, summary.enabled ? "true" : "false",
              summary.sample_stride, summary.num_units, summary.num_lines,
              summary.num_nodes);
  int missing = 0;
  for (int i = first_extra; i < argc; ++i) {
    if (summary.units.count(argv[i]) == 0u) {
      std::fprintf(stderr,
                   "trace_validate: required unit '%s' not present\n",
                   argv[i]);
      ++missing;
    } else {
      std::printf("  found required unit '%s'\n", argv[i]);
    }
  }
  return missing == 0 ? 0 : 1;
}

int ValidateFolded(const char* path) {
  std::string content;
  if (!ReadFile(path, &content)) {
    std::fprintf(stderr, "trace_validate: cannot open '%s'\n", path);
    return 2;
  }
  std::string error;
  janus::obs::FoldedProfile folded;
  if (!janus::obs::ParseFoldedProfile(content, &folded, &error)) {
    std::fprintf(stderr, "trace_validate: %s: invalid folded stacks: %s\n",
                 path, error.c_str());
    return 1;
  }
  std::printf("%s: %zu stacks, %.3fms total\n", path,
              folded.stack_ns.size(), folded.total_ns / 1e6);
  if (folded.stack_ns.empty()) {
    std::fprintf(stderr, "trace_validate: dump contains no stacks\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--ledger") == 0) {
    return ValidateLedger(argv[2], argc, argv, 3);
  }
  if (argc >= 3 && std::strcmp(argv[1], "--prom") == 0) {
    return ValidatePrometheus(argv[2], argc, argv, 3);
  }
  if (argc >= 3 && std::strcmp(argv[1], "--profile") == 0) {
    return ValidateProfile(argv[2], argc, argv, 3);
  }
  if (argc >= 3 && std::strcmp(argv[1], "--folded") == 0) {
    return ValidateFolded(argv[2]);
  }
  if (argc >= 2 && argv[1][0] != '-') {
    return ValidateTrace(argv[1], argc, argv, 2);
  }
  std::fprintf(stderr,
               "usage: trace_validate <trace.json> [required-event...]\n"
               "       trace_validate --ledger <ledger.jsonl> "
               "[required-kind...]\n"
               "       trace_validate --prom <metrics.txt> "
               "[required-family...]\n"
               "       trace_validate --profile <profile.json> "
               "[required-unit...]\n"
               "       trace_validate --folded <stacks.txt>\n");
  return 2;
}
