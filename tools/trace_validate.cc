// Validates a Chrome-trace JSON file emitted via JANUS_TRACE /
// Trace::WriteChromeTrace: full JSON syntax check plus per-event schema
// (string name/cat/ph). Optional extra arguments are event names that must
// appear in the trace; CI uses this to assert the decision-loop phases
// were captured.
//
//   trace_validate <trace.json> [required-event-name...]
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json_check.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: trace_validate <trace.json> [required-event...]\n");
    return 2;
  }
  std::ifstream file(argv[1]);
  if (!file) {
    std::fprintf(stderr, "trace_validate: cannot open '%s'\n", argv[1]);
    return 2;
  }
  std::ostringstream content;
  content << file.rdbuf();

  std::string error;
  janus::obs::ChromeTraceSummary summary;
  if (!janus::obs::ValidateChromeTrace(content.str(), &error, &summary)) {
    std::fprintf(stderr, "trace_validate: %s: invalid trace: %s\n", argv[1],
                 error.c_str());
    return 1;
  }
  std::printf("%s: %d events, %zu distinct names, %zu categories\n", argv[1],
              summary.num_events, summary.names.size(),
              summary.categories.size());
  if (summary.num_events == 0) {
    std::fprintf(stderr, "trace_validate: trace contains no events\n");
    return 1;
  }
  int missing = 0;
  for (int i = 2; i < argc; ++i) {
    if (summary.names.count(argv[i]) == 0u) {
      std::fprintf(stderr,
                   "trace_validate: required event '%s' not present\n",
                   argv[i]);
      ++missing;
    } else {
      std::printf("  found required event '%s'\n", argv[i]);
    }
  }
  return missing == 0 ? 0 : 1;
}
