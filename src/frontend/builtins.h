// Standard builtins plus the framework-provided tensor/NN functions — the
// external-function whitelist of §4.3.1 that the Speculative Graph Generator
// knows how to convert one-to-one into graph operations.
#ifndef JANUS_FRONTEND_BUILTINS_H_
#define JANUS_FRONTEND_BUILTINS_H_

#include <optional>
#include <string>

#include "frontend/interpreter.h"

namespace janus::minipy {

// Installs every builtin into the interpreter's global scope. Called by
// users after constructing an Interpreter.
void InstallBuiltins(Interpreter& interp);

// Metadata the graph generator needs for a whitelisted builtin: how a call
// maps onto a graph op. Builtins not in the whitelist (e.g. print-to-string
// helpers) force imperative-only execution of their callers.
struct BuiltinOpInfo {
  std::string graph_op;   // runtime op name
  int tensor_args;        // leading args converted to graph values
  // Remaining args become node attributes; see generator for the schema.
};

// Returns the graph-conversion info for a builtin name, or nullopt if the
// builtin cannot be converted (imperative-only).
std::optional<BuiltinOpInfo> LookupBuiltinOp(const std::string& name);

}  // namespace janus::minipy

#endif  // JANUS_FRONTEND_BUILTINS_H_
