// Indentation-aware lexer for MiniPy (Python-style block structure).
#ifndef JANUS_FRONTEND_LEXER_H_
#define JANUS_FRONTEND_LEXER_H_

#include <string>
#include <vector>

#include "frontend/token.h"

namespace janus::minipy {

// Tokenises a full program. Throws InvalidArgument (with line info) on
// malformed input. The result always ends with kEndOfFile.
std::vector<Token> Tokenize(const std::string& source);

}  // namespace janus::minipy

#endif  // JANUS_FRONTEND_LEXER_H_
