// Eager (imperative) tensor execution with tape-based automatic
// differentiation — the TensorFlow Eager stand-in that the interpreter
// dispatches tensor operations to.
//
// Each eager op executes its kernel immediately *and*, while a tape is
// active, records an equivalent node into a shadow graph. Backward passes
// reuse the exact same symbolic gradient rules as graph mode
// (autodiff::AddGradients) and execute only the gradient subgraph, feeding
// the recorded forward values as precomputed node outputs. This guarantees
// imperative and symbolic training compute identical gradients — the
// correctness baseline the paper's evaluation compares against.
#ifndef JANUS_FRONTEND_EAGER_H_
#define JANUS_FRONTEND_EAGER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "runtime/run_context.h"
#include "tensor/tensor.h"

namespace janus::minipy {

class EagerContext {
 public:
  EagerContext(VariableStore* variables, Rng* rng);
  ~EagerContext();

  // Executes a single-output op immediately; records it on the active tape.
  Tensor Execute(const std::string& op, std::vector<Tensor> inputs,
                 AttrMap attrs = {});

  // Reads a model parameter (recorded as ReadVariable on the tape so
  // gradients can reach it).
  Tensor ReadVariable(const std::string& name);
  void AssignVariable(const std::string& name, Tensor value);
  VariableStore* variables() { return variables_; }
  Rng* rng() { return rng_; }

  // ---- tape control ----
  void StartTape();
  bool TapeActive() const { return tape_ != nullptr; }
  // Computes d(loss)/d(v) for every variable read under the tape, then
  // discards the tape. Returns variable name -> gradient.
  std::map<std::string, Tensor> GradientsAndStopTape(const Tensor& loss);

  // Number of eager kernel invocations so far (throughput accounting).
  std::int64_t ops_executed() const { return ops_executed_; }

  // Calibrated per-op dispatch cost (ns) standing in for CPython +
  // framework dispatch on the imperative executor; applied to every eager
  // kernel and to the tape's backward ops.
  void set_dispatch_penalty_ns(std::int64_t ns) { dispatch_penalty_ns_ = ns; }
  std::int64_t dispatch_penalty_ns() const { return dispatch_penalty_ns_; }

 private:
  struct Tape;

  VariableStore* variables_;
  Rng* rng_;
  std::unique_ptr<Tape> tape_;
  std::int64_t ops_executed_ = 0;
  std::int64_t dispatch_penalty_ns_ = 0;
};

}  // namespace janus::minipy

#endif  // JANUS_FRONTEND_EAGER_H_
