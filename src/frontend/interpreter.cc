#include "frontend/interpreter.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "frontend/parser.h"
#include "graph/source_site.h"
#include "tensor/ops.h"

namespace janus::minipy {
namespace {

// Non-error control-flow signals (thrown through C++ exceptions, caught at
// the enclosing construct).
struct ReturnSignal {
  Value value;
};
struct BreakSignal {};
struct ContinueSignal {};

[[noreturn]] void Fail(int line, const std::string& message) {
  throw MiniPyError("line " + std::to_string(line) + ": " + message);
}

double AsDouble(const Value& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* b = std::get_if<bool>(&v)) return *b ? 1.0 : 0.0;
  throw MiniPyError(std::string("expected a number, got ") +
                    ValueTypeName(v));
}

bool IsNumeric(const Value& v) {
  return Is<std::int64_t>(v) || Is<double>(v) || Is<bool>(v);
}

bool IsTensorish(const Value& v) {
  return Is<Tensor>(v) || Is<VariableRef>(v);
}

}  // namespace

struct Interpreter::Impl {
  Interpreter* self = nullptr;
  std::vector<Module> modules;  // owns ASTs for the lifetime of the session
  std::shared_ptr<Environment> globals = std::make_shared<Environment>();

  // Qualified names of the user functions currently on the call stack
  // (innermost last; empty at module top level). ExecStmt stamps each
  // statement's SourceSiteScope from this, so graphs built during eager
  // execution — the tape EagerContext records and the gradient plans
  // derived from it — carry the same imperative provenance the symbolic
  // generator stamps on converted graphs.
  std::vector<std::string> fn_name_stack;

  using HeapEntry =
      std::variant<std::weak_ptr<ListValue>, std::weak_ptr<DictValue>,
                   std::weak_ptr<ObjectValue>>;
  std::map<std::int64_t, HeapEntry> heap;
  std::int64_t next_heap_id = 1;

  // Environments captured as function closures. A FunctionValue's closure
  // points back at the environment that defines it (and object attributes /
  // container items can close further cycles), so these strongly-connected
  // object graphs never reach refcount zero on their own. ~Interpreter walks
  // this list and severs every cycle edge. Weak pointers only: registration
  // must not extend any environment's lifetime.
  std::vector<std::weak_ptr<Environment>> closure_envs;

  void RegisterClosureEnv(const std::shared_ptr<Environment>& env) {
    if (env == nullptr || env == globals) return;
    // Compact expired entries occasionally so long sessions with many
    // short-lived closures don't accumulate dead weak_ptrs.
    if (closure_envs.size() >= 1024 &&
        (closure_envs.size() & (closure_envs.size() - 1)) == 0) {
      std::erase_if(closure_envs,
                    [](const std::weak_ptr<Environment>& weak) {
                      return weak.expired();
                    });
    }
    closure_envs.push_back(env);
  }

  // ---- statements ----

  void ExecBlock(const std::vector<StmtPtr>& body,
                 const std::shared_ptr<Environment>& env) {
    for (const StmtPtr& stmt : body) ExecStmt(stmt.get(), env);
  }

  void ExecStmt(const Stmt* stmt, const std::shared_ptr<Environment>& env) {
    ++self->statements_executed_;
    // Ambient provenance for any graph nodes built while this statement
    // executes (eager tape recording). Cost when nothing records: one
    // SSO string copy and two pointer writes.
    SourceSiteScope site_scope(
        fn_name_stack.empty() ? std::string() : fn_name_stack.back(),
        stmt->line, stmt->id);
    switch (stmt->kind) {
      case StmtKind::kExpr:
        Eval(stmt->value.get(), env);
        return;
      case StmtKind::kAssign:
        AssignTo(stmt->target.get(), Eval(stmt->value.get(), env), env);
        return;
      case StmtKind::kAugAssign: {
        const Value current = Eval(stmt->target.get(), env);
        Value updated = self->BinaryOperation(
            stmt->aug_op, current, Eval(stmt->value.get(), env));
        AssignTo(stmt->target.get(), std::move(updated), env);
        return;
      }
      case StmtKind::kIf: {
        const bool taken = Truthy(Eval(stmt->value.get(), env));
        if (self->observer_ != nullptr) self->observer_->OnBranch(stmt, taken);
        if (taken) {
          ExecBlock(stmt->body, env);
        } else {
          ExecBlock(stmt->else_body, env);
        }
        return;
      }
      case StmtKind::kWhile: {
        std::int64_t trips = 0;
        try {
          while (Truthy(Eval(stmt->value.get(), env))) {
            ++trips;
            try {
              ExecBlock(stmt->body, env);
            } catch (const ContinueSignal&) {
            }
          }
        } catch (const BreakSignal&) {
        }
        if (self->observer_ != nullptr) {
          self->observer_->OnLoopFinished(stmt, trips);
        }
        return;
      }
      case StmtKind::kFor: {
        const Value iterable = Eval(stmt->value.get(), env);
        const std::string& var = stmt->target->str_value;
        std::int64_t trips = 0;
        const auto run_iter = [&](Value item) {
          ++trips;
          env->Define(var, std::move(item));
          try {
            ExecBlock(stmt->body, env);
          } catch (const ContinueSignal&) {
          }
        };
        try {
          if (const auto* list =
                  std::get_if<std::shared_ptr<ListValue>>(&iterable)) {
            const std::vector<Value> snapshot = (*list)->items;
            for (const Value& item : snapshot) run_iter(item);
          } else if (const auto* dict =
                         std::get_if<std::shared_ptr<DictValue>>(&iterable)) {
            for (const auto& [key, unused] : (*dict)->items) {
              if (const auto* s = std::get_if<std::string>(&key)) {
                run_iter(*s);
              } else {
                run_iter(std::get<std::int64_t>(key));
              }
            }
          } else if (const auto* tensor = std::get_if<Tensor>(&iterable)) {
            if (tensor->rank() < 1) {
              Fail(stmt->line, "cannot iterate a scalar tensor");
            }
            for (std::int64_t i = 0; i < tensor->dim(0); ++i) {
              run_iter(TensorIndex(*tensor, i));
            }
          } else {
            Fail(stmt->line, std::string("cannot iterate over ") +
                                 ValueTypeName(iterable));
          }
        } catch (const BreakSignal&) {
        }
        if (self->observer_ != nullptr) {
          self->observer_->OnLoopFinished(stmt, trips);
        }
        return;
      }
      case StmtKind::kDef: {
        auto fn = std::make_shared<FunctionValue>();
        fn->def = stmt;
        fn->closure = env;
        fn->qualified_name = stmt->name;
        RegisterClosureEnv(env);
        env->Define(stmt->name, std::move(fn));
        return;
      }
      case StmtKind::kClass: {
        auto cls = std::make_shared<ClassValue>();
        cls->name = stmt->name;
        cls->def = stmt;
        RegisterClosureEnv(env);
        for (const StmtPtr& method : stmt->methods) {
          auto fn = std::make_shared<FunctionValue>();
          fn->def = method.get();
          fn->closure = env;
          fn->qualified_name = stmt->name + "." + method->name;
          cls->methods[method->name] = std::move(fn);
        }
        env->Define(stmt->name, std::move(cls));
        return;
      }
      case StmtKind::kReturn:
        throw ReturnSignal{stmt->value != nullptr
                               ? Eval(stmt->value.get(), env)
                               : Value{NoneType{}}};
      case StmtKind::kPass:
        return;
      case StmtKind::kBreak:
        throw BreakSignal{};
      case StmtKind::kContinue:
        throw ContinueSignal{};
      case StmtKind::kGlobal:
        for (const std::string& name : stmt->globals) {
          env->global_names.push_back(name);
        }
        return;
      case StmtKind::kRaise: {
        const std::string message =
            stmt->value != nullptr
                ? ValueToString(Eval(stmt->value.get(), env))
                : std::string("exception");
        throw MiniPyError(message);
      }
      case StmtKind::kTry: {
        const auto run_finally = [&] {
          if (!stmt->finally_body.empty()) ExecBlock(stmt->finally_body, env);
        };
        try {
          ExecBlock(stmt->body, env);
        } catch (const MiniPyError& e) {
          if (!stmt->else_body.empty()) {
            if (!stmt->except_name.empty()) {
              env->Define(stmt->except_name, std::string(e.what()));
            }
            try {
              ExecBlock(stmt->else_body, env);
            } catch (...) {
              run_finally();
              throw;
            }
            run_finally();
            return;
          }
          run_finally();
          throw;
        } catch (...) {
          run_finally();
          throw;
        }
        run_finally();
        return;
      }
    }
    throw InternalError("unhandled statement kind");
  }

  // ---- assignment targets ----

  void AssignTo(const Expr* target, Value value,
                const std::shared_ptr<Environment>& env) {
    switch (target->kind) {
      case ExprKind::kName: {
        const std::string& name = target->str_value;
        const bool is_global =
            std::find(env->global_names.begin(), env->global_names.end(),
                      name) != env->global_names.end();
        if (is_global) {
          globals->Define(name, std::move(value));
        } else {
          env->Define(name, std::move(value));
        }
        return;
      }
      case ExprKind::kAttribute: {
        const Value base = Eval(target->left.get(), env);
        if (const auto* obj =
                std::get_if<std::shared_ptr<ObjectValue>>(&base)) {
          (*obj)->attrs[target->str_value] = std::move(value);
          return;
        }
        Fail(target->line, std::string("cannot set attribute on ") +
                               ValueTypeName(base));
      }
      case ExprKind::kSubscript: {
        const Value base = Eval(target->left.get(), env);
        const Value index = Eval(target->right.get(), env);
        if (const auto* list =
                std::get_if<std::shared_ptr<ListValue>>(&base)) {
          const std::int64_t i = NormalizeIndex(
              index, static_cast<std::int64_t>((*list)->items.size()),
              target->line);
          (*list)->items[static_cast<std::size_t>(i)] = std::move(value);
          return;
        }
        if (const auto* dict =
                std::get_if<std::shared_ptr<DictValue>>(&base)) {
          (*dict)->items[ToDictKey(index, target->line)] = std::move(value);
          return;
        }
        Fail(target->line, std::string("cannot subscript-assign ") +
                               ValueTypeName(base));
      }
      case ExprKind::kTuple: {
        // Tuple unpacking from a list or tuple value.
        const auto* list = std::get_if<std::shared_ptr<ListValue>>(&value);
        if (list == nullptr ||
            (*list)->items.size() != target->elements.size()) {
          Fail(target->line, "cannot unpack value into tuple target");
        }
        for (std::size_t i = 0; i < target->elements.size(); ++i) {
          AssignTo(target->elements[i].get(), (*list)->items[i], env);
        }
        return;
      }
      default:
        Fail(target->line, "invalid assignment target");
    }
  }

  static std::int64_t NormalizeIndex(const Value& index, std::int64_t size,
                                     int line) {
    if (!Is<std::int64_t>(index)) {
      Fail(line, std::string("index must be int, got ") +
                     ValueTypeName(index));
    }
    std::int64_t i = std::get<std::int64_t>(index);
    if (i < 0) i += size;
    if (i < 0 || i >= size) {
      Fail(line, "index " + std::to_string(std::get<std::int64_t>(index)) +
                     " out of range (size " + std::to_string(size) + ")");
    }
    return i;
  }

  static DictKey ToDictKey(const Value& key, int line) {
    if (const auto* i = std::get_if<std::int64_t>(&key)) return *i;
    if (const auto* s = std::get_if<std::string>(&key)) return *s;
    Fail(line, std::string("dict keys must be int or str, got ") +
                   ValueTypeName(key));
  }

  // Tensor indexing along axis 0 (drops the axis), via eager ops so the
  // tape can differentiate through it.
  Value TensorIndex(const Tensor& t, std::int64_t i) {
    std::vector<std::int64_t> begin(static_cast<std::size_t>(t.rank()), 0);
    begin[0] = i;
    std::vector<std::int64_t> size = t.shape().dims();
    size[0] = 1;
    Tensor row = self->eager_.Execute(
        "Slice", {t}, {{"begin", begin}, {"size", size}});
    std::vector<std::int64_t> dims(t.shape().dims().begin() + 1,
                                   t.shape().dims().end());
    return self->eager_.Execute("Reshape", {row}, {{"shape", dims}});
  }

  // ---- expressions ----

  Value Eval(const Expr* expr, const std::shared_ptr<Environment>& env) {
    switch (expr->kind) {
      case ExprKind::kIntLit:
        return expr->int_value;
      case ExprKind::kFloatLit:
        return expr->float_value;
      case ExprKind::kStringLit:
        return expr->str_value;
      case ExprKind::kBoolLit:
        return expr->bool_value;
      case ExprKind::kNoneLit:
        return NoneType{};
      case ExprKind::kName: {
        Value* found = env->Find(expr->str_value);
        if (found == nullptr) {
          Fail(expr->line, "name '" + expr->str_value + "' is not defined");
        }
        return *found;
      }
      case ExprKind::kUnary: {
        Value operand = Eval(expr->left.get(), env);
        if (expr->unary_op == UnaryOp::kNot) return !Truthy(operand);
        // Negation.
        if (const auto* i = std::get_if<std::int64_t>(&operand)) return -*i;
        if (const auto* d = std::get_if<double>(&operand)) return -*d;
        if (IsTensorish(operand)) {
          return self->eager_.Execute("Neg", {self->ToTensor(operand)});
        }
        Fail(expr->line, std::string("cannot negate ") +
                             ValueTypeName(operand));
      }
      case ExprKind::kBinary:
        return self->BinaryOperation(expr->binary_op,
                                     Eval(expr->left.get(), env),
                                     Eval(expr->right.get(), env));
      case ExprKind::kCompare:
        return self->CompareOperation(expr->compare_op,
                                      Eval(expr->left.get(), env),
                                      Eval(expr->right.get(), env));
      case ExprKind::kBoolOp: {
        Value left = Eval(expr->left.get(), env);
        if (expr->bool_op == BoolOpKind::kAnd) {
          return Truthy(left) ? Eval(expr->right.get(), env) : left;
        }
        return Truthy(left) ? left : Eval(expr->right.get(), env);
      }
      case ExprKind::kCall: {
        const Value callee = Eval(expr->left.get(), env);
        std::vector<Value> args;
        args.reserve(expr->elements.size());
        for (const ExprPtr& arg : expr->elements) {
          args.push_back(Eval(arg.get(), env));
        }
        return self->CallValue(callee, std::move(args), expr);
      }
      case ExprKind::kAttribute:
        return EvalAttribute(expr, env);
      case ExprKind::kSubscript: {
        const Value base = Eval(expr->left.get(), env);
        const Value index = Eval(expr->right.get(), env);
        Value result = SubscriptGet(base, index, expr->line);
        if (self->observer_ != nullptr) {
          self->observer_->OnSubscrLoad(expr, base, result);
        }
        return result;
      }
      case ExprKind::kList:
      case ExprKind::kTuple: {
        auto list = self->MakeList();
        list->items.reserve(expr->elements.size());
        for (const ExprPtr& element : expr->elements) {
          list->items.push_back(Eval(element.get(), env));
        }
        return list;
      }
      case ExprKind::kDict: {
        auto dict = self->MakeDict();
        for (std::size_t i = 0; i < expr->elements.size(); ++i) {
          dict->items[ToDictKey(Eval(expr->elements[i].get(), env),
                                expr->line)] =
              Eval(expr->values[i].get(), env);
        }
        return dict;
      }
      case ExprKind::kLambda: {
        auto fn = std::make_shared<FunctionValue>();
        fn->def = nullptr;
        fn->closure = env;
        fn->qualified_name = "<lambda>";
        fn->lambda = expr;
        RegisterClosureEnv(env);
        return fn;
      }
    }
    throw InternalError("unhandled expression kind");
  }

  Value EvalAttribute(const Expr* expr,
                      const std::shared_ptr<Environment>& env) {
    const Value base = Eval(expr->left.get(), env);
    const std::string& name = expr->str_value;
    Value result;
    if (const auto* obj = std::get_if<std::shared_ptr<ObjectValue>>(&base)) {
      const auto attr_it = (*obj)->attrs.find(name);
      if (attr_it != (*obj)->attrs.end()) {
        result = attr_it->second;
      } else {
        const auto method_it = (*obj)->cls()->methods.find(name);
        if (method_it == (*obj)->cls()->methods.end()) {
          Fail(expr->line, "'" + (*obj)->cls()->name +
                               "' object has no attribute '" + name + "'");
        }
        auto bound = std::make_shared<FunctionValue>(*method_it->second);
        bound->self = base;
        result = std::move(bound);
      }
    } else if (const auto* list =
                   std::get_if<std::shared_ptr<ListValue>>(&base)) {
      if (name == "append") {
        auto target = *list;
        result = std::make_shared<BuiltinFunction>(
            "list.append",
            [target](Interpreter&, std::span<Value> args) -> Value {
              if (args.size() != 1) {
                throw MiniPyError("append() takes exactly one argument");
              }
              target->items.push_back(args[0]);
              return NoneType{};
            });
      } else {
        Fail(expr->line, "list has no attribute '" + name + "'");
      }
    } else if (const auto* tensor = std::get_if<Tensor>(&base)) {
      if (name == "shape") {
        auto dims = self->MakeList();
        for (const std::int64_t d : tensor->shape().dims()) {
          dims->items.push_back(d);
        }
        result = std::move(dims);
      } else {
        Fail(expr->line, "tensor has no attribute '" + name + "'");
      }
    } else {
      Fail(expr->line, std::string("cannot read attribute of ") +
                           ValueTypeName(base));
    }
    if (self->observer_ != nullptr) {
      self->observer_->OnAttrLoad(expr, base, result);
    }
    return result;
  }

  Value SubscriptGet(const Value& base, const Value& index, int line) {
    if (const auto* list = std::get_if<std::shared_ptr<ListValue>>(&base)) {
      const std::int64_t i = NormalizeIndex(
          index, static_cast<std::int64_t>((*list)->items.size()), line);
      return (*list)->items[static_cast<std::size_t>(i)];
    }
    if (const auto* dict = std::get_if<std::shared_ptr<DictValue>>(&base)) {
      const DictKey key = ToDictKey(index, line);
      const auto it = (*dict)->items.find(key);
      if (it == (*dict)->items.end()) Fail(line, "missing dict key");
      return it->second;
    }
    if (const auto* tensor = std::get_if<Tensor>(&base)) {
      if (!Is<std::int64_t>(index)) {
        Fail(line, "tensor index must be an int");
      }
      const std::int64_t i =
          NormalizeIndex(index, tensor->dim(0), line);
      return TensorIndex(*tensor, i);
    }
    if (const auto* s = std::get_if<std::string>(&base)) {
      const std::int64_t i =
          NormalizeIndex(index, static_cast<std::int64_t>(s->size()), line);
      return std::string(1, (*s)[static_cast<std::size_t>(i)]);
    }
    Fail(line, std::string("cannot subscript ") + ValueTypeName(base));
  }

  // Sweep expired heap entries occasionally so long runs do not accumulate.
  void MaybeSweepHeap() {
    if (heap.size() < 4096 || next_heap_id % 4096 != 0) return;
    std::erase_if(heap, [](const auto& entry) {
      return std::visit([](const auto& weak) { return weak.expired(); },
                        entry.second);
    });
  }
};

Interpreter::Interpreter(VariableStore* variables, Rng* rng)
    : impl_(std::make_unique<Impl>()),
      variables_(variables),
      rng_(rng),
      eager_(variables, rng) {
  impl_->self = this;
}

Interpreter::~Interpreter() {
  // Sever reference cycles so the interpreter's object graph is actually
  // reclaimed. Three cycle families exist: environment -> FunctionValue ->
  // closure environment; object/list/dict values reachable from themselves
  // through attrs/items; and combinations of the two. The heap registry and
  // closure_envs both hold weak pointers, so everything still alive here is
  // alive only because of such a cycle (or an external reference, for which
  // clearing the contents is still safe — the value itself stays valid).
  for (const std::weak_ptr<Environment>& weak : impl_->closure_envs) {
    if (const std::shared_ptr<Environment> env = weak.lock()) env->Clear();
  }
  impl_->globals->Clear();
  for (auto& entry : impl_->heap) {
    std::visit(
        [](auto& weak) {
          using T = typename std::decay_t<decltype(weak)>::element_type;
          if (const std::shared_ptr<T> value = weak.lock()) {
            if constexpr (std::is_same_v<T, ObjectValue>) {
              value->attrs.clear();
            } else {
              value->items.clear();
            }
          }
        },
        entry.second);
  }
}

void Interpreter::Run(const std::string& source) { Run(Parse(source)); }

void Interpreter::Run(Module module) {
  impl_->modules.push_back(std::move(module));
  impl_->ExecBlock(impl_->modules.back().body, impl_->globals);
}

Value Interpreter::GetGlobal(const std::string& name) const {
  Value* found = impl_->globals->Find(name);
  if (found == nullptr) {
    throw InvalidArgument("global '" + name + "' is not defined");
  }
  return *found;
}

void Interpreter::SetGlobal(const std::string& name, Value value) {
  impl_->globals->Define(name, std::move(value));
}

Value Interpreter::CallFunction(const std::shared_ptr<FunctionValue>& fn,
                                std::vector<Value> args) {
  if (interceptor_ != nullptr) {
    Value result;
    if (interceptor_->MaybeIntercept(fn, args, &result)) return result;
  }
  // Bound receiver goes first.
  if (!Is<NoneType>(fn->self)) {
    args.insert(args.begin(), fn->self);
  }
  auto env = std::make_shared<Environment>(
      fn->closure != nullptr ? fn->closure : impl_->globals);
  // Track the qualified-name call stack so ExecStmt can stamp provenance;
  // the guard survives MiniPyError / ReturnSignal unwinding.
  struct FnNameGuard {
    std::vector<std::string>* stack;
    explicit FnNameGuard(std::vector<std::string>* s, std::string name)
        : stack(s) {
      stack->push_back(std::move(name));
    }
    ~FnNameGuard() { stack->pop_back(); }
  };
  FnNameGuard name_guard(&impl_->fn_name_stack, fn->qualified_name);
  if (fn->lambda != nullptr) {
    if (args.size() != fn->lambda->params.size()) {
      throw MiniPyError(fn->qualified_name + "() takes " +
                        std::to_string(fn->lambda->params.size()) +
                        " arguments, got " + std::to_string(args.size()));
    }
    for (std::size_t i = 0; i < args.size(); ++i) {
      env->Define(fn->lambda->params[i], std::move(args[i]));
    }
    // Lambda bodies are single expressions with no statement scope of their
    // own; attribute their nodes to the lambda itself.
    SourceSiteScope lambda_scope(fn->qualified_name, fn->lambda->line);
    return impl_->Eval(fn->lambda->left.get(), env);
  }
  const Stmt* def = fn->def;
  if (args.size() != def->params.size()) {
    throw MiniPyError(fn->qualified_name + "() takes " +
                      std::to_string(def->params.size()) +
                      " arguments, got " + std::to_string(args.size()));
  }
  if (observer_ != nullptr) observer_->OnFunctionEntry(def, args);
  for (std::size_t i = 0; i < args.size(); ++i) {
    env->Define(def->params[i], std::move(args[i]));
  }
  try {
    impl_->ExecBlock(def->body, env);
  } catch (ReturnSignal& ret) {
    return std::move(ret.value);
  }
  return NoneType{};
}

Value Interpreter::CallValue(const Value& callee, std::vector<Value> args,
                             const Expr* call_site) {
  if (observer_ != nullptr && call_site != nullptr) {
    observer_->OnCall(call_site, callee);
  }
  if (const auto* fn = std::get_if<std::shared_ptr<FunctionValue>>(&callee)) {
    return CallFunction(*fn, std::move(args));
  }
  if (const auto* builtin =
          std::get_if<std::shared_ptr<BuiltinFunction>>(&callee)) {
    return (*builtin)->fn(*this, args);
  }
  if (const auto* cls = std::get_if<std::shared_ptr<ClassValue>>(&callee)) {
    auto object = MakeObject(*cls);
    const auto init = (*cls)->methods.find("__init__");
    if (init != (*cls)->methods.end()) {
      auto bound = std::make_shared<FunctionValue>(*init->second);
      bound->self = object;
      CallFunction(bound, std::move(args));
    } else if (!args.empty()) {
      throw MiniPyError((*cls)->name + "() takes no arguments");
    }
    return object;
  }
  if (const auto* obj = std::get_if<std::shared_ptr<ObjectValue>>(&callee)) {
    // Callable objects via __call__.
    const auto call = (*obj)->cls()->methods.find("__call__");
    if (call != (*obj)->cls()->methods.end()) {
      auto bound = std::make_shared<FunctionValue>(*call->second);
      bound->self = callee;
      return CallFunction(bound, std::move(args));
    }
  }
  throw MiniPyError(std::string("value of type ") + ValueTypeName(callee) +
                    " is not callable");
}

Value Interpreter::EvaluateExpression(const std::string& expression_source) {
  Module module = Parse(expression_source + "\n");
  if (module.body.size() != 1 || module.body[0]->kind != StmtKind::kExpr) {
    throw InvalidArgument("EvaluateExpression expects a single expression");
  }
  impl_->modules.push_back(std::move(module));
  return impl_->Eval(impl_->modules.back().body[0]->value.get(),
                     impl_->globals);
}

Value Interpreter::HeapLookup(std::int64_t heap_id) const {
  const auto it = impl_->heap.find(heap_id);
  if (it == impl_->heap.end()) {
    throw InternalError("dangling heap id " + std::to_string(heap_id));
  }
  return std::visit(
      [heap_id](const auto& weak) -> Value {
        auto strong = weak.lock();
        if (strong == nullptr) {
          throw InternalError("expired heap id " + std::to_string(heap_id));
        }
        return strong;
      },
      it->second);
}

std::int64_t Interpreter::NextHeapId() { return impl_->next_heap_id++; }

void Interpreter::RegisterHeapValue(std::int64_t id, Value value) {
  if (const auto* list = std::get_if<std::shared_ptr<ListValue>>(&value)) {
    impl_->heap[id] = std::weak_ptr<ListValue>(*list);
  } else if (const auto* dict =
                 std::get_if<std::shared_ptr<DictValue>>(&value)) {
    impl_->heap[id] = std::weak_ptr<DictValue>(*dict);
  } else if (const auto* obj =
                 std::get_if<std::shared_ptr<ObjectValue>>(&value)) {
    impl_->heap[id] = std::weak_ptr<ObjectValue>(*obj);
  } else {
    throw InternalError("only heap values can be registered");
  }
  impl_->MaybeSweepHeap();
}

std::shared_ptr<ListValue> Interpreter::MakeList(std::vector<Value> items) {
  auto list = std::make_shared<ListValue>(NextHeapId());
  list->items = std::move(items);
  RegisterHeapValue(list->heap_id(), list);
  return list;
}

std::shared_ptr<DictValue> Interpreter::MakeDict() {
  auto dict = std::make_shared<DictValue>(NextHeapId());
  RegisterHeapValue(dict->heap_id(), dict);
  return dict;
}

std::shared_ptr<ObjectValue> Interpreter::MakeObject(
    std::shared_ptr<ClassValue> cls) {
  auto object = std::make_shared<ObjectValue>(NextHeapId(), std::move(cls));
  RegisterHeapValue(object->heap_id(), object);
  return object;
}

void Interpreter::RegisterBuiltin(const std::string& name,
                                  BuiltinFunction::Fn fn) {
  impl_->globals->Define(
      name, std::make_shared<BuiltinFunction>(name, std::move(fn)));
}

Tensor Interpreter::ToTensor(const Value& value) {
  if (const auto* tensor = std::get_if<Tensor>(&value)) return *tensor;
  if (const auto* var = std::get_if<VariableRef>(&value)) {
    return eager_.ReadVariable(var->name);
  }
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    return Tensor::ScalarInt(*i);
  }
  if (const auto* d = std::get_if<double>(&value)) {
    return Tensor::Scalar(static_cast<float>(*d));
  }
  if (const auto* b = std::get_if<bool>(&value)) {
    return Tensor::ScalarBool(*b);
  }
  throw MiniPyError(std::string("cannot convert ") + ValueTypeName(value) +
                    " to a tensor");
}

namespace {

// Aligns two tensors' dtypes for a binary op (int promotes to float when
// mixed; bool promotes to int for arithmetic).
void AlignDTypes(EagerContext& eager, Tensor& a, Tensor& b, bool arithmetic) {
  const auto cast = [&eager](Tensor& t, DType dtype) {
    t = eager.Execute("Cast", {t}, {{"dtype", dtype}});
  };
  if (arithmetic) {
    if (a.dtype() == DType::kBool) cast(a, DType::kInt64);
    if (b.dtype() == DType::kBool) cast(b, DType::kInt64);
  }
  if (a.dtype() == b.dtype()) return;
  if (a.dtype() == DType::kFloat32 || b.dtype() == DType::kFloat32) {
    if (a.dtype() != DType::kFloat32) cast(a, DType::kFloat32);
    if (b.dtype() != DType::kFloat32) cast(b, DType::kFloat32);
    return;
  }
  if (a.dtype() == DType::kInt64 || b.dtype() == DType::kInt64) {
    if (a.dtype() != DType::kInt64) cast(a, DType::kInt64);
    if (b.dtype() != DType::kInt64) cast(b, DType::kInt64);
  }
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "Add";
    case BinaryOp::kSub: return "Sub";
    case BinaryOp::kMul: return "Mul";
    case BinaryOp::kDiv: return "Div";
    case BinaryOp::kFloorDiv: return "FloorDiv";
    case BinaryOp::kMod: return "Mod";
    case BinaryOp::kPow: return "Pow";
  }
  return "?";
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "Equal";
    case CompareOp::kNe: return "NotEqual";
    case CompareOp::kLt: return "Less";
    case CompareOp::kLe: return "LessEqual";
    case CompareOp::kGt: return "Greater";
    case CompareOp::kGe: return "GreaterEqual";
    case CompareOp::kIn: return "In";
  }
  return "?";
}

}  // namespace

Value Interpreter::BinaryOperation(BinaryOp op, const Value& lhs,
                                   const Value& rhs) {
  // Tensor path (either operand a tensor or variable).
  if (IsTensorish(lhs) || IsTensorish(rhs)) {
    Tensor a = ToTensor(lhs);
    Tensor b = ToTensor(rhs);
    AlignDTypes(eager_, a, b, /*arithmetic=*/true);
    return eager_.Execute(BinaryOpName(op), {std::move(a), std::move(b)});
  }
  // Pure-int path (bools act as ints).
  const auto as_int = [](const Value& v) -> std::optional<std::int64_t> {
    if (const auto* i = std::get_if<std::int64_t>(&v)) return *i;
    if (const auto* b = std::get_if<bool>(&v)) {
      return *b ? std::int64_t{1} : std::int64_t{0};
    }
    return std::nullopt;
  };
  const auto li = as_int(lhs);
  const auto ri = as_int(rhs);
  if (li.has_value() && ri.has_value()) {
    switch (op) {
      case BinaryOp::kAdd: return *li + *ri;
      case BinaryOp::kSub: return *li - *ri;
      case BinaryOp::kMul: return *li * *ri;
      case BinaryOp::kDiv:
        if (*ri == 0) throw MiniPyError("division by zero");
        return static_cast<double>(*li) / static_cast<double>(*ri);
      case BinaryOp::kFloorDiv: {
        if (*ri == 0) throw MiniPyError("integer division by zero");
        std::int64_t q = *li / *ri;
        if ((*li % *ri != 0) && ((*li < 0) != (*ri < 0))) --q;
        return q;
      }
      case BinaryOp::kMod: {
        if (*ri == 0) throw MiniPyError("integer modulo by zero");
        std::int64_t r = *li % *ri;
        if (r != 0 && ((r < 0) != (*ri < 0))) r += *ri;
        return r;
      }
      case BinaryOp::kPow: {
        if (*ri < 0) {
          return std::pow(static_cast<double>(*li),
                          static_cast<double>(*ri));
        }
        std::int64_t result = 1;
        for (std::int64_t k = 0; k < *ri; ++k) result *= *li;
        return result;
      }
    }
  }
  // Float path.
  if (IsNumeric(lhs) && IsNumeric(rhs)) {
    const double a = AsDouble(lhs);
    const double b = AsDouble(rhs);
    switch (op) {
      case BinaryOp::kAdd: return a + b;
      case BinaryOp::kSub: return a - b;
      case BinaryOp::kMul: return a * b;
      case BinaryOp::kDiv:
        if (b == 0.0) throw MiniPyError("division by zero");
        return a / b;
      case BinaryOp::kFloorDiv: return std::floor(a / b);
      case BinaryOp::kMod: return a - b * std::floor(a / b);
      case BinaryOp::kPow: return std::pow(a, b);
    }
  }
  // String concatenation / repetition.
  if (Is<std::string>(lhs) && Is<std::string>(rhs) && op == BinaryOp::kAdd) {
    return std::get<std::string>(lhs) + std::get<std::string>(rhs);
  }
  // List concatenation.
  if (Is<std::shared_ptr<ListValue>>(lhs) &&
      Is<std::shared_ptr<ListValue>>(rhs) && op == BinaryOp::kAdd) {
    auto result = MakeList(std::get<std::shared_ptr<ListValue>>(lhs)->items);
    const auto& right = std::get<std::shared_ptr<ListValue>>(rhs)->items;
    result->items.insert(result->items.end(), right.begin(), right.end());
    return result;
  }
  throw MiniPyError(std::string("unsupported operand types for ") +
                    BinaryOpName(op) + ": " + ValueTypeName(lhs) + " and " +
                    ValueTypeName(rhs));
}

Value Interpreter::CompareOperation(CompareOp op, const Value& lhs,
                                    const Value& rhs) {
  if (op == CompareOp::kIn) {
    if (const auto* list = std::get_if<std::shared_ptr<ListValue>>(&rhs)) {
      for (const Value& item : (*list)->items) {
        if (ValuesEqual(lhs, item)) return true;
      }
      return false;
    }
    if (const auto* dict = std::get_if<std::shared_ptr<DictValue>>(&rhs)) {
      return (*dict)->items.count(Impl::ToDictKey(lhs, 0)) != 0u;
    }
    throw MiniPyError("'in' requires a list or dict on the right");
  }
  if (IsTensorish(lhs) || IsTensorish(rhs)) {
    Tensor a = ToTensor(lhs);
    Tensor b = ToTensor(rhs);
    AlignDTypes(eager_, a, b, /*arithmetic=*/false);
    return eager_.Execute(CompareOpName(op), {std::move(a), std::move(b)});
  }
  if (IsNumeric(lhs) && IsNumeric(rhs)) {
    const double a = AsDouble(lhs);
    const double b = AsDouble(rhs);
    switch (op) {
      case CompareOp::kEq: return a == b;
      case CompareOp::kNe: return a != b;
      case CompareOp::kLt: return a < b;
      case CompareOp::kLe: return a <= b;
      case CompareOp::kGt: return a > b;
      case CompareOp::kGe: return a >= b;
      case CompareOp::kIn: break;
    }
  }
  if (Is<std::string>(lhs) && Is<std::string>(rhs)) {
    const auto& a = std::get<std::string>(lhs);
    const auto& b = std::get<std::string>(rhs);
    switch (op) {
      case CompareOp::kEq: return a == b;
      case CompareOp::kNe: return a != b;
      case CompareOp::kLt: return a < b;
      case CompareOp::kLe: return a <= b;
      case CompareOp::kGt: return a > b;
      case CompareOp::kGe: return a >= b;
      case CompareOp::kIn: break;
    }
  }
  if (op == CompareOp::kEq) return ValuesEqual(lhs, rhs);
  if (op == CompareOp::kNe) return !ValuesEqual(lhs, rhs);
  throw MiniPyError(std::string("cannot compare ") + ValueTypeName(lhs) +
                    " and " + ValueTypeName(rhs));
}

}  // namespace janus::minipy
