// The MiniPy tree-walking interpreter — the imperative executor of Fig. 2.
//
// Two extension points connect it to JANUS (src/core):
//  * ExecutionObserver receives profiling callbacks (branch decisions, loop
//    trip counts, call targets, function-entry argument values, attribute
//    and subscript loads) — the Profiler of §3.1.
//  * CallInterceptor is consulted before every user-function call; the
//    Speculative Graph Executor implements it to divert calls to cached
//    symbolic graphs (and to fall back here when assumptions fail).
#ifndef JANUS_FRONTEND_INTERPRETER_H_
#define JANUS_FRONTEND_INTERPRETER_H_

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "frontend/ast.h"
#include "frontend/eager.h"
#include "frontend/value.h"
#include "runtime/run_context.h"

namespace janus::minipy {

// Raised by MiniPy `raise` statements; caught by `try`/`except`.
class MiniPyError : public Error {
 public:
  explicit MiniPyError(std::string message) : Error(std::move(message)) {}
};

class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;
  virtual void OnBranch(const Stmt* /*stmt*/, bool /*taken*/) {}
  virtual void OnLoopFinished(const Stmt* /*stmt*/,
                              std::int64_t /*trip_count*/) {}
  virtual void OnCall(const Expr* /*call*/, const Value& /*callee*/) {}
  virtual void OnFunctionEntry(const Stmt* /*def*/,
                               std::span<const Value> /*args*/) {}
  virtual void OnAttrLoad(const Expr* /*attr*/, const Value& /*object*/,
                          const Value& /*result*/) {}
  virtual void OnSubscrLoad(const Expr* /*subscr*/, const Value& /*object*/,
                            const Value& /*result*/) {}
};

class CallInterceptor {
 public:
  virtual ~CallInterceptor() = default;
  // Returns true if the call was handled (result written); false to let the
  // interpreter execute it imperatively.
  virtual bool MaybeIntercept(const std::shared_ptr<FunctionValue>& fn,
                              std::span<Value> args, Value* result) = 0;
};

class Interpreter {
 public:
  Interpreter(VariableStore* variables, Rng* rng);
  ~Interpreter();
  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  // Parses and executes a program in the global scope.
  void Run(const std::string& source);
  // Executes an already parsed module (takes ownership; AST nodes must stay
  // alive for functions defined in it).
  void Run(Module module);

  // Looks up a global (e.g. a model object or function defined by Run).
  Value GetGlobal(const std::string& name) const;
  void SetGlobal(const std::string& name, Value value);

  // Calls a MiniPy function value with the given arguments.
  Value CallFunction(const std::shared_ptr<FunctionValue>& fn,
                     std::vector<Value> args);
  // Invokes any callable value (function, builtin, class, bound method).
  Value CallValue(const Value& callee, std::vector<Value> args,
                  const Expr* call_site = nullptr);

  // ---- expression/statement evaluation (used by tests and builtins) ----
  Value EvaluateExpression(const std::string& expression_source);

  // ---- services ----
  EagerContext& eager() { return eager_; }
  VariableStore* variables() { return variables_; }
  Rng* rng() { return rng_; }

  // Heap registry: id -> heap value (list/dict/object), used by the graph
  // runtime's StateInterface to dereference pointer tensors.
  Value HeapLookup(std::int64_t heap_id) const;
  std::int64_t NextHeapId();
  void RegisterHeapValue(std::int64_t id, Value value);

  std::shared_ptr<ListValue> MakeList(std::vector<Value> items = {});
  std::shared_ptr<DictValue> MakeDict();
  std::shared_ptr<ObjectValue> MakeObject(std::shared_ptr<ClassValue> cls);

  // ---- JANUS integration ----
  void set_observer(ExecutionObserver* observer) { observer_ = observer; }
  void set_interceptor(CallInterceptor* interceptor) {
    interceptor_ = interceptor;
  }
  ExecutionObserver* observer() { return observer_; }

  // Registers an additional builtin (used by the model zoo to expose
  // simulated environments etc.).
  void RegisterBuiltin(const std::string& name, BuiltinFunction::Fn fn);

  // Total interpreter statements + eager ops executed (overhead accounting).
  std::int64_t statements_executed() const { return statements_executed_; }

  // ---- value operations shared with builtins ----
  Value BinaryOperation(BinaryOp op, const Value& lhs, const Value& rhs);
  Value CompareOperation(CompareOp op, const Value& lhs, const Value& rhs);
  // Coerces ints/floats/variables to a Tensor (for tensor builtins).
  Tensor ToTensor(const Value& value);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;

  VariableStore* variables_;
  Rng* rng_;
  EagerContext eager_;
  ExecutionObserver* observer_ = nullptr;
  CallInterceptor* interceptor_ = nullptr;
  std::int64_t statements_executed_ = 0;

  friend struct InterpreterAccess;
};

}  // namespace janus::minipy

#endif  // JANUS_FRONTEND_INTERPRETER_H_
