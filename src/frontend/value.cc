#include "frontend/value.h"

#include <sstream>

#include "common/error.h"

namespace janus::minipy {

Value* Environment::Find(const std::string& name) {
  const auto it = vars_.find(name);
  if (it != vars_.end()) return &it->second;
  if (parent_ != nullptr) return parent_->Find(name);
  return nullptr;
}

void Environment::Define(const std::string& name, Value value) {
  vars_[name] = std::move(value);
}

bool Environment::Has(const std::string& name) const {
  return vars_.find(name) != vars_.end();
}

const char* ValueTypeName(const Value& value) {
  struct Visitor {
    const char* operator()(const NoneType&) const { return "None"; }
    const char* operator()(bool) const { return "bool"; }
    const char* operator()(std::int64_t) const { return "int"; }
    const char* operator()(double) const { return "float"; }
    const char* operator()(const std::string&) const { return "str"; }
    const char* operator()(const Tensor&) const { return "tensor"; }
    const char* operator()(const VariableRef&) const { return "variable"; }
    const char* operator()(const std::shared_ptr<ListValue>&) const {
      return "list";
    }
    const char* operator()(const std::shared_ptr<DictValue>&) const {
      return "dict";
    }
    const char* operator()(const std::shared_ptr<ObjectValue>&) const {
      return "object";
    }
    const char* operator()(const std::shared_ptr<FunctionValue>&) const {
      return "function";
    }
    const char* operator()(const std::shared_ptr<ClassValue>&) const {
      return "class";
    }
    const char* operator()(const std::shared_ptr<BuiltinFunction>&) const {
      return "builtin";
    }
  };
  return std::visit(Visitor{}, value);
}

namespace {
struct TruthyVisitor {
  bool operator()(const NoneType&) const { return false; }
  bool operator()(bool b) const { return b; }
  bool operator()(std::int64_t i) const { return i != 0; }
  bool operator()(double d) const { return d != 0.0; }
  bool operator()(const std::string& s) const { return !s.empty(); }
  bool operator()(const Tensor& t) const {
    if (t.num_elements() != 1) {
      throw InvalidArgument("truth value of a non-scalar tensor is ambiguous");
    }
    return t.ScalarBoolValue();
  }
  bool operator()(const VariableRef&) const { return true; }
  bool operator()(const std::shared_ptr<ListValue>& l) const {
    return !l->items.empty();
  }
  bool operator()(const std::shared_ptr<DictValue>& d) const {
    return !d->items.empty();
  }
  template <typename T>
  bool operator()(const std::shared_ptr<T>&) const {
    return true;
  }
};
}  // namespace

bool Truthy(const Value& value) { return std::visit(TruthyVisitor{}, value); }

std::string ValueToString(const Value& value) {
  std::ostringstream oss;
  struct Visitor {
    std::ostringstream& oss;
    void operator()(const NoneType&) const { oss << "None"; }
    void operator()(bool b) const { oss << (b ? "True" : "False"); }
    void operator()(std::int64_t i) const { oss << i; }
    void operator()(double d) const { oss << d; }
    void operator()(const std::string& s) const { oss << s; }
    void operator()(const Tensor& t) const { oss << t.ToString(8); }
    void operator()(const VariableRef& v) const {
      oss << "<variable '" << v.name << "'>";
    }
    void operator()(const std::shared_ptr<ListValue>& l) const {
      oss << '[';
      for (std::size_t i = 0; i < l->items.size(); ++i) {
        if (i > 0) oss << ", ";
        oss << ValueToString(l->items[i]);
      }
      oss << ']';
    }
    void operator()(const std::shared_ptr<DictValue>& d) const {
      oss << '{';
      bool first = true;
      for (const auto& [key, v] : d->items) {
        if (!first) oss << ", ";
        first = false;
        if (const auto* s = std::get_if<std::string>(&key)) {
          oss << '\'' << *s << '\'';
        } else {
          oss << std::get<std::int64_t>(key);
        }
        oss << ": " << ValueToString(v);
      }
      oss << '}';
    }
    void operator()(const std::shared_ptr<ObjectValue>& o) const {
      oss << '<' << o->cls()->name << " object #" << o->heap_id() << '>';
    }
    void operator()(const std::shared_ptr<FunctionValue>& f) const {
      oss << "<function " << f->qualified_name << '>';
    }
    void operator()(const std::shared_ptr<ClassValue>& c) const {
      oss << "<class " << c->name << '>';
    }
    void operator()(const std::shared_ptr<BuiltinFunction>& b) const {
      oss << "<builtin " << b->name << '>';
    }
  };
  std::visit(Visitor{oss}, value);
  return oss.str();
}

namespace detail_equal {
struct EqualVisitor {
  const Value& rhs;
  bool operator()(const NoneType&) const { return true; }
  bool operator()(bool v) const { return v == std::get<bool>(rhs); }
  bool operator()(std::int64_t v) const {
    return v == std::get<std::int64_t>(rhs);
  }
  bool operator()(double v) const { return v == std::get<double>(rhs); }
  bool operator()(const std::string& v) const {
    return v == std::get<std::string>(rhs);
  }
  bool operator()(const Tensor& v) const {
    return v.ElementsEqual(std::get<Tensor>(rhs));
  }
  bool operator()(const VariableRef& v) const {
    return v.name == std::get<VariableRef>(rhs).name;
  }
  template <typename T>
  bool operator()(const std::shared_ptr<T>& v) const {
    return v == std::get<std::shared_ptr<T>>(rhs);
  }
};
}  // namespace detail_equal

bool ValuesEqual(const Value& a, const Value& b) {
  if (Is<std::int64_t>(a) && Is<double>(b)) {
    return static_cast<double>(std::get<std::int64_t>(a)) ==
           std::get<double>(b);
  }
  if (Is<double>(a) && Is<std::int64_t>(b)) {
    return std::get<double>(a) ==
           static_cast<double>(std::get<std::int64_t>(b));
  }
  if (a.index() != b.index()) return false;
  return std::visit(detail_equal::EqualVisitor{b}, a);
}

}  // namespace janus::minipy
