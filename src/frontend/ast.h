// Abstract syntax tree for MiniPy.
//
// Every node carries a unique id (stable within a Module) that the Profiler
// and the Speculative Graph Generator use as the key for control-flow
// decisions, type observations, and assumption bookkeeping — the analogue
// of the paper's bytecode-level instrumentation points (§5).
#ifndef JANUS_FRONTEND_AST_H_
#define JANUS_FRONTEND_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace janus::minipy {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

enum class ExprKind {
  kIntLit, kFloatLit, kStringLit, kBoolLit, kNoneLit,
  kName, kUnary, kBinary, kCompare, kBoolOp,
  kCall, kAttribute, kSubscript, kList, kTuple, kDict, kLambda,
};

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kFloorDiv, kMod, kPow,
};

enum class UnaryOp { kNeg, kNot };

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kIn };

enum class BoolOpKind { kAnd, kOr };

struct Expr {
  ExprKind kind;
  int id = 0;
  int line = 0;

  // Literals
  std::int64_t int_value = 0;
  double float_value = 0.0;
  std::string str_value;  // string literal, name, or attribute name
  bool bool_value = false;

  // Operators
  BinaryOp binary_op{};
  UnaryOp unary_op{};
  CompareOp compare_op{};
  BoolOpKind bool_op{};

  // Children
  ExprPtr left;                 // unary operand / binary lhs / call callee /
                                // attribute+subscript base / lambda body
  ExprPtr right;                // binary rhs / subscript index
  std::vector<ExprPtr> elements;  // call args / list / tuple / dict keys
  std::vector<ExprPtr> values;    // dict values
  std::vector<std::string> params;  // lambda parameters
};

enum class StmtKind {
  kExpr, kAssign, kAugAssign, kIf, kWhile, kFor, kDef, kClass, kReturn,
  kPass, kBreak, kContinue, kGlobal, kRaise, kTry,
};

struct Stmt {
  StmtKind kind;
  int id = 0;
  int line = 0;

  ExprPtr target;  // assign/augassign target; for-loop variable
  ExprPtr value;   // assign value / expr stmt / return value / condition /
                   // for iterable / raise message
  BinaryOp aug_op{};

  std::vector<StmtPtr> body;
  std::vector<StmtPtr> else_body;     // if-else / try-except
  std::vector<StmtPtr> finally_body;  // try-finally

  // def / class
  std::string name;
  std::vector<std::string> params;
  std::vector<StmtPtr> methods;  // class body (defs)
  std::vector<std::string> globals;  // global statement names
  std::string except_name;           // bound exception variable (may be "")
};

// A parsed program: top-level statements plus an id -> node registry.
struct Module {
  std::vector<StmtPtr> body;
  int num_nodes = 0;  // total AST nodes (ids are 0..num_nodes-1)
};

}  // namespace janus::minipy

#endif  // JANUS_FRONTEND_AST_H_
