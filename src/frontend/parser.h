// Recursive-descent parser for MiniPy.
#ifndef JANUS_FRONTEND_PARSER_H_
#define JANUS_FRONTEND_PARSER_H_

#include <string>

#include "frontend/ast.h"

namespace janus::minipy {

// Parses a full program. Throws InvalidArgument with line information on
// syntax errors.
Module Parse(const std::string& source);

}  // namespace janus::minipy

#endif  // JANUS_FRONTEND_PARSER_H_
