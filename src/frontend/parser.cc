#include "frontend/parser.h"

#include "common/error.h"
#include "frontend/lexer.h"

namespace janus::minipy {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Module ParseModule() {
    Module module;
    SkipNewlines();
    while (!Check(TokenKind::kEndOfFile)) {
      module.body.push_back(ParseStatement());
      SkipNewlines();
    }
    module.num_nodes = next_id_;
    return module;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    ++pos_;
    return true;
  }
  const Token& Expect(TokenKind kind, const char* context) {
    if (!Check(kind)) {
      throw InvalidArgument("line " + std::to_string(Peek().line) +
                            ": expected " + TokenKindName(kind) + " in " +
                            context + ", got " + TokenKindName(Peek().kind) +
                            (Peek().text.empty() ? "" : " '" + Peek().text + "'"));
    }
    return tokens_[pos_++];
  }
  void SkipNewlines() {
    while (Match(TokenKind::kNewline)) {
    }
  }

  ExprPtr NewExpr(ExprKind kind, int line) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->id = next_id_++;
    e->line = line;
    return e;
  }
  StmtPtr NewStmt(StmtKind kind, int line) {
    auto s = std::make_unique<Stmt>();
    s->kind = kind;
    s->id = next_id_++;
    s->line = line;
    return s;
  }

  std::vector<StmtPtr> ParseBlock() {
    Expect(TokenKind::kColon, "block header");
    Expect(TokenKind::kNewline, "block header");
    SkipNewlines();
    Expect(TokenKind::kIndent, "block");
    std::vector<StmtPtr> body;
    SkipNewlines();
    while (!Check(TokenKind::kDedent) && !Check(TokenKind::kEndOfFile)) {
      body.push_back(ParseStatement());
      SkipNewlines();
    }
    Expect(TokenKind::kDedent, "block");
    return body;
  }

  StmtPtr ParseStatement() {
    const int line = Peek().line;
    switch (Peek().kind) {
      case TokenKind::kDef:
        return ParseDef();
      case TokenKind::kClass:
        return ParseClass();
      case TokenKind::kIf:
        return ParseIf();
      case TokenKind::kWhile: {
        ++pos_;
        auto stmt = NewStmt(StmtKind::kWhile, line);
        stmt->value = ParseExpression();
        stmt->body = ParseBlock();
        return stmt;
      }
      case TokenKind::kFor: {
        ++pos_;
        auto stmt = NewStmt(StmtKind::kFor, line);
        auto var = NewExpr(ExprKind::kName, line);
        var->str_value = Expect(TokenKind::kName, "for").text;
        stmt->target = std::move(var);
        Expect(TokenKind::kIn, "for");
        stmt->value = ParseExpression();
        stmt->body = ParseBlock();
        return stmt;
      }
      case TokenKind::kReturn: {
        ++pos_;
        auto stmt = NewStmt(StmtKind::kReturn, line);
        if (!Check(TokenKind::kNewline)) stmt->value = ParseExpressionList();
        Expect(TokenKind::kNewline, "return");
        return stmt;
      }
      case TokenKind::kPass:
        ++pos_;
        Expect(TokenKind::kNewline, "pass");
        return NewStmt(StmtKind::kPass, line);
      case TokenKind::kBreak:
        ++pos_;
        Expect(TokenKind::kNewline, "break");
        return NewStmt(StmtKind::kBreak, line);
      case TokenKind::kContinue:
        ++pos_;
        Expect(TokenKind::kNewline, "continue");
        return NewStmt(StmtKind::kContinue, line);
      case TokenKind::kGlobal: {
        ++pos_;
        auto stmt = NewStmt(StmtKind::kGlobal, line);
        stmt->globals.push_back(Expect(TokenKind::kName, "global").text);
        while (Match(TokenKind::kComma)) {
          stmt->globals.push_back(Expect(TokenKind::kName, "global").text);
        }
        Expect(TokenKind::kNewline, "global");
        return stmt;
      }
      case TokenKind::kRaise: {
        ++pos_;
        auto stmt = NewStmt(StmtKind::kRaise, line);
        if (!Check(TokenKind::kNewline)) stmt->value = ParseExpression();
        Expect(TokenKind::kNewline, "raise");
        return stmt;
      }
      case TokenKind::kTry:
        return ParseTry();
      case TokenKind::kYield:
      case TokenKind::kImport:
      case TokenKind::kWith:
        throw InvalidArgument(
            "line " + std::to_string(line) + ": '" + Peek().text +
            "' is recognised but not supported by this MiniPy build");
      default:
        return ParseExprOrAssign();
    }
  }

  StmtPtr ParseDef() {
    const int line = Peek().line;
    Expect(TokenKind::kDef, "def");
    auto stmt = NewStmt(StmtKind::kDef, line);
    stmt->name = Expect(TokenKind::kName, "def").text;
    Expect(TokenKind::kLParen, "def");
    if (!Check(TokenKind::kRParen)) {
      stmt->params.push_back(Expect(TokenKind::kName, "parameters").text);
      while (Match(TokenKind::kComma)) {
        stmt->params.push_back(Expect(TokenKind::kName, "parameters").text);
      }
    }
    Expect(TokenKind::kRParen, "def");
    stmt->body = ParseBlock();
    return stmt;
  }

  StmtPtr ParseClass() {
    const int line = Peek().line;
    Expect(TokenKind::kClass, "class");
    auto stmt = NewStmt(StmtKind::kClass, line);
    stmt->name = Expect(TokenKind::kName, "class").text;
    if (Match(TokenKind::kLParen)) {  // base classes ignored (object only)
      if (Check(TokenKind::kName)) ++pos_;
      Expect(TokenKind::kRParen, "class");
    }
    Expect(TokenKind::kColon, "class");
    Expect(TokenKind::kNewline, "class");
    SkipNewlines();
    Expect(TokenKind::kIndent, "class body");
    SkipNewlines();
    while (!Check(TokenKind::kDedent) && !Check(TokenKind::kEndOfFile)) {
      if (Check(TokenKind::kPass)) {
        ++pos_;
        Expect(TokenKind::kNewline, "pass");
      } else {
        stmt->methods.push_back(ParseDef());
      }
      SkipNewlines();
    }
    Expect(TokenKind::kDedent, "class body");
    return stmt;
  }

  StmtPtr ParseIf() {
    const int line = Peek().line;
    ++pos_;  // if / elif
    auto stmt = NewStmt(StmtKind::kIf, line);
    stmt->value = ParseExpression();
    stmt->body = ParseBlock();
    SkipNewlines();
    if (Check(TokenKind::kElif)) {
      stmt->else_body.push_back(ParseIf());
    } else if (Match(TokenKind::kElse)) {
      stmt->else_body = ParseBlock();
    }
    return stmt;
  }

  StmtPtr ParseTry() {
    const int line = Peek().line;
    Expect(TokenKind::kTry, "try");
    auto stmt = NewStmt(StmtKind::kTry, line);
    stmt->body = ParseBlock();
    SkipNewlines();
    if (Match(TokenKind::kExcept)) {
      if (Check(TokenKind::kName)) {
        // `except Name` or `except Name as var`; the class name is ignored
        // (MiniPy has a single exception type).
        ++pos_;
        if (Match(TokenKind::kAs)) {
          stmt->except_name = Expect(TokenKind::kName, "except").text;
        }
      }
      stmt->else_body = ParseBlock();
      SkipNewlines();
    }
    if (Match(TokenKind::kFinally)) {
      stmt->finally_body = ParseBlock();
    }
    if (stmt->else_body.empty() && stmt->finally_body.empty()) {
      throw InvalidArgument("line " + std::to_string(line) +
                            ": try without except/finally");
    }
    return stmt;
  }

  StmtPtr ParseExprOrAssign() {
    const int line = Peek().line;
    ExprPtr first = ParseExpressionList();
    if (Match(TokenKind::kAssign)) {
      auto stmt = NewStmt(StmtKind::kAssign, line);
      stmt->target = std::move(first);
      stmt->value = ParseExpressionList();
      Expect(TokenKind::kNewline, "assignment");
      return stmt;
    }
    for (const auto& [token, op] :
         {std::pair{TokenKind::kPlusAssign, BinaryOp::kAdd},
          std::pair{TokenKind::kMinusAssign, BinaryOp::kSub},
          std::pair{TokenKind::kStarAssign, BinaryOp::kMul},
          std::pair{TokenKind::kSlashAssign, BinaryOp::kDiv}}) {
      if (Match(token)) {
        auto stmt = NewStmt(StmtKind::kAugAssign, line);
        stmt->target = std::move(first);
        stmt->aug_op = op;
        stmt->value = ParseExpressionList();
        Expect(TokenKind::kNewline, "augmented assignment");
        return stmt;
      }
    }
    auto stmt = NewStmt(StmtKind::kExpr, line);
    stmt->value = std::move(first);
    Expect(TokenKind::kNewline, "expression statement");
    return stmt;
  }

  // expression-list: expr (',' expr)*  — a bare tuple when >1 element.
  ExprPtr ParseExpressionList() {
    ExprPtr first = ParseExpression();
    if (!Check(TokenKind::kComma)) return first;
    auto tuple = NewExpr(ExprKind::kTuple, first->line);
    tuple->elements.push_back(std::move(first));
    while (Match(TokenKind::kComma)) {
      if (Check(TokenKind::kNewline) || Check(TokenKind::kRParen)) break;
      tuple->elements.push_back(ParseExpression());
    }
    return tuple;
  }

  ExprPtr ParseExpression() { return ParseOr(); }

  ExprPtr ParseOr() {
    ExprPtr left = ParseAnd();
    while (Check(TokenKind::kOr)) {
      const int line = Peek().line;
      ++pos_;
      auto e = NewExpr(ExprKind::kBoolOp, line);
      e->bool_op = BoolOpKind::kOr;
      e->left = std::move(left);
      e->right = ParseAnd();
      left = std::move(e);
    }
    return left;
  }

  ExprPtr ParseAnd() {
    ExprPtr left = ParseNot();
    while (Check(TokenKind::kAnd)) {
      const int line = Peek().line;
      ++pos_;
      auto e = NewExpr(ExprKind::kBoolOp, line);
      e->bool_op = BoolOpKind::kAnd;
      e->left = std::move(left);
      e->right = ParseNot();
      left = std::move(e);
    }
    return left;
  }

  ExprPtr ParseNot() {
    if (Check(TokenKind::kNot)) {
      const int line = Peek().line;
      ++pos_;
      auto e = NewExpr(ExprKind::kUnary, line);
      e->unary_op = UnaryOp::kNot;
      e->left = ParseNot();
      return e;
    }
    return ParseComparison();
  }

  ExprPtr ParseComparison() {
    ExprPtr left = ParseArith();
    const auto as_compare = [&](CompareOp op) {
      const int line = Peek().line;
      ++pos_;
      auto e = NewExpr(ExprKind::kCompare, line);
      e->compare_op = op;
      e->left = std::move(left);
      e->right = ParseArith();
      left = std::move(e);
    };
    for (;;) {
      switch (Peek().kind) {
        case TokenKind::kEq: as_compare(CompareOp::kEq); break;
        case TokenKind::kNe: as_compare(CompareOp::kNe); break;
        case TokenKind::kLt: as_compare(CompareOp::kLt); break;
        case TokenKind::kLe: as_compare(CompareOp::kLe); break;
        case TokenKind::kGt: as_compare(CompareOp::kGt); break;
        case TokenKind::kGe: as_compare(CompareOp::kGe); break;
        case TokenKind::kIn: as_compare(CompareOp::kIn); break;
        default: return left;
      }
    }
  }

  ExprPtr ParseArith() {
    ExprPtr left = ParseTerm();
    for (;;) {
      BinaryOp op;
      if (Check(TokenKind::kPlus)) {
        op = BinaryOp::kAdd;
      } else if (Check(TokenKind::kMinus)) {
        op = BinaryOp::kSub;
      } else {
        return left;
      }
      const int line = Peek().line;
      ++pos_;
      auto e = NewExpr(ExprKind::kBinary, line);
      e->binary_op = op;
      e->left = std::move(left);
      e->right = ParseTerm();
      left = std::move(e);
    }
  }

  ExprPtr ParseTerm() {
    ExprPtr left = ParseFactor();
    for (;;) {
      BinaryOp op;
      if (Check(TokenKind::kStar)) {
        op = BinaryOp::kMul;
      } else if (Check(TokenKind::kSlash)) {
        op = BinaryOp::kDiv;
      } else if (Check(TokenKind::kDoubleSlash)) {
        op = BinaryOp::kFloorDiv;
      } else if (Check(TokenKind::kPercent)) {
        op = BinaryOp::kMod;
      } else {
        return left;
      }
      const int line = Peek().line;
      ++pos_;
      auto e = NewExpr(ExprKind::kBinary, line);
      e->binary_op = op;
      e->left = std::move(left);
      e->right = ParseFactor();
      left = std::move(e);
    }
  }

  ExprPtr ParseFactor() {
    if (Check(TokenKind::kMinus)) {
      const int line = Peek().line;
      ++pos_;
      auto e = NewExpr(ExprKind::kUnary, line);
      e->unary_op = UnaryOp::kNeg;
      e->left = ParseFactor();
      return e;
    }
    if (Check(TokenKind::kPlus)) {
      ++pos_;
      return ParseFactor();
    }
    return ParsePower();
  }

  ExprPtr ParsePower() {
    ExprPtr base = ParsePostfix();
    if (Check(TokenKind::kDoubleStar)) {
      const int line = Peek().line;
      ++pos_;
      auto e = NewExpr(ExprKind::kBinary, line);
      e->binary_op = BinaryOp::kPow;
      e->left = std::move(base);
      e->right = ParseFactor();  // right-associative
      return e;
    }
    return base;
  }

  ExprPtr ParsePostfix() {
    ExprPtr expr = ParseAtom();
    for (;;) {
      if (Check(TokenKind::kLParen)) {
        const int line = Peek().line;
        ++pos_;
        auto call = NewExpr(ExprKind::kCall, line);
        call->left = std::move(expr);
        if (!Check(TokenKind::kRParen)) {
          call->elements.push_back(ParseExpression());
          while (Match(TokenKind::kComma)) {
            call->elements.push_back(ParseExpression());
          }
        }
        Expect(TokenKind::kRParen, "call");
        expr = std::move(call);
      } else if (Check(TokenKind::kDot)) {
        const int line = Peek().line;
        ++pos_;
        auto attr = NewExpr(ExprKind::kAttribute, line);
        attr->left = std::move(expr);
        attr->str_value = Expect(TokenKind::kName, "attribute").text;
        expr = std::move(attr);
      } else if (Check(TokenKind::kLBracket)) {
        const int line = Peek().line;
        ++pos_;
        auto sub = NewExpr(ExprKind::kSubscript, line);
        sub->left = std::move(expr);
        sub->right = ParseExpression();
        Expect(TokenKind::kRBracket, "subscript");
        expr = std::move(sub);
      } else {
        return expr;
      }
    }
  }

  ExprPtr ParseAtom() {
    const Token& token = Peek();
    const int line = token.line;
    switch (token.kind) {
      case TokenKind::kInt: {
        ++pos_;
        auto e = NewExpr(ExprKind::kIntLit, line);
        e->int_value = token.int_value;
        return e;
      }
      case TokenKind::kFloat: {
        ++pos_;
        auto e = NewExpr(ExprKind::kFloatLit, line);
        e->float_value = token.float_value;
        return e;
      }
      case TokenKind::kString: {
        ++pos_;
        auto e = NewExpr(ExprKind::kStringLit, line);
        e->str_value = token.text;
        return e;
      }
      case TokenKind::kTrue:
      case TokenKind::kFalse: {
        ++pos_;
        auto e = NewExpr(ExprKind::kBoolLit, line);
        e->bool_value = token.kind == TokenKind::kTrue;
        return e;
      }
      case TokenKind::kNone:
        ++pos_;
        return NewExpr(ExprKind::kNoneLit, line);
      case TokenKind::kName: {
        ++pos_;
        auto e = NewExpr(ExprKind::kName, line);
        e->str_value = token.text;
        return e;
      }
      case TokenKind::kLParen: {
        ++pos_;
        if (Check(TokenKind::kRParen)) {  // empty tuple
          ++pos_;
          return NewExpr(ExprKind::kTuple, line);
        }
        ExprPtr inner = ParseExpression();
        if (Check(TokenKind::kComma)) {
          auto tuple = NewExpr(ExprKind::kTuple, line);
          tuple->elements.push_back(std::move(inner));
          while (Match(TokenKind::kComma)) {
            if (Check(TokenKind::kRParen)) break;
            tuple->elements.push_back(ParseExpression());
          }
          Expect(TokenKind::kRParen, "tuple");
          return tuple;
        }
        Expect(TokenKind::kRParen, "parenthesised expression");
        return inner;
      }
      case TokenKind::kLBracket: {
        ++pos_;
        auto list = NewExpr(ExprKind::kList, line);
        if (!Check(TokenKind::kRBracket)) {
          list->elements.push_back(ParseExpression());
          while (Match(TokenKind::kComma)) {
            if (Check(TokenKind::kRBracket)) break;
            list->elements.push_back(ParseExpression());
          }
        }
        Expect(TokenKind::kRBracket, "list");
        return list;
      }
      case TokenKind::kLBrace: {
        ++pos_;
        auto dict = NewExpr(ExprKind::kDict, line);
        if (!Check(TokenKind::kRBrace)) {
          do {
            if (Check(TokenKind::kRBrace)) break;
            dict->elements.push_back(ParseExpression());
            Expect(TokenKind::kColon, "dict");
            dict->values.push_back(ParseExpression());
          } while (Match(TokenKind::kComma));
        }
        Expect(TokenKind::kRBrace, "dict");
        return dict;
      }
      case TokenKind::kLambda: {
        ++pos_;
        auto lambda = NewExpr(ExprKind::kLambda, line);
        if (!Check(TokenKind::kColon)) {
          lambda->params.push_back(Expect(TokenKind::kName, "lambda").text);
          while (Match(TokenKind::kComma)) {
            lambda->params.push_back(Expect(TokenKind::kName, "lambda").text);
          }
        }
        Expect(TokenKind::kColon, "lambda");
        lambda->left = ParseExpression();
        return lambda;
      }
      default:
        throw InvalidArgument("line " + std::to_string(line) +
                              ": unexpected " + TokenKindName(token.kind) +
                              (token.text.empty() ? "" : " '" + token.text + "'"));
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  int next_id_ = 0;
};

}  // namespace

Module Parse(const std::string& source) {
  return Parser(Tokenize(source)).ParseModule();
}

}  // namespace janus::minipy
