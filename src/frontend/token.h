// Token definitions for the MiniPy lexer.
//
// MiniPy is the dynamically-typed, Python-like imperative language this
// reproduction uses in place of CPython: it has the dynamic control flow,
// dynamic typing, and impure-function features (paper §2.1) that JANUS
// converts, and a tree-walking interpreter that serves as the imperative
// executor (TF Eager stand-in).
#ifndef JANUS_FRONTEND_TOKEN_H_
#define JANUS_FRONTEND_TOKEN_H_

#include <cstdint>
#include <string>

namespace janus::minipy {

enum class TokenKind {
  // Literals and identifiers
  kInt,
  kFloat,
  kString,
  kName,
  // Keywords
  kDef, kClass, kIf, kElif, kElse, kWhile, kFor, kIn, kReturn, kPass,
  kBreak, kContinue, kGlobal, kNot, kAnd, kOr, kTrue, kFalse, kNone,
  kLambda, kRaise, kTry, kExcept, kFinally, kYield, kImport, kWith, kAs,
  // Operators / punctuation
  kPlus, kMinus, kStar, kDoubleStar, kSlash, kDoubleSlash, kPercent,
  kAssign, kPlusAssign, kMinusAssign, kStarAssign, kSlashAssign,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kLParen, kRParen, kLBracket, kRBracket, kLBrace, kRBrace,
  kComma, kColon, kDot,
  // Layout
  kNewline, kIndent, kDedent, kEndOfFile,
};

struct Token {
  TokenKind kind;
  std::string text;      // raw text for names/strings
  std::int64_t int_value = 0;
  double float_value = 0.0;
  int line = 0;
};

const char* TokenKindName(TokenKind kind);

}  // namespace janus::minipy

#endif  // JANUS_FRONTEND_TOKEN_H_
