#include "frontend/eager.h"

#include <unordered_map>

#include "autodiff/gradients.h"
#include "obs/trace.h"
#include "runtime/executor.h"
#include "runtime/kernel.h"
#include "runtime/plan.h"
#include "tensor/ops.h"

namespace janus::minipy {
namespace {

// Tape identity of a tensor: buffer pointer + dtype + dims, so reshaped
// views sharing a buffer do not collide. A plain struct key: this runs on
// every eager op and every tape record, so no string formatting.
struct TensorKey {
  const void* id = nullptr;
  DType dtype = DType::kFloat32;
  std::vector<std::int64_t> dims;

  bool operator==(const TensorKey& other) const = default;
};

struct TensorKeyHash {
  std::size_t operator()(const TensorKey& key) const {
    std::size_t h = std::hash<const void*>()(key.id);
    h = h * 1099511628211ull ^ static_cast<std::size_t>(key.dtype);
    for (const std::int64_t dim : key.dims) {
      h = h * 1099511628211ull ^ std::hash<std::int64_t>()(dim);
    }
    return h;
  }
};

TensorKey KeyFor(const Tensor& t) {
  return {t.data_id(), t.dtype(), t.shape().dims()};
}

}  // namespace

struct EagerContext::Tape {
  Graph graph;
  FunctionLibrary library;  // gradient functions (unused by eager bodies)
  std::unordered_map<TensorKey, NodeOutput, TensorKeyHash> value_to_node;
  std::map<std::string, NodeOutput> variable_reads;  // var name -> node
  internal::Precomputed precomputed;

  NodeOutput NodeFor(const Tensor& t) {
    const TensorKey key = KeyFor(t);
    const auto it = value_to_node.find(key);
    if (it != value_to_node.end()) return it->second;
    // External input (data batch, literal): record as a constant leaf.
    const NodeOutput leaf = graph.Constant(t);
    value_to_node.emplace(key, leaf);
    precomputed[leaf.node] = {t};
    return leaf;
  }

  void Record(const std::string& op, std::span<const Tensor> inputs,
              AttrMap attrs, const Tensor& output) {
    std::vector<NodeOutput> input_nodes;
    input_nodes.reserve(inputs.size());
    for (const Tensor& input : inputs) input_nodes.push_back(NodeFor(input));
    Node* node = graph.AddNode(op, std::move(input_nodes), std::move(attrs));
    value_to_node[KeyFor(output)] = {node, 0};
    precomputed[node] = {output};
  }
};

EagerContext::EagerContext(VariableStore* variables, Rng* rng)
    : variables_(variables), rng_(rng) {}

EagerContext::~EagerContext() = default;

Tensor EagerContext::Execute(const std::string& op,
                             std::vector<Tensor> inputs, AttrMap attrs) {
  // Execute the kernel immediately (per-op dispatch, as in TF Eager). No
  // InPlaceScope is opened here: eager inputs are caller-visible values (and
  // may be retained by the tape), so kernel outputs must always be freshly
  // allocated — only the graph executors, which prove deadness through the
  // memory plan, may reuse input buffers in place.
  RunContext run;
  run.variables = variables_;
  run.rng = rng_;
  run.dispatch_penalty_ns = dispatch_penalty_ns_;
  Graph scratch;
  Node* node = scratch.AddNode(op, {}, attrs, 1);
  KernelContext ctx;
  ctx.node = node;
  ctx.inputs = inputs;
  ctx.outputs.resize(1);
  ctx.run = &run;
  // Same sampled per-op timing as the graph executors, so traces compare
  // eager dispatch against graph kernels under one clock.
  const bool sampled = obs::ShouldSampleKernel();
  const std::int64_t start_ns = sampled ? obs::Trace::NowNs() : 0;
  KernelRegistry::Global().Lookup(op)(ctx);
  if (sampled) {
    obs::RecordKernelSample(op, "eager", start_ns,
                            obs::Trace::NowNs() - start_ns);
  }
  ++ops_executed_;
  Tensor output = std::move(ctx.outputs[0]);
  if (tape_ != nullptr) {
    tape_->Record(op, inputs, std::move(attrs), output);
  }
  return output;
}

Tensor EagerContext::ReadVariable(const std::string& name) {
  const Tensor value = variables_->Read(name);
  ++ops_executed_;
  if (tape_ != nullptr) {
    const auto it = tape_->variable_reads.find(name);
    if (it == tape_->variable_reads.end()) {
      Node* node = tape_->graph.AddNode("ReadVariable", {}, {{"var", name}});
      tape_->variable_reads[name] = {node, 0};
      tape_->precomputed[node] = {value};
      tape_->value_to_node[KeyFor(value)] = {node, 0};
    }
  }
  return value;
}

void EagerContext::AssignVariable(const std::string& name, Tensor value) {
  variables_->Assign(name, std::move(value));
  ++ops_executed_;
}

void EagerContext::StartTape() { tape_ = std::make_unique<Tape>(); }

std::map<std::string, Tensor> EagerContext::GradientsAndStopTape(
    const Tensor& loss) {
  JANUS_EXPECTS(tape_ != nullptr);
  auto tape = std::move(tape_);

  const auto loss_it = tape->value_to_node.find(KeyFor(loss));
  if (loss_it == tape->value_to_node.end()) {
    throw InvalidArgument(
        "loss tensor was not produced under the gradient tape");
  }
  std::vector<std::string> names;
  std::vector<NodeOutput> targets;
  for (const auto& [name, node] : tape->variable_reads) {
    names.push_back(name);
    targets.push_back(node);
  }
  const std::vector<NodeOutput> grads =
      AddGradients(tape->graph, tape->library, loss_it->second, targets);

  // Execute only the gradient subgraph; forward values come precomputed.
  RunContext run;
  run.variables = variables_;
  run.rng = rng_;
  run.dispatch_penalty_ns = dispatch_penalty_ns_;
  run.library = &tape->library;
  const std::map<std::string, Tensor> no_feeds;
  run.feeds = &no_feeds;
  // One-shot plan over the tape graph: the gradient subgraph executes with
  // the recorded forward values fed in as precomputed node outputs.
  const std::shared_ptr<const ExecutionPlan> plan =
      GetOrBuildPlan(tape->graph, grads, &run);
  if (plan->profile() != nullptr && plan->profile()->unit().empty()) {
    // Tape gradients run during the imperative profiling phase, before any
    // conversion unit exists; label them so /profilez does not show them
    // as unattributed.
    plan->profile()->SetKey("<imperative tape>", "eager", 0);
  }
  const std::vector<Tensor> grad_values = internal::ExecuteDag(
      run, *plan, {}, /*parallel=*/false, &tape->precomputed);
  ops_executed_ += run.ops_executed.load();

  std::map<std::string, Tensor> result;
  for (std::size_t i = 0; i < names.size(); ++i) {
    result[names[i]] = grad_values[i];
  }
  return result;
}

}  // namespace janus::minipy
