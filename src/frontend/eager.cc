#include "frontend/eager.h"

#include <sstream>
#include <unordered_map>

#include "autodiff/gradients.h"
#include "runtime/executor.h"
#include "runtime/kernel.h"
#include "tensor/ops.h"

namespace janus::minipy {
namespace {

// Tape identity of a tensor: buffer pointer + shape + dtype, so reshaped
// views sharing a buffer do not collide.
std::string TensorKey(const Tensor& t) {
  std::ostringstream oss;
  oss << t.data_id() << '|' << static_cast<int>(t.dtype()) << '|'
      << t.shape().ToString();
  return oss.str();
}

}  // namespace

struct EagerContext::Tape {
  Graph graph;
  FunctionLibrary library;  // gradient functions (unused by eager bodies)
  std::unordered_map<std::string, NodeOutput> value_to_node;
  std::map<std::string, NodeOutput> variable_reads;  // var name -> node
  internal::Precomputed precomputed;

  NodeOutput NodeFor(const Tensor& t) {
    const std::string key = TensorKey(t);
    const auto it = value_to_node.find(key);
    if (it != value_to_node.end()) return it->second;
    // External input (data batch, literal): record as a constant leaf.
    const NodeOutput leaf = graph.Constant(t);
    value_to_node.emplace(key, leaf);
    precomputed[leaf.node] = {t};
    return leaf;
  }

  void Record(const std::string& op, std::span<const Tensor> inputs,
              AttrMap attrs, const Tensor& output) {
    std::vector<NodeOutput> input_nodes;
    input_nodes.reserve(inputs.size());
    for (const Tensor& input : inputs) input_nodes.push_back(NodeFor(input));
    Node* node = graph.AddNode(op, std::move(input_nodes), std::move(attrs));
    value_to_node[TensorKey(output)] = {node, 0};
    precomputed[node] = {output};
  }
};

EagerContext::EagerContext(VariableStore* variables, Rng* rng)
    : variables_(variables), rng_(rng) {}

EagerContext::~EagerContext() = default;

Tensor EagerContext::Execute(const std::string& op,
                             std::vector<Tensor> inputs, AttrMap attrs) {
  // Execute the kernel immediately (per-op dispatch, as in TF Eager).
  RunContext run;
  run.variables = variables_;
  run.rng = rng_;
  run.dispatch_penalty_ns = dispatch_penalty_ns_;
  Graph scratch;
  Node* node = scratch.AddNode(op, {}, attrs, 1);
  KernelContext ctx;
  ctx.node = node;
  ctx.inputs = inputs;
  ctx.outputs.resize(1);
  ctx.run = &run;
  KernelRegistry::Global().Lookup(op)(ctx);
  ++ops_executed_;
  Tensor output = std::move(ctx.outputs[0]);
  if (tape_ != nullptr) {
    tape_->Record(op, inputs, std::move(attrs), output);
  }
  return output;
}

Tensor EagerContext::ReadVariable(const std::string& name) {
  const Tensor value = variables_->Read(name);
  ++ops_executed_;
  if (tape_ != nullptr) {
    const auto it = tape_->variable_reads.find(name);
    if (it == tape_->variable_reads.end()) {
      Node* node = tape_->graph.AddNode("ReadVariable", {}, {{"var", name}});
      tape_->variable_reads[name] = {node, 0};
      tape_->precomputed[node] = {value};
      tape_->value_to_node[TensorKey(value)] = {node, 0};
    }
  }
  return value;
}

void EagerContext::AssignVariable(const std::string& name, Tensor value) {
  variables_->Assign(name, std::move(value));
  ++ops_executed_;
}

void EagerContext::StartTape() { tape_ = std::make_unique<Tape>(); }

std::map<std::string, Tensor> EagerContext::GradientsAndStopTape(
    const Tensor& loss) {
  JANUS_EXPECTS(tape_ != nullptr);
  auto tape = std::move(tape_);

  const auto loss_it = tape->value_to_node.find(TensorKey(loss));
  if (loss_it == tape->value_to_node.end()) {
    throw InvalidArgument(
        "loss tensor was not produced under the gradient tape");
  }
  std::vector<std::string> names;
  std::vector<NodeOutput> targets;
  for (const auto& [name, node] : tape->variable_reads) {
    names.push_back(name);
    targets.push_back(node);
  }
  const std::vector<NodeOutput> grads =
      AddGradients(tape->graph, tape->library, loss_it->second, targets);

  // Execute only the gradient subgraph; forward values come precomputed.
  RunContext run;
  run.variables = variables_;
  run.rng = rng_;
  run.dispatch_penalty_ns = dispatch_penalty_ns_;
  run.library = &tape->library;
  const std::map<std::string, Tensor> no_feeds;
  run.feeds = &no_feeds;
  const std::vector<Tensor> grad_values = internal::ExecuteDag(
      run, tape->graph, {}, grads, /*parallel=*/false, &tape->precomputed);
  ops_executed_ += run.ops_executed.load();

  std::map<std::string, Tensor> result;
  for (std::size_t i = 0; i < names.size(); ++i) {
    result[names[i]] = grad_values[i];
  }
  return result;
}

}  // namespace janus::minipy
