// Dynamic values for the MiniPy interpreter.
//
// Heap values (lists, dicts, objects) carry stable int64 heap ids; the
// graph runtime encodes references to them as int64 scalar tensors, exactly
// as the paper encodes Python heap pointers in the dataflow graph (§4.2.2).
#ifndef JANUS_FRONTEND_VALUE_H_
#define JANUS_FRONTEND_VALUE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "frontend/ast.h"
#include "tensor/tensor.h"

namespace janus::minipy {

class Interpreter;

struct NoneType {
  bool operator==(const NoneType&) const = default;
};

class ListValue;
class DictValue;
class ObjectValue;
class FunctionValue;
class ClassValue;
class BuiltinFunction;

// A reference to a named model parameter in the VariableStore. Tensor ops
// auto-read it (TF Eager's resource-variable behaviour).
struct VariableRef {
  std::string name;
};

using Value =
    std::variant<NoneType, bool, std::int64_t, double, std::string, Tensor,
                 VariableRef, std::shared_ptr<ListValue>,
                 std::shared_ptr<DictValue>, std::shared_ptr<ObjectValue>,
                 std::shared_ptr<FunctionValue>, std::shared_ptr<ClassValue>,
                 std::shared_ptr<BuiltinFunction>>;

class ListValue {
 public:
  explicit ListValue(std::int64_t heap_id) : heap_id_(heap_id) {}
  std::int64_t heap_id() const { return heap_id_; }
  std::vector<Value> items;

 private:
  std::int64_t heap_id_;
};

// Dict keys are ints or strings (sufficient for the DL workloads).
using DictKey = std::variant<std::int64_t, std::string>;

class DictValue {
 public:
  explicit DictValue(std::int64_t heap_id) : heap_id_(heap_id) {}
  std::int64_t heap_id() const { return heap_id_; }
  std::map<DictKey, Value> items;

 private:
  std::int64_t heap_id_;
};

class ObjectValue {
 public:
  ObjectValue(std::int64_t heap_id, std::shared_ptr<ClassValue> cls)
      : cls_(std::move(cls)), heap_id_(heap_id) {}
  std::int64_t heap_id() const { return heap_id_; }
  const std::shared_ptr<ClassValue>& cls() const { return cls_; }
  std::map<std::string, Value> attrs;

 private:
  std::shared_ptr<ClassValue> cls_;
  std::int64_t heap_id_;
};

class Environment;

class FunctionValue {
 public:
  const Stmt* def = nullptr;  // StmtKind::kDef node (owned by the Module)
  // Non-null for lambda expressions (def is null then); the body is
  // lambda->left.
  const Expr* lambda = nullptr;
  std::shared_ptr<Environment> closure;
  // Bound receiver for methods; NoneType when unbound.
  Value self = NoneType{};
  std::string qualified_name;
};

class ClassValue {
 public:
  std::string name;
  const Stmt* def = nullptr;
  std::map<std::string, std::shared_ptr<FunctionValue>> methods;
};

class BuiltinFunction {
 public:
  using Fn = std::function<Value(Interpreter&, std::span<Value>)>;
  BuiltinFunction(std::string name, Fn fn)
      : name(std::move(name)), fn(std::move(fn)) {}
  std::string name;
  Fn fn;
};

// Lexically scoped variable environment.
class Environment : public std::enable_shared_from_this<Environment> {
 public:
  explicit Environment(std::shared_ptr<Environment> parent = nullptr)
      : parent_(std::move(parent)) {}

  // Looks a name up through the scope chain; null if absent.
  Value* Find(const std::string& name);
  // Defines or overwrites in this scope.
  void Define(const std::string& name, Value value);
  bool Has(const std::string& name) const;
  Environment* parent() { return parent_.get(); }
  const std::shared_ptr<Environment>& parent_ptr() const { return parent_; }

  // Names declared `global` in this scope: assignments go to the root.
  std::vector<std::string> global_names;

  // Drops every binding and the parent link. Interpreter teardown only:
  // environments and the function/object values they bind form shared_ptr
  // cycles (a FunctionValue's closure points back at the environment that
  // defines it), so the interpreter explicitly severs them in its
  // destructor rather than leaking the whole object graph.
  void Clear() {
    vars_.clear();
    global_names.clear();
    parent_.reset();
  }

 private:
  std::map<std::string, Value> vars_;
  std::shared_ptr<Environment> parent_;
};

// ---- helpers ----
const char* ValueTypeName(const Value& value);
bool Truthy(const Value& value);
std::string ValueToString(const Value& value);
bool ValuesEqual(const Value& a, const Value& b);

template <typename T>
bool Is(const Value& v) {
  return std::holds_alternative<T>(v);
}

}  // namespace janus::minipy

#endif  // JANUS_FRONTEND_VALUE_H_
