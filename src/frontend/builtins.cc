#include "frontend/builtins.h"

#include <cmath>
#include <iostream>
#include <map>

#include "tensor/ops.h"

namespace janus::minipy {
namespace {

std::int64_t ExpectInt(const Value& v, const char* context) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return *i;
  if (const auto* b = std::get_if<bool>(&v)) return *b ? 1 : 0;
  throw MiniPyError(std::string(context) + ": expected an int, got " +
                    ValueTypeName(v));
}

double ExpectNumber(const Value& v, const char* context) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  if (const auto* d = std::get_if<double>(&v)) return *d;
  throw MiniPyError(std::string(context) + ": expected a number, got " +
                    ValueTypeName(v));
}

const std::string& ExpectString(const Value& v, const char* context) {
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  throw MiniPyError(std::string(context) + ": expected a string, got " +
                    ValueTypeName(v));
}

std::vector<std::int64_t> ExpectIntList(const Value& v, const char* context) {
  const auto* list = std::get_if<std::shared_ptr<ListValue>>(&v);
  if (list == nullptr) {
    throw MiniPyError(std::string(context) + ": expected a list of ints");
  }
  std::vector<std::int64_t> result;
  result.reserve((*list)->items.size());
  for (const Value& item : (*list)->items) {
    result.push_back(ExpectInt(item, context));
  }
  return result;
}

// Flattens a (possibly nested) MiniPy list of numbers into a float tensor.
void FlattenInto(const Value& v, std::vector<float>* out,
                 std::vector<std::int64_t>* dims, int depth) {
  if (const auto* list = std::get_if<std::shared_ptr<ListValue>>(&v)) {
    const auto n = static_cast<std::int64_t>((*list)->items.size());
    if (static_cast<int>(dims->size()) <= depth) {
      dims->push_back(n);
    } else if ((*dims)[static_cast<std::size_t>(depth)] != n) {
      throw MiniPyError("constant(): ragged nested list");
    }
    for (const Value& item : (*list)->items) {
      FlattenInto(item, out, dims, depth + 1);
    }
    return;
  }
  out->push_back(static_cast<float>(ExpectNumber(v, "constant")));
}

void CheckArgc(std::span<Value> args, std::size_t lo, std::size_t hi,
               const char* name) {
  if (args.size() < lo || args.size() > hi) {
    throw MiniPyError(std::string(name) + "(): wrong number of arguments");
  }
}

// Registers a builtin executing a single graph op over n leading tensor
// arguments.
void TensorOpBuiltin(Interpreter& interp, const std::string& name,
                     const std::string& op, std::size_t n_args) {
  interp.RegisterBuiltin(
      name, [op, n_args, name](Interpreter& in, std::span<Value> args) -> Value {
        CheckArgc(args, n_args, n_args, name.c_str());
        std::vector<Tensor> inputs;
        inputs.reserve(n_args);
        for (const Value& arg : args) inputs.push_back(in.ToTensor(arg));
        return in.eager().Execute(op, std::move(inputs));
      });
}

void ReductionBuiltin(Interpreter& interp, const std::string& name,
                      const std::string& op) {
  interp.RegisterBuiltin(
      name, [op, name](Interpreter& in, std::span<Value> args) -> Value {
        CheckArgc(args, 1, 2, name.c_str());
        std::vector<std::int64_t> axes;
        if (args.size() == 2) {
          axes.push_back(ExpectInt(args[1], name.c_str()));
        }
        return in.eager().Execute(op, {in.ToTensor(args[0])},
                                  {{"axes", axes}, {"keep_dims", false}});
      });
}

}  // namespace

void InstallBuiltins(Interpreter& interp) {
  // ---- Python standard builtins ----
  interp.RegisterBuiltin("print", [](Interpreter&, std::span<Value> args) -> Value {
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (i > 0) std::cout << ' ';
      std::cout << ValueToString(args[i]);
    }
    std::cout << '\n';
    return NoneType{};
  });

  interp.RegisterBuiltin("len", [](Interpreter&, std::span<Value> args) -> Value {
    CheckArgc(args, 1, 1, "len");
    if (const auto* list = std::get_if<std::shared_ptr<ListValue>>(&args[0])) {
      return static_cast<std::int64_t>((*list)->items.size());
    }
    if (const auto* dict = std::get_if<std::shared_ptr<DictValue>>(&args[0])) {
      return static_cast<std::int64_t>((*dict)->items.size());
    }
    if (const auto* s = std::get_if<std::string>(&args[0])) {
      return static_cast<std::int64_t>(s->size());
    }
    if (const auto* t = std::get_if<Tensor>(&args[0])) {
      if (t->rank() < 1) throw MiniPyError("len() of a scalar tensor");
      return t->dim(0);
    }
    throw MiniPyError(std::string("len() unsupported for ") +
                      ValueTypeName(args[0]));
  });

  interp.RegisterBuiltin("range", [](Interpreter& in, std::span<Value> args) -> Value {
    CheckArgc(args, 1, 3, "range");
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    std::int64_t step = 1;
    if (args.size() == 1) {
      hi = ExpectInt(args[0], "range");
    } else {
      lo = ExpectInt(args[0], "range");
      hi = ExpectInt(args[1], "range");
      if (args.size() == 3) step = ExpectInt(args[2], "range");
    }
    if (step == 0) throw MiniPyError("range() step must not be zero");
    auto list = in.MakeList();
    if (step > 0) {
      for (std::int64_t i = lo; i < hi; i += step) list->items.push_back(i);
    } else {
      for (std::int64_t i = lo; i > hi; i += step) list->items.push_back(i);
    }
    return list;
  });

  interp.RegisterBuiltin("abs", [](Interpreter& in, std::span<Value> args) -> Value {
    CheckArgc(args, 1, 1, "abs");
    if (const auto* i = std::get_if<std::int64_t>(&args[0])) {
      return *i < 0 ? -*i : *i;
    }
    if (std::holds_alternative<Tensor>(args[0]) ||
        std::holds_alternative<VariableRef>(args[0])) {
      return in.eager().Execute("Abs", {in.ToTensor(args[0])});
    }
    return std::fabs(ExpectNumber(args[0], "abs"));
  });

  interp.RegisterBuiltin("int", [](Interpreter&, std::span<Value> args) -> Value {
    CheckArgc(args, 1, 1, "int");
    if (const auto* t = std::get_if<Tensor>(&args[0])) {
      return static_cast<std::int64_t>(t->ElementAsDouble(0));
    }
    return static_cast<std::int64_t>(ExpectNumber(args[0], "int"));
  });

  interp.RegisterBuiltin("float", [](Interpreter&, std::span<Value> args) -> Value {
    CheckArgc(args, 1, 1, "float");
    if (const auto* t = std::get_if<Tensor>(&args[0])) {
      return t->ElementAsDouble(0);
    }
    return ExpectNumber(args[0], "float");
  });

  interp.RegisterBuiltin("str", [](Interpreter&, std::span<Value> args) -> Value {
    CheckArgc(args, 1, 1, "str");
    return ValueToString(args[0]);
  });

  interp.RegisterBuiltin("min", [](Interpreter&, std::span<Value> args) -> Value {
    CheckArgc(args, 2, 2, "min");
    return ExpectNumber(args[0], "min") <= ExpectNumber(args[1], "min")
               ? args[0]
               : args[1];
  });
  interp.RegisterBuiltin("max", [](Interpreter&, std::span<Value> args) -> Value {
    CheckArgc(args, 2, 2, "max");
    return ExpectNumber(args[0], "max") >= ExpectNumber(args[1], "max")
               ? args[0]
               : args[1];
  });

  // ---- tensor creation ----
  interp.RegisterBuiltin("constant", [](Interpreter&, std::span<Value> args) -> Value {
    CheckArgc(args, 1, 1, "constant");
    std::vector<float> data;
    std::vector<std::int64_t> dims;
    FlattenInto(args[0], &data, &dims, 0);
    return Tensor::FromVector(std::move(data), Shape(std::move(dims)));
  });

  interp.RegisterBuiltin("constant_int", [](Interpreter&, std::span<Value> args) -> Value {
    CheckArgc(args, 1, 1, "constant_int");
    if (const auto* i = std::get_if<std::int64_t>(&args[0])) {
      return Tensor::ScalarInt(*i);
    }
    const auto ints = ExpectIntList(args[0], "constant_int");
    return Tensor::FromVectorInt(
        ints, Shape{static_cast<std::int64_t>(ints.size())});
  });

  interp.RegisterBuiltin("zeros", [](Interpreter&, std::span<Value> args) -> Value {
    CheckArgc(args, 1, 1, "zeros");
    return Tensor::Zeros(DType::kFloat32, Shape(ExpectIntList(args[0], "zeros")));
  });
  interp.RegisterBuiltin("ones", [](Interpreter&, std::span<Value> args) -> Value {
    CheckArgc(args, 1, 1, "ones");
    return Tensor::Full(Shape(ExpectIntList(args[0], "ones")), 1.0f);
  });
  interp.RegisterBuiltin("fill", [](Interpreter&, std::span<Value> args) -> Value {
    CheckArgc(args, 2, 2, "fill");
    return Tensor::Full(Shape(ExpectIntList(args[0], "fill")),
                        static_cast<float>(ExpectNumber(args[1], "fill")));
  });
  interp.RegisterBuiltin("randn", [](Interpreter& in, std::span<Value> args) -> Value {
    CheckArgc(args, 1, 2, "randn");
    const double stddev =
        args.size() == 2 ? ExpectNumber(args[1], "randn") : 1.0;
    return in.eager().Execute(
        "RandomNormal", {},
        {{"shape", ExpectIntList(args[0], "randn")},
         {"mean", 0.0},
         {"stddev", stddev}});
  });
  interp.RegisterBuiltin("rand_uniform", [](Interpreter& in, std::span<Value> args) -> Value {
    CheckArgc(args, 3, 3, "rand_uniform");
    return in.eager().Execute(
        "RandomUniform", {},
        {{"shape", ExpectIntList(args[0], "rand_uniform")},
         {"lo", ExpectNumber(args[1], "rand_uniform")},
         {"hi", ExpectNumber(args[2], "rand_uniform")}});
  });

  // ---- model parameters ----
  interp.RegisterBuiltin("variable", [](Interpreter& in, std::span<Value> args) -> Value {
    CheckArgc(args, 2, 2, "variable");
    const std::string& name = ExpectString(args[0], "variable");
    if (!in.variables()->Contains(name)) {
      in.variables()->Assign(name, in.ToTensor(args[1]));
    }
    return VariableRef{name};
  });
  interp.RegisterBuiltin("assign", [](Interpreter& in, std::span<Value> args) -> Value {
    CheckArgc(args, 2, 2, "assign");
    std::string name;
    if (const auto* var = std::get_if<VariableRef>(&args[0])) {
      name = var->name;
    } else {
      name = ExpectString(args[0], "assign");
    }
    in.eager().AssignVariable(name, in.ToTensor(args[1]));
    return NoneType{};
  });

  // ---- elementwise / NN ops (the external-function whitelist) ----
  TensorOpBuiltin(interp, "matmul", "MatMul", 2);
  TensorOpBuiltin(interp, "relu", "Relu", 1);
  TensorOpBuiltin(interp, "sigmoid", "Sigmoid", 1);
  TensorOpBuiltin(interp, "tanh", "Tanh", 1);
  TensorOpBuiltin(interp, "exp", "Exp", 1);
  TensorOpBuiltin(interp, "log", "Log", 1);
  TensorOpBuiltin(interp, "sqrt", "Sqrt", 1);
  TensorOpBuiltin(interp, "square", "Square", 1);
  TensorOpBuiltin(interp, "softmax", "Softmax", 1);
  TensorOpBuiltin(interp, "log_softmax", "LogSoftmax", 1);
  TensorOpBuiltin(interp, "softmax_xent", "SoftmaxCrossEntropy", 2);
  TensorOpBuiltin(interp, "transpose", "Transpose", 1);
  TensorOpBuiltin(interp, "gather", "Gather", 2);
  TensorOpBuiltin(interp, "select", "Select", 3);
  TensorOpBuiltin(interp, "stop_gradient", "StopGradient", 1);
  TensorOpBuiltin(interp, "maximum", "Maximum", 2);
  TensorOpBuiltin(interp, "minimum", "Minimum", 2);

  ReductionBuiltin(interp, "reduce_sum", "ReduceSum");
  ReductionBuiltin(interp, "reduce_mean", "ReduceMean");
  ReductionBuiltin(interp, "reduce_max", "ReduceMax");

  interp.RegisterBuiltin("argmax", [](Interpreter& in, std::span<Value> args) -> Value {
    CheckArgc(args, 2, 2, "argmax");
    return in.eager().Execute("ArgMax", {in.ToTensor(args[0])},
                              {{"axis", ExpectInt(args[1], "argmax")}});
  });

  interp.RegisterBuiltin("onehot", [](Interpreter& in, std::span<Value> args) -> Value {
    CheckArgc(args, 2, 2, "onehot");
    return in.eager().Execute("OneHot", {in.ToTensor(args[0])},
                              {{"depth", ExpectInt(args[1], "onehot")}});
  });

  interp.RegisterBuiltin("reshape", [](Interpreter& in, std::span<Value> args) -> Value {
    CheckArgc(args, 2, 2, "reshape");
    return in.eager().Execute("Reshape", {in.ToTensor(args[0])},
                              {{"shape", ExpectIntList(args[1], "reshape")}});
  });

  interp.RegisterBuiltin("cast_float", [](Interpreter& in, std::span<Value> args) -> Value {
    CheckArgc(args, 1, 1, "cast_float");
    return in.eager().Execute("Cast", {in.ToTensor(args[0])},
                              {{"dtype", DType::kFloat32}});
  });
  interp.RegisterBuiltin("cast_int", [](Interpreter& in, std::span<Value> args) -> Value {
    CheckArgc(args, 1, 1, "cast_int");
    return in.eager().Execute("Cast", {in.ToTensor(args[0])},
                              {{"dtype", DType::kInt64}});
  });

  interp.RegisterBuiltin("conv2d", [](Interpreter& in, std::span<Value> args) -> Value {
    CheckArgc(args, 4, 4, "conv2d");
    return in.eager().Execute(
        "Conv2D", {in.ToTensor(args[0]), in.ToTensor(args[1])},
        {{"stride", ExpectInt(args[2], "conv2d")},
         {"padding", ExpectString(args[3], "conv2d")}});
  });
  interp.RegisterBuiltin("maxpool", [](Interpreter& in, std::span<Value> args) -> Value {
    CheckArgc(args, 3, 3, "maxpool");
    return in.eager().Execute("MaxPool2D", {in.ToTensor(args[0])},
                              {{"window", ExpectInt(args[1], "maxpool")},
                               {"stride", ExpectInt(args[2], "maxpool")}});
  });
  interp.RegisterBuiltin("avgpool", [](Interpreter& in, std::span<Value> args) -> Value {
    CheckArgc(args, 3, 3, "avgpool");
    return in.eager().Execute("AvgPool2D", {in.ToTensor(args[0])},
                              {{"window", ExpectInt(args[1], "avgpool")},
                               {"stride", ExpectInt(args[2], "avgpool")}});
  });

  interp.RegisterBuiltin("concat", [](Interpreter& in, std::span<Value> args) -> Value {
    CheckArgc(args, 2, 2, "concat");
    const auto* list = std::get_if<std::shared_ptr<ListValue>>(&args[0]);
    if (list == nullptr) throw MiniPyError("concat(): expected a list");
    std::vector<Tensor> parts;
    for (const Value& item : (*list)->items) {
      parts.push_back(in.ToTensor(item));
    }
    return in.eager().Execute("Concat", std::move(parts),
                              {{"axis", ExpectInt(args[1], "concat")}});
  });
  interp.RegisterBuiltin("stack", [](Interpreter& in, std::span<Value> args) -> Value {
    CheckArgc(args, 1, 1, "stack");
    const auto* list = std::get_if<std::shared_ptr<ListValue>>(&args[0]);
    if (list == nullptr) throw MiniPyError("stack(): expected a list");
    std::vector<Tensor> parts;
    for (const Value& item : (*list)->items) {
      parts.push_back(in.ToTensor(item));
    }
    return in.eager().Execute("Stack", std::move(parts));
  });

  // slice2d(x, row_start, row_size, col_start, col_size): 2-D slice with
  // -1 meaning "to the end" (whitelisted; used for gate splitting).
  interp.RegisterBuiltin("slice2d", [](Interpreter& in, std::span<Value> args) -> Value {
    CheckArgc(args, 5, 5, "slice2d");
    return in.eager().Execute(
        "Slice", {in.ToTensor(args[0])},
        {{"begin", std::vector<std::int64_t>{ExpectInt(args[1], "slice2d"),
                                             ExpectInt(args[3], "slice2d")}},
         {"size", std::vector<std::int64_t>{ExpectInt(args[2], "slice2d"),
                                            ExpectInt(args[4], "slice2d")}}});
  });

  // Samples an index from a probability vector (imperative-only: used by
  // RL rollouts, which run outside converted code).
  interp.RegisterBuiltin("sample_categorical", [](Interpreter& in, std::span<Value> args) -> Value {
    CheckArgc(args, 1, 1, "sample_categorical");
    const Tensor probs = in.ToTensor(args[0]);
    const auto pv = probs.data<float>();
    double u = in.rng()->Uniform();
    for (std::size_t i = 0; i < pv.size(); ++i) {
      u -= pv[i];
      if (u <= 0) return static_cast<std::int64_t>(i);
    }
    return static_cast<std::int64_t>(pv.size() - 1);
  });

  // ---- training ----
  // optimize(fn, lr): runs fn() under a gradient tape, then applies one SGD
  // step to every variable the loss depends on. This is the conversion unit
  // JANUS intercepts (the `optimize(lambda: model(sequence))` of Fig. 1).
  interp.RegisterBuiltin("optimize", [](Interpreter& in, std::span<Value> args) -> Value {
    CheckArgc(args, 1, 2, "optimize");
    const auto* fn = std::get_if<std::shared_ptr<FunctionValue>>(&args[0]);
    if (fn == nullptr) throw MiniPyError("optimize(): expected a function");
    const float lr = args.size() == 2
                         ? static_cast<float>(ExpectNumber(args[1], "optimize"))
                         : 0.01f;
    in.eager().StartTape();
    Value loss_value;
    try {
      loss_value = in.CallFunction(*fn, {});
    } catch (...) {
      // Drop the tape on error.
      throw;
    }
    const Tensor loss = in.ToTensor(loss_value);
    const auto grads = in.eager().GradientsAndStopTape(loss);
    for (const auto& [name, grad] : grads) {
      const Tensor current = in.variables()->Read(name);
      in.variables()->Assign(
          name, ops::Sub(current, ops::Mul(Tensor::Scalar(lr), grad)));
    }
    return loss;
  });

  // gradients(fn): like optimize but returns {var name: grad} without
  // updating parameters (used by tests and custom training loops).
  interp.RegisterBuiltin("gradients", [](Interpreter& in, std::span<Value> args) -> Value {
    CheckArgc(args, 1, 1, "gradients");
    const auto* fn = std::get_if<std::shared_ptr<FunctionValue>>(&args[0]);
    if (fn == nullptr) throw MiniPyError("gradients(): expected a function");
    in.eager().StartTape();
    const Value loss_value = in.CallFunction(*fn, {});
    const Tensor loss = in.ToTensor(loss_value);
    const auto grads = in.eager().GradientsAndStopTape(loss);
    auto dict = in.MakeDict();
    for (const auto& [name, grad] : grads) dict->items[name] = grad;
    return dict;
  });
}

std::optional<BuiltinOpInfo> LookupBuiltinOp(const std::string& name) {
  static const auto* const table = new std::map<std::string, BuiltinOpInfo>{
      {"matmul", {"MatMul", 2}},
      {"relu", {"Relu", 1}},
      {"sigmoid", {"Sigmoid", 1}},
      {"tanh", {"Tanh", 1}},
      {"exp", {"Exp", 1}},
      {"log", {"Log", 1}},
      {"sqrt", {"Sqrt", 1}},
      {"square", {"Square", 1}},
      {"softmax", {"Softmax", 1}},
      {"log_softmax", {"LogSoftmax", 1}},
      {"softmax_xent", {"SoftmaxCrossEntropy", 2}},
      {"transpose", {"Transpose", 1}},
      {"gather", {"Gather", 2}},
      {"select", {"Select", 3}},
      {"stop_gradient", {"StopGradient", 1}},
      {"maximum", {"Maximum", 2}},
      {"minimum", {"Minimum", 2}},
  };
  const auto it = table->find(name);
  if (it == table->end()) return std::nullopt;
  return it->second;
}

}  // namespace janus::minipy
