#include "frontend/lexer.h"

#include <cctype>
#include <map>

#include "common/error.h"

namespace janus::minipy {
namespace {

const std::map<std::string, TokenKind, std::less<>>& Keywords() {
  static const auto* const keywords = new std::map<std::string, TokenKind,
                                                   std::less<>>{
      {"def", TokenKind::kDef},       {"class", TokenKind::kClass},
      {"if", TokenKind::kIf},         {"elif", TokenKind::kElif},
      {"else", TokenKind::kElse},     {"while", TokenKind::kWhile},
      {"for", TokenKind::kFor},       {"in", TokenKind::kIn},
      {"return", TokenKind::kReturn}, {"pass", TokenKind::kPass},
      {"break", TokenKind::kBreak},   {"continue", TokenKind::kContinue},
      {"global", TokenKind::kGlobal}, {"not", TokenKind::kNot},
      {"and", TokenKind::kAnd},       {"or", TokenKind::kOr},
      {"True", TokenKind::kTrue},     {"False", TokenKind::kFalse},
      {"None", TokenKind::kNone},     {"lambda", TokenKind::kLambda},
      {"raise", TokenKind::kRaise},   {"try", TokenKind::kTry},
      {"except", TokenKind::kExcept}, {"finally", TokenKind::kFinally},
      {"yield", TokenKind::kYield},   {"import", TokenKind::kImport},
      {"with", TokenKind::kWith},     {"as", TokenKind::kAs},
  };
  return *keywords;
}

[[noreturn]] void Fail(int line, const std::string& message) {
  throw InvalidArgument("line " + std::to_string(line) + ": " + message);
}

}  // namespace

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kInt: return "int";
    case TokenKind::kFloat: return "float";
    case TokenKind::kString: return "string";
    case TokenKind::kName: return "name";
    case TokenKind::kNewline: return "newline";
    case TokenKind::kIndent: return "indent";
    case TokenKind::kDedent: return "dedent";
    case TokenKind::kEndOfFile: return "end of file";
    case TokenKind::kDef: return "'def'";
    case TokenKind::kClass: return "'class'";
    case TokenKind::kIf: return "'if'";
    case TokenKind::kElif: return "'elif'";
    case TokenKind::kElse: return "'else'";
    case TokenKind::kWhile: return "'while'";
    case TokenKind::kFor: return "'for'";
    case TokenKind::kIn: return "'in'";
    case TokenKind::kReturn: return "'return'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kComma: return "','";
    case TokenKind::kAssign: return "'='";
    default: return "token";
  }
}

std::vector<Token> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  std::vector<int> indents{0};
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();
  int paren_depth = 0;  // newlines inside brackets are insignificant

  const auto push = [&](TokenKind kind, std::string text = {}) {
    tokens.push_back(Token{kind, std::move(text), 0, 0.0, line});
  };

  bool at_line_start = true;
  while (i <= n) {
    if (at_line_start && paren_depth == 0) {
      // Measure indentation; skip blank/comment-only lines entirely.
      int indent = 0;
      std::size_t j = i;
      while (j < n && (source[j] == ' ' || source[j] == '\t')) {
        indent += source[j] == '\t' ? 8 : 1;
        ++j;
      }
      if (j >= n || source[j] == '\n' || source[j] == '#') {
        // Blank or comment line: consume it without layout tokens.
        while (j < n && source[j] != '\n') ++j;
        if (j >= n) break;
        i = j + 1;
        ++line;
        continue;
      }
      if (indent > indents.back()) {
        indents.push_back(indent);
        push(TokenKind::kIndent);
      } else {
        while (indent < indents.back()) {
          indents.pop_back();
          push(TokenKind::kDedent);
        }
        if (indent != indents.back()) Fail(line, "inconsistent indentation");
      }
      i = j;
      at_line_start = false;
      continue;
    }
    if (i >= n) break;
    const char c = source[i];
    if (c == '\n') {
      ++i;
      ++line;
      if (paren_depth == 0) {
        push(TokenKind::kNewline);
        at_line_start = true;
      }
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])) != 0)) {
      std::size_t j = i;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(source[j])) != 0 ||
                       source[j] == '.' || source[j] == 'e' || source[j] == 'E' ||
                       ((source[j] == '+' || source[j] == '-') && j > i &&
                        (source[j - 1] == 'e' || source[j - 1] == 'E')))) {
        if (source[j] == '.' || source[j] == 'e' || source[j] == 'E') {
          is_float = true;
        }
        ++j;
      }
      const std::string text = source.substr(i, j - i);
      Token token{is_float ? TokenKind::kFloat : TokenKind::kInt, text, 0, 0.0,
                  line};
      try {
        if (is_float) {
          token.float_value = std::stod(text);
        } else {
          token.int_value = std::stoll(text);
        }
      } catch (const std::exception&) {
        Fail(line, "malformed number '" + text + "'");
      }
      tokens.push_back(std::move(token));
      i = j;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(source[j])) != 0 ||
                       source[j] == '_')) {
        ++j;
      }
      const std::string text = source.substr(i, j - i);
      const auto it = Keywords().find(text);
      if (it != Keywords().end()) {
        push(it->second, text);
      } else {
        push(TokenKind::kName, text);
      }
      i = j;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      std::string text;
      while (j < n && source[j] != quote) {
        if (source[j] == '\n') Fail(line, "unterminated string");
        if (source[j] == '\\' && j + 1 < n) {
          ++j;
          switch (source[j]) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            case '\\': text += '\\'; break;
            case '\'': text += '\''; break;
            case '"': text += '"'; break;
            default: Fail(line, "unknown escape");
          }
        } else {
          text += source[j];
        }
        ++j;
      }
      if (j >= n) Fail(line, "unterminated string");
      push(TokenKind::kString, text);
      i = j + 1;
      continue;
    }
    // Operators.
    const auto two = i + 1 < n ? source.substr(i, 2) : std::string();
    if (two == "**") { push(TokenKind::kDoubleStar); i += 2; continue; }
    if (two == "//") { push(TokenKind::kDoubleSlash); i += 2; continue; }
    if (two == "==") { push(TokenKind::kEq); i += 2; continue; }
    if (two == "!=") { push(TokenKind::kNe); i += 2; continue; }
    if (two == "<=") { push(TokenKind::kLe); i += 2; continue; }
    if (two == ">=") { push(TokenKind::kGe); i += 2; continue; }
    if (two == "+=") { push(TokenKind::kPlusAssign); i += 2; continue; }
    if (two == "-=") { push(TokenKind::kMinusAssign); i += 2; continue; }
    if (two == "*=") { push(TokenKind::kStarAssign); i += 2; continue; }
    if (two == "/=") { push(TokenKind::kSlashAssign); i += 2; continue; }
    switch (c) {
      case '+': push(TokenKind::kPlus); break;
      case '-': push(TokenKind::kMinus); break;
      case '*': push(TokenKind::kStar); break;
      case '/': push(TokenKind::kSlash); break;
      case '%': push(TokenKind::kPercent); break;
      case '=': push(TokenKind::kAssign); break;
      case '<': push(TokenKind::kLt); break;
      case '>': push(TokenKind::kGt); break;
      case '(': push(TokenKind::kLParen); ++paren_depth; break;
      case ')': push(TokenKind::kRParen); --paren_depth; break;
      case '[': push(TokenKind::kLBracket); ++paren_depth; break;
      case ']': push(TokenKind::kRBracket); --paren_depth; break;
      case '{': push(TokenKind::kLBrace); ++paren_depth; break;
      case '}': push(TokenKind::kRBrace); --paren_depth; break;
      case ',': push(TokenKind::kComma); break;
      case ':': push(TokenKind::kColon); break;
      case '.': push(TokenKind::kDot); break;
      default:
        Fail(line, std::string("unexpected character '") + c + "'");
    }
    ++i;
  }
  // Close any open blocks.
  if (!tokens.empty() && tokens.back().kind != TokenKind::kNewline) {
    tokens.push_back(Token{TokenKind::kNewline, "", 0, 0.0, line});
  }
  while (indents.size() > 1) {
    indents.pop_back();
    tokens.push_back(Token{TokenKind::kDedent, "", 0, 0.0, line});
  }
  tokens.push_back(Token{TokenKind::kEndOfFile, "", 0, 0.0, line});
  return tokens;
}

}  // namespace janus::minipy
