// Data-parallel cluster model for the Fig. 8 scalability reproduction.
//
// Per-iteration timing of synchronous data-parallel SGD over N workers:
//  * every worker runs an identical layer pipeline (forward then backward),
//  * each layer's gradient is averaged with a ring allreduce
//    (Horovod-style; the paper integrates Horovod in §5),
//  * graph-based frameworks (JANUS / TensorFlow) overlap communication with
//    the remainder of the backward pass, because the allreduce is an
//    operation inside the dataflow graph,
//  * the imperative executor issues ops synchronously one at a time, so
//    every allreduce blocks compute — the paper's explanation for TF
//    Eager's poor scale factors (§6.3.2: 0.24 vs 0.77-0.81).
#ifndef JANUS_SIM_CLUSTER_H_
#define JANUS_SIM_CLUSTER_H_

#include <cstdint>
#include <vector>

#include "sim/event_sim.h"

namespace janus::sim {

struct ClusterConfig {
  int num_workers = 1;
  int devices_per_machine = 6;          // the paper's testbed
  double interconnect_gbps = 100.0;     // InfiniBand between machines
  double intra_machine_gbps = 120.0;    // NVLink/PCIe-ish within a machine
  double per_message_latency_s = 10e-6; // per ring step
  // Framework-side per-op launch overhead (imperative executors pay this on
  // every op; graph executors amortise it).
  double imperative_op_overhead_s = 20e-6;
};

// One model layer as seen by the trainer.
struct LayerCost {
  double forward_s = 0.0;
  double backward_s = 0.0;
  std::int64_t gradient_bytes = 0;
  // Number of primitive ops in this layer (for imperative op overhead).
  int forward_ops = 1;
  int backward_ops = 2;
};

// Ring-allreduce completion time for one tensor across the cluster:
//   2 (N-1) steps, each moving (bytes / N) over the slowest link.
double RingAllReduceSeconds(const ClusterConfig& cluster,
                            std::int64_t bytes);

enum class ExecutionStyle {
  kGraphOverlapped,   // JANUS and TensorFlow: comm overlaps backward
  kImperativeSerial,  // TF Eager: synchronous per-op dispatch, no overlap
};

struct IterationResult {
  double seconds = 0.0;
  double compute_seconds = 0.0;
  double comm_seconds = 0.0;  // network busy time
};

// Simulates one training iteration and returns its duration.
IterationResult SimulateIteration(const ClusterConfig& cluster,
                                  const std::vector<LayerCost>& layers,
                                  ExecutionStyle style);

// Convenience: throughput (items/s) given per-iteration items, and the
// scale factor relative to a single worker (§6.3.2's metric).
struct ScalingPoint {
  int workers = 0;
  double throughput = 0.0;
  double scale_factor = 0.0;
};

std::vector<ScalingPoint> SimulateScaling(
    ClusterConfig cluster, const std::vector<LayerCost>& layers,
    ExecutionStyle style, const std::vector<int>& worker_counts,
    double items_per_iteration_per_worker);

}  // namespace janus::sim

#endif  // JANUS_SIM_CLUSTER_H_
