#include "sim/cluster.h"

#include <algorithm>

namespace janus::sim {

double RingAllReduceSeconds(const ClusterConfig& cluster,
                            std::int64_t bytes) {
  const int n = cluster.num_workers;
  if (n <= 1 || bytes == 0) return 0.0;
  // The ring spans machines once more workers than one machine's devices
  // participate; the slowest link bounds every step.
  const bool crosses_machines = n > cluster.devices_per_machine;
  const double gbps = crosses_machines ? cluster.interconnect_gbps
                                       : cluster.intra_machine_gbps;
  const double bytes_per_second = gbps * 1e9 / 8.0;
  const double chunk = static_cast<double>(bytes) / n;
  const int steps = 2 * (n - 1);
  return steps * (chunk / bytes_per_second + cluster.per_message_latency_s);
}

IterationResult SimulateIteration(const ClusterConfig& cluster,
                                  const std::vector<LayerCost>& layers,
                                  ExecutionStyle style) {
  Simulator sim;
  FifoResource compute(&sim);
  FifoResource network(&sim);

  IterationResult result;
  const bool overlapped = style == ExecutionStyle::kGraphOverlapped;
  const double op_overhead =
      overlapped ? 0.0 : cluster.imperative_op_overhead_s;

  // Forward pass: layers in order.
  SimTime t = 0.0;
  for (const LayerCost& layer : layers) {
    const double cost = layer.forward_s + op_overhead * layer.forward_ops;
    t = compute.Submit(t, cost);
  }
  // Backward pass: layers reversed; each finished layer's gradient enters
  // the allreduce.
  SimTime last_comm = t;
  for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
    const double cost = it->backward_s + op_overhead * it->backward_ops;
    t = compute.Submit(t, cost);
    const double comm = RingAllReduceSeconds(cluster, it->gradient_bytes);
    if (overlapped) {
      // The allreduce op becomes ready when its gradient is produced and
      // runs on the network while the remaining backward layers compute.
      last_comm = std::max(last_comm, network.Submit(t, comm));
    } else {
      // Synchronous dispatch: the allreduce blocks the compute stream, and
      // the imperative executor drives every ring step from the framework
      // loop, paying dispatch overhead per step (the paper's explanation
      // for TF Eager's poor scale factors).
      const double ring_dispatch =
          cluster.imperative_op_overhead_s *
          (cluster.num_workers > 1 ? 2.0 * (cluster.num_workers - 1) : 0.0);
      t = compute.Submit(t, comm + ring_dispatch);
      last_comm = t;
    }
  }
  sim.Run();
  result.seconds = std::max(t, last_comm);
  result.compute_seconds = compute.total_busy();
  result.comm_seconds = network.total_busy();
  return result;
}

std::vector<ScalingPoint> SimulateScaling(
    ClusterConfig cluster, const std::vector<LayerCost>& layers,
    ExecutionStyle style, const std::vector<int>& worker_counts,
    double items_per_iteration_per_worker) {
  std::vector<ScalingPoint> points;
  double single_throughput = 0.0;
  for (const int workers : worker_counts) {
    cluster.num_workers = workers;
    const IterationResult iteration =
        SimulateIteration(cluster, layers, style);
    ScalingPoint point;
    point.workers = workers;
    point.throughput =
        workers * items_per_iteration_per_worker / iteration.seconds;
    if (workers == 1) single_throughput = point.throughput;
    point.scale_factor =
        single_throughput > 0.0
            ? point.throughput / (single_throughput * workers)
            : 0.0;
    points.push_back(point);
  }
  return points;
}

}  // namespace janus::sim
