#include "sim/event_sim.h"

namespace janus::sim {

void Simulator::At(SimTime when, std::function<void()> fn) {
  JANUS_EXPECTS(when >= now_);
  queue_.push(Event{when, seq_++, std::move(fn)});
}

void Simulator::After(SimTime delay, std::function<void()> fn) {
  At(now_ + delay, std::move(fn));
}

SimTime Simulator::Run() {
  while (!queue_.empty()) {
    // priority_queue::top is const; move via const_cast is UB — copy the
    // function instead (events are small).
    Event event = queue_.top();
    queue_.pop();
    now_ = event.when;
    ++events_;
    event.fn();
  }
  return now_;
}

SimTime FifoResource::Submit(SimTime ready, SimTime duration,
                             std::function<void(SimTime)> done) {
  JANUS_EXPECTS(duration >= 0);
  const SimTime start = std::max(ready, busy_until_);
  const SimTime finish = start + duration;
  busy_until_ = finish;
  total_busy_ += duration;
  if (done != nullptr) {
    sim_->At(finish, [done = std::move(done), finish] { done(finish); });
  }
  return finish;
}

}  // namespace janus::sim
