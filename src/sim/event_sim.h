// A small discrete-event simulation core: an event queue over simulated
// time plus FIFO resources. Used by the cluster model that reproduces the
// paper's multi-GPU scalability experiment (Fig. 8) — the physical testbed
// (6 machines x 6 TITAN Xp, 100 Gbps InfiniBand) is simulated, calibrated
// with per-op timings measured on this host (see DESIGN.md §2).
#ifndef JANUS_SIM_EVENT_SIM_H_
#define JANUS_SIM_EVENT_SIM_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/error.h"

namespace janus::sim {

using SimTime = double;  // seconds

class Simulator {
 public:
  // Schedules `fn` at absolute simulated time `when`.
  void At(SimTime when, std::function<void()> fn);
  // Schedules `fn` `delay` seconds from now (only valid while running, or
  // before Run() for time 0).
  void After(SimTime delay, std::function<void()> fn);

  // Runs until the event queue drains; returns the final simulated time.
  SimTime Run();

  SimTime now() const { return now_; }
  std::int64_t events_processed() const { return events_; }

 private:
  struct Event {
    SimTime when;
    std::int64_t seq;  // FIFO tie-break for simultaneous events
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  SimTime now_ = 0.0;
  std::int64_t seq_ = 0;
  std::int64_t events_ = 0;
};

// A FIFO-serving resource (a compute lane, a network link): jobs submitted
// with a duration run one at a time in submission order.
class FifoResource {
 public:
  explicit FifoResource(Simulator* sim) : sim_(sim) {}

  // Submits a job available at `ready` taking `duration`; `done` fires at
  // completion with the completion time. Returns the completion time.
  SimTime Submit(SimTime ready, SimTime duration,
                 std::function<void(SimTime)> done = nullptr);

  SimTime busy_until() const { return busy_until_; }
  SimTime total_busy() const { return total_busy_; }

 private:
  Simulator* sim_;
  SimTime busy_until_ = 0.0;
  SimTime total_busy_ = 0.0;
};

}  // namespace janus::sim

#endif  // JANUS_SIM_EVENT_SIM_H_
