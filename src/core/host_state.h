// StateInterface adapter over the MiniPy interpreter heap: lets graph-mode
// PyGetAttr/PySetAttr/PyGetSubscr/PySetSubscr kernels dereference pointer
// tensors into live interpreter objects (Fig. 5). Values cross the boundary
// as tensors: numerics become scalar tensors, heap values become int64
// pointer tensors, None becomes pointer 0 — the encoding of §4.2.2.
#ifndef JANUS_CORE_HOST_STATE_H_
#define JANUS_CORE_HOST_STATE_H_

#include "frontend/interpreter.h"
#include "runtime/run_context.h"

namespace janus {

// Encodes a MiniPy value as a tensor for graph consumption; throws
// NotConvertible for values with no tensor encoding (functions, classes).
Tensor EncodeValueAsTensor(const minipy::Value& value);

class InterpreterHostState : public StateInterface {
 public:
  explicit InterpreterHostState(minipy::Interpreter* interp)
      : interp_(interp) {}

  Tensor GetAttr(std::int64_t object_id, const std::string& name) override;
  void SetAttr(std::int64_t object_id, const std::string& name,
               const Tensor& value) override;
  Tensor GetSubscr(std::int64_t object_id, std::int64_t index) override;
  void SetSubscr(std::int64_t object_id, std::int64_t index,
                 const Tensor& value) override;

 private:
  minipy::Interpreter* interp_;
};

}  // namespace janus

#endif  // JANUS_CORE_HOST_STATE_H_
