// The runtime Profiler (Fig. 2 (A)): an ExecutionObserver that watches
// imperative executions and accumulates the per-site statistics the
// Speculative Graph Generator turns into context assumptions — branch
// directions, loop trip counts, callee identities, argument/attribute/
// subscript value observations (§3.1).
#ifndef JANUS_CORE_PROFILER_H_
#define JANUS_CORE_PROFILER_H_

#include <map>
#include <string>

#include "core/assumptions.h"
#include "frontend/interpreter.h"

namespace janus {

// Converts a MiniPy value into a profiling observation.
void ObserveValue(ValueProfile& profile, const minipy::Value& value);

class Profiler : public minipy::ExecutionObserver {
 public:
  // ---- ExecutionObserver ----
  void OnBranch(const minipy::Stmt* stmt, bool taken) override;
  void OnLoopFinished(const minipy::Stmt* stmt,
                      std::int64_t trip_count) override;
  void OnCall(const minipy::Expr* call, const minipy::Value& callee) override;
  void OnFunctionEntry(const minipy::Stmt* def,
                       std::span<const minipy::Value> args) override;
  void OnAttrLoad(const minipy::Expr* attr, const minipy::Value& object,
                  const minipy::Value& result) override;
  void OnSubscrLoad(const minipy::Expr* subscr, const minipy::Value& object,
                    const minipy::Value& result) override;

  // ---- queries used by the generator ----
  const BranchProfile* branch(const minipy::Stmt* stmt) const;
  const LoopProfile* loop(const minipy::Stmt* stmt) const;
  const ValueProfile* call_target(const minipy::Expr* call) const;
  const ValueProfile* argument(const minipy::Stmt* def, int index) const;
  const ValueProfile* attr_load(const minipy::Expr* attr) const;
  const ValueProfile* subscr_load(const minipy::Expr* subscr) const;

  // How many times a function body has been profiled.
  std::int64_t function_calls(const minipy::Stmt* def) const;

  // Assumption-failure feedback (§3.2): sites whose speculative treatment
  // failed at runtime are blacklisted so regeneration relaxes them. The
  // blacklist is bounded (kMaxFailedAssumptions): long-lived engines
  // re-marking ever-changing ids (e.g. value-dependent capture paths) age
  // out the oldest marks instead of growing without limit. Re-marking an
  // id refreshes its stamp, so persistently failing sites stay listed.
  static constexpr std::size_t kMaxFailedAssumptions = 256;
  void MarkAssumptionFailed(const std::string& assumption_id);
  bool HasFailed(const std::string& assumption_id) const;
  std::size_t failed_assumption_count() const {
    return failed_assumptions_.size();
  }

  // Context-value observations keyed by ContextRef path string (closure
  // captures and heap-list elements): fed by the generator when it first
  // captures a value and by the engine on every entry validation, so shape
  // and constant assumptions relax over time (Fig. 4).
  void ObserveContext(const std::string& ref, const minipy::Value& value);
  const ValueProfile* context(const std::string& ref) const;

  std::int64_t total_observations() const { return total_observations_; }

 private:
  std::map<const minipy::Stmt*, BranchProfile> branches_;
  std::map<const minipy::Stmt*, LoopProfile> loops_;
  std::map<const minipy::Expr*, ValueProfile> calls_;
  std::map<std::pair<const minipy::Stmt*, int>, ValueProfile> arguments_;
  std::map<const minipy::Expr*, ValueProfile> attr_loads_;
  std::map<const minipy::Expr*, ValueProfile> subscr_loads_;
  std::map<const minipy::Stmt*, std::int64_t> function_calls_;
  std::map<std::string, ValueProfile> context_profiles_;
  // id -> insertion stamp (monotonic); oldest stamp evicted at the cap.
  std::map<std::string, std::int64_t> failed_assumptions_;
  std::int64_t failure_stamp_ = 0;
  std::int64_t total_observations_ = 0;
};

}  // namespace janus

#endif  // JANUS_CORE_PROFILER_H_
