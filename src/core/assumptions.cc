#include "core/assumptions.h"

#include <sstream>

#include "common/error.h"

namespace janus {

ShapeAssumption ShapeAssumption::Exact(const Shape& shape) {
  ShapeAssumption a;
  a.dims_.reserve(static_cast<std::size_t>(shape.rank()));
  for (const std::int64_t d : shape.dims()) a.dims_.emplace_back(d);
  return a;
}

ShapeAssumption ShapeAssumption::AnyOfRank(int rank) {
  JANUS_EXPECTS(rank >= 0);
  ShapeAssumption a;
  a.dims_.assign(static_cast<std::size_t>(rank), std::nullopt);
  return a;
}

ShapeAssumption ShapeAssumption::Unknown() {
  ShapeAssumption a;
  a.unknown_ = true;
  return a;
}

bool ShapeAssumption::Matches(const Shape& shape) const {
  if (unknown_) return true;
  if (static_cast<int>(dims_.size()) != shape.rank()) return false;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (dims_[i].has_value() && *dims_[i] != shape.dim(static_cast<int>(i))) {
      return false;
    }
  }
  return true;
}

ShapeAssumption ShapeAssumption::Relaxed(const Shape& observed) const {
  if (unknown_) return *this;
  if (static_cast<int>(dims_.size()) != observed.rank()) return Unknown();
  ShapeAssumption relaxed = *this;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (relaxed.dims_[i].has_value() &&
        *relaxed.dims_[i] != observed.dim(static_cast<int>(i))) {
      relaxed.dims_[i] = std::nullopt;
    }
  }
  return relaxed;
}

ShapeAssumption ShapeAssumption::RelaxedToRank() const {
  if (unknown_) return *this;
  return AnyOfRank(static_cast<int>(dims_.size()));
}

bool ShapeAssumption::IsExact() const {
  if (unknown_) return false;
  for (const auto& d : dims_) {
    if (!d.has_value()) return false;
  }
  return true;
}

Shape ShapeAssumption::ExactShape() const {
  JANUS_EXPECTS(IsExact());
  std::vector<std::int64_t> dims;
  dims.reserve(dims_.size());
  for (const auto& d : dims_) dims.push_back(*d);
  return Shape(std::move(dims));
}

std::string ShapeAssumption::ToString() const {
  if (unknown_) return "(unknown)";
  std::ostringstream oss;
  oss << '(';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) oss << ", ";
    if (dims_[i].has_value()) {
      oss << *dims_[i];
    } else {
      oss << '?';
    }
  }
  oss << ')';
  return oss.str();
}

const char* ObservedKindName(ObservedKind kind) {
  switch (kind) {
    case ObservedKind::kNone: return "None";
    case ObservedKind::kBool: return "bool";
    case ObservedKind::kInt: return "int";
    case ObservedKind::kFloat: return "float";
    case ObservedKind::kString: return "str";
    case ObservedKind::kTensor: return "tensor";
    case ObservedKind::kVariable: return "variable";
    case ObservedKind::kList: return "list";
    case ObservedKind::kDict: return "dict";
    case ObservedKind::kObject: return "object";
    case ObservedKind::kFunction: return "function";
    case ObservedKind::kClass: return "class";
    case ObservedKind::kBuiltin: return "builtin";
    case ObservedKind::kMixed: return "mixed";
  }
  return "?";
}

void ValueProfile::Observe(ObservedKind k, DType dt, const Shape* shape_in,
                           double numeric, const std::string& str,
                           std::int64_t heap) {
  ++observations;
  if (!seen) {
    seen = true;
    kind = k;
    dtype = dt;
    if (shape_in != nullptr) shape = ShapeAssumption::Exact(*shape_in);
    numeric_value = numeric;
    string_value = str;
    heap_id = heap;
    return;
  }
  if (kind != k) {
    kind = ObservedKind::kMixed;
    value_stable = false;
    heap_stable = false;
    return;
  }
  if (dt != dtype) dtype_stable = false;
  if (shape_in != nullptr) shape = shape.Relaxed(*shape_in);
  if (numeric != numeric_value || str != string_value) value_stable = false;
  if (heap != heap_id) heap_stable = false;
}

}  // namespace janus
