#include "core/generator.h"

#include <algorithm>
#include <optional>
#include <set>
#include <sstream>
#include <unordered_map>

#include "autodiff/gradients.h"
#include "core/host_state.h"
#include "frontend/builtins.h"
#include "opt/passes.h"

namespace janus {
namespace {

using minipy::BinaryOp;
using minipy::BoolOpKind;
using minipy::CompareOp;
using minipy::Expr;
using minipy::ExprKind;
using minipy::Stmt;
using minipy::StmtKind;
using minipy::UnaryOp;
using minipy::Value;

[[noreturn]] void Refuse(const std::string& why) { throw NotConvertible(why); }

// ---------------------------------------------------------------------------
// Symbolic values
// ---------------------------------------------------------------------------

struct SymValue {
  enum class Kind { kStatic, kNode, kList };
  Kind kind = Kind::kStatic;

  // kStatic
  Value static_value{minipy::NoneType{}};
  std::optional<ContextRef> origin;  // provenance for entry checks

  // kNode
  NodeOutput node{};
  Graph* owner = nullptr;
  DType dtype = DType::kFloat32;
  bool is_pointer = false;
  ShapeAssumption shape = ShapeAssumption::Unknown();

  // kList (shared for aliasing: two names bound to one list see mutations)
  std::shared_ptr<std::vector<SymValue>> elements;

  static SymValue Static(Value v, std::optional<ContextRef> origin = {}) {
    SymValue s;
    s.kind = Kind::kStatic;
    s.static_value = std::move(v);
    s.origin = std::move(origin);
    return s;
  }
  static SymValue OfNode(NodeOutput n, Graph* g, DType dt,
                         bool pointer = false,
                         ShapeAssumption sh = ShapeAssumption::Unknown()) {
    SymValue s;
    s.kind = Kind::kNode;
    s.node = n;
    s.owner = g;
    s.dtype = dt;
    s.is_pointer = pointer;
    s.shape = std::move(sh);
    return s;
  }
  static SymValue List(std::vector<SymValue> items) {
    SymValue s;
    s.kind = Kind::kList;
    s.elements =
        std::make_shared<std::vector<SymValue>>(std::move(items));
    return s;
  }

  bool IsStatic() const { return kind == Kind::kStatic; }
  bool IsNode() const { return kind == Kind::kNode; }
  bool IsList() const { return kind == Kind::kList; }

  // Shallow identity, used to detect branch-local rebinding.
  bool SameAs(const SymValue& other) const {
    if (kind != other.kind) return false;
    switch (kind) {
      case Kind::kNode:
        return node == other.node;
      case Kind::kList:
        return elements == other.elements;
      case Kind::kStatic:
        return minipy::ValuesEqual(static_value, other.static_value);
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// Frames and scopes
// ---------------------------------------------------------------------------

// A gate marks "we are generating inside a dynamic branch": values produced
// before `watermark` must pass through Switch(value, cond) side `side`.
struct Gate {
  NodeOutput cond;
  bool side;
  int watermark;  // node ids below this existed before the branch
};

struct Frame {
  Graph* graph = nullptr;
  Frame* parent = nullptr;
  // Function frames import root-graph values through appended Params.
  GraphFunction* fn = nullptr;
  std::map<std::pair<Node*, int>, NodeOutput> imports;
  std::vector<NodeOutput> import_sources;  // values in parent frame's graph
  // Dynamic-branch gates (innermost last).
  std::vector<Gate> gates;
  std::map<std::tuple<Node*, int, bool>, NodeOutput> gate_cache;
  // State-op ordering: (heap id, attr or "[i]") -> last read/write node.
  std::map<std::pair<std::int64_t, std::string>, Node*> last_state_write;
  std::map<std::pair<std::int64_t, std::string>, std::vector<Node*>>
      readers_since_write;
  // Side-effecting / assertion nodes that must be anchored to the fetches.
  std::vector<Node*> side_nodes;
};

struct Scope {
  std::map<std::string, SymValue> vars;
  Scope* parent = nullptr;  // enclosing symbolic scope (loop bodies)
  // Real environment for closure captures (function scopes only).
  std::shared_ptr<minipy::Environment> closure;
  std::set<std::string> global_names;

  SymValue* Find(const std::string& name) {
    const auto it = vars.find(name);
    if (it != vars.end()) return &it->second;
    if (parent != nullptr) return parent->Find(name);
    return nullptr;
  }
  // The closure environment of the nearest function scope.
  std::shared_ptr<minipy::Environment> ClosureEnv() {
    Scope* s = this;
    while (s != nullptr && s->closure == nullptr) s = s->parent;
    return s != nullptr ? s->closure : nullptr;
  }
};

// Control-flow signals during symbolic execution.
struct GenReturn {
  SymValue value;
};
struct GenBreak {};
struct GenContinue {};

// Syntactically collects names assigned anywhere in a statement list
// (loop-carried variable analysis).
void CollectAssigned(const std::vector<minipy::StmtPtr>& body,
                     std::set<std::string>* out) {
  for (const auto& stmt : body) {
    switch (stmt->kind) {
      case StmtKind::kAssign:
      case StmtKind::kAugAssign:
        if (stmt->target->kind == ExprKind::kName) {
          out->insert(stmt->target->str_value);
        } else if (stmt->target->kind == ExprKind::kTuple) {
          for (const auto& el : stmt->target->elements) {
            if (el->kind == ExprKind::kName) out->insert(el->str_value);
          }
        }
        break;
      case StmtKind::kFor:
        out->insert(stmt->target->str_value);
        CollectAssigned(stmt->body, out);
        break;
      case StmtKind::kIf:
        CollectAssigned(stmt->body, out);
        CollectAssigned(stmt->else_body, out);
        break;
      case StmtKind::kWhile:
        CollectAssigned(stmt->body, out);
        break;
      default:
        break;
    }
  }
}

DType ArithResultDType(const std::string& op, DType a, DType b) {
  if (op == "Equal" || op == "NotEqual" || op == "Less" ||
      op == "LessEqual" || op == "Greater" || op == "GreaterEqual" ||
      op == "LogicalAnd" || op == "LogicalOr") {
    return DType::kBool;
  }
  if (op == "Div") return DType::kFloat32;
  if (a == DType::kFloat32 || b == DType::kFloat32) return DType::kFloat32;
  if (a == DType::kInt64 || b == DType::kInt64) return DType::kInt64;
  return a;
}

const char* BinOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "Add";
    case BinaryOp::kSub: return "Sub";
    case BinaryOp::kMul: return "Mul";
    case BinaryOp::kDiv: return "Div";
    case BinaryOp::kFloorDiv: return "FloorDiv";
    case BinaryOp::kMod: return "Mod";
    case BinaryOp::kPow: return "Pow";
  }
  return "?";
}

const char* CmpOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "Equal";
    case CompareOp::kNe: return "NotEqual";
    case CompareOp::kLt: return "Less";
    case CompareOp::kLe: return "LessEqual";
    case CompareOp::kGt: return "Greater";
    case CompareOp::kGe: return "GreaterEqual";
    case CompareOp::kIn: return "In";
  }
  return "?";
}

}  // namespace

// ---------------------------------------------------------------------------
// Generator implementation
// ---------------------------------------------------------------------------

struct GraphGenerator::Impl {
  minipy::Interpreter* interp;
  Profiler* prof;
  GeneratorOptions opt;
  GraphGenerator::CompileHints hints;  // per-compilation ladder hints

  CompiledGraph* out = nullptr;
  Frame* root = nullptr;
  std::span<const Value> root_args;
  std::int64_t budget = 0;
  int depth = 0;

  // Root-graph ReadVariable nodes, one per variable name.
  std::map<std::string, NodeOutput> variable_reads;
  // Generated GraphFunctions: signature -> name; plus in-progress set for
  // recursion detection and post-patching of self-recursive Invoke sites.
  std::map<std::string, std::string> fn_cache;
  std::set<std::string> fn_generating;
  // Self-recursive Invoke sites awaiting import-list completion, with the
  // dynamic-branch gates that were active where the site sits (appended
  // inputs must be gated identically or dead/live tokens mismatch).
  struct PendingSite {
    Node* site;
    Graph* graph;
    std::vector<Gate> gates;
  };
  std::map<std::string, std::vector<PendingSite>> pending_recursive_sites;
  // For completed functions: their import sources (root-graph values) and
  // result dtype.
  std::map<std::string, std::vector<NodeOutput>> fn_import_sources;
  std::map<std::string, DType> fn_result_dtype;
  std::set<std::string> entry_check_seen;
  // Functions currently being inlined (recursion through inlining is
  // rerouted to InvokeOp).
  std::vector<const void*> inline_stack;
  // Tracing semantics: trace-local attribute bindings. A traced write is
  // visible to later reads *within the trace* (as in TF defun, where the
  // Python assignment stores the symbolic tensor) but never propagates
  // across calls.
  std::map<std::pair<std::int64_t, std::string>, SymValue> trace_attrs;
  int fresh_counter = 0;
  // Qualified names of the imperative functions currently being converted,
  // innermost last. ExecStmt stamps each statement's SourceSiteScope with
  // the innermost name so nodes created for inlined callees attribute to
  // the callee's own source, not the call site.
  std::vector<std::string> fn_name_stack;

  // ---- small helpers ----

  const std::string& CurrentFunctionName() const {
    static const std::string kEmpty;
    return fn_name_stack.empty() ? kEmpty : fn_name_stack.back();
  }

  struct FnNameGuard {
    std::vector<std::string>* stack;
    ~FnNameGuard() { stack->pop_back(); }
  };

  void SpendBudget(std::int64_t amount = 1) {
    budget -= amount;
    if (budget < 0) Refuse("static expansion budget exceeded");
  }

  std::string Fresh(const std::string& base) {
    return base + "_" + std::to_string(fresh_counter++);
  }

  // Whether we may speculate on this assumption. Assertion emission is a
  // separate concern: with insert_assertions off (tracing baseline,
  // §6.3.1's overhead measurement) speculation proceeds unguarded.
  bool AssumptionUsable(const std::string& id) const {
    return !prof->HasFailed(id);
  }

  // Applies active dynamic-branch gates to a value consumed inside them.
  // Values created before the branch (id < watermark) need gating; so do
  // context sources materialised on demand *inside* the branch (import
  // Params, ReadVariable, Placeholders) — they are semantically
  // pre-existing, and ungated uses would leak ungated (dead) gradient
  // contributions out of the branch.
  NodeOutput ApplyGates(Frame& frame, NodeOutput v) {
    const std::string& producer_op = v.node->op();
    const bool always_gate = producer_op == "Param" ||
                             producer_op == "Placeholder" ||
                             producer_op == "ReadVariable";
    for (Gate& gate : frame.gates) {
      if (!always_gate && v.node->id() >= gate.watermark) continue;
      const auto key = std::make_tuple(v.node, v.index, gate.side);
      auto it = frame.gate_cache.find(key);
      if (it == frame.gate_cache.end()) {
        Node* sw = frame.graph->AddNode("Switch", {v, gate.cond}, {}, 2);
        it = frame.gate_cache
                 .emplace(key, NodeOutput{sw, gate.side ? 1 : 0})
                 .first;
      }
      v = it->second;
    }
    return v;
  }

  Node* AddOp(Frame& frame, const std::string& op,
              std::vector<NodeOutput> inputs, AttrMap attrs = {},
              int num_outputs = 1) {
    for (NodeOutput& input : inputs) input = ApplyGates(frame, input);
    return frame.graph->AddNode(op, std::move(inputs), std::move(attrs),
                                num_outputs);
  }

  // Brings a node value produced in an outer frame into `frame` (function
  // frames import via appended Params; see header design notes).
  NodeOutput ImportValue(Frame& frame, const SymValue& sym) {
    JANUS_EXPECTS(sym.IsNode());
    if (sym.owner == frame.graph) return sym.node;
    if (frame.parent == nullptr) {
      throw InternalError("value from unrelated graph reached root frame");
    }
    // Ensure the value is available in the parent frame first.
    SymValue parent_sym = sym;
    const NodeOutput in_parent = ImportValue(*frame.parent, sym);
    const auto key = std::make_pair(in_parent.node, in_parent.index);
    const auto it = frame.imports.find(key);
    if (it != frame.imports.end()) return it->second;
    JANUS_EXPECTS(frame.fn != nullptr);
    Node* param = frame.graph->AddNode(
        "Param", {},
        {{"index",
          static_cast<std::int64_t>(frame.fn->parameters.size())}});
    frame.fn->parameters.push_back(param);
    frame.import_sources.push_back(in_parent);
    frame.imports.emplace(key, NodeOutput{param, 0});
    return {param, 0};
  }

  // Materialises a symbolic value as a node in `frame`. `want` requests a
  // dtype for static numerics (alignment with a tensor operand).
  NodeOutput ToNode(Frame& frame, const SymValue& sym,
                    std::optional<DType> want = std::nullopt,
                    DType* out_dtype = nullptr, bool* out_pointer = nullptr) {
    const auto set_meta = [&](DType dt, bool ptr) {
      if (out_dtype != nullptr) *out_dtype = dt;
      if (out_pointer != nullptr) *out_pointer = ptr;
    };
    if (sym.IsNode()) {
      set_meta(sym.dtype, sym.is_pointer);
      return ApplyGates(frame, ImportValue(frame, sym));
    }
    if (sym.IsList()) Refuse("a list has no tensor representation here");
    const Value& v = sym.static_value;
    Tensor t;
    bool pointer = false;
    if (const auto* i = std::get_if<std::int64_t>(&v)) {
      t = (want == DType::kFloat32)
              ? Tensor::Scalar(static_cast<float>(*i))
              : Tensor::ScalarInt(*i);
    } else if (const auto* d = std::get_if<double>(&v)) {
      t = Tensor::Scalar(static_cast<float>(*d));
    } else if (const auto* b = std::get_if<bool>(&v)) {
      t = (want == DType::kFloat32)
              ? Tensor::Scalar(*b ? 1.0f : 0.0f)
              : Tensor::ScalarBool(*b);
    } else if (std::holds_alternative<minipy::NoneType>(v)) {
      t = Tensor::ScalarInt(0);  // null pointer
      pointer = true;
    } else if (const auto* var = std::get_if<minipy::VariableRef>(&v)) {
      const NodeOutput read = VariableRead(var->name);
      SymValue root_sym = SymValue::OfNode(read, root->graph,
                                           DType::kFloat32);
      set_meta(DType::kFloat32, false);
      return ApplyGates(frame, ImportValue(frame, root_sym));
    } else if (const auto* obj =
                   std::get_if<std::shared_ptr<minipy::ObjectValue>>(&v)) {
      t = Tensor::ScalarInt((*obj)->heap_id());
      pointer = true;
    } else if (const auto* list =
                   std::get_if<std::shared_ptr<minipy::ListValue>>(&v)) {
      t = Tensor::ScalarInt((*list)->heap_id());
      pointer = true;
    } else if (const auto* dict =
                   std::get_if<std::shared_ptr<minipy::DictValue>>(&v)) {
      t = Tensor::ScalarInt((*dict)->heap_id());
      pointer = true;
    } else {
      Refuse(std::string("cannot embed a ") + minipy::ValueTypeName(v) +
             " value in the graph");
    }
    set_meta(t.dtype(), pointer);
    return {frame.graph->AddNode("Const", {}, {{"value", std::move(t)}}), 0};
  }

  // Reads a model parameter: one ReadVariable node per name, in the root
  // graph, so gradients can target it.
  NodeOutput VariableRead(const std::string& name) {
    const auto it = variable_reads.find(name);
    if (it != variable_reads.end()) return it->second;
    Node* read = root->graph->AddNode("ReadVariable", {}, {{"var", name}});
    const NodeOutput out_v{read, 0};
    variable_reads.emplace(name, out_v);
    return out_v;
  }

  // ---- context capture ----

  // Converts a live context value into a symbolic value, recording capture
  // specs / entry checks (§4.2.2 specialisation decisions).
  SymValue Capture(const ContextRef& ref, const Value& current,
                   const ValueProfile* profile) {
    // Fold this observation into the context profile and prefer it when no
    // site-specific (argument) profile was supplied.
    prof->ObserveContext(ref.ToString(), current);
    if (profile == nullptr) profile = prof->context(ref.ToString());
    if (const auto* t = std::get_if<Tensor>(&current)) {
      // Tensors are placeholders fed on every run.
      CaptureSpec spec;
      spec.ref = ref;
      spec.placeholder_name = Fresh("cap_" + SanitizeName(ref.ToString()));
      spec.kind = ObservedKind::kTensor;
      spec.dtype = t->dtype();
      const std::string id = "shape:" + ref.ToString();
      if (opt.specialize && !hints.DropShapes() && profile != nullptr &&
          profile->kind == ObservedKind::kTensor && AssumptionUsable(id)) {
        spec.shape = hints.RelaxShapesToRank()
                         ? profile->shape.RelaxedToRank()
                         : profile->shape;
      } else {
        spec.shape = ShapeAssumption::Unknown();
      }
      spec.assumption_id = id;
      const NodeOutput ph =
          out->graph.Placeholder(spec.placeholder_name, spec.dtype);
      out->captures.push_back(spec);
      return SymValue::OfNode(ph, &out->graph, spec.dtype, false, spec.shape);
    }
    if (const auto* i = std::get_if<std::int64_t>(&current)) {
      return CaptureScalar(ref, current, profile, DType::kInt64,
                           static_cast<double>(*i));
    }
    if (const auto* d = std::get_if<double>(&current)) {
      return CaptureScalar(ref, current, profile, DType::kFloat32, *d);
    }
    if (const auto* b = std::get_if<bool>(&current)) {
      return CaptureScalar(ref, current, profile, DType::kBool,
                           *b ? 1.0 : 0.0);
    }
    // Heap values whose identity changes call-to-call (e.g. per-sample tree
    // roots) become dynamic pointer placeholders; the graph dereferences
    // them through PyGetAttr/PyGetSubscr (§4.2.2's pointer encoding).
    const bool is_heap =
        std::holds_alternative<std::shared_ptr<minipy::ObjectValue>>(
            current) ||
        std::holds_alternative<std::shared_ptr<minipy::ListValue>>(current) ||
        std::holds_alternative<std::shared_ptr<minipy::DictValue>>(current);
    if (is_heap && profile != nullptr &&
        (profile->kind == ObservedKind::kObject ||
         profile->kind == ObservedKind::kList ||
         profile->kind == ObservedKind::kDict) &&
        !profile->heap_stable) {
      CaptureSpec spec;
      spec.ref = ref;
      spec.placeholder_name = Fresh("cap_" + SanitizeName(ref.ToString()));
      spec.kind = profile->kind;
      spec.dtype = DType::kInt64;
      spec.assumption_id = "type:" + ref.ToString();
      const NodeOutput ph =
          out->graph.Placeholder(spec.placeholder_name, DType::kInt64);
      out->captures.push_back(spec);
      return SymValue::OfNode(ph, &out->graph, DType::kInt64, true,
                              ShapeAssumption::Exact(Shape{}));
    }
    // Everything else is captured statically with an identity/equality
    // entry check: objects, lists, dicts, functions, classes, builtins,
    // strings, variables, None.
    AddEntryCheck(ref, current);
    return SymValue::Static(current, ref);
  }

  SymValue CaptureScalar(const ContextRef& ref, const Value& current,
                         const ValueProfile* profile, DType dtype,
                         double /*numeric*/) {
    const std::string id = "const:" + ref.ToString();
    if (opt.specialize && !hints.NoConstantBaking() && profile != nullptr &&
        profile->value_stable && AssumptionUsable(id)) {
      // Profiled-constant scalar: bake as Const, checked at entry (§4.2.2).
      AddEntryCheck(ref, current);
      return SymValue::Static(current, ref);
    }
    // Dynamic scalar: placeholder.
    CaptureSpec spec;
    spec.ref = ref;
    spec.placeholder_name = Fresh("cap_" + SanitizeName(ref.ToString()));
    spec.kind = dtype == DType::kInt64
                    ? ObservedKind::kInt
                    : (dtype == DType::kBool ? ObservedKind::kBool
                                             : ObservedKind::kFloat);
    spec.dtype = dtype;
    spec.assumption_id = id;
    const NodeOutput ph =
        out->graph.Placeholder(spec.placeholder_name, dtype);
    out->captures.push_back(spec);
    return SymValue::OfNode(ph, &out->graph, dtype, false,
                            ShapeAssumption::Exact(Shape{}));
  }

  void AddEntryCheck(const ContextRef& ref, const Value& expected) {
    const std::string key = ref.ToString();
    if (!entry_check_seen.insert(key).second) return;
    if (std::holds_alternative<Tensor>(expected)) return;
    out->entry_checks.push_back(EntryCheck{ref, expected, "entry:" + key});
  }

  static std::string SanitizeName(std::string s) {
    for (char& c : s) {
      if ((std::isalnum(static_cast<unsigned char>(c)) == 0) && c != '_') {
        c = '_';
      }
    }
    return s;
  }

  // Resolves a name that is not a symbolic local: looks through the live
  // closure environments and captures the value.
  SymValue ResolveClosure(Scope& scope, const std::string& name, int line) {
    auto env = scope.ClosureEnv();
    while (env != nullptr && !env->Has(name)) env = env->parent_ptr();
    if (env == nullptr) {
      Refuse("line " + std::to_string(line) + ": name '" + name +
             "' is not defined during graph generation");
    }
    ContextRef ref;
    ref.env = env;
    ref.name = name;
    const Value current = *env->Find(name);
    return Capture(ref, current, nullptr);
  }

  // ---- state-op ordering (read/write hazards, Fig. 5) ----

  std::string StateKeyName(const std::string& attr) { return attr; }

  void OrderStateRead(Frame& frame, std::int64_t heap_id,
                      const std::string& key, Node* read) {
    const auto map_key = std::make_pair(heap_id, key);
    const auto it = frame.last_state_write.find(map_key);
    if (it != frame.last_state_write.end()) read->AddControlInput(it->second);
    frame.readers_since_write[map_key].push_back(read);
  }

  void OrderStateWrite(Frame& frame, std::int64_t heap_id,
                       const std::string& key, Node* write) {
    const auto map_key = std::make_pair(heap_id, key);
    const auto it = frame.last_state_write.find(map_key);
    if (it != frame.last_state_write.end()) write->AddControlInput(it->second);
    for (Node* reader : frame.readers_since_write[map_key]) {
      write->AddControlInput(reader);
    }
    frame.readers_since_write[map_key].clear();
    frame.last_state_write[map_key] = write;
    frame.side_nodes.push_back(write);
  }

  void RefuseSideEffectInDynamicBranch(const Frame& frame,
                                       const char* what) {
    if (!frame.gates.empty()) {
      Refuse(std::string(what) +
             " inside a data-dependent branch cannot be converted");
    }
  }

  // =========================================================================
  // Statements
  // =========================================================================

  void ExecBlock(const std::vector<minipy::StmtPtr>& body, Frame& frame,
                 Scope& scope) {
    ExecStmts(body, 0, frame, scope);
  }

  // Executes body[start..]; `if` statements get the remaining statements as
  // their continuation so early-return patterns (`if c: return a` followed
  // by more code) can lower to a Merge of both return values.
  void ExecStmts(const std::vector<minipy::StmtPtr>& body, std::size_t start,
                 Frame& frame, Scope& scope) {
    for (std::size_t i = start; i < body.size(); ++i) {
      const Stmt* stmt = body[i].get();
      if (stmt->kind == StmtKind::kIf) {
        SpendBudget();
        // kIf at block level bypasses ExecStmt (it may consume the block's
        // continuation), so establish its provenance scope here.
        SourceSiteScope site_scope(CurrentFunctionName(), stmt->line,
                                   stmt->id);
        if (ExecIf(stmt, frame, scope, body, i + 1)) return;
        continue;
      }
      ExecStmt(stmt, frame, scope);
    }
  }

  void ExecStmt(const Stmt* stmt, Frame& frame, Scope& scope) {
    SpendBudget();
    // Every node materialised while converting this statement is stamped
    // with {function, line, stmt} via the ambient site (Graph::AddNode).
    SourceSiteScope site_scope(CurrentFunctionName(), stmt->line, stmt->id);
    switch (stmt->kind) {
      case StmtKind::kExpr:
        Eval(stmt->value.get(), frame, scope);
        return;
      case StmtKind::kAssign:
        AssignTo(stmt->target.get(), Eval(stmt->value.get(), frame, scope),
                 frame, scope);
        return;
      case StmtKind::kAugAssign: {
        const SymValue current = Eval(stmt->target.get(), frame, scope);
        SymValue updated =
            Binary(stmt->aug_op, current,
                   Eval(stmt->value.get(), frame, scope), frame, stmt->line);
        AssignTo(stmt->target.get(), std::move(updated), frame, scope);
        return;
      }
      case StmtKind::kIf: {
        static const std::vector<minipy::StmtPtr> kNoContinuation;
        ExecIf(stmt, frame, scope, kNoContinuation, 0);
        return;
      }
      case StmtKind::kWhile:
        ExecWhile(stmt, frame, scope);
        return;
      case StmtKind::kFor:
        ExecFor(stmt, frame, scope);
        return;
      case StmtKind::kReturn:
        throw GenReturn{stmt->value != nullptr
                            ? Eval(stmt->value.get(), frame, scope)
                            : SymValue::Static(minipy::NoneType{})};
      case StmtKind::kPass:
        return;
      case StmtKind::kBreak:
        throw GenBreak{};
      case StmtKind::kContinue:
        throw GenContinue{};
      case StmtKind::kGlobal:
        for (const std::string& name : stmt->globals) {
          scope.global_names.insert(name);
        }
        return;
      case StmtKind::kRaise:
        Refuse("line " + std::to_string(stmt->line) +
               ": 'raise' on a converted path (exceptions are "
               "imperative-only, §4.3 / Appendix A)");
      case StmtKind::kTry:
        Refuse("line " + std::to_string(stmt->line) +
               ": try/except is imperative-only (§4.3)");
      case StmtKind::kDef:
      case StmtKind::kClass:
        Refuse("line " + std::to_string(stmt->line) +
               ": nested def/class definitions are imperative-only");
    }
  }

  void AssignTo(const Expr* target, SymValue value, Frame& frame,
                Scope& scope) {
    switch (target->kind) {
      case ExprKind::kName: {
        const std::string& name = target->str_value;
        if (scope.global_names.count(name) != 0u) {
          Refuse("assignment to global '" + name +
                 "' is imperative-only (global heap mutation)");
        }
        // Assign to the scope that owns the name (loop bodies share the
        // enclosing function scope), else define locally.
        Scope* s = &scope;
        while (s != nullptr && s->vars.find(name) == s->vars.end()) {
          s = s->parent;
        }
        (s != nullptr ? s : &scope)->vars[name] = std::move(value);
        return;
      }
      case ExprKind::kAttribute: {
        const SymValue base = Eval(target->left.get(), frame, scope);
        StoreAttr(base, target->str_value, std::move(value), frame,
                  target->line);
        return;
      }
      case ExprKind::kSubscript: {
        const SymValue base = Eval(target->left.get(), frame, scope);
        const SymValue index = Eval(target->right.get(), frame, scope);
        StoreSubscript(base, index, std::move(value), frame, target->line);
        return;
      }
      case ExprKind::kTuple: {
        if (!value.IsList() ||
            value.elements->size() != target->elements.size()) {
          Refuse("cannot unpack value into tuple target");
        }
        for (std::size_t i = 0; i < target->elements.size(); ++i) {
          AssignTo(target->elements[i].get(), (*value.elements)[i], frame,
                   scope);
        }
        return;
      }
      default:
        Refuse("unsupported assignment target");
    }
  }

  void StoreAttr(const SymValue& base, const std::string& name,
                 SymValue value, Frame& frame, int line) {
    if (opt.tracing_semantics) {
      // Tracing baseline: the write only binds trace-locally; it never
      // reaches the Python heap (defun's impure-function failure mode).
      if (base.IsStatic()) {
        if (const auto* obj =
                std::get_if<std::shared_ptr<minipy::ObjectValue>>(
                    &base.static_value)) {
          trace_attrs[{(*obj)->heap_id(), name}] = std::move(value);
        }
      }
      return;
    }
    RefuseSideEffectInDynamicBranch(frame, "attribute write");
    // Target object: static heap object or dynamic pointer.
    std::int64_t static_id = -1;
    NodeOutput ptr;
    if (base.IsStatic()) {
      const auto* obj = std::get_if<std::shared_ptr<minipy::ObjectValue>>(
          &base.static_value);
      if (obj == nullptr) {
        Refuse("line " + std::to_string(line) +
               ": attribute write on non-object");
      }
      static_id = (*obj)->heap_id();
      ptr = ToNode(frame, base);
    } else if (base.IsNode() && base.is_pointer) {
      ptr = ToNode(frame, base);
    } else {
      Refuse("attribute write on non-object value");
    }
    const NodeOutput v = ToNode(frame, value);
    Node* set = AddOp(frame, "PySetAttr", {ptr, v}, {{"attr", name}});
    OrderStateWrite(frame, static_id, StateKeyName(name), set);
  }

  void StoreSubscript(const SymValue& base, const SymValue& index,
                      SymValue value, Frame& frame, int line) {
    // Local symbolic list with static index: pure data-structure update.
    if (base.IsList() && index.IsStatic()) {
      const auto* i = std::get_if<std::int64_t>(&index.static_value);
      if (i == nullptr) Refuse("list index must be an int");
      std::int64_t idx = *i;
      const auto n = static_cast<std::int64_t>(base.elements->size());
      if (idx < 0) idx += n;
      if (idx < 0 || idx >= n) Refuse("static list index out of range");
      (*base.elements)[static_cast<std::size_t>(idx)] = std::move(value);
      return;
    }
    RefuseSideEffectInDynamicBranch(frame, "subscript write");
    // Heap list/dict: deferred PySetSubscr.
    std::int64_t static_id = -1;
    if (base.IsStatic()) {
      if (const auto* l = std::get_if<std::shared_ptr<minipy::ListValue>>(
              &base.static_value)) {
        static_id = (*l)->heap_id();
      } else if (const auto* d =
                     std::get_if<std::shared_ptr<minipy::DictValue>>(
                         &base.static_value)) {
        static_id = (*d)->heap_id();
      } else {
        Refuse("line " + std::to_string(line) +
               ": subscript write on unsupported value");
      }
    } else if (!(base.IsNode() && base.is_pointer)) {
      Refuse("subscript write on unsupported value");
    }
    const NodeOutput ptr = ToNode(frame, base);
    const NodeOutput idx = ToNode(frame, index, DType::kInt64);
    const NodeOutput v = ToNode(frame, value);
    Node* set = AddOp(frame, "PySetSubscr", {ptr, idx, v});
    OrderStateWrite(frame, static_id, "[]", set);
  }

  // ---- conditionals ----

  // Returns true when the continuation (block[cont_start..]) was consumed
  // inside a data-dependent branch join.
  bool ExecIf(const Stmt* stmt, Frame& frame, Scope& scope,
              const std::vector<minipy::StmtPtr>& block,
              std::size_t cont_start) {
    const SymValue cond = Eval(stmt->value.get(), frame, scope);
    if (cond.IsStatic() || cond.IsList()) {
      const bool static_tensorish =
          cond.IsStatic() &&
          (std::holds_alternative<minipy::VariableRef>(cond.static_value) ||
           std::holds_alternative<Tensor>(cond.static_value));
      if (!static_tensorish) {
        const bool taken = cond.IsList()
                               ? !cond.elements->empty()
                               : minipy::Truthy(cond.static_value);
        ExecBlock(taken ? stmt->body : stmt->else_body, frame, scope);
        return false;
      }
    }
    // Dynamic predicate. Speculate if profiled stable (§4.2.1).
    const std::string id = "branch:stmt" + std::to_string(stmt->id);
    const BranchProfile* profile = prof->branch(stmt);
    if (opt.speculative_unroll && profile != nullptr && profile->Stable() &&
        AssumptionUsable(id)) {
      const bool taken = profile->Direction();
      if (opt.insert_assertions) {
        const NodeOutput raw_pred = ToBool(frame, cond);
        NodeOutput pred = raw_pred;
        if (!taken) {
          pred = {AddOp(frame, "LogicalNot", {pred}), 0};
        }
        // Input 1 carries the raw predicate so a failure can report the
        // observed truth value alongside the speculated direction.
        Node* check = AddOp(frame, "Assert", {pred, raw_pred},
                            {{"assumption", id},
                             {"assumed", std::string(taken
                                                         ? "branch taken"
                                                         : "branch not taken")}});
        frame.side_nodes.push_back(check);
        out->runtime_assumptions.push_back(id);
        ++out->num_assert_ops;
      }
      ExecBlock(taken ? stmt->body : stmt->else_body, frame, scope);
      return false;
    }
    return ExecDynamicIf(stmt, cond, frame, scope, block, cont_start);
  }

  bool ExecDynamicIf(const Stmt* stmt, const SymValue& cond, Frame& frame,
                     Scope& scope,
                     const std::vector<minipy::StmtPtr>& block,
                     std::size_t cont_start) {
    const NodeOutput pred = ToBool(frame, cond);

    struct BranchOutcome {
      std::map<std::string, SymValue> vars;
      std::optional<SymValue> returned;
    };
    const auto run_branch = [&](const std::vector<minipy::StmtPtr>& body,
                                bool side) {
      BranchOutcome outcome;
      const auto saved = scope.vars;
      frame.gates.push_back(Gate{
          pred, side, static_cast<int>(frame.graph->num_nodes()) + 1});
      try {
        ExecBlock(body, frame, scope);
      } catch (GenReturn& ret) {
        outcome.returned = std::move(ret.value);
      }
      frame.gates.pop_back();
      outcome.vars = std::move(scope.vars);
      scope.vars = saved;
      return outcome;
    };

    const auto saved = scope.vars;
    BranchOutcome then_out = run_branch(stmt->body, true);
    BranchOutcome else_out = run_branch(stmt->else_body, false);

    if (then_out.returned.has_value() && else_out.returned.has_value()) {
      const NodeOutput tv =
          GateSide(frame, pred, true, ToNode(frame, *then_out.returned));
      DType dt = DType::kFloat32;
      bool ptr = false;
      NodeOutput ev = ToNode(frame, *else_out.returned, std::nullopt, &dt,
                             &ptr);
      ev = GateSide(frame, pred, false, ev);
      Node* merge = frame.graph->AddNode("Merge", {tv, ev}, {}, 2);
      throw GenReturn{
          SymValue::OfNode({merge, 0}, frame.graph, dt, ptr)};
    }
    if (then_out.returned.has_value() || else_out.returned.has_value()) {
      // Early-return pattern: the non-returning side continues with the
      // rest of the enclosing block under its gate, and must itself return
      // so both paths join in a Merge.
      const bool then_returned = then_out.returned.has_value();
      const BranchOutcome& live =
          then_returned ? else_out : then_out;
      const SymValue ret_value =
          then_returned ? *then_out.returned : *else_out.returned;
      scope.vars = live.vars;
      frame.gates.push_back(Gate{
          pred, !then_returned,
          static_cast<int>(frame.graph->num_nodes()) + 1});
      std::optional<SymValue> cont_return;
      try {
        ExecStmts(block, cont_start, frame, scope);
      } catch (GenReturn& ret) {
        cont_return = std::move(ret.value);
      } catch (const GenBreak&) {
        Refuse("'break' across a data-dependent branch join");
      } catch (const GenContinue&) {
        Refuse("'continue' across a data-dependent branch join");
      }
      frame.gates.pop_back();
      if (!cont_return.has_value()) {
        Refuse("all paths after a data-dependent early return must return");
      }
      const NodeOutput rv = GateSide(frame, pred, then_returned,
                                     ToNode(frame, ret_value));
      DType dt = DType::kFloat32;
      bool ptr = false;
      NodeOutput cv = ToNode(frame, *cont_return, std::nullopt, &dt, &ptr);
      cv = GateSide(frame, pred, !then_returned, cv);
      Node* merge = then_returned
                        ? frame.graph->AddNode("Merge", {rv, cv}, {}, 2)
                        : frame.graph->AddNode("Merge", {cv, rv}, {}, 2);
      throw GenReturn{SymValue::OfNode({merge, 0}, frame.graph, dt, ptr)};
    }

    // Merge variables whose binding changed in either branch.
    std::set<std::string> changed;
    const auto collect = [&](const BranchOutcome& outcome) {
      for (const auto& [name, sym] : outcome.vars) {
        const auto it = saved.find(name);
        if (it == saved.end() || !it->second.SameAs(sym)) {
          changed.insert(name);
        }
      }
    };
    collect(then_out);
    collect(else_out);

    for (const std::string& name : changed) {
      const auto pick = [&](const BranchOutcome& outcome)
          -> const SymValue* {
        const auto it = outcome.vars.find(name);
        if (it != outcome.vars.end()) return &it->second;
        const auto saved_it = saved.find(name);
        return saved_it != saved.end() ? &saved_it->second : nullptr;
      };
      const SymValue* tv = pick(then_out);
      const SymValue* ev = pick(else_out);
      if (tv == nullptr || ev == nullptr) {
        Refuse("variable '" + name +
               "' is defined on only one side of a data-dependent branch");
      }
      DType dt_t = DType::kFloat32;
      bool ptr_t = false;
      NodeOutput tn = ToNode(frame, *tv, std::nullopt, &dt_t, &ptr_t);
      tn = GateSide(frame, pred, true, tn);
      NodeOutput en = ToNode(frame, *ev, dt_t);
      en = GateSide(frame, pred, false, en);
      Node* merge = frame.graph->AddNode("Merge", {tn, en}, {}, 2);
      scope.vars[name] =
          SymValue::OfNode({merge, 0}, frame.graph, dt_t, ptr_t);
    }
    return false;
  }

  NodeOutput GateSide(Frame& frame, NodeOutput pred, bool side,
                      NodeOutput v) {
    // Values produced *inside* the branch are already gated transitively;
    // only pre-existing values need an explicit Switch. We can't cheaply
    // know, so gate unconditionally through the cache (double-gating a
    // branch-produced value is harmless: its tokens are dead exactly when
    // the branch is untaken, and a Switch on it stays consistent).
    Node* sw = frame.graph->AddNode("Switch", {v, pred}, {}, 2);
    return {sw, side ? 1 : 0};
  }

  // ---- loops ----

  void ExecStaticLoopBody(const Stmt* stmt, Frame& frame, Scope& scope,
                          bool* broke) {
    try {
      ExecBlock(stmt->body, frame, scope);
    } catch (const GenContinue&) {
    } catch (const GenBreak&) {
      *broke = true;
    }
  }

  void ExecWhile(const Stmt* stmt, Frame& frame, Scope& scope) {
    // Try fully-static evaluation first (condition statically decidable).
    {
      const SymValue cond = Eval(stmt->value.get(), frame, scope);
      if (cond.IsStatic() || cond.IsList()) {
        bool broke = false;
        SymValue c = cond;
        while (!broke) {
          const bool truthy = c.IsList() ? !c.elements->empty()
                                         : minipy::Truthy(c.static_value);
          if (!truthy) break;
          SpendBudget();
          ExecStaticLoopBody(stmt, frame, scope, &broke);
          c = Eval(stmt->value.get(), frame, scope);
          if (!c.IsStatic() && !c.IsList()) {
            Refuse("while condition turned dynamic mid-loop");
          }
        }
        return;
      }
    }
    const std::string id = "loop:stmt" + std::to_string(stmt->id);
    const LoopProfile* profile = prof->loop(stmt);
    if (opt.speculative_unroll && profile != nullptr && profile->stable &&
        AssumptionUsable(id)) {
      // Speculative unroll: assert the condition before each iteration and
      // its negation after the last (§4.2.1).
      out->runtime_assumptions.push_back(id);
      for (std::int64_t k = 0; k < profile->trip_count; ++k) {
        SpendBudget();
        if (opt.insert_assertions) {
          const NodeOutput pred =
              ToBool(frame, Eval(stmt->value.get(), frame, scope));
          Node* check =
              AddOp(frame, "Assert", {pred},
                    {{"assumption", id},
                     {"assumed", std::to_string(profile->trip_count) +
                                     " iterations (condition true before "
                                     "iteration " +
                                     std::to_string(k) + ")"}});
          frame.side_nodes.push_back(check);
          ++out->num_assert_ops;
        }
        bool broke = false;
        ExecStaticLoopBody(stmt, frame, scope, &broke);
        if (broke) Refuse("'break' in a speculatively unrolled while loop");
      }
      if (opt.insert_assertions) {
        const NodeOutput pred =
            ToBool(frame, Eval(stmt->value.get(), frame, scope));
        Node* done =
            AddOp(frame, "Assert",
                  {{AddOp(frame, "LogicalNot", {pred}), 0}, pred},
                  {{"assumption", id},
                   {"assumed", std::to_string(profile->trip_count) +
                                   " iterations (condition false after the "
                                   "last)"}});
        frame.side_nodes.push_back(done);
        ++out->num_assert_ops;
      }
      return;
    }
    EmitFunctionalLoop(stmt, frame, scope, /*for_range=*/false, {});
  }

  void ExecFor(const Stmt* stmt, Frame& frame, Scope& scope) {
    const std::string& var = stmt->target->str_value;
    // `for i in range(...)` gets dedicated handling so dynamic bounds work.
    const Expr* iter = stmt->value.get();
    if (iter->kind == ExprKind::kCall &&
        iter->left->kind == ExprKind::kName &&
        iter->left->str_value == "range" &&
        LooksLikeBuiltin(iter->left.get(), scope, "range")) {
      std::vector<SymValue> bounds;
      for (const auto& arg : iter->elements) {
        bounds.push_back(Eval(arg.get(), frame, scope));
      }
      ExecForRange(stmt, var, bounds, frame, scope);
      return;
    }
    const SymValue iterable = Eval(iter, frame, scope);
    if (iterable.IsList()) {
      // Data-structure iteration: statically expanded in all modes.
      const std::vector<SymValue> snapshot = *iterable.elements;
      bool broke = false;
      for (const SymValue& item : snapshot) {
        if (broke) break;
        SpendBudget();
        scope.vars[var] = item;
        ExecStaticLoopBody(stmt, frame, scope, &broke);
      }
      return;
    }
    if (iterable.IsStatic()) {
      if (const auto* list = std::get_if<std::shared_ptr<minipy::ListValue>>(
              &iterable.static_value)) {
        // Captured heap list: expand over its (entry-checked) length; each
        // element resolves through the capture machinery so tensors become
        // per-element placeholders.
        const auto n = static_cast<std::int64_t>((*list)->items.size());
        if (!iterable.origin.has_value()) {
          Refuse("cannot iterate a heap list of unknown provenance");
        }
        bool broke = false;
        for (std::int64_t i = 0; i < n && !broke; ++i) {
          SpendBudget();
          ContextRef ref = *iterable.origin;
          ref.steps.push_back(ContextRef::Step{false, "", i});
          scope.vars[var] =
              Capture(ref, (*list)->items[static_cast<std::size_t>(i)],
                      nullptr);
          ExecStaticLoopBody(stmt, frame, scope, &broke);
        }
        return;
      }
      Refuse("cannot iterate a " +
             std::string(minipy::ValueTypeName(iterable.static_value)) +
             " symbolically");
    }
    // Tensor iteration along axis 0: requires a pinned leading dimension.
    if (iterable.IsNode() && !iterable.is_pointer) {
      if (iterable.shape.is_unknown() || iterable.shape.dims().empty() ||
          !iterable.shape.dims()[0].has_value()) {
        Refuse("iterating a tensor with unknown leading dimension");
      }
      const std::int64_t n = *iterable.shape.dims()[0];
      bool broke = false;
      for (std::int64_t i = 0; i < n && !broke; ++i) {
        SpendBudget();
        scope.vars[var] = TensorIndexStatic(frame, iterable, i);
        ExecStaticLoopBody(stmt, frame, scope, &broke);
      }
      return;
    }
    Refuse("unsupported for-loop iterable");
  }

  void ExecForRange(const Stmt* stmt, const std::string& var,
                    const std::vector<SymValue>& bounds, Frame& frame,
                    Scope& scope) {
    SymValue lo = SymValue::Static(std::int64_t{0});
    SymValue hi;
    SymValue step = SymValue::Static(std::int64_t{1});
    if (bounds.size() == 1) {
      hi = bounds[0];
    } else if (bounds.size() >= 2) {
      lo = bounds[0];
      hi = bounds[1];
      if (bounds.size() == 3) step = bounds[2];
    } else {
      Refuse("range() needs 1-3 arguments");
    }
    const auto static_int = [](const SymValue& s) -> std::optional<std::int64_t> {
      if (!s.IsStatic()) return std::nullopt;
      if (const auto* i = std::get_if<std::int64_t>(&s.static_value)) {
        return *i;
      }
      return std::nullopt;
    };
    const auto lo_i = static_int(lo);
    const auto hi_i = static_int(hi);
    const auto step_i = static_int(step);
    if (!step_i.has_value()) Refuse("range() step must be static");

    if (lo_i.has_value() && hi_i.has_value()) {
      // Fully static bounds: plain expansion (program structure, not a
      // speculative assumption).
      bool broke = false;
      if (*step_i == 0) Refuse("range() step must not be zero");
      for (std::int64_t i = *lo_i;
           (*step_i > 0 ? i < *hi_i : i > *hi_i) && !broke; i += *step_i) {
        SpendBudget();
        scope.vars[var] = SymValue::Static(i);
        ExecStaticLoopBody(stmt, frame, scope, &broke);
      }
      return;
    }
    // Dynamic bound: speculative unroll with a trip-count assertion, or a
    // functional While loop.
    const std::string id = "loop:stmt" + std::to_string(stmt->id);
    const LoopProfile* profile = prof->loop(stmt);
    if (opt.speculative_unroll && profile != nullptr && profile->stable &&
        AssumptionUsable(id) && lo_i.has_value() && *step_i == 1) {
      const std::int64_t trips = profile->trip_count;
      if (opt.insert_assertions) {
        const NodeOutput bound = ToNode(frame, hi, DType::kInt64);
        const NodeOutput expected = ToNode(
            frame, SymValue::Static(*lo_i + trips), DType::kInt64);
        Node* eq = AddOp(frame, "Equal", {bound, expected});
        // Input 1 is the live range bound, so a trip-count mismatch reports
        // assumed "range(lo, lo+trips)" against the observed bound value.
        Node* check =
            AddOp(frame, "Assert", {{eq, 0}, bound},
                  {{"assumption", id},
                   {"assumed", "range bound " +
                                   std::to_string(*lo_i + trips) + " (" +
                                   std::to_string(trips) + " iterations)"}});
        frame.side_nodes.push_back(check);
        out->runtime_assumptions.push_back(id);
        ++out->num_assert_ops;
      }
      bool broke = false;
      for (std::int64_t k = 0; k < trips && !broke; ++k) {
        SpendBudget();
        scope.vars[var] = SymValue::Static(*lo_i + k);
        ExecStaticLoopBody(stmt, frame, scope, &broke);
      }
      if (broke) Refuse("'break' in a speculatively unrolled for loop");
      return;
    }
    EmitFunctionalLoop(stmt, frame, scope, /*for_range=*/true,
                       {lo, hi, step});
  }

  // Lowers a loop with a data-dependent bound into a functional While op
  // (the conservative BASE path; gradient support via WhileGrad).
  void EmitFunctionalLoop(const Stmt* stmt, Frame& frame, Scope& scope,
                          bool for_range, std::vector<SymValue> range_bounds);

  SymValue TensorIndexStatic(Frame& frame, const SymValue& tensor,
                             std::int64_t i) {
    // tensor[i] with static i: Slice + Reshape. Requires pinned shape.
    if (tensor.shape.is_unknown()) {
      Refuse("static tensor indexing requires a pinned shape");
    }
    const auto& dims = tensor.shape.dims();
    std::vector<std::int64_t> begin(dims.size(), 0);
    begin[0] = i;
    std::vector<std::int64_t> size;
    std::vector<std::int64_t> out_dims;
    for (std::size_t d = 0; d < dims.size(); ++d) {
      if (!dims[d].has_value()) {
        Refuse("static tensor indexing requires fully pinned dimensions");
      }
      size.push_back(d == 0 ? 1 : *dims[d]);
      if (d > 0) out_dims.push_back(*dims[d]);
    }
    const NodeOutput src = ToNode(frame, tensor);
    Node* slice = AddOp(frame, "Slice", {src},
                        {{"begin", begin}, {"size", size}});
    Node* reshape = AddOp(frame, "Reshape", {{slice, 0}},
                          {{"shape", out_dims}});
    SymValue result = SymValue::OfNode({reshape, 0}, frame.graph,
                                       tensor.dtype, false,
                                       ShapeAssumption::Exact(Shape(out_dims)));
    return result;
  }

  // =========================================================================
  // Expressions
  // =========================================================================

  SymValue Eval(const Expr* expr, Frame& frame, Scope& scope) {
    SpendBudget();
    switch (expr->kind) {
      case ExprKind::kIntLit:
        return SymValue::Static(expr->int_value);
      case ExprKind::kFloatLit:
        return SymValue::Static(expr->float_value);
      case ExprKind::kStringLit:
        return SymValue::Static(expr->str_value);
      case ExprKind::kBoolLit:
        return SymValue::Static(expr->bool_value);
      case ExprKind::kNoneLit:
        return SymValue::Static(minipy::NoneType{});
      case ExprKind::kName: {
        SymValue* local = scope.Find(expr->str_value);
        if (local != nullptr) return *local;
        return ResolveClosure(scope, expr->str_value, expr->line);
      }
      case ExprKind::kUnary: {
        SymValue operand = Eval(expr->left.get(), frame, scope);
        if (expr->unary_op == UnaryOp::kNot) {
          if (operand.IsStatic()) {
            return SymValue::Static(!minipy::Truthy(operand.static_value));
          }
          const NodeOutput b = ToBool(frame, operand);
          return SymValue::OfNode({AddOp(frame, "LogicalNot", {b}), 0},
                                  frame.graph, DType::kBool);
        }
        if (operand.IsStatic()) {
          if (const auto* i =
                  std::get_if<std::int64_t>(&operand.static_value)) {
            return SymValue::Static(-*i);
          }
          if (const auto* d = std::get_if<double>(&operand.static_value)) {
            return SymValue::Static(-*d);
          }
        }
        DType dt = DType::kFloat32;
        const NodeOutput v = ToNode(frame, operand, std::nullopt, &dt);
        return SymValue::OfNode({AddOp(frame, "Neg", {v}), 0}, frame.graph,
                                dt, false, operand.shape);
      }
      case ExprKind::kBinary:
        return Binary(expr->binary_op, Eval(expr->left.get(), frame, scope),
                      Eval(expr->right.get(), frame, scope), frame,
                      expr->line);
      case ExprKind::kCompare:
        return Compare(expr->compare_op,
                       Eval(expr->left.get(), frame, scope),
                       Eval(expr->right.get(), frame, scope), frame,
                       expr->line);
      case ExprKind::kBoolOp: {
        SymValue left = Eval(expr->left.get(), frame, scope);
        if (left.IsStatic()) {
          const bool truthy = minipy::Truthy(left.static_value);
          if (expr->bool_op == BoolOpKind::kAnd) {
            return truthy ? Eval(expr->right.get(), frame, scope) : left;
          }
          return truthy ? left : Eval(expr->right.get(), frame, scope);
        }
        SymValue right = Eval(expr->right.get(), frame, scope);
        const NodeOutput lb = ToBool(frame, left);
        const NodeOutput rb = ToBool(frame, right);
        const char* op =
            expr->bool_op == BoolOpKind::kAnd ? "LogicalAnd" : "LogicalOr";
        return SymValue::OfNode({AddOp(frame, op, {lb, rb}), 0}, frame.graph,
                                DType::kBool);
      }
      case ExprKind::kCall:
        return EvalCall(expr, frame, scope);
      case ExprKind::kAttribute:
        return EvalAttribute(expr, frame, scope);
      case ExprKind::kSubscript:
        return EvalSubscript(expr, frame, scope);
      case ExprKind::kList:
      case ExprKind::kTuple: {
        std::vector<SymValue> items;
        items.reserve(expr->elements.size());
        for (const auto& el : expr->elements) {
          items.push_back(Eval(el.get(), frame, scope));
        }
        return SymValue::List(std::move(items));
      }
      case ExprKind::kDict:
        Refuse("dict literals are imperative-only in converted code");
      case ExprKind::kLambda:
        Refuse("lambda expressions inside converted code are "
               "imperative-only");
    }
    throw InternalError("unhandled expression kind in generator");
  }

  NodeOutput ToBool(Frame& frame, const SymValue& sym) {
    if (sym.IsStatic() &&
        !std::holds_alternative<minipy::VariableRef>(sym.static_value) &&
        !std::holds_alternative<Tensor>(sym.static_value)) {
      return ToNode(frame,
                    SymValue::Static(minipy::Truthy(sym.static_value)));
    }
    DType dt = DType::kFloat32;
    const NodeOutput v = ToNode(frame, sym, std::nullopt, &dt);
    if (dt == DType::kBool) return v;
    // Non-bool scalar truthiness: x != 0.
    const NodeOutput zero =
        ToNode(frame, SymValue::Static(std::int64_t{0}), dt);
    return {AddOp(frame, "NotEqual", {v, zero}), 0};
  }

  SymValue Binary(BinaryOp op, SymValue lhs, SymValue rhs, Frame& frame,
                  int line) {
    // List concatenation stays a data-structure operation.
    if (lhs.IsList() && rhs.IsList() && op == BinaryOp::kAdd) {
      std::vector<SymValue> items = *lhs.elements;
      items.insert(items.end(), rhs.elements->begin(), rhs.elements->end());
      return SymValue::List(std::move(items));
    }
    const auto tensorish_static = [](const SymValue& s) {
      return s.IsStatic() &&
             (std::holds_alternative<minipy::VariableRef>(s.static_value) ||
              std::holds_alternative<Tensor>(s.static_value));
    };
    if (lhs.IsStatic() && rhs.IsStatic() && !tensorish_static(lhs) &&
        !tensorish_static(rhs)) {
      // Pure static computation, delegated to interpreter semantics (no
      // tensors involved by construction).
      return SymValue::Static(interp->BinaryOperation(op, lhs.static_value,
                                                      rhs.static_value));
    }
    if (lhs.IsList() || rhs.IsList()) {
      Refuse("line " + std::to_string(line) +
             ": mixed list/tensor arithmetic is not convertible");
    }
    DType lt = DType::kFloat32;
    DType rt = DType::kFloat32;
    // Materialise, aligning static scalars to the dynamic operand's dtype.
    NodeOutput ln;
    NodeOutput rn;
    if (lhs.IsNode() && !rhs.IsNode()) {
      ln = ToNode(frame, lhs, std::nullopt, &lt);
      rn = ToNode(frame, rhs, lt, &rt);
    } else if (rhs.IsNode() && !lhs.IsNode()) {
      rn = ToNode(frame, rhs, std::nullopt, &rt);
      ln = ToNode(frame, lhs, rt, &lt);
    } else {
      ln = ToNode(frame, lhs, std::nullopt, &lt);
      rn = ToNode(frame, rhs, std::nullopt, &rt);
    }
    // dtype alignment via Cast when still mismatched.
    if (lt != rt) {
      if (lt == DType::kFloat32 || rt == DType::kFloat32) {
        if (lt != DType::kFloat32) {
          ln = {AddOp(frame, "Cast", {ln}, {{"dtype", DType::kFloat32}}), 0};
          lt = DType::kFloat32;
        }
        if (rt != DType::kFloat32) {
          rn = {AddOp(frame, "Cast", {rn}, {{"dtype", DType::kFloat32}}), 0};
          rt = DType::kFloat32;
        }
      } else {
        if (lt == DType::kBool) {
          ln = {AddOp(frame, "Cast", {ln}, {{"dtype", DType::kInt64}}), 0};
          lt = DType::kInt64;
        }
        if (rt == DType::kBool) {
          rn = {AddOp(frame, "Cast", {rn}, {{"dtype", DType::kInt64}}), 0};
          rt = DType::kInt64;
        }
      }
    } else if (lt == DType::kBool) {
      ln = {AddOp(frame, "Cast", {ln}, {{"dtype", DType::kInt64}}), 0};
      rn = {AddOp(frame, "Cast", {rn}, {{"dtype", DType::kInt64}}), 0};
      lt = rt = DType::kInt64;
    }
    const char* name = BinOpName(op);
    const DType result_dt = ArithResultDType(name, lt, rt);
    // Merge shape knowledge when both operands carry it.
    ShapeAssumption result_shape = ShapeAssumption::Unknown();
    if (lhs.IsNode() && lhs.shape.IsExact() &&
        (!rhs.IsNode() || (rhs.shape.IsExact() &&
                           rhs.shape.ExactShape() == lhs.shape.ExactShape()))) {
      result_shape = lhs.shape;
    }
    return SymValue::OfNode({AddOp(frame, name, {ln, rn}), 0}, frame.graph,
                            result_dt, false, result_shape);
  }

  SymValue Compare(CompareOp op, SymValue lhs, SymValue rhs, Frame& frame,
                   int line) {
    if (op == CompareOp::kIn) {
      if (lhs.IsStatic() && rhs.IsList()) {
        // Membership over static elements only.
        for (const SymValue& item : *rhs.elements) {
          if (item.IsStatic() &&
              minipy::ValuesEqual(lhs.static_value, item.static_value)) {
            return SymValue::Static(true);
          }
        }
        return SymValue::Static(false);
      }
      Refuse("line " + std::to_string(line) +
             ": 'in' is only convertible over static lists");
    }
    const auto tensorish_static = [](const SymValue& s) {
      return s.IsStatic() &&
             (std::holds_alternative<minipy::VariableRef>(s.static_value) ||
              std::holds_alternative<Tensor>(s.static_value));
    };
    if (lhs.IsStatic() && rhs.IsStatic() && !tensorish_static(lhs) &&
        !tensorish_static(rhs)) {
      return SymValue::Static(interp->CompareOperation(op, lhs.static_value,
                                                       rhs.static_value));
    }
    // Pointer comparison against None compares with the null pointer.
    DType lt = DType::kFloat32;
    DType rt = DType::kFloat32;
    NodeOutput ln;
    NodeOutput rn;
    if (lhs.IsNode() && !rhs.IsNode()) {
      ln = ToNode(frame, lhs, std::nullopt, &lt);
      rn = ToNode(frame, rhs, lt, &rt);
    } else if (rhs.IsNode() && !lhs.IsNode()) {
      rn = ToNode(frame, rhs, std::nullopt, &rt);
      ln = ToNode(frame, lhs, rt, &lt);
    } else {
      ln = ToNode(frame, lhs, std::nullopt, &lt);
      rn = ToNode(frame, rhs, std::nullopt, &rt);
    }
    if (lt != rt) {
      if (lt != DType::kFloat32) {
        ln = {AddOp(frame, "Cast", {ln}, {{"dtype", DType::kFloat32}}), 0};
      }
      if (rt != DType::kFloat32) {
        rn = {AddOp(frame, "Cast", {rn}, {{"dtype", DType::kFloat32}}), 0};
      }
    }
    return SymValue::OfNode({AddOp(frame, CmpOpName(op), {ln, rn}), 0},
                            frame.graph, DType::kBool);
  }

  // Checks that a Name expression still resolves to the expected builtin
  // (so user code shadowing `range` falls back to the generic path).
  bool LooksLikeBuiltin(const Expr* name_expr, Scope& scope,
                        const std::string& builtin_name) {
    if (scope.Find(name_expr->str_value) != nullptr) return false;
    auto env = scope.ClosureEnv();
    while (env != nullptr && !env->Has(name_expr->str_value)) {
      env = env->parent_ptr();
    }
    if (env == nullptr) return false;
    const Value* v = env->Find(name_expr->str_value);
    const auto* builtin =
        std::get_if<std::shared_ptr<minipy::BuiltinFunction>>(v);
    return builtin != nullptr && (*builtin)->name == builtin_name;
  }

  SymValue EvalCall(const Expr* expr, Frame& frame, Scope& scope);
  SymValue EvalBuiltinCall(const minipy::BuiltinFunction& builtin,
                           std::vector<SymValue>& args, Frame& frame,
                           const Expr* expr);
  SymValue EvalUserCall(const std::shared_ptr<minipy::FunctionValue>& fn,
                        std::vector<SymValue> args, Frame& frame,
                        const Expr* call_site,
                        std::optional<ContextRef> self_origin = {});
  SymValue InlineCall(const std::shared_ptr<minipy::FunctionValue>& fn,
                      std::vector<SymValue> args, Frame& frame);
  SymValue InvokeCall(const std::shared_ptr<minipy::FunctionValue>& fn,
                      std::vector<SymValue> args, Frame& frame);

  SymValue EvalAttribute(const Expr* expr, Frame& frame, Scope& scope);
  SymValue EvalSubscript(const Expr* expr, Frame& frame, Scope& scope);
  SymValue WrapDynamicRead(Frame& frame, NodeOutput value,
                           const ValueProfile* profile, const std::string& id,
                           DType dtype);

  // ---- function-graph generation (Invoke path) ----
  std::string FunctionSignature(
      const std::shared_ptr<minipy::FunctionValue>& fn,
      const std::vector<SymValue>& args);
  std::string GenerateFunctionGraph(
      const std::shared_ptr<minipy::FunctionValue>& fn,
      const std::vector<SymValue>& args, Frame& frame);

  // ---- compilation driver ----
  std::unique_ptr<CompiledGraph> Compile(
      const std::shared_ptr<minipy::FunctionValue>& fn,
      std::span<const Value> args, bool training, double lr,
      const GraphGenerator::CompileHints& compile_hints);
};

// ===========================================================================
// Calls
// ===========================================================================

SymValue GraphGenerator::Impl::EvalCall(const Expr* expr, Frame& frame,
                                        Scope& scope) {
  SymValue callee = Eval(expr->left.get(), frame, scope);
  std::vector<SymValue> args;
  args.reserve(expr->elements.size());
  for (const auto& arg : expr->elements) {
    args.push_back(Eval(arg.get(), frame, scope));
  }
  if (callee.IsStatic()) {
    if (const auto* builtin =
            std::get_if<std::shared_ptr<minipy::BuiltinFunction>>(
                &callee.static_value)) {
      if ((*builtin)->name == "__sym_append__") {
        // Bound append on a symbolic local list (see EvalAttribute): the
        // element vector rides along on the callee symbol.
        JANUS_EXPECTS(callee.elements != nullptr);
        if (args.size() != 1) Refuse("append() takes exactly one argument");
        callee.elements->push_back(std::move(args[0]));
        return SymValue::Static(minipy::NoneType{});
      }
      return EvalBuiltinCall(**builtin, args, frame, expr);
    }
    if (const auto* fn =
            std::get_if<std::shared_ptr<minipy::FunctionValue>>(
                &callee.static_value)) {
      return EvalUserCall(*fn, std::move(args), frame, expr, callee.origin);
    }
    if (const auto* obj =
            std::get_if<std::shared_ptr<minipy::ObjectValue>>(
                &callee.static_value)) {
      // Callable object: dispatch to __call__ bound to it.
      const auto call = (*obj)->cls()->methods.find("__call__");
      if (call != (*obj)->cls()->methods.end()) {
        auto bound = std::make_shared<minipy::FunctionValue>(*call->second);
        bound->self = callee.static_value;
        return EvalUserCall(bound, std::move(args), frame, expr,
                            callee.origin);
      }
    }
    Refuse("line " + std::to_string(expr->line) + ": cannot convert call to " +
           std::string(minipy::ValueTypeName(callee.static_value)));
  }
  Refuse("line " + std::to_string(expr->line) +
         ": dynamic callee values are imperative-only");
}

SymValue GraphGenerator::Impl::EvalUserCall(
    const std::shared_ptr<minipy::FunctionValue>& fn,
    std::vector<SymValue> args, Frame& frame, const Expr* /*call_site*/,
    std::optional<ContextRef> self_origin) {
  // Bound receiver first, carrying its context provenance so attribute
  // reads on `self` can record entry checks.
  if (!std::holds_alternative<minipy::NoneType>(fn->self)) {
    args.insert(args.begin(),
                SymValue::Static(fn->self, std::move(self_origin)));
  }
  // Static heap-object arguments whose profile shows per-call identity
  // churn (e.g. tree nodes) are demoted to dynamic pointers so attribute
  // access stays dynamic and recursion converges (§4.2.2).
  if (fn->def != nullptr) {
    for (std::size_t i = 0; i < args.size(); ++i) {
      SymValue& arg = args[i];
      if (!arg.IsStatic()) continue;
      const bool heap_obj =
          std::holds_alternative<std::shared_ptr<minipy::ObjectValue>>(
              arg.static_value) ||
          std::holds_alternative<std::shared_ptr<minipy::ListValue>>(
              arg.static_value);
      if (!heap_obj) continue;
      const ValueProfile* profile =
          prof->argument(fn->def, static_cast<int>(i));
      if (profile != nullptr && !profile->heap_stable) {
        DType dt = DType::kInt64;
        bool ptr = true;
        const NodeOutput n = ToNode(frame, arg, std::nullopt, &dt, &ptr);
        arg = SymValue::OfNode(n, frame.graph, DType::kInt64, true,
                               ShapeAssumption::Exact(Shape{}));
      }
    }
  }
  const std::string signature = FunctionSignature(fn, args);
  const void* def_key = fn->def != nullptr
                            ? static_cast<const void*>(fn->def)
                            : static_cast<const void*>(fn->lambda);
  const bool in_progress = fn_generating.count(signature) != 0u;
  const bool inlining_recursively =
      std::find(inline_stack.begin(), inline_stack.end(), def_key) !=
      inline_stack.end();
  if (!opt.speculative_unroll || in_progress || inlining_recursively) {
    // BASE mode, or recursion: call through InvokeOp.
    return InvokeCall(fn, std::move(args), frame);
  }
  if (depth >= opt.max_inline_depth) Refuse("inline depth limit exceeded");
  inline_stack.push_back(def_key);
  struct StackGuard {
    std::vector<const void*>* stack;
    ~StackGuard() { stack->pop_back(); }
  } guard{&inline_stack};
  return InlineCall(fn, std::move(args), frame);
}

SymValue GraphGenerator::Impl::InlineCall(
    const std::shared_ptr<minipy::FunctionValue>& fn,
    std::vector<SymValue> args, Frame& frame) {
  Scope scope;
  scope.closure = fn->closure;
  const auto bind = [&](const std::vector<std::string>& params) {
    if (args.size() != params.size()) {
      Refuse("call to " + fn->qualified_name + ": arity mismatch");
    }
    for (std::size_t i = 0; i < params.size(); ++i) {
      scope.vars[params[i]] = std::move(args[i]);
    }
  };
  ++depth;
  struct DepthGuard {
    int* d;
    ~DepthGuard() { --*d; }
  } guard{&depth};
  fn_name_stack.push_back(fn->qualified_name);
  FnNameGuard name_guard{&fn_name_stack};
  if (fn->lambda != nullptr) {
    bind(fn->lambda->params);
    SourceSiteScope site_scope(fn->qualified_name, fn->lambda->line);
    return Eval(fn->lambda->left.get(), frame, scope);
  }
  bind(fn->def->params);
  try {
    ExecBlock(fn->def->body, frame, scope);
  } catch (GenReturn& ret) {
    return std::move(ret.value);
  }
  return SymValue::Static(minipy::NoneType{});
}

std::string GraphGenerator::Impl::FunctionSignature(
    const std::shared_ptr<minipy::FunctionValue>& fn,
    const std::vector<SymValue>& args) {
  std::ostringstream oss;
  oss << static_cast<const void*>(fn->def != nullptr
                                      ? static_cast<const void*>(fn->def)
                                      : static_cast<const void*>(fn->lambda));
  for (const SymValue& arg : args) {
    if (arg.IsNode()) {
      oss << "|n" << static_cast<int>(arg.dtype) << (arg.is_pointer ? "p" : "");
    } else if (arg.IsList()) {
      oss << "|l" << arg.elements->size();
    } else {
      oss << "|s" << minipy::ValueToString(arg.static_value);
    }
  }
  return oss.str();
}

SymValue GraphGenerator::Impl::InvokeCall(
    const std::shared_ptr<minipy::FunctionValue>& fn,
    std::vector<SymValue> args, Frame& frame) {
  const std::string signature = FunctionSignature(fn, args);
  const std::string name = GenerateFunctionGraph(fn, args, frame);
  // Node inputs: the node-kind args, then the callee's imports (its root
  // sources, brought into this frame).
  std::vector<NodeOutput> inputs;
  for (SymValue& arg : args) {
    if (arg.IsNode()) inputs.push_back(ToNode(frame, arg));
    if (arg.IsList()) Refuse("list arguments to non-inlined calls");
  }
  Node* call = AddOp(frame, "Invoke", inputs, {{"function", name}}, 1);
  if (fn_generating.count(signature) != 0u) {
    // Recursive site: the callee's import list may still grow; patch later.
    pending_recursive_sites[signature].push_back(
        PendingSite{call, frame.graph, frame.gates});
  } else {
    // Append import sources (root-graph values) lifted into this frame.
    for (const NodeOutput& src : fn_import_sources.at(name)) {
      SymValue root_sym = SymValue::OfNode(src, root->graph, DType::kFloat32);
      call->AppendInput(ApplyGates(frame, ImportValue(frame, root_sym)));
    }
  }
  const auto dtype_it = fn_result_dtype.find(name);
  return SymValue::OfNode(
      {call, 0}, frame.graph,
      dtype_it != fn_result_dtype.end() ? dtype_it->second : DType::kFloat32,
      false);
}

// Builds (or reuses) the GraphFunction for a call target: node-kind
// arguments become Params, static arguments are baked in, and imports of
// root-graph values append extra Params (Jeong et al.'s InvokeOp bodies).
std::string GraphGenerator::Impl::GenerateFunctionGraph(
    const std::shared_ptr<minipy::FunctionValue>& fn,
    const std::vector<SymValue>& args, Frame& /*frame*/) {
  const std::string signature = FunctionSignature(fn, args);
  const auto cached = fn_cache.find(signature);
  if (cached != fn_cache.end()) return cached->second;

  const std::string name = Fresh("fn_" + SanitizeName(fn->qualified_name));
  fn_cache.emplace(signature, name);
  fn_generating.insert(signature);

  auto gf = std::make_unique<GraphFunction>();
  gf->name = name;
  out->library->Register(std::move(gf));
  GraphFunction& registered = out->library->LookupMutable(name);

  fn_name_stack.push_back(fn->qualified_name);
  FnNameGuard name_guard{&fn_name_stack};
  // Function-level scope: prologue/epilogue nodes (Params, the Identity
  // result wrapper, recursive-site patch Switches) attribute to the def
  // line; per-statement scopes nested inside override it.
  SourceSiteScope fn_scope(
      fn->qualified_name,
      fn->def != nullptr ? fn->def->line : fn->lambda->line);

  Frame fn_frame;
  fn_frame.graph = &registered.graph;
  fn_frame.parent = root;  // function imports always come from the root
  fn_frame.fn = &registered;

  Scope scope;
  scope.closure = fn->closure;
  const std::vector<std::string>* params = nullptr;
  const Expr* lambda_body = nullptr;
  if (fn->lambda != nullptr) {
    params = &fn->lambda->params;
    lambda_body = fn->lambda->left.get();
  } else {
    params = &fn->def->params;
  }
  if (args.size() != params->size()) {
    Refuse("call to " + fn->qualified_name + ": arity mismatch");
  }
  for (std::size_t i = 0; i < args.size(); ++i) {
    const SymValue& arg = args[i];
    if (arg.IsNode()) {
      Node* param = registered.graph.AddNode(
          "Param", {},
          {{"index",
            static_cast<std::int64_t>(registered.parameters.size())}});
      registered.parameters.push_back(param);
      scope.vars[(*params)[i]] = SymValue::OfNode(
          {param, 0}, &registered.graph, arg.dtype, arg.is_pointer,
          arg.shape);
    } else if (arg.IsList()) {
      Refuse("list arguments to non-inlined calls");
    } else {
      scope.vars[(*params)[i]] = arg;  // baked static
    }
  }

  SymValue result = SymValue::Static(minipy::NoneType{});
  if (lambda_body != nullptr) {
    result = Eval(lambda_body, fn_frame, scope);
  } else {
    try {
      ExecBlock(fn->def->body, fn_frame, scope);
    } catch (GenReturn& ret) {
      result = std::move(ret.value);
    }
  }
  DType result_dt = DType::kFloat32;
  bool result_ptr = false;
  NodeOutput result_node =
      ToNode(fn_frame, result, std::nullopt, &result_dt, &result_ptr);
  // Anchor side effects (asserts, deferred state writes) to the result.
  Node* wrapped = fn_frame.graph->AddNode("Identity", {result_node});
  for (Node* side : fn_frame.side_nodes) wrapped->AddControlInput(side);
  registered.results = {{wrapped, 0}};

  fn_generating.erase(signature);
  fn_import_sources[name] = fn_frame.import_sources;
  fn_result_dtype[name] = result_dt;

  // Patch self-recursive Invoke sites: they were created before the import
  // list was complete. Their missing inputs are this function's own import
  // Params (a recursive activation forwards its imports unchanged).
  const auto pending = pending_recursive_sites.find(signature);
  if (pending != pending_recursive_sites.end()) {
    const int num_arg_params = static_cast<int>(
        registered.parameters.size() - fn_frame.import_sources.size());
    for (const PendingSite& ps : pending->second) {
      if (ps.graph != &registered.graph) {
        Refuse("recursive call from a nested loop body is not supported");
      }
      while (ps.site->num_inputs() <
             static_cast<int>(registered.parameters.size())) {
        Node* param = registered.parameters[static_cast<std::size_t>(
            ps.site->num_inputs())];
        JANUS_EXPECTS(ps.site->num_inputs() >= num_arg_params);
        // Re-apply the site's branch gates: a recursive activation on a
        // dead branch must see dead import tokens, not live ones.
        NodeOutput v{param, 0};
        for (const Gate& gate : ps.gates) {
          Node* sw = ps.graph->AddNode("Switch", {v, gate.cond}, {}, 2);
          v = {sw, gate.side ? 1 : 0};
        }
        ps.site->AppendInput(v);
      }
    }
    pending_recursive_sites.erase(pending);
  }
  return name;
}

// ===========================================================================
// Functional loops (BASE lowering and unstable trip counts)
// ===========================================================================

void GraphGenerator::Impl::EmitFunctionalLoop(
    const Stmt* stmt, Frame& frame, Scope& scope, bool for_range,
    std::vector<SymValue> range_bounds) {
  // Loop-carried variables: names assigned in the body that already exist.
  std::set<std::string> assigned;
  CollectAssigned(stmt->body, &assigned);
  std::vector<std::string> carried_names;
  for (const std::string& name : assigned) {
    if (for_range && name == stmt->target->str_value) continue;
    if (scope.Find(name) != nullptr) carried_names.push_back(name);
  }

  // Materialise carried inits in the enclosing frame.
  std::vector<NodeOutput> carried_inits;
  std::vector<DType> carried_dtypes;
  std::vector<bool> carried_ptrs;
  for (const std::string& name : carried_names) {
    SymValue* sym = scope.Find(name);
    DType dt = DType::kFloat32;
    bool ptr = false;
    carried_inits.push_back(ToNode(frame, *sym, std::nullopt, &dt, &ptr));
    carried_dtypes.push_back(dt);
    carried_ptrs.push_back(ptr);
  }
  // The iteration counter is carried slot 0 for range loops.
  const int counter_slots = for_range ? 1 : 0;
  if (for_range) {
    carried_inits.insert(carried_inits.begin(),
                         ToNode(frame, range_bounds[0], DType::kInt64));
  }
  const auto num_carried =
      static_cast<std::int64_t>(carried_inits.size());

  // Shared capture registry: both cond and body resolve outer values
  // through it so the While op can pass one combined capture list.
  std::vector<NodeOutput> capture_sources;  // in the enclosing frame

  const std::string cond_name = Fresh("loop_cond");
  const std::string body_name = Fresh("loop_body");
  for (const std::string& fname : {cond_name, body_name}) {
    auto gf = std::make_unique<GraphFunction>();
    gf->name = fname;
    out->library->Register(std::move(gf));
  }
  GraphFunction& cond_fn = out->library->LookupMutable(cond_name);
  GraphFunction& body_fn = out->library->LookupMutable(body_name);

  // Builds one of the two loop functions. `emit` receives the function's
  // scope (carried vars bound to params) and must return the results.
  const auto build = [&](GraphFunction& gf,
                         const std::function<std::vector<NodeOutput>(
                             Frame&, Scope&)>& emit) {
    Frame loop_frame;
    loop_frame.graph = &gf.graph;
    loop_frame.fn = &gf;
    // Captures resolve against the *enclosing* frame; ImportValue appends
    // Params and records sources, which we merge into capture_sources.
    loop_frame.parent = &frame;
    Scope loop_scope;
    loop_scope.parent = &scope;
    for (std::int64_t i = 0; i < num_carried; ++i) {
      Node* param = gf.graph.AddNode(
          "Param", {}, {{"index", static_cast<std::int64_t>(i)}});
      gf.parameters.push_back(param);
      if (for_range && i == 0) {
        loop_scope.vars[stmt->target->str_value] = SymValue::OfNode(
            {param, 0}, &gf.graph, DType::kInt64, false,
            ShapeAssumption::Exact(Shape{}));
      } else {
        const auto ci = static_cast<std::size_t>(i - counter_slots);
        loop_scope.vars[carried_names[ci]] = SymValue::OfNode(
            {param, 0}, &gf.graph, carried_dtypes[ci], carried_ptrs[ci]);
      }
    }
    std::vector<NodeOutput> results;
    try {
      results = emit(loop_frame, loop_scope);
    } catch (const GenReturn&) {
      Refuse("'return' inside a data-dependent loop is imperative-only");
    } catch (const GenBreak&) {
      Refuse("'break' inside a data-dependent loop is imperative-only");
    } catch (const GenContinue&) {
      Refuse("'continue' inside a data-dependent loop is imperative-only");
    }
    // Anchor side nodes onto the first result.
    JANUS_EXPECTS(!results.empty());
    Node* wrapped = gf.graph.AddNode("Identity", {results[0]});
    for (Node* side : loop_frame.side_nodes) wrapped->AddControlInput(side);
    results[0] = {wrapped, 0};
    gf.results = results;
    // Merge this function's import sources into the shared capture list.
    // Params were appended in discovery order; map them onto the combined
    // ordering by re-basing: find or append each source.
    for (std::size_t i = 0; i < loop_frame.import_sources.size(); ++i) {
      const NodeOutput src = loop_frame.import_sources[i];
      bool found = false;
      for (const NodeOutput& existing : capture_sources) {
        if (existing == src) {
          found = true;
          break;
        }
      }
      if (!found) capture_sources.push_back(src);
    }
    return loop_frame.import_sources;
  };

  // Body: executes the statements once; results are the updated carrieds.
  const auto body_imports = build(body_fn, [&](Frame& lf, Scope& ls) {
    ExecBlock(stmt->body, lf, ls);
    std::vector<NodeOutput> results;
    if (for_range) {
      // counter + step
      const SymValue i_sym = *ls.Find(stmt->target->str_value);
      SymValue next = Binary(BinaryOp::kAdd, i_sym, range_bounds[2], lf,
                             stmt->line);
      results.push_back(ToNode(lf, next, DType::kInt64));
    }
    for (std::size_t c = 0; c < carried_names.size(); ++c) {
      SymValue* sym = ls.Find(carried_names[c]);
      JANUS_EXPECTS(sym != nullptr);
      results.push_back(ToNode(lf, *sym, carried_dtypes[c]));
    }
    return results;
  });

  // Cond: for-range compares the counter to the bound; while evaluates the
  // condition expression.
  const auto cond_imports = build(cond_fn, [&](Frame& lf, Scope& ls) {
    NodeOutput pred;
    if (for_range) {
      const SymValue i_sym = *ls.Find(stmt->target->str_value);
      const SymValue cmp =
          Compare(CompareOp::kLt, i_sym, range_bounds[1], lf, stmt->line);
      pred = ToBool(lf, cmp);
    } else {
      pred = ToBool(lf, Eval(stmt->value.get(), lf, ls));
    }
    return std::vector<NodeOutput>{pred};
  });

  // Pad both functions to the full combined capture list so the While
  // kernel can pass identical argument vectors.
  const auto pad = [&](GraphFunction& gf,
                       const std::vector<NodeOutput>& own_imports) {
    // Existing import params map to own_imports in order; the combined list
    // may interleave differently, so rebuild: params [carried..., combined
    // captures...] and rewire existing import params.
    // Simplest correct approach: append params for captures this function
    // did not import, then reorder its import params to combined order.
    std::map<std::pair<Node*, int>, Node*> own_param_for_source;
    for (std::size_t i = 0; i < own_imports.size(); ++i) {
      own_param_for_source[{own_imports[i].node, own_imports[i].index}] =
          gf.parameters[static_cast<std::size_t>(num_carried) + i];
    }
    std::vector<Node*> new_params(
        gf.parameters.begin(),
        gf.parameters.begin() + static_cast<std::ptrdiff_t>(num_carried));
    for (std::size_t i = 0; i < capture_sources.size(); ++i) {
      const auto key = std::make_pair(capture_sources[i].node,
                                      capture_sources[i].index);
      const auto it = own_param_for_source.find(key);
      Node* param = nullptr;
      if (it != own_param_for_source.end()) {
        param = it->second;
      } else {
        param = gf.graph.AddNode("Param", {});
      }
      param->SetAttr("index", static_cast<std::int64_t>(num_carried) +
                                  static_cast<std::int64_t>(i));
      new_params.push_back(param);
    }
    gf.parameters = std::move(new_params);
  };
  pad(body_fn, body_imports);
  pad(cond_fn, cond_imports);

  // The While node in the enclosing frame.
  std::vector<NodeOutput> inputs = carried_inits;
  for (const NodeOutput& src : capture_sources) {
    inputs.push_back(ApplyGates(frame, src));
  }
  Node* loop = AddOp(frame, "While", inputs,
                     {{"cond_fn", cond_name},
                      {"body_fn", body_name},
                      {"num_carried", num_carried}},
                     static_cast<int>(num_carried));
  // Rebind carried variables to the loop outputs.
  for (std::size_t c = 0; c < carried_names.size(); ++c) {
    const int slot = counter_slots + static_cast<int>(c);
    *scope.Find(carried_names[c]) = SymValue::OfNode(
        {loop, slot}, frame.graph, carried_dtypes[c], carried_ptrs[c]);
  }
}

// ===========================================================================
// Builtins (the external-function whitelist of §4.3.1)
// ===========================================================================

namespace {

std::int64_t StaticInt(const SymValue& s, const char* what) {
  if (s.IsStatic()) {
    if (const auto* i = std::get_if<std::int64_t>(&s.static_value)) {
      return *i;
    }
    if (const auto* b = std::get_if<bool>(&s.static_value)) {
      return *b ? 1 : 0;
    }
  }
  Refuse(std::string(what) + ": expected a static int");
}

double StaticNumber(const SymValue& s, const char* what) {
  if (s.IsStatic()) {
    if (const auto* i = std::get_if<std::int64_t>(&s.static_value)) {
      return static_cast<double>(*i);
    }
    if (const auto* d = std::get_if<double>(&s.static_value)) return *d;
  }
  Refuse(std::string(what) + ": expected a static number");
}

std::string StaticString(const SymValue& s, const char* what) {
  if (s.IsStatic()) {
    if (const auto* str = std::get_if<std::string>(&s.static_value)) {
      return *str;
    }
  }
  Refuse(std::string(what) + ": expected a static string");
}

std::vector<std::int64_t> StaticIntList(const SymValue& s, const char* what) {
  std::vector<std::int64_t> out;
  if (s.IsList()) {
    for (const SymValue& item : *s.elements) {
      out.push_back(StaticInt(item, what));
    }
    return out;
  }
  if (s.IsStatic()) {
    if (const auto* list = std::get_if<std::shared_ptr<minipy::ListValue>>(
            &s.static_value)) {
      for (const minipy::Value& item : (*list)->items) {
        if (const auto* i = std::get_if<std::int64_t>(&item)) {
          out.push_back(*i);
          continue;
        }
        Refuse(std::string(what) + ": expected ints in list");
      }
      return out;
    }
  }
  Refuse(std::string(what) + ": expected a static list of ints");
}

// Flattens a static nested list of numbers into a float tensor.
void FlattenStatic(const SymValue& s, std::vector<float>* data,
                   std::vector<std::int64_t>* dims, int depth) {
  const auto handle_items = [&](auto&& self, const auto& items,
                                auto&& get_number) -> void {
    const auto n = static_cast<std::int64_t>(items.size());
    if (static_cast<int>(dims->size()) <= depth) {
      dims->push_back(n);
    } else if ((*dims)[static_cast<std::size_t>(depth)] != n) {
      Refuse("constant(): ragged nested list");
    }
    for (const auto& item : items) {
      self(self, item, get_number);
    }
  };
  (void)handle_items;
  if (s.IsList()) {
    const auto n = static_cast<std::int64_t>(s.elements->size());
    if (static_cast<int>(dims->size()) <= depth) {
      dims->push_back(n);
    } else if ((*dims)[static_cast<std::size_t>(depth)] != n) {
      Refuse("constant(): ragged nested list");
    }
    for (const SymValue& item : *s.elements) {
      FlattenStatic(item, data, dims, depth + 1);
    }
    return;
  }
  if (s.IsStatic()) {
    if (const auto* list = std::get_if<std::shared_ptr<minipy::ListValue>>(
            &s.static_value)) {
      const auto n = static_cast<std::int64_t>((*list)->items.size());
      if (static_cast<int>(dims->size()) <= depth) {
        dims->push_back(n);
      } else if ((*dims)[static_cast<std::size_t>(depth)] != n) {
        Refuse("constant(): ragged nested list");
      }
      for (const minipy::Value& item : (*list)->items) {
        FlattenStatic(SymValue::Static(item), data, dims, depth + 1);
      }
      return;
    }
    data->push_back(static_cast<float>(StaticNumber(s, "constant")));
    return;
  }
  Refuse("constant(): dynamic elements are not supported");
}

}  // namespace

SymValue GraphGenerator::Impl::EvalBuiltinCall(
    const minipy::BuiltinFunction& builtin, std::vector<SymValue>& args,
    Frame& frame, const Expr* expr) {
  const std::string& name = builtin.name;
  const auto node_of = [&](std::size_t i, std::optional<DType> want =
                                              std::nullopt) {
    DType dt = DType::kFloat32;
    const NodeOutput n = ToNode(frame, args.at(i), want, &dt);
    return std::make_pair(n, dt);
  };
  const auto make = [&](Node* n, DType dt,
                        ShapeAssumption sh = ShapeAssumption::Unknown()) {
    return SymValue::OfNode({n, 0}, frame.graph, dt, false, std::move(sh));
  };

  // Simple one-to-one tensor ops.
  if (const auto info = minipy::LookupBuiltinOp(name)) {
    std::vector<NodeOutput> inputs;
    DType dt = DType::kFloat32;
    for (int i = 0; i < info->tensor_args; ++i) {
      DType this_dt = DType::kFloat32;
      inputs.push_back(
          ToNode(frame, args.at(static_cast<std::size_t>(i)),
                 i == 0 ? std::nullopt : std::optional<DType>(dt), &this_dt));
      if (i == 0) dt = this_dt;
    }
    Node* n = AddOp(frame, info->graph_op, inputs);
    const DType out_dt =
        info->graph_op == "SoftmaxCrossEntropy" || info->graph_op == "Gather"
            ? DType::kFloat32
            : ArithResultDType(info->graph_op, dt, dt);
    return make(n, out_dt);
  }

  if (name == "constant") {
    std::vector<float> data;
    std::vector<std::int64_t> dims;
    FlattenStatic(args.at(0), &data, &dims, 0);
    Shape shape(dims);
    Tensor t = Tensor::FromVector(std::move(data), shape);
    Node* n = frame.graph->AddNode("Const", {}, {{"value", std::move(t)}});
    return make(n, DType::kFloat32, ShapeAssumption::Exact(shape));
  }
  if (name == "constant_int") {
    if (args.at(0).IsStatic() &&
        std::holds_alternative<std::int64_t>(args.at(0).static_value)) {
      Node* n = frame.graph->AddNode(
          "Const", {},
          {{"value",
            Tensor::ScalarInt(std::get<std::int64_t>(args[0].static_value))}});
      return make(n, DType::kInt64, ShapeAssumption::Exact(Shape{}));
    }
    const auto ints = StaticIntList(args.at(0), "constant_int");
    Shape shape{static_cast<std::int64_t>(ints.size())};
    Node* n = frame.graph->AddNode(
        "Const", {}, {{"value", Tensor::FromVectorInt(ints, shape)}});
    return make(n, DType::kInt64, ShapeAssumption::Exact(shape));
  }
  if (name == "zeros" || name == "ones" || name == "fill") {
    const auto dims = StaticIntList(args.at(0), name.c_str());
    const float v = name == "zeros"
                        ? 0.0f
                        : (name == "ones" ? 1.0f
                                          : static_cast<float>(StaticNumber(
                                                args.at(1), "fill")));
    Shape shape(dims);
    Node* n = frame.graph->AddNode("Const", {},
                                   {{"value", Tensor::Full(shape, v)}});
    return make(n, DType::kFloat32, ShapeAssumption::Exact(shape));
  }
  if (name == "randn" || name == "rand_uniform") {
    const auto dims = StaticIntList(args.at(0), name.c_str());
    AttrMap attrs{{"shape", dims}};
    const char* op = nullptr;
    if (name == "randn") {
      op = "RandomNormal";
      attrs["mean"] = 0.0;
      attrs["stddev"] =
          args.size() >= 2 ? StaticNumber(args.at(1), "randn") : 1.0;
    } else {
      op = "RandomUniform";
      attrs["lo"] = StaticNumber(args.at(1), "rand_uniform");
      attrs["hi"] = StaticNumber(args.at(2), "rand_uniform");
    }
    Node* n = AddOp(frame, op, {}, std::move(attrs));
    return make(n, DType::kFloat32, ShapeAssumption::Exact(Shape(dims)));
  }
  if (name == "variable") {
    // Parameters already exist by generation time (created while
    // profiling); the handle is a static value.
    const std::string var = StaticString(args.at(0), "variable");
    return SymValue::Static(minipy::VariableRef{var});
  }
  if (name == "assign") {
    std::string var;
    if (args.at(0).IsStatic()) {
      if (const auto* ref =
              std::get_if<minipy::VariableRef>(&args[0].static_value)) {
        var = ref->name;
      } else {
        var = StaticString(args.at(0), "assign");
      }
    } else {
      Refuse("assign(): variable handle must be static");
    }
    const auto [v, dt] = node_of(1);
    (void)dt;
    RefuseSideEffectInDynamicBranch(frame, "variable assignment");
    Node* set = AddOp(frame, "AssignVariable", {v}, {{"var", var}});
    OrderStateWrite(frame, -2, "var:" + var, set);
    return SymValue::Static(minipy::NoneType{});
  }
  if (name == "reduce_sum" || name == "reduce_mean" || name == "reduce_max") {
    std::vector<std::int64_t> axes;
    if (args.size() == 2) axes.push_back(StaticInt(args.at(1), name.c_str()));
    const auto [v, dt] = node_of(0);
    const char* op = name == "reduce_sum"
                         ? "ReduceSum"
                         : (name == "reduce_mean" ? "ReduceMean" : "ReduceMax");
    Node* n = AddOp(frame, op, {v}, {{"axes", axes}, {"keep_dims", false}});
    return make(n, dt,
                args.size() == 1 ? ShapeAssumption::Exact(Shape{})
                                 : ShapeAssumption::Unknown());
  }
  if (name == "argmax") {
    const auto [v, dt] = node_of(0);
    (void)dt;
    Node* n = AddOp(frame, "ArgMax", {v},
                    {{"axis", StaticInt(args.at(1), "argmax")}});
    return make(n, DType::kInt64);
  }
  if (name == "onehot") {
    const auto [v, dt] = node_of(0, DType::kInt64);
    (void)dt;
    Node* n = AddOp(frame, "OneHot", {v},
                    {{"depth", StaticInt(args.at(1), "onehot")}});
    return make(n, DType::kFloat32);
  }
  if (name == "reshape") {
    const auto dims = StaticIntList(args.at(1), "reshape");
    const auto [v, dt] = node_of(0);
    Node* n = AddOp(frame, "Reshape", {v}, {{"shape", dims}});
    bool exact = true;
    for (const std::int64_t d : dims) exact = exact && d >= 0;
    return make(n, dt,
                exact ? ShapeAssumption::Exact(Shape(dims))
                      : ShapeAssumption::Unknown());
  }
  if (name == "cast_float" || name == "cast_int") {
    const DType target =
        name == "cast_float" ? DType::kFloat32 : DType::kInt64;
    const auto [v, dt] = node_of(0);
    (void)dt;
    Node* n = AddOp(frame, "Cast", {v}, {{"dtype", target}});
    return make(n, target, args.at(0).shape);
  }
  if (name == "conv2d") {
    const auto [x, xd] = node_of(0);
    const auto [f, fd] = node_of(1);
    (void)xd;
    (void)fd;
    Node* n = AddOp(frame, "Conv2D", {x, f},
                    {{"stride", StaticInt(args.at(2), "conv2d")},
                     {"padding", StaticString(args.at(3), "conv2d")}});
    return make(n, DType::kFloat32);
  }
  if (name == "maxpool" || name == "avgpool") {
    const auto [x, xd] = node_of(0);
    (void)xd;
    Node* n = AddOp(frame, name == "maxpool" ? "MaxPool2D" : "AvgPool2D",
                    {x},
                    {{"window", StaticInt(args.at(1), name.c_str())},
                     {"stride", StaticInt(args.at(2), name.c_str())}});
    return make(n, DType::kFloat32);
  }
  if (name == "concat" || name == "stack") {
    if (!args.at(0).IsList()) {
      Refuse(name + "(): expected a list of tensors");
    }
    std::vector<NodeOutput> parts;
    DType dt = DType::kFloat32;
    for (const SymValue& item : *args[0].elements) {
      parts.push_back(ToNode(frame, item, std::nullopt, &dt));
    }
    if (parts.empty()) Refuse(name + "(): empty list");
    Node* n = name == "concat"
                  ? AddOp(frame, "Concat", parts,
                          {{"axis", StaticInt(args.at(1), "concat")}})
                  : AddOp(frame, "Stack", parts);
    return make(n, dt);
  }
  if (name == "slice2d") {
    // slice2d(x, row_start, row_size, col_start, col_size); -1 = to end.
    const auto [x, dt] = node_of(0);
    const std::vector<std::int64_t> begin{StaticInt(args.at(1), "slice2d"),
                                          StaticInt(args.at(3), "slice2d")};
    const std::vector<std::int64_t> size{StaticInt(args.at(2), "slice2d"),
                                         StaticInt(args.at(4), "slice2d")};
    Node* n = AddOp(frame, "Slice", {x}, {{"begin", begin}, {"size", size}});
    return make(n, dt);
  }
  if (name == "len") {
    const SymValue& target = args.at(0);
    if (target.IsList()) {
      return SymValue::Static(
          static_cast<std::int64_t>(target.elements->size()));
    }
    if (target.IsStatic()) {
      if (const auto* list = std::get_if<std::shared_ptr<minipy::ListValue>>(
              &target.static_value)) {
        return SymValue::Static(
            static_cast<std::int64_t>((*list)->items.size()));
      }
    }
    if (target.IsNode() && !target.shape.is_unknown() &&
        !target.shape.dims().empty() &&
        target.shape.dims()[0].has_value()) {
      return SymValue::Static(*target.shape.dims()[0]);
    }
    Refuse("len(): not statically determinable");
  }
  if (name == "range") {
    // range outside a for-header must be fully static.
    std::vector<std::int64_t> bounds;
    for (const SymValue& arg : args) {
      bounds.push_back(StaticInt(arg, "range"));
    }
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    std::int64_t step = 1;
    if (bounds.size() == 1) {
      hi = bounds[0];
    } else {
      lo = bounds[0];
      hi = bounds[1];
      if (bounds.size() == 3) step = bounds[2];
    }
    std::vector<SymValue> items;
    for (std::int64_t i = lo; step > 0 ? i < hi : i > hi; i += step) {
      items.push_back(SymValue::Static(i));
    }
    return SymValue::List(std::move(items));
  }
  if (name == "print") {
    RefuseSideEffectInDynamicBranch(frame, "print");
    // Leading static arguments fold into a prefix attribute; dynamic ones
    // become inputs.
    std::string prefix;
    std::vector<NodeOutput> inputs;
    bool statics_done = false;
    for (const SymValue& arg : args) {
      if (!statics_done && arg.IsStatic()) {
        if (!prefix.empty()) prefix += ' ';
        prefix += minipy::ValueToString(arg.static_value);
        continue;
      }
      statics_done = true;
      inputs.push_back(ToNode(frame, arg));
    }
    Node* n = AddOp(frame, "PyPrint", inputs, {{"prefix", prefix}});
    frame.side_nodes.push_back(n);
    return SymValue::Static(minipy::NoneType{});
  }
  if (name == "int" || name == "float") {
    const SymValue& v = args.at(0);
    if (v.IsStatic()) {
      const double d = StaticNumber(v, name.c_str());
      if (name == "int") return SymValue::Static(static_cast<std::int64_t>(d));
      return SymValue::Static(d);
    }
    const DType target = name == "int" ? DType::kInt64 : DType::kFloat32;
    const auto [n, dt] = node_of(0);
    (void)dt;
    Node* cast = AddOp(frame, "Cast", {n}, {{"dtype", target}});
    return make(cast, target, v.shape);
  }
  if (name == "abs") {
    const SymValue& v = args.at(0);
    if (v.IsStatic()) {
      const double d = StaticNumber(v, "abs");
      if (std::holds_alternative<std::int64_t>(v.static_value)) {
        return SymValue::Static(
            static_cast<std::int64_t>(d < 0 ? -d : d));
      }
      return SymValue::Static(d < 0 ? -d : d);
    }
    const auto [n, dt] = node_of(0);
    return make(AddOp(frame, "Abs", {n}), dt, v.shape);
  }
  Refuse("builtin '" + name +
         "' is outside the conversion whitelist (imperative-only), line " +
         std::to_string(expr->line));
}

// ===========================================================================
// Attributes and subscripts (§4.2.3 impure-function handling)
// ===========================================================================

SymValue GraphGenerator::Impl::EvalAttribute(const Expr* expr, Frame& frame,
                                             Scope& scope) {
  SymValue base = Eval(expr->left.get(), frame, scope);
  const std::string& name = expr->str_value;

  // Symbolic local list: the only supported method is append.
  if (base.IsList()) {
    if (name == "append") {
      // Marker builtin that mutates the shared element vector in place.
      auto elements = base.elements;
      auto marker = std::make_shared<minipy::BuiltinFunction>(
          "__sym_append__",
          [](minipy::Interpreter&, std::span<minipy::Value>) -> minipy::Value {
            throw InternalError("symbolic append executed imperatively");
          });
      SymValue sym = SymValue::Static(minipy::Value{marker});
      sym.elements = std::move(elements);  // smuggle the list alongside
      return sym;
    }
    Refuse("list attribute '" + name + "' is not convertible");
  }

  // Static object: choose static vs dynamic read per profile (§4.2.2).
  if (base.IsStatic()) {
    const auto* obj = std::get_if<std::shared_ptr<minipy::ObjectValue>>(
        &base.static_value);
    if (obj == nullptr) {
      Refuse("line " + std::to_string(expr->line) + ": attribute '" + name +
             "' read on a static " +
             std::string(minipy::ValueTypeName(base.static_value)));
    }
    // Method lookup first (immutable by construction).
    const auto attr_it = (*obj)->attrs.find(name);
    if (attr_it == (*obj)->attrs.end()) {
      const auto method_it = (*obj)->cls()->methods.find(name);
      if (method_it == (*obj)->cls()->methods.end()) {
        Refuse("object has no attribute '" + name + "'");
      }
      auto bound = std::make_shared<minipy::FunctionValue>(*method_it->second);
      bound->self = base.static_value;
      return SymValue::Static(minipy::Value{std::move(bound)}, base.origin);
    }
    const minipy::Value& current = attr_it->second;
    const ValueProfile* profile = prof->attr_load(expr);
    if (std::holds_alternative<Tensor>(current)) {
      if (opt.tracing_semantics) {
        // Trace-local binding first, then bake the traced heap value —
        // silently wrong when the attribute mutates between iterations
        // (the LM failure of Fig. 6).
        const auto traced = trace_attrs.find({(*obj)->heap_id(), name});
        if (traced != trace_attrs.end()) return traced->second;
        Node* baked = frame.graph->AddNode(
            "Const", {}, {{"value", std::get<Tensor>(current)}});
        return SymValue::OfNode(
            {baked, 0}, frame.graph, std::get<Tensor>(current).dtype(),
            false,
            ShapeAssumption::Exact(std::get<Tensor>(current).shape()));
      }
      // Mutable tensor state: dynamic PyGetAttr with local-copy semantics.
      const NodeOutput ptr = ToNode(frame, base);
      Node* get = AddOp(frame, "PyGetAttr", {ptr}, {{"attr", name}});
      OrderStateRead(frame, (*obj)->heap_id(), StateKeyName(name), get);
      return WrapDynamicRead(frame, {get, 0}, profile,
                             "shape:attr" + std::to_string(expr->id),
                             std::get<Tensor>(current).dtype());
    }
    // Non-tensor attr: static capture with an entry check, unless the
    // profile shows it changes (then a dynamic scalar read).
    const bool scalar =
        std::holds_alternative<std::int64_t>(current) ||
        std::holds_alternative<double>(current) ||
        std::holds_alternative<bool>(current);
    const bool stable =
        profile == nullptr || profile->value_stable || !scalar;
    if (!stable && scalar) {
      const NodeOutput ptr = ToNode(frame, base);
      Node* get = AddOp(frame, "PyGetAttr", {ptr}, {{"attr", name}});
      OrderStateRead(frame, (*obj)->heap_id(), StateKeyName(name), get);
      const DType dt = std::holds_alternative<double>(current)
                           ? DType::kFloat32
                           : (std::holds_alternative<bool>(current)
                                  ? DType::kBool
                                  : DType::kInt64);
      return SymValue::OfNode({get, 0}, frame.graph, dt, false,
                              ShapeAssumption::Exact(Shape{}));
    }
    std::optional<ContextRef> origin;
    if (base.origin.has_value()) {
      origin = *base.origin;
      origin->steps.push_back(ContextRef::Step{true, name, 0});
      AddEntryCheck(*origin, current);
    }
    return SymValue::Static(current, origin);
  }

  // Dynamic pointer: PyGetAttr, with the result kind from the profile.
  if (base.IsNode() && base.is_pointer) {
    const ValueProfile* profile = prof->attr_load(expr);
    if (profile == nullptr || profile->kind == ObservedKind::kMixed) {
      Refuse("line " + std::to_string(expr->line) +
             ": attribute '" + name +
             "' of a dynamic object has no stable observed type");
    }
    const NodeOutput ptr = ToNode(frame, base);
    Node* get = AddOp(frame, "PyGetAttr", {ptr}, {{"attr", name}});
    // Dynamic-object reads are not ordered against static writes (the
    // models only read through dynamic pointers; see DESIGN.md).
    switch (profile->kind) {
      case ObservedKind::kTensor:
        return WrapDynamicRead(frame, {get, 0}, profile,
                               "shape:attr" + std::to_string(expr->id),
                               profile->dtype);
      case ObservedKind::kInt:
        return SymValue::OfNode({get, 0}, frame.graph, DType::kInt64, false,
                                ShapeAssumption::Exact(Shape{}));
      case ObservedKind::kBool:
        return SymValue::OfNode({get, 0}, frame.graph, DType::kBool, false,
                                ShapeAssumption::Exact(Shape{}));
      case ObservedKind::kFloat:
        return SymValue::OfNode({get, 0}, frame.graph, DType::kFloat32,
                                false, ShapeAssumption::Exact(Shape{}));
      case ObservedKind::kObject:
      case ObservedKind::kList:
      case ObservedKind::kDict:
      case ObservedKind::kNone:
        return SymValue::OfNode({get, 0}, frame.graph, DType::kInt64, true);
      default:
        Refuse("attribute '" + name +
               "' of a dynamic object has unconvertible type " +
               ObservedKindName(profile->kind));
    }
  }
  Refuse("line " + std::to_string(expr->line) +
         ": attribute read on a non-object value");
}

// Wraps a dynamic tensor read with a shape assertion when the profile pins
// dimensions (Fig. 4 specialisation).
SymValue GraphGenerator::Impl::WrapDynamicRead(Frame& frame, NodeOutput value,
                                               const ValueProfile* profile,
                                               const std::string& id,
                                               DType dtype) {
  ShapeAssumption shape = ShapeAssumption::Unknown();
  if (opt.specialize && !hints.DropShapes() && profile != nullptr &&
      profile->kind == ObservedKind::kTensor && AssumptionUsable(id) &&
      !profile->shape.is_unknown()) {
    shape = hints.RelaxShapesToRank() ? profile->shape.RelaxedToRank()
                                      : profile->shape;
    if (opt.insert_assertions) {
      std::vector<std::int64_t> dims;
      for (const auto& d : shape.dims()) {
        dims.push_back(d.has_value() ? *d : -1);
      }
      Node* check = AddOp(frame, "AssertShape", {value},
                          {{"dims", dims}, {"assumption", id}});
      out->runtime_assumptions.push_back(id);
      ++out->num_assert_ops;
      value = {check, 0};
    }
  }
  return SymValue::OfNode(value, frame.graph, dtype, false, shape);
}

SymValue GraphGenerator::Impl::EvalSubscript(const Expr* expr, Frame& frame,
                                             Scope& scope) {
  SymValue base = Eval(expr->left.get(), frame, scope);
  SymValue index = Eval(expr->right.get(), frame, scope);

  // Symbolic list with static index.
  if (base.IsList()) {
    const std::int64_t i = StaticInt(index, "list index");
    const auto n = static_cast<std::int64_t>(base.elements->size());
    std::int64_t idx = i < 0 ? i + n : i;
    if (idx < 0 || idx >= n) Refuse("static list index out of range");
    return (*base.elements)[static_cast<std::size_t>(idx)];
  }

  if (base.IsStatic()) {
    // Captured heap list with static index: element resolves through the
    // capture machinery (tensor elements become placeholders).
    if (const auto* list = std::get_if<std::shared_ptr<minipy::ListValue>>(
            &base.static_value)) {
      if (index.IsStatic()) {
        const std::int64_t i = StaticInt(index, "list index");
        const auto n = static_cast<std::int64_t>((*list)->items.size());
        std::int64_t idx = i < 0 ? i + n : i;
        if (idx < 0 || idx >= n) Refuse("heap list index out of range");
        if (!base.origin.has_value()) {
          Refuse("subscript of a heap list of unknown provenance");
        }
        ContextRef ref = *base.origin;
        ref.steps.push_back(ContextRef::Step{false, "", idx});
        return Capture(ref, (*list)->items[static_cast<std::size_t>(idx)],
                       prof->subscr_load(expr));
      }
      // Dynamic index into a heap list: PyGetSubscr.
      const NodeOutput ptr = ToNode(frame, base);
      const NodeOutput idx = ToNode(frame, index, DType::kInt64);
      Node* get = AddOp(frame, "PyGetSubscr", {ptr, idx});
      OrderStateRead(frame,
                     (*list)->heap_id(), "[]", get);
      const ValueProfile* profile = prof->subscr_load(expr);
      if (profile != nullptr && profile->kind == ObservedKind::kTensor) {
        return WrapDynamicRead(frame, {get, 0}, profile,
                               "shape:sub" + std::to_string(expr->id),
                               profile->dtype);
      }
      if (profile != nullptr && (profile->kind == ObservedKind::kObject ||
                                 profile->kind == ObservedKind::kList)) {
        return SymValue::OfNode({get, 0}, frame.graph, DType::kInt64, true);
      }
      if (profile != nullptr && profile->kind == ObservedKind::kInt) {
        return SymValue::OfNode({get, 0}, frame.graph, DType::kInt64, false,
                                ShapeAssumption::Exact(Shape{}));
      }
      Refuse("dynamic list subscript has no stable observed type");
    }
    Refuse("line " + std::to_string(expr->line) +
           ": subscript on unsupported static value");
  }

  // Tensor subscript: static index slices statically when the shape is
  // pinned; otherwise (or with a runtime index) a DynamicIndex op.
  if (base.IsNode() && !base.is_pointer) {
    if (index.IsStatic() && base.shape.IsExact()) {
      const std::int64_t i = StaticInt(index, "tensor index");
      return TensorIndexStatic(frame, base, i);
    }
    const NodeOutput src = ToNode(frame, base);
    const NodeOutput idx = ToNode(frame, index, DType::kInt64);
    Node* pick = AddOp(frame, "DynamicIndex", {src, idx});
    ShapeAssumption out_shape = ShapeAssumption::Unknown();
    if (!base.shape.is_unknown() && !base.shape.dims().empty()) {
      std::vector<std::optional<std::int64_t>> tail(
          base.shape.dims().begin() + 1, base.shape.dims().end());
      bool exact = true;
      std::vector<std::int64_t> dims;
      for (const auto& d : tail) {
        if (!d.has_value()) { exact = false; break; }
        dims.push_back(*d);
      }
      if (exact) out_shape = ShapeAssumption::Exact(Shape(dims));
    }
    return SymValue::OfNode({pick, 0}, frame.graph, base.dtype, false,
                            out_shape);
  }
  // Dynamic pointer subscript (e.g. tree children lists).
  if (base.IsNode() && base.is_pointer) {
    const NodeOutput ptr = ToNode(frame, base);
    const NodeOutput idx = ToNode(frame, index, DType::kInt64);
    Node* get = AddOp(frame, "PyGetSubscr", {ptr, idx});
    const ValueProfile* profile = prof->subscr_load(expr);
    if (profile != nullptr && profile->kind == ObservedKind::kTensor) {
      return WrapDynamicRead(frame, {get, 0}, profile,
                             "shape:sub" + std::to_string(expr->id),
                             profile->dtype);
    }
    if (profile != nullptr && (profile->kind == ObservedKind::kObject ||
                               profile->kind == ObservedKind::kList)) {
      return SymValue::OfNode({get, 0}, frame.graph, DType::kInt64, true);
    }
    Refuse("dynamic subscript has no stable observed type");
  }
  Refuse("line " + std::to_string(expr->line) + ": unsupported subscript");
}

// ===========================================================================
// Compilation driver
// ===========================================================================

std::unique_ptr<CompiledGraph> GraphGenerator::Impl::Compile(
    const std::shared_ptr<minipy::FunctionValue>& fn,
    std::span<const Value> args, bool training, double lr,
    const GraphGenerator::CompileHints& compile_hints) {
  // Reset per-compilation state.
  hints = compile_hints;
  variable_reads.clear();
  fn_cache.clear();
  fn_generating.clear();
  pending_recursive_sites.clear();
  fn_import_sources.clear();
  fn_result_dtype.clear();
  entry_check_seen.clear();
  trace_attrs.clear();
  fresh_counter = 0;
  depth = 0;
  budget = opt.max_unroll_total;

  auto artifact = std::make_unique<CompiledGraph>();
  artifact->library = std::make_shared<FunctionLibrary>();
  artifact->training = training;
  artifact->learning_rate = lr;
  artifact->unit_name = fn->qualified_name;
  artifact->despecialization_level = compile_hints.despecialization_level;
  out = artifact.get();

  Frame root_frame;
  root_frame.graph = &artifact->graph;
  root = &root_frame;
  root_args = args;

  fn_name_stack.clear();
  fn_name_stack.push_back(fn->qualified_name);
  FnNameGuard name_guard{&fn_name_stack};
  // Unit-level scope: captures, the gradient/update epilogue (lr constant,
  // ApplySGD, anchor NoOp) and anything else created outside a statement
  // attribute to the unit's def line. AddGradients re-scopes each gradient
  // node to its forward node's site.
  SourceSiteScope fn_scope(
      fn->qualified_name,
      fn->def != nullptr ? fn->def->line
                         : (fn->lambda != nullptr ? fn->lambda->line : 0));

  Scope scope;
  scope.closure = fn->closure;
  const std::vector<std::string>& params =
      fn->lambda != nullptr ? fn->lambda->params : fn->def->params;
  if (args.size() != params.size()) {
    Refuse("conversion-unit arity mismatch: got " +
           std::to_string(args.size()) + " args for " +
           std::to_string(params.size()) + " parameters");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    ContextRef ref;
    ref.arg_index = static_cast<int>(i);
    const ValueProfile* profile =
        fn->def != nullptr ? prof->argument(fn->def, static_cast<int>(i))
                           : nullptr;
    scope.vars[params[i]] = Capture(ref, args[i], profile);
  }

  SymValue result = SymValue::Static(minipy::NoneType{});
  if (fn->lambda != nullptr) {
    result = Eval(fn->lambda->left.get(), root_frame, scope);
  } else {
    try {
      ExecBlock(fn->def->body, root_frame, scope);
    } catch (GenReturn& ret) {
      result = std::move(ret.value);
    }
  }
  DType result_dt = DType::kFloat32;
  const NodeOutput result_node =
      ToNode(root_frame, result, std::nullopt, &result_dt);
  Node* result_identity =
      root_frame.graph->AddNode("Identity", {result_node});

  if (training) {
    if (result_dt != DType::kFloat32) {
      Refuse("training requires a float loss value");
    }
    std::vector<std::string> names;
    std::vector<NodeOutput> targets;
    for (const auto& [name, read] : variable_reads) {
      names.push_back(name);
      targets.push_back(read);
    }
    const std::vector<NodeOutput> grads = AddGradients(
        artifact->graph, *artifact->library, {result_identity, 0}, targets);
    const NodeOutput lr_const = artifact->graph.Constant(
        Tensor::Scalar(static_cast<float>(lr)), Fresh("lr"));
    for (std::size_t i = 0; i < names.size(); ++i) {
      Node* sgd = artifact->graph.AddNode("ApplySGD", {grads[i], lr_const},
                                          {{"var", names[i]}});
      // The parameter read must observe the pre-update value.
      sgd->AddControlInput(targets[i].node);
      root_frame.side_nodes.push_back(sgd);
    }
  }

  Node* anchor = root_frame.graph->AddNode("NoOp", {}, {}, 1, Fresh("anchor"));
  for (Node* side : root_frame.side_nodes) anchor->AddControlInput(side);
  artifact->fetches = {{result_identity, 0}, {anchor, 0}};

  if (opt.specialize) {
    OptimizeGraph(artifact->graph, artifact->fetches);
  }

  out = nullptr;
  root = nullptr;
  return artifact;
}

// ===========================================================================
// Public interface
// ===========================================================================

GraphGenerator::GraphGenerator(minipy::Interpreter* interp,
                               Profiler* profiler,
                               GeneratorOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->interp = interp;
  impl_->prof = profiler;
  impl_->opt = options;
}

GraphGenerator::~GraphGenerator() = default;

std::unique_ptr<CompiledGraph> GraphGenerator::Compile(
    const std::shared_ptr<minipy::FunctionValue>& fn,
    std::span<const minipy::Value> args, bool training, double lr,
    const CompileHints& hints) {
  return impl_->Compile(fn, args, training, lr, hints);
}

std::unique_ptr<CompiledGraph> GraphGenerator::Compile(
    const std::shared_ptr<minipy::FunctionValue>& fn,
    std::span<const minipy::Value> args, bool training, double lr) {
  return impl_->Compile(fn, args, training, lr, CompileHints{});
}

}  // namespace janus
