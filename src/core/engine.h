// The JANUS engine: orchestrates the execution model of Fig. 2.
//
// It attaches to a MiniPy interpreter as Profiler (observer) + Speculative
// Graph Executor (call interceptor + `optimize` builtin). Every conversion
// unit (a function passed to optimize(), or one marked via MarkRoot /
// the janus_function builtin) flows through:
//
//   profile imperatively (A) -> after `profile_threshold` calls, generate a
//   speculative graph (B) -> cache it -> execute the graph when its entry
//   assumptions hold (D) -> on entry mismatch: cache miss, imperative run,
//   regenerate with relaxed assumptions -> on AssertOp failure mid-graph:
//   discard staged state, fall back to the imperative executor (E), mark
//   the assumption so regeneration stops speculating on it -> programs the
//   generator refuses (C) stay imperative forever.
//
// Configuration presets reproduce the paper's comparison systems:
//   Imperative (TF Eager)        : enabled = false
//   JANUS                        : defaults
//   JANUS ablations (Fig. 7)     : generator.{speculative_unroll,specialize},
//                                  parallel_execution
//   Tracing (TF defun)           : TracingPreset() — single-trace conversion
//                                  with no assertions, no entry validation,
//                                  baked state reads and dropped state
//                                  writes, reproducing defun's silent
//                                  incorrectness on DCF/IF programs.
#ifndef JANUS_CORE_ENGINE_H_
#define JANUS_CORE_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "cache/specialization_cache.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/generator.h"
#include "core/host_state.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "runtime/executor.h"

namespace janus {

struct EngineOptions {
  bool enabled = true;
  GeneratorOptions generator;
  bool parallel_execution = true;  // +PARL
  // Executor pool size; <= 0 means auto (JANUS_NUM_THREADS env var, else 4).
  // See ResolveThreadPoolSize in common/thread_pool.h.
  int pool_threads = 0;
  int profile_threshold = 3;  // §3.1 footnote 3
  bool validate_entry_checks = true;
  // Compiled-graph cache configuration (src/cache). Engines share the
  // process-wide SpecializationCache::Global() by default, so concurrent
  // sessions compete for one byte/entry budget; `private_cache` gives this
  // engine its own instance built from `cache` that reports into the
  // engine's registry (tests, A/B benchmarks). The former
  // max_cached_graphs_per_unit knob is cache.max_entries_per_key.
  cache::CacheOptions cache = cache::CacheOptions::FromEnv();
  bool private_cache = false;
  // Calibrated per-op cost (ns) of the imperative executor's dispatch,
  // standing in for CPython + TF Eager overhead (the MiniPy interpreter is
  // a compiled tree-walker, orders of magnitude faster than CPython; the
  // benchmarks set this to reproduce the paper's framework-overhead
  // ratios). Applied at Attach().
  std::int64_t eager_dispatch_penalty_ns = 0;
  // Observability (src/obs): when non-empty, Attach() enables the global
  // span tracer and Detach() writes a chrome://tracing-compatible JSON
  // file to this path. The JANUS_TRACE=<path> environment variable
  // provides the same process-wide without engine involvement.
  std::string trace_path;
  // Sampled per-op kernel timers (histograms "kernel.<op>" in the global
  // metrics registry) even when the tracer is off.
  bool kernel_timing = false;
  // Plan-time fusion of elementwise regions into superops (runtime/fusion.h).
  // ANDed with the process-wide JANUS_FUSION kill switch; applies to every
  // plan this engine builds (main graphs and library functions).
  bool enable_fusion = true;
  // When in [0, 3], every generation uses this despecialization-ladder
  // level instead of the cache's churn-driven one. For tools/janus_verify
  // and tests that need plans at a specific ladder rung; -1 = off.
  int force_despecialization_level = -1;

  static EngineOptions ImperativePreset();
  static EngineOptions TracingPreset();
};

// Snapshot of the engine's decision-loop counters. The live counters are
// obs::Counter cells in the engine's metrics registry (atomic, safe
// against pool worker threads); stats() materializes this plain struct
// from them.
struct EngineStats {
  std::int64_t graph_executions = 0;
  std::int64_t imperative_executions = 0;
  std::int64_t graph_generations = 0;
  std::int64_t cache_misses = 0;
  std::int64_t assumption_failures = 0;
  std::int64_t fallbacks = 0;
  std::int64_t not_convertible = 0;
  std::int64_t graph_ops_executed = 0;
  // Execution-plan cache accounting (runtime/plan.h): builds happen at
  // generation time (once per compiled graph + library function); every
  // cached-graph run afterwards is hits-only — the compile-once/run-many
  // split the paper's amortization argument relies on.
  std::int64_t plan_builds = 0;
  std::int64_t plan_cache_hits = 0;
  // Tensor-allocator accounting across all graph executions (tensor/
  // buffer_pool.h): bytes requested, pool freelist hits/misses, and kernel
  // outputs written in place over a dead input's buffer.
  std::int64_t bytes_allocated = 0;
  std::int64_t pool_hits = 0;
  std::int64_t pool_misses = 0;
  std::int64_t in_place_reuses = 0;
  // Fused-region dispatch across all graph executions (runtime/fusion.h):
  // regions executed through the superop interpreter and the member ops
  // they covered (the latter also counted in graph_ops_executed).
  std::int64_t fused_regions = 0;
  std::int64_t fused_ops = 0;
};

class JanusEngine : public minipy::CallInterceptor {
 public:
  JanusEngine(minipy::Interpreter* interp, EngineOptions options);
  ~JanusEngine() override;

  // Installs the profiler, interceptor, and engine builtins (`optimize`,
  // `janus_function`) into the interpreter.
  void Attach();
  void Detach();

  // Marks a function as a conversion root: calls to it are intercepted.
  void MarkRoot(const std::shared_ptr<minipy::FunctionValue>& fn);

  // Training step on a conversion unit: the engine's `optimize`.
  minipy::Value RunTraining(const std::shared_ptr<minipy::FunctionValue>& fn,
                            double lr);

  // ---- CallInterceptor ----
  bool MaybeIntercept(const std::shared_ptr<minipy::FunctionValue>& fn,
                      std::span<minipy::Value> args,
                      minipy::Value* result) override;

  EngineStats stats() const;
  Profiler& profiler() { return profiler_; }
  const EngineOptions& options() const { return options_; }

  // The engine's own registry: the Fig. 2 decision-loop counters
  // ("engine.*") plus per-phase latency histograms ("engine.*_ns").
  // Sampled kernel timers live in obs::MetricsRegistry::Global().
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  // Human-readable observability summary: decision-loop counters, phase
  // latency histograms (p50/p95/p99), sampled per-op kernel timers, and
  // buffer-pool traffic.
  std::string StatsReport() const;

  // The graph cache this engine stores its specializations in (global by
  // default; see EngineOptions::private_cache).
  cache::SpecializationCache& graph_cache() { return *cache_; }

  // Visits every compiled unit currently resident in the engine's cache
  // (each variant of each conversion unit), passing the unit's qualified
  // name. For offline analysis (tools/janus_verify); touches cache LRU
  // state like any lookup. Do not call from inside a conversion.
  void ForEachCompiledUnit(
      const std::function<void(const std::string& name,
                               const CompiledGraph& unit)>& visit);

 private:
  struct CachedUnit;
  struct UnitState;

  // Live accumulation cells behind the EngineStats snapshot. Registry
  // counters so the one registry absorbs engine, executor (RunMetrics),
  // and allocator reporting.
  struct Counters {
    obs::Counter* graph_executions = nullptr;
    obs::Counter* imperative_executions = nullptr;
    obs::Counter* graph_generations = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* assumption_failures = nullptr;
    obs::Counter* fallbacks = nullptr;
    obs::Counter* not_convertible = nullptr;
    obs::Counter* graph_ops_executed = nullptr;
    obs::Counter* plan_builds = nullptr;
    obs::Counter* plan_cache_hits = nullptr;
    obs::Counter* bytes_allocated = nullptr;
    obs::Counter* pool_hits = nullptr;
    obs::Counter* pool_misses = nullptr;
    obs::Counter* in_place_reuses = nullptr;
    obs::Counter* fused_regions = nullptr;
    obs::Counter* fused_ops = nullptr;
  };

  // Identity of a conversion unit: its def or lambda AST node.
  static const void* UnitKey(const minipy::FunctionValue& fn);
  // Variant discriminator within a unit (training mode + learning rate).
  static std::uint64_t VariantKey(bool training, double lr);

  minipy::Value Run(const std::shared_ptr<minipy::FunctionValue>& fn,
                    std::vector<minipy::Value> args, bool training,
                    double lr);
  minipy::Value RunImperative(const std::shared_ptr<minipy::FunctionValue>& fn,
                              std::vector<minipy::Value> args, bool training,
                              double lr);
  // RunImperative wrapped in a trace span named `phase` ("profile",
  // "imperative", "fallback") and the engine.imperative_ns histogram.
  minipy::Value RunImperativePhase(
      const char* phase, const std::shared_ptr<minipy::FunctionValue>& fn,
      std::vector<minipy::Value> args, bool training, double lr,
      std::string detail = {});
  // First entry-guard that rejected a cached entry, rendered for the
  // speculation ledger: which assumption, what the graph assumed, what the
  // live context held.
  struct EntryMismatch {
    std::string assumption;
    std::string assumed;
    std::string observed;
  };
  bool EntryValid(const CachedUnit& entry,
                  const std::shared_ptr<minipy::FunctionValue>& fn,
                  std::span<const minipy::Value> args,
                  EntryMismatch* mismatch = nullptr);
  // When `run_record` is non-null (ledger enabled), fills execute_ns, ops,
  // and bytes for the caller's flight-recorder record.
  minipy::Value ExecuteCompiled(CachedUnit& entry,
                                std::span<const minipy::Value> args,
                                obs::LedgerRecord* run_record = nullptr);

  minipy::Interpreter* interp_;
  EngineOptions options_;
  Profiler profiler_;
  GraphGenerator generator_;
  InterpreterHostState host_state_;
  std::unique_ptr<ThreadPool> pool_;
  obs::MetricsRegistry metrics_;
  Counters counters_;
  obs::Histogram* imperative_ns_ = nullptr;
  obs::Histogram* graph_execution_ns_ = nullptr;
  obs::Histogram* generation_ns_ = nullptr;
  obs::Histogram* validation_ns_ = nullptr;
  std::unique_ptr<cache::SpecializationCache> owned_cache_;
  cache::SpecializationCache* cache_ = nullptr;
  // Guards the units_ map plus each unit's name/variants against the
  // introspection thread (StatsReport via /statusz); the remaining
  // UnitState fields stay engine-thread-only.
  mutable Mutex units_mu_;
  std::map<const void*, std::unique_ptr<UnitState>> units_
      GUARDED_BY(units_mu_);
  std::map<const void*, bool> roots_;
  bool attached_ = false;
  bool in_imperative_run_ = false;
  bool trace_was_enabled_ = false;  // tracer state to restore at Detach()
  int status_source_id_ = 0;  // IntrospectionHub registration (0 = none)
};

}  // namespace janus

#endif  // JANUS_CORE_ENGINE_H_
