#include "core/engine.h"

#include <bit>
#include <cstdio>

#include "common/logging.h"
#include "frontend/builtins.h"
#include "obs/trace.h"
#include "tensor/buffer_pool.h"
#include "tensor/ops.h"

namespace janus {

using minipy::FunctionValue;
using minipy::Value;

EngineOptions EngineOptions::ImperativePreset() {
  EngineOptions options;
  options.enabled = false;
  return options;
}

EngineOptions EngineOptions::TracingPreset() {
  EngineOptions options;
  options.profile_threshold = 1;
  options.validate_entry_checks = false;
  options.generator.insert_assertions = false;
  options.generator.tracing_semantics = true;
  return options;
}

// The SpecializationCache payload: the compiled artifact plus the closure
// it was generated against. The closure identity check is mandatory on
// every use — even for promoted entries — because a different closure is a
// different program, not a drifted assumption.
struct JanusEngine::CachedUnit {
  std::unique_ptr<CompiledGraph> compiled;
  std::shared_ptr<minipy::Environment> closure;
};

struct JanusEngine::UnitState {
  std::int64_t calls = 0;
  bool imperative_only = false;
  int failed_generations = 0;
  std::int64_t next_generation_attempt = 0;
  std::string refusal_reason;
};

JanusEngine::JanusEngine(minipy::Interpreter* interp, EngineOptions options)
    : interp_(interp),
      options_(options),
      generator_(interp, &profiler_, options.generator),
      host_state_(interp) {
  if (options_.enabled && options_.parallel_execution) {
    pool_ = std::make_unique<ThreadPool>(
        ResolveThreadPoolSize(options_.pool_threads));
  }
  counters_.graph_executions = &metrics_.GetCounter("engine.graph_executions");
  counters_.imperative_executions =
      &metrics_.GetCounter("engine.imperative_executions");
  counters_.graph_generations =
      &metrics_.GetCounter("engine.graph_generations");
  counters_.cache_misses = &metrics_.GetCounter("engine.cache_misses");
  counters_.assumption_failures =
      &metrics_.GetCounter("engine.assumption_failures");
  counters_.fallbacks = &metrics_.GetCounter("engine.fallbacks");
  counters_.not_convertible = &metrics_.GetCounter("engine.not_convertible");
  counters_.graph_ops_executed =
      &metrics_.GetCounter("engine.graph_ops_executed");
  counters_.plan_builds = &metrics_.GetCounter("engine.plan_builds");
  counters_.plan_cache_hits = &metrics_.GetCounter("engine.plan_cache_hits");
  counters_.bytes_allocated = &metrics_.GetCounter("engine.bytes_allocated");
  counters_.pool_hits = &metrics_.GetCounter("engine.pool_hits");
  counters_.pool_misses = &metrics_.GetCounter("engine.pool_misses");
  counters_.in_place_reuses = &metrics_.GetCounter("engine.in_place_reuses");
  imperative_ns_ = &metrics_.GetHistogram("engine.imperative_ns");
  graph_execution_ns_ = &metrics_.GetHistogram("engine.graph_execution_ns");
  generation_ns_ = &metrics_.GetHistogram("engine.generation_ns");
  validation_ns_ = &metrics_.GetHistogram("engine.validation_ns");
  if (options_.private_cache) {
    owned_cache_ = std::make_unique<cache::SpecializationCache>(
        options_.cache, &metrics_);
    cache_ = owned_cache_.get();
  } else {
    cache_ = &cache::SpecializationCache::Global();
  }
}

JanusEngine::~JanusEngine() {
  if (attached_) Detach();
  // Without the purge, a later allocation reusing this engine's (or a dead
  // AST's) address could alias our keys in the shared global cache.
  cache_->PurgeOwner(this);
}

void JanusEngine::Attach() {
  JANUS_EXPECTS(!attached_);
  attached_ = true;
  if (!options_.trace_path.empty()) {
    trace_was_enabled_ = obs::Trace::Enabled();
    obs::Trace::Enable();
  }
  if (options_.kernel_timing) obs::SetKernelTimingEnabled(true);
  interp_->set_observer(&profiler_);
  interp_->set_interceptor(this);
  interp_->eager().set_dispatch_penalty_ns(options_.eager_dispatch_penalty_ns);
  // Engine-aware training entry point, replacing the imperative builtin.
  interp_->RegisterBuiltin(
      "optimize", [this](minipy::Interpreter& in,
                         std::span<Value> args) -> Value {
        if (args.empty() || args.size() > 2) {
          throw minipy::MiniPyError("optimize(): wrong number of arguments");
        }
        const auto* fn = std::get_if<std::shared_ptr<FunctionValue>>(&args[0]);
        if (fn == nullptr) {
          throw minipy::MiniPyError("optimize(): expected a function");
        }
        double lr = 0.01;
        if (args.size() == 2) {
          if (const auto* d = std::get_if<double>(&args[1])) {
            lr = *d;
          } else if (const auto* i = std::get_if<std::int64_t>(&args[1])) {
            lr = static_cast<double>(*i);
          } else {
            throw minipy::MiniPyError("optimize(): bad learning rate");
          }
        }
        (void)in;
        return RunTraining(*fn, lr);
      });
  // Marks a function for graph conversion on ordinary (inference) calls.
  interp_->RegisterBuiltin(
      "janus_function", [this](minipy::Interpreter&,
                               std::span<Value> args) -> Value {
        if (args.size() != 1) {
          throw minipy::MiniPyError("janus_function(): expected a function");
        }
        const auto* fn = std::get_if<std::shared_ptr<FunctionValue>>(&args[0]);
        if (fn == nullptr) {
          throw minipy::MiniPyError("janus_function(): expected a function");
        }
        MarkRoot(*fn);
        return args[0];
      });
}

void JanusEngine::Detach() {
  attached_ = false;
  interp_->set_observer(nullptr);
  interp_->set_interceptor(nullptr);
  if (!options_.trace_path.empty()) {
    obs::Trace::WriteChromeTrace(options_.trace_path);
    if (!trace_was_enabled_) obs::Trace::Disable();
  }
}

const void* JanusEngine::UnitKey(const FunctionValue& fn) {
  return fn.def != nullptr ? static_cast<const void*>(fn.def)
                           : static_cast<const void*>(fn.lambda);
}

std::uint64_t JanusEngine::VariantKey(bool training, double lr) {
  // Inference is variant 0; training variants fold the learning-rate bits
  // in (shifted past the sign bit, which is always 0 for a real lr) and
  // set bit 0 so training-with-lr-0 cannot collide with inference.
  if (!training) return 0;
  return (std::bit_cast<std::uint64_t>(lr) << 1) | 1u;
}

void JanusEngine::MarkRoot(const std::shared_ptr<FunctionValue>& fn) {
  roots_[UnitKey(*fn)] = true;
}

bool JanusEngine::MaybeIntercept(const std::shared_ptr<FunctionValue>& fn,
                                 std::span<Value> args, Value* result) {
  if (!options_.enabled || in_imperative_run_) return false;
  const auto it = roots_.find(UnitKey(*fn));
  if (it == roots_.end() || !it->second) return false;
  std::vector<Value> full_args;
  // Bound receiver becomes argument 0, matching CallFunction's convention.
  if (!std::holds_alternative<minipy::NoneType>(fn->self)) {
    full_args.push_back(fn->self);
  }
  full_args.insert(full_args.end(), args.begin(), args.end());
  *result = Run(fn, std::move(full_args), /*training=*/false, 0.0);
  return true;
}

minipy::Value JanusEngine::RunTraining(
    const std::shared_ptr<FunctionValue>& fn, double lr) {
  std::vector<Value> args;
  if (!std::holds_alternative<minipy::NoneType>(fn->self)) {
    args.push_back(fn->self);
  }
  return Run(fn, std::move(args), /*training=*/true, lr);
}

minipy::Value JanusEngine::Run(const std::shared_ptr<FunctionValue>& fn,
                               std::vector<Value> args, bool training,
                               double lr) {
  if (!options_.enabled) {
    return RunImperativePhase("imperative", fn, std::move(args), training,
                              lr);
  }
  const void* key = UnitKey(*fn);
  auto& unit = units_[key];
  if (unit == nullptr) unit = std::make_unique<UnitState>();
  ++unit->calls;

  if (unit->imperative_only) {
    counters_.imperative_executions->Increment();
    return RunImperativePhase("imperative", fn, std::move(args), training,
                              lr, unit->refusal_reason);
  }

  // (D) Try cached graphs whose entry assumptions hold (Fig. 2 ①). The
  // SpecializationCache owns the candidate population (budgets, eviction,
  // churn accounting); the engine owns validation and execution.
  const cache::SpecializationCache::Key cache_key{this, key,
                                                  VariantKey(training, lr)};
  const auto candidates = cache_->Lookup(cache_key);
  for (const auto& entry_ref : candidates) {
    auto& entry = *static_cast<CachedUnit*>(entry_ref->payload.get());
    // The closure check is never skipped: a different closure is a
    // different program, not a guard that can be promoted away.
    if (entry.closure != fn->closure) continue;
    const cache::ValidationDecision decision = cache_->BeginUse(entry_ref);
    bool valid = true;
    if (decision != cache::ValidationDecision::kSkip) {
      const std::int64_t check_start_ns = obs::Trace::NowNs();
      valid = EntryValid(entry, fn, args);
      validation_ns_->Record(obs::Trace::NowNs() - check_start_ns);
    }
    if (!valid) {
      if (decision == cache::ValidationDecision::kAudit) {
        // The entry's inputs drifted while its guards ran unchecked:
        // demote it (and, via the epoch, every other promoted entry).
        cache_->OnAuditMismatch(cache_key, entry_ref);
      }
      continue;
    }
    try {
      Value result = ExecuteCompiled(entry, args);
      counters_.graph_executions->Increment();
      cache_->OnRunSuccess(cache_key, entry_ref);
      return result;
    } catch (const AssumptionFailed& failure) {
      // (E) Runtime assumption failure: nothing was committed; mark the
      // assumption so regeneration relaxes it, drop this graph, and fall
      // back to the imperative executor (§3.2).
      counters_.assumption_failures->Increment();
      counters_.fallbacks->Increment();
      obs::Trace::RecordInstant("assumption_failure", "engine",
                                failure.assumption_id());
      profiler_.MarkAssumptionFailed(failure.assumption_id());
      cache_->OnEntryFailure(cache_key, entry_ref);
      counters_.imperative_executions->Increment();
      return RunImperativePhase("fallback", fn, std::move(args), training,
                                lr, failure.assumption_id());
    } catch (const Error& error) {
      // A kernel crashed on data that violates an assumption before the
      // guarding AssertOp ran (assertions execute in parallel with the
      // network, §6.3.1). The run committed nothing, so dropping the graph
      // and falling back is safe; re-profiling relaxes the assumption.
      counters_.fallbacks->Increment();
      JANUS_LOG(kInfo) << "speculative graph failed (" << error.what()
                       << "); falling back";
      cache_->OnEntryFailure(cache_key, entry_ref);
      counters_.imperative_executions->Increment();
      return RunImperativePhase("fallback", fn, std::move(args), training,
                                lr, error.what());
    }
  }
  if (!candidates.empty()) {
    counters_.cache_misses->Increment();
    cache_->OnMiss(cache_key);
  }

  // (B) Generate once enough profile information exists (§3.1). After a
  // refusal, retry with exponential backoff — later profiles may relax the
  // assumption that made the program unconvertible.
  if (unit->calls > options_.profile_threshold &&
      unit->calls >= unit->next_generation_attempt) {
    try {
      // The cache's churn ladder decides how specialized this regeneration
      // may be: a key that keeps failing or being evicted-and-rebuilt
      // descends the Fig. 4 lattice instead of thrashing at full
      // specialization.
      GraphGenerator::CompileHints hints;
      hints.despecialization_level = cache_->DespecializationLevel(cache_key);
      std::unique_ptr<CompiledGraph> compiled;
      std::int64_t build_cost_ns = 0;
      {
        const obs::TraceScope span("graph_generation", "engine");
        const std::int64_t start_ns = obs::Trace::NowNs();
        compiled = generator_.Compile(fn, args, training, lr, hints);
        // Pay the scheduling cost once, here, with the rest of the
        // conversion cost: compile execution plans for the graph and every
        // library function so no ExecuteCompiled ever plans on the hot
        // path.
        counters_.plan_builds->Add(compiled->BuildPlans());
        build_cost_ns = obs::Trace::NowNs() - start_ns;
        generation_ns_->Record(build_cost_ns);
      }
      counters_.graph_generations->Increment();
      auto cached = std::make_shared<CachedUnit>();
      cached->compiled = std::move(compiled);
      cached->closure = fn->closure;
      const std::int64_t bytes = cached->compiled->EstimateBytes();
      // Eviction weight: what this artifact cost to build (generation +
      // plan compilation) against what it occupies.
      const auto entry_ref =
          cache_->Insert(cache_key, cached, bytes, build_cost_ns);
      CachedUnit& fresh = *cached;
      if (EntryValid(fresh, fn, args)) {
        try {
          Value result = ExecuteCompiled(fresh, args);
          counters_.graph_executions->Increment();
          cache_->OnRunSuccess(cache_key, entry_ref);
          return result;
        } catch (const AssumptionFailed& failure) {
          counters_.assumption_failures->Increment();
          counters_.fallbacks->Increment();
          obs::Trace::RecordInstant("assumption_failure", "engine",
                                    failure.assumption_id());
          profiler_.MarkAssumptionFailed(failure.assumption_id());
          cache_->OnEntryFailure(cache_key, entry_ref);
        } catch (const Error& error) {
          counters_.fallbacks->Increment();
          JANUS_LOG(kInfo) << "fresh speculative graph failed ("
                           << error.what() << "); falling back";
          cache_->OnEntryFailure(cache_key, entry_ref);
        }
      }
    } catch (const NotConvertible& refusal) {
      // (C) Outside the convertible subset (§4.3). Pin to the imperative
      // executor after repeated refusals.
      counters_.not_convertible->Increment();
      obs::Trace::RecordInstant("not_convertible", "engine", refusal.what());
      ++unit->failed_generations;
      unit->refusal_reason = refusal.what();
      unit->next_generation_attempt = unit->calls * 2;
      if (unit->failed_generations >= 4) unit->imperative_only = true;
      JANUS_LOG(kInfo) << "not convertible: " << refusal.what();
    }
  }
  counters_.imperative_executions->Increment();
  // Pre-conversion runs are the profiling phase of Fig. 2 (A).
  return RunImperativePhase("profile", fn, std::move(args), training, lr);
}

minipy::Value JanusEngine::RunImperativePhase(
    const char* phase, const std::shared_ptr<FunctionValue>& fn,
    std::vector<Value> args, bool training, double lr, std::string detail) {
  obs::TraceScope span(phase, "engine");
  span.set_detail(std::move(detail));
  const std::int64_t start_ns = obs::Trace::NowNs();
  Value result = RunImperative(fn, std::move(args), training, lr);
  imperative_ns_->Record(obs::Trace::NowNs() - start_ns);
  return result;
}

minipy::Value JanusEngine::RunImperative(
    const std::shared_ptr<FunctionValue>& fn, std::vector<Value> args,
    bool training, double lr) {
  // Reentrancy guard: nested calls run plainly (and keep being profiled).
  const bool saved = in_imperative_run_;
  in_imperative_run_ = true;
  struct Restore {
    bool* flag;
    bool value;
    ~Restore() { *flag = value; }
  } restore{&in_imperative_run_, saved};

  // Strip the bound receiver again: CallFunction re-inserts it.
  std::vector<Value> call_args = std::move(args);
  if (!std::holds_alternative<minipy::NoneType>(fn->self) &&
      !call_args.empty()) {
    call_args.erase(call_args.begin());
  }
  if (!training) {
    return interp_->CallFunction(fn, std::move(call_args));
  }
  // Imperative training step (the eager-tape path of the default builtin).
  interp_->eager().StartTape();
  const Value loss_value = interp_->CallFunction(fn, std::move(call_args));
  const Tensor loss = interp_->ToTensor(loss_value);
  const auto grads = interp_->eager().GradientsAndStopTape(loss);
  for (const auto& [name, grad] : grads) {
    const Tensor current = interp_->variables()->Read(name);
    interp_->variables()->Assign(
        name, ops::Sub(current, ops::Mul(Tensor::Scalar(
                                             static_cast<float>(lr)),
                                         grad)));
  }
  return loss;
}

bool JanusEngine::EntryValid(const CachedUnit& entry,
                             const std::shared_ptr<FunctionValue>& fn,
                             std::span<const Value> args) {
  if (entry.closure != fn->closure) return false;
  if (!options_.validate_entry_checks) return true;
  try {
    for (const EntryCheck& check : entry.compiled->entry_checks) {
      if (!EntryValueMatches(check.ref.Resolve(args), check.expected)) {
        return false;
      }
    }
    for (const CaptureSpec& capture : entry.compiled->captures) {
      const Value value = capture.ref.Resolve(args);
      // Every validation is also a profile observation, so shape/constant
      // assumptions keep relaxing along the Fig. 4 lattice.
      profiler_.ObserveContext(capture.ref.ToString(), value);
      switch (capture.kind) {
        case ObservedKind::kTensor: {
          const auto* tensor = std::get_if<Tensor>(&value);
          if (tensor == nullptr || tensor->dtype() != capture.dtype ||
              !capture.shape.Matches(tensor->shape())) {
            return false;
          }
          break;
        }
        case ObservedKind::kInt:
          if (!std::holds_alternative<std::int64_t>(value)) return false;
          break;
        case ObservedKind::kFloat:
          if (!std::holds_alternative<double>(value)) return false;
          break;
        case ObservedKind::kBool:
          if (!std::holds_alternative<bool>(value)) return false;
          break;
        case ObservedKind::kObject:
          if (!std::holds_alternative<
                  std::shared_ptr<minipy::ObjectValue>>(value)) {
            return false;
          }
          break;
        case ObservedKind::kList:
          if (!std::holds_alternative<
                  std::shared_ptr<minipy::ListValue>>(value)) {
            return false;
          }
          break;
        case ObservedKind::kDict:
          if (!std::holds_alternative<
                  std::shared_ptr<minipy::DictValue>>(value)) {
            return false;
          }
          break;
        default:
          return false;
      }
    }
  } catch (const Error&) {
    return false;  // ref no longer resolves: context changed shape
  }
  return true;
}

minipy::Value JanusEngine::ExecuteCompiled(CachedUnit& entry,
                                           std::span<const Value> args) {
  obs::TraceScope span("graph_execution", "engine");
  const std::int64_t start_ns = obs::Trace::NowNs();
  std::map<std::string, Tensor> feeds;
  for (const CaptureSpec& capture : entry.compiled->captures) {
    feeds[capture.placeholder_name] =
        EncodeValueAsTensor(capture.ref.Resolve(args));
  }
  ExecutorOptions exec_options;
  exec_options.parallel = options_.parallel_execution && pool_ != nullptr;
  exec_options.pool = pool_.get();
  Executor executor(entry.compiled->library.get(), interp_->variables(),
                    &host_state_, interp_->rng(), exec_options);
  if (entry.compiled->plan == nullptr) {
    // Defensive: graphs injected into the cache without going through the
    // generator (tests) still get a one-time plan build.
    counters_.plan_builds->Add(entry.compiled->BuildPlans());
  }
  RunMetrics metrics;
  std::vector<Tensor> results =
      executor.Run(*entry.compiled->plan, feeds, &metrics);
  counters_.graph_ops_executed->Add(metrics.ops_executed);
  counters_.plan_builds->Add(metrics.plan_builds);
  counters_.bytes_allocated->Add(metrics.bytes_allocated);
  counters_.pool_hits->Add(metrics.pool_hits);
  counters_.pool_misses->Add(metrics.pool_misses);
  counters_.in_place_reuses->Add(metrics.in_place_reuses);
  // The prebuilt main-graph plan counts as a hit, as do nested
  // Invoke/While dispatches through each function's plan cache.
  counters_.plan_cache_hits->Add(1 + metrics.plan_cache_hits);
  span.set_arg("ops", metrics.ops_executed);
  graph_execution_ns_->Record(obs::Trace::NowNs() - start_ns);
  return results.at(0);
}

EngineStats JanusEngine::stats() const {
  EngineStats s;
  s.graph_executions = counters_.graph_executions->Value();
  s.imperative_executions = counters_.imperative_executions->Value();
  s.graph_generations = counters_.graph_generations->Value();
  s.cache_misses = counters_.cache_misses->Value();
  s.assumption_failures = counters_.assumption_failures->Value();
  s.fallbacks = counters_.fallbacks->Value();
  s.not_convertible = counters_.not_convertible->Value();
  s.graph_ops_executed = counters_.graph_ops_executed->Value();
  s.plan_builds = counters_.plan_builds->Value();
  s.plan_cache_hits = counters_.plan_cache_hits->Value();
  s.bytes_allocated = counters_.bytes_allocated->Value();
  s.pool_hits = counters_.pool_hits->Value();
  s.pool_misses = counters_.pool_misses->Value();
  s.in_place_reuses = counters_.in_place_reuses->Value();
  return s;
}

std::string JanusEngine::StatsReport() const {
  std::string out = "=== JANUS engine observability report ===\n";
  out += metrics_.TextReport();
  // Sampled kernel timers accumulate in the process-wide registry (they
  // are recorded by the executors, which have no engine reference).
  std::string kernels;
  obs::MetricsRegistry& global = obs::MetricsRegistry::Global();
  for (const std::string& name : global.HistogramNames()) {
    if (name.rfind("kernel.", 0) != 0) continue;
    const obs::Histogram* histogram = global.FindHistogram(name);
    if (histogram != nullptr) {
      obs::AppendHistogramLine(kernels, name, *histogram);
    }
  }
  if (!kernels.empty()) {
    out += "--- sampled kernel timers (ns) ---\n";
    out += kernels;
  }
  out += "--- specialization cache ---\n";
  out += cache_->TextReport();
  const BufferPool::Stats pool = BufferPool::Global().Snapshot();
  out += "--- buffer pool (process-wide) ---\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "allocations=%lld hits=%lld misses=%lld bytes=%lld "
                "retained=%lld in_place=%lld\n",
                static_cast<long long>(pool.allocations),
                static_cast<long long>(pool.pool_hits),
                static_cast<long long>(pool.pool_misses),
                static_cast<long long>(pool.bytes_allocated),
                static_cast<long long>(pool.retained_bytes),
                static_cast<long long>(pool.in_place_reuses));
  out += line;
  return out;
}

}  // namespace janus
