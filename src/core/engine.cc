#include "core/engine.h"

#include <bit>
#include <cstdio>
#include <cstring>
#include <set>

#include "cache/fused_kernel_cache.h"
#include "common/logging.h"
#include "frontend/builtins.h"
#include "obs/http_export.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "runtime/fusion.h"
#include "tensor/buffer_pool.h"
#include "tensor/ops.h"
#include "verify/plan_verifier.h"

namespace janus {

using minipy::FunctionValue;
using minipy::Value;

namespace {

// Renders a live context value for mismatch attribution (short, symbolic —
// never tensor contents).
std::string DescribeValue(const Value& value) {
  struct Visitor {
    std::string operator()(const minipy::NoneType&) { return "None"; }
    std::string operator()(bool b) { return b ? "True" : "False"; }
    std::string operator()(std::int64_t i) { return std::to_string(i); }
    std::string operator()(double d) { return std::to_string(d); }
    std::string operator()(const std::string& s) {
      return "'" + (s.size() > 40 ? s.substr(0, 40) + "..." : s) + "'";
    }
    std::string operator()(const Tensor& t) {
      return std::string("Tensor<") + DTypeName(t.dtype()) + ", " +
             t.shape().ToString() + ">";
    }
    std::string operator()(const minipy::VariableRef& v) {
      return "Variable('" + v.name + "')";
    }
    std::string operator()(const std::shared_ptr<minipy::ListValue>& l) {
      return "list@" + std::to_string(l->heap_id()) + " (len " +
             std::to_string(l->items.size()) + ")";
    }
    std::string operator()(const std::shared_ptr<minipy::DictValue>& d) {
      return "dict@" + std::to_string(d->heap_id());
    }
    std::string operator()(const std::shared_ptr<minipy::ObjectValue>& o) {
      return "object@" + std::to_string(o->heap_id());
    }
    std::string operator()(const std::shared_ptr<minipy::FunctionValue>& f) {
      return "function " + f->qualified_name;
    }
    std::string operator()(const std::shared_ptr<minipy::ClassValue>& c) {
      return "class " + c->name;
    }
    std::string operator()(const std::shared_ptr<minipy::BuiltinFunction>&) {
      return "builtin";
    }
  };
  return std::visit(Visitor{}, value);
}

// What a CaptureSpec speculates about its context slot, rendered on the
// same vocabulary as DescribeValue so assumed/observed line up.
std::string DescribeCaptureAssumption(const CaptureSpec& capture) {
  if (capture.kind == ObservedKind::kTensor) {
    return std::string("Tensor<") + DTypeName(capture.dtype) + ", " +
           capture.shape.ToString() + ">";
  }
  return ObservedKindName(capture.kind);
}

}  // namespace

EngineOptions EngineOptions::ImperativePreset() {
  EngineOptions options;
  options.enabled = false;
  return options;
}

EngineOptions EngineOptions::TracingPreset() {
  EngineOptions options;
  options.profile_threshold = 1;
  options.validate_entry_checks = false;
  options.generator.insert_assertions = false;
  options.generator.tracing_semantics = true;
  return options;
}

// The SpecializationCache payload: the compiled artifact plus the closure
// it was generated against. The closure identity check is mandatory on
// every use — even for promoted entries — because a different closure is a
// different program, not a drifted assumption.
struct JanusEngine::CachedUnit {
  std::unique_ptr<CompiledGraph> compiled;
  std::shared_ptr<minipy::Environment> closure;
};

struct JanusEngine::UnitState {
  std::int64_t calls = 0;
  bool imperative_only = false;
  int failed_generations = 0;
  std::int64_t next_generation_attempt = 0;
  std::string refusal_reason;
  // Guarded by units_mu_ (read by the introspection thread in
  // StatsReport); everything above is engine-thread-only.
  std::string name;
  std::set<std::uint64_t> variants;
};

JanusEngine::JanusEngine(minipy::Interpreter* interp, EngineOptions options)
    : interp_(interp),
      options_(options),
      generator_(interp, &profiler_, options.generator),
      host_state_(interp) {
  if (options_.enabled && options_.parallel_execution) {
    pool_ = std::make_unique<ThreadPool>(
        ResolveThreadPoolSize(options_.pool_threads));
  }
  counters_.graph_executions = &metrics_.GetCounter("engine.graph_executions");
  counters_.imperative_executions =
      &metrics_.GetCounter("engine.imperative_executions");
  counters_.graph_generations =
      &metrics_.GetCounter("engine.graph_generations");
  counters_.cache_misses = &metrics_.GetCounter("engine.cache_misses");
  counters_.assumption_failures =
      &metrics_.GetCounter("engine.assumption_failures");
  counters_.fallbacks = &metrics_.GetCounter("engine.fallbacks");
  counters_.not_convertible = &metrics_.GetCounter("engine.not_convertible");
  counters_.graph_ops_executed =
      &metrics_.GetCounter("engine.graph_ops_executed");
  counters_.plan_builds = &metrics_.GetCounter("engine.plan_builds");
  counters_.plan_cache_hits = &metrics_.GetCounter("engine.plan_cache_hits");
  counters_.bytes_allocated = &metrics_.GetCounter("engine.bytes_allocated");
  counters_.pool_hits = &metrics_.GetCounter("engine.pool_hits");
  counters_.pool_misses = &metrics_.GetCounter("engine.pool_misses");
  counters_.in_place_reuses = &metrics_.GetCounter("engine.in_place_reuses");
  counters_.fused_regions = &metrics_.GetCounter("engine.fused_regions");
  counters_.fused_ops = &metrics_.GetCounter("engine.fused_ops");
  imperative_ns_ = &metrics_.GetHistogram("engine.imperative_ns");
  graph_execution_ns_ = &metrics_.GetHistogram("engine.graph_execution_ns");
  generation_ns_ = &metrics_.GetHistogram("engine.generation_ns");
  validation_ns_ = &metrics_.GetHistogram("engine.validation_ns");
  if (options_.private_cache) {
    owned_cache_ = std::make_unique<cache::SpecializationCache>(
        options_.cache, &metrics_);
    cache_ = owned_cache_.get();
  } else {
    cache_ = &cache::SpecializationCache::Global();
  }
}

JanusEngine::~JanusEngine() {
  if (attached_) Detach();
  // Without the purge, a later allocation reusing this engine's (or a dead
  // AST's) address could alias our keys in the shared global cache.
  cache_->PurgeOwner(this);
}

void JanusEngine::Attach() {
  JANUS_EXPECTS(!attached_);
  attached_ = true;
  // Post-build plan verification (src/verify): the hook is process-wide and
  // idempotent; whether it actually checks is gated by JANUS_VERIFY
  // (default: debug builds only).
  verify::InstallPlanVerifier();
  if (!options_.trace_path.empty()) {
    trace_was_enabled_ = obs::Trace::Enabled();
    obs::Trace::Enable();
  }
  if (options_.kernel_timing) obs::SetKernelTimingEnabled(true);
  // Publish this engine to the live-introspection endpoints: its private
  // registry feeds /metrics, its StatsReport() feeds /statusz. Detach()
  // retires both so a scrape after teardown still sees the final totals.
  obs::IntrospectionHub::Global().RegisterMetricsSource(&metrics_);
  status_source_id_ = obs::IntrospectionHub::Global().RegisterStatusSource(
      "engine " + obs::PointerToHex(this), [this] { return StatsReport(); });
  interp_->set_observer(&profiler_);
  interp_->set_interceptor(this);
  interp_->eager().set_dispatch_penalty_ns(options_.eager_dispatch_penalty_ns);
  // Engine-aware training entry point, replacing the imperative builtin.
  interp_->RegisterBuiltin(
      "optimize", [this](minipy::Interpreter& in,
                         std::span<Value> args) -> Value {
        if (args.empty() || args.size() > 2) {
          throw minipy::MiniPyError("optimize(): wrong number of arguments");
        }
        const auto* fn = std::get_if<std::shared_ptr<FunctionValue>>(&args[0]);
        if (fn == nullptr) {
          throw minipy::MiniPyError("optimize(): expected a function");
        }
        double lr = 0.01;
        if (args.size() == 2) {
          if (const auto* d = std::get_if<double>(&args[1])) {
            lr = *d;
          } else if (const auto* i = std::get_if<std::int64_t>(&args[1])) {
            lr = static_cast<double>(*i);
          } else {
            throw minipy::MiniPyError("optimize(): bad learning rate");
          }
        }
        (void)in;
        return RunTraining(*fn, lr);
      });
  // Marks a function for graph conversion on ordinary (inference) calls.
  interp_->RegisterBuiltin(
      "janus_function", [this](minipy::Interpreter&,
                               std::span<Value> args) -> Value {
        if (args.size() != 1) {
          throw minipy::MiniPyError("janus_function(): expected a function");
        }
        const auto* fn = std::get_if<std::shared_ptr<FunctionValue>>(&args[0]);
        if (fn == nullptr) {
          throw minipy::MiniPyError("janus_function(): expected a function");
        }
        MarkRoot(*fn);
        return args[0];
      });
}

void JanusEngine::Detach() {
  attached_ = false;
  // Retirement must happen while the engine is still alive: the hub
  // captures a final StatsReport() and folds the registry's counts.
  if (status_source_id_ != 0) {
    obs::IntrospectionHub::Global().UnregisterStatusSource(status_source_id_);
    status_source_id_ = 0;
  }
  obs::IntrospectionHub::Global().UnregisterMetricsSource(&metrics_);
  interp_->set_observer(nullptr);
  interp_->set_interceptor(nullptr);
  if (!options_.trace_path.empty()) {
    obs::Trace::WriteChromeTrace(options_.trace_path);
    if (!trace_was_enabled_) obs::Trace::Disable();
  }
}

const void* JanusEngine::UnitKey(const FunctionValue& fn) {
  return fn.def != nullptr ? static_cast<const void*>(fn.def)
                           : static_cast<const void*>(fn.lambda);
}

std::uint64_t JanusEngine::VariantKey(bool training, double lr) {
  // Inference is variant 0; training variants fold the learning-rate bits
  // in (shifted past the sign bit, which is always 0 for a real lr) and
  // set bit 0 so training-with-lr-0 cannot collide with inference.
  if (!training) return 0;
  return (std::bit_cast<std::uint64_t>(lr) << 1) | 1u;
}

void JanusEngine::MarkRoot(const std::shared_ptr<FunctionValue>& fn) {
  roots_[UnitKey(*fn)] = true;
}

bool JanusEngine::MaybeIntercept(const std::shared_ptr<FunctionValue>& fn,
                                 std::span<Value> args, Value* result) {
  if (!options_.enabled || in_imperative_run_) return false;
  const auto it = roots_.find(UnitKey(*fn));
  if (it == roots_.end() || !it->second) return false;
  std::vector<Value> full_args;
  // Bound receiver becomes argument 0, matching CallFunction's convention.
  if (!std::holds_alternative<minipy::NoneType>(fn->self)) {
    full_args.push_back(fn->self);
  }
  full_args.insert(full_args.end(), args.begin(), args.end());
  *result = Run(fn, std::move(full_args), /*training=*/false, 0.0);
  return true;
}

minipy::Value JanusEngine::RunTraining(
    const std::shared_ptr<FunctionValue>& fn, double lr) {
  std::vector<Value> args;
  if (!std::holds_alternative<minipy::NoneType>(fn->self)) {
    args.push_back(fn->self);
  }
  return Run(fn, std::move(args), /*training=*/true, lr);
}

minipy::Value JanusEngine::Run(const std::shared_ptr<FunctionValue>& fn,
                               std::vector<Value> args, bool training,
                               double lr) {
  if (!options_.enabled) {
    return RunImperativePhase("imperative", fn, std::move(args), training,
                              lr);
  }
  const void* key = UnitKey(*fn);
  UnitState* unit = nullptr;
  {
    const MutexLock lock(units_mu_);
    auto& slot = units_[key];
    if (slot == nullptr) slot = std::make_unique<UnitState>();
    unit = slot.get();
    if (unit->name.empty()) unit->name = fn->qualified_name;
    unit->variants.insert(VariantKey(training, lr));
  }
  ++unit->calls;

  // Flight-recorder context for every record this run emits. The disabled
  // path is the one relaxed load in Ledger::Enabled().
  const bool ledger_on = obs::Ledger::Enabled();
  const auto NewRecord = [&](const char* kind) {
    obs::LedgerRecord record;
    record.kind = kind;
    record.unit = obs::PointerToHex(key);
    record.name = fn->qualified_name;
    record.variant = VariantKey(training, lr);
    return record;
  };

  if (unit->imperative_only) {
    counters_.imperative_executions->Increment();
    return RunImperativePhase("imperative", fn, std::move(args), training,
                              lr, unit->refusal_reason);
  }

  // (D) Try cached graphs whose entry assumptions hold (Fig. 2 ①). The
  // SpecializationCache owns the candidate population (budgets, eviction,
  // churn accounting); the engine owns validation and execution.
  const cache::SpecializationCache::Key cache_key{this, key,
                                                  VariantKey(training, lr)};
  const auto candidates = cache_->Lookup(cache_key);
  for (const auto& entry_ref : candidates) {
    auto& entry = *static_cast<CachedUnit*>(entry_ref->payload.get());
    // The closure check is never skipped: a different closure is a
    // different program, not a guard that can be promoted away.
    if (entry.closure != fn->closure) continue;
    const cache::ValidationDecision decision = cache_->BeginUse(entry_ref);
    bool valid = true;
    std::int64_t check_ns = -1;
    EntryMismatch mismatch;
    if (decision != cache::ValidationDecision::kSkip) {
      const std::int64_t check_start_ns = obs::Trace::NowNs();
      valid = EntryValid(entry, fn, args, ledger_on ? &mismatch : nullptr);
      check_ns = obs::Trace::NowNs() - check_start_ns;
      validation_ns_->Record(check_ns);
      if (entry.compiled->plan != nullptr &&
          entry.compiled->plan->profile() != nullptr) {
        // Guard cost charged to the unit it protects, so /profilez shows
        // validation alongside execution per unit.
        entry.compiled->plan->profile()->AddValidationNs(check_ns);
      }
    }
    if (!valid) {
      if (ledger_on) {
        auto record = NewRecord("entry_mismatch");
        record.level = entry.compiled->despecialization_level;
        record.cache_hit = 0;
        record.assumption = mismatch.assumption;
        record.assumed = mismatch.assumed;
        record.observed = mismatch.observed;
        record.validate_ns = check_ns;
        obs::Ledger::Global().Record(std::move(record));
      }
      if (decision == cache::ValidationDecision::kAudit) {
        // The entry's inputs drifted while its guards ran unchecked:
        // demote it (and, via the epoch, every other promoted entry).
        cache_->OnAuditMismatch(cache_key, entry_ref);
      }
      continue;
    }
    try {
      // Only materialize the record (PointerToHex + name copies) when the
      // ledger is on; the disabled path stays one relaxed load and a branch.
      obs::LedgerRecord run_record;
      if (ledger_on) run_record = NewRecord("run");
      Value result =
          ExecuteCompiled(entry, args, ledger_on ? &run_record : nullptr);
      counters_.graph_executions->Increment();
      cache_->OnRunSuccess(cache_key, entry_ref);
      if (ledger_on) {
        run_record.level = entry.compiled->despecialization_level;
        run_record.cache_hit = 1;
        run_record.validate_ns = check_ns;
        obs::Ledger::Global().Record(std::move(run_record));
      }
      return result;
    } catch (const AssumptionFailed& failure) {
      // (E) Runtime assumption failure: nothing was committed; mark the
      // assumption so regeneration relaxes it, drop this graph, and fall
      // back to the imperative executor (§3.2).
      counters_.assumption_failures->Increment();
      counters_.fallbacks->Increment();
      obs::Trace::RecordInstant("assumption_failure", "engine",
                                failure.assumption_id());
      if (ledger_on) {
        auto record = NewRecord("fallback");
        record.level = entry.compiled->despecialization_level;
        record.cache_hit = 1;
        record.assumption = failure.assumption_id();
        record.assumed = failure.assumed();
        record.observed = failure.observed();
        record.validate_ns = check_ns;
        obs::Ledger::Global().Record(std::move(record));
      }
      profiler_.MarkAssumptionFailed(failure.assumption_id());
      cache_->OnEntryFailure(cache_key, entry_ref);
      counters_.imperative_executions->Increment();
      return RunImperativePhase("fallback", fn, std::move(args), training,
                                lr, failure.assumption_id());
    } catch (const Error& error) {
      // A kernel crashed on data that violates an assumption before the
      // guarding AssertOp ran (assertions execute in parallel with the
      // network, §6.3.1). The run committed nothing, so dropping the graph
      // and falling back is safe; re-profiling relaxes the assumption.
      counters_.fallbacks->Increment();
      JANUS_LOG(kInfo) << "speculative graph failed (" << error.what()
                       << "); falling back";
      if (ledger_on) {
        auto record = NewRecord("fallback");
        record.level = entry.compiled->despecialization_level;
        record.cache_hit = 1;
        record.detail = error.what();
        obs::Ledger::Global().Record(std::move(record));
      }
      cache_->OnEntryFailure(cache_key, entry_ref);
      counters_.imperative_executions->Increment();
      return RunImperativePhase("fallback", fn, std::move(args), training,
                                lr, error.what());
    }
  }
  if (!candidates.empty()) {
    counters_.cache_misses->Increment();
    cache_->OnMiss(cache_key);
    if (ledger_on) {
      auto record = NewRecord("cache_miss");
      record.cache_hit = 0;
      record.detail =
          std::to_string(candidates.size()) + " candidates rejected";
      obs::Ledger::Global().Record(std::move(record));
    }
  }

  // (B) Generate once enough profile information exists (§3.1). After a
  // refusal, retry with exponential backoff — later profiles may relax the
  // assumption that made the program unconvertible.
  if (unit->calls > options_.profile_threshold &&
      unit->calls >= unit->next_generation_attempt) {
    try {
      // The cache's churn ladder decides how specialized this regeneration
      // may be: a key that keeps failing or being evicted-and-rebuilt
      // descends the Fig. 4 lattice instead of thrashing at full
      // specialization.
      GraphGenerator::CompileHints hints;
      hints.despecialization_level =
          options_.force_despecialization_level >= 0
              ? options_.force_despecialization_level
              : cache_->DespecializationLevel(cache_key);
      std::unique_ptr<CompiledGraph> compiled;
      std::int64_t build_cost_ns = 0;
      {
        const obs::TraceScope span("graph_generation", "engine");
        const std::int64_t start_ns = obs::Trace::NowNs();
        compiled = generator_.Compile(fn, args, training, lr, hints);
        // Pay the scheduling cost once, here, with the rest of the
        // conversion cost: compile execution plans for the graph and every
        // library function so no ExecuteCompiled ever plans on the hot
        // path.
        counters_.plan_builds->Add(
            compiled->BuildPlans(options_.enable_fusion));
        build_cost_ns = obs::Trace::NowNs() - start_ns;
        generation_ns_->Record(build_cost_ns);
        if (compiled->plan != nullptr && compiled->plan->profile() != nullptr) {
          compiled->plan->profile()->SetGenerationNs(build_cost_ns);
        }
      }
      counters_.graph_generations->Increment();
      auto cached = std::make_shared<CachedUnit>();
      cached->compiled = std::move(compiled);
      cached->closure = fn->closure;
      const std::int64_t bytes = cached->compiled->EstimateBytes();
      if (ledger_on) {
        auto record = NewRecord("generation");
        record.level = hints.despecialization_level;
        record.generate_ns = build_cost_ns;
        record.bytes = bytes;
        record.detail =
            std::to_string(cached->compiled->num_assert_ops) +
            " asserts, " +
            std::to_string(cached->compiled->entry_checks.size()) +
            " entry checks, " +
            std::to_string(cached->compiled->captures.size()) + " captures";
        obs::Ledger::Global().Record(std::move(record));
      }
      // Eviction weight: what this artifact cost to build (generation +
      // plan compilation) against what it occupies.
      const auto entry_ref =
          cache_->Insert(cache_key, cached, bytes, build_cost_ns);
      CachedUnit& fresh = *cached;
      if (EntryValid(fresh, fn, args)) {
        try {
          obs::LedgerRecord run_record;
          if (ledger_on) run_record = NewRecord("run");
          Value result = ExecuteCompiled(fresh, args,
                                         ledger_on ? &run_record : nullptr);
          counters_.graph_executions->Increment();
          cache_->OnRunSuccess(cache_key, entry_ref);
          if (ledger_on) {
            run_record.level = fresh.compiled->despecialization_level;
            run_record.cache_hit = 0;  // first run of a fresh graph
            obs::Ledger::Global().Record(std::move(run_record));
          }
          return result;
        } catch (const AssumptionFailed& failure) {
          counters_.assumption_failures->Increment();
          counters_.fallbacks->Increment();
          obs::Trace::RecordInstant("assumption_failure", "engine",
                                    failure.assumption_id());
          if (ledger_on) {
            auto record = NewRecord("fallback");
            record.level = fresh.compiled->despecialization_level;
            record.cache_hit = 0;
            record.assumption = failure.assumption_id();
            record.assumed = failure.assumed();
            record.observed = failure.observed();
            obs::Ledger::Global().Record(std::move(record));
          }
          profiler_.MarkAssumptionFailed(failure.assumption_id());
          cache_->OnEntryFailure(cache_key, entry_ref);
        } catch (const Error& error) {
          counters_.fallbacks->Increment();
          JANUS_LOG(kInfo) << "fresh speculative graph failed ("
                           << error.what() << "); falling back";
          if (ledger_on) {
            auto record = NewRecord("fallback");
            record.level = fresh.compiled->despecialization_level;
            record.cache_hit = 0;
            record.detail = error.what();
            obs::Ledger::Global().Record(std::move(record));
          }
          cache_->OnEntryFailure(cache_key, entry_ref);
        }
      }
    } catch (const NotConvertible& refusal) {
      // (C) Outside the convertible subset (§4.3). Pin to the imperative
      // executor after repeated refusals.
      counters_.not_convertible->Increment();
      obs::Trace::RecordInstant("not_convertible", "engine", refusal.what());
      ++unit->failed_generations;
      unit->refusal_reason = refusal.what();
      unit->next_generation_attempt = unit->calls * 2;
      if (unit->failed_generations >= 4) unit->imperative_only = true;
      if (ledger_on) {
        auto record = NewRecord("refusal");
        record.detail = refusal.what();
        if (unit->imperative_only) {
          record.detail += " (unit pinned imperative)";
        }
        obs::Ledger::Global().Record(std::move(record));
      }
      JANUS_LOG(kInfo) << "not convertible: " << refusal.what();
    }
  }
  counters_.imperative_executions->Increment();
  // Pre-conversion runs are the profiling phase of Fig. 2 (A).
  return RunImperativePhase("profile", fn, std::move(args), training, lr);
}

minipy::Value JanusEngine::RunImperativePhase(
    const char* phase, const std::shared_ptr<FunctionValue>& fn,
    std::vector<Value> args, bool training, double lr, std::string detail) {
  obs::TraceScope span(phase, "engine");
  const std::int64_t start_ns = obs::Trace::NowNs();
  Value result = RunImperative(fn, std::move(args), training, lr);
  const std::int64_t duration_ns = obs::Trace::NowNs() - start_ns;
  imperative_ns_->Record(duration_ns);
  // Fallback runs are attributed at the catch site (with the failing
  // assumption); profile/imperative runs get their phase record here.
  if (obs::Ledger::Enabled() && std::strcmp(phase, "fallback") != 0) {
    obs::LedgerRecord record;
    record.kind = phase;
    record.unit = obs::PointerToHex(UnitKey(*fn));
    record.name = fn->qualified_name;
    record.variant = VariantKey(training, lr);
    record.cache_hit = 0;
    record.execute_ns = duration_ns;
    record.detail = detail;
    obs::Ledger::Global().Record(std::move(record));
  }
  span.set_detail(std::move(detail));
  return result;
}

minipy::Value JanusEngine::RunImperative(
    const std::shared_ptr<FunctionValue>& fn, std::vector<Value> args,
    bool training, double lr) {
  // Reentrancy guard: nested calls run plainly (and keep being profiled).
  const bool saved = in_imperative_run_;
  in_imperative_run_ = true;
  struct Restore {
    bool* flag;
    bool value;
    ~Restore() { *flag = value; }
  } restore{&in_imperative_run_, saved};

  // Strip the bound receiver again: CallFunction re-inserts it.
  std::vector<Value> call_args = std::move(args);
  if (!std::holds_alternative<minipy::NoneType>(fn->self) &&
      !call_args.empty()) {
    call_args.erase(call_args.begin());
  }
  if (!training) {
    return interp_->CallFunction(fn, std::move(call_args));
  }
  // Imperative training step (the eager-tape path of the default builtin).
  interp_->eager().StartTape();
  const Value loss_value = interp_->CallFunction(fn, std::move(call_args));
  const Tensor loss = interp_->ToTensor(loss_value);
  const auto grads = interp_->eager().GradientsAndStopTape(loss);
  for (const auto& [name, grad] : grads) {
    const Tensor current = interp_->variables()->Read(name);
    interp_->variables()->Assign(
        name, ops::Sub(current, ops::Mul(Tensor::Scalar(
                                             static_cast<float>(lr)),
                                         grad)));
  }
  return loss;
}

bool JanusEngine::EntryValid(const CachedUnit& entry,
                             const std::shared_ptr<FunctionValue>& fn,
                             std::span<const Value> args,
                             EntryMismatch* mismatch) {
  // Renders the first failing guard for the flight recorder; the rendering
  // work only happens on the (already slow) rejection path, and only when
  // the caller wants attribution.
  const auto report = [mismatch](const std::string& assumption,
                                 std::string assumed, std::string observed) {
    if (mismatch == nullptr) return;
    mismatch->assumption = assumption;
    mismatch->assumed = std::move(assumed);
    mismatch->observed = std::move(observed);
  };
  if (entry.closure != fn->closure) {
    report("closure", "generation-time closure", "different closure");
    return false;
  }
  if (!options_.validate_entry_checks) return true;
  const CaptureSpec* current_capture = nullptr;
  try {
    for (const EntryCheck& check : entry.compiled->entry_checks) {
      if (!EntryValueMatches(check.ref.Resolve(args), check.expected)) {
        report(check.assumption_id, DescribeValue(check.expected),
               DescribeValue(check.ref.Resolve(args)));
        return false;
      }
    }
    for (const CaptureSpec& capture : entry.compiled->captures) {
      current_capture = &capture;
      const Value value = capture.ref.Resolve(args);
      // Every validation is also a profile observation, so shape/constant
      // assumptions keep relaxing along the Fig. 4 lattice.
      profiler_.ObserveContext(capture.ref.ToString(), value);
      bool ok = true;
      switch (capture.kind) {
        case ObservedKind::kTensor: {
          const auto* tensor = std::get_if<Tensor>(&value);
          ok = tensor != nullptr && tensor->dtype() == capture.dtype &&
               capture.shape.Matches(tensor->shape());
          break;
        }
        case ObservedKind::kInt:
          ok = std::holds_alternative<std::int64_t>(value);
          break;
        case ObservedKind::kFloat:
          ok = std::holds_alternative<double>(value);
          break;
        case ObservedKind::kBool:
          ok = std::holds_alternative<bool>(value);
          break;
        case ObservedKind::kObject:
          ok = std::holds_alternative<std::shared_ptr<minipy::ObjectValue>>(
              value);
          break;
        case ObservedKind::kList:
          ok = std::holds_alternative<std::shared_ptr<minipy::ListValue>>(
              value);
          break;
        case ObservedKind::kDict:
          ok = std::holds_alternative<std::shared_ptr<minipy::DictValue>>(
              value);
          break;
        default:
          ok = false;
      }
      if (!ok) {
        report(capture.assumption_id, DescribeCaptureAssumption(capture),
               DescribeValue(value));
        return false;
      }
    }
  } catch (const Error& error) {
    // Ref no longer resolves: the surrounding context changed shape.
    report(current_capture != nullptr ? current_capture->assumption_id
                                      : std::string("context"),
           "resolvable context reference", error.what());
    return false;
  }
  return true;
}

minipy::Value JanusEngine::ExecuteCompiled(CachedUnit& entry,
                                           std::span<const Value> args,
                                           obs::LedgerRecord* run_record) {
  obs::TraceScope span("graph_execution", "engine");
  const std::int64_t start_ns = obs::Trace::NowNs();
  std::map<std::string, Tensor> feeds;
  for (const CaptureSpec& capture : entry.compiled->captures) {
    feeds[capture.placeholder_name] =
        EncodeValueAsTensor(capture.ref.Resolve(args));
  }
  ExecutorOptions exec_options;
  exec_options.parallel = options_.parallel_execution && pool_ != nullptr;
  exec_options.pool = pool_.get();
  Executor executor(entry.compiled->library.get(), interp_->variables(),
                    &host_state_, interp_->rng(), exec_options);
  if (entry.compiled->plan == nullptr) {
    // Defensive: graphs injected into the cache without going through the
    // generator (tests) still get a one-time plan build.
    counters_.plan_builds->Add(
        entry.compiled->BuildPlans(options_.enable_fusion));
  }
  RunMetrics metrics;
  std::vector<Tensor> results =
      executor.Run(*entry.compiled->plan, feeds, &metrics);
  counters_.graph_ops_executed->Add(metrics.ops_executed);
  counters_.plan_builds->Add(metrics.plan_builds);
  counters_.bytes_allocated->Add(metrics.bytes_allocated);
  counters_.pool_hits->Add(metrics.pool_hits);
  counters_.pool_misses->Add(metrics.pool_misses);
  counters_.in_place_reuses->Add(metrics.in_place_reuses);
  counters_.fused_regions->Add(metrics.fused_regions);
  counters_.fused_ops->Add(metrics.fused_ops);
  // The prebuilt main-graph plan counts as a hit, as do nested
  // Invoke/While dispatches through each function's plan cache.
  counters_.plan_cache_hits->Add(1 + metrics.plan_cache_hits);
  span.set_arg("ops", metrics.ops_executed);
  const std::int64_t duration_ns = obs::Trace::NowNs() - start_ns;
  graph_execution_ns_->Record(duration_ns);
  if (run_record != nullptr) {
    run_record->execute_ns = duration_ns;
    run_record->ops = metrics.ops_executed;
    run_record->bytes = metrics.bytes_allocated;
    run_record->fused_regions = metrics.fused_regions;
    run_record->fused_ops = metrics.fused_ops;
  }
  return results.at(0);
}

EngineStats JanusEngine::stats() const {
  EngineStats s;
  s.graph_executions = counters_.graph_executions->Value();
  s.imperative_executions = counters_.imperative_executions->Value();
  s.graph_generations = counters_.graph_generations->Value();
  s.cache_misses = counters_.cache_misses->Value();
  s.assumption_failures = counters_.assumption_failures->Value();
  s.fallbacks = counters_.fallbacks->Value();
  s.not_convertible = counters_.not_convertible->Value();
  s.graph_ops_executed = counters_.graph_ops_executed->Value();
  s.plan_builds = counters_.plan_builds->Value();
  s.plan_cache_hits = counters_.plan_cache_hits->Value();
  s.bytes_allocated = counters_.bytes_allocated->Value();
  s.pool_hits = counters_.pool_hits->Value();
  s.pool_misses = counters_.pool_misses->Value();
  s.in_place_reuses = counters_.in_place_reuses->Value();
  s.fused_regions = counters_.fused_regions->Value();
  s.fused_ops = counters_.fused_ops->Value();
  return s;
}

std::string JanusEngine::StatsReport() const {
  std::string out = "=== JANUS engine observability report ===\n";
  out += metrics_.TextReport();
  // Sampled kernel timers accumulate in the process-wide registry (they
  // are recorded by the executors, which have no engine reference).
  std::string kernels;
  obs::MetricsRegistry& global = obs::MetricsRegistry::Global();
  for (const std::string& name : global.HistogramNames()) {
    if (name.rfind("kernel.", 0) != 0) continue;
    const obs::Histogram* histogram = global.FindHistogram(name);
    if (histogram != nullptr) {
      obs::AppendHistogramLine(kernels, name, *histogram);
    }
  }
  if (!kernels.empty()) {
    out += "--- sampled kernel timers (ns) ---\n";
    out += kernels;
  }
  out += "--- specialization cache ---\n";
  out += cache_->TextReport();
  // Per-unit ladder/promotion state: which rung of the Fig. 4 lattice each
  // conversion unit sits on, and how its candidates are doing. /statusz
  // reads this from the HTTP thread, hence the units_mu_ snapshot.
  {
    std::vector<std::pair<const void*,
                          std::pair<std::string, std::vector<std::uint64_t>>>>
        snapshot;
    {
      const MutexLock lock(units_mu_);
      for (const auto& [key, unit] : units_) {
        snapshot.emplace_back(
            key, std::make_pair(unit->name,
                                std::vector<std::uint64_t>(
                                    unit->variants.begin(),
                                    unit->variants.end())));
      }
    }
    std::string ladder;
    for (const auto& [key, named] : snapshot) {
      for (const std::uint64_t variant : named.second) {
        const cache::KeyStats ks = cache_->Stats({this, key, variant});
        if (ks.insertions == 0 && ks.misses == 0 && ks.hits == 0) continue;
        std::string variant_text = "inference";
        if ((variant & 1u) != 0) {
          char lr_text[32];
          std::snprintf(lr_text, sizeof(lr_text), "lr=%g",
                        std::bit_cast<double>(variant >> 1));
          variant_text = std::string("training ") + lr_text;
        }
        char line[320];
        std::snprintf(
            line, sizeof(line),
            "%s [%s]: ladder_level=%d resident=%lld promoted=%lld "
            "hits=%lld misses=%lld failures=%lld churn=%lld "
            "promotions=%lld\n",
            named.first.empty() ? obs::PointerToHex(key).c_str()
                                : named.first.c_str(),
            variant_text.c_str(), ks.ladder_level,
            static_cast<long long>(ks.resident_entries),
            static_cast<long long>(ks.promoted_entries),
            static_cast<long long>(ks.hits),
            static_cast<long long>(ks.misses),
            static_cast<long long>(ks.failures),
            static_cast<long long>(ks.churn_events),
            static_cast<long long>(ks.promotions));
        ladder += line;
      }
    }
    if (!ladder.empty()) {
      out += "--- per-unit despecialization ladder ---\n";
      out += ladder;
    }
  }
  {
    // Fused-region dispatch: how much of this engine's graph work ran
    // through superops, plus the process-wide specialized-program cache.
    const std::int64_t regions = counters_.fused_regions->Value();
    const std::int64_t fused_ops = counters_.fused_ops->Value();
    const cache::FusedKernelCache::Stats fks =
        cache::FusedKernelCache::Global().Snapshot();
    out += "--- fusion ---\n";
    char fusion_line[320];
    std::snprintf(fusion_line, sizeof(fusion_line),
                  "fused_regions=%lld fused_ops=%lld enabled=%d\n"
                  "fused_kernel_cache(process-wide): entries=%lld hits=%lld "
                  "misses=%lld inserts=%lld evictions=%lld\n",
                  static_cast<long long>(regions),
                  static_cast<long long>(fused_ops),
                  options_.enable_fusion && fusion::GloballyEnabled() ? 1 : 0,
                  static_cast<long long>(fks.entries),
                  static_cast<long long>(fks.hits),
                  static_cast<long long>(fks.misses),
                  static_cast<long long>(fks.inserts),
                  static_cast<long long>(fks.evictions));
    out += fusion_line;
  }
  const BufferPool::Stats pool = BufferPool::Global().Snapshot();
  out += "--- buffer pool (process-wide) ---\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "allocations=%lld hits=%lld misses=%lld bytes=%lld "
                "retained=%lld in_place=%lld\n",
                static_cast<long long>(pool.allocations),
                static_cast<long long>(pool.pool_hits),
                static_cast<long long>(pool.pool_misses),
                static_cast<long long>(pool.bytes_allocated),
                static_cast<long long>(pool.retained_bytes),
                static_cast<long long>(pool.in_place_reuses));
  out += line;
  return out;
}

void JanusEngine::ForEachCompiledUnit(
    const std::function<void(const std::string& name,
                             const CompiledGraph& unit)>& visit) {
  // Snapshot keys under the lock, then walk the cache unlocked: Lookup
  // takes the cache mutex and the visitor may be arbitrarily slow.
  std::vector<std::pair<const void*,
                        std::pair<std::string, std::vector<std::uint64_t>>>>
      snapshot;
  {
    const MutexLock lock(units_mu_);
    for (const auto& [key, unit] : units_) {
      snapshot.emplace_back(
          key, std::make_pair(unit->name, std::vector<std::uint64_t>(
                                              unit->variants.begin(),
                                              unit->variants.end())));
    }
  }
  for (const auto& [key, named] : snapshot) {
    for (const std::uint64_t variant : named.second) {
      for (const auto& entry_ref : cache_->Lookup({this, key, variant})) {
        const auto& cached =
            *static_cast<const CachedUnit*>(entry_ref->payload.get());
        if (cached.compiled != nullptr) {
          visit(named.first, *cached.compiled);
        }
      }
    }
  }
}

}  // namespace janus
