#include "core/profiler.h"

#include "obs/ledger.h"

namespace janus {

using minipy::Value;

void ObserveValue(ValueProfile& profile, const Value& value) {
  using minipy::ListValue;
  using minipy::DictValue;
  using minipy::ObjectValue;
  using minipy::FunctionValue;
  using minipy::ClassValue;
  using minipy::BuiltinFunction;

  ObservedKind kind = ObservedKind::kNone;
  DType dtype = DType::kFloat32;
  const Shape* shape = nullptr;
  double numeric = 0.0;
  std::string str;
  std::int64_t heap = 0;

  if (std::holds_alternative<minipy::NoneType>(value)) {
    kind = ObservedKind::kNone;
  } else if (const auto* b = std::get_if<bool>(&value)) {
    kind = ObservedKind::kBool;
    numeric = *b ? 1.0 : 0.0;
  } else if (const auto* i = std::get_if<std::int64_t>(&value)) {
    kind = ObservedKind::kInt;
    numeric = static_cast<double>(*i);
  } else if (const auto* d = std::get_if<double>(&value)) {
    kind = ObservedKind::kFloat;
    numeric = *d;
  } else if (const auto* s = std::get_if<std::string>(&value)) {
    kind = ObservedKind::kString;
    str = *s;
  } else if (const auto* t = std::get_if<Tensor>(&value)) {
    kind = ObservedKind::kTensor;
    dtype = t->dtype();
    shape = &t->shape();
  } else if (const auto* v = std::get_if<minipy::VariableRef>(&value)) {
    kind = ObservedKind::kVariable;
    str = v->name;
  } else if (const auto* l =
                 std::get_if<std::shared_ptr<ListValue>>(&value)) {
    kind = ObservedKind::kList;
    heap = (*l)->heap_id();
    numeric = static_cast<double>((*l)->items.size());
  } else if (const auto* dd =
                 std::get_if<std::shared_ptr<DictValue>>(&value)) {
    kind = ObservedKind::kDict;
    heap = (*dd)->heap_id();
  } else if (const auto* o =
                 std::get_if<std::shared_ptr<ObjectValue>>(&value)) {
    kind = ObservedKind::kObject;
    heap = (*o)->heap_id();
  } else if (const auto* f =
                 std::get_if<std::shared_ptr<FunctionValue>>(&value)) {
    kind = ObservedKind::kFunction;
    heap = reinterpret_cast<std::intptr_t>((*f)->def != nullptr
                                               ? static_cast<const void*>((*f)->def)
                                               : static_cast<const void*>((*f)->lambda));
  } else if (std::holds_alternative<std::shared_ptr<ClassValue>>(value)) {
    kind = ObservedKind::kClass;
  } else if (const auto* bf =
                 std::get_if<std::shared_ptr<BuiltinFunction>>(&value)) {
    kind = ObservedKind::kBuiltin;
    str = (*bf)->name;
  }
  profile.Observe(kind, dtype, shape, numeric, str, heap);
}

void Profiler::OnBranch(const minipy::Stmt* stmt, bool taken) {
  auto& profile = branches_[stmt];
  if (taken) {
    ++profile.taken;
  } else {
    ++profile.not_taken;
  }
  ++total_observations_;
}

void Profiler::OnLoopFinished(const minipy::Stmt* stmt,
                              std::int64_t trip_count) {
  loops_[stmt].Observe(trip_count);
  ++total_observations_;
}

void Profiler::OnCall(const minipy::Expr* call, const Value& callee) {
  ObserveValue(calls_[call], callee);
  ++total_observations_;
}

void Profiler::OnFunctionEntry(const minipy::Stmt* def,
                               std::span<const Value> args) {
  ++function_calls_[def];
  for (std::size_t i = 0; i < args.size(); ++i) {
    ObserveValue(arguments_[{def, static_cast<int>(i)}], args[i]);
  }
  ++total_observations_;
}

void Profiler::OnAttrLoad(const minipy::Expr* attr, const Value& /*object*/,
                          const Value& result) {
  ObserveValue(attr_loads_[attr], result);
  ++total_observations_;
}

void Profiler::OnSubscrLoad(const minipy::Expr* subscr,
                            const Value& /*object*/, const Value& result) {
  ObserveValue(subscr_loads_[subscr], result);
  ++total_observations_;
}

const BranchProfile* Profiler::branch(const minipy::Stmt* stmt) const {
  const auto it = branches_.find(stmt);
  return it == branches_.end() ? nullptr : &it->second;
}

const LoopProfile* Profiler::loop(const minipy::Stmt* stmt) const {
  const auto it = loops_.find(stmt);
  return it == loops_.end() ? nullptr : &it->second;
}

const ValueProfile* Profiler::call_target(const minipy::Expr* call) const {
  const auto it = calls_.find(call);
  return it == calls_.end() ? nullptr : &it->second;
}

const ValueProfile* Profiler::argument(const minipy::Stmt* def,
                                       int index) const {
  const auto it = arguments_.find({def, index});
  return it == arguments_.end() ? nullptr : &it->second;
}

const ValueProfile* Profiler::attr_load(const minipy::Expr* attr) const {
  const auto it = attr_loads_.find(attr);
  return it == attr_loads_.end() ? nullptr : &it->second;
}

const ValueProfile* Profiler::subscr_load(const minipy::Expr* subscr) const {
  const auto it = subscr_loads_.find(subscr);
  return it == subscr_loads_.end() ? nullptr : &it->second;
}

std::int64_t Profiler::function_calls(const minipy::Stmt* def) const {
  const auto it = function_calls_.find(def);
  return it == function_calls_.end() ? 0 : it->second;
}

void Profiler::ObserveContext(const std::string& ref, const Value& value) {
  ObserveValue(context_profiles_[ref], value);
  ++total_observations_;
}

const ValueProfile* Profiler::context(const std::string& ref) const {
  const auto it = context_profiles_.find(ref);
  return it == context_profiles_.end() ? nullptr : &it->second;
}

void Profiler::MarkAssumptionFailed(const std::string& assumption_id) {
  if (obs::Ledger::Enabled() &&
      failed_assumptions_.count(assumption_id) == 0u) {
    // First failure of this id: regeneration will stop speculating on it.
    obs::LedgerRecord record;
    record.kind = "assumption_blacklisted";
    record.assumption = assumption_id;
    obs::Ledger::Global().Record(std::move(record));
  }
  failed_assumptions_[assumption_id] = ++failure_stamp_;
  while (failed_assumptions_.size() > kMaxFailedAssumptions) {
    auto oldest = failed_assumptions_.begin();
    for (auto it = failed_assumptions_.begin(); it != failed_assumptions_.end();
         ++it) {
      if (it->second < oldest->second) oldest = it;
    }
    failed_assumptions_.erase(oldest);
  }
}

bool Profiler::HasFailed(const std::string& assumption_id) const {
  return failed_assumptions_.count(assumption_id) != 0u;
}

}  // namespace janus
