// The Speculative Graph Generator (Fig. 2 (B), §4).
//
// Converts one call of a MiniPy function — with the argument values and the
// Profiler's accumulated context observations — into a symbolic dataflow
// graph. Dynamic features are simplified with speculative assumptions:
//
//  * Dynamic control flow (§4.2.1): profiled-stable branches and loop trip
//    counts are unrolled behind AssertOps; unstable conditionals lower to
//    Switch/Merge; unstable loops lower to functional While ops; function
//    calls are inlined (or become recursive InvokeOps).
//  * Dynamic types (§4.2.2): argument/attribute/subscript types come from
//    the profile; tensors get shape assumptions on the Fig. 4 lattice;
//    profiled-constant scalars are baked in as Consts (specialisation).
//  * Impure functions (§4.2.3): attribute/subscript reads and writes lower
//    to PyGetAttr/PySetAttr/PyGetSubscr/PySetSubscr with run-local copies
//    and deferred write-back; model-parameter updates (ApplySGD) and prints
//    are likewise deferred and anchored to the fetch set.
//
// A program fragment outside the supported subset throws NotConvertible;
// the engine then pins the function to the imperative executor (§4.3).
#ifndef JANUS_CORE_GENERATOR_H_
#define JANUS_CORE_GENERATOR_H_

#include <memory>
#include <span>

#include "core/compiled_graph.h"
#include "core/profiler.h"
#include "frontend/interpreter.h"

namespace janus {

struct GeneratorOptions {
  // +UNRL (Fig. 7): speculative unrolling of stable branches/loops and
  // inlining of non-recursive calls. Off => conservative control-flow ops.
  bool speculative_unroll = true;
  // +SPCN (Fig. 7): constant/shape specialisation and post-processing
  // optimisation passes.
  bool specialize = true;
  // AssertOp insertion (§6.3.1 measures its negligible cost).
  bool insert_assertions = true;
  // Trace-based conversion semantics (the TF-defun baseline of Table 1 /
  // Fig. 6): mutable tensor state reads are baked in as constants from the
  // traced execution and state writes are silently dropped — deliberately
  // reproducing tracing's incorrectness on impure functions.
  bool tracing_semantics = false;
  // Safety bound on static expansion (unrolled iterations x inline depth).
  int max_inline_depth = 128;
  std::int64_t max_unroll_total = 200000;
};

class GraphGenerator {
 public:
  // Per-compilation despecialization hints: the rung of the Fig. 4 lattice
  // the cache's churn ladder asks this regeneration to start from. Each
  // level keeps strictly fewer assumptions, so a churning key converges to
  // a graph that cannot fail on the churn source instead of being
  // regenerated (and evicted) forever:
  //   0  full specialization (default)
  //   1  shapes relaxed to rank-only wildcards
  //   2  shapes dropped to Unknown entirely
  //   3  additionally no scalar-constant baking (the value/dtype rung:
  //      profiled-stable scalars feed placeholders instead of Consts)
  struct CompileHints {
    int despecialization_level = 0;
    bool RelaxShapesToRank() const { return despecialization_level == 1; }
    bool DropShapes() const { return despecialization_level >= 2; }
    bool NoConstantBaking() const { return despecialization_level >= 3; }
  };

  GraphGenerator(minipy::Interpreter* interp, Profiler* profiler,
                 GeneratorOptions options);
  ~GraphGenerator();

  // Compiles a call of `fn` with `args`. When `training` is set, gradient
  // and SGD-update operations for every model parameter read by the
  // function are appended (learning rate `lr`), as §3.1 describes.
  // Throws NotConvertible when the program leaves the supported subset.
  std::unique_ptr<CompiledGraph> Compile(
      const std::shared_ptr<minipy::FunctionValue>& fn,
      std::span<const minipy::Value> args, bool training, double lr,
      const CompileHints& hints);
  std::unique_ptr<CompiledGraph> Compile(
      const std::shared_ptr<minipy::FunctionValue>& fn,
      std::span<const minipy::Value> args, bool training, double lr);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace janus

#endif  // JANUS_CORE_GENERATOR_H_
