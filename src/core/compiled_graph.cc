#include "core/compiled_graph.h"

#include <sstream>

#include "common/error.h"
#include "obs/profile.h"

namespace janus {

using minipy::Value;

Value ContextRef::Resolve(std::span<const Value> args) const {
  Value current;
  if (arg_index >= 0) {
    if (arg_index >= static_cast<int>(args.size())) {
      throw InvalidArgument("context ref: argument index out of range");
    }
    current = args[static_cast<std::size_t>(arg_index)];
  } else {
    if (env == nullptr) throw InternalError("context ref has no root");
    // Find through the scope chain, as a name lookup would.
    minipy::Environment* scope = env.get();
    Value* found = scope->Find(name);
    if (found == nullptr) {
      throw InvalidArgument("context ref: name '" + name +
                            "' no longer defined");
    }
    current = *found;
  }
  for (const Step& step : steps) {
    if (step.is_attr) {
      const auto* obj =
          std::get_if<std::shared_ptr<minipy::ObjectValue>>(&current);
      if (obj == nullptr) {
        throw InvalidArgument("context ref: attr step on non-object");
      }
      const auto it = (*obj)->attrs.find(step.attr);
      if (it == (*obj)->attrs.end()) {
        throw InvalidArgument("context ref: missing attribute '" +
                              step.attr + "'");
      }
      current = it->second;
    } else {
      const auto* list =
          std::get_if<std::shared_ptr<minipy::ListValue>>(&current);
      if (list == nullptr) {
        throw InvalidArgument("context ref: index step on non-list");
      }
      const auto n = static_cast<std::int64_t>((*list)->items.size());
      if (step.index < 0 || step.index >= n) {
        throw InvalidArgument("context ref: index out of range");
      }
      current = (*list)->items[static_cast<std::size_t>(step.index)];
    }
  }
  return current;
}

std::string ContextRef::ToString() const {
  std::ostringstream oss;
  if (arg_index >= 0) {
    oss << "arg" << arg_index;
  } else {
    oss << name;
  }
  for (const Step& step : steps) {
    if (step.is_attr) {
      oss << '.' << step.attr;
    } else {
      oss << '[' << step.index << ']';
    }
  }
  return oss.str();
}

int CompiledGraph::BuildPlans(bool enable_fusion) {
  if (plan != nullptr) return 0;
  int built = 0;
  const PlanOptions options{.enable_fusion = enable_fusion};
  plan = GetOrBuildPlan(graph, fetches, nullptr, options);
  ++built;
  if (library != nullptr) {
    for (const std::string& name : library->FunctionNames()) {
      const GraphFunction& fn = library->Lookup(name);
      function_plans.push_back(
          GetOrBuildPlan(fn.graph, fn.results, nullptr, options));
      ++built;
    }
  }
  // Key every plan's profile accumulator by the unit that owns it, so
  // /profilez and the pprof export can aggregate by (unit, variant, ladder
  // level). Done here — the single choke point for plan construction —
  // so test-injected graphs built through the defensive ExecuteCompiled
  // path get keyed too.
  const std::string variant =
      training ? "training(lr=" + std::to_string(learning_rate) + ")"
               : "inference";
  const auto key_plan = [&](const std::shared_ptr<const ExecutionPlan>& p) {
    if (p != nullptr && p->profile() != nullptr) {
      p->profile()->SetKey(unit_name, variant, despecialization_level);
    }
  };
  key_plan(plan);
  for (const auto& fn_plan : function_plans) key_plan(fn_plan);
  return built;
}

std::int64_t CompiledGraph::EstimateBytes() const {
  // Flat per-structure constants, sized from typical node/spec footprints.
  constexpr std::int64_t kPerNode = 256;
  constexpr std::int64_t kPerCapture = 192;
  constexpr std::int64_t kPerCheck = 128;
  constexpr std::int64_t kPerPlanNode = 96;
  std::int64_t nodes = static_cast<std::int64_t>(graph.num_nodes());
  if (library != nullptr) {
    for (const std::string& name : library->FunctionNames()) {
      nodes += static_cast<std::int64_t>(library->Lookup(name).graph.num_nodes());
    }
  }
  return nodes * (kPerNode + kPerPlanNode) +
         static_cast<std::int64_t>(captures.size()) * kPerCapture +
         static_cast<std::int64_t>(entry_checks.size()) * kPerCheck;
}

bool EntryValueMatches(const Value& actual, const Value& expected) {
  // Heap values and callables compare by identity; tensors are never entry
  // expectations (they become captures); scalars compare by value.
  if (std::holds_alternative<Tensor>(expected)) {
    throw InternalError("tensors must be captures, not entry checks");
  }
  return minipy::ValuesEqual(actual, expected);
}

}  // namespace janus
