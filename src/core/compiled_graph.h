// The artifact produced by the Speculative Graph Generator and stored in
// the Graph Cache: the symbolic graph, how to feed it from the live program
// context, the entry-time checks that guard cache hits (Fig. 2 ①), and the
// fetches (loss value + deferred-update anchor).
#ifndef JANUS_CORE_COMPILED_GRAPH_H_
#define JANUS_CORE_COMPILED_GRAPH_H_

#include <memory>
#include <string>
#include <vector>

#include "core/assumptions.h"
#include "frontend/value.h"
#include "graph/graph.h"
#include "runtime/plan.h"

namespace janus {

// A path from the live program context to a value. The root is either a
// positional argument of the converted call or a name in a (still-live)
// lexical environment; steps descend through object attributes and list
// indices. Resolved again on every execution to feed placeholders and on
// every cache lookup to validate environment assumptions.
struct ContextRef {
  int arg_index = -1;  // >= 0: root is argument #arg_index
  std::shared_ptr<minipy::Environment> env;  // else: `name` in this env
  std::string name;

  struct Step {
    bool is_attr = true;
    std::string attr;
    std::int64_t index = 0;
  };
  std::vector<Step> steps;

  // Reads the referenced value from the given call arguments + captured
  // environments. Throws if the path no longer resolves.
  minipy::Value Resolve(std::span<const minipy::Value> args) const;

  std::string ToString() const;
};

// A placeholder fed from the live context at every execution.
struct CaptureSpec {
  ContextRef ref;
  std::string placeholder_name;
  ObservedKind kind = ObservedKind::kTensor;
  DType dtype = DType::kFloat32;
  // Entry-checked shape assumption (Fig. 4 lattice); Unknown = type-only.
  ShapeAssumption shape = ShapeAssumption::Unknown();
  std::string assumption_id;
};

// A context value baked into the graph at generation time; re-validated on
// every cache lookup (identity for heap values, equality for scalars).
struct EntryCheck {
  ContextRef ref;
  minipy::Value expected;
  std::string assumption_id;
};

struct CompiledGraph {
  Graph graph;
  std::shared_ptr<FunctionLibrary> library;  // Invoke/While bodies + grads
  std::vector<CaptureSpec> captures;
  std::vector<EntryCheck> entry_checks;
  // [0] = function result (loss); [1] = side-effect anchor.
  std::vector<NodeOutput> fetches;
  // Ids of assumptions asserted inside the graph (Fig. 2 ②).
  std::vector<std::string> runtime_assumptions;
  bool training = false;
  double learning_rate = 0.0;
  // Qualified name of the imperative unit this graph was generated from;
  // used as the profiler's unit label (obs::PlanProfile::SetKey).
  std::string unit_name;
  int num_assert_ops = 0;
  // Ladder level (GraphGenerator::CompileHints) this graph was generated
  // at; 0 = fully specialized.
  int despecialization_level = 0;

  // Compile-once execution plans: `plan` is the main graph's schedule for
  // `fetches`; `function_plans` pin one plan per FunctionLibrary function so
  // nested Invoke/While kernels dispatch through their graph's plan cache
  // without ever replanning. Built right after generation (Fig. 2's pay-once
  // conversion cost) and reused by every subsequent ExecuteCompiled.
  std::shared_ptr<const ExecutionPlan> plan;
  std::vector<std::shared_ptr<const ExecutionPlan>> function_plans;

  // Builds `plan` and `function_plans` (idempotent). Returns the number of
  // plans built by this call, for EngineStats::plan_builds accounting.
  // `enable_fusion` feeds PlanOptions for every plan built here; plans are
  // cached per (graph, fetches), so the flag takes effect because this
  // pre-build is the first (and thus cache-populating) build.
  int BuildPlans(bool enable_fusion = true);

  // Rough resident size in bytes (nodes, captures, checks, plans), used as
  // the SpecializationCache eviction weight. An estimate is fine: eviction
  // only needs relative order, not allocator truth.
  std::int64_t EstimateBytes() const;
};

// Compares a resolved context value against an expectation: identity for
// heap values and functions, equality for scalars/strings/variables.
bool EntryValueMatches(const minipy::Value& actual,
                       const minipy::Value& expected);

}  // namespace janus

#endif  // JANUS_CORE_COMPILED_GRAPH_H_
