// Speculative program-context assumptions (paper §3, §4.2).
//
// JANUS simplifies a dynamic program to a static one by assuming parts of
// the context stay fixed: branch directions, loop trip counts, callee
// identities, expression types, tensor shapes (with the Fig. 4 relaxation
// lattice: exact -> per-dimension wildcards -> unknown), and constant
// values. Assumptions validated from host state before execution guard the
// graph-cache lookup (Fig. 2 ①); the rest become AssertOps in the graph
// (Fig. 2 ②).
#ifndef JANUS_CORE_ASSUMPTIONS_H_
#define JANUS_CORE_ASSUMPTIONS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace janus {

// The Fig. 4 shape lattice: every dimension is either pinned or wildcard;
// the bottom element is "unknown rank".
class ShapeAssumption {
 public:
  // Exact shape (all dimensions pinned).
  static ShapeAssumption Exact(const Shape& shape);
  // Rank pinned, every dimension wildcard — the middle rung of Fig. 4 the
  // despecialization ladder regenerates at before giving up on shapes.
  static ShapeAssumption AnyOfRank(int rank);
  // Unknown: matches anything.
  static ShapeAssumption Unknown();

  bool Matches(const Shape& shape) const;

  // Least upper bound of this assumption and an observed shape: keeps
  // matching dimensions, wildcards mismatched ones, and collapses to
  // Unknown on rank mismatch. This is the relaxation step of Fig. 4.
  ShapeAssumption Relaxed(const Shape& observed) const;

  // This assumption dropped to its rank-only form (AnyOfRank); Unknown
  // stays Unknown. Used when despecializing a churning key.
  ShapeAssumption RelaxedToRank() const;

  bool is_unknown() const { return unknown_; }
  // Pinned rank; -1 when unknown.
  int rank() const {
    return unknown_ ? -1 : static_cast<int>(dims_.size());
  }
  // Pinned dims (nullopt = wildcard). Empty + !unknown = scalar.
  const std::vector<std::optional<std::int64_t>>& dims() const {
    return dims_;
  }
  // True when every dimension is pinned (usable for static specialisation).
  bool IsExact() const;
  // The pinned shape; requires IsExact().
  Shape ExactShape() const;

  std::string ToString() const;

 private:
  bool unknown_ = false;
  std::vector<std::optional<std::int64_t>> dims_;
};

// The kind of value observed at a profiling site (function argument,
// attribute load, subscript load). Mirrors the paper's type hierarchy:
// numeric values become tensors; everything else becomes a heap pointer.
enum class ObservedKind {
  kNone,
  kBool,
  kInt,
  kFloat,
  kString,
  kTensor,
  kVariable,   // framework parameter handle
  kList,
  kDict,
  kObject,
  kFunction,
  kClass,
  kBuiltin,
  kMixed,      // observations disagree -> no type assumption possible
};

const char* ObservedKindName(ObservedKind kind);

// Accumulated observations for one profiling site.
struct ValueProfile {
  ObservedKind kind = ObservedKind::kNone;
  bool seen = false;
  // Tensor observations.
  DType dtype = DType::kFloat32;
  bool dtype_stable = true;
  ShapeAssumption shape;
  // Constant-value tracking (for +SPCN): scalar int/float/bool/str stability.
  bool value_stable = true;
  double numeric_value = 0.0;
  std::string string_value;
  std::int64_t heap_id = 0;     // last observed heap object
  bool heap_stable = true;      // same heap object every time
  std::int64_t observations = 0;

  void Observe(ObservedKind k, DType dt, const Shape* shape_in,
               double numeric, const std::string& str, std::int64_t heap);
};

// Statistics for one conditional branch site.
struct BranchProfile {
  std::int64_t taken = 0;
  std::int64_t not_taken = 0;
  bool Stable() const { return taken == 0 || not_taken == 0; }
  bool Direction() const { return taken > 0; }
};

// Statistics for one loop site.
struct LoopProfile {
  bool seen = false;
  bool stable = true;
  std::int64_t trip_count = 0;
  void Observe(std::int64_t trips) {
    if (!seen) {
      seen = true;
      trip_count = trips;
    } else if (trip_count != trips) {
      stable = false;
    }
  }
};

}  // namespace janus

#endif  // JANUS_CORE_ASSUMPTIONS_H_
