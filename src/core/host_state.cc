#include "core/host_state.h"

namespace janus {

using minipy::Value;

Tensor EncodeValueAsTensor(const Value& value) {
  if (std::holds_alternative<minipy::NoneType>(value)) {
    return Tensor::ScalarInt(0);  // null pointer
  }
  if (const auto* b = std::get_if<bool>(&value)) {
    return Tensor::ScalarBool(*b);
  }
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    return Tensor::ScalarInt(*i);
  }
  if (const auto* d = std::get_if<double>(&value)) {
    return Tensor::Scalar(static_cast<float>(*d));
  }
  if (const auto* t = std::get_if<Tensor>(&value)) return *t;
  if (const auto* l =
          std::get_if<std::shared_ptr<minipy::ListValue>>(&value)) {
    return Tensor::ScalarInt((*l)->heap_id());
  }
  if (const auto* dd =
          std::get_if<std::shared_ptr<minipy::DictValue>>(&value)) {
    return Tensor::ScalarInt((*dd)->heap_id());
  }
  if (const auto* o =
          std::get_if<std::shared_ptr<minipy::ObjectValue>>(&value)) {
    return Tensor::ScalarInt((*o)->heap_id());
  }
  throw NotConvertible(std::string("value of type ") +
                       minipy::ValueTypeName(value) +
                       " has no tensor encoding");
}

Tensor InterpreterHostState::GetAttr(std::int64_t object_id,
                                     const std::string& name) {
  const Value holder = interp_->HeapLookup(object_id);
  const auto* obj =
      std::get_if<std::shared_ptr<minipy::ObjectValue>>(&holder);
  if (obj == nullptr) {
    throw InternalError("PyGetAttr target is not an object");
  }
  const auto it = (*obj)->attrs.find(name);
  if (it == (*obj)->attrs.end()) {
    throw InvalidArgument("object has no attribute '" + name + "'");
  }
  return EncodeValueAsTensor(it->second);
}

void InterpreterHostState::SetAttr(std::int64_t object_id,
                                   const std::string& name,
                                   const Tensor& value) {
  const Value holder = interp_->HeapLookup(object_id);
  const auto* obj =
      std::get_if<std::shared_ptr<minipy::ObjectValue>>(&holder);
  if (obj == nullptr) {
    throw InternalError("PySetAttr target is not an object");
  }
  (*obj)->attrs[name] = value;
}

Tensor InterpreterHostState::GetSubscr(std::int64_t object_id,
                                       std::int64_t index) {
  const Value holder = interp_->HeapLookup(object_id);
  if (const auto* list =
          std::get_if<std::shared_ptr<minipy::ListValue>>(&holder)) {
    const auto n = static_cast<std::int64_t>((*list)->items.size());
    std::int64_t i = index;
    if (i < 0) i += n;
    if (i < 0 || i >= n) {
      throw InvalidArgument("list index out of range in graph execution");
    }
    return EncodeValueAsTensor((*list)->items[static_cast<std::size_t>(i)]);
  }
  if (const auto* dict =
          std::get_if<std::shared_ptr<minipy::DictValue>>(&holder)) {
    const auto it = (*dict)->items.find(minipy::DictKey{index});
    if (it == (*dict)->items.end()) {
      throw InvalidArgument("missing dict key in graph execution");
    }
    return EncodeValueAsTensor(it->second);
  }
  throw InternalError("PyGetSubscr target is not a list or dict");
}

void InterpreterHostState::SetSubscr(std::int64_t object_id,
                                     std::int64_t index, const Tensor& value) {
  const Value holder = interp_->HeapLookup(object_id);
  if (const auto* list =
          std::get_if<std::shared_ptr<minipy::ListValue>>(&holder)) {
    const auto n = static_cast<std::int64_t>((*list)->items.size());
    std::int64_t i = index;
    if (i < 0) i += n;
    if (i < 0 || i >= n) {
      throw InvalidArgument("list index out of range in graph commit");
    }
    (*list)->items[static_cast<std::size_t>(i)] = value;
    return;
  }
  if (const auto* dict =
          std::get_if<std::shared_ptr<minipy::DictValue>>(&holder)) {
    (*dict)->items[minipy::DictKey{index}] = value;
    return;
  }
  throw InternalError("PySetSubscr target is not a list or dict");
}

}  // namespace janus
