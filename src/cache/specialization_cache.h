// Process-wide budgeted cache of specialized artifacts (compiled graphs),
// with cost-aware eviction, per-key churn accounting, a despecialization
// ladder, and guard promotion.
//
// JANUS's compile-once/run-many model only pays off if the population of
// specialized graphs is managed: at fleet scale, the space of
// (function, assumption set, shape) keys is effectively unbounded, and the
// seed's per-unit, per-Graph, unbounded caches would thrash. This cache is
// the single owner of that population:
//
//  * Budgets. A byte budget (JANUS_CACHE_BYTES) and an entry budget
//    (JANUS_CACHE_ENTRIES) bound the resident set, plus a per-key candidate
//    cap that replaces the old EngineOptions::max_cached_graphs_per_unit.
//  * Cost-aware eviction (GDSF). Each entry carries the build cost the
//    producer measured (generation + plan-build time) and a byte estimate;
//    eviction removes the entry with the lowest
//    clock + uses * cost / bytes priority, so cheap-to-rebuild bulky
//    entries go first and hot expensive entries are protected. The clock
//    inflates to each evicted priority (GreedyDual aging), so long-idle
//    entries eventually lose to fresh ones regardless of cost.
//  * Churn accounting + despecialization ladder (paper Fig. 4). Each key
//    counts churn events: runtime assumption failures, audit mismatches,
//    and evict-then-reinsert cycles. Every `churn_per_level` events raise
//    the key's ladder level; the producer consults the level when it
//    regenerates, relaxing shape -> rank -> value assumptions instead of
//    re-specializing exact graphs forever.
//  * Guard promotion. Entry guards (shape/type/constant validation) that
//    have not failed for `promotion_runs` consecutive runs are promoted:
//    lookups skip validation behind a global despecialization-epoch check
//    (one relaxed atomic compare). Any runtime assumption failure or audit
//    mismatch anywhere bumps the epoch, demoting every promoted entry at
//    its next use; promoted entries also fully revalidate every
//    `audit_interval`-th use, bounding how long an unchecked guard can
//    drift.
//
// The payload is type-erased (shared_ptr<void>) so this layer depends only
// on src/obs and is shared by engines, tests, and the future serving
// layer. All statistics land in a MetricsRegistry as cache.* counters and
// histograms. Every method is thread-safe.
#ifndef JANUS_CACHE_SPECIALIZATION_CACHE_H_
#define JANUS_CACHE_SPECIALIZATION_CACHE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace janus {
namespace cache {

struct CacheOptions {
  // Resident-set budgets. <= 0 disables the corresponding bound.
  std::int64_t max_bytes = 256LL << 20;
  std::int64_t max_entries = 4096;
  // Candidate graphs kept per key. Replaces the removed
  // EngineOptions::max_cached_graphs_per_unit knob.
  int max_entries_per_key = 8;
  // Guard promotion: consecutive failure-free runs before an entry's
  // validation is skipped, and how often a promoted entry still fully
  // revalidates (the audit). enable_promotion = false keeps every lookup
  // checked (the A/B baseline for the stress benchmark).
  std::int64_t promotion_runs = 64;
  std::int64_t audit_interval = 16;
  bool enable_promotion = true;
  // Despecialization ladder: churn events per level step, and the deepest
  // level (see GraphGenerator::CompileHints for the level semantics).
  int churn_per_level = 3;
  int max_ladder_level = 3;

  // Defaults with JANUS_CACHE_BYTES / JANUS_CACHE_ENTRIES applied.
  static CacheOptions FromEnv();
};

// What the caller must do before executing a cached entry.
enum class ValidationDecision {
  kValidate,  // run the full entry-guard validation
  kAudit,     // promoted entry, scheduled revalidation: validate fully
  kSkip,      // promoted entry, epoch current: execute unchecked
};

// Per-key statistics, exposed for tests and reports.
struct KeyStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;
  std::int64_t failures = 0;       // runtime assumption failures
  std::int64_t churn_events = 0;
  std::int64_t promotions = 0;     // entries whose guards were promoted
  int ladder_level = 0;
  bool evicted_since_insert = false;
  // Filled by Stats() from the live candidate list (not stored).
  std::int64_t resident_entries = 0;
  std::int64_t promoted_entries = 0;
};

class SpecializationCache {
 public:
  using Payload = std::shared_ptr<void>;

  // Cache key: the owner (typically the engine, so owners can purge their
  // keys on teardown and pointer reuse across sessions cannot alias), the
  // conversion-unit identity, and a variant discriminator (training mode,
  // learning rate, ...).
  struct Key {
    const void* owner = nullptr;
    const void* unit = nullptr;
    std::uint64_t variant = 0;
    auto operator<=>(const Key&) const = default;
  };

  // One resident artifact. Mutable state is guarded by the cache mutex;
  // callers treat Entry as opaque outside the accessors below.
  struct Entry {
    Payload payload;
    std::int64_t bytes = 0;
    std::int64_t cost_ns = 0;

    // Guarded by the owning cache's mutex.
    Key key;
    bool resident = false;
    std::int64_t uses = 0;
    std::int64_t runs_since_failure = 0;
    std::int64_t uses_since_audit = 0;
    bool promoted = false;
    std::uint64_t promoted_epoch = 0;
    double priority = 0.0;
  };
  using EntryRef = std::shared_ptr<Entry>;

  explicit SpecializationCache(
      CacheOptions options = CacheOptions::FromEnv(),
      obs::MetricsRegistry* registry = &obs::MetricsRegistry::Global());

  // The process-wide instance (budgets from the environment). Engines share
  // it by default so multi-tenant sessions compete for one budget.
  static SpecializationCache& Global();

  // Snapshot of the key's candidates, most-recently-used first. Records
  // cache.lookup_ns.
  std::vector<EntryRef> Lookup(const Key& key);

  // Registers a freshly built artifact. Evicts per-key and global-budget
  // overflow (never the entry being inserted; if the entry alone exceeds
  // the byte budget it is inserted non-resident, i.e. immediately evicted,
  // and the returned ref is the caller's only handle). An insert for a key
  // with an eviction since its last insert counts one churn event — the
  // evict/regenerate cycle the ladder exists to stop.
  EntryRef Insert(const Key& key, Payload payload, std::int64_t bytes,
                  std::int64_t cost_ns);

  // Per-use protocol, in order:
  //   decision = BeginUse(entry)      -- promotion/audit decision, LRU touch
  //   [validate if decision != kSkip] -- caller-owned guard check
  //   OnRunSuccess | OnAuditMismatch | OnEntryFailure | (plain miss: keep
  //   iterating; call OnMiss once when no candidate was usable)
  ValidationDecision BeginUse(const EntryRef& entry);

  // Successful execution through this entry: counts the hit and advances
  // promotion.
  void OnRunSuccess(const Key& key, const EntryRef& entry);

  // A promoted entry failed its scheduled audit: its inputs drifted while
  // unchecked. Demotes the entry, bumps the global epoch (demoting every
  // other promoted entry at next use), and counts churn.
  void OnAuditMismatch(const Key& key, const EntryRef& entry);

  // Runtime assumption failure (AssertOp) or kernel error while executing
  // the entry: removes it, bumps the epoch, and counts churn.
  void OnEntryFailure(const Key& key, const EntryRef& entry);

  // No candidate matched the live context (the engine will regenerate once
  // profiling allows).
  void OnMiss(const Key& key);

  // Ladder level the producer should regenerate this key at.
  int DespecializationLevel(const Key& key) const;

  KeyStats Stats(const Key& key) const;

  // Removes every entry and key record owned by `owner`. Engines call this
  // on teardown; without it, a later allocation reusing a freed AST/engine
  // address could alias a dead unit's graphs.
  void PurgeOwner(const void* owner);

  // Global despecialization epoch (relaxed read; exposed for tests).
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }

  struct Snapshot {
    std::int64_t bytes_in_use = 0;
    std::int64_t entries = 0;
    std::int64_t keys = 0;
    std::uint64_t epoch = 0;
  };
  Snapshot TakeSnapshot() const;

  const CacheOptions& options() const { return options_; }

  // Human-readable section for Engine::StatsReport(): budgets, residency,
  // epoch, and every cache.* counter/histogram in this cache's registry.
  std::string TextReport() const;

 private:
  struct KeyRecord {
    std::vector<EntryRef> entries;  // MRU first
    KeyStats stats;
  };

  // All private helpers require mu_ held (machine-checked under clang).
  // By value: see the definition — callers hand over references into the
  // very containers this function erases from.
  void EvictEntryLocked(EntryRef entry) REQUIRES(mu_);
  void EvictLowestPriorityLocked() REQUIRES(mu_);
  void TouchLocked(const EntryRef& entry) REQUIRES(mu_);
  void AddChurnLocked(const Key& key, KeyRecord& record) REQUIRES(mu_);
  void BumpEpochLocked() REQUIRES(mu_);
  void RemoveFromIndexLocked(const EntryRef& entry) REQUIRES(mu_);
  double ComputePriorityLocked(const Entry& entry) const REQUIRES(mu_);
  KeyRecord* FindRecordLocked(const Key& key) REQUIRES(mu_);

  CacheOptions options_;
  obs::MetricsRegistry* registry_;

  mutable Mutex mu_;
  std::map<Key, KeyRecord> keys_ GUARDED_BY(mu_);
  // Eviction index: priority -> entry. Entries keep no iterator back-ref;
  // removal erases the matching (priority, entry) pair.
  std::multimap<double, EntryRef> by_priority_ GUARDED_BY(mu_);
  std::int64_t bytes_in_use_ GUARDED_BY(mu_) = 0;
  std::int64_t resident_entries_ GUARDED_BY(mu_) = 0;
  double clock_ GUARDED_BY(mu_) = 0.0;  // GreedyDual aging floor

  std::atomic<std::uint64_t> epoch_{0};

  struct Counters {
    obs::Counter* lookups;
    obs::Counter* hits;
    obs::Counter* misses;
    obs::Counter* insertions;
    obs::Counter* evictions;
    obs::Counter* bytes_evicted;
    obs::Counter* assumption_failures;
    obs::Counter* churn_events;
    obs::Counter* despecializations;
    obs::Counter* promotions;
    obs::Counter* demotions;
    obs::Counter* audits;
    obs::Counter* audit_failures;
    obs::Counter* validation_skips;
    obs::Counter* purged;
    obs::Counter* epoch_bumps;
  } counters_{};
  obs::Histogram* lookup_ns_ = nullptr;
  obs::Histogram* entry_bytes_ = nullptr;
  obs::Histogram* entry_cost_ns_ = nullptr;
};

}  // namespace cache
}  // namespace janus

#endif  // JANUS_CACHE_SPECIALIZATION_CACHE_H_
