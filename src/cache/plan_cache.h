// Bounded per-graph cache of compiled execution plans.
//
// Extracted from the former Graph::ExecCache so every cache the runtime
// keeps lives under src/cache with an explicit policy and shared metrics.
// The cache is type-erased (plans are stored as shared_ptr<const void>,
// fetch endpoints as opaque pointers) so it depends on nothing above
// src/obs: the Graph can own one without a layering cycle, and the runtime
// casts plans back on lookup (runtime/plan.cc is the only producer and
// consumer).
//
// Policy: entries are keyed by (structural graph version, fetch set);
// entries for stale versions are dropped on insert, and the entry count is
// bounded (JANUS_PLAN_CACHE_ENTRIES, default 8) with FIFO eviction —
// executed graphs have very few distinct fetch sets, so recency tracking
// would be overhead without benefit. Hits/misses/evictions accumulate in
// the process-wide metrics registry as cache.plan_{hits,misses,evictions}.
#ifndef JANUS_CACHE_PLAN_CACHE_H_
#define JANUS_CACHE_PLAN_CACHE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace janus {
namespace cache {

class PlanCache {
 public:
  // One fetch endpoint: an opaque node pointer plus an output slot.
  struct FetchId {
    const void* node = nullptr;
    int index = 0;
    bool operator==(const FetchId& other) const = default;
  };

  PlanCache();

  // Returns the cached plan for (version, fetches), or nullptr on miss.
  std::shared_ptr<const void> Find(std::uint64_t version,
                                   std::span<const FetchId> fetches);

  // Inserts a plan, dropping stale-version entries and evicting the oldest
  // entry when the bound is reached. Racing inserts for the same key are
  // harmless (last one wins; both plans are valid).
  void Insert(std::uint64_t version, std::span<const FetchId> fetches,
              std::shared_ptr<const void> plan);

  std::size_t size() const;

  // Entry bound: JANUS_PLAN_CACHE_ENTRIES when set, else 8.
  static std::size_t MaxEntries();

 private:
  struct Entry {
    std::uint64_t version = 0;
    std::vector<FetchId> fetches;
    std::shared_ptr<const void> plan;
  };

  mutable Mutex mu_;
  std::vector<Entry> entries_ GUARDED_BY(mu_);
};

}  // namespace cache
}  // namespace janus

#endif  // JANUS_CACHE_PLAN_CACHE_H_
