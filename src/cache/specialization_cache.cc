#include "cache/specialization_cache.h"

#include <algorithm>
#include <cstdlib>
#include <cstdio>
#include <utility>

#include "obs/ledger.h"
#include "obs/trace.h"

namespace janus {
namespace cache {
namespace {

std::int64_t EnvInt64(const char* name, std::int64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(env, &end, 10);
  if (end == env) return fallback;
  return static_cast<std::int64_t>(parsed);
}

// Flight-recorder event for one cache transition. Safe while holding the
// cache mutex: Ledger::Record takes no lock. `bytes` < 0 omits the field.
void RecordCacheEvent(const char* kind, const SpecializationCache::Key& key,
                      int level, std::int64_t bytes, std::string detail) {
  if (!obs::Ledger::Enabled()) return;
  obs::LedgerRecord record;
  record.kind = kind;
  record.unit = obs::PointerToHex(key.unit);
  record.variant = key.variant;
  record.level = level;
  record.bytes = bytes;
  record.detail = std::move(detail);
  obs::Ledger::Global().Record(std::move(record));
}

}  // namespace

CacheOptions CacheOptions::FromEnv() {
  CacheOptions options;
  options.max_bytes = EnvInt64("JANUS_CACHE_BYTES", options.max_bytes);
  options.max_entries = EnvInt64("JANUS_CACHE_ENTRIES", options.max_entries);
  return options;
}

SpecializationCache::SpecializationCache(CacheOptions options,
                                         obs::MetricsRegistry* registry)
    : options_(options), registry_(registry) {
  counters_.lookups = &registry_->GetCounter("cache.lookups");
  counters_.hits = &registry_->GetCounter("cache.hits");
  counters_.misses = &registry_->GetCounter("cache.misses");
  counters_.insertions = &registry_->GetCounter("cache.insertions");
  counters_.evictions = &registry_->GetCounter("cache.evictions");
  counters_.bytes_evicted = &registry_->GetCounter("cache.bytes_evicted");
  counters_.assumption_failures =
      &registry_->GetCounter("cache.assumption_failures");
  counters_.churn_events = &registry_->GetCounter("cache.churn_events");
  counters_.despecializations =
      &registry_->GetCounter("cache.despecializations");
  counters_.promotions = &registry_->GetCounter("cache.promotions");
  counters_.demotions = &registry_->GetCounter("cache.demotions");
  counters_.audits = &registry_->GetCounter("cache.audits");
  counters_.audit_failures = &registry_->GetCounter("cache.audit_failures");
  counters_.validation_skips =
      &registry_->GetCounter("cache.validation_skips");
  counters_.purged = &registry_->GetCounter("cache.purged");
  counters_.epoch_bumps = &registry_->GetCounter("cache.epoch_bumps");
  lookup_ns_ = &registry_->GetHistogram("cache.lookup_ns");
  entry_bytes_ = &registry_->GetHistogram("cache.entry_bytes");
  entry_cost_ns_ = &registry_->GetHistogram("cache.entry_cost_ns");
}

SpecializationCache& SpecializationCache::Global() {
  // Leaked: engines may report stats from atexit paths.
  static SpecializationCache* cache = new SpecializationCache();
  return *cache;
}

std::vector<SpecializationCache::EntryRef> SpecializationCache::Lookup(
    const Key& key) {
  const std::int64_t start_ns = obs::Trace::NowNs();
  std::vector<EntryRef> candidates;
  {
    const MutexLock lock(mu_);
    counters_.lookups->Increment();
    if (KeyRecord* record = FindRecordLocked(key); record != nullptr) {
      candidates = record->entries;
    }
  }
  lookup_ns_->Record(obs::Trace::NowNs() - start_ns);
  return candidates;
}

SpecializationCache::EntryRef SpecializationCache::Insert(
    const Key& key, Payload payload, std::int64_t bytes,
    std::int64_t cost_ns) {
  auto entry = std::make_shared<Entry>();
  entry->payload = std::move(payload);
  entry->bytes = std::max<std::int64_t>(bytes, 1);
  entry->cost_ns = std::max<std::int64_t>(cost_ns, 1);
  entry->key = key;

  const MutexLock lock(mu_);
  counters_.insertions->Increment();
  entry_bytes_->Record(entry->bytes);
  entry_cost_ns_->Record(entry->cost_ns);

  KeyRecord& record = keys_[key];
  record.stats.insertions += 1;
  if (record.stats.evicted_since_insert) {
    // Evict-then-regenerate cycle: the budget threw this key's work away
    // and the producer rebuilt it. Exactly the churn the ladder damps.
    record.stats.evicted_since_insert = false;
    AddChurnLocked(key, record);
  }

  // Per-key candidate cap: drop the key's own LRU candidate first.
  while (static_cast<int>(record.entries.size()) >=
         std::max(options_.max_entries_per_key, 1)) {
    EvictEntryLocked(record.entries.back());
  }

  entry->resident = true;
  entry->priority = ComputePriorityLocked(*entry);
  record.entries.insert(record.entries.begin(), entry);
  by_priority_.emplace(entry->priority, entry);
  bytes_in_use_ += entry->bytes;
  resident_entries_ += 1;
  RecordCacheEvent("cache_insert", key, record.stats.ladder_level,
                   entry->bytes,
                   "cost_ns=" + std::to_string(entry->cost_ns));

  // Global budgets. Never evict the entry being inserted unless it alone
  // busts the byte budget — then it leaves non-resident and the returned
  // ref is the caller's only handle (usable for the current run).
  while (options_.max_entries > 0 && resident_entries_ > options_.max_entries &&
         resident_entries_ > 1) {
    EvictLowestPriorityLocked();
  }
  while (options_.max_bytes > 0 && bytes_in_use_ > options_.max_bytes &&
         resident_entries_ > 1) {
    EvictLowestPriorityLocked();
  }
  if (options_.max_bytes > 0 && bytes_in_use_ > options_.max_bytes &&
      entry->resident) {
    EvictEntryLocked(entry);
  }
  return entry;
}

ValidationDecision SpecializationCache::BeginUse(const EntryRef& entry) {
  const MutexLock lock(mu_);
  entry->uses += 1;
  if (entry->resident) TouchLocked(entry);
  if (!options_.enable_promotion || !entry->promoted) {
    return ValidationDecision::kValidate;
  }
  if (entry->promoted_epoch != epoch_.load(std::memory_order_relaxed)) {
    // The world changed since promotion (some guard failed somewhere):
    // demote and recheck from scratch.
    entry->promoted = false;
    entry->runs_since_failure = 0;
    counters_.demotions->Increment();
    RecordCacheEvent("cache_demote", entry->key, -1, -1, "epoch_advance");
    return ValidationDecision::kValidate;
  }
  entry->uses_since_audit += 1;
  if (options_.audit_interval > 0 &&
      entry->uses_since_audit >= options_.audit_interval) {
    entry->uses_since_audit = 0;
    counters_.audits->Increment();
    return ValidationDecision::kAudit;
  }
  counters_.validation_skips->Increment();
  return ValidationDecision::kSkip;
}

void SpecializationCache::OnRunSuccess(const Key& key, const EntryRef& entry) {
  const MutexLock lock(mu_);
  counters_.hits->Increment();
  KeyRecord* record = FindRecordLocked(key);
  if (record != nullptr) record->stats.hits += 1;
  entry->runs_since_failure += 1;
  if (options_.enable_promotion && !entry->promoted &&
      options_.promotion_runs > 0 &&
      entry->runs_since_failure >= options_.promotion_runs) {
    entry->promoted = true;
    entry->promoted_epoch = epoch_.load(std::memory_order_relaxed);
    entry->uses_since_audit = 0;
    counters_.promotions->Increment();
    if (record != nullptr) record->stats.promotions += 1;
    RecordCacheEvent(
        "cache_promote", key,
        record != nullptr ? record->stats.ladder_level : -1, -1,
        "after " + std::to_string(entry->runs_since_failure) + " clean runs");
  }
}

void SpecializationCache::OnAuditMismatch(const Key& key,
                                          const EntryRef& entry) {
  const MutexLock lock(mu_);
  counters_.audit_failures->Increment();
  entry->promoted = false;
  entry->runs_since_failure = 0;
  counters_.demotions->Increment();
  RecordCacheEvent("cache_demote", key, -1, -1, "audit_mismatch");
  if (KeyRecord* record = FindRecordLocked(key); record != nullptr) {
    AddChurnLocked(key, *record);
  }
  BumpEpochLocked();
}

void SpecializationCache::OnEntryFailure(const Key& key,
                                         const EntryRef& entry) {
  const MutexLock lock(mu_);
  counters_.assumption_failures->Increment();
  if (KeyRecord* record = FindRecordLocked(key); record != nullptr) {
    record->stats.failures += 1;
    AddChurnLocked(key, *record);
    std::erase(record->entries, entry);
  }
  if (entry->resident) {
    RemoveFromIndexLocked(entry);
    bytes_in_use_ -= entry->bytes;
    resident_entries_ -= 1;
    entry->resident = false;
  }
  if (entry->promoted) {
    entry->promoted = false;
    counters_.demotions->Increment();
    RecordCacheEvent("cache_demote", key, -1, -1, "entry_failure");
  }
  BumpEpochLocked();
}

void SpecializationCache::OnMiss(const Key& key) {
  const MutexLock lock(mu_);
  counters_.misses->Increment();
  keys_[key].stats.misses += 1;
}

int SpecializationCache::DespecializationLevel(const Key& key) const {
  const MutexLock lock(mu_);
  const auto it = keys_.find(key);
  return it != keys_.end() ? it->second.stats.ladder_level : 0;
}

KeyStats SpecializationCache::Stats(const Key& key) const {
  const MutexLock lock(mu_);
  const auto it = keys_.find(key);
  if (it == keys_.end()) return KeyStats{};
  KeyStats stats = it->second.stats;
  for (const EntryRef& entry : it->second.entries) {
    if (entry->resident) stats.resident_entries += 1;
    if (entry->promoted) stats.promoted_entries += 1;
  }
  return stats;
}

void SpecializationCache::PurgeOwner(const void* owner) {
  const MutexLock lock(mu_);
  for (auto it = keys_.lower_bound(Key{owner, nullptr, 0});
       it != keys_.end() && it->first.owner == owner;) {
    for (const EntryRef& entry : it->second.entries) {
      if (!entry->resident) continue;
      RemoveFromIndexLocked(entry);
      bytes_in_use_ -= entry->bytes;
      resident_entries_ -= 1;
      entry->resident = false;
      counters_.purged->Increment();
    }
    it = keys_.erase(it);
  }
}

SpecializationCache::Snapshot SpecializationCache::TakeSnapshot() const {
  const MutexLock lock(mu_);
  Snapshot snapshot;
  snapshot.bytes_in_use = bytes_in_use_;
  snapshot.entries = resident_entries_;
  snapshot.keys = static_cast<std::int64_t>(keys_.size());
  snapshot.epoch = epoch_.load(std::memory_order_relaxed);
  return snapshot;
}

std::string SpecializationCache::TextReport() const {
  const Snapshot snapshot = TakeSnapshot();
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "cache: %lld bytes in %lld entries over %lld keys "
                "(budget %lld bytes / %lld entries), epoch %llu\n",
                static_cast<long long>(snapshot.bytes_in_use),
                static_cast<long long>(snapshot.entries),
                static_cast<long long>(snapshot.keys),
                static_cast<long long>(options_.max_bytes),
                static_cast<long long>(options_.max_entries),
                static_cast<unsigned long long>(snapshot.epoch));
  out += line;
  out += registry_->TextReportForPrefix("cache.");
  return out;
}

// Takes its argument by value on purpose: callers pass references to the
// shared_ptr stored inside by_priority_ / record->entries, and this function
// erases from both containers — a reference parameter would dangle the
// moment RemoveFromIndexLocked (or the std::erase below) destroys the
// stored pointer it aliases.
void SpecializationCache::EvictEntryLocked(const EntryRef entry) {
  if (!entry->resident) return;
  RemoveFromIndexLocked(entry);
  bytes_in_use_ -= entry->bytes;
  resident_entries_ -= 1;
  entry->resident = false;
  // GreedyDual aging: the clock rises to the evicted priority, so every
  // future (re)insert and touch outbids long-idle survivors.
  clock_ = std::max(clock_, entry->priority);
  counters_.evictions->Increment();
  counters_.bytes_evicted->Add(entry->bytes);
  if (entry->promoted) {
    entry->promoted = false;
    counters_.demotions->Increment();
    RecordCacheEvent("cache_demote", entry->key, -1, -1, "evicted");
  }
  KeyRecord* record = FindRecordLocked(entry->key);
  if (record != nullptr) {
    record->stats.evictions += 1;
    record->stats.evicted_since_insert = true;
    std::erase(record->entries, entry);
  }
  RecordCacheEvent("cache_evict", entry->key,
                   record != nullptr ? record->stats.ladder_level : -1,
                   entry->bytes,
                   "priority=" + std::to_string(entry->priority));
}

void SpecializationCache::EvictLowestPriorityLocked() {
  if (by_priority_.empty()) return;
  EvictEntryLocked(by_priority_.begin()->second);
}

void SpecializationCache::TouchLocked(const EntryRef& entry) {
  RemoveFromIndexLocked(entry);
  entry->priority = ComputePriorityLocked(*entry);
  by_priority_.emplace(entry->priority, entry);
  if (KeyRecord* record = FindRecordLocked(entry->key); record != nullptr) {
    auto it = std::find(record->entries.begin(), record->entries.end(), entry);
    if (it != record->entries.end() && it != record->entries.begin()) {
      std::rotate(record->entries.begin(), it, it + 1);
    }
  }
}

void SpecializationCache::AddChurnLocked(const Key& key, KeyRecord& record) {
  record.stats.churn_events += 1;
  counters_.churn_events->Increment();
  const int level = std::min(
      options_.max_ladder_level,
      static_cast<int>(record.stats.churn_events /
                       std::max(options_.churn_per_level, 1)));
  if (level > record.stats.ladder_level) {
    // The ladder transition the flight recorder exists to explain: which
    // key slid down, to which rung, after how much churn.
    RecordCacheEvent(
        "cache_despecialize", key, level, -1,
        "churn_events=" + std::to_string(record.stats.churn_events) +
            " from_level=" + std::to_string(record.stats.ladder_level));
    record.stats.ladder_level = level;
    counters_.despecializations->Increment();
  }
}

void SpecializationCache::BumpEpochLocked() {
  const std::uint64_t next =
      epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  counters_.epoch_bumps->Increment();
  if (obs::Ledger::Enabled()) {
    obs::LedgerRecord record;
    record.kind = "cache_epoch_bump";
    record.detail = "epoch=" + std::to_string(next);
    obs::Ledger::Global().Record(std::move(record));
  }
}

void SpecializationCache::RemoveFromIndexLocked(const EntryRef& entry) {
  for (auto [it, end] = by_priority_.equal_range(entry->priority); it != end;
       ++it) {
    if (it->second == entry) {
      by_priority_.erase(it);
      return;
    }
  }
}

double SpecializationCache::ComputePriorityLocked(const Entry& entry) const {
  // GDSF: clock + uses * cost / size. Hot, expensive-to-rebuild, compact
  // entries sort last in eviction order.
  const double frequency = static_cast<double>(entry.uses + 1);
  return clock_ + frequency * static_cast<double>(entry.cost_ns) /
                      static_cast<double>(entry.bytes);
}

SpecializationCache::KeyRecord* SpecializationCache::FindRecordLocked(
    const Key& key) {
  const auto it = keys_.find(key);
  return it != keys_.end() ? &it->second : nullptr;
}

}  // namespace cache
}  // namespace janus
