// Process-wide content-addressed cache of specialized fused-kernel programs.
//
// The fusion pass (runtime/fusion.cc) specializes each fused region's
// superop program on the actual input dtypes + shapes seen at run time. Two
// regions with identical structure and identical input signatures — across
// graphs, engines, units, and despecialization levels — produce identical
// programs, so specialization results are shared here under their full
// content key (structural signature + external dtypes/shapes). Payloads are
// type-erased (shared_ptr<const void>) to keep this subsystem free of
// runtime-layer dependencies, mirroring PlanCache / SpecializationCache.
//
// Bounded FIFO: JANUS_FUSED_CACHE_ENTRIES caps resident programs
// (default 1024); the oldest insertion is evicted first. Programs are tiny
// (instruction lists + shape vectors), so a byte budget is not worth the
// bookkeeping.
#ifndef JANUS_CACHE_FUSED_KERNEL_CACHE_H_
#define JANUS_CACHE_FUSED_KERNEL_CACHE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace janus::cache {

class FusedKernelCache {
 public:
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t inserts = 0;
    std::int64_t evictions = 0;
    std::int64_t entries = 0;
  };

  static FusedKernelCache& Global();

  explicit FusedKernelCache(std::size_t max_entries);

  // Returns the cached program for `key`, or nullptr (counting a miss).
  std::shared_ptr<const void> Find(const std::string& key);

  // Inserts (or replaces) the program for `key`, evicting the oldest entry
  // when over budget.
  void Insert(const std::string& key, std::shared_ptr<const void> program);

  Stats Snapshot() const;

  // Drops every entry (tests).
  void Clear();

 private:
  const std::size_t max_entries_;
  mutable Mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const void>> entries_
      GUARDED_BY(mu_);
  std::deque<std::string> insertion_order_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace janus::cache

#endif  // JANUS_CACHE_FUSED_KERNEL_CACHE_H_
