#include "cache/plan_cache.h"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.h"

namespace janus {
namespace cache {
namespace {

struct PlanCacheCounters {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;

  PlanCacheCounters() {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    hits = &registry.GetCounter("cache.plan_hits");
    misses = &registry.GetCounter("cache.plan_misses");
    evictions = &registry.GetCounter("cache.plan_evictions");
  }
};

PlanCacheCounters& Counters() {
  static PlanCacheCounters counters;
  return counters;
}

}  // namespace

PlanCache::PlanCache() = default;

std::size_t PlanCache::MaxEntries() {
  static const std::size_t bound = [] {
    if (const char* env = std::getenv("JANUS_PLAN_CACHE_ENTRIES");
        env != nullptr) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
    return static_cast<std::size_t>(8);
  }();
  return bound;
}

std::shared_ptr<const void> PlanCache::Find(
    std::uint64_t version, std::span<const FetchId> fetches) {
  const MutexLock lock(mu_);
  for (const Entry& entry : entries_) {
    if (entry.version != version) continue;
    if (entry.fetches.size() != fetches.size() ||
        !std::equal(entry.fetches.begin(), entry.fetches.end(),
                    fetches.begin())) {
      continue;
    }
    Counters().hits->Increment();
    return entry.plan;
  }
  Counters().misses->Increment();
  return nullptr;
}

void PlanCache::Insert(std::uint64_t version,
                       std::span<const FetchId> fetches,
                       std::shared_ptr<const void> plan) {
  const MutexLock lock(mu_);
  // Entries for stale structural versions can never hit again.
  std::erase_if(entries_,
                [version](const Entry& e) { return e.version != version; });
  if (entries_.size() >= MaxEntries()) {
    entries_.erase(entries_.begin());
    Counters().evictions->Increment();
  }
  entries_.push_back(
      Entry{version, {fetches.begin(), fetches.end()}, std::move(plan)});
}

std::size_t PlanCache::size() const {
  const MutexLock lock(mu_);
  return entries_.size();
}

}  // namespace cache
}  // namespace janus
