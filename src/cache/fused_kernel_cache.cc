#include "cache/fused_kernel_cache.h"

#include <cstdlib>

namespace janus::cache {
namespace {

std::size_t EnvEntries(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(env, &end, 10);
  if (end == env || parsed <= 0) return fallback;
  return static_cast<std::size_t>(parsed);
}

}  // namespace

FusedKernelCache& FusedKernelCache::Global() {
  // Leaked: programs may be looked up during static teardown (exit-time
  // benchmark/report paths), same lifetime policy as the other registries.
  static FusedKernelCache* cache = new FusedKernelCache(
      EnvEntries("JANUS_FUSED_CACHE_ENTRIES", 1024));
  return *cache;
}

FusedKernelCache::FusedKernelCache(std::size_t max_entries)
    : max_entries_(max_entries == 0 ? 1 : max_entries) {}

std::shared_ptr<const void> FusedKernelCache::Find(const std::string& key) {
  const MutexLock lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return it->second;
}

void FusedKernelCache::Insert(const std::string& key,
                              std::shared_ptr<const void> program) {
  const MutexLock lock(mu_);
  const auto [it, inserted] = entries_.insert_or_assign(key, std::move(program));
  (void)it;
  ++stats_.inserts;
  if (!inserted) return;  // replacement: no growth, no fifo entry
  insertion_order_.push_back(key);
  while (entries_.size() > max_entries_ && !insertion_order_.empty()) {
    const std::string victim = std::move(insertion_order_.front());
    insertion_order_.pop_front();
    if (entries_.erase(victim) > 0) ++stats_.evictions;
  }
}

FusedKernelCache::Stats FusedKernelCache::Snapshot() const {
  const MutexLock lock(mu_);
  Stats stats = stats_;
  stats.entries = static_cast<std::int64_t>(entries_.size());
  return stats;
}

void FusedKernelCache::Clear() {
  const MutexLock lock(mu_);
  entries_.clear();
  insertion_order_.clear();
}

}  // namespace janus::cache
