#include "opt/passes.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/error.h"
#include "runtime/kernel.h"
#include "runtime/run_context.h"

namespace janus {
namespace {

struct OutKey {
  const Node* node;
  int index;
  bool operator==(const OutKey& other) const = default;
};
struct OutKeyHash {
  std::size_t operator()(const OutKey& key) const {
    return std::hash<const void*>()(key.node) * 2654435761u ^
           static_cast<std::size_t>(key.index);
  }
};

using Replacements = std::unordered_map<OutKey, NodeOutput, OutKeyHash>;

// Rewires every use of a replaced output (including transitively chained
// replacements) to its final producer. Optionally updates fetch handles.
void ApplyReplacements(Graph& graph, const Replacements& repl,
                       std::vector<NodeOutput>* fetches) {
  const auto resolve = [&](NodeOutput v) {
    // Chase chains (a -> b -> c) with a small bound to catch cycles.
    for (int hops = 0; hops < 64; ++hops) {
      const auto it = repl.find({v.node, v.index});
      if (it == repl.end()) return v;
      v = it->second;
    }
    throw InternalError("replacement cycle in optimisation pass");
  };
  for (const auto& node : graph.nodes()) {
    for (int i = 0; i < node->num_inputs(); ++i) {
      node->set_input(i, resolve(node->input(i)));
    }
    // Control inputs: redirect to the replacement's producer node.
    for (Node* control : node->control_inputs()) {
      const auto it = repl.find({control, 0});
      if (it != repl.end()) {
        node->ReplaceControlInput(control, resolve({control, 0}).node);
      }
    }
  }
  if (fetches != nullptr) {
    for (NodeOutput& fetch : *fetches) fetch = resolve(fetch);
  }
}

bool IsConst(const Node* node) { return node->op() == "Const"; }

bool IsScalarConst(const Node* node, float value) {
  if (!IsConst(node)) return false;
  const Tensor& t = node->GetTensorAttr("value");
  if (t.num_elements() != 1) return false;
  return t.ElementAsDouble(0) == static_cast<double>(value);
}

std::string AttrSignature(const AttrMap& attrs) {
  std::ostringstream oss;
  for (const auto& [key, value] : attrs) {
    oss << key << '=';
    if (const Tensor* t = std::get_if<Tensor>(&value)) {
      // Hash small tensors by content; large ones are treated as unique so
      // we never pay to compare big weight blobs.
      if (t->num_elements() <= 256) {
        oss << DTypeName(t->dtype()) << t->shape().ToString() << ':';
        for (std::int64_t i = 0; i < t->num_elements(); ++i) {
          oss << t->ElementAsDouble(i) << ',';
        }
      } else {
        oss << "unique@" << static_cast<const void*>(t);
      }
    } else {
      oss << AttrToString(value);
    }
    oss << ';';
  }
  return oss.str();
}

}  // namespace

bool IsPureOp(const std::string& op) {
  static const std::unordered_set<std::string>* const impure = [] {
    return new std::unordered_set<std::string>{
        "Placeholder",   "Param",          "Const",
        "ReadVariable",  "AssignVariable", "ApplySGD",
        "Assert",        "PyGetAttr",      "PySetAttr",
        "PyGetSubscr",   "PySetSubscr",    "PyPrint",
        "RandomNormal",  "RandomUniform",  "NoOp",
        "Invoke",        "While",          "WhileGrad",
        "Switch",        "Merge",          "Enter",
        "Exit",          "NextIteration"};
  }();
  return impure->find(op) == impure->end();
}

int ConstantFolding(Graph& graph) {
  Replacements repl;
  int folded = 0;
  // Snapshot: graph.Constant() below appends nodes while we iterate.
  std::vector<Node*> snapshot;
  snapshot.reserve(graph.num_nodes());
  for (const auto& n : graph.nodes()) snapshot.push_back(n.get());
  for (Node* node : snapshot) {
    if (!IsPureOp(node->op())) continue;
    if (node->num_inputs() == 0) continue;
    if (!node->control_inputs().empty()) continue;
    bool all_const = true;
    for (const NodeOutput& input : node->inputs()) {
      // Inputs may themselves have been folded this round; chase them.
      const Node* producer = input.node;
      const auto it = repl.find({producer, input.index});
      const Node* effective = it != repl.end() ? it->second.node : producer;
      if (!IsConst(effective)) {
        all_const = false;
        break;
      }
    }
    if (!all_const) continue;

    std::vector<Tensor> inputs;
    inputs.reserve(node->inputs().size());
    for (const NodeOutput& input : node->inputs()) {
      const auto it = repl.find({input.node, input.index});
      const Node* effective =
          it != repl.end() ? it->second.node : input.node;
      inputs.push_back(effective->GetTensorAttr("value"));
    }
    RunContext run;  // pure kernels need no services
    KernelContext ctx;
    ctx.node = node;
    ctx.inputs = inputs;
    ctx.outputs.resize(static_cast<std::size_t>(node->num_outputs()));
    ctx.run = &run;
    try {
      KernelRegistry::Global().Lookup(node->op())(ctx);
    } catch (const Error&) {
      continue;  // e.g. data-dependent failure; leave for runtime
    }
    // The folded constant inherits the replaced node's source site.
    SourceSiteScope site_scope(node->site());
    for (int i = 0; i < node->num_outputs(); ++i) {
      repl[{node, i}] =
          graph.Constant(ctx.outputs[static_cast<std::size_t>(i)]);
    }
    ++folded;
  }
  ApplyReplacements(graph, repl, nullptr);
  return folded;
}

int CommonSubexpressionElimination(Graph& graph) {
  Replacements repl;
  std::unordered_map<std::string, Node*> seen;
  int merged = 0;
  for (const auto& node : graph.nodes()) {
    if (!IsPureOp(node->op()) && node->op() != "Const") continue;
    std::ostringstream sig;
    sig << node->op() << '(';
    for (const NodeOutput& input : node->inputs()) {
      NodeOutput v = input;
      const auto it = repl.find({v.node, v.index});
      if (it != repl.end()) v = it->second;
      sig << v.node->id() << ':' << v.index << ',';
    }
    sig << ")^[";
    for (const Node* control : node->control_inputs()) {
      sig << control->id() << ',';
    }
    sig << ']' << AttrSignature(node->attrs());
    const auto [it, inserted] = seen.emplace(sig.str(), node.get());
    if (!inserted) {
      for (int i = 0; i < node->num_outputs(); ++i) {
        repl[{node.get(), i}] = {it->second, i};
      }
      ++merged;
    }
  }
  ApplyReplacements(graph, repl, nullptr);
  return merged;
}

int ArithmeticSimplification(Graph& graph) {
  Replacements repl;
  int rewrites = 0;
  const auto replace = [&](Node* node, NodeOutput with) {
    repl[{node, 0}] = with;
    ++rewrites;
  };
  // Snapshot: the ZerosLike rewrite appends nodes while we iterate.
  std::vector<Node*> snapshot;
  snapshot.reserve(graph.num_nodes());
  for (const auto& n : graph.nodes()) snapshot.push_back(n.get());
  for (Node* node : snapshot) {
    if (!node->control_inputs().empty()) continue;
    const std::string& op = node->op();
    const auto in = [&](int i) { return node->input(i); };
    if (op == "Identity") {
      replace(node, in(0));
    } else if (op == "Add") {
      if (IsScalarConst(in(1).node, 0.0f)) {
        replace(node, in(0));
      } else if (IsScalarConst(in(0).node, 0.0f)) {
        replace(node, in(1));
      }
    } else if (op == "Sub") {
      if (IsScalarConst(in(1).node, 0.0f)) replace(node, in(0));
    } else if (op == "Mul") {
      if (IsScalarConst(in(1).node, 1.0f)) {
        replace(node, in(0));
      } else if (IsScalarConst(in(0).node, 1.0f)) {
        replace(node, in(1));
      } else if (IsScalarConst(in(1).node, 0.0f) ||
                 IsScalarConst(in(0).node, 0.0f)) {
        const NodeOutput operand =
            IsScalarConst(in(1).node, 0.0f) ? in(0) : in(1);
        // The replacement ZerosLike inherits the Mul's source site.
        SourceSiteScope site_scope(node->site());
        replace(node, {graph.AddNode("ZerosLike", {operand}), 0});
      }
    } else if (op == "Div") {
      if (IsScalarConst(in(1).node, 1.0f)) replace(node, in(0));
    } else if (op == "Neg") {
      if (in(0).node->op() == "Neg") {
        replace(node, in(0).node->input(0));
      }
    } else if (op == "Pow") {
      if (IsScalarConst(in(1).node, 1.0f)) replace(node, in(0));
    }
  }
  ApplyReplacements(graph, repl, nullptr);
  return rewrites;
}

int DeadCodeElimination(Graph& graph, std::span<const NodeOutput> fetches) {
  std::unordered_set<const Node*> live;
  std::vector<Node*> stack;
  for (const NodeOutput& fetch : fetches) stack.push_back(fetch.node);
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    if (!live.insert(node).second) continue;
    for (const NodeOutput& input : node->inputs()) stack.push_back(input.node);
    for (Node* control : node->control_inputs()) stack.push_back(control);
  }
  std::vector<Node*> keep;
  keep.reserve(live.size());
  for (const auto& node : graph.nodes()) {
    if (live.count(node.get()) != 0u) keep.push_back(node.get());
  }
  const int removed = static_cast<int>(graph.num_nodes() - keep.size());
  graph.Prune(keep);
  return removed;
}

OptimizationStats OptimizeGraph(Graph& graph,
                                std::span<const NodeOutput> fetches,
                                int max_rounds) {
  OptimizationStats stats;
  for (int round = 0; round < max_rounds; ++round) {
    const int folded = ConstantFolding(graph);
    const int simplified = ArithmeticSimplification(graph);
    const int merged = CommonSubexpressionElimination(graph);
    const int removed = DeadCodeElimination(graph, fetches);
    stats.folded += folded;
    stats.simplified += simplified;
    stats.cse_merged += merged;
    stats.dce_removed += removed;
    ++stats.rounds;
    if (folded + simplified + merged + removed == 0) break;
  }
  return stats;
}

}  // namespace janus
