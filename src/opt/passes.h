// Graph optimisation passes — the "post-processor" of the Speculative Graph
// Generator (paper §3.1). These are the optimisations that symbolic-graph
// frameworks can apply and imperative executors cannot; speculative
// unrolling and type/shape specialisation widen their applicability
// (§4.2.1: unrolling enables CSE / constant folding across what used to be
// control-flow boundaries).
#ifndef JANUS_OPT_PASSES_H_
#define JANUS_OPT_PASSES_H_

#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace janus {

// True for ops with no state, no side effects, and no control-flow
// semantics; only these participate in folding/CSE/DCE-motion.
bool IsPureOp(const std::string& op);

// Replaces pure nodes whose inputs are all Const with Const nodes by
// executing their kernels at optimisation time. Returns #nodes folded.
int ConstantFolding(Graph& graph);

// Merges duplicate pure nodes (same op, inputs, attrs). Returns #merged.
int CommonSubexpressionElimination(Graph& graph);

// Local algebraic rewrites: x+0 -> x, x*1 -> x, x-0 -> x, x/1 -> x,
// double-Neg elimination, Identity forwarding. Returns #rewrites.
int ArithmeticSimplification(Graph& graph);

// Removes nodes not reachable from the fetches (through data and control
// edges). Side-effecting nodes must be anchored to a fetch to survive.
// Returns #nodes removed.
int DeadCodeElimination(Graph& graph, std::span<const NodeOutput> fetches);

struct OptimizationStats {
  int folded = 0;
  int cse_merged = 0;
  int simplified = 0;
  int dce_removed = 0;
  int rounds = 0;
};

// Runs all passes to a (bounded) fixpoint.
OptimizationStats OptimizeGraph(Graph& graph,
                                std::span<const NodeOutput> fetches,
                                int max_rounds = 8);

}  // namespace janus

#endif  // JANUS_OPT_PASSES_H_
