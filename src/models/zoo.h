// The model zoo: the paper's 11 evaluation workloads (Table 2), scaled to
// laptop size but structurally faithful — same categories, same dynamic
// features (dynamic control flow, dynamic types, impure functions), same
// programming style (imperative MiniPy over the framework builtins).
#ifndef JANUS_MODELS_ZOO_H_
#define JANUS_MODELS_ZOO_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"

namespace janus::models {

struct ModelSpec {
  std::string name;      // Table 2 model name
  std::string category;  // CNN / RNN / TreeNN / DRL / GAN
  std::string dataset;   // synthetic stand-in description
  int batch_size = 1;
  bool dcf = false;  // dynamic control flow   (Table 2)
  bool dt = true;    // dynamic types
  bool impure = false;  // impure functions
  std::string unit;  // items/s unit reported in Table 3
  double items_per_iteration = 1;

  // MiniPy sources.
  std::string definition;  // model + loss functions (run once)
  std::string iteration;   // one training step (sets global `loss`)
  // Optional evaluation block setting global `metric` (Fig. 6).
  std::string eval_source;
  std::string metric_name;
  // Eval() averages this many runs (fresh eval feeds each time) — single
  // sentiment trees give 0/1 accuracies, so TreeNNs need several.
  int eval_repeats = 1;

  // Feeds fresh data into interpreter globals before an iteration/eval.
  std::function<void(minipy::Interpreter&, Rng&, std::int64_t step)> feed;
  std::function<void(minipy::Interpreter&, Rng&)> feed_eval;
  // Extra session setup (e.g. environment registration).
  std::function<void(minipy::Interpreter&, std::uint64_t seed)> setup;
};

// All 11 models, in Table 2/3 order.
const std::vector<ModelSpec>& ModelZoo();
const ModelSpec& FindModel(const std::string& name);

// One training session of a model under a framework configuration.
class ModelSession {
 public:
  ModelSession(const ModelSpec& spec, const EngineOptions& options,
               std::uint64_t seed = 42);
  ~ModelSession();

  // Feeds data and runs one training iteration; returns the loss.
  double Step();
  // Runs the eval block; returns the metric (0 if the model has none).
  double Eval();

  std::int64_t steps_done() const { return step_; }
  JanusEngine& engine() { return *engine_; }
  minipy::Interpreter& interpreter() { return *interp_; }
  const ModelSpec& spec() const { return spec_; }

 private:
  ModelSpec spec_;
  std::unique_ptr<VariableStore> variables_;
  std::unique_ptr<Rng> model_rng_;
  std::unique_ptr<Rng> data_rng_;
  std::unique_ptr<minipy::Interpreter> interp_;
  std::unique_ptr<JanusEngine> engine_;
  std::int64_t step_ = 0;
};

}  // namespace janus::models

#endif  // JANUS_MODELS_ZOO_H_
