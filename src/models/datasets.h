// Synthetic dataset generators standing in for the paper's corpora
// (MNIST, ImageNet, PTB, 1B, SST, Facades — Table 2). Each generator
// produces learnable structure with shapes matching the scaled-down models,
// so convergence experiments (Fig. 6) show real learning curves.
#ifndef JANUS_MODELS_DATASETS_H_
#define JANUS_MODELS_DATASETS_H_

#include <utility>

#include "common/rng.h"
#include "frontend/interpreter.h"
#include "tensor/tensor.h"

namespace janus::models {

// Class-conditional images: each class has a distinct spatial template plus
// noise. Returns (images NHWC float, labels int64).
std::pair<Tensor, Tensor> SyntheticImageBatch(Rng& rng, std::int64_t batch,
                                              std::int64_t height,
                                              std::int64_t width,
                                              std::int64_t channels,
                                              std::int64_t num_classes);

// Token sequences from a fixed first-order Markov chain (so a language
// model can reduce perplexity). Returns (inputs (T,B) int64,
// targets (T,B) int64) where targets are inputs shifted by one.
std::pair<Tensor, Tensor> MarkovTokenBatch(Rng& rng, std::int64_t seq_len,
                                           std::int64_t batch,
                                           std::int64_t vocab);

// Paired image translation (pix2pix): input = blocky segmentation map,
// target = deterministic per-block color transform of it. Returns
// (input NHWC, target NHWC).
std::pair<Tensor, Tensor> PairedImageBatch(Rng& rng, std::int64_t batch,
                                           std::int64_t size,
                                           std::int64_t channels);

// A random sentiment tree built as MiniPy objects of the given class
// (attrs: is_leaf, emb(1,dim), left, right). The returned root also carries
// `label` (int 0/1): positive iff the sum of a hidden scoring direction
// over leaf embeddings is positive — learnable by a TreeRNN.
minipy::Value BuildSentimentTree(minipy::Interpreter& interp,
                                 const std::shared_ptr<minipy::ClassValue>& cls,
                                 Rng& rng, int depth, std::int64_t dim,
                                 float* score_accum);

}  // namespace janus::models

#endif  // JANUS_MODELS_DATASETS_H_
