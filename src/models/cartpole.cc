#include "models/cartpole.h"

#include <cmath>
#include <memory>

#include "tensor/tensor.h"

namespace janus::models {
namespace {

constexpr double kGravity = 9.8;
constexpr double kCartMass = 1.0;
constexpr double kPoleMass = 0.1;
constexpr double kTotalMass = kCartMass + kPoleMass;
constexpr double kPoleHalfLength = 0.5;
constexpr double kPoleMassLength = kPoleMass * kPoleHalfLength;
constexpr double kForceMag = 10.0;
constexpr double kTau = 0.02;
constexpr double kThetaLimit = 12.0 * 2.0 * 3.14159265 / 360.0;
constexpr double kXLimit = 2.4;

Tensor StateTensor(const std::array<double, 4>& state) {
  return Tensor::FromVector({static_cast<float>(state[0]),
                             static_cast<float>(state[1]),
                             static_cast<float>(state[2]),
                             static_cast<float>(state[3])},
                            Shape{4});
}

}  // namespace

std::array<double, 4> CartPole::Reset() {
  for (double& v : state_) v = rng_->Uniform(-0.05, 0.05);
  steps_ = 0;
  done_ = false;
  return state_;
}

CartPole::StepResult CartPole::Step(int action) {
  if (done_) {
    // Gym semantics: stepping a finished episode keeps returning done.
    return {state_, 0.0, true};
  }
  const double force = action == 1 ? kForceMag : -kForceMag;
  const double theta = state_[2];
  const double theta_dot = state_[3];
  const double cos_theta = std::cos(theta);
  const double sin_theta = std::sin(theta);
  const double temp =
      (force + kPoleMassLength * theta_dot * theta_dot * sin_theta) /
      kTotalMass;
  const double theta_acc =
      (kGravity * sin_theta - cos_theta * temp) /
      (kPoleHalfLength *
       (4.0 / 3.0 - kPoleMass * cos_theta * cos_theta / kTotalMass));
  const double x_acc =
      temp - kPoleMassLength * theta_acc * cos_theta / kTotalMass;

  state_[0] += kTau * state_[1];
  state_[1] += kTau * x_acc;
  state_[2] += kTau * state_[3];
  state_[3] += kTau * theta_acc;
  ++steps_;

  done_ = std::fabs(state_[0]) > kXLimit ||
          std::fabs(state_[2]) > kThetaLimit || steps_ >= max_steps_;
  return {state_, 1.0, done_};
}

void RegisterCartPole(minipy::Interpreter& interp, std::uint64_t seed) {
  // The environment lives as long as the registered builtins (shared
  // ownership captured by both closures).
  auto rng = std::make_shared<Rng>(seed);
  auto env = std::make_shared<CartPole>(rng.get());

  interp.RegisterBuiltin(
      "env_reset",
      [env, rng](minipy::Interpreter&, std::span<minipy::Value> args)
          -> minipy::Value {
        if (!args.empty()) {
          throw minipy::MiniPyError("env_reset() takes no arguments");
        }
        return StateTensor(env->Reset());
      });

  interp.RegisterBuiltin(
      "env_step",
      [env, rng](minipy::Interpreter& in, std::span<minipy::Value> args)
          -> minipy::Value {
        if (args.size() != 1) {
          throw minipy::MiniPyError("env_step() takes one argument");
        }
        int action = 0;
        if (const auto* i = std::get_if<std::int64_t>(&args[0])) {
          action = static_cast<int>(*i);
        } else if (const auto* t = std::get_if<Tensor>(&args[0])) {
          action = static_cast<int>(t->ElementAsDouble(0));
        } else {
          throw minipy::MiniPyError("env_step(): action must be an int");
        }
        const CartPole::StepResult result = env->Step(action);
        auto out = in.MakeList();
        out->items.push_back(StateTensor(result.state));
        out->items.push_back(result.reward);
        out->items.push_back(result.done);
        return out;
      });
}

}  // namespace janus::models
