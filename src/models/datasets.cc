#include "models/datasets.h"

#include <cmath>

namespace janus::models {

std::pair<Tensor, Tensor> SyntheticImageBatch(Rng& rng, std::int64_t batch,
                                              std::int64_t height,
                                              std::int64_t width,
                                              std::int64_t channels,
                                              std::int64_t num_classes) {
  Tensor images(DType::kFloat32, Shape{batch, height, width, channels});
  Tensor labels(DType::kInt64, Shape{batch});
  auto iv = images.mutable_data<float>();
  auto lv = labels.mutable_data<std::int64_t>();
  for (std::int64_t b = 0; b < batch; ++b) {
    const std::int64_t label =
        static_cast<std::int64_t>(rng.Below(static_cast<std::uint64_t>(num_classes)));
    lv[static_cast<std::size_t>(b)] = label;
    // Class template: a sinusoidal pattern whose frequency/phase depend on
    // the class, plus Gaussian noise.
    const double fx = 1.0 + static_cast<double>(label % 4);
    const double fy = 1.0 + static_cast<double>(label / 4);
    for (std::int64_t y = 0; y < height; ++y) {
      for (std::int64_t x = 0; x < width; ++x) {
        for (std::int64_t c = 0; c < channels; ++c) {
          const double signal =
              std::sin(fx * 3.1416 * (x + 1) / static_cast<double>(width)) *
              std::cos(fy * 3.1416 * (y + 1) / static_cast<double>(height) +
                       0.37 * static_cast<double>(c));
          const std::size_t index = static_cast<std::size_t>(
              ((b * height + y) * width + x) * channels + c);
          iv[index] = static_cast<float>(signal + 0.9 * rng.Normal());
        }
      }
    }
  }
  return {std::move(images), std::move(labels)};
}

std::pair<Tensor, Tensor> MarkovTokenBatch(Rng& rng, std::int64_t seq_len,
                                           std::int64_t batch,
                                           std::int64_t vocab) {
  Tensor inputs(DType::kInt64, Shape{seq_len, batch});
  Tensor targets(DType::kInt64, Shape{seq_len, batch});
  auto in = inputs.mutable_data<std::int64_t>();
  auto tg = targets.mutable_data<std::int64_t>();
  for (std::int64_t b = 0; b < batch; ++b) {
    std::int64_t token =
        static_cast<std::int64_t>(rng.Below(static_cast<std::uint64_t>(vocab)));
    for (std::int64_t t = 0; t < seq_len; ++t) {
      in[static_cast<std::size_t>(t * batch + b)] = token;
      // Deterministic-ish chain: mostly (3 tok + 7) mod V, sometimes random.
      std::int64_t next;
      if (rng.Uniform() < 0.85) {
        next = (3 * token + 7) % vocab;
      } else {
        next = static_cast<std::int64_t>(
            rng.Below(static_cast<std::uint64_t>(vocab)));
      }
      tg[static_cast<std::size_t>(t * batch + b)] = next;
      token = next;
    }
  }
  return {std::move(inputs), std::move(targets)};
}

std::pair<Tensor, Tensor> PairedImageBatch(Rng& rng, std::int64_t batch,
                                           std::int64_t size,
                                           std::int64_t channels) {
  Tensor input(DType::kFloat32, Shape{batch, size, size, channels});
  Tensor target(DType::kFloat32, Shape{batch, size, size, channels});
  auto in = input.mutable_data<float>();
  auto tg = target.mutable_data<float>();
  const std::int64_t block = std::max<std::int64_t>(2, size / 4);
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t by = 0; by < size; by += block) {
      for (std::int64_t bx = 0; bx < size; bx += block) {
        const float v = static_cast<float>(rng.Uniform(-1.0, 1.0));
        for (std::int64_t y = by; y < std::min(by + block, size); ++y) {
          for (std::int64_t x = bx; x < std::min(bx + block, size); ++x) {
            for (std::int64_t c = 0; c < channels; ++c) {
              const std::size_t index = static_cast<std::size_t>(
                  ((b * size + y) * size + x) * channels + c);
              in[index] = v;
              // The learnable mapping: a fixed smooth function per channel.
              tg[index] = std::tanh(1.7f * v) +
                          0.2f * static_cast<float>(c);
            }
          }
        }
      }
    }
  }
  return {std::move(input), std::move(target)};
}

minipy::Value BuildSentimentTree(
    minipy::Interpreter& interp,
    const std::shared_ptr<minipy::ClassValue>& cls, Rng& rng, int depth,
    std::int64_t dim, float* score_accum) {
  auto node = interp.MakeObject(cls);
  if (depth <= 0 || rng.Uniform() < 0.3) {
    node->attrs["is_leaf"] = std::int64_t{1};
    Tensor emb(DType::kFloat32, Shape{1, dim});
    auto ev = emb.mutable_data<float>();
    float score = 0.0f;
    for (std::int64_t d = 0; d < dim; ++d) {
      const float v = static_cast<float>(rng.Normal());
      ev[static_cast<std::size_t>(d)] = v;
      // Hidden scoring direction: alternating signs.
      score += (d % 2 == 0 ? 1.0f : -1.0f) * v;
    }
    *score_accum += score;
    node->attrs["emb"] = std::move(emb);
    node->attrs["left"] = minipy::NoneType{};
    node->attrs["right"] = minipy::NoneType{};
  } else {
    node->attrs["is_leaf"] = std::int64_t{0};
    node->attrs["emb"] = minipy::NoneType{};
    node->attrs["left"] =
        BuildSentimentTree(interp, cls, rng, depth - 1, dim, score_accum);
    node->attrs["right"] =
        BuildSentimentTree(interp, cls, rng, depth - 1, dim, score_accum);
  }
  return node;
}

}  // namespace janus::models
