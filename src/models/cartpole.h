// The CartPole-v0 physics simulator — the OpenAI Gym environment the paper
// uses for its DRL workloads (Table 2: A3C on CartPole, PPO). The paper's
// footnote 7 notes the environment runs outside the DL framework; here it
// is a C++ substrate exposed to MiniPy programs as builtins.
#ifndef JANUS_MODELS_CARTPOLE_H_
#define JANUS_MODELS_CARTPOLE_H_

#include <array>

#include "common/rng.h"
#include "frontend/interpreter.h"

namespace janus::models {

// Standard CartPole dynamics (Barto, Sutton & Anderson 1983 as implemented
// in Gym): state (x, x_dot, theta, theta_dot); actions {0: left, 1: right};
// reward 1 per step; episode ends when |x| > 2.4, |theta| > 12deg, or after
// max_steps.
class CartPole {
 public:
  explicit CartPole(Rng* rng, int max_steps = 200)
      : rng_(rng), max_steps_(max_steps) {
    Reset();
  }

  std::array<double, 4> Reset();
  // Returns (state, reward, done).
  struct StepResult {
    std::array<double, 4> state;
    double reward;
    bool done;
  };
  StepResult Step(int action);

  int steps() const { return steps_; }

 private:
  Rng* rng_;
  int max_steps_;
  std::array<double, 4> state_{};
  int steps_ = 0;
  bool done_ = false;
};

// Registers `env_reset()` -> state tensor (4,), and
// `env_step(action)` -> [state (4,), reward float, done bool]
// builtins backed by a CartPole owned by the interpreter session.
void RegisterCartPole(minipy::Interpreter& interp, std::uint64_t seed);

}  // namespace janus::models

#endif  // JANUS_MODELS_CARTPOLE_H_
