#include "models/zoo.h"

#include <algorithm>

#include "frontend/builtins.h"
#include "models/cartpole.h"
#include "models/datasets.h"

namespace janus::models {
namespace {

using minipy::Interpreter;

// Common image feed: class-conditional synthetic images into batch_x /
// batch_y. Every 8th batch is smaller, exercising the Fig. 4 shape
// relaxation exactly as Table 2's note describes (dataset size not
// divisible by the batch size).
std::function<void(Interpreter&, Rng&, std::int64_t)> ImageFeed(
    std::int64_t batch, std::int64_t h, std::int64_t w, std::int64_t c,
    std::int64_t classes) {
  return [=](Interpreter& interp, Rng& rng, std::int64_t step) {
    const std::int64_t this_batch =
        step % 8 == 7 ? std::max<std::int64_t>(1, batch / 2) : batch;
    auto [x, y] = SyntheticImageBatch(rng, this_batch, h, w, c, classes);
    interp.SetGlobal("batch_x", std::move(x));
    interp.SetGlobal("batch_y", std::move(y));
  };
}

std::function<void(Interpreter&, Rng&, std::int64_t)> TokenFeed(
    std::int64_t seq, std::int64_t batch, std::int64_t vocab) {
  return [=](Interpreter& interp, Rng& rng, std::int64_t) {
    auto [x, y] = MarkovTokenBatch(rng, seq, batch, vocab);
    interp.SetGlobal("lm_x", std::move(x));
    interp.SetGlobal("lm_y", std::move(y));
  };
}

std::function<void(Interpreter&, Rng&, std::int64_t)> TreeFeed(
    std::int64_t dim, int depth) {
  return [=](Interpreter& interp, Rng& rng, std::int64_t) {
    const auto cls = std::get<std::shared_ptr<minipy::ClassValue>>(
        interp.GetGlobal("TreeNode"));
    float score = 0.0f;
    minipy::Value root =
        BuildSentimentTree(interp, cls, rng, depth, dim, &score);
    interp.SetGlobal("current_tree", std::move(root));
    interp.SetGlobal("tree_label", Tensor::FromVectorInt(
                                       {score > 0 ? 1 : 0}, Shape{1}));
  };
}

// ---------------------------------------------------------------------------
// Model definitions (MiniPy source)
// ---------------------------------------------------------------------------

// LeNet: plain CNN, no dynamic control flow (Table 2: DCF x, IF x).
constexpr const char* kLeNetDef = R"(
c1 = variable('c1', randn([3, 3, 1, 8], 0.25))
c2 = variable('c2', randn([3, 3, 8, 16], 0.15))
fc_w = variable('fc_w', randn([144, 8], 0.1))
fc_b = variable('fc_b', zeros([8]))

def loss_fn():
    h = relu(conv2d(batch_x, c1, 1, 'SAME'))
    h = maxpool(h, 2, 2)
    h = relu(conv2d(h, c2, 1, 'SAME'))
    h = maxpool(h, 2, 2)
    flat = reshape(h, [-1, 144])
    logits = matmul(flat, fc_w) + fc_b
    return reduce_mean(softmax_xent(logits, batch_y))

def accuracy():
    h = relu(conv2d(batch_x, c1, 1, 'SAME'))
    h = maxpool(h, 2, 2)
    h = relu(conv2d(h, c2, 1, 'SAME'))
    h = maxpool(h, 2, 2)
    logits = matmul(reshape(h, [-1, 144]), fc_w) + fc_b
    hits = cast_float(argmax(logits, 1) == batch_y)
    return reduce_mean(hits)
)";

// ResNet50 stand-in: residual blocks with a batch-norm style conditional on
// a training flag — the Fig. 6(a) batch-norm branch (DCF).
constexpr const char* kResNetDef = R"(
stem = variable('stem', randn([3, 3, 3, 8], 0.2))
rw1a = variable('rw1a', randn([3, 3, 8, 8], 0.15))
rw1b = variable('rw1b', randn([3, 3, 8, 8], 0.15))
rw2a = variable('rw2a', randn([3, 3, 8, 8], 0.15))
rw2b = variable('rw2b', randn([3, 3, 8, 8], 0.15))
gamma = variable('gamma', ones([8]))
beta = variable('beta', zeros([8]))
rfc = variable('rfc', randn([128, 8], 0.1))
running_mean = variable('running_mean', zeros([8]))
running_var = variable('running_var', ones([8]))
is_training = constant([1.0])

def batchnorm(x):
    flat = reshape(x, [-1, 8])
    if reduce_sum(is_training) > 0.5:
        m = reduce_mean(flat, 0)
        v = reduce_mean(square(flat - m), 0)
        assign(running_mean, 0.9 * running_mean + 0.1 * m)
        assign(running_var, 0.9 * running_var + 0.1 * v)
        norm = (x - m) / sqrt(v + 0.001)
    else:
        norm = (x - running_mean) / sqrt(running_var + 0.001)
    return gamma * norm + beta

def block(x, wa, wb):
    h = relu(batchnorm(conv2d(x, wa, 1, 'SAME')))
    h = batchnorm(conv2d(h, wb, 1, 'SAME'))
    return relu(h + x)

def forward():
    h = relu(conv2d(batch_x, stem, 1, 'SAME'))
    h = block(h, rw1a, rw1b)
    h = block(h, rw2a, rw2b)
    h = maxpool(h, 2, 2)
    return matmul(reshape(h, [-1, 128]), rfc)

def loss_fn():
    return reduce_mean(softmax_xent(forward(), batch_y))

def accuracy():
    hits = cast_float(argmax(forward(), 1) == batch_y)
    return reduce_mean(hits)
)";

// Inception-v3 stand-in: modules of parallel branches concatenated —
// plenty of concurrently executable operations (+PARL in Fig. 7).
constexpr const char* kInceptionDef = R"(
istem = variable('istem', randn([3, 3, 3, 8], 0.2))
b1x1 = variable('b1x1', randn([1, 1, 8, 4], 0.2))
b3x3 = variable('b3x3', randn([3, 3, 8, 4], 0.15))
b5x5 = variable('b5x5', randn([5, 5, 8, 4], 0.1))
bpool = variable('bpool', randn([1, 1, 8, 4], 0.2))
c1x1 = variable('c1x1', randn([1, 1, 16, 4], 0.2))
c3x3 = variable('c3x3', randn([3, 3, 16, 4], 0.15))
c5x5 = variable('c5x5', randn([5, 5, 16, 4], 0.1))
cpool = variable('cpool', randn([1, 1, 16, 4], 0.2))
ifc = variable('ifc', randn([256, 8], 0.1))
inc_training = constant([1.0])

def module(x, w1, w3, w5, wp):
    p1 = relu(conv2d(x, w1, 1, 'SAME'))
    p3 = relu(conv2d(x, w3, 1, 'SAME'))
    p5 = relu(conv2d(x, w5, 1, 'SAME'))
    pp = sigmoid(conv2d(x, wp, 1, 'SAME'))
    return concat([p1, p3, p5, pp], 3)

def forward():
    h = relu(conv2d(batch_x, istem, 1, 'SAME'))
    h = module(h, b1x1, b3x3, b5x5, bpool)
    if reduce_sum(inc_training) > 0.5:
        h = h * 1.0
    else:
        h = h * 0.9
    h = module(h, c1x1, c3x3, c5x5, cpool)
    h = maxpool(h, 2, 2)
    return matmul(reshape(h, [-1, 256]), ifc)

def loss_fn():
    return reduce_mean(softmax_xent(forward(), batch_y))

def accuracy():
    hits = cast_float(argmax(forward(), 1) == batch_y)
    return reduce_mean(hits)
)";

// LSTM over PTB-like tokens: Python for loop (DCF), hidden state carried
// across sequences through object attributes (IF) — the Fig. 1 pattern.
constexpr const char* kLstmDef = R"(
emb = variable('emb', randn([16, 32], 0.2))
wg = variable('wg', randn([64, 128], 0.1))
bg = variable('bg', zeros([128]))
wo = variable('wo', randn([32, 16], 0.12))
bo = variable('bo', zeros([16]))
seq_len = 8

class LSTMModel:
    def __init__(self):
        self.h = zeros([8, 32])
        self.c = zeros([8, 32])
    def loss(self):
        h = self.h
        c = self.c
        total = 0.0
        for t in range(seq_len):
            x = gather(emb, lm_x[t])
            z = matmul(concat([x, h], 1), wg) + bg
            i = sigmoid(slice2d(z, 0, -1, 0, 32))
            f = sigmoid(slice2d(z, 0, -1, 32, 32))
            o = sigmoid(slice2d(z, 0, -1, 64, 32))
            g = tanh(slice2d(z, 0, -1, 96, 32))
            c = f * c + i * g
            h = o * tanh(c)
            logits = matmul(h, wo) + bo
            total = total + reduce_mean(softmax_xent(logits, lm_y[t]))
        self.h = stop_gradient(h)
        self.c = stop_gradient(c)
        return total / 8.0

model = LSTMModel()

def loss_fn():
    return model.loss()
)";

// LM: the same recurrent structure at "one-billion-word" proportions
// (relatively: bigger vocabulary, wider state, longer sequences).
constexpr const char* kLmDef = R"(
lm_emb = variable('lm_emb', randn([64, 64], 0.15))
lm_wg = variable('lm_wg', randn([128, 256], 0.08))
lm_bg = variable('lm_bg', zeros([256]))
lm_wo = variable('lm_wo', randn([64, 64], 0.1))
lm_bo = variable('lm_bo', zeros([64]))
lm_T = 10

class LMModel:
    def __init__(self):
        self.h = zeros([16, 64])
        self.c = zeros([16, 64])
    def loss(self):
        h = self.h
        c = self.c
        total = 0.0
        for t in range(lm_T):
            x = gather(lm_emb, lm_x[t])
            z = matmul(concat([x, h], 1), lm_wg) + lm_bg
            i = sigmoid(slice2d(z, 0, -1, 0, 64))
            f = sigmoid(slice2d(z, 0, -1, 64, 64))
            o = sigmoid(slice2d(z, 0, -1, 128, 64))
            g = tanh(slice2d(z, 0, -1, 192, 64))
            c = f * c + i * g
            h = o * tanh(c)
            logits = matmul(h, lm_wo) + lm_bo
            total = total + reduce_mean(softmax_xent(logits, lm_y[t]))
        self.h = stop_gradient(h)
        self.c = stop_gradient(c)
        return total / 10.0

lm_model = LMModel()

def loss_fn():
    return lm_model.loss()

def perplexity():
    return exp(loss_fn())
)";

// TreeRNN: recursion over per-sample tree objects — recursive calls,
// base/inductive conditionals, dynamic attribute types (DCF + DT + IF).
constexpr const char* kTreeRnnDef = R"(
class TreeNode:
    pass

tw = variable('tw', randn([16, 16], 0.2))
tout = variable('tout', randn([16, 2], 0.2))

def embed(node):
    if node.is_leaf == 1:
        return node.emb
    a = embed(node.left)
    b = embed(node.right)
    return tanh(matmul(a + b, tw))

def loss_fn():
    logits = matmul(embed(current_tree), tout)
    return reduce_mean(softmax_xent(logits, tree_label))

def accuracy():
    logits = matmul(embed(current_tree), tout)
    hits = cast_float(argmax(logits, 1) == tree_label)
    return reduce_mean(hits)
)";

// TreeLSTM: like TreeRNN with LSTM-style cell state; the recursive function
// returns (h ++ c) as one tensor and splits it at each level.
constexpr const char* kTreeLstmDef = R"(
class TreeNode:
    pass

tl_wi = variable('tl_wi', randn([32, 16], 0.15))
tl_wf = variable('tl_wf', randn([32, 16], 0.15))
tl_wo = variable('tl_wo', randn([32, 16], 0.15))
tl_wg = variable('tl_wg', randn([32, 16], 0.15))
tl_out = variable('tl_out', randn([16, 2], 0.2))

def encode(node):
    if node.is_leaf == 1:
        return concat([node.emb, node.emb * 0.0], 1)
    lhc = encode(node.left)
    rhc = encode(node.right)
    lh = slice2d(lhc, 0, -1, 0, 16)
    lc = slice2d(lhc, 0, -1, 16, 16)
    rh = slice2d(rhc, 0, -1, 0, 16)
    rc = slice2d(rhc, 0, -1, 16, 16)
    hcat = concat([lh, rh], 1)
    i = sigmoid(matmul(hcat, tl_wi))
    f = sigmoid(matmul(hcat, tl_wf))
    o = sigmoid(matmul(hcat, tl_wo))
    g = tanh(matmul(hcat, tl_wg))
    c = f * (lc + rc) + i * g
    h = o * tanh(c)
    return concat([h, c], 1)

def loss_fn():
    hc = encode(current_tree)
    logits = matmul(slice2d(hc, 0, -1, 0, 16), tl_out)
    return reduce_mean(softmax_xent(logits, tree_label))

def accuracy():
    hc = encode(current_tree)
    logits = matmul(slice2d(hc, 0, -1, 0, 16), tl_out)
    hits = cast_float(argmax(logits, 1) == tree_label)
    return reduce_mean(hits)
)";

// A3C on CartPole: the environment rollout runs imperatively (the paper's
// footnote 7 — the simulator is outside the framework); the n-step loss has
// a Python loop with a data-dependent branch per step (DCF) and monitoring
// state writes (IF).
constexpr const char* kA3cDef = R"(
pw1 = variable('pw1', randn([4, 32], 0.3))
pb1 = variable('pb1', zeros([32]))
pw2 = variable('pw2', randn([32, 2], 0.25))
vw = variable('vw', randn([32, 1], 0.25))

class Stats:
    def __init__(self):
        self.episode_reward = zeros([1])
        self.last_loss = zeros([1])

stats = Stats()

def policy_logits(states):
    return matmul(relu(matmul(states, pw1) + pb1), pw2)

def values_of(states):
    return matmul(relu(matmul(states, pw1) + pb1), vw)

def loss_fn():
    logits = policy_logits(roll_s)
    logp = log_softmax(logits)
    v = values_of(roll_s)
    R = stop_gradient(boot_v)
    total_p = 0.0
    total_v = 0.0
    total_e = 0.0
    for k in range(20):
        t = 19 - k
        if reduce_sum(roll_done[t]) > 0.5:
            R = roll_r[t] * 1.0
        else:
            R = roll_r[t] + 0.99 * R
        adv = stop_gradient(R - reduce_sum(v[t]))
        picked = reduce_sum(logp[t] * onehot(roll_a[t], 2))
        total_p = total_p - picked * adv
        diff = reduce_sum(v[t]) - stop_gradient(R)
        total_v = total_v + diff * diff
        total_e = total_e + reduce_sum(exp(logp[t]) * logp[t])
    loss = (total_p + 0.5 * total_v + 0.01 * total_e) / 20.0
    stats.last_loss = loss
    return loss
)";

constexpr const char* kA3cIter = R"(
states = []
actions = []
rewards = []
dones = []
s = env_state
for step in range(20):
    probs = softmax(policy_logits(reshape(s, [1, 4])))
    a = sample_categorical(reshape(probs, [2]))
    out = env_step(a)
    states.append(s)
    actions.append(a)
    rewards.append(out[1])
    dones.append(out[2])
    episode_acc = episode_acc + out[1]
    if out[2]:
        stats.episode_reward = fill([1], episode_acc)
        episode_acc = 0.0
        s = env_reset()
    else:
        s = out[0]
env_state = s
roll_s = stack(states)
roll_a = constant_int(actions)
roll_r = constant(rewards)
roll_done = constant(dones_to_float(dones))
v_last = values_of(reshape(s, [1, 4]))
boot_v = reduce_sum(v_last)
loss = optimize(loss_fn, 0.004)
)";

// PPO on Pong stand-in (CartPole): flat clipped-surrogate loss (Table 2
// marks PPO DCF x), global stats writes (IF).
constexpr const char* kPpoDef = R"(
qw1 = variable('qw1', randn([4, 32], 0.3))
qb1 = variable('qb1', zeros([32]))
qw2 = variable('qw2', randn([32, 2], 0.25))
qv = variable('qv', randn([32, 1], 0.25))

class PpoStats:
    def __init__(self):
        self.episode_reward = zeros([1])

ppo_stats = PpoStats()

def ppo_logits(states):
    return matmul(relu(matmul(states, qw1) + qb1), qw2)

def ppo_values(states):
    return matmul(relu(matmul(states, qw1) + qb1), qv)

def loss_fn():
    logp = log_softmax(ppo_logits(roll_s))
    picked = reduce_sum(logp * onehot_a, 1)
    ratio = exp(picked - old_logp)
    clipped = maximum(minimum(ratio, 1.2), 0.8)
    obj = minimum(ratio * adv_t, clipped * adv_t)
    v = reshape(ppo_values(roll_s), [-1])
    vloss = reduce_mean(square(v - ret_t))
    return 0.5 * vloss - reduce_mean(obj)
)";

constexpr const char* kPpoIter = R"(
states = []
actions = []
rewards = []
dones = []
s = env_state
for step in range(32):
    probs = softmax(ppo_logits(reshape(s, [1, 4])))
    a = sample_categorical(reshape(probs, [2]))
    out = env_step(a)
    states.append(s)
    actions.append(a)
    rewards.append(out[1])
    dones.append(out[2])
    episode_acc = episode_acc + out[1]
    if out[2]:
        ppo_stats.episode_reward = fill([1], episode_acc)
        episode_acc = 0.0
        s = env_reset()
    else:
        s = out[0]
env_state = s
roll_s = stack(states)
onehot_a = onehot(constant_int(actions), 2)
rets = []
acc = 0.0
for k in range(32):
    t = 31 - k
    if dones[t]:
        acc = rewards[t]
    else:
        acc = rewards[t] + 0.99 * acc
    rets.append(acc)
ret_list = []
for k in range(32):
    ret_list.append(rets[31 - k])
ret_t = constant(ret_list)
v_now = reshape(ppo_values(roll_s), [-1])
adv_t = stop_gradient(ret_t - v_now)
old_logp = stop_gradient(reduce_sum(log_softmax(ppo_logits(roll_s)) * onehot_a, 1))
loss = optimize(loss_fn, 0.004)
)";

// AN (the original GAN on MNIST): two conversion units (generator step and
// discriminator step), monitoring writes on a stats object (IF).
constexpr const char* kGanDef = R"(
gw1 = variable('gw1', randn([16, 64], 0.2))
gb1 = variable('gb1', zeros([64]))
gw2 = variable('gw2', randn([64, 144], 0.1))
dw1 = variable('dw1', randn([144, 64], 0.1))
db1 = variable('db1', zeros([64]))
dw2 = variable('dw2', randn([64, 1], 0.15))

class GanStats:
    def __init__(self):
        self.d_loss = zeros([1])
        self.g_loss = zeros([1])

gan_stats = GanStats()

def generate(z):
    return tanh(matmul(relu(matmul(z, gw1) + gb1), gw2))

def discriminate(x, w1, b1, w2):
    return sigmoid(matmul(relu(matmul(x, w1) + b1), w2))

def d_loss_fn():
    real = reshape(batch_x, [-1, 144])
    fake = stop_gradient(generate(noise_z))
    d_real = discriminate(real, dw1, db1, dw2)
    d_fake = discriminate(fake, dw1, db1, dw2)
    loss = 0.0 - reduce_mean(log(d_real + 0.0001)) - reduce_mean(log(1.0001 - d_fake))
    gan_stats.d_loss = loss
    return loss

def g_loss_fn():
    fake = generate(noise_z)
    frozen_w1 = stop_gradient(dw1 * 1.0)
    frozen_b1 = stop_gradient(db1 * 1.0)
    frozen_w2 = stop_gradient(dw2 * 1.0)
    d_fake = discriminate(fake, frozen_w1, frozen_b1, frozen_w2)
    loss = 0.0 - reduce_mean(log(d_fake + 0.0001))
    gan_stats.g_loss = loss
    return loss
)";

// pix2pix: conditional image translation at batch size 1 (Table 2).
constexpr const char* kPix2PixDef = R"(
ge1 = variable('ge1', randn([3, 3, 1, 8], 0.2))
ge2 = variable('ge2', randn([3, 3, 8, 8], 0.15))
gd1 = variable('gd1', randn([3, 3, 8, 1], 0.2))
pdw1 = variable('pdw1', randn([3, 3, 2, 4], 0.2))
pdw2 = variable('pdw2', randn([64, 1], 0.15))

class PixStats:
    def __init__(self):
        self.g_loss = zeros([1])

pix_stats = PixStats()

def translate(x):
    h = relu(conv2d(x, ge1, 1, 'SAME'))
    h = relu(conv2d(h, ge2, 1, 'SAME'))
    return tanh(conv2d(h, gd1, 1, 'SAME'))

def judge(x, y, w1, w2):
    pair = concat([x, y], 3)
    h = relu(conv2d(pair, w1, 2, 'SAME'))
    return sigmoid(matmul(reshape(h, [-1, 64]), w2))

def d_loss_fn():
    fake = stop_gradient(translate(pix_x))
    d_real = judge(pix_x, pix_y, pdw1, pdw2)
    d_fake = judge(pix_x, fake, pdw1, pdw2)
    return 0.0 - reduce_mean(log(d_real + 0.0001)) - reduce_mean(log(1.0001 - d_fake))

def g_loss_fn():
    fake = translate(pix_x)
    fw1 = stop_gradient(pdw1 * 1.0)
    fw2 = stop_gradient(pdw2 * 1.0)
    d_fake = judge(pix_x, fake, fw1, fw2)
    l1 = reduce_mean(abs(fake - pix_y))
    loss = 10.0 * l1 - reduce_mean(log(d_fake + 0.0001))
    pix_stats.g_loss = loss
    return loss
)";

std::vector<ModelSpec> BuildZoo() {
  std::vector<ModelSpec> zoo;

  {
    ModelSpec m;
    m.name = "LeNet";
    m.category = "CNN";
    m.dataset = "synthetic MNIST 12x12";
    m.batch_size = 16;
    m.dcf = false;
    m.impure = false;
    m.unit = "images/s";
    m.items_per_iteration = 16;
    m.definition = kLeNetDef;
    m.iteration = "loss = optimize(loss_fn, 0.05)\n";
    m.eval_source = "metric = accuracy()\n";
    m.metric_name = "test accuracy";
    m.feed = ImageFeed(16, 12, 12, 1, 8);
    m.feed_eval = [](Interpreter& interp, Rng& rng) {
      ImageFeed(32, 12, 12, 1, 8)(interp, rng, 0);
    };
    zoo.push_back(std::move(m));
  }
  {
    ModelSpec m;
    m.name = "ResNet50";
    m.category = "CNN";
    m.dataset = "synthetic ImageNet 8x8";
    m.batch_size = 8;
    m.dcf = true;
    m.impure = false;
    m.unit = "images/s";
    m.items_per_iteration = 8;
    m.definition = kResNetDef;
    m.iteration = "loss = optimize(loss_fn, 0.03)\n";
    m.eval_source = "metric = accuracy()\n";
    m.metric_name = "test accuracy";
    m.feed = ImageFeed(8, 8, 8, 3, 8);
    m.feed_eval = [](Interpreter& interp, Rng& rng) {
      ImageFeed(16, 8, 8, 3, 8)(interp, rng, 0);
    };
    zoo.push_back(std::move(m));
  }
  {
    ModelSpec m;
    m.name = "Inception-v3";
    m.category = "CNN";
    m.dataset = "synthetic ImageNet 8x8";
    m.batch_size = 8;
    m.dcf = true;
    m.impure = false;
    m.unit = "images/s";
    m.items_per_iteration = 8;
    m.definition = kInceptionDef;
    m.iteration = "loss = optimize(loss_fn, 0.03)\n";
    m.eval_source = "metric = accuracy()\n";
    m.metric_name = "test accuracy";
    m.feed = ImageFeed(8, 8, 8, 3, 8);
    m.feed_eval = [](Interpreter& interp, Rng& rng) {
      ImageFeed(16, 8, 8, 3, 8)(interp, rng, 0);
    };
    zoo.push_back(std::move(m));
  }
  {
    ModelSpec m;
    m.name = "LSTM";
    m.category = "RNN";
    m.dataset = "synthetic PTB (Markov tokens)";
    m.batch_size = 8;
    m.dcf = true;
    m.impure = true;
    m.unit = "words/s";
    m.items_per_iteration = 8 * 8;
    m.definition = kLstmDef;
    m.iteration = "loss = optimize(loss_fn, 0.2)\n";
    m.eval_source = "metric = exp(loss_fn())\n";
    m.metric_name = "perplexity";
    m.feed = TokenFeed(8, 8, 16);
    m.feed_eval = [](Interpreter& interp, Rng& rng) {
      TokenFeed(8, 8, 16)(interp, rng, 0);
    };
    zoo.push_back(std::move(m));
  }
  {
    ModelSpec m;
    m.name = "LM";
    m.category = "RNN";
    m.dataset = "synthetic 1B (Markov tokens)";
    m.batch_size = 16;
    m.dcf = true;
    m.impure = true;
    m.unit = "words/s";
    m.items_per_iteration = 10 * 16;
    m.definition = kLmDef;
    m.iteration = "loss = optimize(loss_fn, 0.25)\n";
    m.eval_source = "metric = perplexity()\n";
    m.metric_name = "perplexity";
    m.feed = TokenFeed(10, 16, 64);
    m.feed_eval = [](Interpreter& interp, Rng& rng) {
      TokenFeed(10, 16, 64)(interp, rng, 0);
    };
    zoo.push_back(std::move(m));
  }
  {
    ModelSpec m;
    m.name = "TreeRNN";
    m.category = "TreeNN";
    m.dataset = "synthetic SST trees";
    m.batch_size = 1;
    m.dcf = true;
    m.impure = true;
    m.unit = "sentences/s";
    m.items_per_iteration = 1;
    m.definition = kTreeRnnDef;
    m.iteration = "loss = optimize(loss_fn, 0.03)\n";
    m.eval_source = "metric = accuracy()\n";
    m.eval_repeats = 12;
    m.metric_name = "test accuracy";
    m.feed = TreeFeed(16, 4);
    m.feed_eval = [](Interpreter& interp, Rng& rng) {
      TreeFeed(16, 4)(interp, rng, 0);
    };
    zoo.push_back(std::move(m));
  }
  {
    ModelSpec m;
    m.name = "TreeLSTM";
    m.category = "TreeNN";
    m.dataset = "synthetic SST trees";
    m.batch_size = 1;
    m.dcf = true;
    m.impure = true;
    m.unit = "sentences/s";
    m.items_per_iteration = 1;
    m.definition = kTreeLstmDef;
    m.iteration = "loss = optimize(loss_fn, 0.03)\n";
    m.eval_source = "metric = accuracy()\n";
    m.eval_repeats = 12;
    m.metric_name = "test accuracy";
    m.feed = TreeFeed(16, 4);
    m.feed_eval = [](Interpreter& interp, Rng& rng) {
      TreeFeed(16, 4)(interp, rng, 0);
    };
    zoo.push_back(std::move(m));
  }
  {
    ModelSpec m;
    m.name = "A3C";
    m.category = "DRL";
    m.dataset = "CartPole (simulated)";
    m.batch_size = 20;
    m.dcf = true;
    m.impure = true;
    m.unit = "frames/s";
    m.items_per_iteration = 20;
    m.definition = std::string(kA3cDef) +
                   "\nenv_state = env_reset()\nepisode_acc = 0.0\n" +
                   R"(
def dones_to_float(flags):
    out = []
    for f in flags:
        if f:
            out.append(1.0)
        else:
            out.append(0.0)
    return out
)";
    m.iteration = kA3cIter;
    m.eval_source =
        "metric = reduce_sum(stats.episode_reward)\n";
    m.metric_name = "episode reward";
    m.setup = [](Interpreter& interp, std::uint64_t seed) {
      RegisterCartPole(interp, seed + 1000);
    };
    zoo.push_back(std::move(m));
  }
  {
    ModelSpec m;
    m.name = "PPO";
    m.category = "DRL";
    m.dataset = "CartPole (simulated)";
    m.batch_size = 32;
    m.dcf = false;
    m.impure = true;
    m.unit = "frames/s";
    m.items_per_iteration = 32;
    m.definition = std::string(kPpoDef) +
                   "\nenv_state = env_reset()\nepisode_acc = 0.0\n";
    m.iteration = kPpoIter;
    m.eval_source = "metric = reduce_sum(ppo_stats.episode_reward)\n";
    m.metric_name = "episode reward";
    m.setup = [](Interpreter& interp, std::uint64_t seed) {
      RegisterCartPole(interp, seed + 2000);
    };
    zoo.push_back(std::move(m));
  }
  {
    ModelSpec m;
    m.name = "AN";
    m.category = "GAN";
    m.dataset = "synthetic MNIST 12x12";
    m.batch_size = 16;
    m.dcf = false;
    m.impure = true;
    m.unit = "images/s";
    m.items_per_iteration = 16;
    m.definition = kGanDef;
    m.iteration = R"(
d_loss = optimize(d_loss_fn, 0.04)
g_loss = optimize(g_loss_fn, 0.04)
loss = d_loss
)";
    m.eval_source = "metric = reduce_sum(gan_stats.d_loss)\n";
    m.metric_name = "discriminator loss";
    m.feed = [](Interpreter& interp, Rng& rng, std::int64_t step) {
      ImageFeed(16, 12, 12, 1, 8)(interp, rng, step);
      Tensor z(DType::kFloat32, Shape{16, 16});
      for (float& v : z.mutable_data<float>()) {
        v = static_cast<float>(rng.Normal());
      }
      interp.SetGlobal("noise_z", std::move(z));
    };
    m.feed_eval = [](Interpreter&, Rng&) {};
    zoo.push_back(std::move(m));
  }
  {
    ModelSpec m;
    m.name = "pix2pix";
    m.category = "GAN";
    m.dataset = "synthetic Facades pairs 8x8";
    m.batch_size = 1;
    m.dcf = false;
    m.impure = true;
    m.unit = "images/s";
    m.items_per_iteration = 1;
    m.definition = kPix2PixDef;
    m.iteration = R"(
d_loss = optimize(d_loss_fn, 0.02)
g_loss = optimize(g_loss_fn, 0.02)
loss = g_loss
)";
    m.eval_source = "metric = reduce_sum(pix_stats.g_loss)\n";
    m.metric_name = "generator loss";
    m.feed = [](Interpreter& interp, Rng& rng, std::int64_t) {
      auto [x, y] = PairedImageBatch(rng, 1, 8, 1);
      interp.SetGlobal("pix_x", std::move(x));
      interp.SetGlobal("pix_y", std::move(y));
    };
    m.feed_eval = [](Interpreter&, Rng&) {};
    zoo.push_back(std::move(m));
  }
  return zoo;
}

}  // namespace

const std::vector<ModelSpec>& ModelZoo() {
  static const auto* const zoo = new std::vector<ModelSpec>(BuildZoo());
  return *zoo;
}

const ModelSpec& FindModel(const std::string& name) {
  for (const ModelSpec& spec : ModelZoo()) {
    if (spec.name == name) return spec;
  }
  throw InvalidArgument("unknown model '" + name + "'");
}

ModelSession::ModelSession(const ModelSpec& spec, const EngineOptions& options,
                           std::uint64_t seed)
    : spec_(spec),
      variables_(std::make_unique<VariableStore>()),
      model_rng_(std::make_unique<Rng>(seed)),
      data_rng_(std::make_unique<Rng>(seed ^ 0xD5A7A)),
      interp_(std::make_unique<minipy::Interpreter>(variables_.get(),
                                                    model_rng_.get())) {
  minipy::InstallBuiltins(*interp_);
  engine_ = std::make_unique<JanusEngine>(interp_.get(), options);
  engine_->Attach();
  if (spec_.setup) spec_.setup(*interp_, seed);
  interp_->Run(spec_.definition);
}

ModelSession::~ModelSession() = default;

double ModelSession::Step() {
  if (spec_.feed) spec_.feed(*interp_, *data_rng_, step_);
  ++step_;
  interp_->Run(spec_.iteration);
  const minipy::Value loss = interp_->GetGlobal("loss");
  if (const auto* t = std::get_if<Tensor>(&loss)) return t->ElementAsDouble(0);
  if (const auto* d = std::get_if<double>(&loss)) return *d;
  return 0.0;
}

double ModelSession::Eval() {
  if (spec_.eval_source.empty()) return 0.0;
  double total = 0.0;
  const int repeats = std::max(1, spec_.eval_repeats);
  for (int r = 0; r < repeats; ++r) {
    if (spec_.feed_eval) spec_.feed_eval(*interp_, *data_rng_);
    interp_->Run(spec_.eval_source);
    const minipy::Value metric = interp_->GetGlobal("metric");
    if (const auto* t = std::get_if<Tensor>(&metric)) {
      total += t->ElementAsDouble(0);
    } else if (const auto* d = std::get_if<double>(&metric)) {
      total += *d;
    }
  }
  return total / repeats;
}

}  // namespace janus::models
