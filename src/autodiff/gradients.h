// Symbolic reverse-mode automatic differentiation over the dataflow graph
// IR. The paper (§3.1) inserts differentiation and parameter-update
// operations into the generated graph automatically; this module is that
// machinery.
//
// Supported structures:
//  * straight-line and DAG graphs (all differentiable kernels),
//  * conditionals built from Switch/Merge (the gradient of a Merge is a
//    Switch keyed on the Merge's taken-index output and vice versa, so
//    deadness routes gradients down the taken branch only),
//  * functional While loops (the forward loop records a per-iteration tape;
//    the gradient is a WhileGrad op that re-applies the body's gradient
//    function backwards over the tape),
//  * Invoke function calls, including recursion (a gradient function
//    f_grad is generated per called function; recursive calls reference
//    f_grad by name before its body is complete, mirroring how recursive
//    gradients work in Jeong et al., EuroSys'18).
#ifndef JANUS_AUTODIFF_GRADIENTS_H_
#define JANUS_AUTODIFF_GRADIENTS_H_

#include <optional>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace janus {

// A (forward output, incoming gradient) seed pair.
struct GradientSeed {
  NodeOutput value;
  NodeOutput gradient;
};

// Appends gradient nodes to `graph`, differentiating the seeded outputs with
// respect to `targets`. Returns one gradient per target, in order; targets
// that the seeds do not reach get a ZerosLike gradient. `library` receives
// generated gradient functions for Invoke/While nodes on the path.
std::vector<NodeOutput> AddGradients(Graph& graph, FunctionLibrary& library,
                                     std::span<const GradientSeed> seeds,
                                     std::span<const NodeOutput> targets);

// Convenience overload: dLoss/dTargets with an implicit OnesLike(loss) seed.
std::vector<NodeOutput> AddGradients(Graph& graph, FunctionLibrary& library,
                                     NodeOutput loss,
                                     std::span<const NodeOutput> targets);

// Builds (or returns the cached) gradient function of `fn`:
//   parameters: fn.parameters..., then one gradient per fn.result
//   results:    one gradient per fn.parameter
// The forward body is inlined (recomputed) inside the gradient function.
// The generated function is registered in `library` as "<fn.name>__grad".
const GraphFunction& EnsureGradientFunction(FunctionLibrary& library,
                                            const GraphFunction& fn);

// Builds the While-body gradient function used by the WhileGrad kernel:
//   parameters: body params (carried..., captures...), then gradients of the
//               body results (grad_carried_out...)
//   results:    grad_carried_in..., grad_captures...
// Registered as "<body.name>__loopgrad".
const GraphFunction& EnsureLoopBodyGradient(FunctionLibrary& library,
                                            const GraphFunction& body,
                                            int num_carried);

}  // namespace janus

#endif  // JANUS_AUTODIFF_GRADIENTS_H_
