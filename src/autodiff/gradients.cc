#include "autodiff/gradients.h"

#include <algorithm>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/error.h"

namespace janus {
namespace {

using OptOut = std::optional<NodeOutput>;

NodeOutput ZerosLikeOf(Graph& g, NodeOutput v) {
  return {g.AddNode("ZerosLike", {v}), 0};
}

NodeOutput OnesLikeOf(Graph& g, NodeOutput v) {
  return {g.AddNode("OnesLike", {v}), 0};
}

NodeOutput Op1(Graph& g, const char* op, NodeOutput a, AttrMap attrs = {}) {
  return {g.AddNode(op, {a}, std::move(attrs)), 0};
}

NodeOutput Op2(Graph& g, const char* op, NodeOutput a, NodeOutput b,
               AttrMap attrs = {}) {
  return {g.AddNode(op, {a, b}, std::move(attrs)), 0};
}

NodeOutput Op3(Graph& g, const char* op, NodeOutput a, NodeOutput b,
               NodeOutput c, AttrMap attrs = {}) {
  return {g.AddNode(op, {a, b, c}, std::move(attrs)), 0};
}

// Reduces gradient `g_val` back to the (runtime) shape of operand `operand`
// — the standard broadcasting-gradient correction.
NodeOutput R(Graph& g, NodeOutput g_val, NodeOutput operand) {
  return Op2(g, "ReduceToShapeOf", g_val, operand);
}

NodeOutput FloatConst(Graph& g, float v) { return g.Constant(Tensor::Scalar(v)); }

// Computes the gradients of `node`'s inputs given the gradients of its
// outputs (`gout`, one optional per output). Returns one optional per input.
std::vector<OptOut> OpGradient(Graph& g, FunctionLibrary& lib, Node* node,
                               const std::vector<OptOut>& gout) {
  const std::string& op = node->op();
  const auto in = [&](int i) { return node->input(i); };
  const NodeOutput y{node, 0};
  const int n_in = node->num_inputs();
  std::vector<OptOut> din(static_cast<std::size_t>(n_in));

  // Most rules only use the gradient of output 0.
  const OptOut& g0 = gout.at(0);
  const auto need0 = [&]() -> NodeOutput {
    JANUS_EXPECTS(g0.has_value());
    return *g0;
  };

  if (op == "Add") {
    din[0] = R(g, need0(), in(0));
    din[1] = R(g, need0(), in(1));
  } else if (op == "Sub") {
    din[0] = R(g, need0(), in(0));
    din[1] = R(g, Op1(g, "Neg", need0()), in(1));
  } else if (op == "Mul") {
    din[0] = R(g, Op2(g, "Mul", need0(), in(1)), in(0));
    din[1] = R(g, Op2(g, "Mul", need0(), in(0)), in(1));
  } else if (op == "Div") {
    din[0] = R(g, Op2(g, "Div", need0(), in(1)), in(0));
    din[1] = R(g,
               Op1(g, "Neg",
                   Op2(g, "Div", Op2(g, "Mul", need0(), in(0)),
                       Op1(g, "Square", in(1)))),
               in(1));
  } else if (op == "Pow") {
    // d/da a^b = b * a^(b-1);  d/db a^b = a^b * ln a.
    const NodeOutput bm1 = Op2(g, "Sub", in(1), OnesLikeOf(g, in(1)));
    din[0] = R(g,
               Op2(g, "Mul", need0(),
                   Op2(g, "Mul", in(1), Op2(g, "Pow", in(0), bm1))),
               in(0));
    din[1] = R(g, Op2(g, "Mul", need0(), Op2(g, "Mul", y, Op1(g, "Log", in(0)))),
               in(1));
  } else if (op == "Maximum" || op == "Minimum") {
    const char* cmp_a = op == "Maximum" ? "GreaterEqual" : "LessEqual";
    const char* cmp_b = op == "Maximum" ? "Greater" : "Less";
    const NodeOutput mask_a =
        Op1(g, "Cast", Op2(g, cmp_a, in(0), in(1)), {{"dtype", DType::kFloat32}});
    const NodeOutput mask_b =
        Op1(g, "Cast", Op2(g, cmp_b, in(1), in(0)), {{"dtype", DType::kFloat32}});
    din[0] = R(g, Op2(g, "Mul", need0(), mask_a), in(0));
    din[1] = R(g, Op2(g, "Mul", need0(), mask_b), in(1));
  } else if (op == "Neg") {
    din[0] = Op1(g, "Neg", need0());
  } else if (op == "Abs") {
    din[0] = Op2(g, "Mul", need0(), Op1(g, "Sign", in(0)));
  } else if (op == "Exp") {
    din[0] = Op2(g, "Mul", need0(), y);
  } else if (op == "Log") {
    din[0] = Op2(g, "Div", need0(), in(0));
  } else if (op == "Sqrt") {
    din[0] = Op2(g, "Div", Op2(g, "Mul", need0(), FloatConst(g, 0.5f)), y);
  } else if (op == "Square") {
    din[0] = Op2(g, "Mul", need0(),
                 Op2(g, "Mul", FloatConst(g, 2.0f), in(0)));
  } else if (op == "Tanh") {
    din[0] = Op2(g, "Mul", need0(),
                 Op2(g, "Sub", OnesLikeOf(g, y), Op1(g, "Square", y)));
  } else if (op == "Sigmoid") {
    din[0] = Op2(g, "Mul", need0(),
                 Op2(g, "Mul", y, Op2(g, "Sub", OnesLikeOf(g, y), y)));
  } else if (op == "Relu") {
    din[0] = Op2(g, "ReluGrad", need0(), in(0));
  } else if (op == "Identity" || op == "Assert" || op == "AssertShape" ||
             op == "AssignVariable" || op == "PySetAttr") {
    // Value-passthrough ops: gradient flows to the passed-through input
    // (the last data input for PySetAttr; input 0 otherwise).
    if (op == "PySetAttr") {
      din[1] = need0();
    } else {
      din[0] = need0();
    }
  } else if (op == "StopGradient" || op == "Sign" || op == "ArgMax" ||
             op == "Equal" || op == "NotEqual" || op == "Less" ||
             op == "LessEqual" || op == "Greater" || op == "GreaterEqual" ||
             op == "LogicalAnd" || op == "LogicalOr" || op == "LogicalNot" ||
             op == "OneHot" || op == "Shape" || op == "Size" ||
             op == "PyGetAttr" || op == "PyGetSubscr" || op == "FloorDiv" ||
             op == "Mod" || op == "ZerosLike" || op == "OnesLike") {
    // No gradient (integer/bool semantics or explicit gradient sinks).
  } else if (op == "MatMul") {
    din[0] = Op2(g, "MatMul", need0(), Op1(g, "Transpose", in(1)));
    din[1] = Op2(g, "MatMul", Op1(g, "Transpose", in(0)), need0());
  } else if (op == "Transpose") {
    din[0] = Op1(g, "Transpose", need0());
  } else if (op == "Reshape" || op == "ReshapeLike") {
    din[0] = Op2(g, "ReshapeLike", need0(), in(0));
  } else if (op == "BroadcastTo") {
    din[0] = R(g, need0(), in(0));
  } else if (op == "Concat") {
    std::vector<NodeOutput> inputs{need0()};
    for (int i = 0; i < n_in; ++i) inputs.push_back(in(i));
    Node* split = g.AddNode("ConcatGrad", inputs,
                            {{"axis", node->GetIntAttr("axis")}}, n_in);
    for (int i = 0; i < n_in; ++i) din[static_cast<std::size_t>(i)] = {split, i};
  } else if (op == "Stack") {
    Node* unstack = g.AddNode("Unstack", {need0()}, {}, n_in);
    for (int i = 0; i < n_in; ++i) {
      din[static_cast<std::size_t>(i)] = {unstack, i};
    }
  } else if (op == "Unstack") {
    std::vector<NodeOutput> parts;
    for (int i = 0; i < node->num_outputs(); ++i) {
      if (gout.at(static_cast<std::size_t>(i)).has_value()) {
        parts.push_back(*gout[static_cast<std::size_t>(i)]);
      } else {
        parts.push_back(ZerosLikeOf(g, {node, i}));
      }
    }
    din[0] = {g.AddNode("Stack", parts), 0};
  } else if (op == "Slice") {
    din[0] = Op2(g, "SliceGrad", need0(), in(0),
                 {{"begin", node->GetIntListAttr("begin")}});
  } else if (op == "Cast") {
    din[0] = Op2(g, "CastLike", need0(), in(0));
  } else if (op == "ReduceSum" || op == "ReduceMean") {
    din[0] = Op2(g, "BroadcastLike", need0(), in(0),
                 {{"axes", node->GetIntListAttr("axes")},
                  {"keep_dims", node->GetBoolAttr("keep_dims")},
                  {"mean", op == "ReduceMean"}});
  } else if (op == "ReduceMax") {
    const AttrMap bl{{"axes", node->GetIntListAttr("axes")},
                     {"keep_dims", node->GetBoolAttr("keep_dims")}};
    const NodeOutput max_b = Op2(g, "BroadcastLike", y, in(0), bl);
    const NodeOutput g_b = Op2(g, "BroadcastLike", need0(), in(0), bl);
    const NodeOutput mask = Op1(g, "Cast", Op2(g, "Equal", in(0), max_b),
                                {{"dtype", DType::kFloat32}});
    din[0] = Op2(g, "Mul", mask, g_b);
  } else if (op == "Softmax") {
    const NodeOutput gy = Op2(g, "Mul", need0(), y);
    const NodeOutput s = Op1(g, "ReduceSum", gy,
                             {{"axes", std::vector<std::int64_t>{-1}},
                              {"keep_dims", true}});
    din[0] = Op2(g, "Mul", y, Op2(g, "Sub", need0(), s));
  } else if (op == "LogSoftmax") {
    const NodeOutput s = Op1(g, "ReduceSum", need0(),
                             {{"axes", std::vector<std::int64_t>{-1}},
                              {"keep_dims", true}});
    din[0] = Op2(g, "Sub", need0(), Op2(g, "Mul", Op1(g, "Exp", y), s));
  } else if (op == "SoftmaxCrossEntropy") {
    din[0] = Op3(g, "SoftmaxCrossEntropyGrad", in(0), in(1), need0());
  } else if (op == "Gather") {
    din[0] = Op3(g, "GatherGradLike", in(0), in(1), need0());
  } else if (op == "DynamicIndex") {
    din[0] = Op3(g, "DynamicIndexGrad", in(0), in(1), need0());
  } else if (op == "Conv2D") {
    const AttrMap attrs{{"stride", node->GetIntAttr("stride")},
                        {"padding", node->GetStringAttr("padding")}};
    din[0] = Op3(g, "Conv2DGradInput", in(1), need0(), in(0), attrs);
    din[1] = Op3(g, "Conv2DGradFilter", in(0), need0(), in(1), attrs);
  } else if (op == "MaxPool2D") {
    din[0] = Op2(g, "MaxPool2DGrad", in(0), need0(),
                 {{"window", node->GetIntAttr("window")},
                  {"stride", node->GetIntAttr("stride")}});
  } else if (op == "AvgPool2D") {
    din[0] = Op2(g, "AvgPool2DGrad", need0(), in(0),
                 {{"window", node->GetIntAttr("window")},
                  {"stride", node->GetIntAttr("stride")}});
  } else if (op == "Select") {
    din[1] = R(g, Op3(g, "Select", in(0), need0(), ZerosLikeOf(g, need0())),
               in(1));
    din[2] = R(g, Op3(g, "Select", in(0), ZerosLikeOf(g, need0()), need0()),
               in(2));
  } else if (op == "AddN") {
    for (int i = 0; i < n_in; ++i) {
      din[static_cast<std::size_t>(i)] = R(g, need0(), in(i));
    }
  } else if (op == "Merge") {
    // Route the gradient to whichever input produced the forward value,
    // using the Merge's taken-index output as the predicate (only binary
    // merges, which is all the generator emits).
    JANUS_EXPECTS(n_in == 2);
    const NodeOutput zero = g.Constant(Tensor::ScalarInt(0));
    const NodeOutput took_first = Op2(g, "Equal", NodeOutput{node, 1}, zero);
    Node* sw = g.AddNode("Switch", {need0(), took_first}, {}, 2);
    din[0] = {sw, 1};  // predicate true: input 0 was taken
    din[1] = {sw, 0};
  } else if (op == "Switch") {
    // Merge the branch gradients back together; the untaken side's gradient
    // token is dead. A branch that contributes no gradient (e.g. the value
    // feeds only non-differentiable ops there) gets a ZerosLike fallback
    // anchored on that branch's Switch output, which is live exactly when
    // that branch is taken — so the Merge always sees one live input.
    const NodeOutput g_false = gout.at(0).has_value()
                                   ? *gout.at(0)
                                   : ZerosLikeOf(g, {node, 0});
    const NodeOutput g_true = gout.at(1).has_value()
                                  ? *gout.at(1)
                                  : ZerosLikeOf(g, {node, 1});
    din[0] = {g.AddNode("Merge", {g_false, g_true}, {}, 2), 0};
    // No gradient for the predicate (input 1).
  } else if (op == "Invoke") {
    const GraphFunction& fn =
        lib.Lookup(node->GetStringAttr("function"));
    const GraphFunction& grad_fn = EnsureGradientFunction(lib, fn);
    std::vector<NodeOutput> inputs;
    for (int i = 0; i < n_in; ++i) inputs.push_back(in(i));
    for (int i = 0; i < node->num_outputs(); ++i) {
      const auto& go = gout.at(static_cast<std::size_t>(i));
      inputs.push_back(go.has_value() ? *go : ZerosLikeOf(g, {node, i}));
    }
    Node* call = g.AddNode("Invoke", inputs,
                           {{"function", grad_fn.name}}, n_in);
    for (int i = 0; i < n_in; ++i) din[static_cast<std::size_t>(i)] = {call, i};
  } else if (op == "While") {
    const auto num_carried =
        static_cast<int>(node->GetIntAttr("num_carried"));
    const int num_captures = n_in - num_carried;
    const GraphFunction& body = lib.Lookup(node->GetStringAttr("body_fn"));
    const GraphFunction& body_grad =
        EnsureLoopBodyGradient(lib, body, num_carried);
    node->SetAttr("record_tape", true);
    std::vector<NodeOutput> inputs;
    for (int i = 0; i < num_carried; ++i) {
      const auto& go = gout.at(static_cast<std::size_t>(i));
      inputs.push_back(go.has_value() ? *go : ZerosLikeOf(g, {node, i}));
    }
    for (int i = num_carried; i < n_in; ++i) inputs.push_back(in(i));
    Node* wg = g.AddNode(
        "WhileGrad", inputs,
        {{"body_grad_fn", body_grad.name},
         {"forward_id", static_cast<std::int64_t>(node->id())},
         {"num_carried", static_cast<std::int64_t>(num_carried)},
         {"num_captures", static_cast<std::int64_t>(num_captures)}},
        n_in);
    // Order the gradient after the forward loop so the tape exists.
    wg->AddControlInput(node);
    for (int i = 0; i < n_in; ++i) din[static_cast<std::size_t>(i)] = {wg, i};
  } else if (op == "Enter" || op == "Exit" || op == "NextIteration") {
    throw NotConvertible(
        "gradient through dataflow frame primitives is not supported; "
        "differentiable loops must use the functional While op");
  } else {
    throw NotConvertible("no gradient rule for op '" + op + "'");
  }
  return din;
}

struct OutKey {
  const Node* node;
  int index;
  bool operator==(const OutKey& other) const = default;
};
struct OutKeyHash {
  std::size_t operator()(const OutKey& key) const {
    return std::hash<const void*>()(key.node) * 2654435761u ^
           static_cast<std::size_t>(key.index);
  }
};

}  // namespace

std::vector<NodeOutput> AddGradients(Graph& graph, FunctionLibrary& library,
                                     std::span<const GradientSeed> seeds,
                                     std::span<const NodeOutput> targets) {
  // 1. Collect the backward-reachable subgraph (data edges only).
  std::unordered_set<Node*> subgraph;
  {
    std::vector<Node*> stack;
    for (const GradientSeed& seed : seeds) stack.push_back(seed.value.node);
    while (!stack.empty()) {
      Node* node = stack.back();
      stack.pop_back();
      if (!subgraph.insert(node).second) continue;
      for (const NodeOutput& input : node->inputs()) stack.push_back(input.node);
    }
  }

  // 2. Topological order via iterative DFS postorder (producers first);
  //    processed reversed, so every consumer is handled before its producer.
  std::vector<Node*> postorder;
  {
    std::unordered_set<Node*> visited;
    std::vector<std::pair<Node*, std::size_t>> stack;
    for (const GradientSeed& seed : seeds) {
      if (visited.count(seed.value.node) != 0u) continue;
      stack.push_back({seed.value.node, 0});
      visited.insert(seed.value.node);
      while (!stack.empty()) {
        auto& [node, next_input] = stack.back();
        if (next_input < node->inputs().size()) {
          Node* producer =
              node->inputs()[next_input].node;
          ++next_input;
          if (visited.insert(producer).second) stack.push_back({producer, 0});
        } else {
          postorder.push_back(node);
          stack.pop_back();
        }
      }
    }
  }

  // 3. Accumulate gradient contributions per (node, output).
  std::unordered_map<OutKey, std::vector<NodeOutput>, OutKeyHash> contribs;
  for (const GradientSeed& seed : seeds) {
    contribs[{seed.value.node, seed.value.index}].push_back(seed.gradient);
  }

  const auto total_for = [&](Node* node, int index) -> OptOut {
    const auto it = contribs.find({node, index});
    if (it == contribs.end() || it->second.empty()) return std::nullopt;
    if (it->second.size() == 1) return it->second.front();
    return NodeOutput{graph.AddNode("AddN", it->second), 0};
  };

  for (auto it = postorder.rbegin(); it != postorder.rend(); ++it) {
    Node* node = *it;
    if (node->num_inputs() == 0) continue;  // leaves: Const/Param/ReadVariable
    // Gradient nodes (including AddN accumulators built by total_for)
    // attribute to the forward node's imperative source site.
    SourceSiteScope site_scope(node->site());
    std::vector<OptOut> gout(static_cast<std::size_t>(node->num_outputs()));
    bool any = false;
    for (int i = 0; i < node->num_outputs(); ++i) {
      gout[static_cast<std::size_t>(i)] = total_for(node, i);
      if (gout[static_cast<std::size_t>(i)].has_value()) any = true;
    }
    if (!any) continue;
    const std::vector<OptOut> din = OpGradient(graph, library, node, gout);
    JANUS_ENSURES(din.size() == static_cast<std::size_t>(node->num_inputs()));
    for (int i = 0; i < node->num_inputs(); ++i) {
      const auto& d = din[static_cast<std::size_t>(i)];
      if (!d.has_value()) continue;
      const NodeOutput input = node->input(i);
      contribs[{input.node, input.index}].push_back(*d);
    }
  }

  // 4. Collect target gradients; unreached targets get zeros.
  std::vector<NodeOutput> results;
  results.reserve(targets.size());
  for (const NodeOutput& target : targets) {
    SourceSiteScope site_scope(target.node->site());
    const OptOut total = total_for(target.node, target.index);
    results.push_back(total.has_value() ? *total
                                        : ZerosLikeOf(graph, target));
  }
  return results;
}

std::vector<NodeOutput> AddGradients(Graph& graph, FunctionLibrary& library,
                                     NodeOutput loss,
                                     std::span<const NodeOutput> targets) {
  const GradientSeed seed{loss, [&] {
                            SourceSiteScope site_scope(loss.node->site());
                            return OnesLikeOf(graph, loss);
                          }()};
  return AddGradients(graph, library, std::span<const GradientSeed>(&seed, 1),
                      targets);
}

namespace {

// Copies `fn`'s body into `dst`, substituting parameters, and returns the
// node mapping. Control inputs are remapped as well.
std::unordered_map<const Node*, Node*> InlineBody(
    const GraphFunction& fn, Graph& dst,
    const std::vector<Node*>& replacement_params) {
  JANUS_EXPECTS(replacement_params.size() == fn.parameters.size());
  std::unordered_map<const Node*, Node*> mapping;
  for (std::size_t i = 0; i < fn.parameters.size(); ++i) {
    mapping[fn.parameters[i]] = replacement_params[i];
  }
  // Two passes: node creation order need not be topological (recursive
  // Invoke sites are patched with gate nodes created later), so create all
  // copies first, then wire inputs.
  for (const auto& node : fn.graph.nodes()) {
    if (mapping.find(node.get()) != mapping.end()) continue;  // a parameter
    Node* copy =
        dst.AddNode(node->op(), {}, node->attrs(), node->num_outputs());
    if (node->site().known()) copy->set_site(node->site());
    mapping[node.get()] = copy;
  }
  for (const auto& node : fn.graph.nodes()) {
    Node* copy = mapping.at(node.get());
    if (copy->num_inputs() != 0 || !copy->control_inputs().empty()) {
      continue;  // a replacement parameter, already wired by the caller
    }
    const bool is_param =
        std::find(fn.parameters.begin(), fn.parameters.end(), node.get()) !=
        fn.parameters.end();
    if (is_param) continue;
    for (const NodeOutput& input : node->inputs()) {
      copy->AppendInput({mapping.at(input.node), input.index});
    }
    for (const Node* control : node->control_inputs()) {
      copy->AddControlInput(mapping.at(control));
    }
  }
  return mapping;
}

}  // namespace

const GraphFunction& EnsureGradientFunction(FunctionLibrary& library,
                                            const GraphFunction& fn) {
  const std::string grad_name = fn.name + "__grad";
  if (library.Contains(grad_name)) return library.Lookup(grad_name);

  // Register a stub first so recursive references by name resolve while we
  // build the body.
  {
    auto stub = std::make_unique<GraphFunction>();
    stub->name = grad_name;
    library.Register(std::move(stub));
  }
  GraphFunction& grad = library.LookupMutable(grad_name);
  Graph& g = grad.graph;

  std::vector<Node*> params;
  for (std::size_t i = 0; i < fn.parameters.size(); ++i) {
    params.push_back(g.AddNode(
        "Param", {}, {{"index", static_cast<std::int64_t>(i)}}));
    params.back()->set_site(fn.parameters[i]->site());
  }
  std::vector<Node*> grad_params;
  for (std::size_t j = 0; j < fn.results.size(); ++j) {
    grad_params.push_back(g.AddNode(
        "Param", {},
        {{"index", static_cast<std::int64_t>(fn.parameters.size() + j)}}));
    grad_params.back()->set_site(fn.results[j].node->site());
  }
  grad.parameters = params;
  grad.parameters.insert(grad.parameters.end(), grad_params.begin(),
                         grad_params.end());

  // Recompute the forward body inside the gradient function.
  const auto mapping = InlineBody(fn, g, params);

  std::vector<GradientSeed> seeds;
  for (std::size_t j = 0; j < fn.results.size(); ++j) {
    seeds.push_back({{mapping.at(fn.results[j].node), fn.results[j].index},
                     {grad_params[j], 0}});
  }
  std::vector<NodeOutput> targets;
  for (Node* param : params) targets.push_back({param, 0});
  grad.results = AddGradients(g, library, seeds, targets);
  return grad;
}

const GraphFunction& EnsureLoopBodyGradient(FunctionLibrary& library,
                                            const GraphFunction& body,
                                            int num_carried) {
  const std::string grad_name = body.name + "__loopgrad";
  if (library.Contains(grad_name)) return library.Lookup(grad_name);
  JANUS_EXPECTS(static_cast<int>(body.results.size()) == num_carried);
  {
    auto stub = std::make_unique<GraphFunction>();
    stub->name = grad_name;
    library.Register(std::move(stub));
  }
  GraphFunction& grad = library.LookupMutable(grad_name);
  Graph& g = grad.graph;

  std::vector<Node*> params;
  for (std::size_t i = 0; i < body.parameters.size(); ++i) {
    params.push_back(g.AddNode(
        "Param", {}, {{"index", static_cast<std::int64_t>(i)}}));
    params.back()->set_site(body.parameters[i]->site());
  }
  std::vector<Node*> grad_params;
  for (int j = 0; j < num_carried; ++j) {
    grad_params.push_back(g.AddNode(
        "Param", {},
        {{"index",
          static_cast<std::int64_t>(body.parameters.size()) + j}}));
    grad_params.back()->set_site(
        body.results[static_cast<std::size_t>(j)].node->site());
  }
  grad.parameters = params;
  grad.parameters.insert(grad.parameters.end(), grad_params.begin(),
                         grad_params.end());

  const auto mapping = InlineBody(body, g, params);
  std::vector<GradientSeed> seeds;
  for (int j = 0; j < num_carried; ++j) {
    const NodeOutput result = body.results[static_cast<std::size_t>(j)];
    seeds.push_back(
        {{mapping.at(result.node), result.index},
         {grad_params[static_cast<std::size_t>(j)], 0}});
  }
  std::vector<NodeOutput> targets;
  for (Node* param : params) targets.push_back({param, 0});
  grad.results = AddGradients(g, library, seeds, targets);
  return grad;
}

}  // namespace janus
