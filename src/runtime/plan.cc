#include "runtime/plan.h"

#include <algorithm>
#include <atomic>
#include <queue>
#include <unordered_set>
#include <utility>

#include "common/error.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "runtime/fusion.h"
#include "runtime/run_context.h"

namespace janus {
namespace {

ExecutionPlan::OpKind ClassifyOp(const std::string& op) {
  using OpKind = ExecutionPlan::OpKind;
  if (op == "Const") return OpKind::kConst;
  if (op == "Placeholder") return OpKind::kPlaceholder;
  if (op == "Param") return OpKind::kParam;
  if (op == "Switch") return OpKind::kSwitch;
  if (op == "Merge") return OpKind::kMerge;
  if (op == "Enter") return OpKind::kEnter;
  if (op == "Exit") return OpKind::kExit;
  if (op == "NextIteration") return OpKind::kNextIteration;
  return OpKind::kKernel;
}

bool IsControlFlowKind(ExecutionPlan::OpKind kind) {
  using OpKind = ExecutionPlan::OpKind;
  return kind == OpKind::kSwitch || kind == OpKind::kMerge ||
         kind == OpKind::kEnter || kind == OpKind::kExit ||
         kind == OpKind::kNextIteration;
}

bool IsSourceKind(ExecutionPlan::OpKind kind) {
  using OpKind = ExecutionPlan::OpKind;
  return kind == OpKind::kConst || kind == OpKind::kPlaceholder ||
         kind == OpKind::kParam;
}

// The installed post-build verification hook (nullptr = none). Relaxed is
// enough: installation happens once at engine attach / static init, and a
// build that misses a just-installed hook only skips one verification.
std::atomic<PlanVerifyHookFn> g_plan_verify_hook{nullptr};

}  // namespace

void SetPlanVerifyHook(PlanVerifyHookFn hook) {
  g_plan_verify_hook.store(hook, std::memory_order_relaxed);
}

PlanVerifyHookFn GetPlanVerifyHook() {
  return g_plan_verify_hook.load(std::memory_order_relaxed);
}

bool GraphNeedsDynamicExecution(const Graph& graph) {
  for (const auto& node : graph.nodes()) {
    if (IsControlFlowKind(ClassifyOp(node->op()))) return true;
  }
  return false;
}

std::shared_ptr<const ExecutionPlan> ExecutionPlan::Build(
    const Graph& graph, std::span<const NodeOutput> fetches,
    PlanOptions options) {
  obs::TraceScope span("plan_build", "runtime");
  span.set_arg("graph_nodes",
               static_cast<std::int64_t>(graph.nodes().size()));
  auto plan = std::shared_ptr<ExecutionPlan>(new ExecutionPlan());
  plan->fetches_.assign(fetches.begin(), fetches.end());
  plan->graph_version_ = graph.version();
  if (GraphNeedsDynamicExecution(graph)) {
    plan->strategy_ = Strategy::kDynamic;
    plan->BuildDynamic(graph);
  } else {
    plan->strategy_ = Strategy::kDag;
    plan->BuildDag(graph);
  }
  // Fusion rewrites the schedule in place (interior members disappear) and
  // must run before the memory plan: liveness is computed over the fused
  // node array, so interior values are never materialized or tracked.
  if (options.enable_fusion && fusion::GloballyEnabled()) {
    obs::TraceScope fusion_span("fusion", "runtime");
    int regions = 0;
    if (plan->strategy_ == Strategy::kDag) {
      regions = FuseDagPlan(plan->dag_nodes_, plan->dag_fetch_slots_,
                            plan->dag_index_, plan->fused_regions_);
    } else {
      regions = FuseDynPlan(plan->dyn_nodes_, plan->dyn_fetch_slots_,
                            plan->fused_regions_);
    }
    fusion_span.set_arg("regions", static_cast<std::int64_t>(regions));
  }
  plan->memory_ = BuildMemoryPlan(*plan);

  // Attach the source-attributed profiler's per-node accumulator, copying
  // each node's provenance (graph-layer SourceSite -> obs ProfileSite) so
  // the obs layer stays link-independent of the graph. Fused regions keep
  // per-member sites; cost recorded against the region is split across
  // them at export. Registration is unconditional — plan build is a cold
  // path, and a later EnableProfiling() must see already-built plans.
  {
    const auto site_of = [](const Node* node) {
      obs::ProfileSite site;
      if (node != nullptr) {
        site.function = node->site().function;
        site.line = node->site().line;
        site.stmt = node->site().stmt;
      }
      return site;
    };
    const auto info_of = [&](const Node* node, OpKind kind,
                             const FusedRegionPlan* fused) {
      obs::ProfileNodeInfo info;
      if (node != nullptr) {
        info.name = node->name();
        info.op = node->op();
        info.site = site_of(node);
      }
      if (kind == OpKind::kFusedRegion && fused != nullptr) {
        info.op = "FusedRegion";
        for (const FusedRegionPlan::Member& member : fused->members) {
          obs::ProfileNodeInfo member_info;
          member_info.name = member.node->name();
          member_info.op = member.node->op();
          member_info.site = site_of(member.node);
          info.members.push_back(std::move(member_info));
        }
      }
      return info;
    };
    std::vector<obs::ProfileNodeInfo> infos;
    if (plan->strategy_ == Strategy::kDag) {
      infos.reserve(plan->dag_nodes_.size());
      for (const DagNode& dag_node : plan->dag_nodes_) {
        infos.push_back(
            info_of(dag_node.node, dag_node.kind, dag_node.fused));
      }
    } else {
      infos.reserve(plan->dyn_nodes_.size());
      for (const DynNode& dyn_node : plan->dyn_nodes_) {
        infos.push_back(
            info_of(dyn_node.node, dyn_node.kind, dyn_node.fused));
      }
    }
    plan->profile_ = std::make_shared<obs::PlanProfile>(std::move(infos));
    obs::ProfileRegistry::Global().Register(plan->profile_);
  }

  if (const PlanVerifyHookFn hook = GetPlanVerifyHook(); hook != nullptr) {
    hook(graph, *plan);
  }
  return plan;
}

void ExecutionPlan::BuildDag(const Graph& graph) {
  // Restrict execution to the nodes the fetches transitively need (through
  // data and control edges): side-effecting ops only run when anchored to a
  // fetch (the update-anchor NoOp convention).
  std::unordered_set<const Node*> needed;
  std::vector<const Node*> stack;
  for (const NodeOutput& fetch : fetches_) stack.push_back(fetch.node);
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (!needed.insert(node).second) continue;
    for (const NodeOutput& input : node->inputs()) stack.push_back(input.node);
    for (const Node* control : node->control_inputs()) {
      stack.push_back(control);
    }
  }

  // Dense schedule in stable topological order. Freshly generated graphs
  // insert nodes topologically, but optimization passes append replacement
  // nodes (folded constants, ZerosLike) at the END of the graph while
  // rewiring earlier consumers onto them — and both fusion's region
  // collection and the plan verifier rely on producers preceding consumers
  // in the dense array. Kahn's algorithm with a min-heap on graph position
  // keeps the order deterministic and as close to insertion order as the
  // edges allow.
  std::vector<const Node*> order;
  {
    std::vector<const Node*> graph_order;
    graph_order.reserve(needed.size());
    std::unordered_map<const Node*, int> position;
    for (const auto& node : graph.nodes()) {
      if (needed.find(node.get()) == needed.end()) continue;
      position[node.get()] = static_cast<int>(graph_order.size());
      graph_order.push_back(node.get());
    }
    std::unordered_map<const Node*, int> indegree;
    std::unordered_map<const Node*, std::vector<const Node*>> dependents;
    for (const Node* node : graph_order) {
      std::unordered_set<const Node*> producers;
      for (const NodeOutput& input : node->inputs()) {
        producers.insert(input.node);
      }
      for (const Node* control : node->control_inputs()) {
        producers.insert(control);
      }
      indegree[node] = static_cast<int>(producers.size());
      for (const Node* producer : producers) {
        dependents[producer].push_back(node);
      }
    }
    std::priority_queue<std::pair<int, const Node*>,
                        std::vector<std::pair<int, const Node*>>,
                        std::greater<>>
        ready;
    for (const Node* node : graph_order) {
      if (indegree[node] == 0) ready.emplace(position[node], node);
    }
    order.reserve(graph_order.size());
    while (!ready.empty()) {
      const Node* node = ready.top().second;
      ready.pop();
      order.push_back(node);
      for (const Node* consumer : dependents[node]) {
        if (--indegree[consumer] == 0) {
          ready.emplace(position[consumer], consumer);
        }
      }
    }
    if (order.size() != graph_order.size()) {
      // Cycle: schedule in graph order and let the executor's
      // executed-count check report it.
      order = std::move(graph_order);
    }
  }

  dag_nodes_.reserve(needed.size());
  for (const Node* node : order) {
    dag_index_[node] = static_cast<int>(dag_nodes_.size());
    DagNode entry;
    entry.node = node;
    entry.kind = ClassifyOp(node->op());
    if (entry.kind == OpKind::kKernel) {
      entry.kernel = &KernelRegistry::Global().Lookup(node->op());
    } else if (entry.kind == OpKind::kConst) {
      entry.const_value = node->GetTensorAttr("value");
    }
    dag_nodes_.push_back(std::move(entry));
  }

  for (std::size_t i = 0; i < dag_nodes_.size(); ++i) {
    DagNode& entry = dag_nodes_[i];
    const Node* node = entry.node;
    std::unordered_set<int> producers;
    entry.inputs.reserve(node->inputs().size());
    for (const NodeOutput& input : node->inputs()) {
      const int producer = dag_index_.at(input.node);
      entry.inputs.push_back({producer, input.index});
      producers.insert(producer);
    }
    for (const Node* control : node->control_inputs()) {
      producers.insert(dag_index_.at(control));
    }
    entry.initial_pending = static_cast<int>(producers.size());
    for (const int producer : producers) {
      dag_nodes_[static_cast<std::size_t>(producer)].consumers.push_back(
          static_cast<int>(i));
    }
  }

  dag_fetch_slots_.reserve(fetches_.size());
  for (const NodeOutput& fetch : fetches_) {
    dag_fetch_slots_.push_back({dag_index_.at(fetch.node), fetch.index});
  }
}

void ExecutionPlan::BuildDynamic(const Graph& graph) {
  // The dynamic strategy covers the whole graph: deadness propagation, not
  // reachability pruning, decides what executes.
  std::unordered_map<const Node*, int> index;
  dyn_nodes_.reserve(graph.num_nodes());
  for (const auto& node : graph.nodes()) {
    index[node.get()] = static_cast<int>(dyn_nodes_.size());
    DynNode entry;
    entry.node = node.get();
    entry.kind = ClassifyOp(node->op());
    if (entry.kind == OpKind::kKernel) {
      entry.kernel = &KernelRegistry::Global().Lookup(node->op());
    }
    if (entry.kind == OpKind::kEnter) {
      entry.frame = node->GetStringAttr("frame");
      entry.is_constant_enter = node->HasAttr("is_constant") &&
                                node->GetBoolAttr("is_constant");
    }
    entry.is_root_source =
        IsSourceKind(entry.kind) ||
        (entry.kind == OpKind::kKernel && node->num_inputs() == 0 &&
         node->control_inputs().empty());
    entry.out_edges.resize(
        static_cast<std::size_t>(std::max(1, node->num_outputs())));
    dyn_nodes_.push_back(std::move(entry));
  }
  for (std::size_t i = 0; i < dyn_nodes_.size(); ++i) {
    DynNode& entry = dyn_nodes_[i];
    const Node* node = entry.node;
    entry.inputs.reserve(node->inputs().size());
    for (int slot = 0; slot < node->num_inputs(); ++slot) {
      const NodeOutput input = node->input(slot);
      const int producer = index.at(input.node);
      entry.inputs.push_back({producer, input.index});
      dyn_nodes_[static_cast<std::size_t>(producer)]
          .out_edges[static_cast<std::size_t>(input.index)]
          .push_back({static_cast<int>(i), slot});
    }
    entry.control_producers.reserve(node->control_inputs().size());
    for (const Node* control : node->control_inputs()) {
      const int producer = index.at(control);
      entry.control_producers.push_back(producer);
      dyn_nodes_[static_cast<std::size_t>(producer)].control_edges.push_back(
          {static_cast<int>(i), -1});
    }
  }
  dyn_fetch_slots_.reserve(fetches_.size());
  for (const NodeOutput& fetch : fetches_) {
    dyn_fetch_slots_.push_back({index.at(fetch.node), fetch.index});
  }
}

int ExecutionPlan::DagIndexOf(const Node* node) const {
  const auto it = dag_index_.find(node);
  return it == dag_index_.end() ? -1 : it->second;
}

std::shared_ptr<const ExecutionPlan> GetOrBuildPlan(
    const Graph& graph, std::span<const NodeOutput> fetches,
    RunContext* run, PlanOptions options) {
  cache::PlanCache& plan_cache = graph.plan_cache();
  // The PlanCache is type-erased; fetch endpoints map 1:1 onto FetchIds.
  std::vector<cache::PlanCache::FetchId> fetch_ids;
  fetch_ids.reserve(fetches.size());
  for (const NodeOutput& fetch : fetches) {
    fetch_ids.push_back({fetch.node, fetch.index});
  }
  if (std::shared_ptr<const void> cached =
          plan_cache.Find(graph.version(), fetch_ids);
      cached != nullptr) {
    if (run != nullptr) {
      run->plan_cache_hits.fetch_add(1, std::memory_order_relaxed);
    }
    return std::static_pointer_cast<const ExecutionPlan>(cached);
  }
  auto plan = ExecutionPlan::Build(graph, fetches, options);
  if (run != nullptr) {
    run->plan_builds.fetch_add(1, std::memory_order_relaxed);
  }
  plan_cache.Insert(graph.version(), fetch_ids, plan);
  return plan;
}

}  // namespace janus
