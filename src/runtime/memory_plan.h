// Plan-time tensor liveness analysis.
//
// A MemoryPlan is computed once per ExecutionPlan (at plan-build time, off
// the run hot path) and tells the executors, for every node:
//
//   * output_reads     — how many data edges read this node's outputs. The
//                        DAG executor counts reads down at run time and drops
//                        the producer's output tensors the moment the last
//                        consumer has copied them, returning dead
//                        intermediate buffers to the BufferPool mid-run
//                        instead of at end-of-run teardown.
//   * fetch_protected  — the node feeds a fetch slot; its outputs must
//                        survive to the end of the run and are never dropped.
//   * in_place_capable — the node's kernel is a same-index elementwise op,
//                        so the executor may open an InPlaceScope around its
//                        invocation, letting Tensor::OutputBuffer overwrite a
//                        uniquely-referenced, byte-size-matching input
//                        instead of allocating.
//
// The in-place allowlist is deliberately conservative: only ops whose output
// element i depends on nothing but input element(s) i qualify. Reductions,
// transposes, matmuls, broadcasts, and anything with gather/scatter access
// patterns stay off the list — overwriting their input while reading it
// would corrupt the computation.
#ifndef JANUS_RUNTIME_MEMORY_PLAN_H_
#define JANUS_RUNTIME_MEMORY_PLAN_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace janus {

class ExecutionPlan;

struct MemoryPlan {
  struct DagNodeInfo {
    int output_reads = 0;
    bool fetch_protected = false;
    bool in_place_capable = false;
  };

  // Parallel to ExecutionPlan::dag_nodes().
  std::vector<DagNodeInfo> dag;
  // Parallel to ExecutionPlan::dyn_nodes(): 1 if the node's kernel may run
  // in place. The dynamic executor gets liveness for free from token
  // lifetimes, so only the in-place bit is planned.
  std::vector<std::uint8_t> dyn_in_place;
};

// True for kernels that write output element i from input element(s) i only.
bool OpSupportsInPlace(std::string_view op);

// Computes the liveness/in-place plan for an already-built ExecutionPlan.
MemoryPlan BuildMemoryPlan(const ExecutionPlan& plan);

}  // namespace janus

#endif  // JANUS_RUNTIME_MEMORY_PLAN_H_
