// Kernels for neural-network ops: convolution, pooling, losses.
#include "runtime/kernel.h"
#include "runtime/run_context.h"
#include "tensor/ops.h"

namespace janus {
namespace {

int StrideOf(const Node& node) {
  return static_cast<int>(node.GetIntAttr("stride"));
}

const std::string& PaddingOf(const Node& node) {
  return node.GetStringAttr("padding");
}

}  // namespace

void RegisterNNKernels(KernelRegistry& r) {
  r.Register("Conv2D", [](KernelContext& ctx) {
    ctx.set_output(0, ops::Conv2D(ctx.input(0), ctx.input(1),
                                  StrideOf(*ctx.node), PaddingOf(*ctx.node)));
  });

  // inputs: filter, grad, input-exemplar (for shape)
  r.Register("Conv2DGradInput", [](KernelContext& ctx) {
    ctx.set_output(0, ops::Conv2DGradInput(ctx.input(2).shape(), ctx.input(0),
                                           ctx.input(1), StrideOf(*ctx.node),
                                           PaddingOf(*ctx.node)));
  });

  // inputs: input, grad, filter-exemplar (for shape)
  r.Register("Conv2DGradFilter", [](KernelContext& ctx) {
    ctx.set_output(0, ops::Conv2DGradFilter(ctx.input(0),
                                            ctx.input(2).shape(), ctx.input(1),
                                            StrideOf(*ctx.node),
                                            PaddingOf(*ctx.node)));
  });

  r.Register("MaxPool2D", [](KernelContext& ctx) {
    ctx.set_output(0, ops::MaxPool2D(
                          ctx.input(0),
                          static_cast<int>(ctx.node->GetIntAttr("window")),
                          StrideOf(*ctx.node)));
  });

  r.Register("MaxPool2DGrad", [](KernelContext& ctx) {
    ctx.set_output(0, ops::MaxPool2DGrad(
                          ctx.input(0), ctx.input(1),
                          static_cast<int>(ctx.node->GetIntAttr("window")),
                          StrideOf(*ctx.node)));
  });

  r.Register("AvgPool2D", [](KernelContext& ctx) {
    ctx.set_output(0, ops::AvgPool2D(
                          ctx.input(0),
                          static_cast<int>(ctx.node->GetIntAttr("window")),
                          StrideOf(*ctx.node)));
  });

  // inputs: grad, input-exemplar
  r.Register("AvgPool2DGrad", [](KernelContext& ctx) {
    ctx.set_output(0, ops::AvgPool2DGrad(
                          ctx.input(1).shape(), ctx.input(0),
                          static_cast<int>(ctx.node->GetIntAttr("window")),
                          StrideOf(*ctx.node)));
  });

  r.Register("SoftmaxCrossEntropy", [](KernelContext& ctx) {
    ctx.set_output(0, ops::SoftmaxCrossEntropy(ctx.input(0), ctx.input(1)));
  });
}

}  // namespace janus
