#include "runtime/kernel.h"

#include "common/error.h"

namespace janus {

KernelRegistry& KernelRegistry::Global() {
  static KernelRegistry* registry = [] {
    auto* r = new KernelRegistry();
    RegisterMathKernels(*r);
    RegisterArrayKernels(*r);
    RegisterNNKernels(*r);
    RegisterStateKernels(*r);
    RegisterFunctionalKernels(*r);
    RegisterGradKernels(*r);
    return r;
  }();
  return *registry;
}

void KernelRegistry::Register(std::string op, KernelFn fn) {
  const auto [it, inserted] = kernels_.emplace(std::move(op), std::move(fn));
  if (!inserted) {
    throw InternalError("kernel for op '" + it->first +
                        "' registered twice");
  }
}

bool KernelRegistry::Contains(std::string_view op) const {
  return kernels_.find(op) != kernels_.end();
}

const KernelFn& KernelRegistry::Lookup(std::string_view op) const {
  const auto it = kernels_.find(op);
  if (it == kernels_.end()) {
    throw InvalidArgument("no kernel registered for op '" + std::string(op) +
                          "'");
  }
  return it->second;
}

std::vector<std::string> KernelRegistry::OpNames() const {
  std::vector<std::string> names;
  names.reserve(kernels_.size());
  for (const auto& [name, fn] : kernels_) names.push_back(name);
  return names;
}

}  // namespace janus
