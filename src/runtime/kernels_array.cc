// Kernels for shape manipulation, indexing, and dtype conversion.
#include "runtime/kernel.h"
#include "runtime/run_context.h"
#include "tensor/ops.h"

namespace janus {

void RegisterArrayKernels(KernelRegistry& r) {
  r.Register("Identity", [](KernelContext& ctx) {
    ctx.set_output(0, ctx.input(0));
  });

  // StopGradient behaves as Identity at runtime; autodiff treats it as a
  // gradient sink.
  r.Register("StopGradient", [](KernelContext& ctx) {
    ctx.set_output(0, ctx.input(0));
  });

  r.Register("Reshape", [](KernelContext& ctx) {
    ctx.set_output(0, ops::Reshape(ctx.input(0),
                                   Shape(ctx.node->GetIntListAttr("shape"))));
  });

  // Gradient helper: reshape input 0 to the shape of input 1.
  r.Register("ReshapeLike", [](KernelContext& ctx) {
    ctx.set_output(0, ctx.input(0).Reshaped(ctx.input(1).shape()));
  });

  r.Register("BroadcastTo", [](KernelContext& ctx) {
    ctx.set_output(0, ops::BroadcastTo(
                          ctx.input(0),
                          Shape(ctx.node->GetIntListAttr("shape"))));
  });

  r.Register("Concat", [](KernelContext& ctx) {
    const std::vector<Tensor> parts(ctx.inputs.begin(), ctx.inputs.end());
    ctx.set_output(0, ops::Concat(parts,
                                  static_cast<int>(ctx.node->GetIntAttr("axis"))));
  });

  r.Register("Stack", [](KernelContext& ctx) {
    const std::vector<Tensor> parts(ctx.inputs.begin(), ctx.inputs.end());
    ctx.set_output(0, ops::Stack(parts));
  });

  // Unstack along axis 0 into num_outputs tensors (inverse of Stack).
  r.Register("Unstack", [](KernelContext& ctx) {
    const Tensor& in = ctx.input(0);
    JANUS_EXPECTS(in.rank() >= 1);
    JANUS_EXPECTS(in.dim(0) == ctx.node->num_outputs());
    std::vector<std::int64_t> begin(static_cast<std::size_t>(in.rank()), 0);
    std::vector<std::int64_t> size(in.shape().dims());
    size[0] = 1;
    std::vector<std::int64_t> out_dims(in.shape().dims().begin() + 1,
                                       in.shape().dims().end());
    for (int i = 0; i < ctx.node->num_outputs(); ++i) {
      begin[0] = i;
      ctx.set_output(i, ops::Slice(in, begin, size).Reshaped(Shape(out_dims)));
    }
  });

  r.Register("Slice", [](KernelContext& ctx) {
    ctx.set_output(0, ops::Slice(ctx.input(0),
                                 ctx.node->GetIntListAttr("begin"),
                                 ctx.node->GetIntListAttr("size")));
  });

  r.Register("Cast", [](KernelContext& ctx) {
    ctx.set_output(0, ops::Cast(ctx.input(0), ctx.node->GetDTypeAttr("dtype")));
  });

  r.Register("Gather", [](KernelContext& ctx) {
    ctx.set_output(0, ops::Gather(ctx.input(0), ctx.input(1)));
  });

  // inputs: ids, grad; attr: params shape.
  r.Register("GatherGrad", [](KernelContext& ctx) {
    ctx.set_output(0, ops::GatherGrad(Shape(ctx.node->GetIntListAttr("shape")),
                                      ctx.input(0), ctx.input(1)));
  });

  r.Register("OneHot", [](KernelContext& ctx) {
    ctx.set_output(0, ops::OneHot(ctx.input(0),
                                  ctx.node->GetIntAttr("depth")));
  });

  r.Register("Shape", [](KernelContext& ctx) {
    const auto& dims = ctx.input(0).shape().dims();
    ctx.set_output(
        0, Tensor::FromVectorInt(
               dims, Shape{static_cast<std::int64_t>(dims.size())}));
  });

  r.Register("Size", [](KernelContext& ctx) {
    ctx.set_output(0, Tensor::ScalarInt(ctx.input(0).num_elements()));
  });
}

}  // namespace janus
