// Thin execution driver: resolves the per-graph ExecutionPlan (from the
// graph's plan cache or a caller-supplied prebuilt plan) and hands it to the
// strategy implementation in dag_executor.cc / dynamic_executor.cc. All
// schedule construction lives in plan.cc; nothing here is per-node work.
#include "runtime/executor.h"

#include <chrono>

#include "common/logging.h"
#include "obs/ledger.h"
#include "obs/trace.h"
#include "tensor/buffer_pool.h"

namespace janus {
namespace internal {

Tensor ResolveSource(RunContext& run, ExecutionPlan::OpKind kind,
                     const Node& node, const Bindings& bindings) {
  if (kind == ExecutionPlan::OpKind::kConst) {
    return node.GetTensorAttr("value");
  }
  if (kind == ExecutionPlan::OpKind::kParam) {
    const auto it = bindings.find(&node);
    if (it == bindings.end()) {
      throw InternalError("unbound Param node '" + node.name() + "'");
    }
    return it->second;
  }
  // Placeholder.
  if (run.feeds != nullptr) {
    const auto it = run.feeds->find(node.name());
    if (it != run.feeds->end()) return it->second;
  }
  throw InvalidArgument("placeholder '" + node.name() + "' was not fed");
}

void ExecuteKernel(RunContext& run, const Node& node, const KernelFn& kernel,
                   std::span<const Tensor> inputs,
                   std::vector<Tensor>& outputs, bool allow_in_place) {
  if (run.dispatch_penalty_ns > 0) {
    // Calibrated stand-in for CPython + framework dispatch cost on the
    // imperative executor (see DESIGN.md: interpreter substitution).
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::nanoseconds(run.dispatch_penalty_ns);
    while (std::chrono::steady_clock::now() < deadline) {
    }
  }
  KernelContext ctx;
  ctx.node = &node;
  ctx.inputs = inputs;
  ctx.outputs.resize(static_cast<std::size_t>(node.num_outputs()));
  ctx.run = &run;
  // Sampled per-op kernel timing (every Nth kernel per thread while the
  // tracer or metrics-only kernel timing is on): one relaxed atomic load
  // and a branch when observability is off.
  const bool sampled = obs::ShouldSampleKernel();
  const std::int64_t start_ns = sampled ? obs::Trace::NowNs() : 0;
  try {
    // Opens the in-place window only for nodes the memory plan marked
    // capable AND whose executor guarantees the inputs vector is the sole
    // holder of dead input buffers (see runtime/memory_plan.h).
    const InPlaceScope scope(allow_in_place);
    kernel(ctx);
  } catch (const AssumptionFailed& failure) {
    // Expected speculative abort; no annotation needed, but the flight
    // recorder wants the kernel-site view (the engine adds unit context in
    // its own fallback record, joined on assumption id).
    if (obs::Ledger::Enabled()) {
      obs::LedgerRecord record;
      record.kind = "assert_failure";
      record.assumption = failure.assumption_id();
      record.assumed = failure.assumed();
      record.observed = failure.observed();
      record.detail = node.op() + ":" + node.name();
      obs::Ledger::Global().Record(std::move(record));
    }
    throw;
  } catch (const Error& e) {
    throw InvalidArgument(std::string(e.what()) + " [at " +
                          node.DebugString() + "]");
  }
  if (sampled) {
    obs::RecordKernelSample(node.op(), "kernel", start_ns,
                            obs::Trace::NowNs() - start_ns);
  }
  run.ops_executed.fetch_add(1, std::memory_order_relaxed);
  outputs = std::move(ctx.outputs);
}

}  // namespace internal

namespace {

// Fills `metrics` from the run's counters plus the delta of the
// process-wide BufferPool statistics across the run. Deltas are approximate
// under concurrent runs (the pool is shared), exact otherwise.
void FillMetrics(const RunContext& run, const BufferPool::Stats& before,
                 RunMetrics* metrics) {
  if (metrics == nullptr) return;
  const BufferPool::Stats after = BufferPool::Global().Snapshot();
  metrics->ops_executed = run.ops_executed.load(std::memory_order_relaxed);
  metrics->plan_builds = run.plan_builds.load(std::memory_order_relaxed);
  metrics->plan_cache_hits =
      run.plan_cache_hits.load(std::memory_order_relaxed);
  metrics->buffers_released =
      run.buffers_released.load(std::memory_order_relaxed);
  metrics->fused_regions = run.fused_regions.load(std::memory_order_relaxed);
  metrics->fused_ops = run.fused_ops.load(std::memory_order_relaxed);
  metrics->bytes_allocated =
      static_cast<std::int64_t>(after.bytes_allocated - before.bytes_allocated);
  metrics->pool_hits =
      static_cast<std::int64_t>(after.pool_hits - before.pool_hits);
  metrics->pool_misses =
      static_cast<std::int64_t>(after.pool_misses - before.pool_misses);
  metrics->in_place_reuses =
      static_cast<std::int64_t>(after.in_place_reuses - before.in_place_reuses);
}

}  // namespace

Executor::Executor(const FunctionLibrary* library, VariableStore* variables,
                   StateInterface* host_state, Rng* rng,
                   ExecutorOptions options)
    : library_(library),
      variables_(variables),
      host_state_(host_state),
      rng_(rng),
      options_(options) {}

bool Executor::NeedsDynamicExecution(const Graph& graph) {
  return GraphNeedsDynamicExecution(graph);
}

std::vector<Tensor> Executor::Run(const Graph& graph,
                                  const std::map<std::string, Tensor>& feeds,
                                  std::span<const NodeOutput> fetches) {
  return Run(graph, feeds, fetches,
             static_cast<RunMetrics*>(nullptr));
}

std::vector<Tensor> Executor::Run(const Graph& graph,
                                  const std::map<std::string, Tensor>& feeds,
                                  std::span<const NodeOutput> fetches,
                                  std::int64_t* ops_executed) {
  RunMetrics metrics;
  std::vector<Tensor> results = Run(graph, feeds, fetches, &metrics);
  if (ops_executed != nullptr) *ops_executed = metrics.ops_executed;
  return results;
}

std::vector<Tensor> Executor::Run(const Graph& graph,
                                  const std::map<std::string, Tensor>& feeds,
                                  std::span<const NodeOutput> fetches,
                                  RunMetrics* metrics) {
  RunContext run;
  const BufferPool::Stats before = BufferPool::Global().Snapshot();
  const std::shared_ptr<const ExecutionPlan> plan =
      GetOrBuildPlan(graph, fetches, &run);
  std::vector<Tensor> results = RunPlan(*plan, feeds, run);
  FillMetrics(run, before, metrics);
  return results;
}

std::vector<Tensor> Executor::Run(const ExecutionPlan& plan,
                                  const std::map<std::string, Tensor>& feeds,
                                  RunMetrics* metrics) {
  RunContext run;
  const BufferPool::Stats before = BufferPool::Global().Snapshot();
  std::vector<Tensor> results = RunPlan(plan, feeds, run);
  FillMetrics(run, before, metrics);
  return results;
}

std::vector<Tensor> Executor::RunPlan(
    const ExecutionPlan& plan, const std::map<std::string, Tensor>& feeds,
    RunContext& run) {
  obs::TraceScope span("execute_plan", "executor");
  span.set_arg("nodes",
               plan.strategy() == ExecutionPlan::Strategy::kDynamic
                   ? static_cast<std::int64_t>(plan.dyn_nodes().size())
                   : static_cast<std::int64_t>(plan.dag_nodes().size()));
  run.feeds = &feeds;
  run.variables = variables_;
  run.host_state = host_state_;
  run.library = library_;
  run.rng = rng_;
  run.pool = options_.parallel ? options_.pool : nullptr;
  if (obs::PlanProfile* profile = plan.profile()) profile->AddRun();

  std::vector<Tensor> results;
  if (plan.strategy() == ExecutionPlan::Strategy::kDynamic) {
    results = internal::ExecuteDynamic(run, plan, {});
  } else {
    results = internal::ExecuteDag(run, plan, {},
                                   options_.parallel && options_.pool);
  }
  run.Commit();
  return results;
}

std::vector<Tensor> Executor::RunFunction(RunContext& run,
                                          const GraphFunction& fn,
                                          std::span<const Tensor> args) {
  if (args.size() != fn.parameters.size()) {
    throw InvalidArgument("function '" + fn.name + "' expects " +
                          std::to_string(fn.parameters.size()) +
                          " arguments, got " + std::to_string(args.size()));
  }
  internal::Bindings bindings;
  for (std::size_t i = 0; i < args.size(); ++i) {
    bindings[fn.parameters[i]] = args[i];
  }
  // The function graph's plan is cached on the graph itself (and pre-built
  // at generation time for engine-compiled graphs), so recursive Invoke and
  // per-iteration While calls reuse one schedule.
  const std::shared_ptr<const ExecutionPlan> plan =
      GetOrBuildPlan(fn.graph, fn.results, &run);
  if (plan->strategy() == ExecutionPlan::Strategy::kDynamic) {
    try {
      return internal::ExecuteDynamic(run, *plan, bindings);
    } catch (const InternalError& e) {
      throw InternalError("in function '" + fn.name + "': " + e.what());
    }
  }
  // Nested runs execute inline on the calling thread (never on the pool) to
  // avoid pool-thread starvation; see header comment.
  return internal::ExecuteDag(run, *plan, bindings, /*parallel=*/false);
}

}  // namespace janus
