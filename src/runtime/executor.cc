#include "runtime/executor.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace janus {
namespace internal {
namespace {

bool IsControlFlowOp(const std::string& op) {
  return op == "Switch" || op == "Merge" || op == "Enter" || op == "Exit" ||
         op == "NextIteration";
}

bool IsSourceOp(const std::string& op) {
  return op == "Const" || op == "Placeholder" || op == "Param";
}

Tensor ResolveSource(RunContext& run, const Node& node,
                     const Bindings& bindings) {
  if (node.op() == "Const") return node.GetTensorAttr("value");
  if (node.op() == "Param") {
    const auto it = bindings.find(&node);
    if (it == bindings.end()) {
      throw InternalError("unbound Param node '" + node.name() + "'");
    }
    return it->second;
  }
  // Placeholder.
  if (run.feeds != nullptr) {
    const auto it = run.feeds->find(node.name());
    if (it != run.feeds->end()) return it->second;
  }
  throw InvalidArgument("placeholder '" + node.name() + "' was not fed");
}

void ExecuteKernel(RunContext& run, const Node& node,
                   std::span<const Tensor> inputs,
                   std::vector<Tensor>& outputs) {
  if (run.dispatch_penalty_ns > 0) {
    // Calibrated stand-in for CPython + framework dispatch cost on the
    // imperative executor (see DESIGN.md: interpreter substitution).
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::nanoseconds(run.dispatch_penalty_ns);
    while (std::chrono::steady_clock::now() < deadline) {
    }
  }
  const KernelFn& kernel = KernelRegistry::Global().Lookup(node.op());
  KernelContext ctx;
  ctx.node = &node;
  ctx.inputs = inputs;
  ctx.outputs.resize(static_cast<std::size_t>(node.num_outputs()));
  ctx.run = &run;
  try {
    kernel(ctx);
  } catch (const AssumptionFailed&) {
    throw;  // expected speculative abort; no annotation needed
  } catch (const Error& e) {
    throw InvalidArgument(std::string(e.what()) + " [at " +
                          node.DebugString() + "]");
  }
  run.ops_executed.fetch_add(1, std::memory_order_relaxed);
  outputs = std::move(ctx.outputs);
}

// ---------------------------------------------------------------------------
// DAG executor
// ---------------------------------------------------------------------------

struct DagNodeState {
  int pending = 0;
  std::vector<Tensor> outputs;
};

struct DagPlan {
  // Consumers of each node (data + control), for dependency countdown.
  std::vector<std::vector<int>> consumers;  // by node id -> consumer ids
  std::vector<int> initial_pending;         // by node id
  std::unordered_map<const Node*, int> index;
  std::vector<const Node*> nodes;           // by node id (dense)
};

DagPlan PlanDag(const Graph& graph,
                const std::unordered_set<const Node*>& needed) {
  DagPlan plan;
  plan.nodes.reserve(needed.size());
  for (const auto& node : graph.nodes()) {
    if (needed.find(node.get()) == needed.end()) continue;
    plan.index[node.get()] = static_cast<int>(plan.nodes.size());
    plan.nodes.push_back(node.get());
  }
  plan.consumers.resize(plan.nodes.size());
  plan.initial_pending.resize(plan.nodes.size(), 0);
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    const Node* node = plan.nodes[i];
    std::unordered_set<int> producers;
    for (const NodeOutput& input : node->inputs()) {
      producers.insert(plan.index.at(input.node));
    }
    for (const Node* control : node->control_inputs()) {
      producers.insert(plan.index.at(control));
    }
    plan.initial_pending[i] = static_cast<int>(producers.size());
    for (const int producer : producers) {
      plan.consumers[static_cast<std::size_t>(producer)].push_back(
          static_cast<int>(i));
    }
  }
  return plan;
}

}  // namespace

std::vector<Tensor> ExecuteDag(RunContext& run, const Graph& graph,
                               const Bindings& bindings,
                               std::span<const NodeOutput> fetches,
                               bool parallel,
                               const Precomputed* precomputed) {
  // Plan caching: planning is O(nodes) with allocations, which dominates
  // small graphs executed at high rates (e.g. recursive InvokeOp bodies).
  std::shared_ptr<const DagPlan> plan_ptr;
  {
    auto& cache = graph.exec_cache();
    const std::lock_guard<std::mutex> lock(cache.mu);
    if (cache.dag_version == graph.version() &&
        std::equal(cache.dag_fetches.begin(), cache.dag_fetches.end(),
                   fetches.begin(), fetches.end())
            && cache.dag_fetches.size() == fetches.size()) {
      plan_ptr = std::static_pointer_cast<const DagPlan>(cache.dag_plan);
    }
  }
  if (plan_ptr == nullptr) {
    // Restrict execution to the nodes the fetches transitively need
    // (through data and control edges): side-effecting ops only run when
    // anchored to a fetch (the update-anchor NoOp convention).
    std::unordered_set<const Node*> needed;
    std::vector<const Node*> stack;
    for (const NodeOutput& fetch : fetches) stack.push_back(fetch.node);
    while (!stack.empty()) {
      const Node* node = stack.back();
      stack.pop_back();
      if (!needed.insert(node).second) continue;
      for (const NodeOutput& input : node->inputs()) {
        stack.push_back(input.node);
      }
      for (const Node* control : node->control_inputs()) {
        stack.push_back(control);
      }
    }
    plan_ptr = std::make_shared<const DagPlan>(PlanDag(graph, needed));
    auto& cache = graph.exec_cache();
    const std::lock_guard<std::mutex> lock(cache.mu);
    cache.dag_version = graph.version();
    cache.dag_plan = plan_ptr;
    cache.dag_fetches.assign(fetches.begin(), fetches.end());
  }
  const DagPlan& plan = *plan_ptr;
  std::vector<DagNodeState> states(plan.nodes.size());
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    states[i].pending = plan.initial_pending[i];
  }

  const auto run_node = [&](int index) {
    const Node& node = *plan.nodes[static_cast<std::size_t>(index)];
    auto& state = states[static_cast<std::size_t>(index)];
    if (precomputed != nullptr) {
      const auto it = precomputed->find(&node);
      if (it != precomputed->end()) {
        state.outputs = it->second;
        return;
      }
    }
    if (IsSourceOp(node.op())) {
      state.outputs.assign(1, ResolveSource(run, node, bindings));
      return;
    }
    std::vector<Tensor> inputs;
    inputs.reserve(node.inputs().size());
    for (const NodeOutput& input : node.inputs()) {
      const auto& producer =
          states[static_cast<std::size_t>(plan.index.at(input.node))];
      inputs.push_back(
          producer.outputs.at(static_cast<std::size_t>(input.index)));
    }
    ExecuteKernel(run, node, inputs, state.outputs);
  };

  if (!parallel) {
    // Sequential: simple worklist in dependency order.
    std::deque<int> ready;
    for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
      if (states[i].pending == 0) ready.push_back(static_cast<int>(i));
    }
    std::size_t executed = 0;
    while (!ready.empty()) {
      const int index = ready.front();
      ready.pop_front();
      run_node(index);
      ++executed;
      for (const int consumer : plan.consumers[static_cast<std::size_t>(index)]) {
        if (--states[static_cast<std::size_t>(consumer)].pending == 0) {
          ready.push_back(consumer);
        }
      }
    }
    if (executed != plan.nodes.size()) {
      throw InternalError("graph contains a cycle (DAG executor)");
    }
  } else {
    JANUS_EXPECTS(run.pool != nullptr);
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining = plan.nodes.size();
    std::exception_ptr first_error;

    // Forward declaration via std::function for the recursive completion
    // chain: finishing a node may schedule its consumers.
    std::function<void(int)> dispatch = [&](int index) {
      try {
        run_node(index);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mu);
        if (!first_error) first_error = std::current_exception();
      }
      std::vector<int> newly_ready;
      {
        const std::lock_guard<std::mutex> lock(mu);
        for (const int consumer :
             plan.consumers[static_cast<std::size_t>(index)]) {
          if (--states[static_cast<std::size_t>(consumer)].pending == 0) {
            newly_ready.push_back(consumer);
          }
        }
        --remaining;
        if (remaining == 0) cv.notify_all();
      }
      // Even after an error we keep draining dependencies so `remaining`
      // reaches zero; erroring nodes simply produce empty outputs that no
      // one will read (the first error is rethrown at the end).
      for (std::size_t i = 0; i + 1 < newly_ready.size(); ++i) {
        run.pool->Schedule([&dispatch, n = newly_ready[i]] { dispatch(n); });
      }
      if (!newly_ready.empty()) dispatch(newly_ready.back());
    };

    std::vector<int> roots;
    for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
      if (states[i].pending == 0) roots.push_back(static_cast<int>(i));
    }
    for (std::size_t i = 0; i + 1 < roots.size(); ++i) {
      run.pool->Schedule([&dispatch, n = roots[i]] { dispatch(n); });
    }
    if (!roots.empty()) dispatch(roots.back());

    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return remaining == 0; });
    if (first_error) std::rethrow_exception(first_error);
  }

  std::vector<Tensor> results;
  results.reserve(fetches.size());
  for (const NodeOutput& fetch : fetches) {
    const auto& state = states[static_cast<std::size_t>(plan.index.at(fetch.node))];
    results.push_back(state.outputs.at(static_cast<std::size_t>(fetch.index)));
  }
  return results;
}

// ---------------------------------------------------------------------------
// Dynamic (tagged-token) executor
// ---------------------------------------------------------------------------

namespace {

struct Token {
  Tensor value;
  bool dead = false;
};

// A tag is the textual encoding of the frame path: "" is the root frame;
// entering frame F yields "<parent>/F#0"; NextIteration bumps the trailing
// iteration counter.
std::string ChildTag(const std::string& tag, const std::string& frame) {
  return tag + "/" + frame + "#0";
}

std::string ParentTag(const std::string& tag) {
  const auto pos = tag.rfind('/');
  JANUS_EXPECTS(pos != std::string::npos);
  return tag.substr(0, pos);
}

std::string NextIterTag(const std::string& tag) {
  const auto pos = tag.rfind('#');
  JANUS_EXPECTS(pos != std::string::npos);
  const std::int64_t iter = std::stoll(tag.substr(pos + 1));
  return tag.substr(0, pos + 1) + std::to_string(iter + 1);
}

// Base of a frame instance: the tag minus its iteration counter. Used to
// track loop-invariant (constant) Enter values.
std::string FrameBase(const std::string& tag) {
  const auto pos = tag.rfind('#');
  JANUS_EXPECTS(pos != std::string::npos);
  return tag.substr(0, pos);
}

struct PendingNode {
  std::vector<std::optional<Token>> inputs;
  int control_pending = 0;
  int arrived = 0;
  bool fired = false;        // Merge: fired on first live arrival
  bool initialized = false;  // input slots sized; source inputs prefilled
  bool any_control_dead = false;
};

struct Edge {
  const Node* consumer;
  int input_slot;  // -1 for control edges
};

}  // namespace

std::vector<Tensor> ExecuteDynamic(RunContext& run, const Graph& graph,
                                   const Bindings& bindings,
                                   std::span<const NodeOutput> fetches) {
  // Consumer lists per (node, output index) and control consumers per node,
  // cached across runs (built once per graph version).
  struct DynPlan {
    std::unordered_map<const Node*, std::vector<std::vector<Edge>>> out_edges;
    std::unordered_map<const Node*, std::vector<Edge>> control_edges;
  };
  std::shared_ptr<const DynPlan> dyn_plan;
  {
    auto& cache = graph.exec_cache();
    const std::lock_guard<std::mutex> lock(cache.mu);
    if (cache.dyn_version == graph.version()) {
      dyn_plan = std::static_pointer_cast<const DynPlan>(cache.dyn_plan);
    }
  }
  if (dyn_plan == nullptr) {
    auto fresh = std::make_shared<DynPlan>();
    for (const auto& node : graph.nodes()) {
      fresh->out_edges[node.get()].resize(
          static_cast<std::size_t>(std::max(1, node->num_outputs())));
    }
    for (const auto& node : graph.nodes()) {
      for (int slot = 0; slot < node->num_inputs(); ++slot) {
        const NodeOutput input = node->input(slot);
        fresh->out_edges[input.node][static_cast<std::size_t>(input.index)]
            .push_back({node.get(), slot});
      }
      for (Node* control : node->control_inputs()) {
        fresh->control_edges[control].push_back({node.get(), -1});
      }
    }
    dyn_plan = fresh;
    auto& cache = graph.exec_cache();
    const std::lock_guard<std::mutex> lock(cache.mu);
    cache.dyn_version = graph.version();
    cache.dyn_plan = dyn_plan;
  }
  const auto& out_edges = dyn_plan->out_edges;
  const auto& control_edges = dyn_plan->control_edges;

  // Execution state per (node, tag).
  struct Key {
    const Node* node;
    std::string tag;
    bool operator==(const Key& other) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      return std::hash<const void*>()(key.node) * 1315423911u ^
             std::hash<std::string>()(key.tag);
    }
  };
  std::unordered_map<Key, PendingNode, KeyHash> pending;

  // Loop-invariant Enter values per frame base, plus which iterations of
  // that frame have been seeded with them already.
  struct FrameConstants {
    std::vector<std::pair<const Node*, Token>> values;  // producer Enter node
    std::unordered_set<std::string> seeded_tags;
  };
  std::unordered_map<std::string, FrameConstants> frame_constants;

  // Fetch bookkeeping: fetches resolve at the root tag.
  std::vector<std::optional<Tensor>> fetched(fetches.size());
  std::size_t fetches_outstanding = fetches.size();

  std::deque<std::pair<Key, PendingNode>> ready;

  const auto required_inputs = [](const Node& node) {
    return node.num_inputs();
  };

  // Source values are tag-polymorphic: Const/Placeholder/Param outputs (and
  // the outputs of input-less stateful nodes, evaluated once up front) are
  // available in every frame at every iteration, so consumers inside loop
  // frames need no explicit Enter edges for them. This mirrors how TF hoists
  // loop invariants with constant Enter nodes, without burdening the graph
  // generator.
  std::unordered_map<const Node*, std::vector<Token>> source_values;
  const auto is_source_producer = [&](const Node* node) {
    return source_values.find(node) != source_values.end();
  };

  // Forward declaration: delivering a token may enqueue ready nodes.
  std::function<void(const Node*, int, const std::string&, const Token&)>
      deliver_output;

  const auto deliver_to = [&](const Node* consumer, int slot,
                              const std::string& tag, const Token& token) {
    const Key key{consumer, tag};
    auto& state = pending[key];
    if (!state.initialized) {
      state.initialized = true;
      state.inputs.resize(
          static_cast<std::size_t>(required_inputs(*consumer)));
      state.control_pending =
          static_cast<int>(consumer->control_inputs().size());
      if (!tag.empty()) {
        // Prefill inputs produced by tag-polymorphic sources; at the root
        // tag they are delivered through the normal seeding pass instead.
        for (int i = 0; i < consumer->num_inputs(); ++i) {
          const NodeOutput input = consumer->input(i);
          const auto it = source_values.find(input.node);
          if (it != source_values.end()) {
            state.inputs[static_cast<std::size_t>(i)] =
                it->second.at(static_cast<std::size_t>(input.index));
            ++state.arrived;
          }
        }
        for (const Node* control : consumer->control_inputs()) {
          if (is_source_producer(control)) --state.control_pending;
        }
      }
    }
    // A fired Merge may receive a late token from the branch that lost the
    // race (its state was already consumed); ignore it.
    if (consumer->op() == "Merge" && state.fired) return;
    if (slot >= 0) {
      auto& cell = state.inputs.at(static_cast<std::size_t>(slot));
      if (cell.has_value()) {
        // Merge nodes may legitimately receive a late token on an input the
        // other side already satisfied; everything else is a bug.
        if (consumer->op() != "Merge") {
          throw InternalError("duplicate token for " + consumer->name());
        }
      }
      cell = token;
      ++state.arrived;
    } else {
      --state.control_pending;
      if (token.dead) state.any_control_dead = true;
    }

    const bool controls_done = state.control_pending <= 0;
    if (consumer->op() == "Merge") {
      if (state.fired) return;
      // Fire on the first live arrival, or once every input arrived dead.
      if (controls_done && slot >= 0 && !token.dead) {
        state.fired = true;
        ready.push_back({key, std::move(pending[key])});
        return;
      }
      if (controls_done &&
          state.arrived == required_inputs(*consumer)) {
        bool all_dead = true;
        for (const auto& cell : state.inputs) {
          if (cell.has_value() && !cell->dead) all_dead = false;
        }
        if (all_dead) {
          state.fired = true;
          ready.push_back({key, std::move(pending[key])});
        }
      }
      return;
    }
    if (controls_done && state.arrived == required_inputs(*consumer)) {
      ready.push_back({key, std::move(pending[key])});
      pending.erase(key);
    }
  };

  deliver_output = [&](const Node* producer, int index, const std::string& tag,
                       const Token& token) {
    // Fetches resolve only at the root tag.
    if (tag.empty()) {
      for (std::size_t i = 0; i < fetches.size(); ++i) {
        if (fetches[i].node == producer && fetches[i].index == index &&
            !fetched[i].has_value() && !token.dead) {
          fetched[i] = token.value;
          --fetches_outstanding;
        }
      }
    }
    for (const Edge& edge :
         out_edges.at(producer)[static_cast<std::size_t>(index)]) {
      deliver_to(edge.consumer, edge.input_slot, tag, token);
    }
    if (index == 0) {
      const auto control_it = control_edges.find(producer);
      if (control_it != control_edges.end()) {
        for (const Edge& edge : control_it->second) {
          deliver_to(edge.consumer, -1, tag, token);
        }
      }
    }
  };

  // Seed a newly observed loop iteration with the frame's constant values.
  const auto seed_iteration = [&](const std::string& tag) {
    auto it = frame_constants.find(FrameBase(tag));
    if (it == frame_constants.end()) return;
    if (!it->second.seeded_tags.insert(tag).second) return;
    for (const auto& [enter_node, token] : it->second.values) {
      deliver_output(enter_node, 0, tag, token);
    }
  };

  // Evaluate source nodes up front. Input-less stateful nodes (ReadVariable,
  // RandomNormal, ...) with no control dependencies execute exactly once per
  // run, so their outputs are also tag-polymorphic sources.
  for (const auto& node : graph.nodes()) {
    if (IsSourceOp(node->op())) {
      source_values[node.get()] = {
          Token{ResolveSource(run, *node, bindings), false}};
    } else if (node->num_inputs() == 0 && node->control_inputs().empty()) {
      std::vector<Tensor> outputs;
      ExecuteKernel(run, *node, {}, outputs);
      std::vector<Token> tokens;
      tokens.reserve(outputs.size());
      for (Tensor& out : outputs) tokens.push_back(Token{std::move(out), false});
      source_values[node.get()] = std::move(tokens);
    }
  }
  // Deliver source outputs at the root tag (frame consumers receive them via
  // the prefill in deliver_to instead).
  for (const auto& [producer, tokens] : source_values) {
    for (std::size_t index = 0; index < tokens.size(); ++index) {
      deliver_output(producer, static_cast<int>(index), "", tokens[index]);
    }
  }

  while (!ready.empty() && fetches_outstanding > 0) {
    auto [key, state] = std::move(ready.front());
    ready.pop_front();
    const Node& node = *key.node;
    const std::string& tag = key.tag;

    // Collect input tokens (absent cells are only legal for Merge).
    std::vector<Token> tokens(state.inputs.size());
    bool any_dead = state.any_control_dead;
    for (std::size_t i = 0; i < state.inputs.size(); ++i) {
      if (state.inputs[i].has_value()) {
        tokens[i] = *state.inputs[i];
        if (tokens[i].dead) any_dead = true;
      } else if (node.op() != "Merge") {
        throw InternalError("missing token for " + node.name());
      }
    }

    if (node.op() == "Merge") {
      // Forward the first live input (and its index); dead if none live.
      Token out{Tensor{}, true};
      std::int64_t live_index = -1;
      for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (state.inputs[i].has_value() && !tokens[i].dead) {
          out = tokens[i];
          live_index = static_cast<std::int64_t>(i);
          break;
        }
      }
      deliver_output(&node, 0, tag, out);
      deliver_output(&node, 1, tag,
                     Token{Tensor::ScalarInt(live_index), out.dead});
      continue;
    }
    if (node.op() == "Switch") {
      const Token& data = tokens.at(0);
      const Token& pred = tokens.at(1);
      if (data.dead || pred.dead) {
        deliver_output(&node, 0, tag, Token{Tensor{}, true});
        deliver_output(&node, 1, tag, Token{Tensor{}, true});
        continue;
      }
      const bool taken = pred.value.ScalarBoolValue();
      deliver_output(&node, taken ? 1 : 0, tag, data);
      deliver_output(&node, taken ? 0 : 1, tag, Token{Tensor{}, true});
      continue;
    }
    if (node.op() == "Enter") {
      const std::string child = ChildTag(tag, node.GetStringAttr("frame"));
      if (node.HasAttr("is_constant") && node.GetBoolAttr("is_constant") &&
          !tokens.at(0).dead) {
        frame_constants[FrameBase(child)].values.push_back(
            {&node, tokens.at(0)});
        frame_constants[FrameBase(child)].seeded_tags.insert(child);
      }
      deliver_output(&node, 0, child, tokens.at(0));
      continue;
    }
    if (node.op() == "NextIteration") {
      if (tokens.at(0).dead) continue;  // loop termination: drop dead tokens
      const std::string next = NextIterTag(tag);
      seed_iteration(next);
      deliver_output(&node, 0, next, tokens.at(0));
      continue;
    }
    if (node.op() == "Exit") {
      if (tokens.at(0).dead) continue;  // only the final live value escapes
      deliver_output(&node, 0, ParentTag(tag), tokens.at(0));
      continue;
    }

    // Ordinary op: dead in => dead out, kernel skipped.
    if (any_dead) {
      for (int i = 0; i < node.num_outputs(); ++i) {
        deliver_output(&node, i, tag, Token{Tensor{}, true});
      }
      continue;
    }
    std::vector<Tensor> inputs;
    inputs.reserve(tokens.size());
    for (const Token& token : tokens) inputs.push_back(token.value);
    std::vector<Tensor> outputs;
    ExecuteKernel(run, node, inputs, outputs);
    for (int i = 0; i < node.num_outputs(); ++i) {
      deliver_output(&node, i, tag,
                     Token{outputs.at(static_cast<std::size_t>(i)), false});
    }
  }

  if (fetches_outstanding > 0) {
    std::string detail;
    for (std::size_t i = 0; i < fetches.size(); ++i) {
      if (!fetched[i].has_value()) {
        detail += " " + fetches[i].node->DebugString();
      }
    }
    detail += " | pending:";
    int listed = 0;
    for (const auto& [key, state] : pending) {
      if (listed >= 12) break;
      if (!state.initialized || state.fired) continue;
      detail += " " + key.node->name() + "(" +
                std::to_string(state.arrived) + "/" +
                std::to_string(key.node->num_inputs()) + ",c" +
                std::to_string(state.control_pending) + ")@" + key.tag;
      ++listed;
    }
    throw InternalError(
        "dynamic executor deadlock: " + std::to_string(fetches_outstanding) +
        " fetches unresolved:" + detail);
  }
  std::vector<Tensor> results;
  results.reserve(fetches.size());
  for (auto& value : fetched) results.push_back(std::move(*value));
  return results;
}

}  // namespace internal

Executor::Executor(const FunctionLibrary* library, VariableStore* variables,
                   StateInterface* host_state, Rng* rng,
                   ExecutorOptions options)
    : library_(library),
      variables_(variables),
      host_state_(host_state),
      rng_(rng),
      options_(options) {}

bool Executor::NeedsDynamicExecution(const Graph& graph) {
  for (const auto& node : graph.nodes()) {
    if (internal::IsControlFlowOp(node->op())) return true;
  }
  return false;
}

std::vector<Tensor> Executor::Run(const Graph& graph,
                                  const std::map<std::string, Tensor>& feeds,
                                  std::span<const NodeOutput> fetches) {
  return Run(graph, feeds, fetches, nullptr);
}

std::vector<Tensor> Executor::Run(const Graph& graph,
                                  const std::map<std::string, Tensor>& feeds,
                                  std::span<const NodeOutput> fetches,
                                  std::int64_t* ops_executed) {
  RunContext run;
  run.feeds = &feeds;
  run.variables = variables_;
  run.host_state = host_state_;
  run.library = library_;
  run.rng = rng_;
  run.pool = options_.parallel ? options_.pool : nullptr;

  std::vector<Tensor> results;
  if (NeedsDynamicExecution(graph)) {
    results = internal::ExecuteDynamic(run, graph, {}, fetches);
  } else {
    results = internal::ExecuteDag(run, graph, {}, fetches,
                                   options_.parallel && options_.pool);
  }
  run.Commit();
  if (ops_executed != nullptr) {
    *ops_executed = run.ops_executed.load(std::memory_order_relaxed);
  }
  return results;
}

std::vector<Tensor> Executor::RunFunction(RunContext& run,
                                          const GraphFunction& fn,
                                          std::span<const Tensor> args) {
  if (args.size() != fn.parameters.size()) {
    throw InvalidArgument("function '" + fn.name + "' expects " +
                          std::to_string(fn.parameters.size()) +
                          " arguments, got " + std::to_string(args.size()));
  }
  internal::Bindings bindings;
  for (std::size_t i = 0; i < args.size(); ++i) {
    bindings[fn.parameters[i]] = args[i];
  }
  if (NeedsDynamicExecution(fn.graph)) {
    try {
      return internal::ExecuteDynamic(run, fn.graph, bindings, fn.results);
    } catch (const InternalError& e) {
      throw InternalError("in function '" + fn.name + "': " + e.what());
    }
  }
  // Nested runs execute inline on the calling thread (never on the pool) to
  // avoid pool-thread starvation; see header comment.
  return internal::ExecuteDag(run, fn.graph, bindings, fn.results,
                              /*parallel=*/false);
}

}  // namespace janus
