// DAG strategy: executes a precompiled ExecutionPlan over dependency
// countdown, sequentially or fanned out to a thread pool. All scheduling
// data (dense indices, pending counts, consumer lists, resolved kernels)
// comes from the plan; the only per-run state is the countdown/output array.
//
// Buffer liveness follows the plan's MemoryPlan: every data read of a
// producer's outputs counts its `reads_remaining` down, and the read that
// reaches zero clears the producer's output slots (unless fetch-protected).
// That both returns dead intermediate buffers to the BufferPool mid-run and
// makes the consuming kernel's `inputs` vector the sole holder of a dying
// buffer, enabling in-place output reuse for plan-marked elementwise nodes.
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>

#include "common/logging.h"
#include "obs/profile.h"
#include "runtime/executor.h"
#include "runtime/fusion.h"

namespace janus {
namespace internal {
namespace {

struct DagNodeState {
  int pending = 0;
  std::atomic<int> reads_remaining{0};
  std::vector<Tensor> outputs;
};

}  // namespace

std::vector<Tensor> ExecuteDag(RunContext& run, const ExecutionPlan& plan,
                               const Bindings& bindings, bool parallel,
                               const Precomputed* precomputed) {
  const std::vector<ExecutionPlan::DagNode>& nodes = plan.dag_nodes();
  const MemoryPlan& memory = plan.memory();
  std::vector<DagNodeState> states(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    states[i].pending = nodes[i].initial_pending;
    states[i].reads_remaining.store(memory.dag[i].output_reads,
                                    std::memory_order_relaxed);
  }

  const auto release_outputs = [&](DagNodeState& state) {
    run.buffers_released.fetch_add(
        static_cast<std::int64_t>(state.outputs.size()),
        std::memory_order_relaxed);
    state.outputs.clear();
  };

  obs::PlanProfile* const profile = plan.profile();

  const auto run_node = [&](int index) {
    // Source-attributed profiler: sampled per-node wall time (disabled
    // path is one relaxed load inside ShouldSampleProfileNode).
    const bool prof_sampled = obs::ShouldSampleProfileNode();
    const ProfRecord prof_record{profile, index,
                                 prof_sampled ? obs::Trace::NowNs() : 0,
                                 prof_sampled};
    const ExecutionPlan::DagNode& entry =
        nodes[static_cast<std::size_t>(index)];
    const MemoryPlan::DagNodeInfo& minfo =
        memory.dag[static_cast<std::size_t>(index)];
    auto& state = states[static_cast<std::size_t>(index)];
    if (precomputed != nullptr) {
      const auto it = precomputed->find(entry.node);
      if (it != precomputed->end()) {
        // Precomputed nodes skip reading their inputs, so their producers'
        // read countdowns never reach zero: liveness release degrades to
        // end-of-run teardown for that subgraph, never to a premature drop.
        state.outputs = it->second;
        return;
      }
    }
    switch (entry.kind) {
      case ExecutionPlan::OpKind::kConst:
        state.outputs.assign(1, entry.const_value);
        return;
      case ExecutionPlan::OpKind::kPlaceholder:
      case ExecutionPlan::OpKind::kParam:
        state.outputs.assign(
            1, ResolveSource(run, entry.kind, *entry.node, bindings));
        return;
      default:
        break;
    }
    std::vector<Tensor> inputs;
    inputs.reserve(entry.inputs.size());
    for (const ExecutionPlan::DagInput& input : entry.inputs) {
      const auto& producer = states[static_cast<std::size_t>(input.producer)];
      inputs.push_back(
          producer.outputs.at(static_cast<std::size_t>(input.slot)));
    }
    // This node's reads are done (copied above): count them off each
    // producer and drop producer-held references when the last counted read
    // completes. The acq_rel countdown orders every consumer's copy before
    // the clearing thread's release, so this is safe under the parallel
    // scheduler too.
    for (const ExecutionPlan::DagInput& input : entry.inputs) {
      auto& producer = states[static_cast<std::size_t>(input.producer)];
      if (producer.reads_remaining.fetch_sub(1, std::memory_order_acq_rel) ==
              1 &&
          !memory.dag[static_cast<std::size_t>(input.producer)]
               .fetch_protected) {
        release_outputs(producer);
      }
    }
    if (entry.kind == ExecutionPlan::OpKind::kFusedRegion) {
      // Note the precomputed check above keys on the region's ROOT node;
      // interior members recorded on an eager tape are honoured inside
      // ExecuteFusedRegion, which falls back to per-member dispatch.
      ExecuteFusedRegion(run, *entry.fused, inputs, state.outputs,
                         /*allow_in_place=*/minfo.in_place_capable,
                         precomputed);
    } else {
      ExecuteKernel(run, *entry.node, *entry.kernel, inputs, state.outputs,
                    /*allow_in_place=*/minfo.in_place_capable);
    }
    // Outputs nothing reads (control-edge-anchored side effects) die at
    // birth.
    if (minfo.output_reads == 0 && !minfo.fetch_protected &&
        !state.outputs.empty()) {
      release_outputs(state);
    }
  };

  if (!parallel) {
    // Sequential: simple worklist in dependency order.
    std::deque<int> ready;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (states[i].pending == 0) ready.push_back(static_cast<int>(i));
    }
    std::size_t executed = 0;
    while (!ready.empty()) {
      const int index = ready.front();
      ready.pop_front();
      run_node(index);
      ++executed;
      for (const int consumer :
           nodes[static_cast<std::size_t>(index)].consumers) {
        if (--states[static_cast<std::size_t>(consumer)].pending == 0) {
          ready.push_back(consumer);
        }
      }
    }
    if (executed != nodes.size()) {
      throw InternalError("graph contains a cycle (DAG executor)");
    }
  } else {
    JANUS_EXPECTS(run.pool != nullptr);
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining = nodes.size();
    std::exception_ptr first_error;

    // Forward declaration via std::function for the recursive completion
    // chain: finishing a node may schedule its consumers.
    std::function<void(int)> dispatch = [&](int index) {
      try {
        run_node(index);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mu);
        if (!first_error) first_error = std::current_exception();
      }
      std::vector<int> newly_ready;
      {
        const std::lock_guard<std::mutex> lock(mu);
        for (const int consumer :
             nodes[static_cast<std::size_t>(index)].consumers) {
          if (--states[static_cast<std::size_t>(consumer)].pending == 0) {
            newly_ready.push_back(consumer);
          }
        }
        --remaining;
        if (remaining == 0) cv.notify_all();
      }
      // Even after an error we keep draining dependencies so `remaining`
      // reaches zero; erroring nodes simply produce empty outputs that no
      // one will read (the first error is rethrown at the end).
      for (std::size_t i = 0; i + 1 < newly_ready.size(); ++i) {
        run.pool->Schedule([&dispatch, n = newly_ready[i]] { dispatch(n); });
      }
      if (!newly_ready.empty()) dispatch(newly_ready.back());
    };

    std::vector<int> roots;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (states[i].pending == 0) roots.push_back(static_cast<int>(i));
    }
    for (std::size_t i = 0; i + 1 < roots.size(); ++i) {
      run.pool->Schedule([&dispatch, n = roots[i]] { dispatch(n); });
    }
    if (!roots.empty()) dispatch(roots.back());

    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return remaining == 0; });
    if (first_error) std::rethrow_exception(first_error);
  }

  std::vector<Tensor> results;
  results.reserve(plan.dag_fetch_slots().size());
  for (const ExecutionPlan::DagInput& fetch : plan.dag_fetch_slots()) {
    const auto& state = states[static_cast<std::size_t>(fetch.producer)];
    results.push_back(state.outputs.at(static_cast<std::size_t>(fetch.slot)));
  }
  return results;
}

}  // namespace internal
}  // namespace janus
