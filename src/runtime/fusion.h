// Plan-build fusion of elementwise regions into superops.
//
// A fusion pass runs at ExecutionPlan build time (plan.cc) and greedily
// groups maximal chains/trees of fusable elementwise and broadcast ops —
// plus an optional reduction epilogue (ReduceSum/ReduceMean root) — into
// single OpKind::kFusedRegion plan nodes. A region executes with ONE
// dispatch through a template-interpreted superop: a compact postfix program
// over virtual register values, specialized on first run against the actual
// input dtypes + shapes (plans carry no placeholder shapes, so despecialized
// rank-only/shapeless graphs fuse exactly like exact-shape ones — the
// "runtime-count variant"). The interpreter walks the iteration space block
// by block: per instruction one function-pointer dispatch plus a tight typed
// loop over the block, with interior values living in a thread-local scratch
// arena — interior tensors are never materialized and the region's single
// output is written in one pass with zero intermediate buffer allocations.
//
// Specialized programs are content-addressed (op sequence + operand wiring +
// reduction params + external dtypes/shapes) in the process-wide
// cache::FusedKernelCache so identical regions across units/specializations
// share one compiled program.
//
// Correctness contract: fused execution is bitwise identical to unfused
// per-node execution. Every block kernel replicates the corresponding
// ops_elementwise.cc lambda exactly, reduction epilogues accumulate in the
// same linear input order as ops_linalg.cc's ReduceImpl, and any shape /
// dtype combination the superop cannot prove bit-exact (non-identity
// broadcasts that are neither scalar nor full-size, int64 true division's
// float promotion, ops that may throw data-dependent errors like integer
// FloorDiv/Mod) falls back to per-member kernel dispatch inside the region,
// preserving exact error attribution ("[at <node>]") and precomputed-output
// (eager tape) semantics.
//
// Kill switches: JANUS_FUSION=0 disables the pass process-wide;
// EngineOptions::enable_fusion and PlanOptions::enable_fusion disable it per
// engine / per plan build.
#ifndef JANUS_RUNTIME_FUSION_H_
#define JANUS_RUNTIME_FUSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

#include "runtime/executor.h"
#include "runtime/plan.h"

namespace janus {

namespace fusion {

// Process-wide kill switch, initialized from JANUS_FUSION ("0"/"false"/"off"
// disable; default on). ANDed with PlanOptions::enable_fusion at build time.
bool GloballyEnabled();
void SetGloballyEnabled(bool enabled);

}  // namespace fusion

// The ops the superop interpreter understands. Reductions are legal only as
// the region root (epilogue); everything else is same-index elementwise or
// broadcast.
enum class FusedOp : std::uint8_t {
  // Unary.
  kNeg,
  kAbs,
  kSign,
  kExp,
  kLog,
  kSqrt,
  kSquare,
  kTanh,
  kSigmoid,
  kRelu,
  kLogicalNot,
  // Binary.
  kAdd,
  kSub,
  kMul,
  kDiv,
  kFloorDiv,
  kMod,
  kPow,
  kMaximum,
  kMinimum,
  kReluGrad,
  kEqual,
  kNotEqual,
  kLess,
  kLessEqual,
  kGreater,
  kGreaterEqual,
  kLogicalAnd,
  kLogicalOr,
  // Reduction epilogues (root only).
  kReduceSum,
  kReduceMean,
};

struct FusedSpec;  // runtime specialization, private to fusion.cc

// The plan-time (structural) description of one fused region. Value ids form
// a register file: ids [0, num_externals) are the region's deduplicated
// external inputs in discovery order; each member then defines the next id,
// so members.back() defines the region output.
struct FusedRegionPlan {
  struct Member {
    const Node* node = nullptr;
    const KernelFn* kernel = nullptr;  // fallback per-member dispatch
    FusedOp op = FusedOp::kAdd;
    int value_id = -1;  // value this member defines
    int a = -1;         // operand value ids (-1 = unused)
    int b = -1;
    // Reduction epilogue parameters (raw node attrs).
    std::vector<std::int64_t> axes;
    bool keep_dims = false;
  };

  std::vector<Member> members;  // topological order; members.back() = root
  int num_externals = 0;
  int num_values = 0;  // num_externals + members.size()
  bool has_reduction = false;
  // Content-address prefix: ops + operand wiring + reduction params. The
  // full FusedKernelCache key appends external dtypes + shapes at
  // specialization time.
  std::string signature;

  // Memoized runtime specialization, validated against the actual inputs on
  // every execution and rebuilt (through the global cache) on mismatch.
  mutable Mutex memo_mu;
  mutable std::shared_ptr<const FusedSpec> memo GUARDED_BY(memo_mu);
};

// Fusion passes, invoked by ExecutionPlan::Build after the dense schedule is
// constructed. Both rewrite the node array in place: interior members
// disappear, the region node takes the root's position (preserving
// topological order), and all adjacency/fetch indices are remapped. Returns
// the number of regions formed.
int FuseDagPlan(
    std::vector<ExecutionPlan::DagNode>& nodes,
    std::vector<ExecutionPlan::DagInput>& fetch_slots,
    std::unordered_map<const Node*, int>& dag_index,
    std::vector<std::shared_ptr<const FusedRegionPlan>>& regions);

int FuseDynPlan(
    std::vector<ExecutionPlan::DynNode>& nodes,
    std::vector<ExecutionPlan::DagInput>& fetch_slots,
    std::vector<std::shared_ptr<const FusedRegionPlan>>& regions);

namespace internal {

// Executes one fused region: `inputs` are the region's external values in
// value-id order; `outputs` receives the single region output at slot 0.
// Specializes (or revalidates) the region's program against the actual
// input dtypes/shapes, then either runs the block interpreter or the
// per-member fallback path. `precomputed` carries the eager tape's recorded
// forward outputs; any region member present there forces the fallback path
// so recorded values are honoured exactly.
void ExecuteFusedRegion(RunContext& run, const FusedRegionPlan& region,
                        std::span<const Tensor> inputs,
                        std::vector<Tensor>& outputs, bool allow_in_place,
                        const Precomputed* precomputed);

}  // namespace internal
}  // namespace janus

#endif  // JANUS_RUNTIME_FUSION_H_
