// Dynamic (tagged-token) strategy: executes a precompiled ExecutionPlan for
// graphs containing Switch/Merge/Enter/Exit/NextIteration, with tokens
// carrying (frame, iteration) tags and dead-value propagation — the classic
// TF 1.x dataflow machinery the paper builds on (§4.2.1). All adjacency,
// op classification, and kernel resolution come from the plan; per-run state
// is only the (node, tag)-keyed token table.
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "runtime/executor.h"
#include "runtime/fusion.h"

namespace janus {
namespace internal {
namespace {

using OpKind = ExecutionPlan::OpKind;

struct Token {
  Tensor value;
  bool dead = false;
};

// A tag is the textual encoding of the frame path: "" is the root frame;
// entering frame F yields "<parent>/F#0"; NextIteration bumps the trailing
// iteration counter.
std::string ChildTag(const std::string& tag, const std::string& frame) {
  return tag + "/" + frame + "#0";
}

std::string ParentTag(const std::string& tag) {
  const auto pos = tag.rfind('/');
  JANUS_EXPECTS(pos != std::string::npos);
  return tag.substr(0, pos);
}

std::string NextIterTag(const std::string& tag) {
  const auto pos = tag.rfind('#');
  JANUS_EXPECTS(pos != std::string::npos);
  const std::int64_t iter = std::stoll(tag.substr(pos + 1));
  return tag.substr(0, pos + 1) + std::to_string(iter + 1);
}

// Base of a frame instance: the tag minus its iteration counter. Used to
// track loop-invariant (constant) Enter values.
std::string FrameBase(const std::string& tag) {
  const auto pos = tag.rfind('#');
  JANUS_EXPECTS(pos != std::string::npos);
  return tag.substr(0, pos);
}

struct PendingNode {
  std::vector<std::optional<Token>> inputs;
  int control_pending = 0;
  int arrived = 0;
  bool fired = false;        // Merge: fired on first live arrival
  bool initialized = false;  // input slots sized; source inputs prefilled
  bool any_control_dead = false;
};

}  // namespace

std::vector<Tensor> ExecuteDynamic(RunContext& run, const ExecutionPlan& plan,
                                   const Bindings& bindings) {
  const std::vector<ExecutionPlan::DynNode>& nodes = plan.dyn_nodes();
  obs::PlanProfile* const profile = plan.profile();

  // Execution state per (node, tag); nodes are dense plan indices.
  struct Key {
    int node;
    std::string tag;
    bool operator==(const Key& other) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      return static_cast<std::size_t>(key.node) * 1315423911u ^
             std::hash<std::string>()(key.tag);
    }
  };
  std::unordered_map<Key, PendingNode, KeyHash> pending;

  // Loop-invariant Enter values per frame base, plus which iterations of
  // that frame have been seeded with them already.
  struct FrameConstants {
    std::vector<std::pair<int, Token>> values;  // producer Enter node index
    std::unordered_set<std::string> seeded_tags;
  };
  std::unordered_map<std::string, FrameConstants> frame_constants;

  // Fetch bookkeeping: fetches resolve at the root tag.
  const std::vector<ExecutionPlan::DagInput>& fetch_slots =
      plan.dyn_fetch_slots();
  std::vector<std::optional<Tensor>> fetched(fetch_slots.size());
  std::size_t fetches_outstanding = fetch_slots.size();

  std::deque<std::pair<Key, PendingNode>> ready;

  // Source values are tag-polymorphic: Const/Placeholder/Param outputs (and
  // the outputs of input-less stateful nodes, evaluated once up front) are
  // available in every frame at every iteration, so consumers inside loop
  // frames need no explicit Enter edges for them. This mirrors how TF hoists
  // loop invariants with constant Enter nodes, without burdening the graph
  // generator.
  std::vector<std::vector<Token>> source_values(nodes.size());
  const auto is_source_producer = [&](int index) {
    return nodes[static_cast<std::size_t>(index)].is_root_source;
  };

  // Forward declaration: delivering a token may enqueue ready nodes.
  std::function<void(int, int, const std::string&, const Token&)>
      deliver_output;

  const auto deliver_to = [&](int consumer, int slot, const std::string& tag,
                              const Token& token) {
    const ExecutionPlan::DynNode& info =
        nodes[static_cast<std::size_t>(consumer)];
    const int required_inputs = static_cast<int>(info.inputs.size());
    const Key key{consumer, tag};
    auto& state = pending[key];
    if (!state.initialized) {
      state.initialized = true;
      state.inputs.resize(static_cast<std::size_t>(required_inputs));
      state.control_pending = static_cast<int>(info.control_producers.size());
      if (!tag.empty()) {
        // Prefill inputs produced by tag-polymorphic sources; at the root
        // tag they are delivered through the normal seeding pass instead.
        for (int i = 0; i < required_inputs; ++i) {
          const ExecutionPlan::DagInput& input =
              info.inputs[static_cast<std::size_t>(i)];
          if (is_source_producer(input.producer)) {
            state.inputs[static_cast<std::size_t>(i)] =
                source_values[static_cast<std::size_t>(input.producer)].at(
                    static_cast<std::size_t>(input.slot));
            ++state.arrived;
          }
        }
        for (const int control : info.control_producers) {
          if (is_source_producer(control)) --state.control_pending;
        }
      }
    }
    // A fired Merge may receive a late token from the branch that lost the
    // race (its state was already consumed); ignore it.
    if (info.kind == OpKind::kMerge && state.fired) return;
    if (slot >= 0) {
      auto& cell = state.inputs.at(static_cast<std::size_t>(slot));
      if (cell.has_value()) {
        // Merge nodes may legitimately receive a late token on an input the
        // other side already satisfied; everything else is a bug.
        if (info.kind != OpKind::kMerge) {
          throw InternalError("duplicate token for " + info.node->name());
        }
      }
      cell = token;
      ++state.arrived;
    } else {
      --state.control_pending;
      if (token.dead) state.any_control_dead = true;
    }

    const bool controls_done = state.control_pending <= 0;
    if (info.kind == OpKind::kMerge) {
      if (state.fired) return;
      // Fire on the first live arrival, or once every input arrived dead.
      if (controls_done && slot >= 0 && !token.dead) {
        state.fired = true;
        ready.push_back({key, std::move(pending[key])});
        return;
      }
      if (controls_done && state.arrived == required_inputs) {
        bool all_dead = true;
        for (const auto& cell : state.inputs) {
          if (cell.has_value() && !cell->dead) all_dead = false;
        }
        if (all_dead) {
          state.fired = true;
          ready.push_back({key, std::move(pending[key])});
        }
      }
      return;
    }
    if (controls_done && state.arrived == required_inputs) {
      ready.push_back({key, std::move(pending[key])});
      pending.erase(key);
    }
  };

  deliver_output = [&](int producer, int index, const std::string& tag,
                       const Token& token) {
    const ExecutionPlan::DynNode& info =
        nodes[static_cast<std::size_t>(producer)];
    // Fetches resolve only at the root tag.
    if (tag.empty()) {
      for (std::size_t i = 0; i < fetch_slots.size(); ++i) {
        if (fetch_slots[i].producer == producer &&
            fetch_slots[i].slot == index && !fetched[i].has_value() &&
            !token.dead) {
          fetched[i] = token.value;
          --fetches_outstanding;
        }
      }
    }
    for (const ExecutionPlan::DynEdge& edge :
         info.out_edges[static_cast<std::size_t>(index)]) {
      deliver_to(edge.consumer, edge.input_slot, tag, token);
    }
    if (index == 0) {
      for (const ExecutionPlan::DynEdge& edge : info.control_edges) {
        deliver_to(edge.consumer, -1, tag, token);
      }
    }
  };

  // Seed a newly observed loop iteration with the frame's constant values.
  const auto seed_iteration = [&](const std::string& tag) {
    auto it = frame_constants.find(FrameBase(tag));
    if (it == frame_constants.end()) return;
    if (!it->second.seeded_tags.insert(tag).second) return;
    for (const auto& [enter_index, token] : it->second.values) {
      deliver_output(enter_index, 0, tag, token);
    }
  };

  // Evaluate source nodes up front. Input-less stateful nodes (ReadVariable,
  // RandomNormal, ...) with no control dependencies execute exactly once per
  // run, so their outputs are also tag-polymorphic sources.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const ExecutionPlan::DynNode& info = nodes[i];
    if (!info.is_root_source) continue;
    const bool prof_sampled = obs::ShouldSampleProfileNode();
    const ProfRecord prof_record{profile, static_cast<int>(i),
                                 prof_sampled ? obs::Trace::NowNs() : 0,
                                 prof_sampled};
    if (info.kind != OpKind::kKernel) {
      source_values[i] = {
          Token{ResolveSource(run, info.kind, *info.node, bindings), false}};
    } else {
      std::vector<Tensor> outputs;
      ExecuteKernel(run, *info.node, *info.kernel, {}, outputs);
      std::vector<Token> tokens;
      tokens.reserve(outputs.size());
      for (Tensor& out : outputs) {
        tokens.push_back(Token{std::move(out), false});
      }
      source_values[i] = std::move(tokens);
    }
  }
  // Deliver source outputs at the root tag (frame consumers receive them via
  // the prefill in deliver_to instead).
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!nodes[i].is_root_source) continue;
    const std::vector<Token>& tokens = source_values[i];
    for (std::size_t index = 0; index < tokens.size(); ++index) {
      deliver_output(static_cast<int>(i), static_cast<int>(index), "",
                     tokens[index]);
    }
  }

  while (!ready.empty() && fetches_outstanding > 0) {
    auto [key, state] = std::move(ready.front());
    ready.pop_front();
    const ExecutionPlan::DynNode& info =
        nodes[static_cast<std::size_t>(key.node)];
    const Node& node = *info.node;
    const std::string& tag = key.tag;

    // Source-attributed profiler: RAII so the control-flow `continue`s
    // above the kernel dispatch are all covered.
    const bool prof_sampled = obs::ShouldSampleProfileNode();
    const ProfRecord prof_record{profile, key.node,
                                 prof_sampled ? obs::Trace::NowNs() : 0,
                                 prof_sampled};

    // Collect input tokens (absent cells are only legal for Merge). Tokens
    // are MOVED out of the dead pending-node state so a single-consumer
    // token's buffer reaches refcount 1 in `tokens`, making it eligible for
    // in-place reuse below. A moved-from optional still has_value(), which
    // the Merge liveness checks below rely on.
    std::vector<Token> tokens(state.inputs.size());
    bool any_dead = state.any_control_dead;
    for (std::size_t i = 0; i < state.inputs.size(); ++i) {
      if (state.inputs[i].has_value()) {
        tokens[i] = std::move(*state.inputs[i]);
        if (tokens[i].dead) any_dead = true;
      } else if (info.kind != OpKind::kMerge) {
        throw InternalError("missing token for " + node.name());
      }
    }

    switch (info.kind) {
      case OpKind::kMerge: {
        // Forward the first live input (and its index); dead if none live.
        Token out{Tensor{}, true};
        std::int64_t live_index = -1;
        for (std::size_t i = 0; i < tokens.size(); ++i) {
          if (state.inputs[i].has_value() && !tokens[i].dead) {
            out = tokens[i];
            live_index = static_cast<std::int64_t>(i);
            break;
          }
        }
        deliver_output(key.node, 0, tag, out);
        deliver_output(key.node, 1, tag,
                       Token{Tensor::ScalarInt(live_index), out.dead});
        continue;
      }
      case OpKind::kSwitch: {
        const Token& data = tokens.at(0);
        const Token& pred = tokens.at(1);
        if (data.dead || pred.dead) {
          deliver_output(key.node, 0, tag, Token{Tensor{}, true});
          deliver_output(key.node, 1, tag, Token{Tensor{}, true});
          continue;
        }
        const bool taken = pred.value.ScalarBoolValue();
        deliver_output(key.node, taken ? 1 : 0, tag, data);
        deliver_output(key.node, taken ? 0 : 1, tag, Token{Tensor{}, true});
        continue;
      }
      case OpKind::kEnter: {
        const std::string child = ChildTag(tag, info.frame);
        if (info.is_constant_enter && !tokens.at(0).dead) {
          frame_constants[FrameBase(child)].values.push_back(
              {key.node, tokens.at(0)});
          frame_constants[FrameBase(child)].seeded_tags.insert(child);
        }
        deliver_output(key.node, 0, child, tokens.at(0));
        continue;
      }
      case OpKind::kNextIteration: {
        if (tokens.at(0).dead) continue;  // loop termination: drop dead tokens
        const std::string next = NextIterTag(tag);
        seed_iteration(next);
        deliver_output(key.node, 0, next, tokens.at(0));
        continue;
      }
      case OpKind::kExit: {
        if (tokens.at(0).dead) continue;  // only the final live value escapes
        deliver_output(key.node, 0, ParentTag(tag), tokens.at(0));
        continue;
      }
      default:
        break;
    }

    // Ordinary op: dead in => dead out, kernel skipped.
    if (any_dead) {
      for (int i = 0; i < node.num_outputs(); ++i) {
        deliver_output(key.node, i, tag, Token{Tensor{}, true});
      }
      continue;
    }
    std::vector<Tensor> inputs;
    inputs.reserve(tokens.size());
    for (Token& token : tokens) inputs.push_back(std::move(token.value));
    std::vector<Tensor> outputs;
    const bool in_place = plan.memory().dyn_in_place[
                              static_cast<std::size_t>(key.node)] != 0;
    if (info.kind == OpKind::kFusedRegion) {
      ExecuteFusedRegion(run, *info.fused, inputs, outputs, in_place,
                         /*precomputed=*/nullptr);
    } else {
      ExecuteKernel(run, node, *info.kernel, inputs, outputs, in_place);
    }
    for (int i = 0; i < node.num_outputs(); ++i) {
      deliver_output(key.node, i, tag,
                     Token{outputs.at(static_cast<std::size_t>(i)), false});
    }
  }

  if (fetches_outstanding > 0) {
    std::string detail;
    for (std::size_t i = 0; i < fetch_slots.size(); ++i) {
      if (!fetched[i].has_value()) {
        detail += " " + plan.fetches()[i].node->DebugString();
      }
    }
    detail += " | pending:";
    int listed = 0;
    for (const auto& [key, state] : pending) {
      if (listed >= 12) break;
      if (!state.initialized || state.fired) continue;
      const Node& node = *nodes[static_cast<std::size_t>(key.node)].node;
      detail += " " + node.name() + "(" + std::to_string(state.arrived) +
                "/" + std::to_string(node.num_inputs()) + ",c" +
                std::to_string(state.control_pending) + ")@" + key.tag;
      ++listed;
    }
    throw InternalError(
        "dynamic executor deadlock: " + std::to_string(fetches_outstanding) +
        " fetches unresolved:" + detail);
  }
  std::vector<Tensor> results;
  results.reserve(fetched.size());
  for (auto& value : fetched) results.push_back(std::move(*value));
  return results;
}

}  // namespace internal
}  // namespace janus
