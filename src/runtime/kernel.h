// Op kernel interface and registry for the dataflow graph runtime.
//
// Control-flow primitives (Switch, Merge, Enter, Exit, NextIteration) are
// interpreted directly by the dynamic executor and have no kernels here;
// every other op resolves to a KernelFn through the registry.
#ifndef JANUS_RUNTIME_KERNEL_H_
#define JANUS_RUNTIME_KERNEL_H_

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "tensor/tensor.h"

namespace janus {

class RunContext;

struct KernelContext {
  const Node* node = nullptr;
  std::span<const Tensor> inputs;
  std::vector<Tensor> outputs;  // kernel must produce node->num_outputs()
  RunContext* run = nullptr;

  const Tensor& input(int i) const {
    return inputs[static_cast<std::size_t>(i)];
  }
  void set_output(int i, Tensor value) {
    outputs.at(static_cast<std::size_t>(i)) = std::move(value);
  }
};

using KernelFn = std::function<void(KernelContext&)>;

class KernelRegistry {
 public:
  // The process-wide registry, pre-populated with all built-in kernels.
  static KernelRegistry& Global();

  void Register(std::string op, KernelFn fn);
  bool Contains(std::string_view op) const;
  const KernelFn& Lookup(std::string_view op) const;
  std::vector<std::string> OpNames() const;

 private:
  std::map<std::string, KernelFn, std::less<>> kernels_;
};

// Registration hooks, one per kernel translation unit. Called once by
// KernelRegistry::Global().
void RegisterMathKernels(KernelRegistry& registry);
void RegisterArrayKernels(KernelRegistry& registry);
void RegisterNNKernels(KernelRegistry& registry);
void RegisterStateKernels(KernelRegistry& registry);
void RegisterFunctionalKernels(KernelRegistry& registry);
void RegisterGradKernels(KernelRegistry& registry);

}  // namespace janus

#endif  // JANUS_RUNTIME_KERNEL_H_
