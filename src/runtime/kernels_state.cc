// Kernels with state or side effects: variables, Python heap access,
// assertions, random generation, and printing. All mutations are staged in
// the RunContext and applied only at commit (deferred state update,
// paper §4.2.3).
#include <sstream>

#include "runtime/kernel.h"
#include "runtime/run_context.h"
#include "tensor/ops.h"

namespace janus {

void RegisterStateKernels(KernelRegistry& r) {
  r.Register("ReadVariable", [](KernelContext& ctx) {
    ctx.set_output(0, ctx.run->ReadVariable(ctx.node->GetStringAttr("var")));
  });

  r.Register("AssignVariable", [](KernelContext& ctx) {
    ctx.run->StageVariable(ctx.node->GetStringAttr("var"), ctx.input(0));
    ctx.set_output(0, ctx.input(0));
  });

  // SGD parameter update: var <- var - lr * grad. inputs: grad, lr.
  r.Register("ApplySGD", [](KernelContext& ctx) {
    const std::string& var = ctx.node->GetStringAttr("var");
    const Tensor current = ctx.run->ReadVariable(var);
    const Tensor updated =
        ops::Sub(current, ops::Mul(ctx.input(1), ctx.input(0)));
    ctx.run->StageVariable(var, updated);
    ctx.set_output(0, updated);
  });

  // The runtime assumption check of JANUS (§3.2). Aborts graph execution by
  // throwing AssumptionFailed; because every state mutation is deferred,
  // aborting is safe at any point. Optional attribution: attr "assumed"
  // names what the generator speculated; the observed side comes from attr
  // "observed" or, preferably, from a second input carrying the live value
  // the predicate tested (rendered at failure time only).
  r.Register("Assert", [](KernelContext& ctx) {
    if (!ctx.input(0).ScalarBoolValue()) {
      const std::string& id = ctx.node->GetStringAttr("assumption");
      std::string assumed = ctx.node->HasAttr("assumed")
                                ? ctx.node->GetStringAttr("assumed")
                                : std::string();
      std::string observed = ctx.node->HasAttr("observed")
                                 ? ctx.node->GetStringAttr("observed")
                                 : std::string();
      if (observed.empty() && ctx.node->num_inputs() > 1) {
        observed = ctx.input(1).ToString();
      }
      throw AssumptionFailed(id,
                             ctx.node->HasAttr("message")
                                 ? ctx.node->GetStringAttr("message")
                                 : id,
                             std::move(assumed), std::move(observed));
    }
    ctx.set_output(0, ctx.input(0));
  });

  // Shape-assumption check (Fig. 4): verifies the input's shape against the
  // pinned dimensions in attr "dims" (-1 = wildcard). Passes the value
  // through on success; aborts the run on mismatch.
  r.Register("AssertShape", [](KernelContext& ctx) {
    const Tensor& value = ctx.input(0);
    const auto& dims = ctx.node->GetIntListAttr("dims");
    bool ok = value.rank() == static_cast<int>(dims.size());
    if (ok) {
      for (std::size_t i = 0; i < dims.size(); ++i) {
        if (dims[i] >= 0 && value.dim(static_cast<int>(i)) != dims[i]) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) {
      // Render the assumed shape in the Fig. 4 wildcard notation.
      std::string assumed = "shape [";
      for (std::size_t i = 0; i < dims.size(); ++i) {
        if (i > 0) assumed += ", ";
        assumed += dims[i] < 0 ? "?" : std::to_string(dims[i]);
      }
      assumed += "]";
      const std::string observed = "shape " + value.shape().ToString();
      throw AssumptionFailed(ctx.node->GetStringAttr("assumption"),
                             observed + " violates assumption " +
                                 ctx.node->GetStringAttr("assumption") +
                                 " (assumed " + assumed + ")",
                             std::move(assumed), observed);
    }
    ctx.set_output(0, value);
  });

  // Python attribute read (Fig. 5 ①/③): reads the run-local copy when one
  // exists, otherwise the host heap. input 0: object reference (int64).
  r.Register("PyGetAttr", [](KernelContext& ctx) {
    ctx.set_output(0, ctx.run->ReadAttr(ctx.input(0).ScalarIntValue(),
                                        ctx.node->GetStringAttr("attr")));
  });

  // Python attribute write (Fig. 5 ②): writes the run-local copy only.
  r.Register("PySetAttr", [](KernelContext& ctx) {
    ctx.run->StageAttr(ctx.input(0).ScalarIntValue(),
                       ctx.node->GetStringAttr("attr"), ctx.input(1));
    ctx.set_output(0, ctx.input(1));
  });

  // inputs: object reference, integer index.
  r.Register("PyGetSubscr", [](KernelContext& ctx) {
    ctx.set_output(0, ctx.run->ReadSubscr(ctx.input(0).ScalarIntValue(),
                                          ctx.input(1).ScalarIntValue()));
  });

  // inputs: object reference, integer index, value.
  r.Register("PySetSubscr", [](KernelContext& ctx) {
    ctx.run->StageSubscr(ctx.input(0).ScalarIntValue(),
                         ctx.input(1).ScalarIntValue(), ctx.input(2));
    ctx.set_output(0, ctx.input(2));
  });

  // Whitelisted builtin print(): buffered until commit so aborted runs
  // produce no output. Variadic inputs.
  r.Register("PyPrint", [](KernelContext& ctx) {
    std::ostringstream oss;
    for (std::size_t i = 0; i < ctx.inputs.size(); ++i) {
      if (i > 0) oss << ' ';
      const Tensor& t = ctx.inputs[i];
      if (t.rank() == 0) {
        oss << t.ElementAsDouble(0);
      } else {
        oss << t.ToString();
      }
    }
    ctx.run->StagePrint(oss.str());
    ctx.set_output(0, Tensor::ScalarInt(0));
  });

  r.Register("RandomNormal", [](KernelContext& ctx) {
    const Shape shape(ctx.node->GetIntListAttr("shape"));
    const auto mean = static_cast<float>(ctx.node->GetFloatAttr("mean"));
    const auto stddev = static_cast<float>(ctx.node->GetFloatAttr("stddev"));
    const std::lock_guard<std::mutex> lock(ctx.run->mu);
    ctx.set_output(0, ops::RandomNormal(shape, mean, stddev, *ctx.run->rng));
  });

  r.Register("RandomUniform", [](KernelContext& ctx) {
    const Shape shape(ctx.node->GetIntListAttr("shape"));
    const auto lo = static_cast<float>(ctx.node->GetFloatAttr("lo"));
    const auto hi = static_cast<float>(ctx.node->GetFloatAttr("hi"));
    const std::lock_guard<std::mutex> lock(ctx.run->mu);
    ctx.set_output(0, ops::RandomUniform(shape, lo, hi, *ctx.run->rng));
  });

  // Control-dependency anchor.
  r.Register("NoOp", [](KernelContext& ctx) {
    ctx.set_output(0, Tensor::ScalarInt(0));
  });
}

}  // namespace janus
