// Fusion pass + superop interpreter. See fusion.h for the design contract.
//
// Layout of this file:
//   1. Kill switch (JANUS_FUSION).
//   2. Fusable-op table and region formation (shared core over a strategy-
//      neutral candidate view, then DAG / dynamic rewrites).
//   3. Runtime specialization (FusedSpec): dtype/shape propagation that
//      mirrors the unfused kernels' checks exactly, block-kernel selection,
//      scratch layout, and the content-addressed FusedKernelCache.
//   4. Execution: block interpreter (fused path) and per-member fallback.
#include "runtime/fusion.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string_view>
#include <unordered_set>
#include <utility>

#include "cache/fused_kernel_cache.h"
#include "common/error.h"
#include "obs/trace.h"
#include "tensor/shape.h"

namespace janus {

namespace fusion {
namespace {

bool InitialEnabled() {
  const char* env = std::getenv("JANUS_FUSION");
  if (env == nullptr) return true;
  const std::string_view v(env);
  return !(v == "0" || v == "false" || v == "off");
}

std::atomic<bool> g_enabled{InitialEnabled()};

}  // namespace

bool GloballyEnabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetGloballyEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

}  // namespace fusion

namespace {

using DagInput = ExecutionPlan::DagInput;
using DagNode = ExecutionPlan::DagNode;
using DynEdge = ExecutionPlan::DynEdge;
using DynNode = ExecutionPlan::DynNode;
using OpKind = ExecutionPlan::OpKind;

// ---------------------------------------------------------------------------
// Fusable-op table.
// ---------------------------------------------------------------------------

struct OpEntry {
  FusedOp op;
  int arity;
  bool reduction;
};

const std::unordered_map<std::string_view, OpEntry>& FusableOps() {
  static const auto* table = new std::unordered_map<std::string_view, OpEntry>{
      {"Neg", {FusedOp::kNeg, 1, false}},
      {"Abs", {FusedOp::kAbs, 1, false}},
      {"Sign", {FusedOp::kSign, 1, false}},
      {"Exp", {FusedOp::kExp, 1, false}},
      {"Log", {FusedOp::kLog, 1, false}},
      {"Sqrt", {FusedOp::kSqrt, 1, false}},
      {"Square", {FusedOp::kSquare, 1, false}},
      {"Tanh", {FusedOp::kTanh, 1, false}},
      {"Sigmoid", {FusedOp::kSigmoid, 1, false}},
      {"Relu", {FusedOp::kRelu, 1, false}},
      {"LogicalNot", {FusedOp::kLogicalNot, 1, false}},
      {"Add", {FusedOp::kAdd, 2, false}},
      {"Sub", {FusedOp::kSub, 2, false}},
      {"Mul", {FusedOp::kMul, 2, false}},
      {"Div", {FusedOp::kDiv, 2, false}},
      {"FloorDiv", {FusedOp::kFloorDiv, 2, false}},
      {"Mod", {FusedOp::kMod, 2, false}},
      {"Pow", {FusedOp::kPow, 2, false}},
      {"Maximum", {FusedOp::kMaximum, 2, false}},
      {"Minimum", {FusedOp::kMinimum, 2, false}},
      {"ReluGrad", {FusedOp::kReluGrad, 2, false}},
      {"Equal", {FusedOp::kEqual, 2, false}},
      {"NotEqual", {FusedOp::kNotEqual, 2, false}},
      {"Less", {FusedOp::kLess, 2, false}},
      {"LessEqual", {FusedOp::kLessEqual, 2, false}},
      {"Greater", {FusedOp::kGreater, 2, false}},
      {"GreaterEqual", {FusedOp::kGreaterEqual, 2, false}},
      {"LogicalAnd", {FusedOp::kLogicalAnd, 2, false}},
      {"LogicalOr", {FusedOp::kLogicalOr, 2, false}},
      {"ReduceSum", {FusedOp::kReduceSum, 1, true}},
      {"ReduceMean", {FusedOp::kReduceMean, 1, true}},
  };
  return *table;
}

// ---------------------------------------------------------------------------
// Region formation over a strategy-neutral candidate view.
// ---------------------------------------------------------------------------

struct Candidate {
  const Node* node = nullptr;
  const KernelFn* kernel = nullptr;
  FusedOp op = FusedOp::kAdd;
  bool elementwise = false;  // fusable non-reduction; may be member or root
  bool reduction = false;    // fusable reduction; root only
  bool has_control = false;  // any control producer or consumer
  bool is_protected = false; // feeds a fetch slot
  std::span<const DagInput> inputs;
  std::vector<int> data_consumers;  // deduplicated dense indices
};

void ClassifyCandidate(Candidate& cand) {
  const Node* node = cand.node;
  const auto it = FusableOps().find(node->op());
  if (it == FusableOps().end()) return;
  const OpEntry& entry = it->second;
  if (node->num_outputs() != 1 || node->num_inputs() != entry.arity) return;
  if (entry.reduction &&
      (!node->HasAttr("axes") || !node->HasAttr("keep_dims"))) {
    return;
  }
  cand.op = entry.op;
  if (entry.reduction) {
    cand.reduction = true;
  } else {
    cand.elementwise = true;
  }
}

// Greedy maximal-region collection. Roots are claimed in reverse topological
// order (so the node nearest the sink anchors the longest chain) and regions
// grow producer-ward to a fixpoint: a producer joins only when it is fusable
// elementwise, unclaimed, not fetch-protected, free of control edges, and
// EVERY data consumer is already inside the region — interior values with
// outside consumers (or fetch protection) break regions, because interiors
// are never materialized. Roots are exempt from the consumer/protection
// rules: the region output is materialized exactly like the root's output
// was. Regions of fewer than two members are discarded.
std::vector<std::vector<int>> CollectRegions(
    const std::vector<Candidate>& cand) {
  const int n = static_cast<int>(cand.size());
  std::vector<std::vector<int>> regions;
  std::vector<char> claimed(cand.size(), 0);
  std::vector<char> in_region(cand.size(), 0);
  for (int root = n - 1; root >= 0; --root) {
    const auto ur = static_cast<std::size_t>(root);
    if (claimed[ur]) continue;
    if (!cand[ur].elementwise && !cand[ur].reduction) continue;
    std::vector<int> members{root};
    in_region[ur] = 1;
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t mi = 0; mi < members.size(); ++mi) {
        for (const DagInput& input :
             cand[static_cast<std::size_t>(members[mi])].inputs) {
          const auto up = static_cast<std::size_t>(input.producer);
          if (input.slot != 0 || in_region[up]) continue;
          const Candidate& pc = cand[up];
          if (!pc.elementwise || pc.has_control || pc.is_protected ||
              claimed[up]) {
            continue;
          }
          bool all_inside = true;
          for (const int consumer : pc.data_consumers) {
            if (!in_region[static_cast<std::size_t>(consumer)]) {
              all_inside = false;
              break;
            }
          }
          if (!all_inside) continue;
          in_region[up] = 1;
          members.push_back(input.producer);
          changed = true;
        }
      }
    }
    for (const int m : members) in_region[static_cast<std::size_t>(m)] = 0;
    if (members.size() < 2) continue;
    std::sort(members.begin(), members.end());
    for (const int m : members) claimed[static_cast<std::size_t>(m)] = 1;
    regions.push_back(std::move(members));
  }
  return regions;
}

struct RegionRewrite {
  std::shared_ptr<FusedRegionPlan> plan;
  std::vector<int> members;        // old dense indices, ascending (root last)
  std::vector<DagInput> externals; // old coordinates, in value-id order
  int root = -1;
};

// Builds the register program: external (producer, slot) pairs dedupe onto
// value ids [0, E) in discovery order, then each member defines E + ordinal.
RegionRewrite BuildRegionRewrite(const std::vector<int>& members,
                                 const std::vector<Candidate>& cand) {
  RegionRewrite rw;
  rw.members = members;
  rw.root = members.back();
  rw.plan = std::make_shared<FusedRegionPlan>();
  FusedRegionPlan& plan = *rw.plan;

  std::unordered_map<int, int> member_ordinal;
  for (std::size_t i = 0; i < members.size(); ++i) {
    member_ordinal[members[i]] = static_cast<int>(i);
  }
  std::map<std::pair<int, int>, int> external_ids;
  for (const int m : members) {
    for (const DagInput& input : cand[static_cast<std::size_t>(m)].inputs) {
      if (member_ordinal.find(input.producer) != member_ordinal.end()) continue;
      const auto key = std::make_pair(input.producer, input.slot);
      if (external_ids.find(key) == external_ids.end()) {
        external_ids[key] = static_cast<int>(rw.externals.size());
        rw.externals.push_back(input);
      }
    }
  }
  const int num_externals = static_cast<int>(rw.externals.size());
  plan.num_externals = num_externals;
  plan.num_values = num_externals + static_cast<int>(members.size());

  std::string signature;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const Candidate& c = cand[static_cast<std::size_t>(members[i])];
    FusedRegionPlan::Member member;
    member.node = c.node;
    member.kernel = c.kernel;
    member.op = c.op;
    member.value_id = num_externals + static_cast<int>(i);
    int* slots[2] = {&member.a, &member.b};
    int slot_index = 0;
    for (const DagInput& input : c.inputs) {
      int id;
      const auto mit = member_ordinal.find(input.producer);
      if (mit != member_ordinal.end()) {
        id = num_externals + mit->second;
      } else {
        id = external_ids.at(std::make_pair(input.producer, input.slot));
      }
      *slots[slot_index++] = id;
    }
    signature += c.node->op();
    signature += '(';
    signature += std::to_string(member.a);
    if (member.b >= 0) {
      signature += ',';
      signature += std::to_string(member.b);
    }
    signature += ')';
    if (c.reduction) {
      plan.has_reduction = true;
      member.axes = c.node->GetIntListAttr("axes");
      member.keep_dims = c.node->GetBoolAttr("keep_dims");
      signature += "[axes=";
      for (const std::int64_t axis : member.axes) {
        signature += std::to_string(axis);
        signature += ',';
      }
      signature += "kd=";
      signature += member.keep_dims ? '1' : '0';
      signature += ']';
    }
    signature += ';';
    plan.members.push_back(std::move(member));
  }
  plan.signature = std::move(signature);
  return rw;
}

}  // namespace

// ---------------------------------------------------------------------------
// DAG rewrite.
// ---------------------------------------------------------------------------

int FuseDagPlan(std::vector<DagNode>& nodes, std::vector<DagInput>& fetch_slots,
                std::unordered_map<const Node*, int>& dag_index,
                std::vector<std::shared_ptr<const FusedRegionPlan>>& regions) {
  const std::size_t n = nodes.size();
  std::vector<Candidate> cand(n);
  std::vector<std::unordered_set<int>> consumer_sets(n);
  for (std::size_t i = 0; i < n; ++i) {
    const DagNode& entry = nodes[i];
    cand[i].node = entry.node;
    cand[i].kernel = entry.kernel;
    cand[i].inputs = entry.inputs;
    cand[i].has_control = !entry.node->control_inputs().empty();
    if (entry.kind == OpKind::kKernel) ClassifyCandidate(cand[i]);
    for (const DagInput& input : entry.inputs) {
      consumer_sets[static_cast<std::size_t>(input.producer)].insert(
          static_cast<int>(i));
    }
    for (const Node* control : entry.node->control_inputs()) {
      const auto it = dag_index.find(control);
      if (it != dag_index.end()) {
        cand[static_cast<std::size_t>(it->second)].has_control = true;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    cand[i].data_consumers.assign(consumer_sets[i].begin(),
                                  consumer_sets[i].end());
  }
  for (const DagInput& fetch : fetch_slots) {
    cand[static_cast<std::size_t>(fetch.producer)].is_protected = true;
  }

  const std::vector<std::vector<int>> found = CollectRegions(cand);
  if (found.empty()) return 0;

  std::vector<RegionRewrite> rewrites;
  rewrites.reserve(found.size());
  std::vector<char> interior(n, 0);
  std::vector<int> region_of(n, -1);
  for (const std::vector<int>& members : found) {
    RegionRewrite rw = BuildRegionRewrite(members, cand);
    const int index = static_cast<int>(rewrites.size());
    for (const int m : members) {
      region_of[static_cast<std::size_t>(m)] = index;
      if (m != rw.root) interior[static_cast<std::size_t>(m)] = 1;
    }
    rewrites.push_back(std::move(rw));
  }

  std::vector<int> remap(n, -1);
  int next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!interior[i]) remap[i] = next++;
  }

  std::vector<DagNode> out;
  out.reserve(static_cast<std::size_t>(next));
  for (std::size_t i = 0; i < n; ++i) {
    if (interior[i]) continue;
    DagNode entry = std::move(nodes[i]);
    const int region = region_of[i];
    if (region >= 0 && static_cast<int>(i) == rewrites[region].root) {
      RegionRewrite& rw = rewrites[static_cast<std::size_t>(region)];
      entry.kind = OpKind::kFusedRegion;
      entry.kernel = nullptr;
      entry.fused = rw.plan.get();
      entry.inputs = rw.externals;
    }
    entry.consumers.clear();
    entry.initial_pending = 0;
    out.push_back(std::move(entry));
  }
  for (DagNode& entry : out) {
    for (DagInput& input : entry.inputs) {
      input.producer = remap[static_cast<std::size_t>(input.producer)];
    }
  }
  // Interior nodes resolve to their region's dense index (DagIndexOf).
  for (auto& [node, index] : dag_index) {
    const auto u = static_cast<std::size_t>(index);
    index = interior[u]
                ? remap[static_cast<std::size_t>(
                      rewrites[static_cast<std::size_t>(region_of[u])].root)]
                : remap[u];
  }
  // Rebuild dependency counts and consumer adjacency (mirrors BuildDag, but
  // over the rewritten inputs: a region's inputs are its externals, not the
  // root Node's graph inputs).
  for (std::size_t i = 0; i < out.size(); ++i) {
    DagNode& entry = out[i];
    std::unordered_set<int> producers;
    for (const DagInput& input : entry.inputs) producers.insert(input.producer);
    for (const Node* control : entry.node->control_inputs()) {
      producers.insert(dag_index.at(control));
    }
    entry.initial_pending = static_cast<int>(producers.size());
    for (const int producer : producers) {
      out[static_cast<std::size_t>(producer)].consumers.push_back(
          static_cast<int>(i));
    }
  }
  for (DagInput& slot : fetch_slots) {
    slot.producer = remap[static_cast<std::size_t>(slot.producer)];
  }
  nodes = std::move(out);
  for (RegionRewrite& rw : rewrites) regions.push_back(std::move(rw.plan));
  return static_cast<int>(rewrites.size());
}

// ---------------------------------------------------------------------------
// Dynamic (tagged-token) rewrite.
// ---------------------------------------------------------------------------

int FuseDynPlan(std::vector<DynNode>& nodes, std::vector<DagInput>& fetch_slots,
                std::vector<std::shared_ptr<const FusedRegionPlan>>& regions) {
  const std::size_t n = nodes.size();
  std::vector<Candidate> cand(n);
  std::vector<std::unordered_set<int>> consumer_sets(n);
  for (std::size_t i = 0; i < n; ++i) {
    const DynNode& entry = nodes[i];
    cand[i].node = entry.node;
    cand[i].kernel = entry.kernel;
    cand[i].inputs = entry.inputs;
    cand[i].has_control =
        !entry.control_producers.empty() || !entry.control_edges.empty();
    if (entry.kind == OpKind::kKernel && !entry.is_root_source) {
      ClassifyCandidate(cand[i]);
    }
    for (const auto& slot_edges : entry.out_edges) {
      for (const DynEdge& edge : slot_edges) {
        if (edge.input_slot >= 0) consumer_sets[i].insert(edge.consumer);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    cand[i].data_consumers.assign(consumer_sets[i].begin(),
                                  consumer_sets[i].end());
  }
  for (const DagInput& fetch : fetch_slots) {
    cand[static_cast<std::size_t>(fetch.producer)].is_protected = true;
  }

  const std::vector<std::vector<int>> found = CollectRegions(cand);
  if (found.empty()) return 0;

  std::vector<RegionRewrite> rewrites;
  std::vector<char> interior(n, 0);
  for (const std::vector<int>& members : found) {
    rewrites.push_back(BuildRegionRewrite(members, cand));
    for (const int m : members) {
      if (m != rewrites.back().root) interior[static_cast<std::size_t>(m)] = 1;
    }
  }

  // Rewire on the old arrays first: each external (producer, slot) loses its
  // edges into region members and gains exactly ONE edge into the region at
  // the external's value-id slot (token deduplication: a value consumed by k
  // members arrives once).
  for (const RegionRewrite& rw : rewrites) {
    std::unordered_set<int> member_set(rw.members.begin(), rw.members.end());
    for (std::size_t e = 0; e < rw.externals.size(); ++e) {
      const DagInput& ext = rw.externals[e];
      auto& edges = nodes[static_cast<std::size_t>(ext.producer)]
                        .out_edges[static_cast<std::size_t>(ext.slot)];
      std::erase_if(edges, [&](const DynEdge& edge) {
        return edge.input_slot >= 0 &&
               member_set.find(edge.consumer) != member_set.end();
      });
      edges.push_back({rw.root, static_cast<int>(e)});
    }
    DynNode& root_entry = nodes[static_cast<std::size_t>(rw.root)];
    root_entry.kind = OpKind::kFusedRegion;
    root_entry.kernel = nullptr;
    root_entry.fused = rw.plan.get();
    root_entry.inputs = rw.externals;
  }

  std::vector<int> remap(n, -1);
  int next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!interior[i]) remap[i] = next++;
  }
  std::vector<DynNode> out;
  out.reserve(static_cast<std::size_t>(next));
  for (std::size_t i = 0; i < n; ++i) {
    if (interior[i]) continue;
    DynNode entry = std::move(nodes[i]);
    for (DagInput& input : entry.inputs) {
      input.producer = remap[static_cast<std::size_t>(input.producer)];
    }
    for (int& producer : entry.control_producers) {
      producer = remap[static_cast<std::size_t>(producer)];
    }
    for (auto& slot_edges : entry.out_edges) {
      for (DynEdge& edge : slot_edges) {
        edge.consumer = remap[static_cast<std::size_t>(edge.consumer)];
      }
    }
    for (DynEdge& edge : entry.control_edges) {
      edge.consumer = remap[static_cast<std::size_t>(edge.consumer)];
    }
    out.push_back(std::move(entry));
  }
  for (DagInput& slot : fetch_slots) {
    slot.producer = remap[static_cast<std::size_t>(slot.producer)];
  }
  nodes = std::move(out);
  for (RegionRewrite& rw : rewrites) regions.push_back(std::move(rw.plan));
  return static_cast<int>(rewrites.size());
}

// ---------------------------------------------------------------------------
// Runtime specialization.
// ---------------------------------------------------------------------------

namespace internal {
struct BlockInstr {
  void (*fn)(char* const* vals, const BlockInstr& instr,
             std::int64_t count) = nullptr;
  int out = -1;
  int a = -1;
  int b = -1;
};
}  // namespace internal

// The specialized program: what the block interpreter executes. Shared via
// the FusedKernelCache across every region with the same content key, so it
// carries no Node pointers — only value wiring, block kernels, and layout.
struct FusedSpec {
  bool use_fallback = false;
  struct Ext {
    DType dtype = DType::kFloat32;
    Shape shape;
    std::size_t elem_size = 0;
    bool uniform = false;      // single element, splatted once per run
    std::size_t scratch = 0;   // splat area offset (uniform only)
  };
  std::vector<Ext> externals;
  std::vector<internal::BlockInstr> instrs;
  // Per value id: offset into the thread-local scratch arena, or kNoScratch
  // for values bound per block (full externals, the materialized root).
  std::vector<std::size_t> value_scratch;
  std::size_t scratch_bytes = 0;
  std::int64_t n = 0;  // iteration count (elements of the elementwise root)
  Shape iter_shape;
  int root_value = -1;  // elementwise root value id
  DType root_dtype = DType::kFloat32;
  std::size_t root_elem_size = 0;
  bool has_reduction = false;
  bool reduce_mean = false;
  Shape out_shape;  // == iter_shape unless has_reduction
  // Reduction epilogue replica of ops_linalg.cc ReduceImpl: full-rank output
  // strides (0 on reduced axes) + input dims, linear accumulation order.
  std::vector<std::int64_t> red_out_strides;
  std::vector<std::int64_t> red_in_dims;
  float mean_scale = 1.0f;

  static constexpr std::size_t kNoScratch =
      std::numeric_limits<std::size_t>::max();
};

namespace internal {
namespace {

constexpr std::int64_t kBlockElements = 1024;

// ---- block kernels: exact replicas of the ops_elementwise.cc lambdas ----

template <typename T, typename O, typename F>
void UnaryBlock(char* const* vals, const BlockInstr& instr,
                std::int64_t count) {
  const T* a = reinterpret_cast<const T*>(vals[instr.a]);
  O* o = reinterpret_cast<O*>(vals[instr.out]);
  for (std::int64_t i = 0; i < count; ++i) {
    o[i] = F::Apply(a[i]);
  }
}

template <typename T, typename O, typename F>
void BinaryBlock(char* const* vals, const BlockInstr& instr,
                 std::int64_t count) {
  const T* a = reinterpret_cast<const T*>(vals[instr.a]);
  const T* b = reinterpret_cast<const T*>(vals[instr.b]);
  O* o = reinterpret_cast<O*>(vals[instr.out]);
  for (std::int64_t i = 0; i < count; ++i) {
    o[i] = F::Apply(a[i], b[i]);
  }
}

struct FNeg {
  template <typename T>
  static T Apply(T x) {
    return -x;
  }
};
struct FAbs {
  static float Apply(float x) { return std::fabs(x); }
  static std::int64_t Apply(std::int64_t x) { return x < 0 ? -x : x; }
};
struct FSign {
  static float Apply(float x) {
    return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f);
  }
};
struct FExp {
  static float Apply(float x) { return std::exp(x); }
};
struct FLog {
  static float Apply(float x) { return std::log(x); }
};
struct FSqrt {
  static float Apply(float x) { return std::sqrt(x); }
};
struct FSquare {
  static float Apply(float x) { return x * x; }
};
struct FTanh {
  static float Apply(float x) { return std::tanh(x); }
};
struct FSigmoid {
  static float Apply(float x) { return 1.0f / (1.0f + std::exp(-x)); }
};
struct FRelu {
  static float Apply(float x) { return x > 0.0f ? x : 0.0f; }
};
struct FNot {
  static std::uint8_t Apply(std::uint8_t x) {
    return static_cast<std::uint8_t>(x != 0 ? 0 : 1);
  }
};
struct FAdd {
  template <typename T>
  static T Apply(T x, T y) {
    return x + y;
  }
};
struct FSub {
  template <typename T>
  static T Apply(T x, T y) {
    return x - y;
  }
};
struct FMul {
  template <typename T>
  static T Apply(T x, T y) {
    return x * y;
  }
};
struct FDiv {
  static float Apply(float x, float y) { return x / y; }
};
struct FFloorDiv {
  static float Apply(float x, float y) { return std::floor(x / y); }
};
struct FMod {
  static float Apply(float x, float y) { return x - y * std::floor(x / y); }
};
struct FPow {
  static float Apply(float x, float y) { return std::pow(x, y); }
  static std::int64_t Apply(std::int64_t x, std::int64_t y) {
    std::int64_t result = 1;
    for (std::int64_t i = 0; i < y; ++i) result *= x;
    return result;
  }
};
struct FMax {
  template <typename T>
  static T Apply(T x, T y) {
    return x > y ? x : y;
  }
};
struct FMin {
  template <typename T>
  static T Apply(T x, T y) {
    return x < y ? x : y;
  }
};
struct FReluGrad {
  static float Apply(float g, float x) { return x > 0.0f ? g : 0.0f; }
};
struct CEq {
  template <typename T>
  static bool Test(T x, T y) {
    return x == y;
  }
};
struct CNe {
  template <typename T>
  static bool Test(T x, T y) {
    return x != y;
  }
};
struct CLt {
  template <typename T>
  static bool Test(T x, T y) {
    return x < y;
  }
};
struct CLe {
  template <typename T>
  static bool Test(T x, T y) {
    return x <= y;
  }
};
struct CGt {
  template <typename T>
  static bool Test(T x, T y) {
    return x > y;
  }
};
struct CGe {
  template <typename T>
  static bool Test(T x, T y) {
    return x >= y;
  }
};
template <typename C>
struct FCmp {
  template <typename T>
  static std::uint8_t Apply(T x, T y) {
    return static_cast<std::uint8_t>(C::Test(x, y) ? 1 : 0);
  }
};
// Bool comparisons compare truthiness, as Compare<bool> does.
template <typename C>
struct FBoolCmp {
  static std::uint8_t Apply(std::uint8_t x, std::uint8_t y) {
    return static_cast<std::uint8_t>(C::Test(x != 0, y != 0) ? 1 : 0);
  }
};
struct FAnd {
  static std::uint8_t Apply(std::uint8_t x, std::uint8_t y) {
    return static_cast<std::uint8_t>((x != 0 && y != 0) ? 1 : 0);
  }
};
struct FOr {
  static std::uint8_t Apply(std::uint8_t x, std::uint8_t y) {
    return static_cast<std::uint8_t>((x != 0 || y != 0) ? 1 : 0);
  }
};

using BlockFn = void (*)(char* const*, const BlockInstr&, std::int64_t);

template <typename C>
BlockFn CompareFn(DType dtype) {
  switch (dtype) {
    case DType::kFloat32:
      return &BinaryBlock<float, std::uint8_t, FCmp<C>>;
    case DType::kInt64:
      return &BinaryBlock<std::int64_t, std::uint8_t, FCmp<C>>;
    case DType::kBool:
      return &BinaryBlock<std::uint8_t, std::uint8_t, FBoolCmp<C>>;
  }
  return nullptr;
}

// ---- dtype/shape propagation (mirrors the unfused kernels' checks) ----

struct ValueInfo {
  DType dtype = DType::kFloat32;
  Shape shape;
};

bool TryBroadcast(const Shape& a, const Shape& b, Shape* out) {
  try {
    *out = BroadcastShapes(a, b);
    return true;
  } catch (const Error&) {
    return false;
  }
}

// Replicates ops_linalg.cc NormalizeAxes (empty => all axes; negatives
// wrapped; sorted + deduplicated). Returns false on a bad axis, where the
// unfused kernel would throw.
bool NormalizeReduceAxes(const std::vector<std::int64_t>& raw, int rank,
                         std::vector<int>* out) {
  std::vector<int> axes;
  axes.reserve(raw.size());
  for (const std::int64_t v : raw) axes.push_back(static_cast<int>(v));
  if (axes.empty()) {
    axes.resize(static_cast<std::size_t>(rank));
    for (int i = 0; i < rank; ++i) axes[static_cast<std::size_t>(i)] = i;
    *out = std::move(axes);
    return true;
  }
  for (int& axis : axes) {
    if (axis < 0) axis += rank;
    if (axis < 0 || axis >= rank) return false;
  }
  std::sort(axes.begin(), axes.end());
  axes.erase(std::unique(axes.begin(), axes.end()), axes.end());
  *out = std::move(axes);
  return true;
}

// Fills `spec` for the region against the concrete external dtypes/shapes.
// Returns false when any member's dtype/shape combination cannot be executed
// bit-exactly (or would throw) in the block interpreter; the caller then
// marks the spec fallback-only and the per-member path reproduces the exact
// unfused behaviour, including errors.
bool PopulateSpec(const FusedRegionPlan& region, std::span<const Tensor> inputs,
                  FusedSpec& spec) {
  const int num_externals = region.num_externals;
  spec.externals.resize(static_cast<std::size_t>(num_externals));
  std::vector<ValueInfo> values(static_cast<std::size_t>(region.num_values));
  for (int i = 0; i < num_externals; ++i) {
    auto& ext = spec.externals[static_cast<std::size_t>(i)];
    ext.dtype = inputs[static_cast<std::size_t>(i)].dtype();
    ext.shape = inputs[static_cast<std::size_t>(i)].shape();
    ext.elem_size = DTypeSize(ext.dtype);
    values[static_cast<std::size_t>(i)] = {ext.dtype, ext.shape};
  }

  for (const FusedRegionPlan::Member& m : region.members) {
    const ValueInfo& a = values[static_cast<std::size_t>(m.a)];
    const ValueInfo* b =
        m.b >= 0 ? &values[static_cast<std::size_t>(m.b)] : nullptr;
    BlockInstr instr;
    instr.out = m.value_id;
    instr.a = m.a;
    instr.b = m.b;
    ValueInfo out;

    const auto float_unary = [&](BlockFn fn) {
      if (a.dtype != DType::kFloat32) return false;
      instr.fn = fn;
      out = {DType::kFloat32, a.shape};
      return true;
    };
    const auto numeric_binary = [&](BlockFn ffn, BlockFn ifn) {
      if (a.dtype != b->dtype || a.dtype == DType::kBool) return false;
      Shape shape;
      if (!TryBroadcast(a.shape, b->shape, &shape)) return false;
      instr.fn = a.dtype == DType::kFloat32 ? ffn : ifn;
      if (instr.fn == nullptr) return false;
      out = {a.dtype, shape};
      return true;
    };
    const auto compare_binary = [&](BlockFn fn) {
      if (a.dtype != b->dtype) return false;
      Shape shape;
      if (!TryBroadcast(a.shape, b->shape, &shape)) return false;
      instr.fn = fn;
      out = {DType::kBool, shape};
      return true;
    };

    bool ok = false;
    switch (m.op) {
      case FusedOp::kNeg:
        if (a.dtype == DType::kInt64) {
          instr.fn = &UnaryBlock<std::int64_t, std::int64_t, FNeg>;
          out = {DType::kInt64, a.shape};
          ok = true;
        } else {
          ok = float_unary(&UnaryBlock<float, float, FNeg>);
        }
        break;
      case FusedOp::kAbs:
        if (a.dtype == DType::kInt64) {
          instr.fn = &UnaryBlock<std::int64_t, std::int64_t, FAbs>;
          out = {DType::kInt64, a.shape};
          ok = true;
        } else {
          ok = float_unary(&UnaryBlock<float, float, FAbs>);
        }
        break;
      case FusedOp::kSign:
        ok = float_unary(&UnaryBlock<float, float, FSign>);
        break;
      case FusedOp::kExp:
        ok = float_unary(&UnaryBlock<float, float, FExp>);
        break;
      case FusedOp::kLog:
        ok = float_unary(&UnaryBlock<float, float, FLog>);
        break;
      case FusedOp::kSqrt:
        ok = float_unary(&UnaryBlock<float, float, FSqrt>);
        break;
      case FusedOp::kSquare:
        ok = float_unary(&UnaryBlock<float, float, FSquare>);
        break;
      case FusedOp::kTanh:
        ok = float_unary(&UnaryBlock<float, float, FTanh>);
        break;
      case FusedOp::kSigmoid:
        ok = float_unary(&UnaryBlock<float, float, FSigmoid>);
        break;
      case FusedOp::kRelu:
        ok = float_unary(&UnaryBlock<float, float, FRelu>);
        break;
      case FusedOp::kLogicalNot:
        if (a.dtype != DType::kBool) break;
        instr.fn = &UnaryBlock<std::uint8_t, std::uint8_t, FNot>;
        out = {DType::kBool, a.shape};
        ok = true;
        break;
      case FusedOp::kAdd:
        ok = numeric_binary(&BinaryBlock<float, float, FAdd>,
                            &BinaryBlock<std::int64_t, std::int64_t, FAdd>);
        break;
      case FusedOp::kSub:
        ok = numeric_binary(&BinaryBlock<float, float, FSub>,
                            &BinaryBlock<std::int64_t, std::int64_t, FSub>);
        break;
      case FusedOp::kMul:
        ok = numeric_binary(&BinaryBlock<float, float, FMul>,
                            &BinaryBlock<std::int64_t, std::int64_t, FMul>);
        break;
      case FusedOp::kDiv:
        // int64 Div promotes to float through Cast in the unfused kernel;
        // fall back so the promotion chain stays bit-identical.
        ok = numeric_binary(&BinaryBlock<float, float, FDiv>, nullptr);
        break;
      case FusedOp::kFloorDiv:
        // Integer FloorDiv/Mod can throw division-by-zero mid-tensor; the
        // fallback keeps error attribution at the exact member node.
        ok = numeric_binary(&BinaryBlock<float, float, FFloorDiv>, nullptr);
        break;
      case FusedOp::kMod:
        ok = numeric_binary(&BinaryBlock<float, float, FMod>, nullptr);
        break;
      case FusedOp::kPow:
        ok = numeric_binary(&BinaryBlock<float, float, FPow>,
                            &BinaryBlock<std::int64_t, std::int64_t, FPow>);
        break;
      case FusedOp::kMaximum:
        ok = numeric_binary(&BinaryBlock<float, float, FMax>,
                            &BinaryBlock<std::int64_t, std::int64_t, FMax>);
        break;
      case FusedOp::kMinimum:
        ok = numeric_binary(&BinaryBlock<float, float, FMin>,
                            &BinaryBlock<std::int64_t, std::int64_t, FMin>);
        break;
      case FusedOp::kReluGrad:
        if (a.dtype != DType::kFloat32 || b->dtype != DType::kFloat32) break;
        if (a.shape != b->shape) break;  // unfused kernel throws
        instr.fn = &BinaryBlock<float, float, FReluGrad>;
        out = {DType::kFloat32, a.shape};
        ok = true;
        break;
      case FusedOp::kEqual:
        ok = compare_binary(CompareFn<CEq>(a.dtype));
        break;
      case FusedOp::kNotEqual:
        ok = compare_binary(CompareFn<CNe>(a.dtype));
        break;
      case FusedOp::kLess:
        ok = compare_binary(CompareFn<CLt>(a.dtype));
        break;
      case FusedOp::kLessEqual:
        ok = compare_binary(CompareFn<CLe>(a.dtype));
        break;
      case FusedOp::kGreater:
        ok = compare_binary(CompareFn<CGt>(a.dtype));
        break;
      case FusedOp::kGreaterEqual:
        ok = compare_binary(CompareFn<CGe>(a.dtype));
        break;
      case FusedOp::kLogicalAnd:
      case FusedOp::kLogicalOr:
        // Non-bool operands hit a dtype-mismatch error in the unfused kernel;
        // reproduce through the fallback.
        if (a.dtype != DType::kBool || b->dtype != DType::kBool) break;
        {
          Shape shape;
          if (!TryBroadcast(a.shape, b->shape, &shape)) break;
          instr.fn = m.op == FusedOp::kLogicalAnd
                         ? &BinaryBlock<std::uint8_t, std::uint8_t, FAnd>
                         : &BinaryBlock<std::uint8_t, std::uint8_t, FOr>;
          out = {DType::kBool, shape};
          ok = true;
        }
        break;
      case FusedOp::kReduceSum:
      case FusedOp::kReduceMean: {
        if (a.dtype != DType::kFloat32) return false;
        std::vector<int> axes;
        if (!NormalizeReduceAxes(m.axes, a.shape.rank(), &axes)) return false;
        spec.has_reduction = true;
        spec.reduce_mean = m.op == FusedOp::kReduceMean;
        spec.iter_shape = a.shape;
        spec.root_value = m.a;
        spec.root_dtype = DType::kFloat32;
        // ReducedShape replica.
        std::vector<std::int64_t> out_dims;
        for (int i = 0; i < a.shape.rank(); ++i) {
          const bool reduced = std::binary_search(axes.begin(), axes.end(), i);
          if (reduced) {
            if (m.keep_dims) out_dims.push_back(1);
          } else {
            out_dims.push_back(a.shape.dim(i));
          }
        }
        spec.out_shape = Shape(std::move(out_dims));
        // Full-rank output strides with 0 on reduced axes (ReduceImpl).
        const int rank = a.shape.rank();
        spec.red_in_dims = a.shape.dims();
        spec.red_out_strides.assign(static_cast<std::size_t>(rank), 0);
        std::int64_t stride = 1;
        for (int i = rank - 1; i >= 0; --i) {
          const auto u = static_cast<std::size_t>(i);
          if (std::binary_search(axes.begin(), axes.end(), i)) {
            spec.red_out_strides[u] = 0;
          } else {
            spec.red_out_strides[u] = stride;
            stride *= spec.red_in_dims[u];
          }
        }
        std::int64_t count = 1;
        for (const int axis : axes) count *= a.shape.dim(axis);
        spec.mean_scale = 1.0f / static_cast<float>(count);
        values[static_cast<std::size_t>(m.value_id)] = {DType::kFloat32,
                                                        spec.out_shape};
        continue;  // epilogue, not a block instruction
      }
    }
    if (!ok || instr.fn == nullptr) return false;
    values[static_cast<std::size_t>(m.value_id)] = out;
    spec.instrs.push_back(instr);
  }

  if (!spec.has_reduction) {
    spec.root_value = region.members.back().value_id;
    const ValueInfo& root = values[static_cast<std::size_t>(spec.root_value)];
    spec.iter_shape = root.shape;
    spec.out_shape = root.shape;
    spec.root_dtype = root.dtype;
  }
  spec.root_elem_size = DTypeSize(spec.root_dtype);
  spec.n = spec.iter_shape.num_elements();

  // External classification: full (element count == iteration count, which
  // with broadcast-compatible shapes implies an identity linear layout) or
  // uniform (single element, splatted). Anything else — a genuine partial
  // broadcast like (8,1) against (8,8) — is not same-index iterable.
  for (int i = 0; i < num_externals; ++i) {
    auto& ext = spec.externals[static_cast<std::size_t>(i)];
    const std::int64_t count = ext.shape.num_elements();
    if (count == spec.n) {
      ext.uniform = false;
    } else if (count == 1) {
      ext.uniform = true;
    } else {
      return false;
    }
  }
  // Interior values must also be same-index iterable: a partial-broadcast
  // interior (count != n and != 1) cannot live in block scratch. Uniform
  // interiors are simply computed block-wide from splatted operands, which
  // preserves per-element bit-exactness.
  for (const FusedRegionPlan::Member& m : region.members) {
    if (spec.has_reduction && m.value_id == region.members.back().value_id) {
      continue;  // reduction epilogue value is the region output itself
    }
    const std::int64_t count =
        values[static_cast<std::size_t>(m.value_id)].shape.num_elements();
    if (count != spec.n && count != 1) return false;
  }

  // Scratch layout: 64-byte-aligned slabs for uniform-external splats and
  // every interior value; the materialized root (non-reduction) writes the
  // output tensor directly and full externals bind per block.
  spec.value_scratch.assign(static_cast<std::size_t>(region.num_values),
                            FusedSpec::kNoScratch);
  std::size_t offset = 0;
  const auto allocate = [&offset](std::size_t bytes) {
    const std::size_t at = offset;
    offset += (bytes + 63) & ~static_cast<std::size_t>(63);
    return at;
  };
  for (int i = 0; i < num_externals; ++i) {
    auto& ext = spec.externals[static_cast<std::size_t>(i)];
    if (!ext.uniform) continue;
    ext.scratch = allocate(static_cast<std::size_t>(kBlockElements) *
                           ext.elem_size);
    spec.value_scratch[static_cast<std::size_t>(i)] = ext.scratch;
  }
  for (const FusedRegionPlan::Member& m : region.members) {
    if (spec.has_reduction && m.value_id == region.members.back().value_id) {
      continue;
    }
    if (!spec.has_reduction && m.value_id == spec.root_value) continue;
    const DType dtype = values[static_cast<std::size_t>(m.value_id)].dtype;
    spec.value_scratch[static_cast<std::size_t>(m.value_id)] =
        allocate(static_cast<std::size_t>(kBlockElements) * DTypeSize(dtype));
  }
  spec.scratch_bytes = offset;
  return true;
}

// ---- spec cache ----

bool SpecMatches(const FusedSpec& spec, std::span<const Tensor> inputs) {
  if (spec.externals.size() != inputs.size()) return false;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (spec.externals[i].dtype != inputs[i].dtype() ||
        spec.externals[i].shape != inputs[i].shape()) {
      return false;
    }
  }
  return true;
}

std::string SpecKey(const FusedRegionPlan& region,
                    std::span<const Tensor> inputs) {
  std::string key = region.signature;
  key += '|';
  for (const Tensor& t : inputs) {
    key += DTypeName(t.dtype());
    key += t.shape().ToString();
    key += ',';
  }
  return key;
}

std::shared_ptr<const FusedSpec> GetSpec(const FusedRegionPlan& region,
                                         std::span<const Tensor> inputs) {
  {
    const MutexLock lock(region.memo_mu);
    if (region.memo != nullptr && SpecMatches(*region.memo, inputs)) {
      return region.memo;
    }
  }
  // Memo miss: the region is running its first shape, or the graph was
  // despecialized and the runtime shapes changed. Share programs through the
  // process-wide content-addressed cache.
  const std::string key = SpecKey(region, inputs);
  auto& cache = cache::FusedKernelCache::Global();
  std::shared_ptr<const FusedSpec> spec =
      std::static_pointer_cast<const FusedSpec>(cache.Find(key));
  if (spec == nullptr) {
    auto built = std::make_shared<FusedSpec>();
    if (!PopulateSpec(region, inputs, *built)) built->use_fallback = true;
    spec = std::move(built);
    cache.Insert(key, spec);
  }
  {
    const MutexLock lock(region.memo_mu);
    region.memo = spec;
  }
  return spec;
}

// ---- execution helpers ----

const char* RawData(const Tensor& t) {
  switch (t.dtype()) {
    case DType::kFloat32:
      return reinterpret_cast<const char*>(t.data<float>().data());
    case DType::kInt64:
      return reinterpret_cast<const char*>(t.data<std::int64_t>().data());
    case DType::kBool:
      return reinterpret_cast<const char*>(t.data<std::uint8_t>().data());
  }
  return nullptr;
}

char* RawMutable(Tensor& t) {
  switch (t.dtype()) {
    case DType::kFloat32:
      return reinterpret_cast<char*>(t.mutable_data<float>().data());
    case DType::kInt64:
      return reinterpret_cast<char*>(t.mutable_data<std::int64_t>().data());
    case DType::kBool:
      return reinterpret_cast<char*>(t.mutable_data<std::uint8_t>().data());
  }
  return nullptr;
}

void SplatUniform(const Tensor& t, char* dst) {
  switch (t.dtype()) {
    case DType::kFloat32:
      std::fill_n(reinterpret_cast<float*>(dst), kBlockElements,
                  t.data<float>()[0]);
      break;
    case DType::kInt64:
      std::fill_n(reinterpret_cast<std::int64_t*>(dst), kBlockElements,
                  t.data<std::int64_t>()[0]);
      break;
    case DType::kBool:
      std::fill_n(reinterpret_cast<std::uint8_t*>(dst), kBlockElements,
                  t.data<std::uint8_t>()[0]);
      break;
  }
}

// ReduceImpl's accumulation, restricted to the linear index window
// [base, base + count): identical combine order, identical index mapping.
void AccumulateReduction(const FusedSpec& spec, float* out, const float* block,
                         std::int64_t base, std::int64_t count) {
  const int rank = static_cast<int>(spec.red_in_dims.size());
  for (std::int64_t k = 0; k < count; ++k) {
    std::int64_t rem = base + k;
    std::int64_t out_idx = 0;
    for (int axis = rank - 1; axis >= 0; --axis) {
      const auto u = static_cast<std::size_t>(axis);
      const std::int64_t coord = rem % spec.red_in_dims[u];
      rem /= spec.red_in_dims[u];
      out_idx += coord * spec.red_out_strides[u];
    }
    float& slot = out[static_cast<std::size_t>(out_idx)];
    slot = slot + block[k];
  }
}

// Per-member fallback: executes every member through its resolved kernel
// over a local value table — identical dispatch, identical error annotation,
// identical precomputed-output (eager tape) semantics as unfused execution.
void RunFallback(RunContext& run, const FusedRegionPlan& region,
                 std::span<const Tensor> inputs, std::vector<Tensor>& outputs,
                 const Precomputed* precomputed) {
  std::vector<Tensor> table(static_cast<std::size_t>(region.num_values));
  for (int i = 0; i < region.num_externals; ++i) {
    table[static_cast<std::size_t>(i)] = inputs[static_cast<std::size_t>(i)];
  }
  for (const FusedRegionPlan::Member& m : region.members) {
    if (precomputed != nullptr) {
      const auto it = precomputed->find(m.node);
      if (it != precomputed->end()) {
        table[static_cast<std::size_t>(m.value_id)] = it->second.at(0);
        continue;
      }
    }
    std::vector<Tensor> operands;
    operands.reserve(2);
    operands.push_back(table[static_cast<std::size_t>(m.a)]);
    if (m.b >= 0) operands.push_back(table[static_cast<std::size_t>(m.b)]);
    std::vector<Tensor> outs;
    ExecuteKernel(run, *m.node, *m.kernel, operands, outs,
                  /*allow_in_place=*/false);
    table[static_cast<std::size_t>(m.value_id)] = std::move(outs.at(0));
  }
  outputs.assign(
      1, std::move(table[static_cast<std::size_t>(
             region.members.back().value_id)]));
}

}  // namespace

void ExecuteFusedRegion(RunContext& run, const FusedRegionPlan& region,
                        std::span<const Tensor> inputs,
                        std::vector<Tensor>& outputs, bool allow_in_place,
                        const Precomputed* precomputed) {
  if (precomputed != nullptr && !precomputed->empty()) {
    for (const FusedRegionPlan::Member& m : region.members) {
      if (precomputed->find(m.node) != precomputed->end()) {
        RunFallback(run, region, inputs, outputs, precomputed);
        return;
      }
    }
  }
  const std::shared_ptr<const FusedSpec> spec = GetSpec(region, inputs);
  if (spec->use_fallback) {
    RunFallback(run, region, inputs, outputs, nullptr);
    return;
  }

  if (run.dispatch_penalty_ns > 0) {
    // One region = one dispatch under the calibrated imperative stand-in.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::nanoseconds(run.dispatch_penalty_ns);
    while (std::chrono::steady_clock::now() < deadline) {
    }
  }
  const bool sampled = obs::ShouldSampleKernel();
  const std::int64_t start_ns = sampled ? obs::Trace::NowNs() : 0;

  // Region output. Non-reduction regions may steal a dying full external's
  // buffer: block b's writes land only on indices every instruction has
  // already consumed (instructions run whole-block, the root runs last), so
  // the same-index safety argument of per-op in-place reuse carries over.
  Tensor out;
  {
    const InPlaceScope scope(allow_in_place && !spec->has_reduction);
    if (spec->has_reduction) {
      out = Tensor::Full(spec->out_shape, 0.0f);  // ReduceImpl's init
    } else {
      std::vector<const Tensor*> candidates;
      candidates.reserve(inputs.size());
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        if (!spec->externals[i].uniform) candidates.push_back(&inputs[i]);
      }
      out = Tensor::OutputBuffer(candidates, spec->root_dtype,
                                 spec->out_shape);
    }
  }

  thread_local std::vector<char> scratch;
  if (scratch.size() < spec->scratch_bytes) scratch.resize(spec->scratch_bytes);
  char* const scratch_base = scratch.data();

  std::vector<char*> vals(static_cast<std::size_t>(region.num_values),
                          nullptr);
  struct FullExt {
    int value;
    const char* base;
    std::size_t elem_size;
  };
  std::vector<FullExt> fulls;
  fulls.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto& ext = spec->externals[i];
    if (ext.uniform) {
      char* dst = scratch_base + ext.scratch;
      SplatUniform(inputs[i], dst);
      vals[i] = dst;
    } else {
      fulls.push_back({static_cast<int>(i), RawData(inputs[i]),
                       ext.elem_size});
    }
  }
  for (int v = region.num_externals; v < region.num_values; ++v) {
    const std::size_t at = spec->value_scratch[static_cast<std::size_t>(v)];
    if (at != FusedSpec::kNoScratch) vals[static_cast<std::size_t>(v)] =
        scratch_base + at;
  }

  char* const out_base = RawMutable(out);
  float* const red_out =
      spec->has_reduction ? reinterpret_cast<float*>(out_base) : nullptr;
  const std::int64_t n = spec->n;
  for (std::int64_t base = 0; base < n; base += kBlockElements) {
    const std::int64_t count = std::min<std::int64_t>(kBlockElements, n - base);
    for (const FullExt& full : fulls) {
      vals[static_cast<std::size_t>(full.value)] = const_cast<char*>(
          full.base + static_cast<std::size_t>(base) * full.elem_size);
    }
    if (!spec->has_reduction) {
      vals[static_cast<std::size_t>(spec->root_value)] =
          out_base + static_cast<std::size_t>(base) * spec->root_elem_size;
    }
    for (const BlockInstr& instr : spec->instrs) {
      instr.fn(vals.data(), instr, count);
    }
    if (spec->has_reduction) {
      AccumulateReduction(
          *spec, red_out,
          reinterpret_cast<const float*>(
              vals[static_cast<std::size_t>(spec->root_value)]),
          base, count);
    }
  }
  if (spec->reduce_mean) {
    // ReduceMean = Mul(sum, 1/count): same expression, same rounding.
    const std::int64_t out_n = spec->out_shape.num_elements();
    for (std::int64_t i = 0; i < out_n; ++i) {
      red_out[static_cast<std::size_t>(i)] =
          red_out[static_cast<std::size_t>(i)] * spec->mean_scale;
    }
  }

  outputs.assign(1, std::move(out));
  if (sampled) {
    obs::RecordKernelSample("fused", "kernel", start_ns,
                            obs::Trace::NowNs() - start_ns);
  }
  const auto member_count =
      static_cast<std::int64_t>(region.members.size());
  run.ops_executed.fetch_add(member_count, std::memory_order_relaxed);
  run.fused_regions.fetch_add(1, std::memory_order_relaxed);
  run.fused_ops.fetch_add(member_count, std::memory_order_relaxed);
}

}  // namespace internal
}  // namespace janus
