// The symbolic graph executor.
//
// Scheduling is compiled once per graph into an ExecutionPlan
// (runtime/plan.h); Run dispatches a prebuilt plan with zero per-run
// schedule construction. Two strategies, picked at plan-build time:
//  * DAG path (dag_executor.cc): graphs without control-flow primitives
//    execute over precompiled dependency counts, optionally fanning ready
//    ops out to a thread pool (the +PARL knob of Fig. 7).
//  * Dynamic path (dynamic_executor.cc): graphs containing Switch/Merge/
//    Enter/Exit/NextIteration execute with tagged tokens carrying
//    (frame, iteration) context and dead-value propagation, the classic
//    dataflow machinery of TF 1.x that the paper builds on (§4.2.1).
//
// Nested executions (InvokeOp function calls, While bodies) run inline on
// the calling thread and share the caller's RunContext, so staged state and
// tapes have run-wide scope and thread-pool deadlock is impossible. Each
// function body's plan is cached on its own Graph (and pre-built at
// generation time by CompiledGraph), so nested calls never replan.
#ifndef JANUS_RUNTIME_EXECUTOR_H_
#define JANUS_RUNTIME_EXECUTOR_H_

#include <map>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "obs/profile.h"
#include "runtime/kernel.h"
#include "runtime/plan.h"
#include "runtime/run_context.h"

namespace janus {

struct ExecutorOptions {
  // Parallel scheduling for DAG graphs. Requires `pool`.
  bool parallel = false;
  ThreadPool* pool = nullptr;
};

// Per-run observability, filled from the RunContext after a run. The
// allocator counters are deltas of the process-wide BufferPool statistics
// over the run, attributing pool traffic to the run that caused it.
struct RunMetrics {
  std::int64_t ops_executed = 0;
  std::int64_t plan_builds = 0;
  std::int64_t plan_cache_hits = 0;
  std::int64_t bytes_allocated = 0;
  std::int64_t pool_hits = 0;
  std::int64_t pool_misses = 0;
  std::int64_t in_place_reuses = 0;
  std::int64_t buffers_released = 0;  // dead intermediates dropped mid-run
  // Fused-region dispatch: regions executed through the superop interpreter
  // and the member ops they covered (also counted in ops_executed).
  std::int64_t fused_regions = 0;
  std::int64_t fused_ops = 0;
};

class Executor {
 public:
  Executor(const FunctionLibrary* library, VariableStore* variables,
           StateInterface* host_state, Rng* rng,
           ExecutorOptions options = {});

  // Runs `graph`, feeding placeholders by name and returning the fetched
  // values in order. The graph's plan is taken from its plan cache (built on
  // first use). On success commits all staged state; on any exception
  // (including AssumptionFailed) nothing is committed.
  std::vector<Tensor> Run(const Graph& graph,
                          const std::map<std::string, Tensor>& feeds,
                          std::span<const NodeOutput> fetches);

  // As Run, but also reports the number of op kernels executed.
  std::vector<Tensor> Run(const Graph& graph,
                          const std::map<std::string, Tensor>& feeds,
                          std::span<const NodeOutput> fetches,
                          std::int64_t* ops_executed);

  // As Run, with full metrics (kernel count + plan cache accounting).
  std::vector<Tensor> Run(const Graph& graph,
                          const std::map<std::string, Tensor>& feeds,
                          std::span<const NodeOutput> fetches,
                          RunMetrics* metrics);

  // Runs a prebuilt plan directly: the pure dispatch hot path. No plan
  // cache is consulted and no scheduling state is derived.
  std::vector<Tensor> Run(const ExecutionPlan& plan,
                          const std::map<std::string, Tensor>& feeds,
                          RunMetrics* metrics = nullptr);

  // Executes a library function with the given arguments inside an ongoing
  // run, reusing the function graph's cached plan. Used by the Invoke and
  // While kernels; never commits.
  static std::vector<Tensor> RunFunction(RunContext& run,
                                         const GraphFunction& fn,
                                         std::span<const Tensor> args);

  // True if the graph uses any dataflow control-flow primitive and therefore
  // needs the dynamic (tagged-token) strategy.
  static bool NeedsDynamicExecution(const Graph& graph);

 private:
  std::vector<Tensor> RunPlan(const ExecutionPlan& plan,
                              const std::map<std::string, Tensor>& feeds,
                              RunContext& run);

  const FunctionLibrary* library_;
  VariableStore* variables_;
  StateInterface* host_state_;
  Rng* rng_;
  ExecutorOptions options_;
};

namespace internal {

// Binds function parameters for nested runs: Param nodes resolve through
// this map, Placeholders through RunContext::feeds.
using Bindings = std::map<const Node*, Tensor>;

// Optional per-node precomputed outputs: nodes present in this map are not
// re-executed; their recorded outputs are used directly. The eager tape uses
// this to run gradient subgraphs without recomputing the forward pass.
using Precomputed = std::map<const Node*, std::vector<Tensor>>;

// RAII sampled-time recorder for one plan-node execution, shared by both
// strategies. Destructor-based so every exit path of a node body
// (precomputed shortcut, source kinds, control-flow `continue`s, kernel
// dispatch) is covered. Construct with armed = ShouldSampleProfileNode().
struct ProfRecord {
  obs::PlanProfile* profile;
  int index;
  std::int64_t start_ns;
  bool armed;
  ~ProfRecord() {
    if (armed && profile != nullptr) {
      profile->Record(index, obs::Trace::NowNs() - start_ns);
    }
  }
};

// Shared by both strategy implementations (defined in executor.cc).
Tensor ResolveSource(RunContext& run, ExecutionPlan::OpKind kind,
                     const Node& node, const Bindings& bindings);
void ExecuteKernel(RunContext& run, const Node& node, const KernelFn& kernel,
                   std::span<const Tensor> inputs,
                   std::vector<Tensor>& outputs, bool allow_in_place = false);

// Strategy implementations. Fetches come from the plan.
std::vector<Tensor> ExecuteDag(RunContext& run, const ExecutionPlan& plan,
                               const Bindings& bindings, bool parallel,
                               const Precomputed* precomputed = nullptr);

std::vector<Tensor> ExecuteDynamic(RunContext& run, const ExecutionPlan& plan,
                                   const Bindings& bindings);

}  // namespace internal
}  // namespace janus

#endif  // JANUS_RUNTIME_EXECUTOR_H_
