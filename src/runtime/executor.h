// The symbolic graph executor.
//
// Two scheduling strategies, picked per graph:
//  * DAG path: graphs without control-flow primitives execute over a
//    precomputed dependency count, optionally fanning ready ops out to a
//    thread pool (the +PARL knob of Fig. 7).
//  * Dynamic path: graphs containing Switch/Merge/Enter/Exit/NextIteration
//    execute with tagged tokens carrying (frame, iteration) context and
//    dead-value propagation, the classic dataflow machinery of TF 1.x that
//    the paper builds on (§4.2.1).
//
// Nested executions (InvokeOp function calls, While bodies) run inline on
// the calling thread and share the caller's RunContext, so staged state and
// tapes have run-wide scope and thread-pool deadlock is impossible.
#ifndef JANUS_RUNTIME_EXECUTOR_H_
#define JANUS_RUNTIME_EXECUTOR_H_

#include <map>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "runtime/kernel.h"
#include "runtime/run_context.h"

namespace janus {

struct ExecutorOptions {
  // Parallel scheduling for DAG graphs. Requires `pool`.
  bool parallel = false;
  ThreadPool* pool = nullptr;
};

class Executor {
 public:
  Executor(const FunctionLibrary* library, VariableStore* variables,
           StateInterface* host_state, Rng* rng,
           ExecutorOptions options = {});

  // Runs `graph`, feeding placeholders by name and returning the fetched
  // values in order. On success commits all staged state; on any exception
  // (including AssumptionFailed) nothing is committed.
  std::vector<Tensor> Run(const Graph& graph,
                          const std::map<std::string, Tensor>& feeds,
                          std::span<const NodeOutput> fetches);

  // As Run, but also reports the number of op kernels executed.
  std::vector<Tensor> Run(const Graph& graph,
                          const std::map<std::string, Tensor>& feeds,
                          std::span<const NodeOutput> fetches,
                          std::int64_t* ops_executed);

  // Executes a library function with the given arguments inside an ongoing
  // run. Used by the Invoke and While kernels; never commits.
  static std::vector<Tensor> RunFunction(RunContext& run,
                                         const GraphFunction& fn,
                                         std::span<const Tensor> args);

  // True if the graph uses any dataflow control-flow primitive and therefore
  // needs the dynamic (tagged-token) executor.
  static bool NeedsDynamicExecution(const Graph& graph);

 private:
  const FunctionLibrary* library_;
  VariableStore* variables_;
  StateInterface* host_state_;
  Rng* rng_;
  ExecutorOptions options_;
};

namespace internal {

// Binds function parameters for nested runs: Param nodes resolve through
// this map, Placeholders through RunContext::feeds.
using Bindings = std::map<const Node*, Tensor>;

// Optional per-node precomputed outputs: nodes present in this map are not
// re-executed; their recorded outputs are used directly. The eager tape uses
// this to run gradient subgraphs without recomputing the forward pass.
using Precomputed = std::map<const Node*, std::vector<Tensor>>;

std::vector<Tensor> ExecuteDag(RunContext& run, const Graph& graph,
                               const Bindings& bindings,
                               std::span<const NodeOutput> fetches,
                               bool parallel,
                               const Precomputed* precomputed = nullptr);

std::vector<Tensor> ExecuteDynamic(RunContext& run, const Graph& graph,
                                   const Bindings& bindings,
                                   std::span<const NodeOutput> fetches);

}  // namespace internal
}  // namespace janus

#endif  // JANUS_RUNTIME_EXECUTOR_H_
