#include "runtime/run_context.h"

#include <iostream>

namespace janus {

bool VariableStore::Contains(const std::string& name) const {
  return variables_.find(name) != variables_.end();
}

const Tensor& VariableStore::Read(const std::string& name) const {
  const auto it = variables_.find(name);
  if (it == variables_.end()) {
    throw InvalidArgument("unknown variable '" + name + "'");
  }
  return it->second;
}

void VariableStore::Assign(const std::string& name, Tensor value) {
  variables_[name] = std::move(value);
}

std::vector<std::string> VariableStore::Names() const {
  std::vector<std::string> names;
  names.reserve(variables_.size());
  for (const auto& [name, value] : variables_) names.push_back(name);
  return names;
}

Tensor RunContext::ReadVariable(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu);
  const auto it = staged_vars_.find(name);
  if (it != staged_vars_.end()) return it->second;
  if (variables == nullptr) {
    throw InternalError("graph reads variables but no VariableStore given");
  }
  return variables->Read(name);
}

void RunContext::StageVariable(const std::string& name, Tensor value) {
  const std::lock_guard<std::mutex> lock(mu);
  staged_vars_[name] = std::move(value);
}

Tensor RunContext::ReadAttr(std::int64_t object_id, const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu);
  const auto it = staged_attrs_.find({object_id, name});
  if (it != staged_attrs_.end()) return it->second;
  if (host_state == nullptr) {
    throw InternalError("graph reads host state but no StateInterface given");
  }
  return host_state->GetAttr(object_id, name);
}

void RunContext::StageAttr(std::int64_t object_id, const std::string& name,
                           Tensor value) {
  const std::lock_guard<std::mutex> lock(mu);
  staged_attrs_[{object_id, name}] = std::move(value);
}

Tensor RunContext::ReadSubscr(std::int64_t object_id, std::int64_t index) {
  const std::lock_guard<std::mutex> lock(mu);
  const auto it = staged_subscrs_.find({object_id, index});
  if (it != staged_subscrs_.end()) return it->second;
  if (host_state == nullptr) {
    throw InternalError("graph reads host state but no StateInterface given");
  }
  return host_state->GetSubscr(object_id, index);
}

void RunContext::StageSubscr(std::int64_t object_id, std::int64_t index,
                             Tensor value) {
  const std::lock_guard<std::mutex> lock(mu);
  staged_subscrs_[{object_id, index}] = std::move(value);
}

void RunContext::StagePrint(std::string line) {
  const std::lock_guard<std::mutex> lock(mu);
  staged_prints_.push_back(std::move(line));
}

void RunContext::Commit() {
  const std::lock_guard<std::mutex> lock(mu);
  for (auto& [name, value] : staged_vars_) {
    variables->Assign(name, std::move(value));
  }
  staged_vars_.clear();
  for (auto& [key, value] : staged_attrs_) {
    host_state->SetAttr(key.first, key.second, value);
  }
  staged_attrs_.clear();
  for (auto& [key, value] : staged_subscrs_) {
    host_state->SetSubscr(key.first, key.second, value);
  }
  staged_subscrs_.clear();
  for (const std::string& line : staged_prints_) {
    std::cout << line << '\n';
  }
  staged_prints_.clear();
}

void RunContext::StoreTape(int node_id,
                           std::vector<std::vector<Tensor>> iterations) {
  const std::lock_guard<std::mutex> lock(mu);
  tapes_[node_id] = std::move(iterations);
}

std::vector<std::vector<Tensor>> RunContext::TakeTape(int node_id) {
  const std::lock_guard<std::mutex> lock(mu);
  const auto it = tapes_.find(node_id);
  if (it == tapes_.end()) {
    throw InternalError("no tape recorded for node " + std::to_string(node_id));
  }
  auto tape = std::move(it->second);
  tapes_.erase(it);
  return tape;
}

}  // namespace janus
