#include "runtime/memory_plan.h"

#include <unordered_set>

#include "runtime/fusion.h"
#include "runtime/plan.h"

namespace janus {

bool OpSupportsInPlace(std::string_view op) {
  // Same-index elementwise ops only. Binary entries are still gated at run
  // time: the executor's InPlaceScope plus OutputBuffer's byte-size and
  // uniqueness checks reject broadcast operands (different byte size) and
  // shared buffers, and kernels themselves fall back to fresh allocation on
  // shape mismatch.
  static const std::unordered_set<std::string_view> kInPlaceOps = {
      "Add",        "Sub",       "Mul",        "Div",      "FloorDiv",
      "Mod",        "Pow",       "Maximum",    "Minimum",  "Neg",
      "Abs",        "Sign",      "Exp",        "Log",      "Sqrt",
      "Square",     "Tanh",      "Sigmoid",    "Relu",     "ReluGrad",
      "LogicalAnd", "LogicalOr", "LogicalNot", "Equal",    "NotEqual",
      "Less",       "LessEqual", "Greater",    "GreaterEqual",
  };
  return kInPlaceOps.find(op) != kInPlaceOps.end();
}

MemoryPlan BuildMemoryPlan(const ExecutionPlan& plan) {
  MemoryPlan mem;
  if (plan.strategy() == ExecutionPlan::Strategy::kDag) {
    const auto& nodes = plan.dag_nodes();
    mem.dag.resize(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const ExecutionPlan::DagNode& node = nodes[i];
      // Fused-region interiors are never materialized, so only the region
      // output participates in liveness; a non-reduction region is same-index
      // elementwise end to end and may overwrite a dying input.
      mem.dag[i].in_place_capable =
          (node.kind == ExecutionPlan::OpKind::kKernel &&
           OpSupportsInPlace(node.node->op())) ||
          (node.kind == ExecutionPlan::OpKind::kFusedRegion &&
           node.fused != nullptr && !node.fused->has_reduction);
      for (const ExecutionPlan::DagInput& input : node.inputs) {
        ++mem.dag[static_cast<std::size_t>(input.producer)].output_reads;
      }
    }
    for (const ExecutionPlan::DagInput& slot : plan.dag_fetch_slots()) {
      mem.dag[static_cast<std::size_t>(slot.producer)].fetch_protected = true;
    }
  } else {
    const auto& nodes = plan.dyn_nodes();
    mem.dyn_in_place.resize(nodes.size(), 0);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const ExecutionPlan::DynNode& node = nodes[i];
      mem.dyn_in_place[i] =
          (node.kind == ExecutionPlan::OpKind::kKernel &&
           OpSupportsInPlace(node.node->op())) ||
                  (node.kind == ExecutionPlan::OpKind::kFusedRegion &&
                   node.fused != nullptr && !node.fused->has_reduction)
              ? 1
              : 0;
    }
  }
  return mem;
}

}  // namespace janus
