// Kernels for elementwise math, comparisons, linear algebra, and reductions.
#include "runtime/kernel.h"
#include "runtime/run_context.h"
#include "tensor/ops.h"

namespace janus {
namespace {

void RegisterBinary(KernelRegistry& r, const std::string& name,
                    Tensor (*fn)(const Tensor&, const Tensor&)) {
  r.Register(name, [fn](KernelContext& ctx) {
    ctx.set_output(0, fn(ctx.input(0), ctx.input(1)));
  });
}

void RegisterUnary(KernelRegistry& r, const std::string& name,
                   Tensor (*fn)(const Tensor&)) {
  r.Register(name, [fn](KernelContext& ctx) {
    ctx.set_output(0, fn(ctx.input(0)));
  });
}

std::vector<int> IntListToAxes(const std::vector<std::int64_t>& list) {
  std::vector<int> axes;
  axes.reserve(list.size());
  for (const std::int64_t v : list) axes.push_back(static_cast<int>(v));
  return axes;
}

void RegisterReduction(KernelRegistry& r, const std::string& name,
                       Tensor (*fn)(const Tensor&, std::vector<int>, bool)) {
  r.Register(name, [fn](KernelContext& ctx) {
    const auto axes = IntListToAxes(ctx.node->GetIntListAttr("axes"));
    const bool keep_dims = ctx.node->GetBoolAttr("keep_dims");
    ctx.set_output(0, fn(ctx.input(0), axes, keep_dims));
  });
}

}  // namespace

void RegisterMathKernels(KernelRegistry& r) {
  RegisterBinary(r, "Add", ops::Add);
  RegisterBinary(r, "Sub", ops::Sub);
  RegisterBinary(r, "Mul", ops::Mul);
  RegisterBinary(r, "Div", ops::Div);
  RegisterBinary(r, "FloorDiv", ops::FloorDiv);
  RegisterBinary(r, "Mod", ops::Mod);
  RegisterBinary(r, "Pow", ops::Pow);
  RegisterBinary(r, "Maximum", ops::Maximum);
  RegisterBinary(r, "Minimum", ops::Minimum);
  RegisterBinary(r, "Equal", ops::Equal);
  RegisterBinary(r, "NotEqual", ops::NotEqual);
  RegisterBinary(r, "Less", ops::Less);
  RegisterBinary(r, "LessEqual", ops::LessEqual);
  RegisterBinary(r, "Greater", ops::Greater);
  RegisterBinary(r, "GreaterEqual", ops::GreaterEqual);
  RegisterBinary(r, "LogicalAnd", ops::LogicalAnd);
  RegisterBinary(r, "LogicalOr", ops::LogicalOr);
  RegisterBinary(r, "MatMul", ops::MatMul);

  RegisterUnary(r, "LogicalNot", ops::LogicalNot);
  RegisterUnary(r, "Neg", ops::Neg);
  RegisterUnary(r, "Abs", ops::Abs);
  RegisterUnary(r, "Sign", ops::Sign);
  RegisterUnary(r, "Exp", ops::Exp);
  RegisterUnary(r, "Log", ops::Log);
  RegisterUnary(r, "Sqrt", ops::Sqrt);
  RegisterUnary(r, "Square", ops::Square);
  RegisterUnary(r, "Tanh", ops::Tanh);
  RegisterUnary(r, "Sigmoid", ops::Sigmoid);
  RegisterUnary(r, "Relu", ops::Relu);
  RegisterUnary(r, "Transpose", ops::Transpose);
  RegisterUnary(r, "Softmax", ops::Softmax);
  RegisterUnary(r, "LogSoftmax", ops::LogSoftmax);

  r.Register("ReluGrad", [](KernelContext& ctx) {
    ctx.set_output(0, ops::ReluGrad(ctx.input(0), ctx.input(1)));
  });

  RegisterReduction(r, "ReduceSum", ops::ReduceSum);
  RegisterReduction(r, "ReduceMean", ops::ReduceMean);
  RegisterReduction(r, "ReduceMax", ops::ReduceMax);

  r.Register("ArgMax", [](KernelContext& ctx) {
    ctx.set_output(
        0, ops::ArgMax(ctx.input(0),
                       static_cast<int>(ctx.node->GetIntAttr("axis"))));
  });

  r.Register("Select", [](KernelContext& ctx) {
    ctx.set_output(0, ops::Select(ctx.input(0), ctx.input(1), ctx.input(2)));
  });

  // Variadic sum, used by autodiff to accumulate gradients.
  r.Register("AddN", [](KernelContext& ctx) {
    JANUS_EXPECTS(!ctx.inputs.empty());
    Tensor acc = ctx.input(0);
    for (std::size_t i = 1; i < ctx.inputs.size(); ++i) {
      acc = ops::Add(acc, ctx.inputs[i]);
    }
    ctx.set_output(0, std::move(acc));
  });

  // Gradient helper: reduces a gradient back to a broadcast operand's shape.
  // The target shape is carried by the second input (shape exemplar).
  r.Register("ReduceToShapeOf", [](KernelContext& ctx) {
    ctx.set_output(0, ops::ReduceToShape(ctx.input(0), ctx.input(1).shape()));
  });

  r.Register("ZerosLike", [](KernelContext& ctx) {
    ctx.set_output(0, Tensor::Zeros(ctx.input(0).dtype(), ctx.input(0).shape()));
  });
  r.Register("OnesLike", [](KernelContext& ctx) {
    const Tensor& in = ctx.input(0);
    if (in.dtype() == DType::kFloat32) {
      ctx.set_output(0, Tensor::Full(in.shape(), 1.0f));
    } else {
      ctx.set_output(0, Tensor::FullInt(in.shape(), 1));
    }
  });
}

}  // namespace janus
