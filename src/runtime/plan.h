// Compile-once execution plans.
//
// An ExecutionPlan is the immutable, per-graph compiled schedule that moves
// every piece of per-run scheduling work out of the dispatch hot path:
// strategy selection (DAG vs tagged-token dynamic), the fetch-reachable node
// set, dense node indices, initial dependency counts, consumer adjacency,
// resolved KernelFn pointers, pre-classified op kinds (no string compares at
// run time), and fetch slots. A plan is built once per (graph, fetches) and
// reused across every subsequent Executor::Run / nested RunFunction call —
// the compile-once/run-many split the paper's amortization argument (§3.1,
// Fig. 2) relies on, mirroring how TensorFlow caches a compiled executor per
// graph.
//
// Plans are cached in the owning Graph's ExecCache (so every Graph,
// including each GraphFunction body, carries its own plan) and additionally
// pinned by CompiledGraph, which pre-builds plans for the main graph and
// every library function at generation time.
#ifndef JANUS_RUNTIME_PLAN_H_
#define JANUS_RUNTIME_PLAN_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "runtime/kernel.h"
#include "runtime/memory_plan.h"

namespace janus {

class RunContext;
struct FusedRegionPlan;

namespace obs {
class PlanProfile;
}  // namespace obs

namespace verify {
class PlanCorruptor;
}  // namespace verify

// Per-build knobs. `enable_fusion` is ANDed with the process-wide
// fusion::GloballyEnabled() switch (JANUS_FUSION).
struct PlanOptions {
  bool enable_fusion = true;
};

class ExecutionPlan {
 public:
  enum class Strategy : std::uint8_t { kDag, kDynamic };

  // Node classification resolved at plan-build time so the run loop never
  // compares op-name strings or consults the kernel registry.
  enum class OpKind : std::uint8_t {
    kConst,
    kPlaceholder,
    kParam,
    kSwitch,
    kMerge,
    kEnter,
    kExit,
    kNextIteration,
    kKernel,
    // A fused elementwise region (runtime/fusion.h): one plan node standing
    // in for a chain/tree of kernels, executed with a single dispatch.
    kFusedRegion,
  };

  // ---- DAG schedule (graphs without control-flow primitives) ----

  // An input coordinate in dense plan indices: output `slot` of the node at
  // dense index `producer`.
  struct DagInput {
    int producer = 0;
    int slot = 0;
  };

  struct DagNode {
    const Node* node = nullptr;
    OpKind kind = OpKind::kKernel;
    const KernelFn* kernel = nullptr;  // resolved iff kind == kKernel
    Tensor const_value;                // valid iff kind == kConst
    const FusedRegionPlan* fused = nullptr;  // valid iff kind == kFusedRegion
    int initial_pending = 0;
    std::vector<DagInput> inputs;  // data inputs, in slot order
    std::vector<int> consumers;    // dense indices, deduplicated
  };

  // ---- Dynamic schedule (tagged-token graphs) ----

  // A delivery target: input slot `input_slot` (or -1 for a control edge) of
  // the node at dense index `consumer`.
  struct DynEdge {
    int consumer = 0;
    int input_slot = -1;
  };

  struct DynNode {
    const Node* node = nullptr;
    OpKind kind = OpKind::kKernel;
    const KernelFn* kernel = nullptr;  // resolved iff kind == kKernel
    const FusedRegionPlan* fused = nullptr;  // valid iff kind == kFusedRegion
    // Producer coordinate of each input slot, and the dense index of each
    // control-input producer.
    std::vector<DagInput> inputs;
    std::vector<int> control_producers;
    // Consumers per output slot, and control-edge consumers (fired off
    // output 0, as in the seed executor).
    std::vector<std::vector<DynEdge>> out_edges;
    std::vector<DynEdge> control_edges;
    // Enter attributes, resolved at build time.
    std::string frame;
    bool is_constant_enter = false;
    // True for nodes evaluated once per run before token flow starts:
    // sources, plus input-less stateful nodes with no control inputs.
    bool is_root_source = false;
  };

  // Builds a plan from scratch, bypassing the cache (exposed for the
  // plan-build microbenchmark and for tests that compare fresh vs cached
  // planning). Throws InvalidArgument if a non-control-flow op has no
  // registered kernel.
  static std::shared_ptr<const ExecutionPlan> Build(
      const Graph& graph, std::span<const NodeOutput> fetches,
      PlanOptions options = {});

  Strategy strategy() const { return strategy_; }
  std::span<const NodeOutput> fetches() const { return fetches_; }
  std::uint64_t graph_version() const { return graph_version_; }

  // DAG accessors.
  const std::vector<DagNode>& dag_nodes() const { return dag_nodes_; }
  const std::vector<DagInput>& dag_fetch_slots() const {
    return dag_fetch_slots_;
  }
  // Dense index of a node, or -1 if the node is not part of the plan. Only
  // needed by the precomputed-outputs path of the eager tape.
  int DagIndexOf(const Node* node) const;

  // The full node -> dense-index map (fused-region interiors resolve to
  // their region's index). Exposed for the plan verifier's bijectivity and
  // coverage checks (src/verify); executors use DagIndexOf.
  const std::unordered_map<const Node*, int>& dag_index_map() const {
    return dag_index_;
  }

  // Dynamic accessors.
  const std::vector<DynNode>& dyn_nodes() const { return dyn_nodes_; }
  const std::vector<DagInput>& dyn_fetch_slots() const {
    return dyn_fetch_slots_;
  }

  // Liveness + in-place analysis, computed once at plan-build time.
  const MemoryPlan& memory() const { return memory_; }

  // Fused regions owned by this plan (referenced by kFusedRegion nodes).
  const std::vector<std::shared_ptr<const FusedRegionPlan>>& fused_regions()
      const {
    return fused_regions_;
  }

  // Per-node cost accumulator for the source-attributed profiler
  // (obs/profile.h), sized to the plan's dense node array and registered
  // with the global ProfileRegistry at build. Executors record into it
  // when profiling is enabled; never null after Build.
  obs::PlanProfile* profile() const { return profile_.get(); }

 private:
  // The seeded-corruption harness (src/verify/corruption.h) mutates plan
  // internals to prove the verifier catches each class of damage.
  friend class verify::PlanCorruptor;

  ExecutionPlan() = default;

  void BuildDag(const Graph& graph);
  void BuildDynamic(const Graph& graph);

  Strategy strategy_ = Strategy::kDag;
  std::vector<NodeOutput> fetches_;
  std::uint64_t graph_version_ = 0;

  std::vector<DagNode> dag_nodes_;
  std::vector<DagInput> dag_fetch_slots_;
  std::unordered_map<const Node*, int> dag_index_;

  std::vector<DynNode> dyn_nodes_;
  std::vector<DagInput> dyn_fetch_slots_;

  std::vector<std::shared_ptr<const FusedRegionPlan>> fused_regions_;

  MemoryPlan memory_;

  std::shared_ptr<obs::PlanProfile> profile_;
};

// True if the graph uses any dataflow control-flow primitive and therefore
// needs the dynamic (tagged-token) strategy.
bool GraphNeedsDynamicExecution(const Graph& graph);

// Post-build verification hook. When set, ExecutionPlan::Build invokes it
// on every finished plan (after fusion and memory planning); the hook may
// throw to reject the plan. Installed process-wide by
// verify::InstallPlanVerifier() — a function pointer (not std::function)
// so the runtime layer carries no dependency on src/verify and the
// disabled path is one relaxed atomic load.
using PlanVerifyHookFn = void (*)(const Graph& graph,
                                  const ExecutionPlan& plan);
void SetPlanVerifyHook(PlanVerifyHookFn hook);
PlanVerifyHookFn GetPlanVerifyHook();

// Returns the plan for (graph, fetches) from the graph's plan cache,
// building and inserting it on first use. When `run` is non-null, a build
// bumps run->plan_builds and a hit bumps run->plan_cache_hits. Thread-safe.
std::shared_ptr<const ExecutionPlan> GetOrBuildPlan(
    const Graph& graph, std::span<const NodeOutput> fetches,
    RunContext* run = nullptr, PlanOptions options = {});

}  // namespace janus

#endif  // JANUS_RUNTIME_PLAN_H_
