// Gradient-helper kernels whose semantics depend on runtime shapes: since
// the graph IR carries no static shape inference, backward rules pass the
// forward tensors as shape exemplars and these kernels resolve the geometry
// at execution time.
#include "runtime/kernel.h"
#include "runtime/run_context.h"
#include "tensor/ops.h"

namespace janus {
namespace {

std::vector<int> NormalizedAxes(const std::vector<std::int64_t>& raw,
                                int rank) {
  std::vector<int> axes;
  if (raw.empty()) {
    for (int i = 0; i < rank; ++i) axes.push_back(i);
    return axes;
  }
  for (const std::int64_t a : raw) {
    int axis = static_cast<int>(a);
    if (axis < 0) axis += rank;
    axes.push_back(axis);
  }
  return axes;
}

}  // namespace

void RegisterGradKernels(KernelRegistry& r) {
  // Expands a reduced gradient back to the shape of the reduction input.
  //   inputs: grad (shape of ReduceX output), exemplar (the reduction input)
  //   attrs: axes (the reduction axes; empty = all), keep_dims (of the
  //          forward reduction), mean (divide by reduced element count, for
  //          ReduceMean's gradient)
  r.Register("BroadcastLike", [](KernelContext& ctx) {
    const Tensor& grad = ctx.input(0);
    const Tensor& exemplar = ctx.input(1);
    const auto axes =
        NormalizedAxes(ctx.node->GetIntListAttr("axes"), exemplar.rank());
    const bool keep_dims = ctx.node->GetBoolAttr("keep_dims");
    Tensor g = grad;
    if (!keep_dims) {
      // Reinsert the reduced axes as size-1 dims.
      std::vector<std::int64_t> dims = exemplar.shape().dims();
      for (const int axis : axes) dims[static_cast<std::size_t>(axis)] = 1;
      g = g.Reshaped(Shape(std::move(dims)));
    }
    Tensor out = ops::BroadcastTo(g, exemplar.shape());
    if (ctx.node->HasAttr("mean") && ctx.node->GetBoolAttr("mean")) {
      std::int64_t count = 1;
      for (const int axis : axes) count *= exemplar.dim(axis);
      out = ops::Mul(out, Tensor::Scalar(1.0f / static_cast<float>(count)));
    }
    ctx.set_output(0, std::move(out));
  });

  // Scatters a slice gradient back into zeros of the input's shape.
  //   inputs: grad (slice-shaped), exemplar (the sliced input)
  //   attrs: begin
  r.Register("SliceGrad", [](KernelContext& ctx) {
    const Tensor& grad = ctx.input(0);
    const Tensor& exemplar = ctx.input(1);
    const auto& begin = ctx.node->GetIntListAttr("begin");
    Tensor out = Tensor::Zeros(DType::kFloat32, exemplar.shape());
    const auto out_strides = exemplar.shape().Strides();
    auto ov = out.mutable_data<float>();
    const auto gv = grad.data<float>();
    const std::int64_t n = grad.num_elements();
    for (std::int64_t i = 0; i < n; ++i) {
      std::int64_t rem = i;
      std::int64_t dst = 0;
      for (int axis = grad.rank() - 1; axis >= 0; --axis) {
        const auto u = static_cast<std::size_t>(axis);
        const std::int64_t coord = rem % grad.dim(axis);
        rem /= grad.dim(axis);
        dst += (coord + begin[u]) * out_strides[u];
      }
      ov[static_cast<std::size_t>(dst)] = gv[static_cast<std::size_t>(i)];
    }
    ctx.set_output(0, std::move(out));
  });

  // Splits a Concat gradient into per-input gradients.
  //   inputs: grad, then the original concat inputs (exemplars)
  //   attrs: axis; num_outputs == number of exemplars
  r.Register("ConcatGrad", [](KernelContext& ctx) {
    const Tensor& grad = ctx.input(0);
    int axis = static_cast<int>(ctx.node->GetIntAttr("axis"));
    if (axis < 0) axis += grad.rank();
    std::int64_t offset = 0;
    for (std::size_t i = 1; i < ctx.inputs.size(); ++i) {
      const Tensor& exemplar = ctx.inputs[i];
      std::vector<std::int64_t> begin(
          static_cast<std::size_t>(grad.rank()), 0);
      begin[static_cast<std::size_t>(axis)] = offset;
      std::vector<std::int64_t> size = exemplar.shape().dims();
      ctx.set_output(static_cast<int>(i - 1),
                     ops::Slice(grad, begin, size));
      offset += exemplar.dim(axis);
    }
  });

  // Scatter-add of Gather's gradient into a zero tensor shaped like params.
  //   inputs: params (exemplar), ids, grad
  r.Register("GatherGradLike", [](KernelContext& ctx) {
    ctx.set_output(0, ops::GatherGrad(ctx.input(0).shape(), ctx.input(1),
                                      ctx.input(2)));
  });

  // tensor[i] along axis 0 with a runtime index. inputs: tensor, index
  // (int64 scalar). Output drops the leading axis.
  r.Register("DynamicIndex", [](KernelContext& ctx) {
    const Tensor& t = ctx.input(0);
    std::int64_t i = ctx.input(1).ScalarIntValue();
    if (t.rank() < 1) throw InvalidArgument("DynamicIndex: scalar input");
    if (i < 0) i += t.dim(0);
    if (i < 0 || i >= t.dim(0)) {
      throw InvalidArgument("DynamicIndex: index out of range");
    }
    std::vector<std::int64_t> begin(static_cast<std::size_t>(t.rank()), 0);
    begin[0] = i;
    std::vector<std::int64_t> size = t.shape().dims();
    size[0] = 1;
    std::vector<std::int64_t> out_dims(t.shape().dims().begin() + 1,
                                       t.shape().dims().end());
    ctx.set_output(0, ops::Slice(t, begin, size).Reshaped(Shape(out_dims)));
  });

  // Gradient of DynamicIndex: scatter grad into zeros at the index.
  // inputs: exemplar tensor, index, grad.
  r.Register("DynamicIndexGrad", [](KernelContext& ctx) {
    const Tensor& exemplar = ctx.input(0);
    std::int64_t i = ctx.input(1).ScalarIntValue();
    if (i < 0) i += exemplar.dim(0);
    const Tensor& grad = ctx.input(2);
    Tensor out = Tensor::Zeros(DType::kFloat32, exemplar.shape());
    auto ov = out.mutable_data<float>();
    const auto gv = grad.data<float>();
    const std::int64_t stride = exemplar.num_elements() / exemplar.dim(0);
    for (std::int64_t j = 0; j < stride; ++j) {
      ov[static_cast<std::size_t>(i * stride + j)] =
          gv[static_cast<std::size_t>(j)];
    }
    ctx.set_output(0, std::move(out));
  });

  // Casts input 0 to the dtype of input 1 (gradient of Cast).
  r.Register("CastLike", [](KernelContext& ctx) {
    ctx.set_output(0, ops::Cast(ctx.input(0), ctx.input(1).dtype()));
  });

  // d(SoftmaxCrossEntropy)/d(logits) = (softmax(logits) - onehot(labels))
  // scaled per batch row by the incoming per-example loss gradient.
  //   inputs: logits (batch, classes), labels (batch) int64, grad (batch)
  r.Register("SoftmaxCrossEntropyGrad", [](KernelContext& ctx) {
    const Tensor& logits = ctx.input(0);
    const Tensor& labels = ctx.input(1);
    const Tensor& grad = ctx.input(2);
    const Tensor sm = ops::Softmax(logits);
    const Tensor oh = ops::OneHot(labels, logits.dim(1));
    const Tensor delta = ops::Sub(sm, oh);
    const Tensor grad_col = grad.Reshaped(Shape{grad.dim(0), 1});
    ctx.set_output(0, ops::Mul(delta, grad_col));
  });
}

}  // namespace janus
