// Function-valued kernels: Invoke (recursive function calls, Jeong et al.
// EuroSys'18), functional While with tape recording, and WhileGrad (the
// stack-based loop gradient, mirroring how TF differentiates dynamic loops).
#include "runtime/executor.h"
#include "runtime/kernel.h"
#include "runtime/run_context.h"
#include "tensor/ops.h"

namespace janus {
namespace {

const GraphFunction& LookupFn(const RunContext& run, const Node& node,
                              std::string_view attr) {
  if (run.library == nullptr) {
    throw InternalError("graph invokes functions but no library given");
  }
  return run.library->Lookup(node.GetStringAttr(attr));
}

}  // namespace

void RegisterFunctionalKernels(KernelRegistry& r) {
  // Invoke: calls a library function with this node's inputs; the node has
  // one output per function result. Supports recursion: each activation is
  // an independent nested execution.
  r.Register("Invoke", [](KernelContext& ctx) {
    const GraphFunction& fn = LookupFn(*ctx.run, *ctx.node, "function");
    std::vector<Tensor> results =
        Executor::RunFunction(*ctx.run, fn, ctx.inputs);
    if (static_cast<int>(results.size()) != ctx.node->num_outputs()) {
      throw InternalError("Invoke '" + fn.name + "': result count mismatch");
    }
    for (std::size_t i = 0; i < results.size(); ++i) {
      ctx.set_output(static_cast<int>(i), std::move(results[i]));
    }
  });

  // Functional while loop.
  //   attrs: cond_fn, body_fn, num_carried (N), record_tape (bool)
  //   inputs: N carried initial values, then K loop-invariant captures
  //   cond_fn/body_fn signatures: (carried..., captures...) -> bool /
  //                                                          -> carried...
  //   outputs: N final carried values.
  // With record_tape, the carried values at the start of every iteration are
  // stored in the RunContext keyed by this node's id, for WhileGrad.
  r.Register("While", [](KernelContext& ctx) {
    const GraphFunction& cond = LookupFn(*ctx.run, *ctx.node, "cond_fn");
    const GraphFunction& body = LookupFn(*ctx.run, *ctx.node, "body_fn");
    const auto num_carried =
        static_cast<std::size_t>(ctx.node->GetIntAttr("num_carried"));
    const bool record = ctx.node->HasAttr("record_tape") &&
                        ctx.node->GetBoolAttr("record_tape");
    JANUS_EXPECTS(ctx.inputs.size() >= num_carried);
    std::vector<Tensor> carried(ctx.inputs.begin(),
                                ctx.inputs.begin() +
                                    static_cast<std::ptrdiff_t>(num_carried));
    const std::vector<Tensor> captures(
        ctx.inputs.begin() + static_cast<std::ptrdiff_t>(num_carried),
        ctx.inputs.end());

    std::vector<std::vector<Tensor>> tape;
    const auto with_captures = [&](const std::vector<Tensor>& c) {
      std::vector<Tensor> args = c;
      args.insert(args.end(), captures.begin(), captures.end());
      return args;
    };
    for (;;) {
      const std::vector<Tensor> cond_out =
          Executor::RunFunction(*ctx.run, cond, with_captures(carried));
      JANUS_EXPECTS(cond_out.size() == 1);
      if (!cond_out[0].ScalarBoolValue()) break;
      if (record) tape.push_back(carried);
      std::vector<Tensor> next =
          Executor::RunFunction(*ctx.run, body, with_captures(carried));
      if (next.size() != num_carried) {
        throw InternalError("While body '" + body.name +
                            "': carried count mismatch");
      }
      carried = std::move(next);
    }
    if (record) ctx.run->StoreTape(ctx.node->id(), std::move(tape));
    for (std::size_t i = 0; i < num_carried; ++i) {
      ctx.set_output(static_cast<int>(i), carried[i]);
    }
  });

  // Gradient of a functional While.
  //   attrs: body_grad_fn, forward_id (node id of the forward While),
  //          num_carried (N), num_captures (K)
  //   inputs: N gradients of the While outputs, then the K captures
  //   body_grad_fn signature:
  //     (carried..., captures..., grad_carried_out...) ->
  //     (grad_carried_in..., grad_captures...)
  //   outputs: N gradients w.r.t. the initial carried values, then K
  //   accumulated gradients w.r.t. the captures.
  r.Register("WhileGrad", [](KernelContext& ctx) {
    const GraphFunction& body_grad =
        LookupFn(*ctx.run, *ctx.node, "body_grad_fn");
    const auto num_carried =
        static_cast<std::size_t>(ctx.node->GetIntAttr("num_carried"));
    const auto num_captures =
        static_cast<std::size_t>(ctx.node->GetIntAttr("num_captures"));
    const auto forward_id =
        static_cast<int>(ctx.node->GetIntAttr("forward_id"));
    JANUS_EXPECTS(ctx.inputs.size() == num_carried + num_captures);

    std::vector<Tensor> grad_carried(
        ctx.inputs.begin(),
        ctx.inputs.begin() + static_cast<std::ptrdiff_t>(num_carried));
    const std::vector<Tensor> captures(
        ctx.inputs.begin() + static_cast<std::ptrdiff_t>(num_carried),
        ctx.inputs.end());

    std::vector<Tensor> grad_captures;
    grad_captures.reserve(num_captures);
    for (const Tensor& capture : captures) {
      grad_captures.push_back(
          Tensor::Zeros(capture.dtype() == DType::kFloat32
                            ? DType::kFloat32
                            : capture.dtype(),
                        capture.shape()));
    }

    const auto tape = ctx.run->TakeTape(forward_id);
    for (auto it = tape.rbegin(); it != tape.rend(); ++it) {
      std::vector<Tensor> args = *it;  // carried at iteration start
      args.insert(args.end(), captures.begin(), captures.end());
      args.insert(args.end(), grad_carried.begin(), grad_carried.end());
      std::vector<Tensor> grads =
          Executor::RunFunction(*ctx.run, body_grad, args);
      if (grads.size() != num_carried + num_captures) {
        throw InternalError("WhileGrad: body_grad result count mismatch");
      }
      for (std::size_t i = 0; i < num_carried; ++i) {
        grad_carried[i] = grads[i];
      }
      for (std::size_t i = 0; i < num_captures; ++i) {
        if (grad_captures[i].dtype() == DType::kFloat32) {
          grad_captures[i] =
              ops::Add(grad_captures[i], grads[num_carried + i]);
        }
      }
    }
    for (std::size_t i = 0; i < num_carried; ++i) {
      ctx.set_output(static_cast<int>(i), grad_carried[i]);
    }
    for (std::size_t i = 0; i < num_captures; ++i) {
      ctx.set_output(static_cast<int>(num_carried + i), grad_captures[i]);
    }
  });
}

}  // namespace janus
