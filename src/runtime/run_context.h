// Per-run services and deferred-effect staging.
//
// JANUS never mutates global state mid-graph (§4.2.3 of the paper): kernels
// write variable updates, Python attribute/subscript writes, and print output
// into the RunContext staging area; the Session commits everything only after
// the whole graph executed with every AssertOp passing. A failed assumption
// throws AssumptionFailed, the RunContext is discarded, and no state changed
// — the all-or-nothing property the fallback mechanism relies on.
#ifndef JANUS_RUNTIME_RUN_CONTEXT_H_
#define JANUS_RUNTIME_RUN_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/graph.h"
#include "tensor/tensor.h"

namespace janus {

// Thrown by AssertOp when a speculative assumption does not hold at runtime.
// Carries the failing assumption's identity and, when the assert site can
// render them, the assumed vs observed values — the engine forwards both to
// the speculation ledger so fallbacks are attributable after the fact.
class AssumptionFailed : public Error {
 public:
  AssumptionFailed(std::string assumption_id, const std::string& message)
      : Error("assumption failed: " + message),
        assumption_id_(std::move(assumption_id)) {}

  AssumptionFailed(std::string assumption_id, const std::string& message,
                   std::string assumed, std::string observed)
      : Error("assumption failed: " + message),
        assumption_id_(std::move(assumption_id)),
        assumed_(std::move(assumed)),
        observed_(std::move(observed)) {}

  const std::string& assumption_id() const { return assumption_id_; }
  // What the graph speculated / what the run saw, rendered symbolically.
  // Empty when the assert site could not render the value.
  const std::string& assumed() const { return assumed_; }
  const std::string& observed() const { return observed_; }

 private:
  std::string assumption_id_;
  std::string assumed_;
  std::string observed_;
};

// Named model-parameter storage shared between imperative and graph
// execution (the paper modifies TF Eager's parameter storage for the same
// sharing).
class VariableStore {
 public:
  bool Contains(const std::string& name) const;
  const Tensor& Read(const std::string& name) const;
  void Assign(const std::string& name, Tensor value);
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Tensor> variables_;
};

// Host (interpreter heap) access used by PyGetAttr/PySetAttr/PyGetSubscr/
// PySetSubscr kernels. Object references are encoded as int64 scalar tensors
// holding heap ids, exactly as the paper encodes Python pointers.
class StateInterface {
 public:
  virtual ~StateInterface() = default;
  virtual Tensor GetAttr(std::int64_t object_id, const std::string& name) = 0;
  virtual void SetAttr(std::int64_t object_id, const std::string& name,
                       const Tensor& value) = 0;
  virtual Tensor GetSubscr(std::int64_t object_id, std::int64_t index) = 0;
  virtual void SetSubscr(std::int64_t object_id, std::int64_t index,
                         const Tensor& value) = 0;
};

class RunContext {
 public:
  // Non-owning service pointers; any may be null when the corresponding
  // feature is unused by the graph.
  const std::map<std::string, Tensor>* feeds = nullptr;
  VariableStore* variables = nullptr;
  StateInterface* host_state = nullptr;
  const FunctionLibrary* library = nullptr;
  Rng* rng = nullptr;
  ThreadPool* pool = nullptr;  // non-null enables parallel DAG scheduling

  // ---- staged (deferred) effects ----

  // Reads a variable honouring earlier staged writes in this run.
  Tensor ReadVariable(const std::string& name);
  void StageVariable(const std::string& name, Tensor value);

  // Local-copy reads/writes of host attributes and subscripts (copy-on-write
  // semantics of Fig. 5: reads hit the local copy once one exists).
  Tensor ReadAttr(std::int64_t object_id, const std::string& name);
  void StageAttr(std::int64_t object_id, const std::string& name,
                 Tensor value);
  Tensor ReadSubscr(std::int64_t object_id, std::int64_t index);
  void StageSubscr(std::int64_t object_id, std::int64_t index, Tensor value);

  void StagePrint(std::string line);

  // Applies every staged effect to the variable store / host heap / stdout.
  // Called exactly once, by the top-level run, after success.
  void Commit();

  // ---- tapes for While gradients ----
  void StoreTape(int node_id, std::vector<std::vector<Tensor>> iterations);
  // Takes ownership of (removes) the recorded tape.
  std::vector<std::vector<Tensor>> TakeTape(int node_id);

  // ---- metrics ----
  std::atomic<std::int64_t> ops_executed{0};
  // Plan-cache accounting for this run: builds should happen at most once
  // per (graph, fetches) over a process lifetime; the steady state is
  // hits-only (see runtime/plan.h).
  std::atomic<std::int64_t> plan_builds{0};
  std::atomic<std::int64_t> plan_cache_hits{0};
  // Dead intermediate output tensors dropped mid-run by the liveness plan
  // (their buffers return to the BufferPool for reuse within the same run).
  std::atomic<std::int64_t> buffers_released{0};
  // Fusion accounting: regions dispatched through the superop interpreter
  // and the member ops they covered. Fallback (per-member) region execution
  // counts ops normally and leaves these at zero.
  std::atomic<std::int64_t> fused_regions{0};
  std::atomic<std::int64_t> fused_ops{0};

  // Per-kernel busy-wait (ns) emulating interpreter/framework dispatch cost;
  // only the eager (imperative) executor sets this.
  std::int64_t dispatch_penalty_ns = 0;

  std::mutex mu;  // guards all staging maps and the rng in parallel runs

 private:
  std::map<std::string, Tensor> staged_vars_;
  std::map<std::pair<std::int64_t, std::string>, Tensor> staged_attrs_;
  std::map<std::pair<std::int64_t, std::int64_t>, Tensor> staged_subscrs_;
  std::vector<std::string> staged_prints_;
  std::map<int, std::vector<std::vector<Tensor>>> tapes_;
};

}  // namespace janus

#endif  // JANUS_RUNTIME_RUN_CONTEXT_H_
