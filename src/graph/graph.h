// Symbolic dataflow graph intermediate representation.
//
// A Graph owns Nodes; Nodes reference each other through non-owning
// NodeOutput handles (node pointer + output slot), mirroring how TensorFlow
// edges carry (producer, output_index). Control-flow follows the classic
// dataflow primitives the paper builds on: Switch, Merge, Enter, Exit,
// NextIteration (Yu et al., EuroSys'18) plus InvokeOp for recursive
// functions (Jeong et al., EuroSys'18) and AssertOp for JANUS's speculative
// assumption checks.
#ifndef JANUS_GRAPH_GRAPH_H_
#define JANUS_GRAPH_GRAPH_H_

#include <memory>
#include <string>
#include <vector>

#include "cache/plan_cache.h"
#include "graph/attr.h"
#include "graph/source_site.h"

namespace janus {

class Node;

// A reference to one output slot of a node. Non-owning: the Graph keeps the
// node alive.
struct NodeOutput {
  Node* node = nullptr;
  int index = 0;

  bool operator==(const NodeOutput& other) const = default;
};

class Node {
 public:
  Node(int id, std::string op, std::string name, std::vector<NodeOutput> inputs,
       AttrMap attrs, int num_outputs);

  int id() const { return id_; }
  const std::string& op() const { return op_; }
  const std::string& name() const { return name_; }
  int num_outputs() const { return num_outputs_; }

  const std::vector<NodeOutput>& inputs() const { return inputs_; }
  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  NodeOutput input(int i) const { return inputs_.at(static_cast<std::size_t>(i)); }
  // Rewires input slot i (used by optimisation passes).
  void set_input(int i, NodeOutput v) { inputs_.at(static_cast<std::size_t>(i)) = v; }
  // Appends an input (used to patch recursive Invoke sites once the callee's
  // full capture list is known).
  void AppendInput(NodeOutput v) { inputs_.push_back(v); }

  // Control dependencies: this node may fire only after these nodes have
  // completed (used to order state reads/writes and deferred updates).
  const std::vector<Node*>& control_inputs() const { return control_inputs_; }
  void AddControlInput(Node* node) { control_inputs_.push_back(node); }
  void ClearControlInputs() { control_inputs_.clear(); }
  void ReplaceControlInput(Node* from, Node* to);

  const AttrMap& attrs() const { return attrs_; }
  bool HasAttr(std::string_view key) const;
  const AttrValue& attr(std::string_view key) const;
  void SetAttr(std::string key, AttrValue value);

  // Typed attribute accessors (throw InternalError on kind mismatch).
  std::int64_t GetIntAttr(std::string_view key) const;
  double GetFloatAttr(std::string_view key) const;
  bool GetBoolAttr(std::string_view key) const;
  const std::string& GetStringAttr(std::string_view key) const;
  const std::vector<std::int64_t>& GetIntListAttr(std::string_view key) const;
  const Tensor& GetTensorAttr(std::string_view key) const;
  DType GetDTypeAttr(std::string_view key) const;

  // Imperative source provenance. Stamped from the ambient SourceSiteScope
  // at creation (Graph::AddNode); gradient/rewrite passes re-stamp clones
  // with the originating forward node's site. Unknown sites have
  // !site().known().
  const SourceSite& site() const { return site_; }
  void set_site(SourceSite site) { site_ = std::move(site); }

  std::string DebugString() const;

 private:
  int id_;
  std::string op_;
  std::string name_;
  std::vector<NodeOutput> inputs_;
  std::vector<Node*> control_inputs_;
  AttrMap attrs_;
  int num_outputs_;
  SourceSite site_;
};

// A named subgraph with explicit parameters and results, invoked through
// InvokeOp (possibly recursively) or used as a loop/branch body.
struct GraphFunction;

class Graph {
 public:
  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  // Creates a node. `name` may be empty (a unique one is generated).
  Node* AddNode(std::string op, std::vector<NodeOutput> inputs,
                AttrMap attrs = {}, int num_outputs = 1,
                std::string name = {});

  // Convenience constructors for the most common node kinds.
  NodeOutput Constant(Tensor value, std::string name = {});
  NodeOutput Placeholder(std::string name, DType dtype);

  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }
  std::size_t num_nodes() const { return nodes_.size(); }

  // Removes nodes not satisfying `keep`. Caller guarantees no kept node
  // references a removed one.
  void Prune(const std::vector<Node*>& keep);

  std::string DebugString() const;

  // Structural version, bumped on node addition/removal. Executors key
  // their cached execution plans on it; graphs are expected to be frozen
  // once execution starts (as in TF).
  std::uint64_t version() const { return version_; }

  // Runtime-owned cache of compiled ExecutionPlans (opaque to the graph),
  // keyed by (structural version, fetch set). See src/cache/plan_cache.h;
  // runtime/plan.cc is the only producer and consumer.
  cache::PlanCache& plan_cache() const { return *plan_cache_; }

 private:
  std::vector<std::unique_ptr<Node>> nodes_;
  int next_id_ = 0;
  std::uint64_t version_ = 0;
  std::unique_ptr<cache::PlanCache> plan_cache_ =
      std::make_unique<cache::PlanCache>();
};

struct GraphFunction {
  std::string name;
  Graph graph;
  // Parameter placeholders, in call order.
  std::vector<Node*> parameters;
  // Result values fetched when the function returns.
  std::vector<NodeOutput> results;
};

// Shared, append-only collection of functions referenced by InvokeOp nodes.
class FunctionLibrary {
 public:
  // Registers a function; returns its name. Throws on duplicates.
  const GraphFunction& Register(std::unique_ptr<GraphFunction> fn);
  bool Contains(std::string_view name) const;
  const GraphFunction& Lookup(std::string_view name) const;
  // Mutable lookup for two-phase construction (recursive gradient functions
  // register a stub first, then fill in their body).
  GraphFunction& LookupMutable(std::string_view name);
  std::vector<std::string> FunctionNames() const;

 private:
  std::map<std::string, std::unique_ptr<GraphFunction>, std::less<>> functions_;
};

}  // namespace janus

#endif  // JANUS_GRAPH_GRAPH_H_
