// Attribute values attached to graph nodes (op parameters fixed at graph
// construction time): strides, paddings, axes, literal tensors, dtype tags,
// function names for InvokeOp, assumption descriptions for AssertOp, etc.
#ifndef JANUS_GRAPH_ATTR_H_
#define JANUS_GRAPH_ATTR_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "tensor/tensor.h"

namespace janus {

using AttrValue = std::variant<std::int64_t, double, bool, std::string,
                               std::vector<std::int64_t>, Tensor, DType>;

using AttrMap = std::map<std::string, AttrValue, std::less<>>;

// Renders an attribute for debugging / graph dumps.
std::string AttrToString(const AttrValue& attr);

}  // namespace janus

#endif  // JANUS_GRAPH_ATTR_H_
