#include "graph/dot.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "obs/metrics.h"
#include "obs/profile.h"

namespace janus {
namespace {

// Node-resolved mean latencies from the source-attributed profiler
// (preferred: distinguishes two MatMuls of different shapes), falling back
// to per-op means from the sampled kernel timers. The hottest mean across
// both sources scales the heat ramp. Empty when nothing has been recorded.
struct TimingIndex {
  std::map<std::string, double> node_mean_ns;  // node name -> mean latency
  std::map<std::string, double> mean_ns;       // op -> mean sampled latency
  double max_mean_ns = 0.0;
};

TimingIndex BuildTimingIndex(const Graph& graph) {
  TimingIndex index;
  const std::map<std::string, double> profiled = obs::ProfileNodeMeanNs();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  for (const auto& node : graph.nodes()) {
    if (const auto it = profiled.find(node->name()); it != profiled.end()) {
      index.node_mean_ns[node->name()] = it->second;
      index.max_mean_ns = std::max(index.max_mean_ns, it->second);
    }
    const std::string& op = node->op();
    if (index.mean_ns.count(op) != 0u) continue;
    const obs::Histogram* histogram =
        registry.FindHistogram("kernel." + op);
    if (histogram == nullptr || histogram->Count() == 0) continue;
    const double mean = histogram->Mean();
    index.mean_ns[op] = mean;
    index.max_mean_ns = std::max(index.max_mean_ns, mean);
  }
  return index;
}

// Buckets a node's mean latency relative to the graph's hottest op into a
// white-to-red heat ramp.
const char* HeatColor(double mean_ns, double max_mean_ns) {
  const double ratio = max_mean_ns > 0.0 ? mean_ns / max_mean_ns : 0.0;
  if (ratio >= 0.75) return "\"#e34a33\"";
  if (ratio >= 0.40) return "\"#fc8d59\"";
  if (ratio >= 0.15) return "\"#fdcc8a\"";
  return "\"#fef0d9\"";
}

std::string FormatMeanNs(double mean_ns) {
  char text[48];
  if (mean_ns >= 1e6) {
    std::snprintf(text, sizeof(text), "~%.1fms", mean_ns / 1e6);
  } else if (mean_ns >= 1e3) {
    std::snprintf(text, sizeof(text), "~%.1fus", mean_ns / 1e3);
  } else {
    std::snprintf(text, sizeof(text), "~%.0fns", mean_ns);
  }
  return text;
}

bool IsControlFlow(const std::string& op) {
  return op == "Switch" || op == "Merge" || op == "Enter" || op == "Exit" ||
         op == "NextIteration" || op == "While" || op == "Invoke";
}

bool IsStateOp(const std::string& op) {
  return op == "PyGetAttr" || op == "PySetAttr" || op == "PyGetSubscr" ||
         op == "PySetSubscr" || op == "ReadVariable" ||
         op == "AssignVariable" || op == "ApplySGD" || op == "PyPrint";
}

bool IsSource(const std::string& op) {
  return op == "Const" || op == "Placeholder" || op == "Param";
}

void EmitNode(std::ostringstream& oss, const Node& node,
              const TimingIndex* timing = nullptr) {
  const std::string& op = node.op();
  const char* shape = "box";
  std::string color = "white";
  if (IsControlFlow(op)) {
    shape = "diamond";
    color = "lightblue";
  } else if (op == "Assert" || op == "AssertShape") {
    shape = "octagon";
    color = "lightsalmon";
  } else if (IsStateOp(op)) {
    color = "khaki";
  } else if (IsSource(op)) {
    shape = "ellipse";
    color = "lightgrey";
  }
  std::string timing_label;
  if (timing != nullptr) {
    // Per-node profile data first (exact for this node), op-wide mean as
    // the fallback when the profiler never sampled this node.
    const auto node_it = timing->node_mean_ns.find(node.name());
    if (node_it != timing->node_mean_ns.end()) {
      timing_label = "\\n" + FormatMeanNs(node_it->second);
      color = HeatColor(node_it->second, timing->max_mean_ns);
    } else if (const auto it = timing->mean_ns.find(op);
               it != timing->mean_ns.end()) {
      timing_label = "\\n" + FormatMeanNs(it->second) + " (op avg)";
      color = HeatColor(it->second, timing->max_mean_ns);
    }
  }
  oss << "  n" << node.id() << " [label=\"" << node.name()
      << "\\n" << op << timing_label << "\", shape=" << shape
      << ", style=filled, fillcolor=" << color << "];\n";
}

void EmitEdges(std::ostringstream& oss, const Node& node) {
  for (int i = 0; i < node.num_inputs(); ++i) {
    const NodeOutput input = node.input(i);
    oss << "  n" << input.node->id() << " -> n" << node.id();
    if (input.index != 0 || input.node->num_outputs() > 1) {
      oss << " [label=\"" << input.index << "\"]";
    }
    oss << ";\n";
  }
  for (const Node* control : node.control_inputs()) {
    oss << "  n" << control->id() << " -> n" << node.id()
        << " [style=dashed, color=gray];\n";
  }
}

}  // namespace

std::string ToDot(const Graph& graph, const std::string& title) {
  return ToDot(graph, title, DotOptions{});
}

std::string ToDot(const Graph& graph, const std::string& title,
                  const DotOptions& options) {
  TimingIndex timing;
  if (options.annotate_timing) timing = BuildTimingIndex(graph);
  const TimingIndex* timing_ptr = options.annotate_timing ? &timing : nullptr;
  std::ostringstream oss;
  oss << "digraph \"" << title << "\" {\n";
  oss << "  rankdir=TB;\n  node [fontsize=10];\n";
  for (const auto& node : graph.nodes()) EmitNode(oss, *node, timing_ptr);
  for (const auto& node : graph.nodes()) EmitEdges(oss, *node);
  oss << "}\n";
  return oss.str();
}

std::string ToDot(const GraphFunction& fn) {
  std::ostringstream oss;
  oss << "digraph \"" << fn.name << "\" {\n";
  oss << "  rankdir=TB;\n  node [fontsize=10];\n";
  std::set<const Node*> params(fn.parameters.begin(), fn.parameters.end());
  for (const auto& node : fn.graph.nodes()) {
    if (params.count(node.get()) != 0u) {
      oss << "  n" << node->id() << " [label=\"" << node->name()
          << "\\nParam\", shape=ellipse, style=filled, "
             "fillcolor=palegreen];\n";
    } else {
      EmitNode(oss, *node);
    }
  }
  for (const auto& node : fn.graph.nodes()) EmitEdges(oss, *node);
  // Mark results.
  for (std::size_t i = 0; i < fn.results.size(); ++i) {
    oss << "  result" << i << " [label=\"result " << i
        << "\", shape=plaintext];\n";
    oss << "  n" << fn.results[i].node->id() << " -> result" << i
        << " [style=bold];\n";
  }
  oss << "}\n";
  return oss.str();
}

}  // namespace janus
