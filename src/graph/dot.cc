#include "graph/dot.h"

#include <set>
#include <sstream>

namespace janus {
namespace {

bool IsControlFlow(const std::string& op) {
  return op == "Switch" || op == "Merge" || op == "Enter" || op == "Exit" ||
         op == "NextIteration" || op == "While" || op == "Invoke";
}

bool IsStateOp(const std::string& op) {
  return op == "PyGetAttr" || op == "PySetAttr" || op == "PyGetSubscr" ||
         op == "PySetSubscr" || op == "ReadVariable" ||
         op == "AssignVariable" || op == "ApplySGD" || op == "PyPrint";
}

bool IsSource(const std::string& op) {
  return op == "Const" || op == "Placeholder" || op == "Param";
}

void EmitNode(std::ostringstream& oss, const Node& node) {
  const std::string& op = node.op();
  const char* shape = "box";
  const char* color = "white";
  if (IsControlFlow(op)) {
    shape = "diamond";
    color = "lightblue";
  } else if (op == "Assert" || op == "AssertShape") {
    shape = "octagon";
    color = "lightsalmon";
  } else if (IsStateOp(op)) {
    color = "khaki";
  } else if (IsSource(op)) {
    shape = "ellipse";
    color = "lightgrey";
  }
  oss << "  n" << node.id() << " [label=\"" << node.name()
      << "\\n" << op << "\", shape=" << shape
      << ", style=filled, fillcolor=" << color << "];\n";
}

void EmitEdges(std::ostringstream& oss, const Node& node) {
  for (int i = 0; i < node.num_inputs(); ++i) {
    const NodeOutput input = node.input(i);
    oss << "  n" << input.node->id() << " -> n" << node.id();
    if (input.index != 0 || input.node->num_outputs() > 1) {
      oss << " [label=\"" << input.index << "\"]";
    }
    oss << ";\n";
  }
  for (const Node* control : node.control_inputs()) {
    oss << "  n" << control->id() << " -> n" << node.id()
        << " [style=dashed, color=gray];\n";
  }
}

}  // namespace

std::string ToDot(const Graph& graph, const std::string& title) {
  std::ostringstream oss;
  oss << "digraph \"" << title << "\" {\n";
  oss << "  rankdir=TB;\n  node [fontsize=10];\n";
  for (const auto& node : graph.nodes()) EmitNode(oss, *node);
  for (const auto& node : graph.nodes()) EmitEdges(oss, *node);
  oss << "}\n";
  return oss.str();
}

std::string ToDot(const GraphFunction& fn) {
  std::ostringstream oss;
  oss << "digraph \"" << fn.name << "\" {\n";
  oss << "  rankdir=TB;\n  node [fontsize=10];\n";
  std::set<const Node*> params(fn.parameters.begin(), fn.parameters.end());
  for (const auto& node : fn.graph.nodes()) {
    if (params.count(node.get()) != 0u) {
      oss << "  n" << node->id() << " [label=\"" << node->name()
          << "\\nParam\", shape=ellipse, style=filled, "
             "fillcolor=palegreen];\n";
    } else {
      EmitNode(oss, *node);
    }
  }
  for (const auto& node : fn.graph.nodes()) EmitEdges(oss, *node);
  // Mark results.
  for (std::size_t i = 0; i < fn.results.size(); ++i) {
    oss << "  result" << i << " [label=\"result " << i
        << "\", shape=plaintext];\n";
    oss << "  n" << fn.results[i].node->id() << " -> result" << i
        << " [style=bold];\n";
  }
  oss << "}\n";
  return oss.str();
}

}  // namespace janus
