// Source provenance for graph nodes.
//
// JANUS swaps the user's imperative program for a generated symbolic graph,
// which by itself destroys the mapping from execution cost back to the line
// of imperative code that caused it. A SourceSite records where a node came
// from: the qualified imperative function, the 1-based source line of the
// statement the symbolic executor was converting, and the statement's id
// (stable within a function definition, -1 when unknown).
//
// Sites are stamped at the single choke point every node passes through —
// Graph::AddNode — by consulting an *ambient* thread-local site that the
// producer (symbolic generator, autodiff, optimisation passes) establishes
// with the RAII SourceSiteScope. Graph construction is single-threaded per
// compilation, so a thread-local ambient is race-free; executors only ever
// read sites.
//
// Header-only on purpose: obs/ (which must not link against janus_graph)
// mirrors these fields into its own ProfileSite at plan-build time, and the
// graph layer itself needs nothing beyond the struct and the scope.
#ifndef JANUS_GRAPH_SOURCE_SITE_H_
#define JANUS_GRAPH_SOURCE_SITE_H_

#include <string>
#include <utility>

namespace janus {

struct SourceSite {
  // Qualified name of the imperative function being converted
  // (e.g. "train_step"); empty when unknown.
  std::string function;
  // 1-based line within the imperative program; 0 when unknown.
  int line = 0;
  // Statement id within the function definition; -1 when unknown.
  int stmt = -1;

  bool known() const { return !function.empty() || line > 0; }

  // "function:line" (or "function" / "line:N" when one half is missing);
  // "?" when nothing is known. Used by DOT tooltips and text exports.
  std::string Label() const {
    if (!known()) return "?";
    if (function.empty()) return "line:" + std::to_string(line);
    if (line <= 0) return function;
    return function + ":" + std::to_string(line);
  }

  bool operator==(const SourceSite& other) const {
    return line == other.line && stmt == other.stmt &&
           function == other.function;
  }
};

namespace internal {
// Ambient site consulted by Graph::AddNode. Null when no scope is active.
inline thread_local const SourceSite* ambient_source_site = nullptr;
}  // namespace internal

inline const SourceSite* AmbientSourceSite() {
  return internal::ambient_source_site;
}

// Establishes an ambient source site for the current thread for the scope's
// lifetime; restores the previous ambient on destruction (scopes nest — the
// autodiff pass re-establishes a forward node's site while emitting its
// gradient ops inside the generator's function-level scope).
class SourceSiteScope {
 public:
  explicit SourceSiteScope(SourceSite site)
      : site_(std::move(site)), previous_(internal::ambient_source_site) {
    internal::ambient_source_site = &site_;
  }
  SourceSiteScope(std::string function, int line, int stmt = -1)
      : SourceSiteScope(SourceSite{std::move(function), line, stmt}) {}

  SourceSiteScope(const SourceSiteScope&) = delete;
  SourceSiteScope& operator=(const SourceSiteScope&) = delete;

  ~SourceSiteScope() { internal::ambient_source_site = previous_; }

  const SourceSite& site() const { return site_; }

 private:
  SourceSite site_;
  const SourceSite* previous_;
};

}  // namespace janus

#endif  // JANUS_GRAPH_SOURCE_SITE_H_
