// Graphviz DOT export for dataflow graphs — debugging aid for inspecting
// what the Speculative Graph Generator produced (node kinds are colour
// coded: control flow, state ops, assertions, sources).
#ifndef JANUS_GRAPH_DOT_H_
#define JANUS_GRAPH_DOT_H_

#include <string>

#include "graph/graph.h"

namespace janus {

struct DotOptions {
  // Annotate each node whose op has a sampled kernel timer (histogram
  // "kernel.<op>" in obs::MetricsRegistry::Global()) with its mean latency
  // and a heat color scaled to the hottest op in the graph, so ToDot()
  // doubles as a visual profile. Run with tracing / kernel timing enabled
  // first to populate the timers.
  bool annotate_timing = false;
};

// Renders the graph in DOT syntax. Control-flow ops are diamonds, state and
// assertion ops are highlighted, control edges are dashed.
std::string ToDot(const Graph& graph, const std::string& title = "graph");
std::string ToDot(const Graph& graph, const std::string& title,
                  const DotOptions& options);

// Renders a library function (parameters marked).
std::string ToDot(const GraphFunction& fn);

}  // namespace janus

#endif  // JANUS_GRAPH_DOT_H_
