#include "graph/graph.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/error.h"

namespace janus {

std::string AttrToString(const AttrValue& attr) {
  std::ostringstream oss;
  std::visit(
      [&oss](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::string>) {
          oss << '"' << v << '"';
        } else if constexpr (std::is_same_v<T, std::vector<std::int64_t>>) {
          oss << '[';
          for (std::size_t i = 0; i < v.size(); ++i) {
            if (i > 0) oss << ", ";
            oss << v[i];
          }
          oss << ']';
        } else if constexpr (std::is_same_v<T, Tensor>) {
          oss << v.ToString(4);
        } else if constexpr (std::is_same_v<T, DType>) {
          oss << DTypeName(v);
        } else if constexpr (std::is_same_v<T, bool>) {
          oss << (v ? "true" : "false");
        } else {
          oss << v;
        }
      },
      attr);
  return oss.str();
}

Node::Node(int id, std::string op, std::string name,
           std::vector<NodeOutput> inputs, AttrMap attrs, int num_outputs)
    : id_(id),
      op_(std::move(op)),
      name_(std::move(name)),
      inputs_(std::move(inputs)),
      attrs_(std::move(attrs)),
      num_outputs_(num_outputs) {
  JANUS_EXPECTS(num_outputs_ >= 0);
}

void Node::ReplaceControlInput(Node* from, Node* to) {
  std::replace(control_inputs_.begin(), control_inputs_.end(), from, to);
}

bool Node::HasAttr(std::string_view key) const {
  return attrs_.find(key) != attrs_.end();
}

const AttrValue& Node::attr(std::string_view key) const {
  const auto it = attrs_.find(key);
  if (it == attrs_.end()) {
    throw InternalError("node " + name_ + " (" + op_ + "): missing attr '" +
                        std::string(key) + "'");
  }
  return it->second;
}

void Node::SetAttr(std::string key, AttrValue value) {
  attrs_[std::move(key)] = std::move(value);
}

namespace {
template <typename T>
const T& GetAttrAs(const Node& node, std::string_view key) {
  const AttrValue& value = node.attr(key);
  const T* typed = std::get_if<T>(&value);
  if (typed == nullptr) {
    throw InternalError("node " + node.name() + ": attr '" + std::string(key) +
                        "' has unexpected kind");
  }
  return *typed;
}
}  // namespace

std::int64_t Node::GetIntAttr(std::string_view key) const {
  return GetAttrAs<std::int64_t>(*this, key);
}
double Node::GetFloatAttr(std::string_view key) const {
  return GetAttrAs<double>(*this, key);
}
bool Node::GetBoolAttr(std::string_view key) const {
  return GetAttrAs<bool>(*this, key);
}
const std::string& Node::GetStringAttr(std::string_view key) const {
  return GetAttrAs<std::string>(*this, key);
}
const std::vector<std::int64_t>& Node::GetIntListAttr(
    std::string_view key) const {
  return GetAttrAs<std::vector<std::int64_t>>(*this, key);
}
const Tensor& Node::GetTensorAttr(std::string_view key) const {
  return GetAttrAs<Tensor>(*this, key);
}
DType Node::GetDTypeAttr(std::string_view key) const {
  return GetAttrAs<DType>(*this, key);
}

std::string Node::DebugString() const {
  std::ostringstream oss;
  oss << name_ << " = " << op_ << '(';
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << inputs_[i].node->name();
    if (inputs_[i].index != 0) oss << ':' << inputs_[i].index;
  }
  oss << ')';
  if (!control_inputs_.empty()) {
    oss << " ^[";
    for (std::size_t i = 0; i < control_inputs_.size(); ++i) {
      if (i > 0) oss << ", ";
      oss << control_inputs_[i]->name();
    }
    oss << ']';
  }
  if (!attrs_.empty()) {
    oss << " {";
    bool first = true;
    for (const auto& [key, value] : attrs_) {
      if (!first) oss << ", ";
      first = false;
      oss << key << '=' << AttrToString(value);
    }
    oss << '}';
  }
  return oss.str();
}

Node* Graph::AddNode(std::string op, std::vector<NodeOutput> inputs,
                     AttrMap attrs, int num_outputs, std::string name) {
  for (const NodeOutput& input : inputs) {
    JANUS_EXPECTS(input.node != nullptr);
    JANUS_EXPECTS(input.index >= 0 && input.index < input.node->num_outputs());
  }
  if (name.empty()) {
    name = op + "_" + std::to_string(next_id_);
  }
  nodes_.push_back(std::make_unique<Node>(next_id_, std::move(op),
                                          std::move(name), std::move(inputs),
                                          std::move(attrs), num_outputs));
  ++next_id_;
  ++version_;
  if (const SourceSite* ambient = AmbientSourceSite()) {
    nodes_.back()->set_site(*ambient);
  }
  return nodes_.back().get();
}

NodeOutput Graph::Constant(Tensor value, std::string name) {
  Node* node = AddNode("Const", {}, {{"value", std::move(value)}}, 1,
                       std::move(name));
  return {node, 0};
}

NodeOutput Graph::Placeholder(std::string name, DType dtype) {
  Node* node = AddNode("Placeholder", {}, {{"dtype", dtype}}, 1,
                       std::move(name));
  return {node, 0};
}

void Graph::Prune(const std::vector<Node*>& keep) {
  std::unordered_set<const Node*> kept(keep.begin(), keep.end());
  std::erase_if(nodes_, [&kept](const std::unique_ptr<Node>& node) {
    return kept.find(node.get()) == kept.end();
  });
  ++version_;
}

std::string Graph::DebugString() const {
  std::ostringstream oss;
  for (const auto& node : nodes_) oss << node->DebugString() << '\n';
  return oss.str();
}

const GraphFunction& FunctionLibrary::Register(
    std::unique_ptr<GraphFunction> fn) {
  JANUS_EXPECTS(fn != nullptr && !fn->name.empty());
  const auto [it, inserted] = functions_.emplace(fn->name, std::move(fn));
  if (!inserted) {
    throw InvalidArgument("function '" + it->first + "' already registered");
  }
  return *it->second;
}

bool FunctionLibrary::Contains(std::string_view name) const {
  return functions_.find(name) != functions_.end();
}

const GraphFunction& FunctionLibrary::Lookup(std::string_view name) const {
  const auto it = functions_.find(name);
  if (it == functions_.end()) {
    throw InvalidArgument("unknown function '" + std::string(name) + "'");
  }
  return *it->second;
}

GraphFunction& FunctionLibrary::LookupMutable(std::string_view name) {
  const auto it = functions_.find(name);
  if (it == functions_.end()) {
    throw InvalidArgument("unknown function '" + std::string(name) + "'");
  }
  return *it->second;
}

std::vector<std::string> FunctionLibrary::FunctionNames() const {
  std::vector<std::string> names;
  names.reserve(functions_.size());
  for (const auto& [name, fn] : functions_) names.push_back(name);
  return names;
}

}  // namespace janus
