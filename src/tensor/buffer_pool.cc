#include "tensor/buffer_pool.h"

#include <array>
#include <bit>
#include <new>

#include "common/error.h"

namespace janus {

namespace {

internal::BufferControl* AllocateRaw(std::size_t capacity, int size_class) {
  void* raw = ::operator new(sizeof(internal::BufferControl) + capacity);
  auto* ctrl = new (raw) internal::BufferControl();
  ctrl->capacity = capacity;
  ctrl->size_class = size_class;
  return ctrl;
}

void FreeRaw(internal::BufferControl* ctrl) {
  ctrl->~BufferControl();
  ::operator delete(static_cast<void*>(ctrl));
}

}  // namespace

namespace {

// Set by ~ThreadCache. Trivially destructible, so it stays readable after
// TLS destructors ran — the window where static-storage tensors (cached
// graphs' baked constants) are still being destroyed during exit().
thread_local bool tls_cache_destroyed = false;

}  // namespace

// A small LIFO stack of free blocks per class, owned by one thread. Spills
// to / refills from the central freelist; flushes everything on thread exit.
struct BufferPool::ThreadCache {
  std::array<std::vector<internal::BufferControl*>, kNumClasses> free_blocks;

  ~ThreadCache() {
    tls_cache_destroyed = true;
    BufferPool& pool = BufferPool::Global();
    for (int c = 0; c < kNumClasses; ++c) {
      if (!free_blocks[static_cast<std::size_t>(c)].empty()) {
        pool.CentralPush(c, free_blocks[static_cast<std::size_t>(c)]);
      }
    }
  }
};

BufferPool& BufferPool::Global() {
  // Leaked deliberately: ThreadCache destructors (thread_local, possibly
  // after main returns) must always find the pool alive.
  static BufferPool* pool = new BufferPool();
  return *pool;
}

BufferPool::ThreadCache* BufferPool::LocalCache() {
  if (tls_cache_destroyed) return nullptr;
  thread_local ThreadCache cache;
  return &cache;
}

int BufferPool::SizeClassFor(std::size_t bytes) {
  if (bytes <= kMinClassBytes) return 0;
  const int size_class =
      std::bit_width(bytes - 1) - std::bit_width(kMinClassBytes - 1);
  return size_class >= kNumClasses ? kNumClasses : size_class;
}

std::size_t BufferPool::ClassBytes(int size_class) {
  JANUS_EXPECTS(size_class >= 0 && size_class < kNumClasses);
  return kMinClassBytes << size_class;
}

internal::BufferControl* BufferPool::NewBlock(int size_class,
                                              std::size_t capacity) {
  pool_misses_.fetch_add(1, std::memory_order_relaxed);
  bytes_allocated_.fetch_add(static_cast<std::int64_t>(capacity),
                             std::memory_order_relaxed);
  return AllocateRaw(capacity, size_class);
}

internal::BufferControl* BufferPool::Allocate(std::size_t bytes) {
  allocations_.fetch_add(1, std::memory_order_relaxed);
  const int size_class = SizeClassFor(bytes);
  if (size_class >= kNumClasses) {
    return NewBlock(/*size_class=*/-1, bytes);  // oversize: unpooled
  }
  const std::size_t capacity = ClassBytes(size_class);
  ThreadCache* cache = LocalCache();
  internal::BufferControl* ctrl = nullptr;
  if (cache != nullptr &&
      !cache->free_blocks[static_cast<std::size_t>(size_class)].empty()) {
    auto& cached = cache->free_blocks[static_cast<std::size_t>(size_class)];
    ctrl = cached.back();
    cached.pop_back();
  } else {
    ctrl = CentralPop(size_class);
  }
  if (ctrl == nullptr) return NewBlock(size_class, capacity);
  pool_hits_.fetch_add(1, std::memory_order_relaxed);
  retained_bytes_.fetch_sub(static_cast<std::int64_t>(capacity),
                            std::memory_order_relaxed);
  ctrl->refs.store(1, std::memory_order_relaxed);
  return ctrl;
}

void BufferPool::Release(internal::BufferControl* ctrl) {
  const int size_class = ctrl->size_class;
  if (size_class < 0) {
    FreeRaw(ctrl);
    return;
  }
  retained_bytes_.fetch_add(static_cast<std::int64_t>(ctrl->capacity),
                            std::memory_order_relaxed);
  ThreadCache* cache = LocalCache();
  if (cache == nullptr) {
    // This thread's cache is already gone (process teardown): park the
    // block centrally instead of touching the destroyed TLS vectors.
    std::vector<internal::BufferControl*> one{ctrl};
    CentralPush(size_class, one);
    return;
  }
  auto& cached = cache->free_blocks[static_cast<std::size_t>(size_class)];
  cached.push_back(ctrl);
  if (cached.size() > kThreadCacheBlocks) {
    CentralPush(size_class, cached);
  }
}

internal::BufferControl* BufferPool::CentralPop(int size_class) {
  const MutexLock lock(mu_);
  auto& list = central_[size_class];
  if (list.empty()) return nullptr;
  internal::BufferControl* ctrl = list.back();
  list.pop_back();
  return ctrl;
}

void BufferPool::CentralPush(int size_class,
                             std::vector<internal::BufferControl*>& blocks) {
  std::vector<internal::BufferControl*> overflow;
  {
    const MutexLock lock(mu_);
    for (internal::BufferControl* ctrl : blocks) {
      if (retained_bytes_.load(std::memory_order_relaxed) >
          static_cast<std::int64_t>(kMaxRetainedBytes)) {
        overflow.push_back(ctrl);
      } else {
        central_[size_class].push_back(ctrl);
      }
    }
  }
  blocks.clear();
  for (internal::BufferControl* ctrl : overflow) {
    retained_bytes_.fetch_sub(static_cast<std::int64_t>(ctrl->capacity),
                              std::memory_order_relaxed);
    FreeRaw(ctrl);
  }
}

void BufferPool::Trim() {
  trims_.fetch_add(1, std::memory_order_relaxed);
  if (ThreadCache* cache = LocalCache(); cache != nullptr) {
    for (int c = 0; c < kNumClasses; ++c) {
      auto& cached = cache->free_blocks[static_cast<std::size_t>(c)];
      if (!cached.empty()) CentralPush(c, cached);
    }
  }
  std::vector<internal::BufferControl*> reclaimed;
  {
    const MutexLock lock(mu_);
    for (auto& list : central_) {
      reclaimed.insert(reclaimed.end(), list.begin(), list.end());
      list.clear();
    }
  }
  for (internal::BufferControl* ctrl : reclaimed) {
    retained_bytes_.fetch_sub(static_cast<std::int64_t>(ctrl->capacity),
                              std::memory_order_relaxed);
    FreeRaw(ctrl);
  }
}

BufferPool::Stats BufferPool::Snapshot() const {
  Stats stats;
  stats.allocations = allocations_.load(std::memory_order_relaxed);
  stats.pool_hits = pool_hits_.load(std::memory_order_relaxed);
  stats.pool_misses = pool_misses_.load(std::memory_order_relaxed);
  stats.bytes_allocated = bytes_allocated_.load(std::memory_order_relaxed);
  stats.in_place_reuses = in_place_reuses_.load(std::memory_order_relaxed);
  stats.retained_bytes = retained_bytes_.load(std::memory_order_relaxed);
  stats.trims = trims_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace janus
