// CPU kernels over Tensor. These are the primitive operations exposed both
// to the imperative executor (eager dispatch) and to the dataflow graph
// runtime (graph node kernels).
//
// All binary elementwise kernels follow NumPy broadcasting rules. Kernels
// never mutate their inputs; every call allocates a fresh output.
#ifndef JANUS_TENSOR_OPS_H_
#define JANUS_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace janus::ops {

// ---- Elementwise binary (broadcasting) ----
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor FloorDiv(const Tensor& a, const Tensor& b);
Tensor Mod(const Tensor& a, const Tensor& b);
Tensor Pow(const Tensor& a, const Tensor& b);
Tensor Maximum(const Tensor& a, const Tensor& b);
Tensor Minimum(const Tensor& a, const Tensor& b);

// ---- Comparisons (result dtype: bool) ----
Tensor Equal(const Tensor& a, const Tensor& b);
Tensor NotEqual(const Tensor& a, const Tensor& b);
Tensor Less(const Tensor& a, const Tensor& b);
Tensor LessEqual(const Tensor& a, const Tensor& b);
Tensor Greater(const Tensor& a, const Tensor& b);
Tensor GreaterEqual(const Tensor& a, const Tensor& b);

// ---- Logical (bool tensors) ----
Tensor LogicalAnd(const Tensor& a, const Tensor& b);
Tensor LogicalOr(const Tensor& a, const Tensor& b);
Tensor LogicalNot(const Tensor& a);

// ---- Elementwise unary ----
Tensor Neg(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Sign(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Square(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);
// d/dx relu(x) given upstream gradient: grad * (x > 0).
Tensor ReluGrad(const Tensor& grad, const Tensor& x);

// ---- Linear algebra ----
// 2-D matrix product: (m,k) x (k,n) -> (m,n).
Tensor MatMul(const Tensor& a, const Tensor& b);
// 2-D transpose.
Tensor Transpose(const Tensor& a);

// ---- Shape manipulation ----
Tensor Reshape(const Tensor& a, const Shape& shape);
// Broadcast a to the given shape (explicit materialisation).
Tensor BroadcastTo(const Tensor& a, const Shape& shape);
Tensor Concat(const std::vector<Tensor>& parts, int axis);
// Stack along a new leading axis.
Tensor Stack(const std::vector<Tensor>& parts);
// begin/size along each axis (size -1 = to end).
Tensor Slice(const Tensor& a, const std::vector<std::int64_t>& begin,
             const std::vector<std::int64_t>& size);
Tensor Cast(const Tensor& a, DType dtype);

// ---- Reductions ----
// axes empty => reduce all axes. keep_dims retains reduced axes as size 1.
Tensor ReduceSum(const Tensor& a, std::vector<int> axes = {},
                 bool keep_dims = false);
Tensor ReduceMean(const Tensor& a, std::vector<int> axes = {},
                  bool keep_dims = false);
Tensor ReduceMax(const Tensor& a, std::vector<int> axes = {},
                 bool keep_dims = false);
// Reduce a gradient to a broadcast input's original shape (sums the
// broadcast axes). Used by autodiff for all broadcasting binary ops.
Tensor ReduceToShape(const Tensor& grad, const Shape& target);
Tensor ArgMax(const Tensor& a, int axis);  // result dtype: int64

// ---- Neural network ----
Tensor Softmax(const Tensor& logits);     // along last axis
Tensor LogSoftmax(const Tensor& logits);  // along last axis
// logits: (batch, classes); labels: (batch) int64. Returns (batch) losses.
Tensor SoftmaxCrossEntropy(const Tensor& logits, const Tensor& labels);
// Gradient of mean softmax-xent handled in autodiff via Softmax/OneHot.
Tensor OneHot(const Tensor& labels, std::int64_t depth);

// input: (n, h, w, c_in) NHWC; filter: (fh, fw, c_in, c_out) HWIO.
// padding: "SAME" or "VALID".
Tensor Conv2D(const Tensor& input, const Tensor& filter, int stride,
              const std::string& padding);
// Gradients of Conv2D with respect to its input / filter.
Tensor Conv2DGradInput(const Shape& input_shape, const Tensor& filter,
                       const Tensor& grad, int stride,
                       const std::string& padding);
Tensor Conv2DGradFilter(const Tensor& input, const Shape& filter_shape,
                        const Tensor& grad, int stride,
                        const std::string& padding);
Tensor MaxPool2D(const Tensor& input, int window, int stride);
Tensor MaxPool2DGrad(const Tensor& input, const Tensor& grad, int window,
                     int stride);
Tensor AvgPool2D(const Tensor& input, int window, int stride);
Tensor AvgPool2DGrad(const Shape& input_shape, const Tensor& grad, int window,
                     int stride);

// params: (vocab, dim) float; ids: any-shape int64. Result shape:
// ids.shape + [dim].
Tensor Gather(const Tensor& params, const Tensor& ids);
// Scatter-add of grad rows back into a zero (vocab, dim) tensor.
Tensor GatherGrad(const Shape& params_shape, const Tensor& ids,
                  const Tensor& grad);

// cond: bool (broadcastable); picks from a where true else b.
Tensor Select(const Tensor& cond, const Tensor& a, const Tensor& b);

// ---- Random ----
Tensor RandomNormal(const Shape& shape, float mean, float stddev, Rng& rng);
Tensor RandomUniform(const Shape& shape, float lo, float hi, Rng& rng);

}  // namespace janus::ops

#endif  // JANUS_TENSOR_OPS_H_
