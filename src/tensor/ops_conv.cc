// Convolution and pooling kernels (NHWC layout, HWIO filters). Naive loop
// implementations — throughput-realistic enough for framework-overhead
// comparisons, which is what the paper's evaluation measures.
#include <limits>

#include "tensor/ops.h"

namespace janus::ops {
namespace {

struct ConvGeometry {
  std::int64_t batch, in_h, in_w, in_c;
  std::int64_t f_h, f_w, out_c;
  std::int64_t out_h, out_w;
  std::int64_t pad_top, pad_left;
  int stride;
};

ConvGeometry MakeGeometry(const Shape& input, const Shape& filter, int stride,
                          const std::string& padding) {
  if (input.rank() != 4 || filter.rank() != 4) {
    throw InvalidArgument("Conv2D: input must be NHWC, filter HWIO");
  }
  if (input.dim(3) != filter.dim(2)) {
    throw InvalidArgument("Conv2D: channel mismatch");
  }
  if (stride < 1) throw InvalidArgument("Conv2D: stride must be >= 1");
  ConvGeometry g{};
  g.batch = input.dim(0);
  g.in_h = input.dim(1);
  g.in_w = input.dim(2);
  g.in_c = input.dim(3);
  g.f_h = filter.dim(0);
  g.f_w = filter.dim(1);
  g.out_c = filter.dim(3);
  g.stride = stride;
  if (padding == "SAME") {
    g.out_h = (g.in_h + stride - 1) / stride;
    g.out_w = (g.in_w + stride - 1) / stride;
    const std::int64_t pad_h =
        std::max<std::int64_t>(0, (g.out_h - 1) * stride + g.f_h - g.in_h);
    const std::int64_t pad_w =
        std::max<std::int64_t>(0, (g.out_w - 1) * stride + g.f_w - g.in_w);
    g.pad_top = pad_h / 2;
    g.pad_left = pad_w / 2;
  } else if (padding == "VALID") {
    g.out_h = (g.in_h - g.f_h) / stride + 1;
    g.out_w = (g.in_w - g.f_w) / stride + 1;
    g.pad_top = 0;
    g.pad_left = 0;
    if (g.out_h < 1 || g.out_w < 1) {
      throw InvalidArgument("Conv2D: filter larger than input under VALID");
    }
  } else {
    throw InvalidArgument("Conv2D: padding must be SAME or VALID");
  }
  return g;
}

struct PoolGeometry {
  std::int64_t batch, in_h, in_w, channels, out_h, out_w;
};

PoolGeometry MakePoolGeometry(const Shape& input, int window, int stride) {
  if (input.rank() != 4) throw InvalidArgument("Pool2D: input must be NHWC");
  if (window < 1 || stride < 1) {
    throw InvalidArgument("Pool2D: window/stride must be >= 1");
  }
  PoolGeometry g{};
  g.batch = input.dim(0);
  g.in_h = input.dim(1);
  g.in_w = input.dim(2);
  g.channels = input.dim(3);
  g.out_h = (g.in_h - window) / stride + 1;
  g.out_w = (g.in_w - window) / stride + 1;
  if (g.out_h < 1 || g.out_w < 1) {
    throw InvalidArgument("Pool2D: window larger than input");
  }
  return g;
}

}  // namespace

Tensor Conv2D(const Tensor& input, const Tensor& filter, int stride,
              const std::string& padding) {
  const ConvGeometry g =
      MakeGeometry(input.shape(), filter.shape(), stride, padding);
  Tensor out =
      Tensor::Zeros(DType::kFloat32, Shape{g.batch, g.out_h, g.out_w, g.out_c});
  const auto in = input.data<float>();
  const auto fl = filter.data<float>();
  auto ov = out.mutable_data<float>();
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t oh = 0; oh < g.out_h; ++oh) {
      for (std::int64_t ow = 0; ow < g.out_w; ++ow) {
        for (std::int64_t fh = 0; fh < g.f_h; ++fh) {
          const std::int64_t ih = oh * g.stride + fh - g.pad_top;
          if (ih < 0 || ih >= g.in_h) continue;
          for (std::int64_t fw = 0; fw < g.f_w; ++fw) {
            const std::int64_t iw = ow * g.stride + fw - g.pad_left;
            if (iw < 0 || iw >= g.in_w) continue;
            const std::size_t in_base = static_cast<std::size_t>(
                ((n * g.in_h + ih) * g.in_w + iw) * g.in_c);
            const std::size_t f_base =
                static_cast<std::size_t>((fh * g.f_w + fw) * g.in_c * g.out_c);
            const std::size_t out_base = static_cast<std::size_t>(
                ((n * g.out_h + oh) * g.out_w + ow) * g.out_c);
            for (std::int64_t c = 0; c < g.in_c; ++c) {
              const float x = in[in_base + static_cast<std::size_t>(c)];
              if (x == 0.0f) continue;
              const std::size_t f_row =
                  f_base + static_cast<std::size_t>(c * g.out_c);
              for (std::int64_t oc = 0; oc < g.out_c; ++oc) {
                ov[out_base + static_cast<std::size_t>(oc)] +=
                    x * fl[f_row + static_cast<std::size_t>(oc)];
              }
            }
          }
        }
      }
    }
  }
  return out;
}

Tensor Conv2DGradInput(const Shape& input_shape, const Tensor& filter,
                       const Tensor& grad, int stride,
                       const std::string& padding) {
  const ConvGeometry g =
      MakeGeometry(input_shape, filter.shape(), stride, padding);
  Tensor out = Tensor::Zeros(DType::kFloat32, input_shape);
  const auto fl = filter.data<float>();
  const auto gv = grad.data<float>();
  auto ov = out.mutable_data<float>();
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t oh = 0; oh < g.out_h; ++oh) {
      for (std::int64_t ow = 0; ow < g.out_w; ++ow) {
        const std::size_t g_base = static_cast<std::size_t>(
            ((n * g.out_h + oh) * g.out_w + ow) * g.out_c);
        for (std::int64_t fh = 0; fh < g.f_h; ++fh) {
          const std::int64_t ih = oh * g.stride + fh - g.pad_top;
          if (ih < 0 || ih >= g.in_h) continue;
          for (std::int64_t fw = 0; fw < g.f_w; ++fw) {
            const std::int64_t iw = ow * g.stride + fw - g.pad_left;
            if (iw < 0 || iw >= g.in_w) continue;
            const std::size_t in_base = static_cast<std::size_t>(
                ((n * g.in_h + ih) * g.in_w + iw) * g.in_c);
            const std::size_t f_base =
                static_cast<std::size_t>((fh * g.f_w + fw) * g.in_c * g.out_c);
            for (std::int64_t c = 0; c < g.in_c; ++c) {
              float acc = 0.0f;
              const std::size_t f_row =
                  f_base + static_cast<std::size_t>(c * g.out_c);
              for (std::int64_t oc = 0; oc < g.out_c; ++oc) {
                acc += gv[g_base + static_cast<std::size_t>(oc)] *
                       fl[f_row + static_cast<std::size_t>(oc)];
              }
              ov[in_base + static_cast<std::size_t>(c)] += acc;
            }
          }
        }
      }
    }
  }
  return out;
}

Tensor Conv2DGradFilter(const Tensor& input, const Shape& filter_shape,
                        const Tensor& grad, int stride,
                        const std::string& padding) {
  const ConvGeometry g =
      MakeGeometry(input.shape(), filter_shape, stride, padding);
  Tensor out = Tensor::Zeros(DType::kFloat32, filter_shape);
  const auto in = input.data<float>();
  const auto gv = grad.data<float>();
  auto ov = out.mutable_data<float>();
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t oh = 0; oh < g.out_h; ++oh) {
      for (std::int64_t ow = 0; ow < g.out_w; ++ow) {
        const std::size_t g_base = static_cast<std::size_t>(
            ((n * g.out_h + oh) * g.out_w + ow) * g.out_c);
        for (std::int64_t fh = 0; fh < g.f_h; ++fh) {
          const std::int64_t ih = oh * g.stride + fh - g.pad_top;
          if (ih < 0 || ih >= g.in_h) continue;
          for (std::int64_t fw = 0; fw < g.f_w; ++fw) {
            const std::int64_t iw = ow * g.stride + fw - g.pad_left;
            if (iw < 0 || iw >= g.in_w) continue;
            const std::size_t in_base = static_cast<std::size_t>(
                ((n * g.in_h + ih) * g.in_w + iw) * g.in_c);
            const std::size_t f_base =
                static_cast<std::size_t>((fh * g.f_w + fw) * g.in_c * g.out_c);
            for (std::int64_t c = 0; c < g.in_c; ++c) {
              const float x = in[in_base + static_cast<std::size_t>(c)];
              if (x == 0.0f) continue;
              const std::size_t f_row =
                  f_base + static_cast<std::size_t>(c * g.out_c);
              for (std::int64_t oc = 0; oc < g.out_c; ++oc) {
                ov[f_row + static_cast<std::size_t>(oc)] +=
                    x * gv[g_base + static_cast<std::size_t>(oc)];
              }
            }
          }
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2D(const Tensor& input, int window, int stride) {
  const PoolGeometry g = MakePoolGeometry(input.shape(), window, stride);
  Tensor out(DType::kFloat32, Shape{g.batch, g.out_h, g.out_w, g.channels});
  const auto in = input.data<float>();
  auto ov = out.mutable_data<float>();
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t oh = 0; oh < g.out_h; ++oh) {
      for (std::int64_t ow = 0; ow < g.out_w; ++ow) {
        for (std::int64_t c = 0; c < g.channels; ++c) {
          float best = std::numeric_limits<float>::lowest();
          for (int wh = 0; wh < window; ++wh) {
            for (int ww = 0; ww < window; ++ww) {
              const std::int64_t ih = oh * stride + wh;
              const std::int64_t iw = ow * stride + ww;
              const float v = in[static_cast<std::size_t>(
                  ((n * g.in_h + ih) * g.in_w + iw) * g.channels + c)];
              best = std::max(best, v);
            }
          }
          ov[static_cast<std::size_t>(
              ((n * g.out_h + oh) * g.out_w + ow) * g.channels + c)] = best;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2DGrad(const Tensor& input, const Tensor& grad, int window,
                     int stride) {
  const PoolGeometry g = MakePoolGeometry(input.shape(), window, stride);
  Tensor out = Tensor::Zeros(DType::kFloat32, input.shape());
  const auto in = input.data<float>();
  const auto gv = grad.data<float>();
  auto ov = out.mutable_data<float>();
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t oh = 0; oh < g.out_h; ++oh) {
      for (std::int64_t ow = 0; ow < g.out_w; ++ow) {
        for (std::int64_t c = 0; c < g.channels; ++c) {
          float best = std::numeric_limits<float>::lowest();
          std::size_t best_index = 0;
          for (int wh = 0; wh < window; ++wh) {
            for (int ww = 0; ww < window; ++ww) {
              const std::int64_t ih = oh * stride + wh;
              const std::int64_t iw = ow * stride + ww;
              const std::size_t idx = static_cast<std::size_t>(
                  ((n * g.in_h + ih) * g.in_w + iw) * g.channels + c);
              if (in[idx] > best) {
                best = in[idx];
                best_index = idx;
              }
            }
          }
          ov[best_index] += gv[static_cast<std::size_t>(
              ((n * g.out_h + oh) * g.out_w + ow) * g.channels + c)];
        }
      }
    }
  }
  return out;
}

Tensor AvgPool2D(const Tensor& input, int window, int stride) {
  const PoolGeometry g = MakePoolGeometry(input.shape(), window, stride);
  Tensor out = Tensor::Zeros(DType::kFloat32,
                             Shape{g.batch, g.out_h, g.out_w, g.channels});
  const auto in = input.data<float>();
  auto ov = out.mutable_data<float>();
  const float scale = 1.0f / static_cast<float>(window * window);
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t oh = 0; oh < g.out_h; ++oh) {
      for (std::int64_t ow = 0; ow < g.out_w; ++ow) {
        for (std::int64_t c = 0; c < g.channels; ++c) {
          float acc = 0.0f;
          for (int wh = 0; wh < window; ++wh) {
            for (int ww = 0; ww < window; ++ww) {
              const std::int64_t ih = oh * stride + wh;
              const std::int64_t iw = ow * stride + ww;
              acc += in[static_cast<std::size_t>(
                  ((n * g.in_h + ih) * g.in_w + iw) * g.channels + c)];
            }
          }
          ov[static_cast<std::size_t>(
              ((n * g.out_h + oh) * g.out_w + ow) * g.channels + c)] =
              acc * scale;
        }
      }
    }
  }
  return out;
}

Tensor AvgPool2DGrad(const Shape& input_shape, const Tensor& grad, int window,
                     int stride) {
  const PoolGeometry g = MakePoolGeometry(input_shape, window, stride);
  Tensor out = Tensor::Zeros(DType::kFloat32, input_shape);
  const auto gv = grad.data<float>();
  auto ov = out.mutable_data<float>();
  const float scale = 1.0f / static_cast<float>(window * window);
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t oh = 0; oh < g.out_h; ++oh) {
      for (std::int64_t ow = 0; ow < g.out_w; ++ow) {
        for (std::int64_t c = 0; c < g.channels; ++c) {
          const float v = gv[static_cast<std::size_t>(
                              ((n * g.out_h + oh) * g.out_w + ow) *
                                  g.channels + c)] * scale;
          for (int wh = 0; wh < window; ++wh) {
            for (int ww = 0; ww < window; ++ww) {
              const std::int64_t ih = oh * stride + wh;
              const std::int64_t iw = ow * stride + ww;
              ov[static_cast<std::size_t>(
                  ((n * g.in_h + ih) * g.in_w + iw) * g.channels + c)] += v;
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace janus::ops
