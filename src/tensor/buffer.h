// Refcounted raw tensor storage.
//
// A Buffer is a lightweight handle to a heap block managed by the
// BufferPool (buffer_pool.h): copying a Buffer bumps an atomic refcount;
// destroying the last handle returns the block to the pool's freelists
// instead of the system allocator. Unlike the shared_ptr<vector<byte>> it
// replaces, allocation never value-initializes the payload — callers that
// need zeroed memory must ask for it (Tensor::Zeros), so fully-written
// kernel outputs pay no redundant memset on the hot path.
#ifndef JANUS_TENSOR_BUFFER_H_
#define JANUS_TENSOR_BUFFER_H_

#include <atomic>
#include <cstddef>
#include <utility>

namespace janus {

namespace internal {

// Header preceding every payload, both pooled and oversize. alignas keeps
// sizeof a multiple of 16 so the payload (which starts immediately after
// the header) is as aligned as the operator-new block itself.
struct alignas(16) BufferControl {
  std::atomic<std::size_t> refs{1};
  std::size_t bytes = 0;     // requested payload size of the live tensor
  std::size_t capacity = 0;  // size-class payload capacity (>= bytes)
  int size_class = -1;       // -1: oversize, never enters a freelist

  std::byte* payload() { return reinterpret_cast<std::byte*>(this + 1); }
  const std::byte* payload() const {
    return reinterpret_cast<const std::byte*>(this + 1);
  }
};

}  // namespace internal

class Buffer {
 public:
  Buffer() = default;

  // Allocates `bytes` of uninitialized storage through BufferPool::Global().
  static Buffer Allocate(std::size_t bytes);

  Buffer(const Buffer& other) : ctrl_(other.ctrl_) { Retain(); }
  Buffer(Buffer&& other) noexcept : ctrl_(std::exchange(other.ctrl_, nullptr)) {}
  Buffer& operator=(const Buffer& other) {
    if (ctrl_ != other.ctrl_) {
      Release();
      ctrl_ = other.ctrl_;
      Retain();
    }
    return *this;
  }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      Release();
      ctrl_ = std::exchange(other.ctrl_, nullptr);
    }
    return *this;
  }
  ~Buffer() { Release(); }

  std::byte* data() const { return ctrl_ == nullptr ? nullptr : ctrl_->payload(); }
  std::size_t size() const { return ctrl_ == nullptr ? 0 : ctrl_->bytes; }

  // True when this handle is the only reference, i.e. the payload may be
  // written without being observable through any other Tensor.
  bool unique() const {
    return ctrl_ != nullptr && ctrl_->refs.load(std::memory_order_acquire) == 1;
  }

  explicit operator bool() const { return ctrl_ != nullptr; }

  // Stable identity of the underlying block while any handle lives (used by
  // the eager tape to associate produced tensors with graph nodes).
  const void* id() const { return ctrl_; }

 private:
  explicit Buffer(internal::BufferControl* ctrl) : ctrl_(ctrl) {}

  void Retain() {
    if (ctrl_ != nullptr) {
      ctrl_->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void Release();

  internal::BufferControl* ctrl_ = nullptr;
};

}  // namespace janus

#endif  // JANUS_TENSOR_BUFFER_H_
