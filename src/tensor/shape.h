// Dense tensor shapes. A Shape is an ordered list of non-negative dimension
// sizes; rank 0 denotes a scalar. Shapes are value types.
#ifndef JANUS_TENSOR_SHAPE_H_
#define JANUS_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace janus {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {}

  int rank() const { return static_cast<int>(dims_.size()); }
  std::int64_t dim(int axis) const;
  const std::vector<std::int64_t>& dims() const { return dims_; }

  // Total number of elements (1 for scalars).
  std::int64_t num_elements() const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  // Row-major strides, in elements.
  std::vector<std::int64_t> Strides() const;

  std::string ToString() const;

 private:
  std::vector<std::int64_t> dims_;
};

// Computes the NumPy-style broadcast of two shapes. Throws InvalidArgument
// if the shapes are incompatible.
Shape BroadcastShapes(const Shape& a, const Shape& b);

}  // namespace janus

#endif  // JANUS_TENSOR_SHAPE_H_
