#include "tensor/buffer.h"

#include "tensor/buffer_pool.h"

namespace janus {

Buffer Buffer::Allocate(std::size_t bytes) {
  internal::BufferControl* ctrl = BufferPool::Global().Allocate(bytes);
  ctrl->bytes = bytes;
  return Buffer(ctrl);
}

void Buffer::Release() {
  if (ctrl_ != nullptr &&
      ctrl_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    BufferPool::Global().Release(ctrl_);
  }
  ctrl_ = nullptr;
}

}  // namespace janus
