// Shape manipulation, indexing, casting, and gather/scatter kernels.
#include <cstring>
#include <numeric>

#include "tensor/ops.h"

namespace janus::ops {
namespace {

int NormalizeAxis(int axis, int rank) {
  if (axis < 0) axis += rank;
  if (axis < 0 || axis >= rank) {
    throw InvalidArgument("axis out of range");
  }
  return axis;
}

template <typename T>
void ConcatImpl(const std::vector<Tensor>& parts, int axis, Tensor& out) {
  // Treat each tensor as (outer, axis_dim, inner) and copy slabs.
  const Shape& shape0 = parts.front().shape();
  std::int64_t outer = 1;
  for (int i = 0; i < axis; ++i) outer *= shape0.dim(i);
  std::int64_t inner = 1;
  for (int i = axis + 1; i < shape0.rank(); ++i) inner *= shape0.dim(i);

  auto ov = out.mutable_data<T>();
  std::int64_t out_axis = out.shape().dim(axis);
  std::int64_t written_axis = 0;
  for (const Tensor& part : parts) {
    const auto pv = part.data<T>();
    const std::int64_t part_axis = part.shape().dim(axis);
    for (std::int64_t o = 0; o < outer; ++o) {
      const std::int64_t src = o * part_axis * inner;
      const std::int64_t dst = (o * out_axis + written_axis) * inner;
      std::memcpy(&ov[static_cast<std::size_t>(dst)],
                  &pv[static_cast<std::size_t>(src)],
                  static_cast<std::size_t>(part_axis * inner) * sizeof(T));
    }
    written_axis += part_axis;
  }
}

}  // namespace

Tensor Reshape(const Tensor& a, const Shape& shape) {
  // Supports a single -1 wildcard dimension.
  std::vector<std::int64_t> dims = shape.dims();
  std::int64_t known = 1;
  int wildcard = -1;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (dims[i] == -1) {
      if (wildcard >= 0) throw InvalidArgument("reshape: multiple -1 dims");
      wildcard = static_cast<int>(i);
    } else {
      known *= dims[i];
    }
  }
  if (wildcard >= 0) {
    if (known == 0 || a.num_elements() % known != 0) {
      throw InvalidArgument("reshape: cannot infer -1 dimension");
    }
    dims[static_cast<std::size_t>(wildcard)] = a.num_elements() / known;
  }
  return a.Reshaped(Shape(std::move(dims)));
}

Tensor BroadcastTo(const Tensor& a, const Shape& shape) {
  if (a.shape() == shape) return a;
  if (BroadcastShapes(a.shape(), shape) != shape) {
    throw InvalidArgument("cannot broadcast " + a.shape().ToString() + " to " +
                          shape.ToString());
  }
  // Reuse Add's broadcasting machinery cheaply: out = a + zeros(shape) for
  // floats would be wasteful for other dtypes, so do an explicit loop.
  Tensor out(a.dtype(), shape);
  const int rank = shape.rank();
  const int offset = rank - a.rank();
  const auto a_strides = a.shape().Strides();
  const std::int64_t n = shape.num_elements();
  std::vector<std::int64_t> strides(static_cast<std::size_t>(rank), 0);
  for (int i = 0; i < a.rank(); ++i) {
    strides[static_cast<std::size_t>(offset + i)] =
        a.dim(i) == 1 ? 0 : a_strides[static_cast<std::size_t>(i)];
  }
  const auto map = [&](std::int64_t out_idx) {
    std::int64_t src = 0;
    std::int64_t rem = out_idx;
    for (int axis = rank - 1; axis >= 0; --axis) {
      const auto u = static_cast<std::size_t>(axis);
      const std::int64_t coord = rem % shape.dim(axis);
      rem /= shape.dim(axis);
      src += coord * strides[u];
    }
    return src;
  };
  const auto copy = [&](auto src_span, auto dst_span) {
    for (std::int64_t i = 0; i < n; ++i) {
      dst_span[static_cast<std::size_t>(i)] =
          src_span[static_cast<std::size_t>(map(i))];
    }
  };
  switch (a.dtype()) {
    case DType::kFloat32:
      copy(a.data<float>(), out.mutable_data<float>());
      break;
    case DType::kInt64:
      copy(a.data<std::int64_t>(), out.mutable_data<std::int64_t>());
      break;
    case DType::kBool:
      copy(a.data<std::uint8_t>(), out.mutable_data<std::uint8_t>());
      break;
  }
  return out;
}

Tensor Concat(const std::vector<Tensor>& parts, int axis) {
  if (parts.empty()) throw InvalidArgument("Concat: no inputs");
  const Tensor& first = parts.front();
  const int norm_axis = NormalizeAxis(axis, first.rank());
  std::int64_t axis_total = 0;
  for (const Tensor& part : parts) {
    if (part.dtype() != first.dtype() || part.rank() != first.rank()) {
      throw InvalidArgument("Concat: dtype/rank mismatch");
    }
    for (int i = 0; i < first.rank(); ++i) {
      if (i != norm_axis && part.dim(i) != first.dim(i)) {
        throw InvalidArgument("Concat: non-axis dimension mismatch");
      }
    }
    axis_total += part.dim(norm_axis);
  }
  std::vector<std::int64_t> out_dims = first.shape().dims();
  out_dims[static_cast<std::size_t>(norm_axis)] = axis_total;
  Tensor out(first.dtype(), Shape(std::move(out_dims)));
  switch (first.dtype()) {
    case DType::kFloat32:
      ConcatImpl<float>(parts, norm_axis, out);
      break;
    case DType::kInt64:
      ConcatImpl<std::int64_t>(parts, norm_axis, out);
      break;
    case DType::kBool:
      ConcatImpl<std::uint8_t>(parts, norm_axis, out);
      break;
  }
  return out;
}

Tensor Stack(const std::vector<Tensor>& parts) {
  if (parts.empty()) throw InvalidArgument("Stack: no inputs");
  std::vector<Tensor> expanded;
  expanded.reserve(parts.size());
  for (const Tensor& part : parts) {
    std::vector<std::int64_t> dims = part.shape().dims();
    dims.insert(dims.begin(), 1);
    expanded.push_back(part.Reshaped(Shape(std::move(dims))));
  }
  return Concat(expanded, 0);
}

Tensor Slice(const Tensor& a, const std::vector<std::int64_t>& begin,
             const std::vector<std::int64_t>& size) {
  if (static_cast<int>(begin.size()) != a.rank() ||
      static_cast<int>(size.size()) != a.rank()) {
    throw InvalidArgument("Slice: begin/size rank mismatch");
  }
  std::vector<std::int64_t> out_dims(begin.size());
  for (int i = 0; i < a.rank(); ++i) {
    const auto u = static_cast<std::size_t>(i);
    const std::int64_t extent =
        size[u] == -1 ? a.dim(i) - begin[u] : size[u];
    if (begin[u] < 0 || extent < 0 || begin[u] + extent > a.dim(i)) {
      throw InvalidArgument("Slice: out of bounds on axis " +
                            std::to_string(i));
    }
    out_dims[u] = extent;
  }
  Shape out_shape(out_dims);
  Tensor out(a.dtype(), out_shape);
  const auto in_strides = a.shape().Strides();
  const std::int64_t n = out_shape.num_elements();
  const auto map = [&](std::int64_t out_idx) {
    std::int64_t src = 0;
    std::int64_t rem = out_idx;
    for (int axis = a.rank() - 1; axis >= 0; --axis) {
      const auto u = static_cast<std::size_t>(axis);
      const std::int64_t coord = rem % out_dims[u];
      rem /= out_dims[u];
      src += (coord + begin[u]) * in_strides[u];
    }
    return src;
  };
  const auto copy = [&](auto src_span, auto dst_span) {
    for (std::int64_t i = 0; i < n; ++i) {
      dst_span[static_cast<std::size_t>(i)] =
          src_span[static_cast<std::size_t>(map(i))];
    }
  };
  switch (a.dtype()) {
    case DType::kFloat32:
      copy(a.data<float>(), out.mutable_data<float>());
      break;
    case DType::kInt64:
      copy(a.data<std::int64_t>(), out.mutable_data<std::int64_t>());
      break;
    case DType::kBool:
      copy(a.data<std::uint8_t>(), out.mutable_data<std::uint8_t>());
      break;
  }
  return out;
}

Tensor Cast(const Tensor& a, DType dtype) {
  if (a.dtype() == dtype) return a;
  Tensor out(dtype, a.shape());
  const std::int64_t n = a.num_elements();
  const auto convert = [&](auto dst_span) {
    using D = typename decltype(dst_span)::value_type;
    for (std::int64_t i = 0; i < n; ++i) {
      dst_span[static_cast<std::size_t>(i)] =
          static_cast<D>(a.ElementAsDouble(i));
    }
  };
  switch (dtype) {
    case DType::kFloat32:
      convert(out.mutable_data<float>());
      break;
    case DType::kInt64:
      convert(out.mutable_data<std::int64_t>());
      break;
    case DType::kBool: {
      auto dst = out.mutable_data<std::uint8_t>();
      for (std::int64_t i = 0; i < n; ++i) {
        dst[static_cast<std::size_t>(i)] =
            a.ElementAsDouble(i) != 0.0 ? 1 : 0;
      }
      break;
    }
  }
  return out;
}

Tensor Gather(const Tensor& params, const Tensor& ids) {
  if (params.rank() != 2) {
    throw InvalidArgument("Gather: params must be rank 2 (vocab, dim)");
  }
  if (ids.dtype() != DType::kInt64) {
    throw InvalidArgument("Gather: ids must be int64");
  }
  const std::int64_t vocab = params.dim(0);
  const std::int64_t dim = params.dim(1);
  std::vector<std::int64_t> out_dims = ids.shape().dims();
  out_dims.push_back(dim);
  Tensor out(params.dtype(), Shape(std::move(out_dims)));
  const auto pv = params.data<float>();
  const auto iv = ids.data<std::int64_t>();
  auto ov = out.mutable_data<float>();
  for (std::size_t i = 0; i < iv.size(); ++i) {
    const std::int64_t id = iv[i];
    if (id < 0 || id >= vocab) {
      throw InvalidArgument("Gather: id " + std::to_string(id) +
                            " out of vocabulary range");
    }
    std::memcpy(&ov[i * static_cast<std::size_t>(dim)],
                &pv[static_cast<std::size_t>(id * dim)],
                static_cast<std::size_t>(dim) * sizeof(float));
  }
  return out;
}

Tensor GatherGrad(const Shape& params_shape, const Tensor& ids,
                  const Tensor& grad) {
  Tensor out = Tensor::Zeros(DType::kFloat32, params_shape);
  const std::int64_t dim = params_shape.dim(1);
  const auto iv = ids.data<std::int64_t>();
  const auto gv = grad.data<float>();
  auto ov = out.mutable_data<float>();
  for (std::size_t i = 0; i < iv.size(); ++i) {
    const auto id = static_cast<std::size_t>(iv[i]);
    for (std::size_t d = 0; d < static_cast<std::size_t>(dim); ++d) {
      ov[id * static_cast<std::size_t>(dim) + d] +=
          gv[i * static_cast<std::size_t>(dim) + d];
    }
  }
  return out;
}

Tensor OneHot(const Tensor& labels, std::int64_t depth) {
  if (labels.dtype() != DType::kInt64) {
    throw InvalidArgument("OneHot: labels must be int64");
  }
  std::vector<std::int64_t> out_dims = labels.shape().dims();
  out_dims.push_back(depth);
  Tensor out = Tensor::Zeros(DType::kFloat32, Shape(std::move(out_dims)));
  const auto lv = labels.data<std::int64_t>();
  auto ov = out.mutable_data<float>();
  for (std::size_t i = 0; i < lv.size(); ++i) {
    const std::int64_t label = lv[i];
    if (label < 0 || label >= depth) {
      throw InvalidArgument("OneHot: label out of range");
    }
    ov[i * static_cast<std::size_t>(depth) + static_cast<std::size_t>(label)] =
        1.0f;
  }
  return out;
}

}  // namespace janus::ops
