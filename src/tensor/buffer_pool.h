// Thread-safe pooled allocator behind Buffer (buffer.h).
//
// Kernel outputs are overwhelmingly short-lived and a handful of distinct
// sizes per graph, so a power-of-two size-class freelist turns the per-op
// make_shared + zero-init of the seed allocator into a pointer pop. Two
// levels, the classic malloc structure (tcmalloc-style):
//  * a lock-free per-thread cache holding up to kThreadCacheBlocks free
//    blocks per class (covers the single-threaded executor and each pool
//    worker without any shared state), and
//  * a mutex-guarded central freelist per class that thread caches spill
//    into and refill from, bounded by kMaxRetainedBytes — blocks beyond the
//    bound go back to the system allocator.
// Allocations larger than the biggest size class bypass the pool entirely.
//
// Counters feed RunMetrics/EngineStats: Snapshot() is cheap (relaxed atomic
// loads), so executors diff it around a run to report per-run allocation
// behaviour.
#ifndef JANUS_TENSOR_BUFFER_POOL_H_
#define JANUS_TENSOR_BUFFER_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "tensor/buffer.h"

namespace janus {

class BufferPool {
 public:
  // Smallest class is 64 B; classes double up to 64 << (kNumClasses-1)
  // (2 MiB). Larger requests are unpooled.
  static constexpr int kNumClasses = 16;
  static constexpr std::size_t kMinClassBytes = 64;
  // Per-class block cap of a thread cache; overflow spills to the central
  // freelist in one batch.
  static constexpr std::size_t kThreadCacheBlocks = 8;
  // Bound on bytes parked in the central freelists. Beyond it, released
  // blocks are freed to the system allocator instead of retained.
  static constexpr std::size_t kMaxRetainedBytes = std::size_t{64} << 20;

  struct Stats {
    std::int64_t allocations = 0;      // Allocate() calls
    std::int64_t pool_hits = 0;        // served from a freelist
    std::int64_t pool_misses = 0;      // fresh system allocation
    std::int64_t bytes_allocated = 0;  // cumulative fresh bytes
    std::int64_t in_place_reuses = 0;  // Tensor::OutputBuffer buffer steals
    std::int64_t retained_bytes = 0;   // currently parked (central + caches)
    std::int64_t trims = 0;
  };

  // The process-wide pool. Intentionally leaked so thread-cache destructors
  // running at thread exit can always flush into it.
  static BufferPool& Global();

  // Returns a block with capacity >= bytes and refs == 1. Payload contents
  // are unspecified (possibly a recycled buffer's old data).
  internal::BufferControl* Allocate(std::size_t bytes);

  // Takes back a block whose refcount reached zero.
  void Release(internal::BufferControl* ctrl);

  // Flushes the calling thread's cache into the central freelists, then
  // frees every centrally retained block. Caches of other live threads are
  // unaffected (they drain on thread exit).
  void Trim();

  Stats Snapshot() const;

  void RecordInPlaceReuse() {
    in_place_reuses_.fetch_add(1, std::memory_order_relaxed);
  }

  // Size-class geometry, exposed for tests: the class index serving
  // `bytes` (kNumClasses for oversize) and a class's payload capacity.
  static int SizeClassFor(std::size_t bytes);
  static std::size_t ClassBytes(int size_class);

 private:
  friend class BufferPoolTestPeer;
  struct ThreadCache;

  BufferPool() = default;

  // The calling thread's cache, or nullptr once it has been destroyed
  // (static-destruction-time releases go straight to the central lists).
  ThreadCache* LocalCache();
  internal::BufferControl* NewBlock(int size_class, std::size_t capacity);
  // Central-freelist operations (batch, one lock each).
  internal::BufferControl* CentralPop(int size_class);
  void CentralPush(int size_class, std::vector<internal::BufferControl*>& blocks);

  Mutex mu_;
  std::vector<internal::BufferControl*> central_[kNumClasses] GUARDED_BY(mu_);

  std::atomic<std::int64_t> allocations_{0};
  std::atomic<std::int64_t> pool_hits_{0};
  std::atomic<std::int64_t> pool_misses_{0};
  std::atomic<std::int64_t> bytes_allocated_{0};
  std::atomic<std::int64_t> in_place_reuses_{0};
  std::atomic<std::int64_t> retained_bytes_{0};
  std::atomic<std::int64_t> trims_{0};
};

}  // namespace janus

#endif  // JANUS_TENSOR_BUFFER_POOL_H_
