// Matrix multiplication, transpose, and reductions.
#include <algorithm>
#include <limits>

#include "tensor/ops.h"

namespace janus::ops {
namespace {

void CheckFloat(const Tensor& t, const char* op) {
  if (t.dtype() != DType::kFloat32) {
    throw InvalidArgument(std::string(op) + ": requires float32 operands");
  }
}

// Normalises a reduction axis list: empty => all axes.
std::vector<int> NormalizeAxes(std::vector<int> axes, int rank) {
  if (axes.empty()) {
    axes.resize(static_cast<std::size_t>(rank));
    for (int i = 0; i < rank; ++i) axes[static_cast<std::size_t>(i)] = i;
    return axes;
  }
  for (int& axis : axes) {
    if (axis < 0) axis += rank;
    if (axis < 0 || axis >= rank) throw InvalidArgument("reduce: bad axis");
  }
  std::sort(axes.begin(), axes.end());
  axes.erase(std::unique(axes.begin(), axes.end()), axes.end());
  return axes;
}

Shape ReducedShape(const Shape& in, const std::vector<int>& axes,
                   bool keep_dims) {
  std::vector<std::int64_t> dims;
  for (int i = 0; i < in.rank(); ++i) {
    const bool reduced = std::binary_search(axes.begin(), axes.end(), i);
    if (reduced) {
      if (keep_dims) dims.push_back(1);
    } else {
      dims.push_back(in.dim(i));
    }
  }
  return Shape(std::move(dims));
}

// Generic reduction: combines elements mapped to the same output slot.
template <typename Combine>
Tensor ReduceImpl(const Tensor& a, const std::vector<int>& axes,
                  bool keep_dims, float init, Combine combine) {
  CheckFloat(a, "Reduce");
  const Shape out_shape = ReducedShape(a.shape(), axes, keep_dims);
  Tensor out = Tensor::Full(out_shape, init);
  const auto av = a.data<float>();
  auto ov = out.mutable_data<float>();
  const auto in_dims = a.shape().dims();
  const int rank = a.rank();
  // Strides of the output viewed at full rank (reduced axes get stride 0).
  std::vector<std::int64_t> out_strides(static_cast<std::size_t>(rank), 0);
  {
    std::int64_t stride = 1;
    for (int i = rank - 1; i >= 0; --i) {
      const auto u = static_cast<std::size_t>(i);
      if (std::binary_search(axes.begin(), axes.end(), i)) {
        out_strides[u] = 0;
      } else {
        out_strides[u] = stride;
        stride *= in_dims[u];
      }
    }
  }
  const std::int64_t n = a.num_elements();
  for (std::int64_t i = 0; i < n; ++i) {
    std::int64_t rem = i;
    std::int64_t out_idx = 0;
    for (int axis = rank - 1; axis >= 0; --axis) {
      const auto u = static_cast<std::size_t>(axis);
      const std::int64_t coord = rem % in_dims[u];
      rem /= in_dims[u];
      out_idx += coord * out_strides[u];
    }
    float& slot = ov[static_cast<std::size_t>(out_idx)];
    slot = combine(slot, av[static_cast<std::size_t>(i)]);
  }
  return out;
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  CheckFloat(a, "MatMul");
  CheckFloat(b, "MatMul");
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw InvalidArgument("MatMul: incompatible shapes " +
                          a.shape().ToString() + " x " + b.shape().ToString());
  }
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(1);
  Tensor out = Tensor::Zeros(DType::kFloat32, Shape{m, n});
  const auto av = a.data<float>();
  const auto bv = b.data<float>();
  auto ov = out.mutable_data<float>();
  // i-k-j loop order for cache-friendly access to b and out rows.
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = av[static_cast<std::size_t>(i * k + kk)];
      if (aik == 0.0f) continue;
      const std::size_t brow = static_cast<std::size_t>(kk * n);
      const std::size_t orow = static_cast<std::size_t>(i * n);
      for (std::int64_t j = 0; j < n; ++j) {
        ov[orow + static_cast<std::size_t>(j)] +=
            aik * bv[brow + static_cast<std::size_t>(j)];
      }
    }
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  CheckFloat(a, "Transpose");
  if (a.rank() != 2) throw InvalidArgument("Transpose: requires rank 2");
  const std::int64_t m = a.dim(0);
  const std::int64_t n = a.dim(1);
  Tensor out(DType::kFloat32, Shape{n, m});
  const auto av = a.data<float>();
  auto ov = out.mutable_data<float>();
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      ov[static_cast<std::size_t>(j * m + i)] =
          av[static_cast<std::size_t>(i * n + j)];
    }
  }
  return out;
}

Tensor ReduceSum(const Tensor& a, std::vector<int> axes, bool keep_dims) {
  const auto norm = NormalizeAxes(std::move(axes), a.rank());
  return ReduceImpl(a, norm, keep_dims, 0.0f,
                    [](float acc, float v) { return acc + v; });
}

Tensor ReduceMean(const Tensor& a, std::vector<int> axes, bool keep_dims) {
  const auto norm = NormalizeAxes(std::move(axes), a.rank());
  std::int64_t count = 1;
  for (const int axis : norm) count *= a.dim(axis);
  Tensor sum = ReduceImpl(a, norm, keep_dims, 0.0f,
                          [](float acc, float v) { return acc + v; });
  return Mul(sum, Tensor::Scalar(1.0f / static_cast<float>(count)));
}

Tensor ReduceMax(const Tensor& a, std::vector<int> axes, bool keep_dims) {
  const auto norm = NormalizeAxes(std::move(axes), a.rank());
  return ReduceImpl(a, norm, keep_dims, std::numeric_limits<float>::lowest(),
                    [](float acc, float v) { return acc > v ? acc : v; });
}

Tensor ReduceToShape(const Tensor& grad, const Shape& target) {
  if (grad.shape() == target) return grad;
  // Sum the leading broadcast axes, then the interior size-1 axes.
  Tensor result = grad;
  while (result.rank() > target.rank()) {
    result = ReduceSum(result, {0}, /*keep_dims=*/false);
  }
  std::vector<int> axes;
  for (int i = 0; i < target.rank(); ++i) {
    if (target.dim(i) == 1 && result.dim(i) != 1) axes.push_back(i);
  }
  if (!axes.empty()) {
    result = ReduceSum(result, axes, /*keep_dims=*/true);
  }
  if (result.shape() != target) {
    // Ranks/dims matched by broadcast rules; a remaining mismatch is a bug.
    throw InternalError("ReduceToShape: could not reduce " +
                        grad.shape().ToString() + " to " + target.ToString());
  }
  return result;
}

Tensor ArgMax(const Tensor& a, int axis) {
  CheckFloat(a, "ArgMax");
  if (axis < 0) axis += a.rank();
  if (axis < 0 || axis >= a.rank()) throw InvalidArgument("ArgMax: bad axis");
  std::int64_t outer = 1;
  for (int i = 0; i < axis; ++i) outer *= a.dim(i);
  const std::int64_t extent = a.dim(axis);
  std::int64_t inner = 1;
  for (int i = axis + 1; i < a.rank(); ++i) inner *= a.dim(i);

  std::vector<std::int64_t> out_dims;
  for (int i = 0; i < a.rank(); ++i) {
    if (i != axis) out_dims.push_back(a.dim(i));
  }
  Tensor out(DType::kInt64, Shape(std::move(out_dims)));
  const auto av = a.data<float>();
  auto ov = out.mutable_data<std::int64_t>();
  for (std::int64_t o = 0; o < outer; ++o) {
    for (std::int64_t in = 0; in < inner; ++in) {
      float best = std::numeric_limits<float>::lowest();
      std::int64_t best_idx = 0;
      for (std::int64_t e = 0; e < extent; ++e) {
        const float v = av[static_cast<std::size_t>((o * extent + e) * inner + in)];
        if (v > best) {
          best = v;
          best_idx = e;
        }
      }
      ov[static_cast<std::size_t>(o * inner + in)] = best_idx;
    }
  }
  return out;
}

Tensor Softmax(const Tensor& logits) {
  CheckFloat(logits, "Softmax");
  if (logits.rank() < 1) throw InvalidArgument("Softmax: rank >= 1 required");
  const Tensor max_vals =
      ReduceMax(logits, {logits.rank() - 1}, /*keep_dims=*/true);
  const Tensor shifted = Sub(logits, max_vals);
  const Tensor exps = Exp(shifted);
  const Tensor denom = ReduceSum(exps, {logits.rank() - 1}, /*keep_dims=*/true);
  return Div(exps, denom);
}

Tensor LogSoftmax(const Tensor& logits) {
  CheckFloat(logits, "LogSoftmax");
  const Tensor max_vals =
      ReduceMax(logits, {logits.rank() - 1}, /*keep_dims=*/true);
  const Tensor shifted = Sub(logits, max_vals);
  const Tensor log_denom = Log(
      ReduceSum(Exp(shifted), {logits.rank() - 1}, /*keep_dims=*/true));
  return Sub(shifted, log_denom);
}

Tensor SoftmaxCrossEntropy(const Tensor& logits, const Tensor& labels) {
  CheckFloat(logits, "SoftmaxCrossEntropy");
  if (logits.rank() != 2) {
    throw InvalidArgument("SoftmaxCrossEntropy: logits must be rank 2");
  }
  const Tensor log_probs = LogSoftmax(logits);
  const Tensor onehot = OneHot(labels, logits.dim(1));
  const Tensor picked = Mul(log_probs, onehot);
  return Neg(ReduceSum(picked, {1}, /*keep_dims=*/false));
}

}  // namespace janus::ops
