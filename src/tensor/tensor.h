// The dense Tensor type used across the whole system: imperative executor,
// dataflow graph runtime, autodiff, and benchmarks.
//
// A Tensor is a shape + dtype + shared immutable buffer. Copying a Tensor is
// cheap (buffer is shared); kernels always allocate fresh outputs. The only
// intentional aliasing mutation is Variable update in the runtime, which
// replaces the buffer wholesale.
#ifndef JANUS_TENSOR_TENSOR_H_
#define JANUS_TENSOR_TENSOR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "tensor/shape.h"

namespace janus {

enum class DType : std::uint8_t { kFloat32, kInt64, kBool };

const char* DTypeName(DType dtype);
std::size_t DTypeSize(DType dtype);

class Tensor {
 public:
  // Default: float32 scalar 0.
  Tensor();

  // Allocates an uninitialised tensor (use the factories below instead
  // where possible).
  Tensor(DType dtype, Shape shape);

  static Tensor Zeros(DType dtype, const Shape& shape);
  static Tensor Full(const Shape& shape, float value);
  static Tensor FullInt(const Shape& shape, std::int64_t value);
  static Tensor Scalar(float value);
  static Tensor ScalarInt(std::int64_t value);
  static Tensor ScalarBool(bool value);
  static Tensor FromVector(const std::vector<float>& values, Shape shape);
  static Tensor FromVectorInt(const std::vector<std::int64_t>& values,
                              Shape shape);

  DType dtype() const { return dtype_; }
  const Shape& shape() const { return shape_; }
  std::int64_t num_elements() const { return shape_.num_elements(); }
  int rank() const { return shape_.rank(); }
  std::int64_t dim(int axis) const { return shape_.dim(axis); }

  // Typed element access. The requested type must match dtype().
  template <typename T>
  std::span<const T> data() const {
    CheckType<T>();
    return {static_cast<const T*>(raw()), static_cast<std::size_t>(num_elements())};
  }

  template <typename T>
  std::span<T> mutable_data() {
    CheckType<T>();
    return {static_cast<T*>(raw()), static_cast<std::size_t>(num_elements())};
  }

  // Scalar convenience readers (tensor must have exactly one element).
  float ScalarValue() const;
  std::int64_t ScalarIntValue() const;
  bool ScalarBoolValue() const;
  // Reads element 0 of any dtype as double (for metrics/printing).
  double ElementAsDouble(std::int64_t index) const;

  // Returns a tensor sharing this buffer but with a different shape of the
  // same element count.
  Tensor Reshaped(Shape new_shape) const;

  // Deep equality (dtype, shape, and every element).
  bool ElementsEqual(const Tensor& other) const;

  // Identity of the underlying buffer (shared across Reshaped views). Used
  // by the eager tape to associate produced tensors with graph nodes.
  const void* data_id() const { return buffer_.get(); }

  std::string ToString(std::int64_t max_elements = 16) const;

 private:
  template <typename T>
  void CheckType() const {
    const bool ok = (std::is_same_v<T, float> && dtype_ == DType::kFloat32) ||
                    (std::is_same_v<T, std::int64_t> && dtype_ == DType::kInt64) ||
                    (std::is_same_v<T, std::uint8_t> && dtype_ == DType::kBool);
    if (!ok) {
      throw InternalError(std::string("tensor dtype mismatch: tensor is ") +
                          DTypeName(dtype_));
    }
  }

  const void* raw() const { return buffer_->data(); }
  void* raw() { return buffer_->data(); }

  DType dtype_;
  Shape shape_;
  std::shared_ptr<std::vector<std::byte>> buffer_;
};

}  // namespace janus

#endif  // JANUS_TENSOR_TENSOR_H_
