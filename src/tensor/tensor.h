// The dense Tensor type used across the whole system: imperative executor,
// dataflow graph runtime, autodiff, and benchmarks.
//
// A Tensor is a shape + dtype + shared immutable buffer. Copying a Tensor is
// cheap (buffer is refcounted); kernels allocate fresh outputs through the
// pooled allocator (buffer_pool.h) — or, inside an InPlaceScope, may steal a
// dying input's buffer via OutputBuffer. The only intentional aliasing
// mutation is Variable update in the runtime, which replaces the buffer
// wholesale.
#ifndef JANUS_TENSOR_TENSOR_H_
#define JANUS_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "tensor/buffer.h"
#include "tensor/shape.h"

namespace janus {

enum class DType : std::uint8_t { kFloat32, kInt64, kBool };

const char* DTypeName(DType dtype);
std::size_t DTypeSize(DType dtype);

// RAII opt-in for in-place buffer reuse on the current thread. The graph
// executors establish a scope around each kernel invocation whose node the
// memory plan marked in-place capable; inside it, Tensor::OutputBuffer may
// hand a kernel a dying input's buffer as its output storage. Everywhere
// else (eager dispatch, direct ops:: calls) the scope is inactive and every
// output is freshly allocated, so a uniquely-referenced caller tensor can
// never be mutated behind the caller's back.
class InPlaceScope {
 public:
  explicit InPlaceScope(bool enabled);
  InPlaceScope(const InPlaceScope&) = delete;
  InPlaceScope& operator=(const InPlaceScope&) = delete;
  ~InPlaceScope();

  static bool Active();

 private:
  bool saved_;
};

class Tensor {
 public:
  // Default: float32 scalar 0, sharing one process-global immutable buffer
  // (a placeholder value, allocation-free to construct). Assign a real
  // tensor over it; never write its elements through mutable_data().
  Tensor();

  // Allocates a tensor with UNINITIALIZED contents (use the factories below
  // instead where possible; prefer the explicit Uninitialized name in new
  // code).
  Tensor(DType dtype, Shape shape);

  // Uninitialized storage: for kernels that overwrite every element. The
  // payload may hold a recycled buffer's old data — never read before
  // writing.
  static Tensor Uninitialized(DType dtype, const Shape& shape);
  static Tensor Zeros(DType dtype, const Shape& shape);

  // Output-allocation helper for elementwise kernels: inside an active
  // InPlaceScope, returns a tensor sharing the first reuse candidate that is
  // uniquely referenced and byte-size compatible (the kernel then writes the
  // output over the dead input, index for index); otherwise returns
  // Uninitialized(dtype, shape). Candidates must only be written by loops
  // where output element i depends on nothing but candidate element i.
  static Tensor OutputBuffer(
      std::initializer_list<const Tensor*> reuse_candidates, DType dtype,
      const Shape& shape);
  // As above, for candidate lists built at run time (fused-region execution
  // collects its full-size external inputs dynamically).
  static Tensor OutputBuffer(std::span<const Tensor* const> reuse_candidates,
                             DType dtype, const Shape& shape);
  static Tensor Full(const Shape& shape, float value);
  static Tensor FullInt(const Shape& shape, std::int64_t value);
  static Tensor Scalar(float value);
  static Tensor ScalarInt(std::int64_t value);
  static Tensor ScalarBool(bool value);
  static Tensor FromVector(const std::vector<float>& values, Shape shape);
  static Tensor FromVectorInt(const std::vector<std::int64_t>& values,
                              Shape shape);

  DType dtype() const { return dtype_; }
  const Shape& shape() const { return shape_; }
  std::int64_t num_elements() const { return shape_.num_elements(); }
  int rank() const { return shape_.rank(); }
  std::int64_t dim(int axis) const { return shape_.dim(axis); }
  std::size_t byte_size() const {
    return static_cast<std::size_t>(num_elements()) * DTypeSize(dtype_);
  }

  // True when this tensor holds the only reference to its buffer.
  bool BufferUnique() const { return buffer_.unique(); }
  bool SharesBufferWith(const Tensor& other) const {
    return buffer_.id() == other.buffer_.id();
  }

  // Typed element access. The requested type must match dtype().
  template <typename T>
  std::span<const T> data() const {
    CheckType<T>();
    return {static_cast<const T*>(raw()), static_cast<std::size_t>(num_elements())};
  }

  template <typename T>
  std::span<T> mutable_data() {
    CheckType<T>();
    return {static_cast<T*>(raw()), static_cast<std::size_t>(num_elements())};
  }

  // Scalar convenience readers (tensor must have exactly one element).
  float ScalarValue() const;
  std::int64_t ScalarIntValue() const;
  bool ScalarBoolValue() const;
  // Reads element 0 of any dtype as double (for metrics/printing).
  double ElementAsDouble(std::int64_t index) const;

  // Returns a tensor sharing this buffer but with a different shape of the
  // same element count.
  Tensor Reshaped(Shape new_shape) const;

  // Deep equality (dtype, shape, and every element).
  bool ElementsEqual(const Tensor& other) const;

  // Identity of the underlying buffer (shared across Reshaped views). Used
  // by the eager tape to associate produced tensors with graph nodes.
  const void* data_id() const { return buffer_.id(); }

  std::string ToString(std::int64_t max_elements = 16) const;

 private:
  template <typename T>
  void CheckType() const {
    const bool ok = (std::is_same_v<T, float> && dtype_ == DType::kFloat32) ||
                    (std::is_same_v<T, std::int64_t> && dtype_ == DType::kInt64) ||
                    (std::is_same_v<T, std::uint8_t> && dtype_ == DType::kBool);
    if (!ok) {
      throw InternalError(std::string("tensor dtype mismatch: tensor is ") +
                          DTypeName(dtype_));
    }
  }

  const void* raw() const { return buffer_.data(); }
  void* raw() { return buffer_.data(); }

  DType dtype_;
  Shape shape_;
  Buffer buffer_;
};

}  // namespace janus

#endif  // JANUS_TENSOR_TENSOR_H_
