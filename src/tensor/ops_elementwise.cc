// Broadcasting elementwise kernels, comparisons, logical ops, and unary math.
#include <cmath>
#include <functional>

#include "tensor/ops.h"

namespace janus::ops {
namespace {

// Iterates an output shape, mapping each output linear index to the linear
// indices of two broadcast inputs (stride 0 on size-1 dims).
class BroadcastIndexer {
 public:
  BroadcastIndexer(const Shape& a, const Shape& b, const Shape& out)
      : rank_(out.rank()), out_dims_(out.dims()) {
    const auto pad_strides = [&](const Shape& s) {
      std::vector<std::int64_t> strides(static_cast<std::size_t>(rank_), 0);
      const auto native = s.Strides();
      const int offset = rank_ - s.rank();
      for (int i = 0; i < s.rank(); ++i) {
        const auto out_axis = static_cast<std::size_t>(offset + i);
        strides[out_axis] =
            s.dim(i) == 1 ? 0 : native[static_cast<std::size_t>(i)];
      }
      return strides;
    };
    a_strides_ = pad_strides(a);
    b_strides_ = pad_strides(b);
  }

  // Computes (a_index, b_index) for the given output linear index.
  std::pair<std::int64_t, std::int64_t> Map(std::int64_t out_index) const {
    std::int64_t a = 0;
    std::int64_t b = 0;
    std::int64_t rem = out_index;
    for (int axis = rank_ - 1; axis >= 0; --axis) {
      const auto i = static_cast<std::size_t>(axis);
      const std::int64_t coord = rem % out_dims_[i];
      rem /= out_dims_[i];
      a += coord * a_strides_[i];
      b += coord * b_strides_[i];
    }
    return {a, b};
  }

 private:
  int rank_;
  std::vector<std::int64_t> out_dims_;
  std::vector<std::int64_t> a_strides_;
  std::vector<std::int64_t> b_strides_;
};

void CheckSameDType(const Tensor& a, const Tensor& b, const char* op) {
  if (a.dtype() != b.dtype()) {
    throw InvalidArgument(std::string(op) + ": dtype mismatch (" +
                          DTypeName(a.dtype()) + " vs " +
                          DTypeName(b.dtype()) + ")");
  }
}

template <typename T, typename F>
Tensor BinaryImpl(const Tensor& a, const Tensor& b, DType out_dtype, F fn) {
  const Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  // With identical operand shapes every write to output element i reads only
  // operand element i, so (under an active InPlaceScope) the output may
  // overwrite a dying operand's buffer. Broadcast outputs must not alias an
  // operand: stride-0 dims re-read elements after earlier writes.
  const bool same_shape = a.shape() == b.shape();
  Tensor out = same_shape ? Tensor::OutputBuffer({&a, &b}, out_dtype, out_shape)
                          : Tensor::Uninitialized(out_dtype, out_shape);
  const auto av = a.data<T>();
  const auto bv = b.data<T>();
  const std::int64_t n = out_shape.num_elements();
  // Fast path: identical shapes — no index mapping needed.
  if (same_shape) {
    if constexpr (std::is_same_v<T, float>) {
      if (out_dtype == DType::kFloat32) {
        auto ov = out.mutable_data<float>();
        for (std::int64_t i = 0; i < n; ++i) {
          const auto u = static_cast<std::size_t>(i);
          ov[u] = fn(av[u], bv[u]);
        }
        return out;
      }
    }
  }
  const BroadcastIndexer indexer(a.shape(), b.shape(), out_shape);
  const auto write = [&](auto span) {
    for (std::int64_t i = 0; i < n; ++i) {
      const auto [ai, bi] = indexer.Map(i);
      span[static_cast<std::size_t>(i)] =
          fn(av[static_cast<std::size_t>(ai)], bv[static_cast<std::size_t>(bi)]);
    }
  };
  switch (out_dtype) {
    case DType::kFloat32:
      write(out.mutable_data<float>());
      break;
    case DType::kInt64:
      write(out.mutable_data<std::int64_t>());
      break;
    case DType::kBool:
      write(out.mutable_data<std::uint8_t>());
      break;
  }
  return out;
}

// Dispatches a numeric binary op over float32 / int64 operands.
template <typename FF, typename FI>
Tensor NumericBinary(const char* name, const Tensor& a, const Tensor& b,
                     FF ffn, FI ifn) {
  CheckSameDType(a, b, name);
  switch (a.dtype()) {
    case DType::kFloat32:
      return BinaryImpl<float>(a, b, DType::kFloat32, ffn);
    case DType::kInt64:
      return BinaryImpl<std::int64_t>(a, b, DType::kInt64, ifn);
    case DType::kBool:
      throw InvalidArgument(std::string(name) + ": bool operands unsupported");
  }
  throw InternalError("unreachable dtype");
}

template <typename F>
Tensor Compare(const char* name, const Tensor& a, const Tensor& b, F fn) {
  CheckSameDType(a, b, name);
  switch (a.dtype()) {
    case DType::kFloat32:
      return BinaryImpl<float>(a, b, DType::kBool, [&](float x, float y) {
        return static_cast<std::uint8_t>(fn(x, y) ? 1 : 0);
      });
    case DType::kInt64:
      return BinaryImpl<std::int64_t>(
          a, b, DType::kBool, [&](std::int64_t x, std::int64_t y) {
            return static_cast<std::uint8_t>(fn(x, y) ? 1 : 0);
          });
    case DType::kBool:
      return BinaryImpl<std::uint8_t>(
          a, b, DType::kBool, [&](std::uint8_t x, std::uint8_t y) {
            return static_cast<std::uint8_t>(fn(x != 0, y != 0) ? 1 : 0);
          });
  }
  throw InternalError("unreachable dtype");
}

template <typename F>
Tensor UnaryFloat(const char* name, const Tensor& a, F fn) {
  if (a.dtype() != DType::kFloat32) {
    throw InvalidArgument(std::string(name) + ": requires float32 operand");
  }
  Tensor out = Tensor::OutputBuffer({&a}, DType::kFloat32, a.shape());
  const auto av = a.data<float>();
  auto ov = out.mutable_data<float>();
  for (std::size_t i = 0; i < av.size(); ++i) ov[i] = fn(av[i]);
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return NumericBinary(
      "Add", a, b, [](float x, float y) { return x + y; },
      [](std::int64_t x, std::int64_t y) { return x + y; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return NumericBinary(
      "Sub", a, b, [](float x, float y) { return x - y; },
      [](std::int64_t x, std::int64_t y) { return x - y; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return NumericBinary(
      "Mul", a, b, [](float x, float y) { return x * y; },
      [](std::int64_t x, std::int64_t y) { return x * y; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  CheckSameDType(a, b, "Div");
  if (a.dtype() == DType::kInt64) {
    // True division promotes to float, as in Python 3.
    return Div(Cast(a, DType::kFloat32), Cast(b, DType::kFloat32));
  }
  return BinaryImpl<float>(a, b, DType::kFloat32,
                           [](float x, float y) { return x / y; });
}

Tensor FloorDiv(const Tensor& a, const Tensor& b) {
  return NumericBinary(
      "FloorDiv", a, b,
      [](float x, float y) { return std::floor(x / y); },
      [](std::int64_t x, std::int64_t y) {
        if (y == 0) throw InvalidArgument("integer division by zero");
        std::int64_t q = x / y;
        if ((x % y != 0) && ((x < 0) != (y < 0))) --q;
        return q;
      });
}

Tensor Mod(const Tensor& a, const Tensor& b) {
  return NumericBinary(
      "Mod", a, b,
      [](float x, float y) { return x - y * std::floor(x / y); },
      [](std::int64_t x, std::int64_t y) {
        if (y == 0) throw InvalidArgument("integer modulo by zero");
        std::int64_t r = x % y;
        if (r != 0 && ((r < 0) != (y < 0))) r += y;
        return r;
      });
}

Tensor Pow(const Tensor& a, const Tensor& b) {
  return NumericBinary(
      "Pow", a, b, [](float x, float y) { return std::pow(x, y); },
      [](std::int64_t x, std::int64_t y) {
        std::int64_t result = 1;
        for (std::int64_t i = 0; i < y; ++i) result *= x;
        return result;
      });
}

Tensor Maximum(const Tensor& a, const Tensor& b) {
  return NumericBinary(
      "Maximum", a, b, [](float x, float y) { return x > y ? x : y; },
      [](std::int64_t x, std::int64_t y) { return x > y ? x : y; });
}

Tensor Minimum(const Tensor& a, const Tensor& b) {
  return NumericBinary(
      "Minimum", a, b, [](float x, float y) { return x < y ? x : y; },
      [](std::int64_t x, std::int64_t y) { return x < y ? x : y; });
}

Tensor Equal(const Tensor& a, const Tensor& b) {
  return Compare("Equal", a, b, [](auto x, auto y) { return x == y; });
}
Tensor NotEqual(const Tensor& a, const Tensor& b) {
  return Compare("NotEqual", a, b, [](auto x, auto y) { return x != y; });
}
Tensor Less(const Tensor& a, const Tensor& b) {
  return Compare("Less", a, b, [](auto x, auto y) { return x < y; });
}
Tensor LessEqual(const Tensor& a, const Tensor& b) {
  return Compare("LessEqual", a, b, [](auto x, auto y) { return x <= y; });
}
Tensor Greater(const Tensor& a, const Tensor& b) {
  return Compare("Greater", a, b, [](auto x, auto y) { return x > y; });
}
Tensor GreaterEqual(const Tensor& a, const Tensor& b) {
  return Compare("GreaterEqual", a, b, [](auto x, auto y) { return x >= y; });
}

Tensor LogicalAnd(const Tensor& a, const Tensor& b) {
  CheckSameDType(a, b, "LogicalAnd");
  return BinaryImpl<std::uint8_t>(
      a, b, DType::kBool, [](std::uint8_t x, std::uint8_t y) {
        return static_cast<std::uint8_t>((x != 0 && y != 0) ? 1 : 0);
      });
}

Tensor LogicalOr(const Tensor& a, const Tensor& b) {
  CheckSameDType(a, b, "LogicalOr");
  return BinaryImpl<std::uint8_t>(
      a, b, DType::kBool, [](std::uint8_t x, std::uint8_t y) {
        return static_cast<std::uint8_t>((x != 0 || y != 0) ? 1 : 0);
      });
}

Tensor LogicalNot(const Tensor& a) {
  if (a.dtype() != DType::kBool) {
    throw InvalidArgument("LogicalNot: requires bool operand");
  }
  Tensor out = Tensor::OutputBuffer({&a}, DType::kBool, a.shape());
  const auto av = a.data<std::uint8_t>();
  auto ov = out.mutable_data<std::uint8_t>();
  for (std::size_t i = 0; i < av.size(); ++i) ov[i] = av[i] != 0 ? 0 : 1;
  return out;
}

Tensor Neg(const Tensor& a) {
  if (a.dtype() == DType::kInt64) {
    Tensor out = Tensor::OutputBuffer({&a}, DType::kInt64, a.shape());
    const auto av = a.data<std::int64_t>();
    auto ov = out.mutable_data<std::int64_t>();
    for (std::size_t i = 0; i < av.size(); ++i) ov[i] = -av[i];
    return out;
  }
  return UnaryFloat("Neg", a, [](float x) { return -x; });
}

Tensor Abs(const Tensor& a) {
  if (a.dtype() == DType::kInt64) {
    Tensor out = Tensor::OutputBuffer({&a}, DType::kInt64, a.shape());
    const auto av = a.data<std::int64_t>();
    auto ov = out.mutable_data<std::int64_t>();
    for (std::size_t i = 0; i < av.size(); ++i)
      ov[i] = av[i] < 0 ? -av[i] : av[i];
    return out;
  }
  return UnaryFloat("Abs", a, [](float x) { return std::fabs(x); });
}

Tensor Sign(const Tensor& a) {
  return UnaryFloat("Sign", a, [](float x) {
    return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f);
  });
}

Tensor Exp(const Tensor& a) {
  return UnaryFloat("Exp", a, [](float x) { return std::exp(x); });
}
Tensor Log(const Tensor& a) {
  return UnaryFloat("Log", a, [](float x) { return std::log(x); });
}
Tensor Sqrt(const Tensor& a) {
  return UnaryFloat("Sqrt", a, [](float x) { return std::sqrt(x); });
}
Tensor Square(const Tensor& a) {
  return UnaryFloat("Square", a, [](float x) { return x * x; });
}
Tensor Tanh(const Tensor& a) {
  return UnaryFloat("Tanh", a, [](float x) { return std::tanh(x); });
}
Tensor Sigmoid(const Tensor& a) {
  return UnaryFloat("Sigmoid", a,
                    [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}
Tensor Relu(const Tensor& a) {
  return UnaryFloat("Relu", a, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor ReluGrad(const Tensor& grad, const Tensor& x) {
  if (grad.shape() != x.shape()) {
    throw InvalidArgument("ReluGrad: shape mismatch");
  }
  Tensor out = Tensor::OutputBuffer({&grad, &x}, DType::kFloat32, x.shape());
  const auto gv = grad.data<float>();
  const auto xv = x.data<float>();
  auto ov = out.mutable_data<float>();
  for (std::size_t i = 0; i < xv.size(); ++i)
    ov[i] = xv[i] > 0.0f ? gv[i] : 0.0f;
  return out;
}

Tensor Select(const Tensor& cond, const Tensor& a, const Tensor& b) {
  if (cond.dtype() != DType::kBool) {
    throw InvalidArgument("Select: condition must be bool");
  }
  CheckSameDType(a, b, "Select");
  const Shape out_shape =
      BroadcastShapes(BroadcastShapes(cond.shape(), a.shape()), b.shape());
  const Tensor cb = BroadcastTo(cond, out_shape);
  const Tensor ab = BroadcastTo(a, out_shape);
  const Tensor bb = BroadcastTo(b, out_shape);
  Tensor out(a.dtype(), out_shape);
  const auto cv = cb.data<std::uint8_t>();
  const std::int64_t n = out_shape.num_elements();
  const auto pick = [&](auto av, auto bv, auto ov) {
    for (std::int64_t i = 0; i < n; ++i) {
      const auto u = static_cast<std::size_t>(i);
      ov[u] = cv[u] != 0 ? av[u] : bv[u];
    }
  };
  switch (a.dtype()) {
    case DType::kFloat32:
      pick(ab.data<float>(), bb.data<float>(), out.mutable_data<float>());
      break;
    case DType::kInt64:
      pick(ab.data<std::int64_t>(), bb.data<std::int64_t>(),
           out.mutable_data<std::int64_t>());
      break;
    case DType::kBool:
      pick(ab.data<std::uint8_t>(), bb.data<std::uint8_t>(),
           out.mutable_data<std::uint8_t>());
      break;
  }
  return out;
}

Tensor RandomNormal(const Shape& shape, float mean, float stddev, Rng& rng) {
  Tensor out(DType::kFloat32, shape);
  for (float& v : out.mutable_data<float>())
    v = static_cast<float>(rng.Normal(mean, stddev));
  return out;
}

Tensor RandomUniform(const Shape& shape, float lo, float hi, Rng& rng) {
  Tensor out(DType::kFloat32, shape);
  for (float& v : out.mutable_data<float>())
    v = static_cast<float>(rng.Uniform(lo, hi));
  return out;
}

}  // namespace janus::ops
