#include "tensor/tensor.h"

#include <cstring>
#include <sstream>

#include "tensor/buffer_pool.h"

namespace janus {

namespace {
thread_local bool g_in_place_scope_active = false;
}  // namespace

InPlaceScope::InPlaceScope(bool enabled) : saved_(g_in_place_scope_active) {
  g_in_place_scope_active = enabled;
}

InPlaceScope::~InPlaceScope() { g_in_place_scope_active = saved_; }

bool InPlaceScope::Active() { return g_in_place_scope_active; }

const char* DTypeName(DType dtype) {
  switch (dtype) {
    case DType::kFloat32:
      return "float32";
    case DType::kInt64:
      return "int64";
    case DType::kBool:
      return "bool";
  }
  // A dtype added without updating this switch must fail loudly: a silent
  // placeholder here would pair with a 0-byte buffer from a DTypeSize-style
  // fallback downstream.
  JANUS_EXPECTS(!"unhandled DType in DTypeName");
  return nullptr;
}

std::size_t DTypeSize(DType dtype) {
  switch (dtype) {
    case DType::kFloat32:
      return sizeof(float);
    case DType::kInt64:
      return sizeof(std::int64_t);
    case DType::kBool:
      return sizeof(std::uint8_t);
  }
  JANUS_EXPECTS(!"unhandled DType in DTypeSize");
  return 0;
}

Tensor::Tensor() : dtype_(DType::kFloat32), shape_(Shape{}) {
  // All default-constructed tensors share one immutable zero-scalar buffer:
  // executors default-construct placeholder tensors in bulk (kernel output
  // slots, dead dataflow tokens) and immediately overwrite them wholesale,
  // so giving each its own allocation is pure hot-path waste. The shared
  // buffer's refcount never drops to one, so it can never be stolen for
  // in-place reuse. Its elements must never be written (see tensor.h).
  static const Tensor zero = [] {
    Tensor t(DType::kFloat32, Shape{});
    t.mutable_data<float>()[0] = 0.0f;
    return t;
  }();
  buffer_ = zero.buffer_;
}

Tensor::Tensor(DType dtype, Shape shape)
    : dtype_(dtype),
      shape_(std::move(shape)),
      buffer_(Buffer::Allocate(static_cast<std::size_t>(shape_.num_elements()) *
                               DTypeSize(dtype))) {}

Tensor Tensor::Uninitialized(DType dtype, const Shape& shape) {
  return Tensor(dtype, shape);
}

Tensor Tensor::Zeros(DType dtype, const Shape& shape) {
  // The single zeroing path: pooled allocation hands back recycled payloads,
  // so this memset is what establishes the zeros.
  Tensor t = Uninitialized(dtype, shape);
  std::memset(t.raw(), 0, t.byte_size());
  return t;
}

Tensor Tensor::OutputBuffer(
    std::initializer_list<const Tensor*> reuse_candidates, DType dtype,
    const Shape& shape) {
  return OutputBuffer(
      std::span<const Tensor* const>(reuse_candidates.begin(),
                                     reuse_candidates.size()),
      dtype, shape);
}

Tensor Tensor::OutputBuffer(std::span<const Tensor* const> reuse_candidates,
                            DType dtype, const Shape& shape) {
  if (InPlaceScope::Active()) {
    const std::size_t bytes =
        static_cast<std::size_t>(shape.num_elements()) * DTypeSize(dtype);
    for (const Tensor* candidate : reuse_candidates) {
      if (candidate->buffer_.unique() && candidate->byte_size() == bytes) {
        Tensor t = *candidate;
        t.dtype_ = dtype;
        t.shape_ = shape;
        BufferPool::Global().RecordInPlaceReuse();
        return t;
      }
    }
  }
  return Uninitialized(dtype, shape);
}

Tensor Tensor::Full(const Shape& shape, float value) {
  Tensor t(DType::kFloat32, shape);
  for (float& v : t.mutable_data<float>()) v = value;
  return t;
}

Tensor Tensor::FullInt(const Shape& shape, std::int64_t value) {
  Tensor t(DType::kInt64, shape);
  for (std::int64_t& v : t.mutable_data<std::int64_t>()) v = value;
  return t;
}

Tensor Tensor::Scalar(float value) { return Full(Shape{}, value); }

Tensor Tensor::ScalarInt(std::int64_t value) { return FullInt(Shape{}, value); }

Tensor Tensor::ScalarBool(bool value) {
  Tensor t(DType::kBool, Shape{});
  t.mutable_data<std::uint8_t>()[0] = value ? 1 : 0;
  return t;
}

Tensor Tensor::FromVector(const std::vector<float>& values, Shape shape) {
  JANUS_EXPECTS(static_cast<std::int64_t>(values.size()) ==
                shape.num_elements());
  Tensor t(DType::kFloat32, std::move(shape));
  std::memcpy(t.raw(), values.data(), values.size() * sizeof(float));
  return t;
}

Tensor Tensor::FromVectorInt(const std::vector<std::int64_t>& values,
                             Shape shape) {
  JANUS_EXPECTS(static_cast<std::int64_t>(values.size()) ==
                shape.num_elements());
  Tensor t(DType::kInt64, std::move(shape));
  std::memcpy(t.raw(), values.data(), values.size() * sizeof(std::int64_t));
  return t;
}

float Tensor::ScalarValue() const {
  JANUS_EXPECTS(num_elements() == 1);
  return data<float>()[0];
}

std::int64_t Tensor::ScalarIntValue() const {
  JANUS_EXPECTS(num_elements() == 1);
  return data<std::int64_t>()[0];
}

bool Tensor::ScalarBoolValue() const {
  JANUS_EXPECTS(num_elements() == 1);
  if (dtype_ == DType::kBool) return data<std::uint8_t>()[0] != 0;
  if (dtype_ == DType::kFloat32) return data<float>()[0] != 0.0f;
  return data<std::int64_t>()[0] != 0;
}

double Tensor::ElementAsDouble(std::int64_t index) const {
  JANUS_EXPECTS(index >= 0 && index < num_elements());
  const auto i = static_cast<std::size_t>(index);
  switch (dtype_) {
    case DType::kFloat32:
      return static_cast<double>(data<float>()[i]);
    case DType::kInt64:
      return static_cast<double>(data<std::int64_t>()[i]);
    case DType::kBool:
      return data<std::uint8_t>()[i] != 0 ? 1.0 : 0.0;
  }
  return 0.0;
}

Tensor Tensor::Reshaped(Shape new_shape) const {
  if (new_shape.num_elements() != num_elements()) {
    throw InvalidArgument("reshape from " + shape_.ToString() + " to " +
                          new_shape.ToString() + " changes element count");
  }
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

bool Tensor::ElementsEqual(const Tensor& other) const {
  if (dtype_ != other.dtype_ || shape_ != other.shape_) return false;
  return std::memcmp(raw(), other.raw(), byte_size()) == 0;
}

std::string Tensor::ToString(std::int64_t max_elements) const {
  std::ostringstream oss;
  oss << "Tensor<" << DTypeName(dtype_) << ", " << shape_.ToString() << ">[";
  const std::int64_t n = std::min(num_elements(), max_elements);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i > 0) oss << ", ";
    oss << ElementAsDouble(i);
  }
  if (n < num_elements()) oss << ", ...";
  oss << ']';
  return oss.str();
}

}  // namespace janus
