#include "tensor/shape.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace janus {

std::int64_t Shape::dim(int axis) const {
  if (axis < 0) axis += rank();
  JANUS_EXPECTS(axis >= 0 && axis < rank());
  return dims_[static_cast<std::size_t>(axis)];
}

std::int64_t Shape::num_elements() const {
  std::int64_t n = 1;
  for (const std::int64_t d : dims_) n *= d;
  return n;
}

std::vector<std::int64_t> Shape::Strides() const {
  std::vector<std::int64_t> strides(dims_.size(), 1);
  for (int i = rank() - 2; i >= 0; --i) {
    const auto idx = static_cast<std::size_t>(i);
    strides[idx] = strides[idx + 1] * dims_[idx + 1];
  }
  return strides;
}

std::string Shape::ToString() const {
  std::ostringstream oss;
  oss << '(';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << dims_[i];
  }
  oss << ')';
  return oss.str();
}

Shape BroadcastShapes(const Shape& a, const Shape& b) {
  const int rank = std::max(a.rank(), b.rank());
  std::vector<std::int64_t> dims(static_cast<std::size_t>(rank), 1);
  for (int i = 0; i < rank; ++i) {
    const std::int64_t da = i < a.rank() ? a.dim(a.rank() - 1 - i) : 1;
    const std::int64_t db = i < b.rank() ? b.dim(b.rank() - 1 - i) : 1;
    if (da != db && da != 1 && db != 1) {
      throw InvalidArgument("cannot broadcast shapes " + a.ToString() +
                            " and " + b.ToString());
    }
    dims[static_cast<std::size_t>(rank - 1 - i)] = std::max(da, db);
  }
  return Shape(std::move(dims));
}

}  // namespace janus
