#include "verify/corruption.h"

#include <unordered_set>
#include <utility>

namespace janus {
namespace verify {
namespace {

using DagInput = ExecutionPlan::DagInput;
using DagNode = ExecutionPlan::DagNode;
using DynNode = ExecutionPlan::DynNode;
using OpKind = ExecutionPlan::OpKind;

// All nodes that belong to any fused region of the plan (interiors + roots).
std::unordered_set<const Node*> RegionMembers(PlanCorruptor& c) {
  std::unordered_set<const Node*> members;
  for (std::size_t r = 0; r < c.num_regions(); ++r) {
    for (const FusedRegionPlan::Member& m : c.mutable_region(r).members) {
      members.insert(m.node);
    }
  }
  return members;
}

// First dag index whose entry satisfies `pred`, or -1.
template <typename Pred>
int FindDag(PlanCorruptor& c, Pred pred) {
  const auto& nodes = c.dag_nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (pred(nodes[i], static_cast<int>(i))) return static_cast<int>(i);
  }
  return -1;
}

template <typename Pred>
int FindDyn(PlanCorruptor& c, Pred pred) {
  const auto& nodes = c.dyn_nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (pred(nodes[i], static_cast<int>(i))) return static_cast<int>(i);
  }
  return -1;
}

// First region with at least one interior (non-root) member, or -1.
int FindRegionWithInterior(PlanCorruptor& c) {
  for (std::size_t r = 0; r < c.num_regions(); ++r) {
    if (c.mutable_region(r).members.size() >= 2) return static_cast<int>(r);
  }
  return -1;
}

}  // namespace

std::vector<Corruption> DagCorruptions() {
  std::vector<Corruption> out;
  const auto add = [&out](std::string name, std::string invariant,
                          std::function<bool(PlanCorruptor&)> apply) {
    out.push_back(
        Corruption{std::move(name), std::move(invariant), std::move(apply)});
  };

  add("dag-self-loop", "schedule.self_loop", [](PlanCorruptor& c) {
    const int i = FindDag(c, [](const DagNode& e, int) {
      return !e.inputs.empty();
    });
    if (i < 0) return false;
    c.dag_nodes()[static_cast<std::size_t>(i)].inputs[0].producer = i;
    return true;
  });
  add("dag-back-edge", "schedule.topological_order", [](PlanCorruptor& c) {
    const int n = static_cast<int>(c.dag_nodes().size());
    const int i = FindDag(c, [n](const DagNode& e, int idx) {
      return !e.inputs.empty() && idx != n - 1;
    });
    if (i < 0) return false;
    c.dag_nodes()[static_cast<std::size_t>(i)].inputs[0] = {n - 1, 0};
    return true;
  });
  add("dag-producer-out-of-range", "adjacency.producer_range",
      [](PlanCorruptor& c) {
        const int i = FindDag(c, [](const DagNode& e, int) {
          return !e.inputs.empty();
        });
        if (i < 0) return false;
        c.dag_nodes()[static_cast<std::size_t>(i)].inputs[0].producer =
            static_cast<int>(c.dag_nodes().size());
        return true;
      });
  add("dag-producer-negative", "adjacency.producer_range",
      [](PlanCorruptor& c) {
        const int i = FindDag(c, [](const DagNode& e, int) {
          return !e.inputs.empty();
        });
        if (i < 0) return false;
        c.dag_nodes()[static_cast<std::size_t>(i)].inputs[0].producer = -5;
        return true;
      });
  add("dag-slot-out-of-range", "adjacency.slot_range", [](PlanCorruptor& c) {
    const int i = FindDag(c, [](const DagNode& e, int) {
      return !e.inputs.empty();
    });
    if (i < 0) return false;
    c.dag_nodes()[static_cast<std::size_t>(i)].inputs[0].slot = 99;
    return true;
  });
  add("dag-dropped-consumer", "adjacency.consumer_mirror",
      [](PlanCorruptor& c) {
        const int i = FindDag(c, [](const DagNode& e, int) {
          return !e.consumers.empty();
        });
        if (i < 0) return false;
        c.dag_nodes()[static_cast<std::size_t>(i)].consumers.pop_back();
        return true;
      });
  add("dag-phantom-consumer", "adjacency.consumer_mirror",
      [](PlanCorruptor& c) {
        if (c.dag_nodes().empty()) return false;
        // A node can never consume itself, so i -> i is always phantom.
        c.dag_nodes()[0].consumers.push_back(0);
        return true;
      });
  add("dag-consumer-duplicate", "adjacency.consumer_duplicate",
      [](PlanCorruptor& c) {
        const int i = FindDag(c, [](const DagNode& e, int) {
          return !e.consumers.empty();
        });
        if (i < 0) return false;
        DagNode& entry = c.dag_nodes()[static_cast<std::size_t>(i)];
        entry.consumers.push_back(entry.consumers.front());
        return true;
      });
  add("dag-pending-undercount", "schedule.pending_count",
      [](PlanCorruptor& c) {
        const int i = FindDag(c, [](const DagNode& e, int) {
          return e.initial_pending > 0;
        });
        if (i < 0) return false;
        --c.dag_nodes()[static_cast<std::size_t>(i)].initial_pending;
        return true;
      });
  add("dag-pending-overcount", "schedule.pending_count",
      [](PlanCorruptor& c) {
        if (c.dag_nodes().empty()) return false;
        ++c.dag_nodes()[0].initial_pending;
        return true;
      });
  add("dag-index-skew", "index.roundtrip", [](PlanCorruptor& c) {
    if (c.dag_nodes().size() < 2) return false;
    c.dag_index()[c.dag_nodes()[0].node] = 1;
    return true;
  });
  add("dag-index-erase", "index.roundtrip", [](PlanCorruptor& c) {
    if (c.dag_nodes().empty()) return false;
    c.dag_index().erase(c.dag_nodes().back().node);
    return true;
  });
  add("dag-index-out-of-range", "index.range", [](PlanCorruptor& c) {
    if (c.dag_nodes().empty()) return false;
    c.dag_index()[c.dag_nodes()[0].node] =
        static_cast<int>(c.dag_nodes().size()) + 4;
    return true;
  });
  add("dag-fetch-producer-range", "fetch.slot_range", [](PlanCorruptor& c) {
    if (c.dag_fetch_slots().empty()) return false;
    c.dag_fetch_slots()[0].producer =
        static_cast<int>(c.dag_nodes().size()) + 3;
    return true;
  });
  add("dag-fetch-output-slot-range", "fetch.slot_range",
      [](PlanCorruptor& c) {
        if (c.dag_fetch_slots().empty()) return false;
        c.dag_fetch_slots()[0].slot = 7;
        return true;
      });
  add("dag-fetch-dropped-remap", "fetch.remap", [](PlanCorruptor& c) {
    if (c.dag_fetch_slots().empty() || c.dag_nodes().size() < 2) {
      return false;
    }
    // Point the fetch slot at a valid producer that is not the fetch's.
    DagInput& slot = c.dag_fetch_slots()[0];
    slot.producer = slot.producer == 0 ? 1 : 0;
    slot.slot = 0;
    return true;
  });
  add("dag-kind-flip", "schedule.kind_mismatch", [](PlanCorruptor& c) {
    const int i = FindDag(c, [](const DagNode& e, int) {
      return e.kind == OpKind::kKernel;
    });
    if (i < 0) return false;
    c.dag_nodes()[static_cast<std::size_t>(i)].kind = OpKind::kConst;
    return true;
  });
  add("dag-kernel-null", "schedule.kernel_null", [](PlanCorruptor& c) {
    const int i = FindDag(c, [](const DagNode& e, int) {
      return e.kind == OpKind::kKernel && e.kernel != nullptr;
    });
    if (i < 0) return false;
    c.dag_nodes()[static_cast<std::size_t>(i)].kernel = nullptr;
    return true;
  });
  add("liveness-undercount", "liveness.undercount", [](PlanCorruptor& c) {
    for (MemoryPlan::DagNodeInfo& info : c.memory().dag) {
      if (info.output_reads > 0) {
        --info.output_reads;
        return true;
      }
    }
    return false;
  });
  add("liveness-overcount", "liveness.overcount", [](PlanCorruptor& c) {
    if (c.memory().dag.empty()) return false;
    ++c.memory().dag[0].output_reads;
    return true;
  });
  add("liveness-fetch-unprotected", "liveness.fetch_unprotected",
      [](PlanCorruptor& c) {
        for (MemoryPlan::DagNodeInfo& info : c.memory().dag) {
          if (info.fetch_protected) {
            info.fetch_protected = false;
            return true;
          }
        }
        return false;
      });
  add("liveness-spurious-protection", "liveness.spurious_protection",
      [](PlanCorruptor& c) {
        for (MemoryPlan::DagNodeInfo& info : c.memory().dag) {
          if (!info.fetch_protected) {
            info.fetch_protected = true;
            return true;
          }
        }
        return false;
      });
  add("inplace-illegal", "inplace.illegal", [](PlanCorruptor& c) {
    for (MemoryPlan::DagNodeInfo& info : c.memory().dag) {
      if (!info.in_place_capable) {
        info.in_place_capable = true;
        return true;
      }
    }
    return false;
  });
  add("inplace-dropped", "inplace.dropped", [](PlanCorruptor& c) {
    for (MemoryPlan::DagNodeInfo& info : c.memory().dag) {
      if (info.in_place_capable) {
        info.in_place_capable = false;
        return true;
      }
    }
    return false;
  });
  add("memory-size-mismatch", "memory.parallel_size", [](PlanCorruptor& c) {
    if (c.memory().dag.empty()) return false;
    c.memory().dag.pop_back();
    return true;
  });

  // ---- Fusion-rewrite damage (applicable only to plans with regions) ----

  add("fusion-null-plan", "fusion.null_plan", [](PlanCorruptor& c) {
    const int i = FindDag(c, [](const DagNode& e, int) {
      return e.kind == OpKind::kFusedRegion;
    });
    if (i < 0) return false;
    c.dag_nodes()[static_cast<std::size_t>(i)].fused = nullptr;
    return true;
  });
  add("fusion-drop-root-member", "fusion.root_mismatch",
      [](PlanCorruptor& c) {
        const int r = FindRegionWithInterior(c);
        if (r < 0) return false;
        c.mutable_region(static_cast<std::size_t>(r)).members.pop_back();
        return true;
      });
  add("fusion-reduction-flag", "fusion.reduction_flag",
      [](PlanCorruptor& c) {
        if (c.num_regions() == 0) return false;
        FusedRegionPlan& region = c.mutable_region(0);
        region.has_reduction = !region.has_reduction;
        return true;
      });
  add("fusion-operand-dangling", "fusion.operand_range",
      [](PlanCorruptor& c) {
        for (std::size_t r = 0; r < c.num_regions(); ++r) {
          for (FusedRegionPlan::Member& m : c.mutable_region(r).members) {
            if (m.a >= 0) {
              m.a = m.value_id;  // a member may not consume its own value
              return true;
            }
          }
        }
        return false;
      });
  add("fusion-external-arity", "fusion.external_arity",
      [](PlanCorruptor& c) {
        if (c.num_regions() == 0) return false;
        ++c.mutable_region(0).num_externals;
        return true;
      });
  add("fusion-member-kernel-null", "fusion.member_kernel_null",
      [](PlanCorruptor& c) {
        if (c.num_regions() == 0) return false;
        FusedRegionPlan& region = c.mutable_region(0);
        if (region.members.empty()) return false;
        region.members[0].kernel = nullptr;
        return true;
      });
  add("fusion-out-of-region-consumer", "fusion.out_of_region_consumer",
      [](PlanCorruptor& c) {
        const int r = FindRegionWithInterior(c);
        if (r < 0) return false;
        const Node* interior =
            c.mutable_region(static_cast<std::size_t>(r)).members[0].node;
        const auto members = RegionMembers(c);
        // Rewire a plan node outside every region to read the interior.
        const int i = FindDag(c, [&members](const DagNode& e, int) {
          return e.node != nullptr && e.node->num_inputs() > 0 &&
                 members.find(e.node) == members.end();
        });
        if (i < 0) return false;
        const_cast<Node*>(c.dag_nodes()[static_cast<std::size_t>(i)].node)
            ->set_input(0, NodeOutput{const_cast<Node*>(interior), 0});
        return true;
      });
  add("fusion-interior-fetched", "fusion.interior_fetched",
      [](PlanCorruptor& c) {
        const int r = FindRegionWithInterior(c);
        if (r < 0) return false;
        const Node* interior =
            c.mutable_region(static_cast<std::size_t>(r)).members[0].node;
        c.fetches().push_back(NodeOutput{const_cast<Node*>(interior), 0});
        return true;
      });
  add("fusion-interior-control", "fusion.interior_control",
      [](PlanCorruptor& c) {
        const int r = FindRegionWithInterior(c);
        if (r < 0) return false;
        const Node* interior =
            c.mutable_region(static_cast<std::size_t>(r)).members[0].node;
        const auto members = RegionMembers(c);
        const int i = FindDag(c, [&members](const DagNode& e, int) {
          return e.node != nullptr &&
                 members.find(e.node) == members.end();
        });
        if (i < 0) return false;
        const_cast<Node*>(c.dag_nodes()[static_cast<std::size_t>(i)].node)
            ->AddControlInput(const_cast<Node*>(interior));
        return true;
      });
  return out;
}

std::vector<Corruption> DynCorruptions() {
  std::vector<Corruption> out;
  const auto add = [&out](std::string name, std::string invariant,
                          std::function<bool(PlanCorruptor&)> apply) {
    out.push_back(
        Corruption{std::move(name), std::move(invariant), std::move(apply)});
  };

  add("dyn-edge-drop", "adjacency.edge_mirror", [](PlanCorruptor& c) {
    const int i = FindDyn(c, [](const DynNode& e, int) {
      for (const auto& slot : e.out_edges) {
        if (!slot.empty()) return true;
      }
      return false;
    });
    if (i < 0) return false;
    for (auto& slot : c.dyn_nodes()[static_cast<std::size_t>(i)].out_edges) {
      if (!slot.empty()) {
        slot.pop_back();
        return true;
      }
    }
    return false;
  });
  add("dyn-edge-slot-skew", "adjacency.edge_mirror", [](PlanCorruptor& c) {
    const int i = FindDyn(c, [](const DynNode& e, int) {
      for (const auto& slot : e.out_edges) {
        if (!slot.empty()) return true;
      }
      return false;
    });
    if (i < 0) return false;
    for (auto& slot : c.dyn_nodes()[static_cast<std::size_t>(i)].out_edges) {
      if (!slot.empty()) {
        ++slot.front().input_slot;
        return true;
      }
    }
    return false;
  });
  add("dyn-control-drop", "adjacency.control_mirror", [](PlanCorruptor& c) {
    const int i = FindDyn(c, [](const DynNode& e, int) {
      return !e.control_edges.empty();
    });
    if (i < 0) return false;
    c.dyn_nodes()[static_cast<std::size_t>(i)].control_edges.pop_back();
    return true;
  });
  add("dyn-root-source-flip", "schedule.root_source", [](PlanCorruptor& c) {
    if (c.dyn_nodes().empty()) return false;
    DynNode& entry = c.dyn_nodes()[0];
    entry.is_root_source = !entry.is_root_source;
    return true;
  });
  add("dyn-frame-clear", "schedule.enter_frame", [](PlanCorruptor& c) {
    const int i = FindDyn(c, [](const DynNode& e, int) {
      return e.kind == OpKind::kEnter && !e.frame.empty();
    });
    if (i < 0) return false;
    c.dyn_nodes()[static_cast<std::size_t>(i)].frame.clear();
    return true;
  });
  add("dyn-input-producer-range", "adjacency.producer_range",
      [](PlanCorruptor& c) {
        const int i = FindDyn(c, [](const DynNode& e, int) {
          return !e.inputs.empty();
        });
        if (i < 0) return false;
        c.dyn_nodes()[static_cast<std::size_t>(i)].inputs[0].producer =
            static_cast<int>(c.dyn_nodes().size()) + 7;
        return true;
      });
  add("dyn-fetch-dropped-remap", "fetch.remap", [](PlanCorruptor& c) {
    if (c.dyn_fetch_slots().empty() || c.dyn_nodes().size() < 2) {
      return false;
    }
    DagInput& slot = c.dyn_fetch_slots()[0];
    slot.producer = slot.producer == 0 ? 1 : 0;
    slot.slot = 0;
    return true;
  });
  add("dyn-kind-flip", "schedule.kind_mismatch", [](PlanCorruptor& c) {
    const int i = FindDyn(c, [](const DynNode& e, int) {
      return e.kind == OpKind::kKernel;
    });
    if (i < 0) return false;
    c.dyn_nodes()[static_cast<std::size_t>(i)].kind = OpKind::kConst;
    return true;
  });
  add("dyn-kernel-null", "schedule.kernel_null", [](PlanCorruptor& c) {
    const int i = FindDyn(c, [](const DynNode& e, int) {
      return e.kind == OpKind::kKernel && e.kernel != nullptr;
    });
    if (i < 0) return false;
    c.dyn_nodes()[static_cast<std::size_t>(i)].kernel = nullptr;
    return true;
  });
  add("dyn-inplace-illegal", "inplace.illegal", [](PlanCorruptor& c) {
    for (std::uint8_t& bit : c.memory().dyn_in_place) {
      if (bit == 0) {
        bit = 1;
        return true;
      }
    }
    return false;
  });
  add("dyn-inplace-dropped", "inplace.dropped", [](PlanCorruptor& c) {
    for (std::uint8_t& bit : c.memory().dyn_in_place) {
      if (bit != 0) {
        bit = 0;
        return true;
      }
    }
    return false;
  });
  add("dyn-memory-size-mismatch", "memory.parallel_size",
      [](PlanCorruptor& c) {
        if (c.memory().dyn_in_place.empty()) return false;
        c.memory().dyn_in_place.pop_back();
        return true;
      });
  return out;
}

}  // namespace verify
}  // namespace janus
