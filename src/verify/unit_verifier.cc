#include "verify/unit_verifier.h"

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace janus {
namespace verify {
namespace {

void AddIssue(Report& report, const char* invariant, const std::string& node,
              std::string message) {
  report.issues.push_back(Issue{invariant, node, std::move(message)});
}

// One elementary assertion at the unit layer.
void Check(Report& report, bool ok, const char* invariant,
           const std::string& node, std::string message) {
  ++report.checks;
  if (!ok) AddIssue(report, invariant, node, std::move(message));
}

bool IsTensorLikeCapture(const CaptureSpec& capture) {
  return capture.kind == ObservedKind::kTensor ||
         capture.kind == ObservedKind::kVariable;
}

int CountAssertOps(const Graph& graph) {
  int count = 0;
  for (const auto& node : graph.nodes()) {
    if (node->op() == "Assert" || node->op() == "AssertShape") ++count;
  }
  return count;
}

// Merges a plan-level report into the unit report, prefixing each node
// attribution with where the plan lives ("main" / function name).
void MergePlanReport(Report& report, const Report& plan_report,
                     const std::string& where) {
  report.checks += plan_report.checks;
  for (const Issue& issue : plan_report.issues) {
    report.issues.push_back(
        Issue{issue.invariant, where + ":" + issue.node, issue.message});
  }
}

void VerifyPlanFetches(Report& report, const ExecutionPlan& plan,
                       std::span<const NodeOutput> expected,
                       const std::string& where) {
  Check(report, plan.fetches().size() == expected.size(),
        "unit.plan_fetches", where,
        "plan carries " + std::to_string(plan.fetches().size()) +
            " fetches but the unit expects " +
            std::to_string(expected.size()));
  const std::size_t n = std::min(plan.fetches().size(), expected.size());
  for (std::size_t i = 0; i < n; ++i) {
    Check(report, plan.fetches()[i] == expected[i], "unit.plan_fetches",
          where,
          "plan fetch " + std::to_string(i) +
              " does not match the unit's fetch list");
  }
}

}  // namespace

Report VerifyCompiledUnit(const CompiledGraph& unit) {
  Report report;

  // Graph node name -> node, for capture resolution; also the membership
  // set for fetch checks.
  std::unordered_map<std::string, const Node*> by_name;
  std::unordered_set<const Node*> in_graph;
  for (const auto& node : unit.graph.nodes()) {
    by_name.emplace(node->name(), node.get());
    in_graph.insert(node.get());
  }

  const int level = unit.despecialization_level;
  Check(report, level >= 0 && level <= 3, "unit.ladder_level", "<unit>",
        "despecialization_level " + std::to_string(level) +
            " outside the ladder [0, 3]");

  for (const CaptureSpec& capture : unit.captures) {
    const auto it = by_name.find(capture.placeholder_name);
    if (it == by_name.end()) {
      Check(report, false, "unit.capture_placeholder",
            capture.placeholder_name,
            "capture feeds a placeholder that does not exist in the graph");
      continue;
    }
    const Node* node = it->second;
    Check(report, node->op() == "Placeholder", "unit.capture_placeholder",
          node->name(),
          "capture target is a '" + node->op() + "', not a Placeholder");
    if (node->HasAttr("dtype")) {
      Check(report, node->GetDTypeAttr("dtype") == capture.dtype,
            "unit.capture_dtype", node->name(),
            "capture dtype disagrees with the placeholder's dtype attr: "
            "entry checks would admit tensors the kernels reject");
    }
    // Ladder consistency: the shape assumption may never be MORE specific
    // than the level the unit claims it was generated at.
    if (!IsTensorLikeCapture(capture)) continue;
    const ShapeAssumption& shape = capture.shape;
    if (level >= 2) {
      Check(report, shape.is_unknown(), "unit.shape_level", node->name(),
            "level-" + std::to_string(level) +
                " unit pins a shape assumption (" + shape.ToString() +
                "); DropShapes() should have erased it");
    } else if (level == 1 && !shape.is_unknown()) {
      bool pinned = false;
      for (const std::optional<std::int64_t>& dim : shape.dims()) {
        if (dim.has_value()) pinned = true;
      }
      Check(report, !pinned, "unit.shape_level", node->name(),
            "level-1 unit pins concrete dimensions (" + shape.ToString() +
                "); RelaxShapesToRank() should have wildcarded them");
    }
  }

  Check(report, !unit.fetches.empty(), "unit.fetches", "<unit>",
        "unit has no fetches; executing it computes nothing");
  for (const NodeOutput& fetch : unit.fetches) {
    if (fetch.node == nullptr ||
        in_graph.find(fetch.node) == in_graph.end()) {
      Check(report, false, "unit.fetches", "<unit>",
            "fetch references a node outside the unit's graph");
      continue;
    }
    ++report.checks;
  }

  // Assert-op accounting: generation counts every Assert/AssertShape it
  // emits (including inside function frames). Later graph-to-graph
  // transforms may legitimately duplicate asserts (autodiff clones forward
  // nodes into gradient bodies), but fewer asserts than recorded means a
  // speculation guard was silently deleted.
  int asserts = CountAssertOps(unit.graph);
  if (unit.library != nullptr) {
    for (const std::string& name : unit.library->FunctionNames()) {
      asserts += CountAssertOps(unit.library->Lookup(name).graph);
    }
  }
  Check(report, asserts >= unit.num_assert_ops, "unit.assert_count",
        "<unit>",
        "graph holds " + std::to_string(asserts) +
            " Assert/AssertShape ops but generation recorded " +
            std::to_string(unit.num_assert_ops) +
            ": a speculation guard was dropped");

  // Plans: the main plan plus one per library function, in FunctionNames()
  // order, each structurally verified against its graph.
  if (unit.plan == nullptr) {
    Check(report, false, "unit.plan_missing", "<unit>",
          "unit has no pre-built main plan (BuildPlans not run?)");
  } else {
    VerifyPlanFetches(report, *unit.plan, unit.fetches, "main");
    MergePlanReport(report, VerifyPlan(unit.graph, *unit.plan), "main");
  }
  const std::vector<std::string> fn_names =
      unit.library != nullptr ? unit.library->FunctionNames()
                              : std::vector<std::string>{};
  Check(report, unit.function_plans.size() == fn_names.size(),
        "unit.function_plans", "<unit>",
        std::to_string(unit.function_plans.size()) +
            " function plans for " + std::to_string(fn_names.size()) +
            " library functions");
  const std::size_t n_fn =
      std::min(unit.function_plans.size(), fn_names.size());
  for (std::size_t i = 0; i < n_fn; ++i) {
    const GraphFunction& fn = unit.library->Lookup(fn_names[i]);
    if (unit.function_plans[i] == nullptr) {
      Check(report, false, "unit.function_plans", fn.name,
            "library function has a null pre-built plan");
      continue;
    }
    VerifyPlanFetches(report, *unit.function_plans[i], fn.results, fn.name);
    MergePlanReport(report, VerifyPlan(fn.graph, *unit.function_plans[i]),
                    fn.name);
  }
  return report;
}

}  // namespace verify
}  // namespace janus
