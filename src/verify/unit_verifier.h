// Static analysis of whole compiled units.
//
// Extends the plan verifier (plan_verifier.h) up one layer: a CompiledGraph
// couples a graph to capture specs, shape assumptions from the
// despecialization ladder, fetches, and pre-built execution plans. A unit
// that passes VerifyCompiledUnit has (a) every capture landing on a real
// placeholder with a matching dtype, (b) shape assumptions consistent with
// the ladder level it claims it was generated at, (c) fetches that resolve
// into the graph, (d) a main plan plus one plan per library function, each
// of which also passes VerifyPlan.
//
// Lives in a separate library (janus_verify_unit) because it links against
// janus_core; the plan verifier itself stays below the core layer so the
// runtime can auto-run it.
#ifndef JANUS_VERIFY_UNIT_VERIFIER_H_
#define JANUS_VERIFY_UNIT_VERIFIER_H_

#include "core/compiled_graph.h"
#include "verify/plan_verifier.h"

namespace janus {
namespace verify {

// Verifies the unit's captures/assumptions/fetches (invariants "unit.*")
// and every plan the unit pins (main + function plans). Never throws.
Report VerifyCompiledUnit(const CompiledGraph& unit);

}  // namespace verify
}  // namespace janus

#endif  // JANUS_VERIFY_UNIT_VERIFIER_H_
