#include "verify/plan_verifier.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/error.h"
#include "obs/metrics.h"
#include "runtime/fusion.h"
#include "runtime/memory_plan.h"

namespace janus {
namespace verify {
namespace {

using DagInput = ExecutionPlan::DagInput;
using DagNode = ExecutionPlan::DagNode;
using DynEdge = ExecutionPlan::DynEdge;
using DynNode = ExecutionPlan::DynNode;
using OpKind = ExecutionPlan::OpKind;

// Mirror of plan.cc's ClassifyOp — deliberately re-derived here so a
// classification bug in the builder cannot hide from the checker.
OpKind ClassifyOp(const std::string& op) {
  if (op == "Const") return OpKind::kConst;
  if (op == "Placeholder") return OpKind::kPlaceholder;
  if (op == "Param") return OpKind::kParam;
  if (op == "Switch") return OpKind::kSwitch;
  if (op == "Merge") return OpKind::kMerge;
  if (op == "Enter") return OpKind::kEnter;
  if (op == "Exit") return OpKind::kExit;
  if (op == "NextIteration") return OpKind::kNextIteration;
  return OpKind::kKernel;
}

bool IsSourceKind(OpKind kind) {
  return kind == OpKind::kConst || kind == OpKind::kPlaceholder ||
         kind == OpKind::kParam;
}

const char* KindName(OpKind kind) {
  switch (kind) {
    case OpKind::kConst: return "Const";
    case OpKind::kPlaceholder: return "Placeholder";
    case OpKind::kParam: return "Param";
    case OpKind::kSwitch: return "Switch";
    case OpKind::kMerge: return "Merge";
    case OpKind::kEnter: return "Enter";
    case OpKind::kExit: return "Exit";
    case OpKind::kNextIteration: return "NextIteration";
    case OpKind::kKernel: return "Kernel";
    case OpKind::kFusedRegion: return "FusedRegion";
  }
  return "?";
}

bool IsFusedReduction(FusedOp op) {
  return op == FusedOp::kReduceSum || op == FusedOp::kReduceMean;
}

// Accumulates issues with one-line helpers; every Check() call counts
// toward Report::checks so reports show coverage, not just violations.
class Checker {
 public:
  explicit Checker(Report* report) : report_(report) {}

  // Evaluates one assertion; on failure records (invariant, node, message).
  void Check(bool ok, const char* invariant, const Node* node,
             std::string message) {
    ++report_->checks;
    if (ok) return;
    report_->issues.push_back(Issue{
        invariant, node != nullptr ? node->name() : std::string("<plan>"),
        std::move(message)});
  }

 private:
  Report* report_;
};

std::string Coord(int producer, int slot) {
  return "{" + std::to_string(producer) + ", " + std::to_string(slot) + "}";
}

// The number of output slots a dense plan node exposes. A fused region
// stands in for its root and produces exactly one value.
int PlanNodeOutputs(OpKind kind, const Node* node) {
  if (kind == OpKind::kFusedRegion) return 1;
  return std::max(1, node != nullptr ? node->num_outputs() : 1);
}

// ---- Fused-region checks, shared by the DAG and dynamic strategies ----
//
// `in_plan` answers whether a graph node participates in the plan at all
// (for the DAG strategy only fetch-reachable nodes do; the dynamic strategy
// covers the whole graph); `region_of` maps a member node to its region so
// cross-region consumption is distinguishable from in-region use.
struct RegionIndex {
  // Member node -> region it belongs to (interiors and roots).
  std::unordered_map<const Node*, const FusedRegionPlan*> region_of;
};

void CheckRegion(Checker& check, const Graph& graph,
                 const ExecutionPlan& plan, const FusedRegionPlan& region,
                 const Node* region_node, int num_region_inputs,
                 const RegionIndex& index,
                 const std::unordered_set<const Node*>& in_plan) {
  check.Check(region.members.size() >= 2, "fusion.too_small", region_node,
              "region has " + std::to_string(region.members.size()) +
                  " member(s); fusion must dissolve regions under 2");
  check.Check(region.num_externals >= 0 &&
                  region.num_values ==
                      region.num_externals +
                          static_cast<int>(region.members.size()),
              "fusion.value_count", region_node,
              "num_values " + std::to_string(region.num_values) +
                  " != num_externals " +
                  std::to_string(region.num_externals) + " + " +
                  std::to_string(region.members.size()) + " members");
  check.Check(num_region_inputs == region.num_externals,
              "fusion.external_arity", region_node,
              "region node has " + std::to_string(num_region_inputs) +
                  " plan inputs but num_externals is " +
                  std::to_string(region.num_externals));
  if (region.members.empty()) return;
  check.Check(region.members.back().node == region_node,
              "fusion.root_mismatch", region_node,
              "plan node is not the region's last (root) member");

  bool saw_reduction = false;
  for (std::size_t j = 0; j < region.members.size(); ++j) {
    const FusedRegionPlan::Member& member = region.members[j];
    const bool is_root = j + 1 == region.members.size();
    if (member.node == nullptr) {
      check.Check(false, "fusion.member_node_null", region_node,
                  "member " + std::to_string(j) + " has no node");
      continue;
    }
    check.Check(member.kernel != nullptr, "fusion.member_kernel_null",
                member.node,
                "member has no fallback kernel; per-member dispatch would "
                "crash");
    const int expected_id = region.num_externals + static_cast<int>(j);
    check.Check(member.value_id == expected_id, "fusion.value_id_order",
                member.node,
                "value_id " + std::to_string(member.value_id) +
                    " != " + std::to_string(expected_id));
    check.Check(member.a >= 0 && member.a < member.value_id,
                "fusion.operand_range", member.node,
                "operand a=" + std::to_string(member.a) +
                    " outside [0, " + std::to_string(member.value_id) + ")");
    check.Check(member.b == -1 ||
                    (member.b >= 0 && member.b < member.value_id),
                "fusion.operand_range", member.node,
                "operand b=" + std::to_string(member.b) +
                    " outside [0, " + std::to_string(member.value_id) + ")");
    if (IsFusedReduction(member.op)) {
      saw_reduction = true;
      check.Check(is_root, "fusion.reduction_interior", member.node,
                  "reduction epilogue is not the region root");
    }
    if (is_root) continue;

    // Interior invariants: value never escapes the region. Every data
    // consumer that participates in the plan must be a member of THIS
    // region; nothing may fetch it; no control edge may touch it.
    check.Check(member.node->control_inputs().empty(),
                "fusion.interior_control", member.node,
                "interior member has control inputs");
    for (const NodeOutput& fetch : plan.fetches()) {
      check.Check(fetch.node != member.node, "fusion.interior_fetched",
                  member.node, "interior member feeds a fetch");
    }
    for (const auto& consumer : graph.nodes()) {
      if (consumer.get() == member.node) continue;
      const bool consumer_in_plan =
          in_plan.find(consumer.get()) != in_plan.end();
      if (!consumer_in_plan) continue;
      const auto it = index.region_of.find(consumer.get());
      const bool same_region =
          it != index.region_of.end() && it->second == &region;
      for (const NodeOutput& input : consumer->inputs()) {
        if (input.node != member.node) continue;
        check.Check(same_region, "fusion.out_of_region_consumer",
                    member.node,
                    "interior value consumed by '" + consumer->name() +
                        "' outside the region");
      }
      for (const Node* control : consumer->control_inputs()) {
        if (control != member.node) continue;
        check.Check(false, "fusion.interior_control", member.node,
                    "interior member is a control input of '" +
                        consumer->name() + "'");
      }
    }
  }
  check.Check(region.has_reduction == saw_reduction, "fusion.reduction_flag",
              region_node,
              std::string("has_reduction=") +
                  (region.has_reduction ? "true" : "false") +
                  " but root op " + (saw_reduction ? "is" : "is not") +
                  " a reduction");
}

// True when `fused` is one of the regions the plan owns (a dangling or
// foreign pointer would outlive-or-never-live the plan).
bool RegionOwnedByPlan(const ExecutionPlan& plan,
                       const FusedRegionPlan* fused) {
  for (const auto& region : plan.fused_regions()) {
    if (region.get() == fused) return true;
  }
  return false;
}

RegionIndex BuildRegionIndex(const ExecutionPlan& plan) {
  RegionIndex index;
  for (const auto& region : plan.fused_regions()) {
    for (const FusedRegionPlan::Member& member : region->members) {
      if (member.node != nullptr) {
        index.region_of[member.node] = region.get();
      }
    }
  }
  return index;
}

// ---- DAG strategy ----

void VerifyDag(Checker& check, const Graph& graph,
               const ExecutionPlan& plan) {
  const auto& nodes = plan.dag_nodes();
  const int n = static_cast<int>(nodes.size());
  const RegionIndex region_index = BuildRegionIndex(plan);

  // Which graph nodes participate in the plan: dense entries plus fused
  // interiors (whose dense slot is their region's).
  std::unordered_set<const Node*> in_plan;
  for (const DagNode& entry : nodes) {
    if (entry.node != nullptr) in_plan.insert(entry.node);
  }
  for (const auto& [member, region] : region_index.region_of) {
    in_plan.insert(member);
  }

  // Permutation: dense entries are distinct graph nodes, and the index map
  // round-trips every one of them.
  std::unordered_set<const Node*> seen;
  for (int i = 0; i < n; ++i) {
    const DagNode& entry = nodes[static_cast<std::size_t>(i)];
    check.Check(entry.node != nullptr, "schedule.null_node", nullptr,
                "dense slot " + std::to_string(i) + " has no graph node");
    if (entry.node == nullptr) continue;
    check.Check(seen.insert(entry.node).second, "schedule.duplicate_node",
                entry.node,
                "graph node occupies more than one dense slot");
    check.Check(plan.DagIndexOf(entry.node) == i, "index.roundtrip",
                entry.node,
                "DagIndexOf returns " +
                    std::to_string(plan.DagIndexOf(entry.node)) +
                    " for dense slot " + std::to_string(i));
  }
  // Index-map coverage: every entry lands inside the dense array, and
  // fused interiors resolve to their region's slot.
  for (const auto& [node, dense] : plan.dag_index_map()) {
    check.Check(dense >= 0 && dense < n, "index.range", node,
                "index-map entry " + std::to_string(dense) +
                    " outside [0, " + std::to_string(n) + ")");
    if (dense < 0 || dense >= n || node == nullptr) continue;
    const DagNode& target = nodes[static_cast<std::size_t>(dense)];
    if (target.node == node) continue;
    const auto it = region_index.region_of.find(node);
    const bool interior_remap = it != region_index.region_of.end() &&
                                target.kind == OpKind::kFusedRegion &&
                                target.fused == it->second;
    check.Check(interior_remap, "index.roundtrip", node,
                "index-map entry " + std::to_string(dense) +
                    " points at a slot holding neither the node nor its "
                    "fused region");
  }

  // Schedule + adjacency. Expected consumer sets are rebuilt from the
  // plan's own input lists plus the graph's control edges, then compared
  // against the stored adjacency exactly.
  std::vector<std::set<int>> expected_consumers(
      static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const DagNode& entry = nodes[static_cast<std::size_t>(i)];
    if (entry.node == nullptr) continue;

    const OpKind expected_kind =
        entry.kind == OpKind::kFusedRegion ? OpKind::kFusedRegion
                                           : ClassifyOp(entry.node->op());
    check.Check(entry.kind == expected_kind, "schedule.kind_mismatch",
                entry.node,
                std::string("plan kind ") + KindName(entry.kind) +
                    " but op '" + entry.node->op() + "' classifies as " +
                    KindName(expected_kind));
    if (entry.kind == OpKind::kKernel) {
      check.Check(entry.kernel != nullptr, "schedule.kernel_null",
                  entry.node, "kernel op with no resolved KernelFn");
    }
    if (entry.kind == OpKind::kFusedRegion) {
      check.Check(entry.fused != nullptr, "fusion.null_plan", entry.node,
                  "kFusedRegion plan node with no region plan");
      if (entry.fused != nullptr) {
        check.Check(RegionOwnedByPlan(plan, entry.fused),
                    "fusion.foreign_region", entry.node,
                    "region plan is not owned by this ExecutionPlan");
        check.Check(ClassifyOp(entry.node->op()) == OpKind::kKernel,
                    "fusion.root_not_kernel", entry.node,
                    "fused-region root op '" + entry.node->op() +
                        "' is not a kernel op");
        CheckRegion(check, graph, plan, *entry.fused, entry.node,
                    static_cast<int>(entry.inputs.size()), region_index,
                    in_plan);
      }
    }

    std::set<int> producers;
    for (std::size_t s = 0; s < entry.inputs.size(); ++s) {
      const DagInput& input = entry.inputs[s];
      const bool in_range = input.producer >= 0 && input.producer < n;
      check.Check(in_range, "adjacency.producer_range", entry.node,
                  "input " + std::to_string(s) + " producer " +
                      Coord(input.producer, input.slot) +
                      " outside [0, " + std::to_string(n) + ")");
      if (!in_range) continue;
      check.Check(input.producer != i, "schedule.self_loop", entry.node,
                  "node consumes its own output");
      check.Check(input.producer < i, "schedule.topological_order",
                  entry.node,
                  "producer at dense slot " +
                      std::to_string(input.producer) +
                      " does not precede consumer at " + std::to_string(i));
      const DagNode& producer =
          nodes[static_cast<std::size_t>(input.producer)];
      const int outputs = PlanNodeOutputs(producer.kind, producer.node);
      check.Check(input.slot >= 0 && input.slot < outputs,
                  "adjacency.slot_range", entry.node,
                  "input " + std::to_string(s) + " reads slot " +
                      std::to_string(input.slot) + " of a " +
                      std::to_string(outputs) + "-output producer");
      producers.insert(input.producer);
    }
    // Control producers come from the graph (the plan stores them only as
    // pending-count contributions and consumer edges).
    for (const Node* control : entry.node->control_inputs()) {
      const int dense = plan.DagIndexOf(control);
      check.Check(dense >= 0, "adjacency.dangling_control", entry.node,
                  "control input '" + control->name() +
                      "' is not in the plan");
      if (dense >= 0 && dense < n) producers.insert(dense);
    }
    check.Check(entry.initial_pending ==
                    static_cast<int>(producers.size()),
                "schedule.pending_count", entry.node,
                "initial_pending " + std::to_string(entry.initial_pending) +
                    " != " + std::to_string(producers.size()) +
                    " distinct producers");
    for (const int producer : producers) {
      if (producer >= 0 && producer < n) {
        expected_consumers[static_cast<std::size_t>(producer)].insert(i);
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    const DagNode& entry = nodes[static_cast<std::size_t>(i)];
    std::set<int> actual;
    for (const int consumer : entry.consumers) {
      check.Check(consumer >= 0 && consumer < n,
                  "adjacency.consumer_range", entry.node,
                  "consumer index " + std::to_string(consumer) +
                      " outside [0, " + std::to_string(n) + ")");
      check.Check(actual.insert(consumer).second,
                  "adjacency.consumer_duplicate", entry.node,
                  "consumer " + std::to_string(consumer) +
                      " listed twice (pending counts would double-fire)");
    }
    check.Check(actual == expected_consumers[static_cast<std::size_t>(i)],
                "adjacency.consumer_mirror", entry.node,
                "stored consumer set (" + std::to_string(actual.size()) +
                    ") does not mirror the input/control edges (" +
                    std::to_string(
                        expected_consumers[static_cast<std::size_t>(i)]
                            .size()) +
                    ")");
  }

  // Fetch slots: one per fetch, remapped to the producer's dense slot.
  const auto& fetch_slots = plan.dag_fetch_slots();
  check.Check(fetch_slots.size() == plan.fetches().size(),
              "fetch.slot_count", nullptr,
              std::to_string(fetch_slots.size()) + " fetch slots for " +
                  std::to_string(plan.fetches().size()) + " fetches");
  const std::size_t num_fetches =
      std::min(fetch_slots.size(), plan.fetches().size());
  for (std::size_t k = 0; k < num_fetches; ++k) {
    const DagInput& slot = fetch_slots[k];
    const NodeOutput& fetch = plan.fetches()[k];
    const bool in_range = slot.producer >= 0 && slot.producer < n;
    check.Check(in_range, "fetch.slot_range", fetch.node,
                "fetch " + std::to_string(k) + " slot " +
                    Coord(slot.producer, slot.slot) + " outside [0, " +
                    std::to_string(n) + ")");
    if (!in_range) continue;
    const DagNode& producer = nodes[static_cast<std::size_t>(slot.producer)];
    const int outputs = PlanNodeOutputs(producer.kind, producer.node);
    check.Check(slot.slot >= 0 && slot.slot < outputs, "fetch.slot_range",
                fetch.node,
                "fetch " + std::to_string(k) + " reads slot " +
                    std::to_string(slot.slot) + " of a " +
                    std::to_string(outputs) + "-output producer");
    check.Check(producer.node == fetch.node && slot.slot == fetch.index,
                "fetch.remap", fetch.node,
                "fetch " + std::to_string(k) + " remapped to " +
                    Coord(slot.producer, slot.slot) +
                    " which is not its producer's dense slot");
  }

  // Memory plan: recompute liveness/in-place independently and require
  // equality. An undercount releases a live buffer; an overcount leaks.
  const MemoryPlan& memory = plan.memory();
  check.Check(memory.dag.size() == nodes.size(), "memory.parallel_size",
              nullptr,
              "memory plan covers " + std::to_string(memory.dag.size()) +
                  " of " + std::to_string(nodes.size()) + " dag nodes");
  if (memory.dag.size() == nodes.size()) {
    std::vector<int> reads(static_cast<std::size_t>(n), 0);
    for (const DagNode& entry : nodes) {
      for (const DagInput& input : entry.inputs) {
        if (input.producer >= 0 && input.producer < n) {
          ++reads[static_cast<std::size_t>(input.producer)];
        }
      }
    }
    std::vector<bool> fetch_protected(static_cast<std::size_t>(n), false);
    for (const DagInput& slot : fetch_slots) {
      if (slot.producer >= 0 && slot.producer < n) {
        fetch_protected[static_cast<std::size_t>(slot.producer)] = true;
      }
    }
    for (int i = 0; i < n; ++i) {
      const DagNode& entry = nodes[static_cast<std::size_t>(i)];
      const MemoryPlan::DagNodeInfo& info =
          memory.dag[static_cast<std::size_t>(i)];
      check.Check(info.output_reads >=
                      reads[static_cast<std::size_t>(i)],
                  "liveness.undercount", entry.node,
                  "output_reads " + std::to_string(info.output_reads) +
                      " < " + std::to_string(reads[static_cast<std::size_t>(
                                  i)]) +
                      " actual data reads: the countdown would release a "
                      "buffer with a live consumer");
      check.Check(info.output_reads <=
                      reads[static_cast<std::size_t>(i)],
                  "liveness.overcount", entry.node,
                  "output_reads " + std::to_string(info.output_reads) +
                      " > " + std::to_string(reads[static_cast<std::size_t>(
                                  i)]) +
                      " actual data reads: the buffer would never be "
                      "released mid-run");
      check.Check(!fetch_protected[static_cast<std::size_t>(i)] ||
                      info.fetch_protected,
                  "liveness.fetch_unprotected", entry.node,
                  "fetch producer is not marked fetch_protected; its "
                  "output could be dropped before the run ends");
      check.Check(fetch_protected[static_cast<std::size_t>(i)] ||
                      !info.fetch_protected,
                  "liveness.spurious_protection", entry.node,
                  "non-fetch node marked fetch_protected; its buffer "
                  "would be retained for the whole run");
      const bool expected_in_place =
          (entry.kind == OpKind::kKernel && entry.node != nullptr &&
           OpSupportsInPlace(entry.node->op())) ||
          (entry.kind == OpKind::kFusedRegion && entry.fused != nullptr &&
           !entry.fused->has_reduction);
      check.Check(!info.in_place_capable || expected_in_place,
                  "inplace.illegal", entry.node,
                  "in_place_capable set on an op outside the same-index "
                  "elementwise allowlist: overwriting its input while "
                  "reading it would corrupt the computation");
      check.Check(info.in_place_capable || !expected_in_place,
                  "inplace.dropped", entry.node,
                  "allowlisted op lost its in_place_capable bit (memory "
                  "plan built against a stale schedule?)");
    }
  }
}

// ---- Dynamic (tagged-token) strategy ----

void VerifyDyn(Checker& check, const Graph& graph,
               const ExecutionPlan& plan) {
  const auto& nodes = plan.dyn_nodes();
  const int n = static_cast<int>(nodes.size());
  const RegionIndex region_index = BuildRegionIndex(plan);

  // The dynamic strategy covers the whole graph.
  std::unordered_set<const Node*> in_plan;
  for (const DynNode& entry : nodes) {
    if (entry.node != nullptr) in_plan.insert(entry.node);
  }
  for (const auto& [member, region] : region_index.region_of) {
    in_plan.insert(member);
  }
  std::unordered_map<const Node*, int> dense_of;

  std::unordered_set<const Node*> seen;
  for (int i = 0; i < n; ++i) {
    const DynNode& entry = nodes[static_cast<std::size_t>(i)];
    check.Check(entry.node != nullptr, "schedule.null_node", nullptr,
                "dense slot " + std::to_string(i) + " has no graph node");
    if (entry.node == nullptr) continue;
    check.Check(seen.insert(entry.node).second, "schedule.duplicate_node",
                entry.node,
                "graph node occupies more than one dense slot");
    dense_of[entry.node] = i;
  }

  for (int i = 0; i < n; ++i) {
    const DynNode& entry = nodes[static_cast<std::size_t>(i)];
    if (entry.node == nullptr) continue;

    const OpKind expected_kind =
        entry.kind == OpKind::kFusedRegion ? OpKind::kFusedRegion
                                           : ClassifyOp(entry.node->op());
    check.Check(entry.kind == expected_kind, "schedule.kind_mismatch",
                entry.node,
                std::string("plan kind ") + KindName(entry.kind) +
                    " but op '" + entry.node->op() + "' classifies as " +
                    KindName(expected_kind));
    if (entry.kind == OpKind::kKernel) {
      check.Check(entry.kernel != nullptr, "schedule.kernel_null",
                  entry.node, "kernel op with no resolved KernelFn");
    }
    if (entry.kind == OpKind::kEnter) {
      check.Check(!entry.frame.empty(), "schedule.enter_frame", entry.node,
                  "Enter node with an empty frame name: its tokens would "
                  "collide with the root frame");
    }
    if (entry.kind == OpKind::kFusedRegion) {
      check.Check(entry.fused != nullptr, "fusion.null_plan", entry.node,
                  "kFusedRegion plan node with no region plan");
      if (entry.fused != nullptr) {
        check.Check(RegionOwnedByPlan(plan, entry.fused),
                    "fusion.foreign_region", entry.node,
                    "region plan is not owned by this ExecutionPlan");
        CheckRegion(check, graph, plan, *entry.fused, entry.node,
                    static_cast<int>(entry.inputs.size()), region_index,
                    in_plan);
      }
    }

    // is_root_source: sources plus input-less kernels, nothing else.
    const bool expected_root =
        IsSourceKind(entry.kind) ||
        (entry.kind == OpKind::kKernel && entry.inputs.empty() &&
         entry.control_producers.empty());
    check.Check(entry.is_root_source == expected_root,
                "schedule.root_source", entry.node,
                entry.is_root_source
                    ? "marked root-source but has inputs or is not a "
                      "source kind (would fire before its tokens exist)"
                    : "source node not marked root-source (would never "
                      "fire)");

    // Data-edge mirror: inputs[s] = {p, oslot}  <=>  {i, s} appears
    // exactly once in nodes[p].out_edges[oslot].
    for (std::size_t s = 0; s < entry.inputs.size(); ++s) {
      const DagInput& input = entry.inputs[s];
      const bool in_range = input.producer >= 0 && input.producer < n;
      check.Check(in_range, "adjacency.producer_range", entry.node,
                  "input " + std::to_string(s) + " producer " +
                      Coord(input.producer, input.slot) +
                      " outside [0, " + std::to_string(n) + ")");
      if (!in_range) continue;
      const DynNode& producer =
          nodes[static_cast<std::size_t>(input.producer)];
      const bool slot_ok =
          input.slot >= 0 &&
          input.slot < static_cast<int>(producer.out_edges.size());
      check.Check(slot_ok, "adjacency.slot_range", entry.node,
                  "input " + std::to_string(s) + " reads slot " +
                      std::to_string(input.slot) + " of a producer with " +
                      std::to_string(producer.out_edges.size()) +
                      " output slots");
      if (!slot_ok) continue;
      int hits = 0;
      for (const DynEdge& edge :
           producer.out_edges[static_cast<std::size_t>(input.slot)]) {
        if (edge.consumer == i &&
            edge.input_slot == static_cast<int>(s)) {
          ++hits;
        }
      }
      check.Check(hits == 1, "adjacency.edge_mirror", entry.node,
                  "input " + std::to_string(s) + " from " +
                      Coord(input.producer, input.slot) + " has " +
                      std::to_string(hits) +
                      " delivery edges (need exactly 1): tokens would be " +
                      (hits == 0 ? "lost" : "duplicated"));
    }
    // Reverse direction: every outgoing edge lands on a consumer input
    // slot that points back here.
    for (std::size_t oslot = 0; oslot < entry.out_edges.size(); ++oslot) {
      for (const DynEdge& edge : entry.out_edges[oslot]) {
        const bool consumer_ok = edge.consumer >= 0 && edge.consumer < n;
        check.Check(consumer_ok, "adjacency.consumer_range", entry.node,
                    "out edge to " +
                        Coord(edge.consumer, edge.input_slot) +
                        " outside [0, " + std::to_string(n) + ")");
        if (!consumer_ok) continue;
        const DynNode& consumer =
            nodes[static_cast<std::size_t>(edge.consumer)];
        const bool slot_ok =
            edge.input_slot >= 0 &&
            edge.input_slot < static_cast<int>(consumer.inputs.size());
        check.Check(slot_ok, "adjacency.edge_mirror", entry.node,
                    "out edge targets input slot " +
                        std::to_string(edge.input_slot) +
                        " of a consumer with " +
                        std::to_string(consumer.inputs.size()) + " inputs");
        if (!slot_ok) continue;
        const DagInput& back =
            consumer.inputs[static_cast<std::size_t>(edge.input_slot)];
        check.Check(back.producer == i &&
                        back.slot == static_cast<int>(oslot),
                    "adjacency.edge_mirror", entry.node,
                    "out edge " + Coord(edge.consumer, edge.input_slot) +
                        " is not mirrored by the consumer's input (" +
                        Coord(back.producer, back.slot) + ")");
      }
    }
    // Control mirror.
    for (const int producer : entry.control_producers) {
      const bool in_range = producer >= 0 && producer < n;
      check.Check(in_range, "adjacency.producer_range", entry.node,
                  "control producer " + std::to_string(producer) +
                      " outside [0, " + std::to_string(n) + ")");
      if (!in_range) continue;
      int hits = 0;
      for (const DynEdge& edge :
           nodes[static_cast<std::size_t>(producer)].control_edges) {
        if (edge.consumer == i && edge.input_slot == -1) ++hits;
      }
      check.Check(hits == 1, "adjacency.control_mirror", entry.node,
                  "control edge from slot " + std::to_string(producer) +
                      " has " + std::to_string(hits) +
                      " delivery edges (need exactly 1)");
    }
    for (const DynEdge& edge : entry.control_edges) {
      const bool consumer_ok = edge.consumer >= 0 && edge.consumer < n;
      check.Check(consumer_ok && edge.input_slot == -1,
                  "adjacency.control_mirror", entry.node,
                  "control edge to " +
                      Coord(edge.consumer, edge.input_slot) +
                      " is malformed");
      if (!consumer_ok) continue;
      const auto& back =
          nodes[static_cast<std::size_t>(edge.consumer)].control_producers;
      check.Check(std::count(back.begin(), back.end(), i) >= 1,
                  "adjacency.control_mirror", entry.node,
                  "control edge not mirrored in the consumer's "
                  "control_producers");
    }
  }

  // Fetch slots.
  const auto& fetch_slots = plan.dyn_fetch_slots();
  check.Check(fetch_slots.size() == plan.fetches().size(),
              "fetch.slot_count", nullptr,
              std::to_string(fetch_slots.size()) + " fetch slots for " +
                  std::to_string(plan.fetches().size()) + " fetches");
  const std::size_t num_fetches =
      std::min(fetch_slots.size(), plan.fetches().size());
  for (std::size_t k = 0; k < num_fetches; ++k) {
    const DagInput& slot = fetch_slots[k];
    const NodeOutput& fetch = plan.fetches()[k];
    const bool in_range = slot.producer >= 0 && slot.producer < n;
    check.Check(in_range, "fetch.slot_range", fetch.node,
                "fetch " + std::to_string(k) + " slot " +
                    Coord(slot.producer, slot.slot) + " outside [0, " +
                    std::to_string(n) + ")");
    if (!in_range) continue;
    const DynNode& producer = nodes[static_cast<std::size_t>(slot.producer)];
    check.Check(producer.node == fetch.node && slot.slot == fetch.index,
                "fetch.remap", fetch.node,
                "fetch " + std::to_string(k) + " remapped to " +
                    Coord(slot.producer, slot.slot) +
                    " which is not its producer's dense slot");
  }

  // Memory plan (in-place bits only; the dynamic executor gets liveness
  // from token lifetimes).
  const MemoryPlan& memory = plan.memory();
  check.Check(memory.dyn_in_place.size() == nodes.size(),
              "memory.parallel_size", nullptr,
              "memory plan covers " +
                  std::to_string(memory.dyn_in_place.size()) + " of " +
                  std::to_string(nodes.size()) + " dyn nodes");
  if (memory.dyn_in_place.size() == nodes.size()) {
    for (int i = 0; i < n; ++i) {
      const DynNode& entry = nodes[static_cast<std::size_t>(i)];
      if (entry.node == nullptr) continue;
      const bool expected_in_place =
          (entry.kind == OpKind::kKernel &&
           OpSupportsInPlace(entry.node->op())) ||
          (entry.kind == OpKind::kFusedRegion && entry.fused != nullptr &&
           !entry.fused->has_reduction);
      const bool actual =
          memory.dyn_in_place[static_cast<std::size_t>(i)] != 0;
      check.Check(!actual || expected_in_place, "inplace.illegal",
                  entry.node,
                  "in_place bit set on an op outside the same-index "
                  "elementwise allowlist");
      check.Check(actual || !expected_in_place, "inplace.dropped",
                  entry.node, "allowlisted op lost its in_place bit");
    }
  }
}

// JANUS_VERIFY tri-state: unset -> build-type default; "0"/"false"/"off"
// -> off; anything else -> on.
int EnvVerifySetting() {
  const char* env = std::getenv("JANUS_VERIFY");
  if (env == nullptr || *env == '\0') return -1;
  const std::string value(env);
  if (value == "0" || value == "false" || value == "off") return 0;
  return 1;
}

std::atomic<int> g_forced_setting{-1};

// The auto-run hook: verify when enabled and reject bad plans before they
// can be cached or executed.
void VerifyHook(const Graph& graph, const ExecutionPlan& plan) {
  if (!VerifyEnabled()) return;
  obs::MetricsRegistry::Global().GetCounter("verify.plans_checked")
      .Increment();
  const Report report = VerifyPlan(graph, plan);
  if (report.ok()) return;
  obs::MetricsRegistry::Global().GetCounter("verify.violations")
      .Add(static_cast<std::int64_t>(report.issues.size()));
  throw InternalError("plan verification failed:\n" + report.ToString());
}

}  // namespace

std::string Report::ToString() const {
  if (ok()) {
    return "plan OK (" + std::to_string(checks) + " checks)";
  }
  std::string out = std::to_string(issues.size()) + " violation(s), " +
                    std::to_string(checks) + " checks:\n";
  for (const Issue& issue : issues) {
    out += "  " + issue.invariant + " at " + issue.node + ": " +
           issue.message + "\n";
  }
  return out;
}

Report VerifyPlan(const Graph& graph, const ExecutionPlan& plan) {
  Report report;
  Checker check(&report);
  if (plan.strategy() == ExecutionPlan::Strategy::kDag) {
    VerifyDag(check, graph, plan);
  } else {
    VerifyDyn(check, graph, plan);
  }
  return report;
}

bool VerifyEnabled() {
  const int forced = g_forced_setting.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const int env_setting = EnvVerifySetting();
  if (env_setting >= 0) return env_setting != 0;
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

void SetVerifyEnabledForTesting(int forced) {
  g_forced_setting.store(forced < 0 ? -1 : (forced != 0 ? 1 : 0),
                         std::memory_order_relaxed);
}

void InstallPlanVerifier() { SetPlanVerifyHook(&VerifyHook); }

}  // namespace verify
}  // namespace janus
