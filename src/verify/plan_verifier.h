// Static analysis of compiled execution plans.
//
// JANUS's correctness rests on invariants that, before this pass, were only
// checked by crashing at run time: an ExecutionPlan must be a valid
// topological schedule over the fetch-reachable subgraph, every
// adjacency/fetch index must survive the fusion rewrite bijectively, the
// MemoryPlan must never let the liveness countdown release a buffer with a
// remaining consumer or allow in-place execution of a non-elementwise op,
// and fused regions must keep every interior consumer in-region. VerifyPlan
// checks all of it structurally — without executing anything — against the
// source graph, and attributes every violation to a named invariant and the
// offending node.
//
// Wire-up (three ways):
//  * InstallPlanVerifier() registers a hook that runs after every
//    ExecutionPlan::Build and throws InternalError on violation. The hook is
//    installed by JanusEngine::Attach() and gated by JANUS_VERIFY
//    (default: on in debug builds, off in release builds).
//  * tools/janus_verify sweeps the model zoo across despecialization levels
//    and fusion settings and verifies every plan the engine built.
//  * tests/verify_test.cc corrupts plans through verify::PlanCorruptor and
//    asserts each seeded corruption is diagnosed.
//
// The invariant catalog (DESIGN.md §12):
//   schedule.*  — dense order, pending counts, kinds, kernels
//   adjacency.* — producer/consumer/slot mirrors, index ranges
//   index.*     — node -> dense-index map bijectivity and coverage
//   fetch.*     — fetch slot ranges and fetch -> slot remaps
//   liveness.*  — output_reads soundness, fetch protection
//   inplace.*   — in-place allowlist equality
//   fusion.*    — fused-region well-formedness
//   memory.*    — memory plan shape
#ifndef JANUS_VERIFY_PLAN_VERIFIER_H_
#define JANUS_VERIFY_PLAN_VERIFIER_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "runtime/plan.h"

namespace janus {
namespace verify {

// One invariant violation, attributed to the node it implicates ("<plan>"
// when the damage is plan-global).
struct Issue {
  std::string invariant;  // e.g. "schedule.topological_order"
  std::string node;       // graph node name, or "<plan>"
  std::string message;    // human-readable detail
};

struct Report {
  std::vector<Issue> issues;
  // Elementary assertions evaluated (coverage indicator for reports).
  int checks = 0;

  bool ok() const { return issues.empty(); }
  // "plan OK (N checks)" or one "  <invariant> at <node>: <message>" line
  // per issue.
  std::string ToString() const;
};

// Verifies `plan` against the graph it was built from. Never throws; all
// findings land in the report.
Report VerifyPlan(const Graph& graph, const ExecutionPlan& plan);

// Whether the auto-run hook should verify. JANUS_VERIFY=1/0 wins; unset
// defaults to on in debug (!NDEBUG) builds and off in release builds.
bool VerifyEnabled();

// Overrides VerifyEnabled(): 1 = force on, 0 = force off, -1 = back to the
// environment/build-type default. For tests and the CLI.
void SetVerifyEnabledForTesting(int forced);

// Installs the post-build hook (runtime/plan.h): every subsequently built
// plan is verified when VerifyEnabled(), and a violating plan aborts the
// build with InternalError carrying the report. Idempotent.
void InstallPlanVerifier();

}  // namespace verify
}  // namespace janus

#endif  // JANUS_VERIFY_PLAN_VERIFIER_H_
