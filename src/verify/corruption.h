// Seeded plan corruption for verifier validation.
//
// A verifier is only as trustworthy as the bugs it has been shown to catch.
// This harness deliberately damages real ExecutionPlans — built from real
// graphs — in every way a plan-builder or fusion-rewrite bug plausibly
// could, then asserts the verifier diagnoses each corruption with the right
// named invariant and a node attribution. PlanCorruptor is the single
// friend-class window into ExecutionPlan's internals; the catalog in
// corruption.cc enumerates the mutations.
#ifndef JANUS_VERIFY_CORRUPTION_H_
#define JANUS_VERIFY_CORRUPTION_H_

#include <cstddef>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "runtime/fusion.h"
#include "runtime/memory_plan.h"
#include "runtime/plan.h"

namespace janus {
namespace verify {

// Mutable access to one plan's internals. The plan stays const everywhere
// else; tests own both the graph and the plan and may corrupt either side.
class PlanCorruptor {
 public:
  PlanCorruptor(Graph* graph, const ExecutionPlan* plan)
      : graph_(graph), plan_(const_cast<ExecutionPlan*>(plan)) {}

  Graph& graph() { return *graph_; }
  const ExecutionPlan& plan() const { return *plan_; }

  std::vector<ExecutionPlan::DagNode>& dag_nodes() {
    return plan_->dag_nodes_;
  }
  std::vector<ExecutionPlan::DagInput>& dag_fetch_slots() {
    return plan_->dag_fetch_slots_;
  }
  std::unordered_map<const Node*, int>& dag_index() {
    return plan_->dag_index_;
  }
  std::vector<ExecutionPlan::DynNode>& dyn_nodes() {
    return plan_->dyn_nodes_;
  }
  std::vector<NodeOutput>& fetches() { return plan_->fetches_; }
  std::vector<ExecutionPlan::DagInput>& dyn_fetch_slots() {
    return plan_->dyn_fetch_slots_;
  }
  MemoryPlan& memory() { return plan_->memory_; }

  std::size_t num_regions() const { return plan_->fused_regions_.size(); }
  // Regions are shared as const; the harness alone may mutate them.
  FusedRegionPlan& mutable_region(std::size_t i) {
    return const_cast<FusedRegionPlan&>(*plan_->fused_regions_[i]);
  }

 private:
  Graph* graph_;
  ExecutionPlan* plan_;
};

// One catalogued mutation. `apply` damages the plan and returns true, or
// returns false (leaving the plan intact) when the plan lacks the feature
// the mutation targets (e.g. no fused region, no multi-input node).
struct Corruption {
  std::string name;                // e.g. "dag-back-edge"
  std::string expected_invariant;  // invariant VerifyPlan must report
  std::function<bool(PlanCorruptor&)> apply;
};

// The full catalog for one strategy. Every entry that applies to a given
// plan must be caught by VerifyPlan with `expected_invariant` among the
// reported issues.
std::vector<Corruption> DagCorruptions();
std::vector<Corruption> DynCorruptions();

}  // namespace verify
}  // namespace janus

#endif  // JANUS_VERIFY_CORRUPTION_H_
