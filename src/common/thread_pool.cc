#include "common/thread_pool.h"

#include <cstdlib>
#include <mutex>
#include <string>

#include "common/error.h"
#include "common/logging.h"

namespace janus {

std::size_t ResolveThreadPoolSize(int requested) {
  std::size_t resolved = 4;
  const char* source = "default";
  if (requested > 0) {
    resolved = static_cast<std::size_t>(requested);
    source = "EngineOptions::pool_threads";
  } else if (const char* env = std::getenv("JANUS_NUM_THREADS");
             env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      resolved = static_cast<std::size_t>(parsed > 256 ? 256 : parsed);
      source = "JANUS_NUM_THREADS";
    } else {
      JANUS_LOG(kWarning) << "ignoring invalid JANUS_NUM_THREADS='" << env
                          << "'";
    }
  }
  static std::once_flag logged;
  std::call_once(logged, [resolved, source] {
    JANUS_LOG(kInfo) << "executor thread pool size: " << resolved << " (from "
                     << source << ")";
  });
  return resolved;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  JANUS_EXPECTS(num_threads >= 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    const MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      const MutexLock lock(mu_);
      // Explicit wait loop (not the predicate overload): clang's analysis
      // checks each lambda separately and cannot see the lock the wait
      // re-acquires around the predicate call.
      while (!shutting_down_ && queue_.empty()) cv_.wait(mu_);
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace janus
