#include "common/thread_pool.h"

#include "common/error.h"

namespace janus {

ThreadPool::ThreadPool(std::size_t num_threads) {
  JANUS_EXPECTS(num_threads >= 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace janus
