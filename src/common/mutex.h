// Annotated mutex wrappers for clang thread-safety analysis.
//
// libstdc++'s std::mutex / std::shared_mutex are not declared as
// capabilities, so clang's -Wthread-safety cannot reason about members
// guarded by them. janus::Mutex and janus::SharedMutex are zero-cost
// wrappers that carry the CAPABILITY attribute; MutexLock /
// ReaderMutexLock / WriterMutexLock are the RAII guards the analysis
// understands (SCOPED_CAPABILITY). Under g++ the attributes compile away
// and the wrappers are exactly std::mutex / std::shared_mutex plus an
// inlined forwarding layer.
//
// Mutex also exposes BasicLockable lower-case lock()/unlock() so it can
// back a std::condition_variable_any wait (see common/thread_pool.h).
#ifndef JANUS_COMMON_MUTEX_H_
#define JANUS_COMMON_MUTEX_H_

#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace janus {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling, for std::condition_variable_any::wait(*this).
  // The analysis treats them like Lock/Unlock.
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

class CAPABILITY("mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE_GENERIC() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE_GENERIC() { mu_.Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_.UnlockShared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace janus

#endif  // JANUS_COMMON_MUTEX_H_
