// Wall-clock timing helpers for the benchmark harness.
#ifndef JANUS_COMMON_TIMER_H_
#define JANUS_COMMON_TIMER_H_

#include <chrono>

namespace janus {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  // Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void Reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace janus

#endif  // JANUS_COMMON_TIMER_H_
