// Error reporting primitives for the JANUS reproduction.
//
// Following the C++ Core Guidelines (E.2, E.14), errors that a caller can
// reasonably handle are reported via exceptions derived from janus::Error.
// Programming-logic violations are caught with the contract macros
// JANUS_EXPECTS / JANUS_ENSURES (GSL-style), which throw ContractViolation
// so tests can observe them.
#ifndef JANUS_COMMON_ERROR_H_
#define JANUS_COMMON_ERROR_H_

#include <stdexcept>
#include <string>
#include <utility>

namespace janus {

// Base class of all exceptions thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

// Invalid user input: malformed program text, bad shapes, unknown ops.
class InvalidArgument : public Error {
 public:
  using Error::Error;
};

// An internal invariant was violated (a bug in this library).
class InternalError : public Error {
 public:
  using Error::Error;
};

// A feature is recognised but intentionally not supported by a component
// (e.g. the Speculative Graph Generator refusing generators/coroutines).
class NotConvertible : public Error {
 public:
  using Error::Error;
};

// A contract (precondition/postcondition) failed.
class ContractViolation : public InternalError {
 public:
  using InternalError::InternalError;
};

namespace detail {
[[noreturn]] void ContractFailed(const char* kind, const char* condition,
                                 const char* file, int line);
}  // namespace detail

}  // namespace janus

#define JANUS_EXPECTS(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::janus::detail::ContractFailed("Precondition", #cond, __FILE__,       \
                                      __LINE__);                             \
  } while (false)

#define JANUS_ENSURES(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::janus::detail::ContractFailed("Postcondition", #cond, __FILE__,      \
                                      __LINE__);                             \
  } while (false)

#endif  // JANUS_COMMON_ERROR_H_
