// Deterministic random number generation. All stochastic components of the
// library (weight initialisation, synthetic datasets, simulated environments)
// draw from an explicitly seeded Rng so experiments are reproducible.
#ifndef JANUS_COMMON_RNG_H_
#define JANUS_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace janus {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  // Uniform in [0, 1).
  double Uniform() { return uniform_(engine_); }

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  // Standard normal.
  double Normal() { return normal_(engine_); }

  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  // Uniform integer in [0, n).
  std::uint64_t Below(std::uint64_t n) {
    std::uniform_int_distribution<std::uint64_t> dist(0, n - 1);
    return dist(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace janus

#endif  // JANUS_COMMON_RNG_H_
