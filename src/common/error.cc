#include "common/error.h"

#include <sstream>

namespace janus::detail {

void ContractFailed(const char* kind, const char* condition, const char* file,
                    int line) {
  std::ostringstream oss;
  oss << kind << " failed: (" << condition << ") at " << file << ":" << line;
  throw ContractViolation(oss.str());
}

}  // namespace janus::detail
