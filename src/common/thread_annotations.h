// Clang thread-safety-analysis attribute macros.
//
// These wrap the -Wthread-safety attribute set so the lock discipline of
// the concurrent subsystems (tensor/buffer_pool, cache/*, obs/metrics,
// obs/http_export, common/thread_pool) is machine-checked wherever clang
// compiles the tree, and compiles away to nothing elsewhere (g++ has no
// equivalent analysis). Use them through the annotated wrappers in
// common/mutex.h — std::mutex itself is not declared as a capability by
// libstdc++, so GUARDED_BY(std_mutex_member) would be rejected by the
// analysis.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#ifndef JANUS_COMMON_THREAD_ANNOTATIONS_H_
#define JANUS_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define JANUS_THREAD_ANNOTATION_(x) __has_attribute(x)
#else
#define JANUS_THREAD_ANNOTATION_(x) 0
#endif

#if JANUS_THREAD_ANNOTATION_(capability)
#define JANUS_TSA_(x) __attribute__((x))
#else
#define JANUS_TSA_(x)
#endif

// Declares a type as a lockable capability ("mutex" names the capability
// kind in diagnostics).
#define CAPABILITY(x) JANUS_TSA_(capability(x))

// Declares an RAII type whose lifetime acquires/releases a capability.
#define SCOPED_CAPABILITY JANUS_TSA_(scoped_lockable)

// Data members: which lock protects them (directly or through a pointer).
#define GUARDED_BY(x) JANUS_TSA_(guarded_by(x))
#define PT_GUARDED_BY(x) JANUS_TSA_(pt_guarded_by(x))

// Function contracts: locks that must be held on entry.
#define REQUIRES(...) JANUS_TSA_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  JANUS_TSA_(requires_shared_capability(__VA_ARGS__))

// Functions that acquire/release locks (members of the wrapper types).
#define ACQUIRE(...) JANUS_TSA_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) JANUS_TSA_(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) JANUS_TSA_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) JANUS_TSA_(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  JANUS_TSA_(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) JANUS_TSA_(try_acquire_capability(__VA_ARGS__))

// Locks that must NOT be held on entry (deadlock prevention).
#define EXCLUDES(...) JANUS_TSA_(locks_excluded(__VA_ARGS__))

// Runtime assertion that a capability is held (no acquire/release effect).
#define ASSERT_CAPABILITY(x) JANUS_TSA_(assert_capability(x))

// Function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) JANUS_TSA_(lock_returned(x))

// Escape hatch for code the analysis cannot model (e.g. lock-free claim
// protocols, conditional locking).
#define NO_THREAD_SAFETY_ANALYSIS JANUS_TSA_(no_thread_safety_analysis)

#endif  // JANUS_COMMON_THREAD_ANNOTATIONS_H_
