// Minimal leveled logging. Logging is off by default below kWarning so
// benchmarks stay quiet; tests may raise the level.
#ifndef JANUS_COMMON_LOGGING_H_
#define JANUS_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string_view>

namespace janus {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Returns the mutable global log threshold; messages below it are dropped.
LogLevel& GlobalLogLevel();

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace janus

#define JANUS_LOG(level)                                              \
  ::janus::detail::LogMessage(::janus::LogLevel::level, __FILE__, __LINE__)

#endif  // JANUS_COMMON_LOGGING_H_
