#include "common/logging.h"

#include <mutex>

namespace janus {

LogLevel& GlobalLogLevel() {
  static LogLevel level = LogLevel::kWarning;
  return level;
}

namespace detail {
namespace {
std::mutex& LogMutex() {
  static std::mutex mu;
  return mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

LogMessage::LogMessage(LogLevel level, std::string_view file, int line)
    : enabled_(level >= GlobalLogLevel()) {
  if (enabled_) {
    const auto slash = file.rfind('/');
    if (slash != std::string_view::npos) file = file.substr(slash + 1);
    stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    // The full line — prefix, payload, and newline — is assembled in the
    // message's own buffer and handed to cerr as one write under the log
    // mutex, so concurrent executor threads can never interleave
    // fragments of their lines.
    stream_.put('\n');
    const std::string line = std::move(stream_).str();
    const std::lock_guard<std::mutex> lock(LogMutex());
    std::cerr.write(line.data(),
                    static_cast<std::streamsize>(line.size()));
    std::cerr.flush();
  }
}

}  // namespace detail
}  // namespace janus
