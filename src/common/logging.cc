#include "common/logging.h"

#include <mutex>

namespace janus {

LogLevel& GlobalLogLevel() {
  static LogLevel level = LogLevel::kWarning;
  return level;
}

namespace detail {
namespace {
std::mutex& LogMutex() {
  static std::mutex mu;
  return mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

LogMessage::LogMessage(LogLevel level, std::string_view file, int line)
    : enabled_(level >= GlobalLogLevel()) {
  if (enabled_) {
    const auto slash = file.rfind('/');
    if (slash != std::string_view::npos) file = file.substr(slash + 1);
    stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    const std::lock_guard<std::mutex> lock(LogMutex());
    std::cerr << stream_.str() << '\n';
  }
}

}  // namespace detail
}  // namespace janus
