// A fixed-size work-stealing-free thread pool used by the parallel dataflow
// executor (+PARL in Fig. 7). Tasks are plain std::function<void()>; the pool
// joins all workers on destruction (RAII per Core Guidelines CP.24/R.1).
#ifndef JANUS_COMMON_THREAD_POOL_H_
#define JANUS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace janus {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  // Enqueues a task for asynchronous execution. Never blocks.
  void Schedule(std::function<void()> task);

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  Mutex mu_;
  // condition_variable_any so the wait releases the annotated Mutex
  // directly (std::condition_variable only accepts
  // std::unique_lock<std::mutex>).
  std::condition_variable_any cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool shutting_down_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

// Resolves the executor pool size from configuration: a positive `requested`
// wins; otherwise the JANUS_NUM_THREADS environment variable (clamped to
// [1, 256]); otherwise a default of 4. Logs the chosen value (and its
// source) once per process.
std::size_t ResolveThreadPoolSize(int requested);

}  // namespace janus

#endif  // JANUS_COMMON_THREAD_POOL_H_
