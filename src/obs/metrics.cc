#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>

namespace janus {
namespace obs {

void Histogram::Record(std::int64_t value) {
  if (value < 0) value = 0;
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // min/max: CAS loops, first Record seeds both. `count_` is bumped last
  // with release so a reader that observes count > 0 also observes a
  // seeded min/max.
  if (count_.load(std::memory_order_relaxed) == 0) {
    std::int64_t expected = 0;
    min_.compare_exchange_strong(expected, value, std::memory_order_relaxed);
  }
  std::int64_t seen_min = min_.load(std::memory_order_relaxed);
  while (value < seen_min &&
         !min_.compare_exchange_weak(seen_min, value,
                                     std::memory_order_relaxed)) {
  }
  std::int64_t seen_max = max_.load(std::memory_order_relaxed);
  while (value > seen_max &&
         !max_.compare_exchange_weak(seen_max, value,
                                     std::memory_order_relaxed)) {
  }
  count_.fetch_add(1, std::memory_order_release);
}

std::int64_t Histogram::Min() const {
  return Count() > 0 ? min_.load(std::memory_order_relaxed) : 0;
}

std::int64_t Histogram::Max() const {
  return Count() > 0 ? max_.load(std::memory_order_relaxed) : 0;
}

double Histogram::Mean() const {
  const std::int64_t count = Count();
  return count > 0 ? static_cast<double>(Sum()) / static_cast<double>(count)
                   : 0.0;
}

int Histogram::BucketFor(std::int64_t value) {
  if (value <= 0) return 0;
  const int width = std::bit_width(static_cast<std::uint64_t>(value));
  return std::min(width, kNumBuckets - 1);
}

std::int64_t Histogram::BucketLowerBound(int bucket) {
  if (bucket <= 0) return 0;
  return std::int64_t{1} << (bucket - 1);
}

std::int64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= 63) return std::numeric_limits<std::int64_t>::max();
  return (std::int64_t{1} << bucket) - 1;
}

std::int64_t Histogram::Percentile(double p) const {
  const std::int64_t count = count_.load(std::memory_order_acquire);
  if (count <= 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the requested percentile, 1-based (nearest-rank definition).
  const std::int64_t rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(p / 100.0 *
                                             static_cast<double>(count))));
  std::int64_t cumulative = 0;
  for (int bucket = 0; bucket < kNumBuckets; ++bucket) {
    const std::int64_t in_bucket =
        buckets_[bucket].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    // Interpolate by rank position inside the bucket's value range, then
    // clamp to the observed extremes so e.g. a single-valued histogram
    // reports that exact value at every percentile.
    const std::int64_t lower = BucketLowerBound(bucket);
    const std::int64_t upper = BucketUpperBound(bucket);
    const double fraction =
        in_bucket > 1 ? static_cast<double>(rank - cumulative - 1) /
                            static_cast<double>(in_bucket - 1)
                      : 1.0;
    const double interpolated =
        static_cast<double>(lower) +
        fraction * static_cast<double>(upper - lower);
    const std::int64_t result = static_cast<std::int64_t>(interpolated);
    return std::clamp(result, Min(), Max());
  }
  return Max();
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked so late recorders (thread exits, atexit exporters) always find
  // a live registry.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  const MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  const MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  const MutexLock lock(mu_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second.get() : nullptr;
}

Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  const MutexLock lock(mu_);
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second.get() : nullptr;
}

std::vector<std::pair<std::string, std::int64_t>>
MetricsRegistry::CounterValues() const {
  const MutexLock lock(mu_);
  std::vector<std::pair<std::string, std::int64_t>> values;
  values.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    values.emplace_back(name, counter->Value());
  }
  return values;
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  const MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) names.push_back(name);
  return names;
}

void AppendHistogramLine(std::string& out, const std::string& name,
                         const Histogram& histogram) {
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-32s count=%lld mean=%.0f p50=%lld p95=%lld p99=%lld "
                "max=%lld\n",
                name.c_str(), static_cast<long long>(histogram.Count()),
                histogram.Mean(),
                static_cast<long long>(histogram.Percentile(50)),
                static_cast<long long>(histogram.Percentile(95)),
                static_cast<long long>(histogram.Percentile(99)),
                static_cast<long long>(histogram.Max()));
  out += line;
}

std::string MetricsRegistry::TextReport() const {
  return TextReportForPrefix("");
}

std::string MetricsRegistry::TextReportForPrefix(
    std::string_view prefix) const {
  std::string out;
  for (const auto& [name, value] : CounterValues()) {
    if (name.rfind(prefix, 0) != 0) continue;
    char line[192];
    std::snprintf(line, sizeof(line), "%-32s %lld\n", name.c_str(),
                  static_cast<long long>(value));
    out += line;
  }
  for (const std::string& name : HistogramNames()) {
    if (name.rfind(prefix, 0) != 0) continue;
    const Histogram* histogram = FindHistogram(name);
    if (histogram != nullptr) AppendHistogramLine(out, name, *histogram);
  }
  return out;
}

void MetricsRegistry::ResetForTesting() {
  const MutexLock lock(mu_);
  counters_.clear();
  histograms_.clear();
}

}  // namespace obs
}  // namespace janus
