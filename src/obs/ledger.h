// Speculation flight recorder: a bounded ring of structured per-run
// records that answers the operational question the aggregate counters
// cannot — not just *that* assumption failures, fallbacks, and cache churn
// happened, but *which* unit, *which* assumption, with what assumed vs
// observed value, and which cache event pushed a unit down the
// despecialization ladder.
//
// Producers: the engine (one record per run: cache hit/miss, ladder
// level, phase latency breakdown, ops/bytes; plus generation, refusal,
// entry-mismatch, and fallback records carrying the failing assumption's
// assumed vs observed rendering), the executors (assert failures at the
// kernel site), the profiler (assumption blacklisting), and the
// specialization cache (insert/evict/promote/demote/despecialize/epoch
// events). Consumers: the JANUS_LEDGER=<path> JSONL dump at exit, the
// /flightz HTTP endpoint, and the `janus_explain` root-cause CLI.
//
// Cost model (mirrors the tracer's):
//  * disabled (default): every producer site reduces to one relaxed
//    atomic load and a branch — no record is even constructed;
//  * enabled: writers claim a slot with one wait-free fetch_add on the
//    ticket counter, then publish through that slot's seqlock. Writers
//    never contend except on a ring-wrap collision (two in-flight writers
//    `capacity` tickets apart) or against a concurrent snapshot of the
//    same slot, both of which spin briefly. No mutex anywhere on the
//    record path, so cache callbacks may record while holding cache locks.
//
// The ring is bounded: once full, each new record overwrites the oldest
// (flight-recorder semantics); TotalDropped() counts the overwritten.
#ifndef JANUS_OBS_LEDGER_H_
#define JANUS_OBS_LEDGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace janus {
namespace obs {

// One flight-recorder record. `kind` is a static string; every other
// field is optional (empty string / -1 means "not applicable") so one
// schema serves runs, fallbacks, generations, and cache events:
//
//   run            graph execution through a cached entry (hit)
//   profile        imperative run while profiling (pre-conversion)
//   imperative     imperative run of a conversion-pinned unit
//   fallback       runtime assumption failure -> imperative fallback
//   entry_mismatch cached entry rejected by entry validation
//   cache_miss     no cached candidate was usable
//   generation     speculative graph generation (level, cost, bytes)
//   refusal        generator refused the program (NotConvertible)
//   assert_failure AssertOp aborted a graph run (executor site)
//   assumption_blacklisted  profiler stopped speculating on an id
//   cache_insert / cache_evict / cache_promote / cache_demote /
//   cache_despecialize / cache_epoch_bump   specialization-cache events
struct LedgerRecord {
  std::int64_t seq = -1;    // assigned by the ring
  std::int64_t ts_ns = -1;  // Trace::NowNs() timebase; assigned if < 0
  const char* kind = "";
  std::string unit;   // stable unit identity ("0x..." hex), join key
  std::string name;   // human-readable unit name, when known
  std::uint64_t variant = 0;
  int level = -1;      // despecialization ladder level
  int cache_hit = -1;  // 1 = cached graph ran, 0 = miss path, -1 = n/a
  // Failing-assumption attribution.
  std::string assumption;  // assumption id ("branch:stmt7", "shape:x")
  std::string assumed;     // what the graph speculated, rendered
  std::string observed;    // what the run actually saw, rendered
  // Phase latency breakdown (ns) and run volume.
  std::int64_t validate_ns = -1;
  std::int64_t execute_ns = -1;
  std::int64_t generate_ns = -1;
  std::int64_t ops = -1;
  std::int64_t bytes = -1;
  // Fusion accounting for "run" records: regions dispatched through the
  // superop interpreter and the member ops they covered. -1 = not a run
  // record (field omitted from the serialized line).
  std::int64_t fused_regions = -1;
  std::int64_t fused_ops = -1;
  std::string detail;
};

class Ledger {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  // The one process-wide recorder (leaked so atexit dumps always find it).
  static Ledger& Global();

  // The producer fast path: call sites test this before building records.
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void Enable();
  static void Disable();

  // Appends one record (see the cost model above). Assigns seq and, when
  // ts_ns < 0, the timestamp. Safe from any thread, including under locks.
  void Record(LedgerRecord record);

  // The most recent records, oldest first, at most `max_records` (0 = all
  // retained). Records mid-write during the snapshot are skipped, never
  // torn.
  std::vector<LedgerRecord> Snapshot(std::size_t max_records = 0) const;

  std::int64_t TotalRecorded() const;
  std::int64_t TotalDropped() const;  // overwritten by ring wrap

  // One JSON object per record; the schema trace_validate --ledger and
  // janus_explain parse. Optional fields are omitted when unset.
  static std::string ToJsonLine(const LedgerRecord& record);
  std::string ToJsonl(std::size_t max_records = 0) const;
  bool WriteJsonl(const std::string& path) const;

  // Drops every retained record and resets counters (test isolation).
  void Reset();

  // Ring capacity; rounded up to a power of two. Not safe concurrently
  // with writers — tests only. 0 restores the default (or JANUS_LEDGER_
  // CAPACITY when set).
  void SetCapacityForTesting(std::size_t capacity);
  std::size_t capacity() const { return capacity_; }

 private:
  Ledger();

  struct Slot;
  void Allocate(std::size_t capacity);

  std::unique_ptr<Slot[]> slots_;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::atomic<std::int64_t> next_{0};

  static std::atomic<bool> enabled_;
};

// Appends `text` to `out` with JSON string escaping (quotes, backslash,
// control characters). Shared by the ledger and the explain tooling.
void AppendJsonEscaped(std::string& out, std::string_view text);

// Renders a pointer as a stable "0x..." identity string (unit join keys).
std::string PointerToHex(const void* pointer);

}  // namespace obs
}  // namespace janus

#endif  // JANUS_OBS_LEDGER_H_
