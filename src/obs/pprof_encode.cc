#include "obs/pprof_encode.h"

#include <algorithm>
#include <array>
#include <cstddef>

namespace janus {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Protobuf wire-format primitives
// ---------------------------------------------------------------------------

enum WireType : std::uint32_t {
  kVarint = 0,
  kLengthDelimited = 2,
};

void AppendVarint(std::string* out, std::uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

void AppendTag(std::string* out, std::uint32_t field, WireType wire) {
  AppendVarint(out, (static_cast<std::uint64_t>(field) << 3) | wire);
}

void AppendVarintField(std::string* out, std::uint32_t field,
                       std::uint64_t value) {
  if (value == 0) return;  // proto3 default, omitted
  AppendTag(out, field, kVarint);
  AppendVarint(out, value);
}

void AppendBytesField(std::string* out, std::uint32_t field,
                      std::string_view bytes) {
  AppendTag(out, field, kLengthDelimited);
  AppendVarint(out, bytes.size());
  out->append(bytes.data(), bytes.size());
}

void AppendPackedField(std::string* out, std::uint32_t field,
                       const std::vector<std::uint64_t>& values) {
  if (values.empty()) return;
  std::string packed;
  for (const std::uint64_t v : values) AppendVarint(&packed, v);
  AppendBytesField(out, field, packed);
}

// Interned pprof string table; index 0 is always "".
class StringTable {
 public:
  StringTable() { Intern(""); }

  std::uint64_t Intern(const std::string& text) {
    const auto it = index_.find(text);
    if (it != index_.end()) return it->second;
    const std::uint64_t id = strings_.size();
    strings_.push_back(text);
    index_.emplace(text, id);
    return id;
  }

  const std::vector<std::string>& strings() const { return strings_; }

 private:
  std::vector<std::string> strings_;
  std::map<std::string, std::uint64_t> index_;
};

// ---------------------------------------------------------------------------
// CRC-32 (gzip trailer)
// ---------------------------------------------------------------------------

const std::array<std::uint32_t, 256>& Crc32Table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t n = 0; n < 256; ++n) {
      std::uint32_t c = n;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[n] = c;
    }
    return t;
  }();
  return table;
}

std::uint32_t Crc32(std::string_view data) {
  const auto& table = Crc32Table();
  std::uint32_t crc = 0xffffffffu;
  for (const char c : data) {
    crc = table[(crc ^ static_cast<unsigned char>(c)) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

void AppendLe32(std::string* out, std::uint32_t value) {
  out->push_back(static_cast<char>(value & 0xff));
  out->push_back(static_cast<char>((value >> 8) & 0xff));
  out->push_back(static_cast<char>((value >> 16) & 0xff));
  out->push_back(static_cast<char>((value >> 24) & 0xff));
}

// ---------------------------------------------------------------------------
// Wire-format reader (decoder half)
// ---------------------------------------------------------------------------

class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  bool done() const { return pos_ >= data_.size(); }

  bool ReadVarint(std::uint64_t* value) {
    *value = 0;
    int shift = 0;
    while (pos_ < data_.size() && shift < 64) {
      const auto byte = static_cast<unsigned char>(data_[pos_++]);
      *value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return true;
      shift += 7;
    }
    return false;
  }

  bool ReadTag(std::uint32_t* field, std::uint32_t* wire) {
    std::uint64_t tag = 0;
    if (!ReadVarint(&tag)) return false;
    *field = static_cast<std::uint32_t>(tag >> 3);
    *wire = static_cast<std::uint32_t>(tag & 0x7);
    return true;
  }

  bool ReadBytes(std::string_view* bytes) {
    std::uint64_t length = 0;
    if (!ReadVarint(&length)) return false;
    if (length > data_.size() - pos_) return false;
    *bytes = data_.substr(pos_, length);
    pos_ += length;
    return true;
  }

  // Skips one field of the given wire type (varint and length-delimited
  // only — the encoder never emits fixed32/64).
  bool SkipField(std::uint32_t wire) {
    if (wire == kVarint) {
      std::uint64_t ignored = 0;
      return ReadVarint(&ignored);
    }
    if (wire == kLengthDelimited) {
      std::string_view ignored;
      return ReadBytes(&ignored);
    }
    return false;
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

// Reads a repeated integer field that may be packed or not.
bool ReadRepeatedInts(Cursor* cursor, std::uint32_t wire,
                      std::vector<std::uint64_t>* out) {
  if (wire == kVarint) {
    std::uint64_t value = 0;
    if (!cursor->ReadVarint(&value)) return false;
    out->push_back(value);
    return true;
  }
  if (wire == kLengthDelimited) {
    std::string_view packed;
    if (!cursor->ReadBytes(&packed)) return false;
    Cursor inner(packed);
    while (!inner.done()) {
      std::uint64_t value = 0;
      if (!inner.ReadVarint(&value)) return false;
      out->push_back(value);
    }
    return true;
  }
  return false;
}

bool FailDecode(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

std::string EncodeProfileProto(const std::vector<ProfileSample>& samples) {
  StringTable strings;

  // Function table: one entry per distinct name (imperative functions and
  // leaf op pseudo-functions share the table; pprof only needs names).
  std::map<std::string, std::uint64_t> function_ids;
  std::string functions;
  const auto function_of = [&](const std::string& name) {
    const auto it = function_ids.find(name);
    if (it != function_ids.end()) return it->second;
    const std::uint64_t id = function_ids.size() + 1;  // ids are 1-based
    function_ids.emplace(name, id);
    std::string fn;
    AppendVarintField(&fn, 1, id);                       // Function.id
    AppendVarintField(&fn, 2, strings.Intern(name));     // Function.name
    AppendVarintField(&fn, 4, strings.Intern("<janus>"));  // filename
    AppendBytesField(&functions, 5, fn);  // Profile.function
    return id;
  };

  // Location table: one entry per (function, line).
  std::map<std::pair<std::uint64_t, std::int64_t>, std::uint64_t>
      location_ids;
  std::string locations;
  const auto location_of = [&](const std::string& name, std::int64_t line) {
    const std::uint64_t fn_id = function_of(name);
    const auto key = std::make_pair(fn_id, line);
    const auto it = location_ids.find(key);
    if (it != location_ids.end()) return it->second;
    const std::uint64_t id = location_ids.size() + 1;
    location_ids.emplace(key, id);
    std::string loc_line;
    AppendVarintField(&loc_line, 1, fn_id);  // Line.function_id
    AppendVarintField(&loc_line, 2, static_cast<std::uint64_t>(line));
    std::string loc;
    AppendVarintField(&loc, 1, id);     // Location.id
    AppendBytesField(&loc, 4, loc_line);  // Location.line
    AppendBytesField(&locations, 4, loc);  // Profile.location
    return id;
  };

  const auto label_of = [&](const std::string& key, const std::string& str) {
    std::string label;
    AppendVarintField(&label, 1, strings.Intern(key));  // Label.key
    AppendVarintField(&label, 2, strings.Intern(str));  // Label.str
    return label;
  };

  std::string sample_bytes;
  for (const ProfileSample& sample : samples) {
    const std::string function =
        sample.function.empty() ? "<unknown>" : sample.function;
    // Leaf-first stack: op -> statement (function:line) -> function.
    std::vector<std::uint64_t> stack;
    stack.push_back(location_of(sample.op, 0));
    stack.push_back(location_of(function, sample.line));
    stack.push_back(location_of(function, 0));

    std::string entry;
    AppendPackedField(&entry, 1, stack);  // Sample.location_id
    AppendPackedField(&entry, 2,
                      {sample.count, sample.total_ns});  // Sample.value
    if (!sample.unit.empty()) {
      AppendBytesField(&entry, 3, label_of("unit", sample.unit));
    }
    if (!sample.variant.empty()) {
      AppendBytesField(&entry, 3, label_of("variant", sample.variant));
    }
    AppendBytesField(&entry, 3,
                     label_of("level", std::to_string(sample.level)));
    AppendBytesField(&entry, 3, label_of("node", sample.node));
    AppendBytesField(&sample_bytes, 2, entry);  // Profile.sample
  }

  std::string sample_types;
  {
    std::string vt;
    AppendVarintField(&vt, 1, strings.Intern("executions"));
    AppendVarintField(&vt, 2, strings.Intern("count"));
    AppendBytesField(&sample_types, 1, vt);  // Profile.sample_type
  }
  {
    std::string vt;
    AppendVarintField(&vt, 1, strings.Intern("time"));
    AppendVarintField(&vt, 2, strings.Intern("nanoseconds"));
    AppendBytesField(&sample_types, 1, vt);
  }
  std::string period_type;
  AppendVarintField(&period_type, 1, strings.Intern("time"));
  AppendVarintField(&period_type, 2, strings.Intern("nanoseconds"));

  std::string profile;
  profile += sample_types;
  profile += sample_bytes;
  profile += locations;
  profile += functions;
  for (const std::string& text : strings.strings()) {
    AppendBytesField(&profile, 6, text);  // Profile.string_table
  }
  AppendBytesField(&profile, 11, period_type);  // Profile.period_type
  AppendVarintField(&profile, 12, kProfileSampleEvery);  // Profile.period
  return profile;
}

std::string SerializeCurrentProfileProto() {
  return EncodeProfileProto(CollectProfileSamples());
}

// ---------------------------------------------------------------------------
// Gzip (stored deflate)
// ---------------------------------------------------------------------------

std::string GzipCompress(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + raw.size() / 65535 * 5 + 32);
  // RFC 1952 header: magic, deflate method, no flags, mtime 0, XFL 0,
  // OS 3 (unix).
  const char header[] = {'\x1f', '\x8b', '\x08', '\x00', '\x00',
                         '\x00', '\x00', '\x00', '\x00', '\x03'};
  out.append(header, sizeof(header));
  // Stored deflate blocks, <= 65535 bytes each.
  std::size_t pos = 0;
  do {
    const std::size_t chunk = std::min<std::size_t>(65535, raw.size() - pos);
    const bool final_block = pos + chunk == raw.size();
    out.push_back(final_block ? '\x01' : '\x00');  // BFINAL | BTYPE=00
    const auto len = static_cast<std::uint16_t>(chunk);
    out.push_back(static_cast<char>(len & 0xff));
    out.push_back(static_cast<char>(len >> 8));
    out.push_back(static_cast<char>(~len & 0xff));
    out.push_back(static_cast<char>((~len >> 8) & 0xff));
    out.append(raw.data() + pos, chunk);
    pos += chunk;
  } while (pos < raw.size());
  AppendLe32(&out, Crc32(raw));
  AppendLe32(&out, static_cast<std::uint32_t>(raw.size()));
  return out;
}

bool GunzipStored(std::string_view data, std::string* out,
                  std::string* error) {
  if (data.size() < 18) return FailDecode(error, "gzip data too short");
  if (static_cast<unsigned char>(data[0]) != 0x1f ||
      static_cast<unsigned char>(data[1]) != 0x8b) {
    return FailDecode(error, "missing gzip magic");
  }
  if (data[2] != 8) return FailDecode(error, "unsupported gzip method");
  if (data[3] != 0) {
    return FailDecode(error, "unsupported gzip flags (expected none)");
  }
  std::size_t pos = 10;
  std::string inflated;
  while (true) {
    if (pos >= data.size() - 8) {
      return FailDecode(error, "truncated deflate stream");
    }
    const auto block = static_cast<unsigned char>(data[pos++]);
    if (((block >> 1) & 0x3) != 0) {
      return FailDecode(error,
                        "unsupported deflate block type (stored only)");
    }
    if (pos + 4 > data.size() - 8) {
      return FailDecode(error, "truncated stored-block header");
    }
    const std::uint16_t len =
        static_cast<unsigned char>(data[pos]) |
        (static_cast<std::uint16_t>(static_cast<unsigned char>(data[pos + 1]))
         << 8);
    const std::uint16_t nlen =
        static_cast<unsigned char>(data[pos + 2]) |
        (static_cast<std::uint16_t>(static_cast<unsigned char>(data[pos + 3]))
         << 8);
    pos += 4;
    if (static_cast<std::uint16_t>(~len) != nlen) {
      return FailDecode(error, "stored-block LEN/NLEN mismatch");
    }
    if (pos + len > data.size() - 8) {
      return FailDecode(error, "truncated stored-block payload");
    }
    inflated.append(data.data() + pos, len);
    pos += len;
    if ((block & 1) != 0) break;
  }
  const auto read_le32 = [&](std::size_t at) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(data[at])) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(
                data[at + 1]))
            << 8) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(
                data[at + 2]))
            << 16) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(
                data[at + 3]))
            << 24);
  };
  if (pos + 8 > data.size()) return FailDecode(error, "missing gzip trailer");
  if (read_le32(pos) != Crc32(inflated)) {
    return FailDecode(error, "gzip CRC-32 mismatch");
  }
  if (read_le32(pos + 4) !=
      static_cast<std::uint32_t>(inflated.size() & 0xffffffffu)) {
    return FailDecode(error, "gzip ISIZE mismatch");
  }
  if (out != nullptr) *out = std::move(inflated);
  return true;
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

bool DecodePprof(std::string_view data, DecodedPprof* out,
                 std::string* error) {
  std::string inflated;
  if (data.size() >= 2 && static_cast<unsigned char>(data[0]) == 0x1f &&
      static_cast<unsigned char>(data[1]) == 0x8b) {
    if (!GunzipStored(data, &inflated, error)) return false;
    data = inflated;
  }

  std::vector<std::string> strings;
  struct RawFunction {
    std::uint64_t name_idx = 0;
  };
  std::map<std::uint64_t, RawFunction> functions;
  struct RawLine {
    std::uint64_t function_id = 0;
    std::int64_t line = 0;
  };
  std::map<std::uint64_t, std::vector<RawLine>> locations;
  struct RawSample {
    std::vector<std::uint64_t> location_ids;
    std::vector<std::uint64_t> values;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> labels;
  };
  std::vector<RawSample> samples;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sample_types;

  Cursor cursor(data);
  while (!cursor.done()) {
    std::uint32_t field = 0;
    std::uint32_t wire = 0;
    if (!cursor.ReadTag(&field, &wire)) {
      return FailDecode(error, "malformed top-level tag");
    }
    switch (field) {
      case 1: {  // sample_type
        std::string_view bytes;
        if (wire != kLengthDelimited || !cursor.ReadBytes(&bytes)) {
          return FailDecode(error, "malformed sample_type");
        }
        Cursor vt(bytes);
        std::uint64_t type_idx = 0;
        std::uint64_t unit_idx = 0;
        while (!vt.done()) {
          std::uint32_t f = 0;
          std::uint32_t w = 0;
          if (!vt.ReadTag(&f, &w)) {
            return FailDecode(error, "malformed ValueType");
          }
          std::uint64_t value = 0;
          if (f == 1 && w == kVarint) {
            if (!vt.ReadVarint(&value)) {
              return FailDecode(error, "malformed ValueType.type");
            }
            type_idx = value;
          } else if (f == 2 && w == kVarint) {
            if (!vt.ReadVarint(&value)) {
              return FailDecode(error, "malformed ValueType.unit");
            }
            unit_idx = value;
          } else if (!vt.SkipField(w)) {
            return FailDecode(error, "malformed ValueType field");
          }
        }
        sample_types.emplace_back(type_idx, unit_idx);
        break;
      }
      case 2: {  // sample
        std::string_view bytes;
        if (wire != kLengthDelimited || !cursor.ReadBytes(&bytes)) {
          return FailDecode(error, "malformed sample");
        }
        RawSample sample;
        Cursor sc(bytes);
        while (!sc.done()) {
          std::uint32_t f = 0;
          std::uint32_t w = 0;
          if (!sc.ReadTag(&f, &w)) {
            return FailDecode(error, "malformed Sample tag");
          }
          if (f == 1) {
            if (!ReadRepeatedInts(&sc, w, &sample.location_ids)) {
              return FailDecode(error, "malformed Sample.location_id");
            }
          } else if (f == 2) {
            if (!ReadRepeatedInts(&sc, w, &sample.values)) {
              return FailDecode(error, "malformed Sample.value");
            }
          } else if (f == 3 && w == kLengthDelimited) {
            std::string_view label_bytes;
            if (!sc.ReadBytes(&label_bytes)) {
              return FailDecode(error, "malformed Sample.label");
            }
            Cursor lc(label_bytes);
            std::uint64_t key_idx = 0;
            std::uint64_t str_idx = 0;
            while (!lc.done()) {
              std::uint32_t lf = 0;
              std::uint32_t lw = 0;
              if (!lc.ReadTag(&lf, &lw)) {
                return FailDecode(error, "malformed Label tag");
              }
              std::uint64_t value = 0;
              if (lf == 1 && lw == kVarint) {
                if (!lc.ReadVarint(&value)) {
                  return FailDecode(error, "malformed Label.key");
                }
                key_idx = value;
              } else if (lf == 2 && lw == kVarint) {
                if (!lc.ReadVarint(&value)) {
                  return FailDecode(error, "malformed Label.str");
                }
                str_idx = value;
              } else if (!lc.SkipField(lw)) {
                return FailDecode(error, "malformed Label field");
              }
            }
            sample.labels.emplace_back(key_idx, str_idx);
          } else if (!sc.SkipField(w)) {
            return FailDecode(error, "malformed Sample field");
          }
        }
        samples.push_back(std::move(sample));
        break;
      }
      case 4: {  // location
        std::string_view bytes;
        if (wire != kLengthDelimited || !cursor.ReadBytes(&bytes)) {
          return FailDecode(error, "malformed location");
        }
        std::uint64_t id = 0;
        std::vector<RawLine> lines;
        Cursor lc(bytes);
        while (!lc.done()) {
          std::uint32_t f = 0;
          std::uint32_t w = 0;
          if (!lc.ReadTag(&f, &w)) {
            return FailDecode(error, "malformed Location tag");
          }
          if (f == 1 && w == kVarint) {
            if (!lc.ReadVarint(&id)) {
              return FailDecode(error, "malformed Location.id");
            }
          } else if (f == 4 && w == kLengthDelimited) {
            std::string_view line_bytes;
            if (!lc.ReadBytes(&line_bytes)) {
              return FailDecode(error, "malformed Location.line");
            }
            RawLine line;
            Cursor linec(line_bytes);
            while (!linec.done()) {
              std::uint32_t lf = 0;
              std::uint32_t lw = 0;
              if (!linec.ReadTag(&lf, &lw)) {
                return FailDecode(error, "malformed Line tag");
              }
              std::uint64_t value = 0;
              if (lf == 1 && lw == kVarint) {
                if (!linec.ReadVarint(&value)) {
                  return FailDecode(error, "malformed Line.function_id");
                }
                line.function_id = value;
              } else if (lf == 2 && lw == kVarint) {
                if (!linec.ReadVarint(&value)) {
                  return FailDecode(error, "malformed Line.line");
                }
                line.line = static_cast<std::int64_t>(value);
              } else if (!linec.SkipField(lw)) {
                return FailDecode(error, "malformed Line field");
              }
            }
            lines.push_back(line);
          } else if (!lc.SkipField(w)) {
            return FailDecode(error, "malformed Location field");
          }
        }
        if (id == 0) return FailDecode(error, "Location without id");
        locations[id] = std::move(lines);
        break;
      }
      case 5: {  // function
        std::string_view bytes;
        if (wire != kLengthDelimited || !cursor.ReadBytes(&bytes)) {
          return FailDecode(error, "malformed function");
        }
        std::uint64_t id = 0;
        RawFunction fn;
        Cursor fc(bytes);
        while (!fc.done()) {
          std::uint32_t f = 0;
          std::uint32_t w = 0;
          if (!fc.ReadTag(&f, &w)) {
            return FailDecode(error, "malformed Function tag");
          }
          std::uint64_t value = 0;
          if (f == 1 && w == kVarint) {
            if (!fc.ReadVarint(&id)) {
              return FailDecode(error, "malformed Function.id");
            }
          } else if (f == 2 && w == kVarint) {
            if (!fc.ReadVarint(&value)) {
              return FailDecode(error, "malformed Function.name");
            }
            fn.name_idx = value;
          } else if (!fc.SkipField(w)) {
            return FailDecode(error, "malformed Function field");
          }
        }
        if (id == 0) return FailDecode(error, "Function without id");
        functions[id] = fn;
        break;
      }
      case 6: {  // string_table
        std::string_view bytes;
        if (wire != kLengthDelimited || !cursor.ReadBytes(&bytes)) {
          return FailDecode(error, "malformed string_table entry");
        }
        strings.emplace_back(bytes);
        break;
      }
      default:
        if (!cursor.SkipField(wire)) {
          return FailDecode(error, "malformed field " + std::to_string(field));
        }
    }
  }

  if (strings.empty() || !strings[0].empty()) {
    return FailDecode(error, "string_table[0] must be \"\"");
  }
  const auto string_at = [&](std::uint64_t idx) -> const std::string& {
    static const std::string empty;
    return idx < strings.size() ? strings[idx] : empty;
  };

  DecodedPprof decoded;
  for (const auto& [type_idx, unit_idx] : sample_types) {
    decoded.sample_types.emplace_back(string_at(type_idx),
                                      string_at(unit_idx));
  }
  for (const RawSample& raw : samples) {
    DecodedPprof::Sample sample;
    for (const std::uint64_t loc_id : raw.location_ids) {
      const auto loc_it = locations.find(loc_id);
      if (loc_it == locations.end()) {
        return FailDecode(error,
                          "sample references unknown location " +
                              std::to_string(loc_id));
      }
      for (const RawLine& line : loc_it->second) {
        const auto fn_it = functions.find(line.function_id);
        if (fn_it == functions.end()) {
          return FailDecode(error,
                            "line references unknown function " +
                                std::to_string(line.function_id));
        }
        std::string frame = string_at(fn_it->second.name_idx);
        if (line.line > 0) frame += ":" + std::to_string(line.line);
        sample.stack.push_back(std::move(frame));
      }
    }
    for (const std::uint64_t value : raw.values) {
      sample.values.push_back(static_cast<std::int64_t>(value));
    }
    for (const auto& [key_idx, str_idx] : raw.labels) {
      sample.labels[string_at(key_idx)] = string_at(str_idx);
    }
    decoded.samples.push_back(std::move(sample));
  }
  if (out != nullptr) *out = std::move(decoded);
  return true;
}

}  // namespace obs
}  // namespace janus
