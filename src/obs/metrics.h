// Named counters and log-bucketed latency histograms.
//
// One registry absorbs every statistic the runtime produces — the engine's
// Fig. 2 decision-loop counters, per-run RunMetrics, buffer-pool traffic,
// and sampled per-op kernel timers — so any layer can report through the
// same path and any consumer (Engine::StatsReport(), the DOT heat-map
// annotator, tests) can query it.
//
// Counters and histogram buckets are relaxed atomics: recording is
// wait-free and safe from pool worker threads; reads are snapshots that
// may trail concurrent writers by a few increments but never tear.
#ifndef JANUS_OBS_METRICS_H_
#define JANUS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace janus {
namespace obs {

class Counter {
 public:
  void Add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  std::int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Log2-bucketed histogram for non-negative values (nanoseconds, bytes).
// Bucket 0 holds value 0; bucket i >= 1 holds values whose bit width is i,
// i.e. the range [2^(i-1), 2^i - 1]. Percentile queries interpolate
// linearly inside the selected bucket and clamp to the observed min/max,
// so single-valued distributions report that exact value.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Record(std::int64_t value);

  std::int64_t Count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t Min() const;  // 0 when empty
  std::int64_t Max() const;  // 0 when empty
  double Mean() const;

  // p in [0, 100]. Returns 0 when empty.
  std::int64_t Percentile(double p) const;

  void Reset();

  // Bucket geometry, exposed for tests.
  static int BucketFor(std::int64_t value);
  static std::int64_t BucketLowerBound(int bucket);
  static std::int64_t BucketUpperBound(int bucket);
  std::int64_t BucketCount(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{0};  // valid iff count_ > 0
  std::atomic<std::int64_t> max_{0};
};

// Name -> metric map. Returned references are stable for the registry's
// lifetime (metrics are heap-allocated and never removed except by
// ResetForTesting).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry: kernel timers and other cross-engine
  // metrics. Engines additionally own a private registry for per-engine
  // phase histograms.
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  // nullptr when the metric does not exist yet.
  Counter* FindCounter(std::string_view name) const;
  Histogram* FindHistogram(std::string_view name) const;

  std::vector<std::pair<std::string, std::int64_t>> CounterValues() const;
  std::vector<std::string> HistogramNames() const;

  // Human-readable summary: every counter, then every histogram with
  // count / mean / p50 / p95 / p99 / max.
  std::string TextReport() const;

  // Same format, restricted to metrics whose name starts with `prefix`
  // (e.g. "cache." for the specialization-cache section of a report).
  std::string TextReportForPrefix(std::string_view prefix) const;

  // Drops every metric. Only for test isolation.
  void ResetForTesting();

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GUARDED_BY(mu_);
};

// Appends one formatted "name count=... mean=... p50=..." line per
// histogram; shared by MetricsRegistry::TextReport and Engine::StatsReport.
void AppendHistogramLine(std::string& out, const std::string& name,
                         const Histogram& histogram);

}  // namespace obs
}  // namespace janus

#endif  // JANUS_OBS_METRICS_H_
